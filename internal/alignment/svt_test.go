package alignment

import (
	"math"
	"testing"

	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/rng"
)

func TestSVTShadowRunMatchesBranchSemantics(t *testing.T) {
	// k=3 leaves enough budget after the two positive answers for the third
	// (below-threshold) query to be processed before the stopping rule fires.
	m, err := core.NewAdaptiveSVTWithGap(3, 1, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	sigma := m.Sigma()
	answers := []float64{100 + sigma + 10, 100 + 1, 100 - 1e6}
	noise := SVTNoise{
		Threshold: 0,
		Top:       []float64{0, 0, 0},
		Middle:    []float64{0, 0, 0},
	}
	out, err := SVTShadowRun(m, answers, noise)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Steps) != 3 {
		t.Fatalf("steps %d, want 3", len(out.Steps))
	}
	if out.Steps[0].Branch != core.BranchTop {
		t.Fatalf("first query should take the top branch, got %v", out.Steps[0].Branch)
	}
	if out.Steps[1].Branch != core.BranchMiddle {
		t.Fatalf("second query should take the middle branch, got %v", out.Steps[1].Branch)
	}
	if out.Steps[2].Branch != core.BranchBelow {
		t.Fatalf("third query should be below, got %v", out.Steps[2].Branch)
	}
}

func TestSVTShadowRunErrors(t *testing.T) {
	m, _ := core.NewAdaptiveSVTWithGap(1, 1, 0, true)
	if _, err := SVTShadowRun(m, nil, SVTNoise{}); err == nil {
		t.Fatal("empty answers accepted")
	}
	if _, err := SVTShadowRun(m, []float64{1, 2}, SVTNoise{Top: []float64{0}, Middle: []float64{0, 0}}); err == nil {
		t.Fatal("short noise accepted")
	}
}

func TestSVTAlignPreservesOutputAndCost(t *testing.T) {
	// The executable version of Theorem 4: on random adjacent pairs, the
	// Equation (3) alignment reproduces the branch pattern and gaps exactly
	// and its cost never exceeds epsilon.
	src := rng.NewXoshiro(3)
	for trial := 0; trial < 30; trial++ {
		d, dPrime := adjacentPair(src, 20, false)
		threshold := float64(rng.Intn(src, 150))
		k := 1 + rng.Intn(src, 5)
		m, err := core.NewAdaptiveSVTWithGap(k, 0.9, threshold, false)
		if err != nil {
			t.Fatal(err)
		}
		report, err := VerifyAdaptiveSVT(m, d, dPrime, 200, uint64(trial+1))
		if err != nil {
			t.Fatal(err)
		}
		if !report.OK() {
			t.Fatalf("trial %d (k=%d, T=%v): %v", trial, k, threshold, report)
		}
	}
}

func TestSVTAlignWithSigmaDisabled(t *testing.T) {
	// sigma = inf recovers Sparse-Vector-with-Gap; the same alignment must
	// still verify (it is the Wang et al. result).
	src := rng.NewXoshiro(7)
	d, dPrime := adjacentPair(src, 15, true)
	m := &core.AdaptiveSVTWithGap{K: 3, Epsilon: 0.7, Threshold: 60, Monotonic: true, SigmaMultiplier: math.Inf(1)}
	report, err := VerifyAdaptiveSVT(m, d, dPrime, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("SVT-with-Gap alignment failed: %v", report)
	}
}

func TestSVTAlignmentCostComponents(t *testing.T) {
	m, _ := core.NewAdaptiveSVTWithGap(2, 1, 10, false)
	eps0, eps1, eps2 := m.Budgets()
	noise := SVTNoise{Threshold: 0, Top: []float64{0, 0}, Middle: []float64{0, 0}}
	aligned := SVTNoise{Threshold: 1, Top: []float64{2, 0}, Middle: []float64{0, 2}}
	got := SVTAlignmentCost(m, noise, aligned)
	// Threshold moved by 1 (scale 1/eps0), one top noise by 2 (scale 2/eps2),
	// one middle noise by 2 (scale 2/eps1).
	want := eps0 + 2*eps2/2 + 2*eps1/2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("cost %v, want %v", got, want)
	}
	// The worst case the proof allows: threshold + one answer per branch with
	// the maximal shift of 2 costs exactly eps0 + eps2 + eps1 ≤ eps.
	if want > m.Epsilon {
		t.Fatalf("worst-case single-answer cost %v already exceeds epsilon %v", want, m.Epsilon)
	}
}

func TestSVTAlignErrors(t *testing.T) {
	if _, err := SVTAlign([]float64{1}, []float64{1, 2}, SVTNoise{}, nil, false); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestSVTAlignMonotoneDirections(t *testing.T) {
	// Footnote 6: both monotone directions must verify at the factor-1 noise
	// scales of the monotonic mechanism.
	src := rng.NewXoshiro(41)
	m, _ := core.NewAdaptiveSVTWithGap(3, 0.7, 80, true)

	// Direction 1: D' obtained by removing a record (qᵢ ≥ q'ᵢ).
	d, dPrime := adjacentPair(src, 15, true)
	report, err := VerifyAdaptiveSVT(m, d, dPrime, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("remove-record direction: %v", report)
	}

	// Direction 2: D' obtained by adding a record (qᵢ ≤ q'ᵢ): swap the roles.
	report, err = VerifyAdaptiveSVT(m, dPrime, d, 300, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("add-record direction: %v", report)
	}
}

func TestVerifyAdaptiveSVTRejectsNonAdjacent(t *testing.T) {
	m, _ := core.NewAdaptiveSVTWithGap(1, 1, 10, true)
	if _, err := VerifyAdaptiveSVT(m, []float64{1, 2}, []float64{1, 10}, 10, 1); err == nil {
		t.Fatal("non-adjacent pair accepted")
	}
}

func TestSVTOutputEqual(t *testing.T) {
	a := SVTOutput{Steps: []SVTStep{{Branch: core.BranchTop, Gap: 5}, {Branch: core.BranchBelow}}}
	b := SVTOutput{Steps: []SVTStep{{Branch: core.BranchTop, Gap: 5 + 1e-12}, {Branch: core.BranchBelow, Gap: 99}}}
	if !a.Equal(b, 1e-9) {
		t.Fatal("outputs differing only by below-branch gap or tolerance should be equal")
	}
	c := SVTOutput{Steps: []SVTStep{{Branch: core.BranchMiddle, Gap: 5}, {Branch: core.BranchBelow}}}
	if a.Equal(c, 1e-9) {
		t.Fatal("different branches must not compare equal")
	}
	d := SVTOutput{Steps: []SVTStep{{Branch: core.BranchTop, Gap: 5}}}
	if a.Equal(d, 1e-9) {
		t.Fatal("different lengths must not compare equal")
	}
}
