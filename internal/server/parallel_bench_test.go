package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"github.com/freegap/freegap/internal/store"
)

// benchRecorder is a reusable http.ResponseWriter for benchmark loops. The
// stock httptest.NewRecorder costs ~5KB and a dozen allocations per request
// — client-side harness noise that used to dominate the per-op numbers —
// whereas resetting one recorder per goroutine keeps the measurement on the
// serving path itself.
type benchRecorder struct {
	hdr  http.Header
	code int
	body bytes.Buffer
}

func newBenchRecorder() *benchRecorder { return &benchRecorder{hdr: make(http.Header, 4)} }

func (r *benchRecorder) Header() http.Header { return r.hdr }

func (r *benchRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *benchRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(p)
}

func (r *benchRecorder) reset() {
	r.code = 0
	r.body.Reset()
	clear(r.hdr)
}

// BenchmarkServerParallelManyTenants is the multi-core scaling benchmark: 64
// tenants hammered by parallel clients (GOMAXPROCS × b.SetParallelism), each
// request picking its tenant round-robin so every accountant shard, registry
// shard and telemetry cell stays warm. The "inline" variant ships a 256-item
// answer vector per request; the "resolved" variant names a catalogued
// dataset, so the request body is tiny and the serving cost is pure
// dispatch + charge + mechanism. Each client goroutine reuses one request
// value, one body reader and one response recorder — only the body reader is
// re-armed per iteration (the server wraps and consumes r.Body every
// request) — so the reported B/op and allocs/op are the serving path's, not
// the httptest harness's.
func BenchmarkServerParallelManyTenants(b *testing.B) {
	const tenants = 64
	answers := benchAnswers(256)

	// One pre-marshalled body per tenant, so the benchmark loop does no
	// JSON encoding of its own.
	inlineBodies := make([][]byte, tenants)
	for t := 0; t < tenants; t++ {
		body, err := json.Marshal(TopKRequest{
			Common: Common{Tenant: fmt.Sprintf("tenant-%02d", t), Epsilon: 0.01, Answers: answers, Monotonic: true},
			K:      5,
		})
		if err != nil {
			b.Fatal(err)
		}
		inlineBodies[t] = body
	}
	resolvedBodies := make([][]byte, tenants)
	for t := 0; t < tenants; t++ {
		resolvedBodies[t] = []byte(fmt.Sprintf(
			`{"tenant":"tenant-%02d","epsilon":0.01,"k":5,"dataset":"pos","queries":{"kind":"all_items"}}`, t))
	}

	run := func(b *testing.B, bodies [][]byte, withDataset bool) {
		s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1})
		if withDataset {
			db, err := store.GenerateSynthetic("bmspos", 200, 7)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.RegisterDataset("pos", "synthetic:bmspos", db); err != nil {
				b.Fatal(err)
			}
		}
		h := s.Handler()
		var next atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			// Each goroutine walks the tenant ring from its own offset so
			// concurrent requests spread across tenants, the many-tenant
			// contention profile a production server sees.
			i := next.Add(1)
			var rd bytes.Reader
			req := httptest.NewRequest(http.MethodPost, "/v1/topk", nil)
			w := newBenchRecorder()
			for pb.Next() {
				body := bodies[i%tenants]
				i++
				rd.Reset(body)
				req.Body = io.NopCloser(&rd)
				req.ContentLength = int64(len(body))
				w.reset()
				h.ServeHTTP(w, req)
				if w.code != http.StatusOK {
					b.Fatalf("status = %d, body = %s", w.code, w.body.String())
				}
			}
		})
	}

	b.Run("inline", func(b *testing.B) { run(b, inlineBodies, false) })
	b.Run("resolved", func(b *testing.B) { run(b, resolvedBodies, true) })
}
