// Package persist makes the dpserver's privacy-critical state durable. The
// in-memory service state — per-tenant spent budget (with per-mechanism
// labels) and the dataset catalog — is exactly the state a restart must not
// lose: silently refunding spent ε is a privacy-accounting bug, not an ops
// inconvenience.
//
// The design is a classic write-ahead log with periodic compaction:
//
//   - wal.jsonl — an append-only JSON-lines log. Every admitted budget
//     charge (one record per accountant SpendBatch, preserving the atomic
//     multi-charge), every dataset registration, every admitted dataset
//     append delta and every registered threshold monitor appends one
//     record. Records are written iff the state change committed; the
//     dataset/append/monitor interleaving is preserved through snapshots so
//     replay feeds each restored monitor exactly the appends it saw live.
//   - snapshot.json — a compacted view of everything the WAL said, written
//     atomically (temp file + rename) every Options.CompactEvery WAL
//     records and on clean Close; after a snapshot the WAL is truncated.
//   - datasets/<name>.fimi — one FIMI-format blob per registered dataset;
//     WAL/snapshot records reference the blob so replay can rebuild the
//     transactions (and recompute the item-count vector exactly once).
//
// Appends go through an in-memory buffer drained by a background flusher, so
// the request hot path never waits on fsync (Options.Fsync FsyncBatch); the
// paranoid can trade latency for zero-loss with FsyncAlways.
//
// Crash consistency: WAL segments carry a generation number, recorded in the
// segment's first line and in the snapshot. A crash between "snapshot
// renamed" and "WAL truncated" leaves a stale-generation WAL behind, which
// Open detects and discards instead of double-counting its charges. A torn
// final write (no trailing newline, or an unparsable last line) is recovered
// by truncating the WAL to the last complete record.
package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/freegap/freegap/internal/accountant"
	"github.com/freegap/freegap/internal/dataset"
)

// State-directory layout.
const (
	walName        = "wal.jsonl"
	snapshotName   = "snapshot.json"
	datasetDirName = "datasets"
)

// FsyncMode selects when the WAL is fsynced.
type FsyncMode string

const (
	// FsyncBatch (the default) fsyncs from the background flusher, at most
	// once per flush interval, so charges never pay for disk latency on the
	// request path. A hard crash can lose at most the last unflushed
	// interval of records.
	FsyncBatch FsyncMode = "batch"
	// FsyncAlways writes and fsyncs synchronously inside every append —
	// maximal durability, request-path disk latency.
	FsyncAlways FsyncMode = "always"
	// FsyncOff writes from the flusher but never fsyncs, leaving
	// durability to the OS page cache.
	FsyncOff FsyncMode = "off"
)

// ParseFsyncMode validates a mode string (the -fsync flag).
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch FsyncMode(s) {
	case FsyncBatch, FsyncAlways, FsyncOff:
		return FsyncMode(s), nil
	case "":
		return FsyncBatch, nil
	default:
		return "", fmt.Errorf("persist: unknown fsync mode %q (valid: %q, %q, %q)", s, FsyncBatch, FsyncAlways, FsyncOff)
	}
}

// Default option values applied by Options.withDefaults.
const (
	// DefaultFlushInterval is how often the background flusher drains the
	// append buffer in FsyncBatch/FsyncOff mode.
	DefaultFlushInterval = 25 * time.Millisecond
	// DefaultCompactEvery is how many WAL records accumulate before the
	// flusher folds them into a fresh snapshot and truncates the WAL.
	DefaultCompactEvery = 8192
)

// Options configures a Log. The zero value is ready to use.
type Options struct {
	// Fsync selects the durability mode (default FsyncBatch).
	Fsync FsyncMode
	// FlushInterval is the background flush cadence (default
	// DefaultFlushInterval). Ignored with FsyncAlways.
	FlushInterval time.Duration
	// CompactEvery is the WAL record count that triggers snapshot
	// compaction (default DefaultCompactEvery; negative disables automatic
	// compaction — clean Close still compacts).
	CompactEvery int
}

func (o Options) withDefaults() (Options, error) {
	var err error
	if o.Fsync, err = ParseFsyncMode(string(o.Fsync)); err != nil {
		return o, err
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = DefaultFlushInterval
	}
	if o.FlushInterval < 0 {
		return o, fmt.Errorf("persist: flush interval %v must be positive", o.FlushInterval)
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = DefaultCompactEvery
	}
	return o, nil
}

// record is one WAL line. Exactly one of the kind-specific payloads is set.
type record struct {
	// Kind is "begin" (segment header), "charge", "dataset", "append" or
	// "monitor".
	Kind string `json:"kind"`
	// Gen is the WAL segment generation (kind "begin").
	Gen uint64 `json:"gen,omitempty"`
	// Tenant and Charges describe one admitted accountant charge batch
	// (kind "charge").
	Tenant  string       `json:"tenant,omitempty"`
	Charges []chargeJSON `json:"charges,omitempty"`
	// Dataset describes one dataset registration (kind "dataset").
	Dataset *DatasetRecord `json:"dataset,omitempty"`
	// Append describes one admitted dataset append delta (kind "append").
	Append *AppendRecord `json:"append,omitempty"`
	// Monitor describes one registered threshold monitor (kind "monitor").
	Monitor *MonitorRecord `json:"monitor,omitempty"`
}

type chargeJSON struct {
	Label   string  `json:"label"`
	Epsilon float64 `json:"epsilon"`
}

// DatasetRecord describes one registered dataset durably: where the catalog
// can rebuild it from, not the materialised transactions themselves.
type DatasetRecord struct {
	// Name is the catalog key.
	Name string `json:"name"`
	// Source is the provenance label carried into the catalog ("upload:fimi",
	// "synthetic:kosarak", "file:/data/bmspos.dat").
	Source string `json:"source"`
	// File is the FIMI blob path relative to the state directory, for
	// datasets persisted by SaveDatasetBlob.
	File string `json:"file,omitempty"`
	// Items is the dataset's declared item universe. The FIMI text format
	// only carries observed ids, so replay pads the parsed blob back to
	// this size (synthetic datasets declare items their transactions may
	// not contain).
	Items int `json:"items,omitempty"`
	// Synthetic regenerates the dataset instead of reading a blob.
	Synthetic *SyntheticRecord `json:"synthetic,omitempty"`
}

// SyntheticRecord pins a synthetic generator invocation; regeneration with
// the same kind/scale/seed is deterministic.
type SyntheticRecord struct {
	Kind  string `json:"kind"`
	Scale int    `json:"scale,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
}

// AppendRecord describes one admitted dataset append delta: the transactions
// themselves, so replay extends the restored dataset in admitted order and
// recovers the exact post-append counts.
type AppendRecord struct {
	// Name is the catalog key of the dataset appended to.
	Name string `json:"name"`
	// Seq is the 1-based per-dataset append sequence number. Appends to
	// different datasets may interleave arbitrarily in the WAL (each dataset
	// has its own ordering domain), but each dataset's subsequence must be
	// contiguous — replay checks it. Zero marks a record journalled before
	// sequence numbers existed; replay skips the check for those.
	Seq uint64 `json:"seq,omitempty"`
	// Records are the appended transactions.
	Records [][]int32 `json:"records"`
}

// MonitorRecord pins one registered SVT threshold monitor. Everything that
// shapes the monitor's verdict stream is here — including the per-monitor
// noise seed — so replaying the event stream reproduces the verdict history
// byte for byte.
type MonitorRecord struct {
	// ID is the server-assigned monitor id ("m1", "m2", ...).
	ID string `json:"id"`
	// Tenant is the budget the monitor's epsilon was charged to.
	Tenant string `json:"tenant"`
	// Dataset is the catalog key the monitor watches.
	Dataset string `json:"dataset"`
	// Item is the item id whose count is compared against the threshold.
	Item int32 `json:"item"`
	// Threshold is the public comparison threshold.
	Threshold float64 `json:"threshold"`
	// Epsilon is the monitor's total privacy budget.
	Epsilon float64 `json:"epsilon"`
	// MaxAnswers caps how many above-threshold verdicts the monitor may
	// release before retiring (the SVT answer budget k).
	MaxAnswers int `json:"max_answers"`
	// Adaptive selects Adaptive-SVT-with-Gap over plain SVT-with-Gap.
	Adaptive bool `json:"adaptive,omitempty"`
	// Monotonic records that the watched query is monotone (it is: a
	// sensitivity-1 counting query), halving the query-side noise scale.
	Monotonic bool `json:"monotonic,omitempty"`
	// Seed seeds the monitor's private noise stream.
	Seed uint64 `json:"seed"`
}

// Event is one replayed catalog-stream event. Exactly one field is non-nil.
// Order matters and is preserved through snapshots: a monitor registered
// between two appends must only see the later one replayed into its verdict
// stream.
type Event struct {
	Dataset *DatasetRecord
	Append  *AppendRecord
	Monitor *MonitorRecord
}

// snapshotJSON is the on-disk snapshot schema.
type snapshotJSON struct {
	Version int `json:"version"`
	// Gen is the generation of the WAL segment started after this snapshot;
	// a WAL with an older generation is already folded in.
	Gen      uint64                `json:"gen"`
	Tenants  map[string]tenantJSON `json:"tenants"`
	Datasets []DatasetRecord       `json:"datasets"`
	// Events is the ordered catalog event stream (registrations, appends,
	// monitors). Datasets above is kept redundantly so snapshots stay
	// readable by event-unaware tooling; a snapshot without Events (written
	// before streaming existed) falls back to Datasets.
	Events []eventJSON `json:"events,omitempty"`
}

// eventJSON is one snapshot event; exactly one field is set.
type eventJSON struct {
	Dataset *DatasetRecord `json:"dataset,omitempty"`
	Append  *AppendRecord  `json:"append,omitempty"`
	Monitor *MonitorRecord `json:"monitor,omitempty"`
}

type tenantJSON struct {
	// Charges is the expenditure log aggregated by label, label-sorted.
	Charges []chargeJSON `json:"charges"`
	// ChargeCount is the number of originally admitted charges.
	ChargeCount int `json:"charge_count"`
}

// TenantState is one tenant's replayed spending state.
type TenantState struct {
	// Charges is the expenditure log to restore. Charges replayed from the
	// WAL keep their admission order; charges folded through a snapshot are
	// aggregated by label.
	Charges []accountant.Charge
	// ChargeCount is the number of originally admitted charges.
	ChargeCount int
}

// State is everything the log knows, for the serving layer to restore at
// startup.
type State struct {
	// Tenants maps tenant id to its spending state.
	Tenants map[string]TenantState
	// Datasets lists the registered datasets in registration order (the
	// dataset events of Events, kept for callers that only need the catalog).
	Datasets []DatasetRecord
	// Events is the full ordered catalog event stream: registrations,
	// appends and monitor registrations, in admitted order.
	Events []Event
}

// tenantAgg accumulates one tenant's state inside the log.
type tenantAgg struct {
	charges []accountant.Charge // in replay/commit order; labels may repeat
	count   int
}

// Log is the durable state log: replayed state plus an append channel for
// new mutations. All methods are safe for concurrent use.
//
// Locking: mu guards the in-memory aggregate and the append buffer and is
// held only for memory work, so the append hot path never waits on disk in
// the batched fsync modes. ioMu serializes the file operations (drains,
// compaction, close) and is always acquired before mu. A failed write or
// fsync marks the log dead (sticky err): durability is gone until the log
// is reopened, further buffered bytes are dropped rather than appended
// after a possibly torn write, and Err surfaces the condition for the
// serving layer to page on.
type Log struct {
	dir  string
	opts Options

	// ioMu serializes file I/O; acquired before mu.
	ioMu     sync.Mutex
	f        *os.File
	lock     *os.File // flock on the state directory (nil on non-unix)
	drainBuf []byte   // reusable drain scratch, guarded by ioMu

	mu      sync.Mutex
	buf     bytes.Buffer // pending WAL bytes, drained by the flusher
	pending int          // records in buf
	walRecs int          // records in the WAL segment (drained + pending)
	gen     uint64       // current WAL segment generation
	tenants map[string]*tenantAgg
	events  []Event // ordered catalog event stream (datasets, appends, monitors)
	dsNames map[string]bool
	err     error // sticky I/O error; non-nil means the log is dead
	closed  bool  // appends refused (set at the start of shutdown)
	// fileClosed guards late public Compact calls from writing to a closed
	// fd; set once the WAL file is closed.
	fileClosed bool

	kick      chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	// metrics holds the optional observability hooks (atomic so SetMetrics
	// cannot race the already-running flusher goroutine).
	metrics atomic.Pointer[Metrics]
}

// Metrics holds optional observability hooks the serving layer wires into
// the log — the WAL and snapshotting were previously a black box at runtime,
// and fsync stalls are the classic hidden tail-latency source. Every field
// may be nil. Callbacks must be fast and must not call back into the log.
type Metrics struct {
	// ObserveFsync is called with the duration of every WAL write+fsync
	// drain (the batched group fsync, or the synchronous FsyncAlways write).
	ObserveFsync func(d time.Duration)
	// ObserveCompaction is called with the duration of every snapshot
	// compaction (marshal, atomic install, WAL truncate).
	ObserveCompaction func(d time.Duration)
}

// SetMetrics installs the observability hooks. Safe to call at any time;
// typically once, right after Open.
func (l *Log) SetMetrics(m Metrics) { l.metrics.Store(&m) }

// Pending returns the number of journalled records buffered in memory
// awaiting the next drain to disk — the WAL queue depth. A persistently
// large value means the flusher is not keeping up with admission traffic.
func (l *Log) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pending
}

// Generation returns the current WAL segment generation; it increments on
// every snapshot compaction, so it doubles as a compaction counter.
func (l *Log) Generation() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// Open opens (creating if necessary) the state directory, loads the
// snapshot, replays the WAL — recovering a torn tail by truncating to the
// last complete record and discarding a stale-generation segment left by a
// crash mid-compaction — and returns a log ready for appends. The replayed
// state is available from State.
func Open(dir string, opts Options) (*Log, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if dir == "" {
		return nil, errors.New("persist: state directory must be non-empty")
	}
	if err := os.MkdirAll(filepath.Join(dir, datasetDirName), 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating state directory: %w", err)
	}
	l := &Log{
		dir:     dir,
		opts:    opts,
		tenants: make(map[string]*tenantAgg),
		dsNames: make(map[string]bool),
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	// One process per state directory: a second concurrent opener would
	// replay the same spent budgets into its own accountants (double-spend)
	// and corrupt the WAL with interleaved appends.
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	l.lock = lock

	snapGen, err := l.loadSnapshot()
	if err != nil {
		l.unlock()
		return nil, err
	}
	l.gen = snapGen

	f, err := os.OpenFile(l.walPath(), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		l.unlock()
		return nil, fmt.Errorf("persist: opening WAL: %w", err)
	}
	l.f = f
	if err := l.replayWAL(snapGen); err != nil {
		f.Close()
		l.unlock()
		return nil, err
	}

	l.wg.Add(1)
	go l.flusher()
	return l, nil
}

func (l *Log) walPath() string      { return filepath.Join(l.dir, walName) }
func (l *Log) snapshotPath() string { return filepath.Join(l.dir, snapshotName) }

// Dir returns the state directory the log was opened on.
func (l *Log) Dir() string { return l.dir }

// BlobPath resolves a DatasetRecord's blob file against the state directory.
func (l *Log) BlobPath(rec DatasetRecord) string {
	return filepath.Join(l.dir, filepath.FromSlash(rec.File))
}

// loadSnapshot folds snapshot.json (if any) into the aggregate and returns
// the generation of the WAL segment the snapshot expects next.
func (l *Log) loadSnapshot() (uint64, error) {
	data, err := os.ReadFile(l.snapshotPath())
	if errors.Is(err, os.ErrNotExist) {
		return 1, nil
	}
	if err != nil {
		return 0, fmt.Errorf("persist: reading snapshot: %w", err)
	}
	var snap snapshotJSON
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, fmt.Errorf("persist: corrupt snapshot %s: %w", l.snapshotPath(), err)
	}
	if snap.Version != 1 {
		return 0, fmt.Errorf("persist: snapshot version %d not supported", snap.Version)
	}
	for tenant, ts := range snap.Tenants {
		agg := &tenantAgg{count: ts.ChargeCount}
		for _, c := range ts.Charges {
			agg.charges = append(agg.charges, accountant.Charge{Label: c.Label, Epsilon: c.Epsilon})
		}
		l.tenants[tenant] = agg
	}
	if len(snap.Events) > 0 {
		for _, ev := range snap.Events {
			switch {
			case ev.Dataset != nil:
				if !l.dsNames[ev.Dataset.Name] {
					l.dsNames[ev.Dataset.Name] = true
					l.events = append(l.events, Event{Dataset: ev.Dataset})
				}
			case ev.Append != nil:
				l.events = append(l.events, Event{Append: ev.Append})
			case ev.Monitor != nil:
				l.events = append(l.events, Event{Monitor: ev.Monitor})
			}
		}
	} else {
		// Pre-streaming snapshot: the catalog is just its registrations.
		for i := range snap.Datasets {
			rec := snap.Datasets[i]
			if !l.dsNames[rec.Name] {
				l.dsNames[rec.Name] = true
				l.events = append(l.events, Event{Dataset: &rec})
			}
		}
	}
	if snap.Gen == 0 {
		snap.Gen = 1
	}
	return snap.Gen, nil
}

// replayWAL scans the open WAL file, applying records to the aggregate. It
// truncates a torn tail, discards a stale-generation segment, and leaves the
// file positioned for appends.
func (l *Log) replayWAL(snapGen uint64) error {
	info, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("persist: stat WAL: %w", err)
	}
	if info.Size() == 0 {
		return l.beginSegment(snapGen)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("persist: seeking WAL: %w", err)
	}

	br := bufio.NewReaderSize(l.f, 1<<20)
	var (
		offset int64 // end of the line just read
		good   int64 // end of the last fully applied record
		first  = true
		stale  bool
		nrec   int
	)
	for {
		line, err := br.ReadBytes('\n')
		switch {
		case err == io.EOF && len(line) == 0:
			// Clean end of file.
			return l.finishReplay(good, stale, snapGen, nrec)
		case err == io.EOF:
			// Torn final write: no trailing newline. Drop the partial line.
			return l.finishReplay(good, stale, snapGen, nrec)
		case err != nil:
			return fmt.Errorf("persist: reading WAL: %w", err)
		}
		lineStart := offset
		offset += int64(len(line))

		var rec record
		if uerr := json.Unmarshal(line, &rec); uerr != nil {
			// A crash tears only the tail, so an unparsable line is
			// recoverable iff nothing readable follows it. If later lines
			// still parse, this is mid-file corruption — truncating there
			// would silently refund every later admitted charge, so refuse
			// to open instead (the unsafe direction for a privacy
			// accountant is never the default).
			for {
				rest, rerr := br.ReadBytes('\n')
				if len(rest) > 0 {
					var probe record
					if json.Unmarshal(rest, &probe) == nil {
						return fmt.Errorf("persist: WAL %s corrupt at byte %d: valid records follow an unparsable line; refusing to replay a hole in the charge history", l.walPath(), lineStart)
					}
				}
				if rerr != nil {
					break
				}
			}
			return l.finishReplay(good, stale, snapGen, nrec)
		}
		if first {
			first = false
			if rec.Kind == "begin" {
				if rec.Gen < snapGen {
					// Crash between snapshot rename and WAL truncate: this
					// whole segment is already folded into the snapshot.
					stale = true
				}
				good = offset
				continue
			}
			// Headerless segment (shouldn't happen, but don't lose data):
			// treat it as the snapshot's expected generation.
		}
		if stale {
			good = offset
			continue
		}
		if err := l.apply(rec); err != nil {
			return err
		}
		nrec++
		good = offset
	}
}

// finishReplay truncates the WAL to the last complete record (or rewrites
// the segment header when the segment was stale) and positions the file for
// appends.
func (l *Log) finishReplay(good int64, stale bool, snapGen uint64, nrec int) error {
	if stale {
		// Discard the already-compacted segment and start a fresh one.
		if err := l.truncateTo(0); err != nil {
			return err
		}
		return l.beginSegment(snapGen)
	}
	if err := l.truncateTo(good); err != nil {
		return err
	}
	if good == 0 {
		// Nothing usable survived (e.g. a torn very first line).
		return l.beginSegment(snapGen)
	}
	l.walRecs = nrec
	return nil
}

func (l *Log) truncateTo(n int64) error {
	if err := l.f.Truncate(n); err != nil {
		return fmt.Errorf("persist: truncating WAL: %w", err)
	}
	if _, err := l.f.Seek(n, io.SeekStart); err != nil {
		return fmt.Errorf("persist: seeking WAL: %w", err)
	}
	return nil
}

// writeSegmentHeader writes (and, unless fsync is off, syncs) the segment
// header record for generation gen — the one place the header format lives,
// shared by Open-time segment starts and compaction.
func (l *Log) writeSegmentHeader(gen uint64) error {
	line, err := marshalLine(record{Kind: "begin", Gen: gen})
	if err != nil {
		return err
	}
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("persist: writing WAL segment header: %w", err)
	}
	if l.opts.Fsync != FsyncOff {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("persist: syncing WAL: %w", err)
		}
	}
	return nil
}

// beginSegment starts segment gen during Open (single-threaded: no locks).
func (l *Log) beginSegment(gen uint64) error {
	l.gen = gen
	l.walRecs = 0
	return l.writeSegmentHeader(gen)
}

// apply folds one replayed record into the aggregate.
func (l *Log) apply(rec record) error {
	switch rec.Kind {
	case "charge":
		if rec.Tenant == "" || len(rec.Charges) == 0 {
			return fmt.Errorf("persist: corrupt charge record (tenant %q, %d charges)", rec.Tenant, len(rec.Charges))
		}
		agg := l.tenant(rec.Tenant)
		for _, c := range rec.Charges {
			if !(c.Epsilon > 0) {
				return fmt.Errorf("persist: corrupt charge record: epsilon %v (tenant %q)", c.Epsilon, rec.Tenant)
			}
			agg.charges = append(agg.charges, accountant.Charge{Label: c.Label, Epsilon: c.Epsilon})
			agg.count++
		}
	case "dataset":
		if rec.Dataset == nil || rec.Dataset.Name == "" {
			return errors.New("persist: corrupt dataset record")
		}
		if !l.dsNames[rec.Dataset.Name] {
			l.dsNames[rec.Dataset.Name] = true
			l.events = append(l.events, Event{Dataset: rec.Dataset})
		}
	case "append":
		if rec.Append == nil || rec.Append.Name == "" {
			return errors.New("persist: corrupt append record")
		}
		// Membership is not checked: the dataset may be catalogued outside
		// the journal (Config.Datasets), which the serving layer restores
		// before replaying events.
		l.events = append(l.events, Event{Append: rec.Append})
	case "monitor":
		if rec.Monitor == nil || rec.Monitor.ID == "" || rec.Monitor.Dataset == "" {
			return errors.New("persist: corrupt monitor record")
		}
		l.events = append(l.events, Event{Monitor: rec.Monitor})
	case "begin":
		// A second header mid-file is harmless; ignore it.
	default:
		return fmt.Errorf("persist: unknown WAL record kind %q", rec.Kind)
	}
	return nil
}

func (l *Log) tenant(name string) *tenantAgg {
	agg, ok := l.tenants[name]
	if !ok {
		agg = &tenantAgg{}
		l.tenants[name] = agg
	}
	return agg
}

// State returns a copy of the replayed-plus-appended state. Call it right
// after Open to restore the serving layer.
func (l *Log) State() State {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := State{Tenants: make(map[string]TenantState, len(l.tenants))}
	for tenant, agg := range l.tenants {
		charges := make([]accountant.Charge, len(agg.charges))
		copy(charges, agg.charges)
		st.Tenants[tenant] = TenantState{Charges: charges, ChargeCount: agg.count}
	}
	st.Events = append(st.Events, l.events...)
	st.Datasets = datasetList(l.events)
	return st
}

// datasetList projects the registration events out of an event stream.
func datasetList(events []Event) []DatasetRecord {
	var out []DatasetRecord
	for _, ev := range events {
		if ev.Dataset != nil {
			out = append(out, *ev.Dataset)
		}
	}
	return out
}

// Err returns the sticky I/O error, if any. A non-nil Err means the log is
// dead: the in-memory service keeps running, but nothing further reaches
// disk until the log is reopened (appending past a possibly torn write
// would strand records beyond the point replay's tail recovery can reach).
// The serving layer surfaces it through /healthz and /metrics; operators
// should treat it as a page.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func marshalLine(rec record) ([]byte, error) {
	data, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("persist: encoding WAL record: %w", err)
	}
	return append(data, '\n'), nil
}

// AppendCharge journals one admitted charge batch for tenant. It is the
// accountant journal hook: called iff the charge committed, in commit order.
// In FsyncBatch/FsyncOff mode it only buffers (the flusher drains within one
// flush interval); in FsyncAlways mode it writes and syncs before returning.
func (l *Log) AppendCharge(tenant string, charges []accountant.Charge) {
	if len(charges) == 0 {
		return
	}
	rec := record{Kind: "charge", Tenant: tenant, Charges: make([]chargeJSON, len(charges))}
	for i, c := range charges {
		rec.Charges[i] = chargeJSON{Label: c.Label, Epsilon: c.Epsilon}
	}
	line, err := marshalLine(rec)
	if err != nil {
		l.stickyErr(err)
		return
	}
	l.append(line, func() bool {
		agg := l.tenant(tenant)
		agg.charges = append(agg.charges, charges...)
		agg.count += len(charges)
		return true
	})
}

// AppendDataset journals one dataset registration. Call SaveDatasetBlob
// first for blob-backed records so the file the record references exists
// before the record does.
func (l *Log) AppendDataset(rec DatasetRecord) error {
	if rec.Name == "" {
		return errors.New("persist: dataset record needs a name")
	}
	line, err := marshalLine(record{Kind: "dataset", Dataset: &rec})
	if err != nil {
		return err
	}
	var dup bool
	enqueued := l.append(line, func() bool {
		if l.dsNames[rec.Name] {
			dup = true
			return false
		}
		l.dsNames[rec.Name] = true
		l.events = append(l.events, Event{Dataset: &rec})
		return true
	})
	switch {
	case dup:
		return fmt.Errorf("persist: dataset %q already journalled", rec.Name)
	case !enqueued:
		return l.deadOrClosed()
	}
	return nil
}

// AppendDelta journals one admitted dataset append. Like AppendDataset it is
// called before the catalog applies the delta: the WAL is the source of
// truth, so a journalled-but-unapplied append (a crash in between) replays
// into the same state the uninterrupted run would have reached, while an
// applied-but-unjournalled one would silently shrink the dataset on restart.
func (l *Log) AppendDelta(rec AppendRecord) error {
	if rec.Name == "" {
		return errors.New("persist: append record needs a dataset name")
	}
	line, err := marshalLine(record{Kind: "append", Append: &rec})
	if err != nil {
		return err
	}
	if !l.append(line, func() bool {
		l.events = append(l.events, Event{Append: &rec})
		return true
	}) {
		return l.deadOrClosed()
	}
	return nil
}

// AppendMonitor journals one registered threshold monitor. Called after the
// monitor's epsilon was charged (the charge has its own WAL record) and
// before verdicts are released.
func (l *Log) AppendMonitor(rec MonitorRecord) error {
	if rec.ID == "" || rec.Dataset == "" {
		return errors.New("persist: monitor record needs an id and a dataset")
	}
	line, err := marshalLine(record{Kind: "monitor", Monitor: &rec})
	if err != nil {
		return err
	}
	if !l.append(line, func() bool {
		l.events = append(l.events, Event{Monitor: &rec})
		return true
	}) {
		return l.deadOrClosed()
	}
	return nil
}

// deadOrClosed renders the refusal reason of a declined append.
func (l *Log) deadOrClosed() error {
	if err := l.Err(); err != nil {
		return fmt.Errorf("persist: log is dead: %w", err)
	}
	return errors.New("persist: log is closed")
}

// append runs update under the state lock and, when it returns true,
// enqueues line for the WAL. It reports whether the record was enqueued
// (false when the log is closed or update declined). In FsyncAlways mode the
// record is written and synced before append returns; otherwise the flusher
// drains it within one flush interval.
func (l *Log) append(line []byte, update func() bool) bool {
	always := l.opts.Fsync == FsyncAlways
	if always {
		// ioMu before mu, the global lock order, so the synchronous drain
		// below runs with no other file op interleaved.
		l.ioMu.Lock()
		defer l.ioMu.Unlock()
	}
	l.mu.Lock()
	// A dead log (sticky I/O error) refuses appends like a closed one: the
	// record would only be dropped by the next drain, and AppendDataset
	// callers must see the failure rather than a phantom success.
	if l.closed || l.err != nil || !update() {
		l.mu.Unlock()
		return false
	}
	l.buf.Write(line)
	l.pending++
	l.walRecs++
	l.mu.Unlock()

	if always {
		l.drainIO(true)
		// A failed synchronous drain set the sticky error just now (an
		// older failure would have refused the append above) — report it so
		// AppendDataset callers can roll back instead of claiming
		// durability that does not exist.
		return l.Err() == nil
	}
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return true
}

// drainIO moves the pending buffer to the WAL file, fsyncing when sync is
// set (and the mode is not FsyncOff). Caller holds ioMu. On a write or sync
// failure the log goes dead: the error sticks, the buffered bytes are
// dropped, and every later append is discarded — after a possibly torn
// write, appending more bytes would put records beyond the tear where
// replay's tail recovery could never reach them.
func (l *Log) drainIO(sync bool) {
	l.mu.Lock()
	if l.err != nil || l.buf.Len() == 0 {
		// Nothing to write: every drain that writes also syncs, so an
		// empty-buffer sync would be redundant — skipping it keeps an idle
		// server from fsyncing on every flusher tick.
		l.buf.Reset()
		l.pending = 0
		l.mu.Unlock()
		return
	}
	l.drainBuf = append(l.drainBuf[:0], l.buf.Bytes()...)
	l.buf.Reset()
	l.pending = 0
	l.mu.Unlock()

	start := time.Now()
	var err error
	if len(l.drainBuf) > 0 {
		if _, werr := l.f.Write(l.drainBuf); werr != nil {
			err = fmt.Errorf("persist: writing WAL: %w", werr)
		}
	}
	if err == nil && sync && l.opts.Fsync != FsyncOff {
		if serr := l.f.Sync(); serr != nil {
			err = fmt.Errorf("persist: syncing WAL: %w", serr)
		}
	}
	if m := l.metrics.Load(); m != nil && m.ObserveFsync != nil {
		m.ObserveFsync(time.Since(start))
	}
	if cap(l.drainBuf) > maxRetainedDrainBuf {
		// One oversized drain (a bulk dataset registration, say) would
		// otherwise pin its peak capacity for the life of the log.
		l.drainBuf = nil
	}
	if err != nil {
		l.stickyErr(err)
	}
}

// maxRetainedDrainBuf caps the scratch buffer drainIO keeps between drains;
// a drain that needed more gets a fresh allocation and the oversized buffer
// is released to the collector.
const maxRetainedDrainBuf = 1 << 20

func errOnce(existing, next error) error {
	if existing != nil {
		return existing
	}
	return next
}

func (l *Log) stickyErr(err error) {
	l.mu.Lock()
	l.err = errOnce(l.err, err)
	l.mu.Unlock()
}

// flusher drains the append buffer on a ticker (and on kicks), fsyncing per
// the mode and compacting when the segment grows past CompactEvery records.
func (l *Log) flusher() {
	defer l.wg.Done()
	ticker := time.NewTicker(l.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-ticker.C:
		case <-l.kick:
		}
		l.ioMu.Lock()
		l.drainIO(true)
		l.mu.Lock()
		compact := l.opts.CompactEvery > 0 && l.walRecs >= l.opts.CompactEvery
		l.mu.Unlock()
		if compact {
			l.compactIO()
		}
		l.ioMu.Unlock()
	}
}

// Flush synchronously drains the pending buffer to disk (fsyncing unless the
// mode is FsyncOff) and reports the sticky error state.
func (l *Log) Flush() error {
	l.ioMu.Lock()
	l.drainIO(true)
	l.ioMu.Unlock()
	return l.Err()
}

// Compact synchronously folds the current state into a fresh snapshot and
// truncates the WAL.
func (l *Log) Compact() error {
	l.ioMu.Lock()
	l.drainIO(true)
	l.compactIO()
	l.ioMu.Unlock()
	return l.Err()
}

// compactIO writes snapshot.json atomically (temp + rename) from the
// in-memory aggregate, then starts a fresh WAL segment with the next
// generation. Caller holds ioMu (which alone excludes drains) but NOT l.mu:
// the state lock is held only to copy the aggregate and to publish the new
// segment counters, so charge admissions never stall behind the snapshot's
// disk writes. Records appended while the snapshot is being written stay in
// the buffer (drains need ioMu) and land in the fresh segment afterwards —
// counted once, by the segment, not the snapshot.
func (l *Log) compactIO() {
	l.mu.Lock()
	if l.err != nil || l.pending > 0 || l.fileClosed {
		// A dead log must not compact (its file is past a torn write), and
		// an undrained buffer would replay its records into the
		// post-snapshot segment, double-counting them — the snapshot built
		// from the in-memory aggregate would already include them.
		l.mu.Unlock()
		return
	}
	start := time.Now()
	defer func() {
		if m := l.metrics.Load(); m != nil && m.ObserveCompaction != nil {
			m.ObserveCompaction(time.Since(start))
		}
	}()
	nextGen := l.gen + 1
	snap := snapshotJSON{
		Version: 1,
		Gen:     nextGen,
		Tenants: make(map[string]tenantJSON, len(l.tenants)),
	}
	for tenant, agg := range l.tenants {
		byLabel := make(map[string]float64, 8)
		for _, c := range agg.charges {
			byLabel[c.Label] += c.Epsilon
		}
		labels := make([]string, 0, len(byLabel))
		for label := range byLabel {
			labels = append(labels, label)
		}
		sort.Strings(labels)
		ts := tenantJSON{Charges: make([]chargeJSON, len(labels)), ChargeCount: agg.count}
		for i, label := range labels {
			ts.Charges[i] = chargeJSON{Label: label, Epsilon: byLabel[label]}
		}
		snap.Tenants[tenant] = ts
	}
	snap.Datasets = datasetList(l.events)
	snap.Events = make([]eventJSON, len(l.events))
	for i, ev := range l.events {
		snap.Events[i] = eventJSON{Dataset: ev.Dataset, Append: ev.Append, Monitor: ev.Monitor}
	}
	l.mu.Unlock()

	data, err := json.Marshal(&snap)
	if err != nil {
		l.stickyErr(fmt.Errorf("persist: encoding snapshot: %w", err))
		return
	}
	tmp := l.snapshotPath() + ".tmp"
	if err := writeFileSync(tmp, data, l.opts.Fsync != FsyncOff); err != nil {
		l.stickyErr(err)
		return
	}
	if err := os.Rename(tmp, l.snapshotPath()); err != nil {
		l.stickyErr(fmt.Errorf("persist: installing snapshot: %w", err))
		return
	}
	syncDir(l.dir)

	// The snapshot now covers everything; retire the segment. A crash right
	// here leaves a stale-generation WAL that Open discards by generation.
	if err := l.truncateTo(0); err != nil {
		l.stickyErr(err)
		return
	}
	if err := l.writeSegmentHeader(nextGen); err != nil {
		l.stickyErr(err)
		return
	}
	l.mu.Lock()
	l.gen = nextGen
	// Records buffered while the snapshot was written belong to the new
	// segment and were not in the snapshot's state copy.
	l.walRecs = l.pending
	l.mu.Unlock()
}

// SaveDatasetBlob persists db as a FIMI blob under the state directory and
// returns the DatasetRecord.File value referencing it. The blob is written
// atomically and (unless fsync is off) synced before the function returns,
// so a subsequent AppendDataset never references a file that might vanish.
func (l *Log) SaveDatasetBlob(name string, db *dataset.Transactions) (string, error) {
	rel := datasetDirName + "/" + name + ".fimi"
	abs := filepath.Join(l.dir, datasetDirName, name+".fimi")
	var buf bytes.Buffer
	if err := dataset.WriteFIMI(&buf, db); err != nil {
		return "", fmt.Errorf("persist: encoding dataset blob %q: %w", name, err)
	}
	if err := writeFileSync(abs+".tmp", buf.Bytes(), l.opts.Fsync != FsyncOff); err != nil {
		return "", err
	}
	if err := os.Rename(abs+".tmp", abs); err != nil {
		return "", fmt.Errorf("persist: installing dataset blob %q: %w", name, err)
	}
	syncDir(filepath.Join(l.dir, datasetDirName))
	return rel, nil
}

// writeFileSync writes data to path, optionally fsyncing before close.
func writeFileSync(path string, data []byte, sync bool) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: creating %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("persist: writing %s: %w", path, err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("persist: syncing %s: %w", path, err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: closing %s: %w", path, err)
	}
	return nil
}

// syncDir best-effort fsyncs a directory so renames into it are durable.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}

// Close flushes pending records, compacts the WAL into a final snapshot and
// closes the file — the clean-shutdown path. It is idempotent; after Close
// (or Abort) appends are silently dropped.
func (l *Log) Close() error { return l.shutdown(true) }

// Abort flushes pending records and closes the file WITHOUT compacting, so
// the WAL is left exactly as a crashed process would leave it (modulo the
// final flush). The crash-recovery tests use it to simulate a kill; it also
// makes a later Close a no-op.
func (l *Log) Abort() error { return l.shutdown(false) }

func (l *Log) shutdown(compact bool) error {
	var err error
	l.closeOnce.Do(func() {
		close(l.done)
		l.wg.Wait()
		l.ioMu.Lock()
		// Refuse new appends BEFORE the final drain: an append slipping in
		// after the drain copied the buffer would be acknowledged and then
		// silently never written.
		l.mu.Lock()
		l.closed = true
		l.mu.Unlock()
		l.drainIO(true)
		if compact {
			l.compactIO()
		}
		l.mu.Lock()
		err = errOnce(l.err, l.f.Close())
		l.fileClosed = true
		l.mu.Unlock()
		l.unlock()
		l.ioMu.Unlock()
	})
	if err != nil {
		return err
	}
	return l.Err()
}

// unlock releases the state-directory flock (no-op when absent).
func (l *Log) unlock() {
	if l.lock != nil {
		l.lock.Close()
		l.lock = nil
	}
}

// FailForTest marks the log dead with err, as a WAL write/fsync failure
// would. Crash-recovery and fail-closed tests use it to inject the fault;
// production code must never call it.
func (l *Log) FailForTest(err error) { l.stickyErr(err) }
