package server

// Streaming: appendable datasets and served SVT threshold monitors.
//
// POST /v1/datasets/{name}/append ingests a FIMI-formatted delta and extends
// the dataset's derived state incrementally (store.Append installs a new
// generation; nothing rescans the existing records). POST /v1/monitors
// registers a long-lived threshold query over one item of a dataset: the
// monitor's whole ε is charged once at registration, and every subsequent
// append to the dataset advances the monitor's resumable SVT run by one
// query, streaming the verdict (and, above threshold, the free gap) to SSE
// subscribers on GET /v1/monitors/{id}/stream.
//
// Replay invariant: the WAL's event order must equal the order monitors
// observed the world in. A monitor journalled before an append must take its
// registration-time verdict against the pre-append counts, and each append's
// verdicts against exactly the record count the journal says was current.
// streamMu serializes (journal monitor → register → seq-0 verdict) against
// (journal append → apply → fan out verdicts) to pin that order; with each
// monitor's noise stream a pure function of its journalled seed, a restart
// replays the event stream and reproduces every verdict bit for bit.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/engine"
	"github.com/freegap/freegap/internal/persist"
	"github.com/freegap/freegap/internal/rng"
	"github.com/freegap/freegap/internal/store"
)

// mechMonitors is the metrics/accounting label for the monitor endpoints; a
// monitor's one-time ε charge appears under it in the tenant's breakdown.
const mechMonitors = "monitors"

// monitorSubBuffer is the per-subscriber verdict channel depth. A subscriber
// that falls this far behind is dropped (its channel closed) rather than
// allowed to stall appends; the client reconnects and replays history.
const monitorSubBuffer = 64

// monitor is one registered threshold monitor: the immutable registration
// parameters plus the resumable SVT run, its verdict history, and the live
// SSE subscribers. mu guards the mutable tail; the registration fields are
// written once under streamMu before the monitor is published.
type monitor struct {
	id        string
	tenant    string
	dataset   string
	item      int32
	threshold float64
	epsilon   float64
	maxAns    int
	adaptive  bool
	seed      uint64

	mu       sync.Mutex
	stream   *core.SVTStream
	verdicts []MonitorVerdict
	subs     map[chan MonitorVerdict]struct{}
}

// observe advances the monitor's SVT run by one query (the item's current
// count) and, if the run is still live, records and fans out the verdict.
// records is the dataset record count the query was evaluated at.
func (m *monitor) observe(count float64, records int) *MonitorVerdict {
	m.mu.Lock()
	defer m.mu.Unlock()
	item, ok := m.stream.Arrive(count)
	if !ok {
		return nil
	}
	v := MonitorVerdict{
		Monitor:    m.id,
		Seq:        len(m.verdicts),
		Records:    records,
		Above:      item.Above,
		Branch:     item.Branch.String(),
		BudgetUsed: item.BudgetUsed,
		Retired:    m.stream.Done(),
	}
	if item.Above {
		v.Gap = item.Gap
	}
	m.verdicts = append(m.verdicts, v)
	for ch := range m.subs {
		select {
		case ch <- v:
		default:
			// The subscriber's buffer is full: drop it instead of blocking
			// the append path. Closing the channel tells its handler to
			// hang up; the client reconnects and replays the history.
			delete(m.subs, ch)
			close(ch)
		}
	}
	return &v
}

// info snapshots the monitor for the API.
func (m *monitor) info() MonitorInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MonitorInfo{
		ID:          m.id,
		Tenant:      m.tenant,
		Dataset:     m.dataset,
		Item:        m.item,
		Threshold:   m.threshold,
		Epsilon:     m.epsilon,
		BudgetSpent: m.stream.Spent(),
		MaxAnswers:  m.maxAns,
		Adaptive:    m.adaptive,
		Verdicts:    len(m.verdicts),
		AboveCount:  m.stream.AboveCount(),
		Retired:     m.stream.Done(),
	}
}

// subscribe registers a new SSE subscriber and returns the verdict history
// it must replay first. History snapshot and registration happen under one
// lock acquisition, so the subscriber sees every verdict exactly once.
func (m *monitor) subscribe() ([]MonitorVerdict, chan MonitorVerdict) {
	m.mu.Lock()
	defer m.mu.Unlock()
	history := append([]MonitorVerdict(nil), m.verdicts...)
	ch := make(chan MonitorVerdict, monitorSubBuffer)
	if m.subs == nil {
		m.subs = make(map[chan MonitorVerdict]struct{})
	}
	m.subs[ch] = struct{}{}
	return history, ch
}

// unsubscribe removes a subscriber registered by subscribe. The channel is
// only closed if observe has not already dropped it for falling behind.
func (m *monitor) unsubscribe(ch chan MonitorVerdict) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.subs[ch]; ok {
		delete(m.subs, ch)
		close(ch)
	}
}

// newMonitorStream builds the monitor's resumable SVT run from its
// registration parameters and journalled seed. Monotonic is always set: the
// monitored query is a single item count, sensitivity-1 and monotone.
func newMonitorStream(rec persist.MonitorRecord) (*core.SVTStream, error) {
	mech := &core.AdaptiveSVTWithGap{
		K:          rec.MaxAnswers,
		Epsilon:    rec.Epsilon,
		Threshold:  rec.Threshold,
		Monotonic:  true,
		MaxAnswers: rec.MaxAnswers,
	}
	if !rec.Adaptive {
		mech.SigmaMultiplier = math.Inf(1) // plain Sparse-Vector-with-Gap
	}
	return core.NewSVTStream(mech, rng.NewXoshiro(rec.Seed))
}

// addMonitorLocked constructs, indexes and publishes a monitor from its
// journalled record. Caller holds streamMu (or is single-threaded startup).
func (s *Server) addMonitorLocked(rec persist.MonitorRecord) (*monitor, error) {
	stream, err := newMonitorStream(rec)
	if err != nil {
		return nil, fmt.Errorf("server: monitor %q: %w", rec.ID, err)
	}
	m := &monitor{
		id:        rec.ID,
		tenant:    rec.Tenant,
		dataset:   rec.Dataset,
		item:      rec.Item,
		threshold: rec.Threshold,
		epsilon:   rec.Epsilon,
		maxAns:    rec.MaxAnswers,
		adaptive:  rec.Adaptive,
		seed:      rec.Seed,
		stream:    stream,
	}
	if s.monitors == nil {
		s.monitors = make(map[string]*monitor)
		s.monByDataset = make(map[string][]*monitor)
	}
	s.monitors[rec.ID] = m
	s.monOrder = append(s.monOrder, m)
	s.monByDataset[rec.Dataset] = append(s.monByDataset[rec.Dataset], m)
	// Keep the id counter above every restored id so new registrations never
	// collide with journalled ones.
	if n, err := strconv.ParseUint(strings.TrimPrefix(rec.ID, "m"), 10, 64); err == nil && n >= s.monNextID {
		s.monNextID = n + 1
	}
	s.monitorsGauge.Set(int64(len(s.monitors)))
	return m, nil
}

// nextMonitorIDLocked mints a fresh monitor id. Caller holds streamMu.
func (s *Server) nextMonitorIDLocked() string {
	if s.monNextID == 0 {
		s.monNextID = 1
	}
	id := fmt.Sprintf("m%d", s.monNextID)
	s.monNextID++
	return id
}

// evaluateMonitor feeds one monitor the item's current count from the
// dataset entry's pinned generation view.
func (s *Server) evaluateMonitor(m *monitor, e *store.Entry) *MonitorVerdict {
	v := e.View()
	counts := v.Arena().Counts()
	count := 0.0
	if int(m.item) < len(counts) {
		count = counts[m.item]
	}
	verdict := m.observe(count, v.Dataset().NumRecords())
	if verdict != nil {
		s.monitorVerdicts.Inc()
	}
	return verdict
}

// deliverAppendLocked advances every monitor watching the dataset by one
// query and returns how many verdicts were released. Caller holds streamMu,
// so the verdicts land in journal order.
func (s *Server) deliverAppendLocked(e *store.Entry) int {
	n := 0
	for _, m := range s.monByDataset[e.Name()] {
		if s.evaluateMonitor(m, e) != nil {
			n++
		}
	}
	return n
}

// restoreAppend replays one journalled dataset delta at startup, including
// the verdicts it triggered on monitors restored earlier in the event
// stream.
func (s *Server) restoreAppend(rec persist.AppendRecord) error {
	e, err := s.datasets.Append(rec.Name, rec.Records)
	if err != nil {
		return fmt.Errorf("server: restoring append to %q: %w", rec.Name, err)
	}
	s.deliverAppendLocked(e)
	return nil
}

// restoreMonitor replays one journalled monitor registration at startup: the
// monitor is rebuilt from its seed and takes its seq-0 verdict against the
// dataset state at this point of the event stream, exactly as it did live.
// Its ε charge replays separately through the tenant spending records.
func (s *Server) restoreMonitor(rec persist.MonitorRecord) error {
	m, err := s.addMonitorLocked(rec)
	if err != nil {
		return err
	}
	e, err := s.datasets.Get(rec.Dataset)
	if err != nil {
		return fmt.Errorf("server: restoring monitor %q: %w", rec.ID, err)
	}
	s.evaluateMonitor(m, e)
	return nil
}

// handleDatasetAppend serves POST /v1/datasets/{name}/append.
func (s *Server) handleDatasetAppend(w http.ResponseWriter, r *http.Request) {
	t := s.beginTrace(w, r)
	outcome := s.serveDatasetAppend(t, r)
	s.finishTrace(t, mechDatasets, outcome)
	s.countRequest(mechDatasets, outcome)
}

func (s *Server) serveDatasetAppend(w *traceWriter, r *http.Request) string {
	name := r.PathValue("name")
	w.dataset = name
	var req DatasetAppendRequest
	if code, ok := s.decode(w, r, &req); !ok {
		return code
	}
	w.mark(stageDecode)
	if code, ok := s.persistReady(w); !ok {
		return code
	}
	if _, err := s.datasets.Get(name); err != nil {
		writeError(w, http.StatusNotFound, ErrorBody{Code: CodeUnknownDataset, Message: err.Error()})
		return CodeUnknownDataset
	}
	if req.FIMI == "" {
		return badRequest(w, errors.New("append body needs fimi transactions"))
	}
	lim := s.datasets.Limits()
	parsed, err := dataset.ReadFIMILimited(strings.NewReader(req.FIMI), name, dataset.FIMILimits{
		MaxRecords: lim.MaxRecords,
		MaxItemID:  int32(lim.MaxItems) - 1,
	})
	if err != nil {
		return badRequest(w, err)
	}
	if parsed.NumRecords() == 0 {
		return badRequest(w, errors.New("append body holds no transactions"))
	}
	delta := make([][]int32, parsed.NumRecords())
	for i := range delta {
		delta[i] = parsed.Record(i)
	}
	w.mark(stageValidate)

	s.streamMu.Lock()
	// Re-validate under the lock: the grown dataset must stay inside the
	// catalog limits, and the journal must admit the delta before the apply —
	// the WAL is the source of truth the next restart replays.
	if err := s.datasets.CheckAppend(name, delta); err != nil {
		s.streamMu.Unlock()
		if errors.Is(err, store.ErrUnknownDataset) {
			writeError(w, http.StatusNotFound, ErrorBody{Code: CodeUnknownDataset, Message: err.Error()})
			return CodeUnknownDataset
		}
		return badRequest(w, err)
	}
	if s.persist != nil {
		if err := s.persist.AppendDelta(persist.AppendRecord{Name: name, Records: delta}); err != nil {
			s.streamMu.Unlock()
			return internalError(w, fmt.Errorf("server: journalling append to %q: %w", name, err))
		}
	}
	e, err := s.datasets.Append(name, delta)
	if err != nil {
		// Unreachable after CheckAppend under writeMu-free streamMu, but a
		// journalled-yet-unapplied delta would be a restart-visible fault.
		s.streamMu.Unlock()
		return internalError(w, err)
	}
	verdicts := s.deliverAppendLocked(e)
	s.streamMu.Unlock()
	w.mark(stageExecute)

	s.appendsTotal.Inc()
	info := e.Info()
	writeJSON(w, http.StatusOK, DatasetAppendResponse{
		Dataset:         name,
		AppendedRecords: len(delta),
		Records:         info.Records,
		Items:           info.Items,
		MonitorVerdicts: verdicts,
	})
	return "ok"
}

// handleMonitorCreate serves POST /v1/monitors.
func (s *Server) handleMonitorCreate(w http.ResponseWriter, r *http.Request) {
	t := s.beginTrace(w, r)
	outcome := s.serveMonitorCreate(t, r)
	s.finishTrace(t, mechMonitors, outcome)
	s.finishRequest(mechMonitors, outcome)
}

func (s *Server) serveMonitorCreate(w *traceWriter, r *http.Request) string {
	var req MonitorCreateRequest
	if code, ok := s.decode(w, r, &req); !ok {
		return code
	}
	w.mark(stageDecode)
	w.tenant, w.dataset = req.Tenant, req.Dataset
	if code, ok := s.persistReady(w); !ok {
		return code
	}
	if req.MaxAnswers == 0 {
		req.MaxAnswers = 1
	}
	switch {
	case req.Tenant == "":
		return badRequest(w, errors.New("monitor needs a tenant"))
	case req.Dataset == "":
		return badRequest(w, errors.New("monitor needs a dataset"))
	case req.Item < 0:
		return badRequest(w, fmt.Errorf("monitor item %d must be non-negative", req.Item))
	case math.IsNaN(req.Threshold) || math.IsInf(req.Threshold, 0):
		return badRequest(w, fmt.Errorf("monitor threshold %v must be finite", req.Threshold))
	case !(req.Epsilon >= engine.MinEpsilon) || !(req.Epsilon <= engine.MaxEpsilon):
		return badRequest(w, fmt.Errorf("monitor epsilon %v must be in [%g, %g]", req.Epsilon, engine.MinEpsilon, engine.MaxEpsilon))
	case req.MaxAnswers < 0 || req.MaxAnswers > s.cfg.MaxAnswers:
		return badRequest(w, fmt.Errorf("monitor max_answers %d must be in [1, %d]", req.MaxAnswers, s.cfg.MaxAnswers))
	}
	if _, err := s.datasets.Get(req.Dataset); err != nil {
		writeError(w, http.StatusNotFound, ErrorBody{Code: CodeUnknownDataset, Message: err.Error()})
		return CodeUnknownDataset
	}
	seed := req.Seed
	if seed == 0 {
		drawn, err := randomSeed()
		if err != nil {
			return internalError(w, err)
		}
		seed = drawn
	}
	w.mark(stageValidate)

	// The monitor's whole budget is charged up front, once: every verdict it
	// ever streams is paid from this ε by the SVT run itself.
	w.eps = req.Epsilon
	if _, code, ok := s.charge(w, req.Tenant, mechMonitors, req.Epsilon); !ok {
		return code
	}
	w.mark(stageCharge)

	s.streamMu.Lock()
	rec := persist.MonitorRecord{
		ID:         s.nextMonitorIDLocked(),
		Tenant:     req.Tenant,
		Dataset:    req.Dataset,
		Item:       req.Item,
		Threshold:  req.Threshold,
		Epsilon:    req.Epsilon,
		MaxAnswers: req.MaxAnswers,
		Adaptive:   req.Adaptive,
		Monotonic:  true,
		Seed:       seed,
	}
	if s.persist != nil {
		if err := s.persist.AppendMonitor(rec); err != nil {
			s.streamMu.Unlock()
			// Conservative by design: the ε stays spent (the charge is already
			// journalled) but no monitor exists. Refunding here could release
			// budget a crashed journal actually recorded.
			return internalError(w, fmt.Errorf("server: journalling monitor: %w", err))
		}
	}
	m, err := s.addMonitorLocked(rec)
	if err != nil {
		s.streamMu.Unlock()
		return internalError(w, err)
	}
	var verdict *MonitorVerdict
	if e, err := s.datasets.Get(req.Dataset); err == nil {
		verdict = s.evaluateMonitor(m, e) // seq 0: the registration-time answer
	}
	s.streamMu.Unlock()
	w.mark(stageExecute)

	writeJSON(w, http.StatusCreated, MonitorCreateResponse{MonitorInfo: m.info(), Verdict: verdict})
	return "ok"
}

// handleMonitorList serves GET /v1/monitors.
func (s *Server) handleMonitorList(w http.ResponseWriter, r *http.Request) {
	t := s.beginTrace(w, r)
	s.streamMu.Lock()
	infos := make([]MonitorInfo, len(s.monOrder))
	for i, m := range s.monOrder {
		infos[i] = m.info()
	}
	s.streamMu.Unlock()
	s.countRequest(mechMonitors, "ok")
	writeJSON(t, http.StatusOK, MonitorListResponse{Monitors: infos})
	s.finishTrace(t, mechMonitors, "ok")
}

// handleMonitorGet serves GET /v1/monitors/{id}.
func (s *Server) handleMonitorGet(w http.ResponseWriter, r *http.Request) {
	t := s.beginTrace(w, r)
	m, ok := s.lookupMonitor(r.PathValue("id"))
	if !ok {
		s.countRequest(mechMonitors, CodeUnknownMonitor)
		writeError(t, http.StatusNotFound, ErrorBody{Code: CodeUnknownMonitor,
			Message: fmt.Sprintf("unknown monitor %q", r.PathValue("id"))})
		s.finishTrace(t, mechMonitors, CodeUnknownMonitor)
		return
	}
	s.countRequest(mechMonitors, "ok")
	writeJSON(t, http.StatusOK, m.info())
	s.finishTrace(t, mechMonitors, "ok")
}

func (s *Server) lookupMonitor(id string) (*monitor, bool) {
	s.streamMu.Lock()
	m, ok := s.monitors[id]
	s.streamMu.Unlock()
	return m, ok
}

// handleMonitorStream serves GET /v1/monitors/{id}/stream as Server-Sent
// Events: the monitor's full verdict history first, then every new verdict
// as appends arrive, until the client hangs up or the server shuts down.
// The handler writes through the raw ResponseWriter — a long-lived stream
// has no single latency or byte count for the trace pipeline to record.
func (s *Server) handleMonitorStream(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookupMonitor(r.PathValue("id"))
	if !ok {
		s.countRequest(mechMonitors, CodeUnknownMonitor)
		writeError(w, http.StatusNotFound, ErrorBody{Code: CodeUnknownMonitor,
			Message: fmt.Sprintf("unknown monitor %q", r.PathValue("id"))})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.countRequest(mechMonitors, CodeInternal)
		writeError(w, http.StatusInternalServerError, ErrorBody{Code: CodeInternal,
			Message: "response writer does not support streaming"})
		return
	}
	s.countRequest(mechMonitors, "ok")
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	history, ch := m.subscribe()
	defer m.unsubscribe(ch)
	for _, v := range history {
		if writeSSE(w, fl, v) != nil {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.monClosed:
			return
		case v, open := <-ch:
			if !open {
				// Dropped for falling behind; the client reconnects.
				return
			}
			if writeSSE(w, fl, v) != nil {
				return
			}
		}
	}
}

// writeSSE emits one verdict as an SSE "verdict" event and flushes it to the
// client immediately.
func writeSSE(w http.ResponseWriter, fl http.Flusher, v MonitorVerdict) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: verdict\ndata: %s\n\n", data); err != nil {
		return err
	}
	fl.Flush()
	return nil
}
