package baseline

import (
	"fmt"
	"sort"

	"github.com/freegap/freegap/internal/rng"
)

// NoisyTopK is the classical Noisy Top-K mechanism (Dwork & Roth; the paper's
// Algorithm 1 with the boxed gap outputs removed): add Laplace(2k/ε) noise to
// every query answer and return the indices of the k largest noisy answers in
// descending order. For monotonic query lists (Definition 7, e.g. counting
// queries) Laplace(k/ε) noise suffices for the same ε.
type NoisyTopK struct {
	K         int
	Epsilon   float64
	Monotonic bool
}

// NewNoisyTopK validates parameters and returns the mechanism.
func NewNoisyTopK(k int, epsilon float64, monotonic bool) (*NoisyTopK, error) {
	if k <= 0 {
		return nil, fmt.Errorf("baseline: k = %d must be positive", k)
	}
	if !(epsilon > 0) {
		return nil, fmt.Errorf("baseline: epsilon %v must be positive", epsilon)
	}
	return &NoisyTopK{K: k, Epsilon: epsilon, Monotonic: monotonic}, nil
}

// NoiseScale returns the per-query Laplace scale: 2k/ε in general, k/ε for
// monotonic query lists.
func (m *NoisyTopK) NoiseScale() float64 {
	scale := 2 * float64(m.K) / m.Epsilon
	if m.Monotonic {
		scale = float64(m.K) / m.Epsilon
	}
	return scale
}

// Select returns the indices of the (approximately) k largest queries in
// descending noisy order. Unlike the gap variant in internal/core it reveals
// nothing about how close the race was.
func (m *NoisyTopK) Select(src rng.Source, answers []float64) ([]int, error) {
	if len(answers) == 0 {
		return nil, fmt.Errorf("baseline: no queries")
	}
	k := m.K
	if k > len(answers) {
		return nil, fmt.Errorf("baseline: k = %d larger than number of queries %d", k, len(answers))
	}
	scale := m.NoiseScale()
	noisy := make([]float64, len(answers))
	for i, a := range answers {
		noisy[i] = a + rng.Laplace(src, scale)
	}
	idx := make([]int, len(answers))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return noisy[idx[a]] > noisy[idx[b]] })
	return idx[:k], nil
}

// NoisyMax is the k = 1 special case: it returns the index of the
// approximately largest query.
func NoisyMax(src rng.Source, answers []float64, epsilon float64, monotonic bool) (int, error) {
	m, err := NewNoisyTopK(1, epsilon, monotonic)
	if err != nil {
		return 0, err
	}
	idx, err := m.Select(src, answers)
	if err != nil {
		return 0, err
	}
	return idx[0], nil
}
