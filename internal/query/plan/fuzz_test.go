package plan

import (
	"math/rand"
	"testing"

	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/store"
)

// FuzzCanonicalizer drives the canonicalizer with pairs of random specs and
// checks the cache-safety invariant both ways on a small universe: specs
// with equal canonical forms (the plan-cache key) must evaluate to
// byte-identical vectors — a violation would make the plan cache serve wrong
// answers — and the compiled plan must always match the naive reference
// evaluator, cache hit or miss, skipping on or off.
func FuzzCanonicalizer(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, seed*3+1)
	}

	st := store.New()
	raw := map[string]*dataset.Transactions{}
	for name, recs := range map[string][][]int32{
		"main":  {{0, 1, 2}, {1, 2}, {2, 3, 4}, {0, 4}, {4, 5}, {5, 6, 7, 8}, {8}, {0, 8, 9}, {9, 1}, {2, 9}},
		"other": {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}},
	} {
		db := dataset.New(name, recs).WithUniverse(16)
		if _, err := st.Register(name, "fuzz", db); err != nil {
			f.Fatal(err)
		}
		raw[name] = db
	}
	main, err := st.Get("main")
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, seedA, seedB int64) {
		a := genSpec(rand.New(rand.NewSource(seedA)), 3)
		b := genSpec(rand.New(rand.NewSource(seedB)), 3)
		if a.Validate() != nil || b.Validate() != nil {
			t.Fatal("generator emitted an invalid spec")
		}

		wantA, err := naiveEval(raw, raw["main"], a)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []Options{{}, {NoSkip: true, NoCache: true}} {
			res, err := Resolve(st, main, a, opts)
			if err != nil {
				t.Fatalf("%s: %v", Canonical(a), err)
			}
			if !vecEqual(res.Answers, wantA) {
				t.Fatalf("%s (opts %+v): plan differs from naive\n got: %v\nwant: %v",
					Canonical(a), opts, res.Answers, wantA)
			}
		}

		if Canonical(a) != Canonical(b) {
			return
		}
		// Hash equality must track canonical equality...
		if Hash(a) != Hash(b) {
			t.Fatalf("equal canon %q but different hashes", Canonical(a))
		}
		// ...and canonical equality must imply semantic equality.
		wantB, err := naiveEval(raw, raw["main"], b)
		if err != nil {
			t.Fatal(err)
		}
		if !vecEqual(wantA, wantB) {
			t.Fatalf("canon %q unifies %+v and %+v, but they evaluate differently", Canonical(a), a, b)
		}
	})
}
