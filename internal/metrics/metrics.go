// Package metrics implements the evaluation metrics reported in Section 7 of
// the paper: mean squared error and its percentage improvement (Figures 1
// and 2), and precision / recall / F-measure of the sets of queries returned
// by the Sparse Vector variants (Figures 3d–3f). It also provides the small
// summary-statistics helpers the experiment harness uses to average over
// Monte-Carlo trials.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// MSE returns the mean squared error between estimates and truth. The two
// slices must have equal, non-zero length.
func MSE(estimates, truth []float64) float64 {
	mustSameLen(estimates, truth)
	sum := 0.0
	for i := range estimates {
		d := estimates[i] - truth[i]
		sum += d * d
	}
	return sum / float64(len(estimates))
}

// MAE returns the mean absolute error between estimates and truth.
func MAE(estimates, truth []float64) float64 {
	mustSameLen(estimates, truth)
	sum := 0.0
	for i := range estimates {
		sum += math.Abs(estimates[i] - truth[i])
	}
	return sum / float64(len(estimates))
}

func mustSameLen(a, b []float64) {
	if len(a) == 0 || len(a) != len(b) {
		panic(fmt.Sprintf("metrics: slices must have equal non-zero length, got %d and %d", len(a), len(b)))
	}
}

// PercentImprovement returns how much better (in percent) the improved error
// is relative to the baseline error: 100·(baseline − improved)/baseline.
// Positive values mean the improved method wins; the figures in the paper
// plot exactly this quantity.
func PercentImprovement(baseline, improved float64) float64 {
	if baseline <= 0 {
		panic(fmt.Sprintf("metrics: baseline error %v must be positive", baseline))
	}
	return 100 * (baseline - improved) / baseline
}

// Precision returns |returned ∩ relevant| / |returned|. A mechanism that
// returns nothing has precision 1 by convention (it made no mistakes), which
// matches how the SVT experiments treat empty outputs.
func Precision(returned, relevant []int) float64 {
	if len(returned) == 0 {
		return 1
	}
	rel := toSet(relevant)
	hit := 0
	for _, r := range returned {
		if rel[r] {
			hit++
		}
	}
	return float64(hit) / float64(len(returned))
}

// Recall returns |returned ∩ relevant| / |relevant|. If there are no relevant
// items recall is 1 by convention.
func Recall(returned, relevant []int) float64 {
	if len(relevant) == 0 {
		return 1
	}
	rel := toSet(relevant)
	hit := 0
	seen := map[int]bool{}
	for _, r := range returned {
		if rel[r] && !seen[r] {
			seen[r] = true
			hit++
		}
	}
	return float64(hit) / float64(len(relevant))
}

// FMeasure returns the harmonic mean of precision and recall (F1). It is zero
// when both are zero.
func FMeasure(precision, recall float64) float64 {
	if precision < 0 || recall < 0 {
		panic("metrics: negative precision or recall")
	}
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// FMeasureOf computes F1 directly from the returned and relevant index sets.
func FMeasureOf(returned, relevant []int) float64 {
	return FMeasure(Precision(returned, relevant), Recall(returned, relevant))
}

func toSet(xs []int) map[int]bool {
	s := make(map[int]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}

// Mean returns the arithmetic mean of xs; it panics on empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: mean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("metrics: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of [0,1]", q))
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Summary bundles the statistics the harness reports per experimental cell.
type Summary struct {
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	N      int
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("metrics: summary of empty slice")
	}
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1), N: len(xs)}
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	return s
}

// String renders the summary compactly for tables.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.4g sd=%.4g min=%.4g max=%.4g n=%d", s.Mean, s.StdDev, s.Min, s.Max, s.N)
}
