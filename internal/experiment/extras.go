package experiment

import (
	"fmt"
	"math"

	"github.com/freegap/freegap/internal/alignment"
	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/postprocess"
	"github.com/freegap/freegap/internal/rng"
	"github.com/freegap/freegap/internal/validate"
)

// DatasetStatsRow is one line of the Section 7.1 dataset-statistics table.
type DatasetStatsRow struct {
	Name       string
	Records    int
	Items      int
	MeanLength float64
}

// DatasetStatsTable regenerates the dataset table of Section 7.1 at the
// configured scale (Scale = 1 reproduces the published record counts).
func (c Config) DatasetStatsTable() ([]DatasetStatsRow, error) {
	c = c.withDefaults()
	specs := []struct {
		name string
		gen  func() *dataset.Transactions
	}{
		{workloadBMSPOS, func() *dataset.Transactions {
			return dataset.BMSPOSConfig().ScaledDown(c.Scale).Generate(c.Seed)
		}},
		{workloadKosarak, func() *dataset.Transactions {
			return dataset.KosarakConfig().ScaledDown(c.Scale).Generate(c.Seed + 1)
		}},
		{workloadQuest, func() *dataset.Transactions {
			return dataset.T40I10D100KConfig().ScaledDown(c.Scale).Generate(c.Seed + 2)
		}},
	}
	rows := make([]DatasetStatsRow, 0, len(specs))
	for _, spec := range specs {
		db := spec.gen()
		s := db.Stats()
		rows = append(rows, DatasetStatsRow{
			Name:       spec.name,
			Records:    s.Records,
			Items:      s.Items,
			MeanLength: s.MeanLength,
		})
	}
	return rows, nil
}

// TieProbability compares the empirical probability that two noisy queries tie
// (using Discrete Laplace noise of base γ) against the Appendix A.1 bound
// γεn², for a sweep of discretization bases.
func (c Config) TieProbability() (Figure, error) {
	c = c.withDefaults()
	const n = 8 // queries per trial
	const eps = 1.0
	// Bases small enough that the γεn² bound is informative (< 1) while ties
	// remain frequent enough to measure with a modest trial count.
	bases := []float64{0.02, 0.01, 0.005, 0.0025}
	empirical := Series{Name: "Empirical tie rate"}
	bound := Series{Name: "Bound gamma*eps*n^2"}
	for bi, base := range bases {
		base := base
		sums := runTrials(c.Trials, c.Seed+uint64(37000*(bi+1)), c.Parallel, func(src *rng.Xoshiro) map[string]float64 {
			noisy := make([]float64, n)
			for i := range noisy {
				// Densely packed query answers maximise the chance of ties.
				noisy[i] = rng.RoundToBase(float64(i%2), base) + rng.DiscreteLaplace(src, eps, base)
			}
			tie := 0.0
			for i := 0; i < n && tie == 0; i++ {
				for j := i + 1; j < n; j++ {
					if noisy[i] == noisy[j] {
						tie = 1
						break
					}
				}
			}
			return map[string]float64{"tie": tie, "n": 1}
		})
		rate := sums["tie"] / sums["n"]
		empirical.Points = append(empirical.Points, Point{X: base, Y: rate})
		bound.Points = append(bound.Points, Point{X: base, Y: rng.TieProbabilityBound(eps, base, n)})
	}
	return Figure{
		ID:     "tie-probability",
		Title:  "Appendix A.1: tie probability under Discrete Laplace noise",
		XLabel: "discretization base gamma",
		YLabel: "P(any tie among n=8 queries)",
		Series: []Series{empirical, bound},
	}, nil
}

// Lemma5Coverage measures the empirical coverage of the Lemma 5 lower
// confidence bound on Sparse-Vector gap estimates at several nominal levels.
func (c Config) Lemma5Coverage() (Figure, error) {
	c = c.withDefaults()
	w, err := c.BuildWorkload(workloadBMSPOS)
	if err != nil {
		return Figure{}, err
	}
	levels := []float64{0.8, 0.9, 0.95, 0.99}
	nominal := Series{Name: "Nominal"}
	observed := Series{Name: "Observed coverage"}
	k := c.FixedK
	for li, level := range levels {
		level := level
		counts := w.Counts
		sums := runTrials(c.Trials, c.Seed+uint64(41000*(li+1)), c.Parallel, func(src *rng.Xoshiro) map[string]float64 {
			threshold := dataset.RandomThreshold(src, counts, k)
			svt, err := core.NewSVTWithGap(k, c.effectiveEpsilon(c.Epsilon), threshold, true)
			if err != nil {
				return nil
			}
			res, err := svt.Run(src, counts)
			if err != nil {
				return nil
			}
			// Recover the two noise rates from the mechanism configuration:
			// threshold Laplace(1/eps0) and query Laplace(1/eps1) (monotonic).
			theta := 1 / (1 + math.Pow(float64(k), 2.0/3.0))
			eps0 := theta * c.effectiveEpsilon(c.Epsilon)
			eps1 := (1 - theta) * c.effectiveEpsilon(c.Epsilon) / float64(k)
			covered, total := 0.0, 0.0
			for _, it := range res.AboveItems() {
				lower, err := postprocess.GapLowerConfidenceBound(it.Gap, threshold, level, eps0, eps1)
				if err != nil {
					continue
				}
				total++
				if lower <= counts[it.Index] {
					covered++
				}
			}
			return map[string]float64{"covered": covered, "total": total}
		})
		cov := 0.0
		if sums["total"] > 0 {
			cov = sums["covered"] / sums["total"]
		}
		nominal.Points = append(nominal.Points, Point{X: level, Y: level})
		observed.Points = append(observed.Points, Point{X: level, Y: cov})
	}
	return Figure{
		ID:     "lemma5-coverage",
		Title:  "Lemma 5: lower confidence bound coverage for SVT gaps",
		XLabel: "nominal confidence",
		YLabel: "observed coverage",
		Series: []Series{nominal, observed},
	}, nil
}

// AlignmentRow is the outcome of one white-box randomness-alignment
// verification (Theorems 2 and 4 made executable; see internal/alignment).
type AlignmentRow struct {
	Mechanism       string
	Epsilon         float64
	Trials          int
	OutputPreserved int
	MaxCost         float64
	OK              bool
}

// AlignmentVerification runs the Equation (2) and Equation (3) alignment
// checks on worst-case adjacent counting-query vectors at ε = Config.Epsilon.
func (c Config) AlignmentVerification() ([]AlignmentRow, error) {
	c = c.withDefaults()
	d := []float64{25, 22, 20, 18, 4, 3, 2, 1}
	dPrime := []float64{24, 21, 20, 17, 3, 3, 1, 1} // one record removed
	trials := c.Trials
	if trials < 200 {
		trials = 200
	}

	topk, err := core.NewTopKWithGap(3, c.Epsilon, true)
	if err != nil {
		return nil, err
	}
	topkReport, err := alignment.VerifyTopK(topk, d, dPrime, trials, c.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiment: top-k alignment: %w", err)
	}

	svt, err := core.NewAdaptiveSVTWithGap(3, c.Epsilon, 10, true)
	if err != nil {
		return nil, err
	}
	svtReport, err := alignment.VerifyAdaptiveSVT(svt, d, dPrime, trials, c.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("experiment: adaptive-svt alignment: %w", err)
	}

	return []AlignmentRow{
		{
			Mechanism: "Noisy-Top-K-with-Gap (k=3, Eq. 2)", Epsilon: c.Epsilon,
			Trials: topkReport.Trials, OutputPreserved: topkReport.OutputPreserved,
			MaxCost: topkReport.MaxCost, OK: topkReport.OK(),
		},
		{
			Mechanism: "Adaptive-SVT-with-Gap (k=3, Eq. 3)", Epsilon: c.Epsilon,
			Trials: svtReport.Trials, OutputPreserved: svtReport.OutputPreserved,
			MaxCost: svtReport.MaxCost, OK: svtReport.OK(),
		},
	}, nil
}

// PrivacyAuditRow is the outcome of auditing one mechanism.
type PrivacyAuditRow struct {
	Mechanism  string
	Epsilon    float64
	EpsilonHat float64
	Outputs    int
}

// PrivacyAudit runs the empirical differential-privacy audit from
// internal/validate against the three mechanisms on a worst-case adjacent
// pair of counting-query vectors, at ε = Config.Epsilon.
func (c Config) PrivacyAudit() ([]PrivacyAuditRow, error) {
	c = c.withDefaults()
	d := []float64{12, 11, 10, 4, 3}
	dPrime := []float64{11, 10, 10, 3, 3} // one record touching items 0, 1 and 3 removed
	trials := c.Trials * 100
	if trials < 40000 {
		trials = 40000
	}
	cfg := validate.AuditConfig{Trials: trials, Seed: c.Seed}

	audits := []struct {
		name string
		mech validate.Mechanism
	}{
		{"Noisy-Top-K-with-Gap (k=2)", validate.TopKIndexMechanism(2, c.Epsilon, false)},
		{"Sparse-Vector-with-Gap (k=2)", validate.SparseVectorWithGapMechanism(2, c.Epsilon, 9, true)},
		{"Adaptive-SVT-with-Gap (k=2)", validate.SVTPatternMechanism(2, c.Epsilon, 9, true)},
	}
	rows := make([]PrivacyAuditRow, 0, len(audits))
	for _, a := range audits {
		res, err := validate.EstimateEpsilon(a.mech, d, dPrime, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: auditing %s: %w", a.name, err)
		}
		rows = append(rows, PrivacyAuditRow{
			Mechanism:  a.name,
			Epsilon:    c.Epsilon,
			EpsilonHat: res.EpsilonHat,
			Outputs:    res.Outputs,
		})
	}
	return rows, nil
}
