package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/freegap/freegap/internal/rng"
)

func TestNewAdaptiveSVTValidation(t *testing.T) {
	if _, err := NewAdaptiveSVTWithGap(0, 1, 10, true); !errors.Is(err, ErrInvalidK) {
		t.Fatalf("k=0: %v", err)
	}
	if _, err := NewAdaptiveSVTWithGap(3, -1, 10, true); !errors.Is(err, ErrInvalidEpsilon) {
		t.Fatalf("eps<0: %v", err)
	}
	if _, err := NewAdaptiveSVTWithGap(3, 0.7, 10, true); err != nil {
		t.Fatal(err)
	}
}

func TestNewSVTWithGapValidation(t *testing.T) {
	if _, err := NewSVTWithGap(0, 1, 10, true); !errors.Is(err, ErrInvalidK) {
		t.Fatalf("k=0: %v", err)
	}
	if _, err := NewSVTWithGap(2, 0, 10, true); !errors.Is(err, ErrInvalidEpsilon) {
		t.Fatalf("eps=0: %v", err)
	}
}

func TestAdaptiveBudgetLayout(t *testing.T) {
	m, _ := NewAdaptiveSVTWithGap(10, 0.7, 100, true)
	eps0, eps1, eps2 := m.budgets()
	theta := m.theta()
	wantTheta := 1 / (1 + math.Pow(10, 2.0/3.0))
	if math.Abs(theta-wantTheta) > 1e-12 {
		t.Fatalf("theta %v, want %v", theta, wantTheta)
	}
	if math.Abs(eps0-theta*0.7) > 1e-12 {
		t.Fatalf("eps0 %v", eps0)
	}
	if math.Abs(eps1-(1-theta)*0.7/10) > 1e-12 {
		t.Fatalf("eps1 %v", eps1)
	}
	if math.Abs(eps2-eps1/2) > 1e-12 {
		t.Fatalf("eps2 %v, want eps1/2", eps2)
	}
	// Explicit theta overrides the recommendation.
	m.Theta = 0.5
	if m.theta() != 0.5 {
		t.Fatalf("explicit theta ignored")
	}
	// Non-monotonic recommendation uses 2k.
	g, _ := NewAdaptiveSVTWithGap(10, 0.7, 100, false)
	if math.Abs(g.theta()-1/(1+math.Pow(20, 2.0/3.0))) > 1e-12 {
		t.Fatalf("general theta %v", g.theta())
	}
}

func TestAdaptiveSigma(t *testing.T) {
	m, _ := NewAdaptiveSVTWithGap(5, 1, 10, false)
	_, topScale, _ := m.noiseScales()
	want := 2 * math.Sqrt(2) * topScale // 2 standard deviations of Laplace(topScale)
	if got := m.sigma(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("sigma %v, want %v", got, want)
	}
	m.SigmaMultiplier = 3
	if got := m.sigma(); math.Abs(got-1.5*want) > 1e-9 {
		t.Fatalf("sigma with multiplier 3: %v", got)
	}
	m.SigmaMultiplier = math.Inf(1)
	if !math.IsInf(m.sigma(), 1) {
		t.Fatal("infinite multiplier must disable the top branch")
	}
}

func TestAdaptiveRunErrors(t *testing.T) {
	src := rng.NewXoshiro(1)
	m, _ := NewAdaptiveSVTWithGap(2, 1, 10, true)
	if _, err := m.Run(src, nil); !errors.Is(err, ErrNoQueries) {
		t.Fatalf("empty: %v", err)
	}
	bad := &AdaptiveSVTWithGap{K: 2, Epsilon: 0, Threshold: 1}
	if _, err := bad.Run(src, []float64{1}); !errors.Is(err, ErrInvalidEpsilon) {
		t.Fatalf("eps=0: %v", err)
	}
	bad2 := &AdaptiveSVTWithGap{K: 0, Epsilon: 1}
	if _, err := bad2.Run(src, []float64{1}); !errors.Is(err, ErrInvalidK) {
		t.Fatalf("k=0: %v", err)
	}
}

func TestAdaptiveNeverExceedsBudget(t *testing.T) {
	src := rng.NewXoshiro(5)
	answers := make([]float64, 500)
	for i := range answers {
		answers[i] = 1000 // everything far above the threshold
	}
	m, _ := NewAdaptiveSVTWithGap(5, 0.7, 100, true)
	for trial := 0; trial < 200; trial++ {
		res, err := m.Run(src, answers)
		if err != nil {
			t.Fatal(err)
		}
		if res.BudgetSpent > m.Epsilon+1e-9 {
			t.Fatalf("budget spent %v exceeds epsilon %v", res.BudgetSpent, m.Epsilon)
		}
		if res.Remaining() < 0 {
			t.Fatal("negative remaining budget")
		}
	}
}

func TestAdaptiveAnswersMoreThanK(t *testing.T) {
	// When every above-threshold query is far above the threshold, the top
	// branch (cost ε₂ = ε₁/2) should fire, so the mechanism answers roughly 2k
	// above-threshold queries instead of k.
	src := rng.NewXoshiro(11)
	answers := make([]float64, 400)
	for i := range answers {
		answers[i] = 1e6 // enormous margin
	}
	const k = 10
	m, _ := NewAdaptiveSVTWithGap(k, 0.7, 100, true)
	total := 0
	top := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		res, err := m.Run(src, answers)
		if err != nil {
			t.Fatal(err)
		}
		total += res.AboveCount
		top += res.CountByBranch(BranchTop)
	}
	avg := float64(total) / trials
	if avg < 1.5*k {
		t.Fatalf("adaptive SVT answered only %.1f queries on average, want > %v", avg, 1.5*k)
	}
	if top < total*8/10 {
		t.Fatalf("expected most answers from the top branch, got %d of %d", top, total)
	}
}

func TestAdaptiveStopsAfterMaxAnswers(t *testing.T) {
	src := rng.NewXoshiro(13)
	answers := make([]float64, 100)
	for i := range answers {
		answers[i] = 1e6
	}
	m, _ := NewAdaptiveSVTWithGap(10, 0.7, 10, true)
	m.MaxAnswers = 10
	res, err := m.Run(src, answers)
	if err != nil {
		t.Fatal(err)
	}
	if res.AboveCount != 10 {
		t.Fatalf("above count %d, want exactly 10", res.AboveCount)
	}
	// Stopping after k answers that mostly used the cheap branch must leave a
	// sizeable fraction of the budget (≈40% per Figure 4).
	if res.RemainingFraction() < 0.25 {
		t.Fatalf("remaining fraction %v, expected ≥ 0.25", res.RemainingFraction())
	}
}

func TestAdaptiveBelowThresholdCostsNothing(t *testing.T) {
	src := rng.NewXoshiro(17)
	answers := make([]float64, 1000)
	for i := range answers {
		answers[i] = -1e6 // hopelessly below the threshold
	}
	m, _ := NewAdaptiveSVTWithGap(3, 0.7, 100, true)
	res, err := m.Run(src, answers)
	if err != nil {
		t.Fatal(err)
	}
	if res.AboveCount != 0 {
		t.Fatalf("above count %d, want 0", res.AboveCount)
	}
	eps0, _, _ := m.budgets()
	if math.Abs(res.BudgetSpent-eps0) > 1e-12 {
		t.Fatalf("budget spent %v, want only the threshold charge %v", res.BudgetSpent, eps0)
	}
	if len(res.Items) != len(answers) {
		t.Fatalf("processed %d queries, want all %d", len(res.Items), len(answers))
	}
	for _, it := range res.Items {
		if it.Above || it.Branch != BranchBelow || it.BudgetUsed != 0 {
			t.Fatalf("below-threshold item misreported: %+v", it)
		}
	}
}

func TestAdaptiveGapSemantics(t *testing.T) {
	src := rng.NewXoshiro(19)
	answers := []float64{1e6, 500, -1e6}
	m, _ := NewAdaptiveSVTWithGap(2, 2, 400, true)
	res, err := m.Run(src, answers)
	if err != nil {
		t.Fatal(err)
	}
	sigma := m.sigma()
	for _, it := range res.Items {
		switch it.Branch {
		case BranchTop:
			if it.Gap < sigma {
				t.Fatalf("top-branch gap %v below sigma %v", it.Gap, sigma)
			}
		case BranchMiddle:
			if it.Gap < 0 {
				t.Fatalf("middle-branch gap %v negative", it.Gap)
			}
		case BranchBelow:
			if it.Above {
				t.Fatal("below branch marked above")
			}
		}
	}
	if res.Threshold != 400 {
		t.Fatalf("threshold %v not propagated", res.Threshold)
	}
	if len(res.GapVariancesByBranch) != 2 {
		t.Fatalf("gap variances missing: %+v", res.GapVariancesByBranch)
	}
	ests, vars, idx := res.GapEstimates()
	if len(ests) != res.AboveCount || len(vars) != res.AboveCount || len(idx) != res.AboveCount {
		t.Fatal("GapEstimates length mismatch")
	}
	for i := range ests {
		if vars[i] <= 0 {
			t.Fatalf("non-positive variance %v", vars[i])
		}
		_ = ests[i]
	}
}

func TestAdaptiveGapEstimateUnbiased(t *testing.T) {
	// For a query far enough above the threshold that it is always answered,
	// gap + T is an unbiased estimate of the true query value.
	trueVal := 1000.0
	threshold := 900.0
	answers := []float64{trueVal}
	m, _ := NewAdaptiveSVTWithGap(1, 5, threshold, true)
	src := rng.NewXoshiro(29)
	const trials = 20000
	sum := 0.0
	count := 0
	for i := 0; i < trials; i++ {
		res, err := m.Run(src, answers)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range res.AboveItems() {
			sum += it.Gap + threshold
			count++
		}
	}
	if count < trials/2 {
		t.Fatalf("query answered only %d of %d times", count, trials)
	}
	mean := sum / float64(count)
	// Conditioning on "above" biases the estimate upward slightly; with eps=5
	// and a 100-unit margin the bias is small.
	if math.Abs(mean-trueVal) > 20 {
		t.Fatalf("mean gap+T estimate %v, want ≈ %v", mean, trueVal)
	}
}

func TestSVTWithGapStopsAtK(t *testing.T) {
	src := rng.NewXoshiro(31)
	answers := make([]float64, 300)
	for i := range answers {
		answers[i] = 1e6
	}
	m, _ := NewSVTWithGap(7, 0.7, 10, true)
	res, err := m.Run(src, answers)
	if err != nil {
		t.Fatal(err)
	}
	if res.AboveCount != 7 {
		t.Fatalf("above count %d, want 7", res.AboveCount)
	}
	if got := res.CountByBranch(BranchTop); got != 0 {
		t.Fatalf("SVT-with-Gap must never use the top branch, got %d", got)
	}
	// All positives consume eps1, so the whole budget is (nearly) gone.
	if res.RemainingFraction() > 0.05 {
		t.Fatalf("plain SVT-with-Gap should exhaust its budget, remaining %v", res.RemainingFraction())
	}
}

func TestSVTWithGapGapVariance(t *testing.T) {
	m, _ := NewSVTWithGap(10, 0.35, 100, true)
	// Section 6.2 formula in terms of the mechanism's own epsilon:
	// 2(1+k^{2/3})³/ε² for monotonic queries.
	want := 2 * math.Pow(1+math.Pow(10, 2.0/3.0), 3) / (0.35 * 0.35)
	if got := m.GapVariance(); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("gap variance %v, want %v", got, want)
	}
	g, _ := NewSVTWithGap(10, 0.35, 100, false)
	wantGeneral := 2 * math.Pow(1+math.Pow(20, 2.0/3.0), 3) / (0.35 * 0.35)
	if got := g.GapVariance(); math.Abs(got-wantGeneral)/wantGeneral > 1e-9 {
		t.Fatalf("general gap variance %v, want %v", got, wantGeneral)
	}
}

func TestSVTWithGapAgreesWithAdaptiveWhenSigmaInfinite(t *testing.T) {
	answers := []float64{50, 200, 10, 300, 250, 5, 400}
	svt, _ := NewSVTWithGap(3, 1, 150, true)
	adaptive := &AdaptiveSVTWithGap{
		K: 3, Epsilon: 1, Threshold: 150, Monotonic: true,
		SigmaMultiplier: math.Inf(1), MaxAnswers: 3,
	}
	resA, errA := svt.Run(rng.NewXoshiro(99), answers)
	resB, errB := adaptive.Run(rng.NewXoshiro(99), answers)
	if errA != nil || errB != nil {
		t.Fatalf("unexpected errors: %v, %v", errA, errB)
	}
	if len(resA.Items) != len(resB.Items) {
		t.Fatalf("item count differs: %d vs %d", len(resA.Items), len(resB.Items))
	}
	for i := range resA.Items {
		if resA.Items[i] != resB.Items[i] {
			t.Fatalf("item %d differs: %+v vs %+v", i, resA.Items[i], resB.Items[i])
		}
	}
}

func TestSVTPropertyBudgetAndOrder(t *testing.T) {
	src := rng.NewXoshiro(123)
	f := func(seed uint64) bool {
		local := rng.NewXoshiro(seed)
		n := 5 + rng.Intn(local, 60)
		answers := make([]float64, n)
		for i := range answers {
			answers[i] = float64(rng.Intn(local, 500)) - 100
		}
		k := 1 + rng.Intn(local, 8)
		eps := 0.2 + rng.Float64(local)*2
		threshold := float64(rng.Intn(local, 300))
		m, err := NewAdaptiveSVTWithGap(k, eps, threshold, rng.Float64(local) < 0.5)
		if err != nil {
			return false
		}
		res, err := m.Run(src, answers)
		if err != nil {
			return false
		}
		if res.BudgetSpent > eps+1e-9 || res.Remaining() < 0 {
			return false
		}
		// Items must be in stream order with contiguous indices from 0.
		for i, it := range res.Items {
			if it.Index != i {
				return false
			}
			if it.Above && it.BudgetUsed <= 0 {
				return false
			}
			if !it.Above && it.BudgetUsed != 0 {
				return false
			}
		}
		return res.AboveCount == len(res.AboveIndices())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBranchString(t *testing.T) {
	if BranchTop.String() != "top" || BranchMiddle.String() != "middle" || BranchBelow.String() != "below" {
		t.Fatal("branch names drifted")
	}
	if Branch(42).String() == "" {
		t.Fatal("unknown branch must stringify")
	}
}
