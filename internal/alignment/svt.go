package alignment

import (
	"fmt"
	"math"

	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/rng"
)

// SVTNoise is the explicit randomness of one Adaptive-Sparse-Vector-with-Gap
// execution: the threshold noise and, for every query position, the
// top-branch noise ξᵢ and the middle-branch noise ηᵢ (the shadow execution
// pre-draws both even though the real algorithm only consumes the second when
// the first branch fails — the distribution of the output is identical and
// the alignment of Equation (3) is expressed over exactly this vector).
type SVTNoise struct {
	Threshold float64
	Top       []float64 // ξᵢ
	Middle    []float64 // ηᵢ
}

// clone returns a deep copy.
func (n SVTNoise) clone() SVTNoise {
	cp := SVTNoise{Threshold: n.Threshold, Top: make([]float64, len(n.Top)), Middle: make([]float64, len(n.Middle))}
	copy(cp.Top, n.Top)
	copy(cp.Middle, n.Middle)
	return cp
}

// SVTStep is one per-query record of a shadow execution: which branch fired
// and the gap it released (meaningful for the two positive branches).
type SVTStep struct {
	Branch core.Branch
	Gap    float64
}

// SVTOutput is the full output of a shadow execution.
type SVTOutput struct {
	Steps []SVTStep
}

// Equal compares two outputs: identical branch patterns and gaps within tol.
func (o SVTOutput) Equal(other SVTOutput, tol float64) bool {
	if len(o.Steps) != len(other.Steps) {
		return false
	}
	for i := range o.Steps {
		if o.Steps[i].Branch != other.Steps[i].Branch {
			return false
		}
		if o.Steps[i].Branch != core.BranchBelow &&
			math.Abs(o.Steps[i].Gap-other.Steps[i].Gap) > tol {
			return false
		}
	}
	return true
}

// SVTShadowRun executes Adaptive-Sparse-Vector-with-Gap (Algorithm 2) on an
// explicit noise assignment, mirroring the decision and stopping logic of the
// production implementation in internal/core.
func SVTShadowRun(m *core.AdaptiveSVTWithGap, answers []float64, noise SVTNoise) (SVTOutput, error) {
	n := len(answers)
	if n == 0 {
		return SVTOutput{}, core.ErrNoQueries
	}
	if len(noise.Top) < n || len(noise.Middle) < n {
		return SVTOutput{}, fmt.Errorf("alignment: need %d noise pairs, got %d/%d", n, len(noise.Top), len(noise.Middle))
	}
	eps0, eps1, eps2 := m.Budgets()
	sigma := m.Sigma()
	noisyThreshold := m.Threshold + noise.Threshold

	var out SVTOutput
	cost := eps0
	above := 0
	for i := 0; i < n; i++ {
		if m.MaxAnswers > 0 && above >= m.MaxAnswers {
			break
		}
		topGap := answers[i] + noise.Top[i] - noisyThreshold
		if !math.IsInf(sigma, 1) && topGap >= sigma {
			out.Steps = append(out.Steps, SVTStep{Branch: core.BranchTop, Gap: topGap})
			above++
			cost += eps2
		} else {
			middleGap := answers[i] + noise.Middle[i] - noisyThreshold
			if middleGap >= 0 {
				out.Steps = append(out.Steps, SVTStep{Branch: core.BranchMiddle, Gap: middleGap})
				above++
				cost += eps1
			} else {
				out.Steps = append(out.Steps, SVTStep{Branch: core.BranchBelow})
			}
		}
		if cost > m.Epsilon-eps1 {
			break
		}
	}
	return out, nil
}

// SVTAlign computes the Equation (3) local alignment. In the general case the
// threshold noise is raised by 1 and, for every query answered positively, the
// noise of the branch that fired is shifted by 1 + qᵢ − q'ᵢ; all other noise
// is kept. When monotonic is set, the footnote-6 refinement applies: if every
// qᵢ ≥ q'ᵢ the threshold noise stays put and winners shift by qᵢ − q'ᵢ only;
// if every qᵢ ≤ q'ᵢ the general alignment already has shifts of at most 1.
// That refinement is what lets the monotonic mechanism run with half the
// noise at the same ε. The steps argument is the output of the run on
// answersD with the original noise.
func SVTAlign(answersD, answersDPrime []float64, noise SVTNoise, steps []SVTStep, monotonic bool) (SVTNoise, error) {
	if len(answersD) != len(answersDPrime) {
		return SVTNoise{}, fmt.Errorf("alignment: mismatched answer lengths %d and %d", len(answersD), len(answersDPrime))
	}
	// Detect the direction for the monotone refinement: D' never above D.
	dNeverBelow := true
	for i := range answersD {
		if answersD[i] < answersDPrime[i] {
			dNeverBelow = false
			break
		}
	}
	useNoThresholdShift := monotonic && dNeverBelow

	aligned := noise.clone()
	if !useNoThresholdShift {
		aligned.Threshold = noise.Threshold + 1
	}
	for i, step := range steps {
		shift := 1 + answersD[i] - answersDPrime[i]
		if useNoThresholdShift {
			shift = answersD[i] - answersDPrime[i]
		}
		switch step.Branch {
		case core.BranchTop:
			aligned.Top[i] = noise.Top[i] + shift
		case core.BranchMiddle:
			aligned.Middle[i] = noise.Middle[i] + shift
		}
	}
	return aligned, nil
}

// SVTAlignmentCost evaluates the Theorem 4 cost of moving from noise to
// aligned: ε₀·|Δthreshold| + Σ (ε₂/2·|Δξᵢ| + ε₁/2·|Δηᵢ|), which must be at
// most ε. (The division by 2 is the 1/scale factor of Definition 6: the query
// noises have scale 2/ε₂ and 2/ε₁ respectively.)
func SVTAlignmentCost(m *core.AdaptiveSVTWithGap, noise, aligned SVTNoise) float64 {
	thresholdScale, topScale, middleScale := m.NoiseScales()
	cost := math.Abs(aligned.Threshold-noise.Threshold) / thresholdScale
	for i := range noise.Top {
		cost += math.Abs(aligned.Top[i]-noise.Top[i]) / topScale
		cost += math.Abs(aligned.Middle[i]-noise.Middle[i]) / middleScale
	}
	return cost
}

// VerifyAdaptiveSVT samples `trials` noise assignments for the mechanism on
// answersD, aligns each per Equation (3) (with the footnote-6 refinement when
// the mechanism declares monotonic queries), and checks that the aligned run
// on answersDPrime reproduces the same output with cost at most ε
// (Theorem 4). The answer vectors must be sensitivity-1 adjacent, and must
// move in one direction when the mechanism is monotonic.
func VerifyAdaptiveSVT(m *core.AdaptiveSVTWithGap, answersD, answersDPrime []float64, trials int, seed uint64) (Report, error) {
	if err := checkAdjacent(answersD, answersDPrime, m.Monotonic); err != nil {
		return Report{}, err
	}
	thresholdScale, topScale, middleScale := m.NoiseScales()
	src := rng.NewXoshiro(seed)
	report := Report{Trials: trials, CostBound: m.Epsilon}
	n := len(answersD)
	for t := 0; t < trials; t++ {
		noise := SVTNoise{
			Threshold: rng.Laplace(src, thresholdScale),
			Top:       rng.LaplaceVec(src, topScale, n, nil),
			Middle:    rng.LaplaceVec(src, middleScale, n, nil),
		}
		outD, err := SVTShadowRun(m, answersD, noise)
		if err != nil {
			return Report{}, err
		}
		aligned, err := SVTAlign(answersD, answersDPrime, noise, outD.Steps, m.Monotonic)
		if err != nil {
			return Report{}, err
		}
		outDPrime, err := SVTShadowRun(m, answersDPrime, aligned)
		if err != nil {
			return Report{}, err
		}
		if outD.Equal(outDPrime, 1e-9) {
			report.OutputPreserved++
		}
		if cost := SVTAlignmentCost(m, noise, aligned); cost > report.MaxCost {
			report.MaxCost = cost
		}
	}
	return report, nil
}
