// Package experiment is the reproduction harness for the paper's evaluation
// (Section 7). Every figure has a function that regenerates its data series:
//
//	Fig1a / Fig1b   MSE improvement vs k for the gap-aware select-then-measure
//	                protocols (Sparse-Vector-with-Gap, Noisy-Top-K-with-Gap)
//	Fig2a / Fig2b   the same improvement as a function of ε at fixed k
//	Fig3Counts      above-threshold answers: SVT vs Adaptive-SVT-with-Gap
//	Fig3Quality     precision and F-measure of the two
//	Fig4            remaining privacy budget of Adaptive-SVT-with-Gap
//
// plus the supporting studies indexed in DESIGN.md (Corollary 1, the
// Section 6.2 ratio, tie probabilities, Lemma 5 coverage, the empirical
// privacy audit, and the dataset statistics table). Results are returned as
// Figure values that render to aligned text tables or CSV.
//
// The harness runs on synthetic stand-ins for the paper's datasets (see
// internal/dataset and DESIGN.md §5); Config.Scale trades dataset size for
// speed and Config.Trials trades Monte-Carlo precision for speed.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/rng"
)

// Config controls workload sizes and Monte-Carlo effort for every experiment.
type Config struct {
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// Trials is the number of Monte-Carlo repetitions per plotted point.
	// The paper uses 10,000; the default here is 300 to keep `go test` and
	// `go test -bench` fast. cmd/dpbench raises it.
	Trials int
	// Scale divides the dataset sizes (1 = the paper's full scale).
	Scale int
	// Epsilon is the total privacy budget for the k-sweeps (the paper uses
	// 0.7).
	Epsilon float64
	// Ks are the k values for Figures 1, 3 and 4.
	Ks []int
	// Epsilons are the ε values for Figure 2.
	Epsilons []float64
	// FixedK is the k used for Figure 2 (the paper uses 10).
	FixedK int
	// Parallel bounds the number of worker goroutines (0 = GOMAXPROCS).
	Parallel int
	// CompensateScale rescales the privacy budget by Scale when mechanisms
	// run, so that the noise-to-count ratio of a scaled-down dataset matches
	// the paper's full-scale experiments. Counting-query answers shrink
	// linearly with the record count, so without compensation a 100x smaller
	// dataset at the paper's ε = 0.7 is a 100x harder problem and the plotted
	// shapes no longer resemble the paper's. Figures still label the nominal
	// ε. Full-scale runs (Scale = 1) are unaffected.
	CompensateScale bool
}

// effectiveEpsilon maps a nominal budget to the budget actually handed to the
// mechanisms, applying the CompensateScale adjustment.
func (c Config) effectiveEpsilon(nominal float64) float64 {
	if c.CompensateScale && c.Scale > 1 {
		return nominal * float64(c.Scale)
	}
	return nominal
}

// DefaultConfig returns the configuration used by the test suite and the
// benchmark harness: the paper's parameter grids at reduced dataset scale and
// trial count.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Trials:          300,
		Scale:           100,
		Epsilon:         0.7,
		Ks:              []int{2, 5, 10, 15, 20, 25},
		Epsilons:        []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5},
		FixedK:          10,
		CompensateScale: true,
	}
}

// PaperConfig returns the full-scale configuration matching Section 7:
// 10,000 trials per point on the full-size datasets. Expect it to take a long
// time; it is meant for cmd/dpbench, not for `go test`.
func PaperConfig() Config {
	c := DefaultConfig()
	c.Trials = 10000
	c.Scale = 1
	c.CompensateScale = false
	c.Ks = []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24}
	return c
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Trials <= 0 {
		c.Trials = d.Trials
	}
	if c.Scale <= 0 {
		c.Scale = d.Scale
	}
	if !(c.Epsilon > 0) {
		c.Epsilon = d.Epsilon
	}
	if len(c.Ks) == 0 {
		c.Ks = d.Ks
	}
	if len(c.Epsilons) == 0 {
		c.Epsilons = d.Epsilons
	}
	if c.FixedK <= 0 {
		c.FixedK = d.FixedK
	}
	return c
}

// Point is one (x, y) pair of a plotted series.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is the regenerated data behind one of the paper's plots or tables.
type Figure struct {
	ID     string // e.g. "fig1a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Workload is a dataset together with its precomputed counting-query answers
// — everything the mechanisms consume.
type Workload struct {
	Name   string
	Counts []float64
}

// workloadBMSPOS, workloadKosarak and workloadQuest name the three datasets of
// Section 7.1.
const (
	workloadBMSPOS  = "BMS-POS"
	workloadKosarak = "Kosarak"
	workloadQuest   = "T40I10D100K"
)

// BuildWorkload materialises one of the three named workloads at the
// configured scale.
func (c Config) BuildWorkload(name string) (Workload, error) {
	c = c.withDefaults()
	var db *dataset.Transactions
	switch name {
	case workloadBMSPOS:
		db = dataset.BMSPOSConfig().ScaledDown(c.Scale).Generate(c.Seed)
	case workloadKosarak:
		db = dataset.KosarakConfig().ScaledDown(c.Scale).Generate(c.Seed + 1)
	case workloadQuest:
		db = dataset.T40I10D100KConfig().ScaledDown(c.Scale).Generate(c.Seed + 2)
	default:
		return Workload{}, fmt.Errorf("experiment: unknown workload %q", name)
	}
	return Workload{Name: name, Counts: db.ItemCounts()}, nil
}

// Workloads materialises all three datasets.
func (c Config) Workloads() ([]Workload, error) {
	names := []string{workloadBMSPOS, workloadKosarak, workloadQuest}
	out := make([]Workload, 0, len(names))
	for _, n := range names {
		w, err := c.BuildWorkload(n)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// trialFunc runs one Monte-Carlo trial with its own random source and returns
// any number of named accumulator contributions (e.g. "baselineSE", "count").
type trialFunc func(src *rng.Xoshiro) map[string]float64

// runTrials executes fn for each of n trials, each with an independent,
// deterministic random source derived from seed, fanning work across workers.
// It returns the per-key sums over all trials.
func runTrials(n int, seed uint64, parallel int, fn trialFunc) map[string]float64 {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel < 1 {
		parallel = 1
	}

	type partial map[string]float64
	results := make(chan partial, parallel)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			local := make(partial)
			for trial := worker; trial < n; trial += parallel {
				// Seed each trial independently so results do not depend on
				// scheduling or on the worker count.
				src := rng.NewXoshiro(seed ^ (0x9e3779b97f4a7c15 * uint64(trial+1)))
				for k, v := range fn(src) {
					local[k] += v
				}
			}
			results <- local
		}(w)
	}
	wg.Wait()
	close(results)

	total := make(map[string]float64)
	for p := range results {
		for k, v := range p {
			total[k] += v
		}
	}
	return total
}
