// Package accountant tracks privacy-loss budget under sequential composition
// (Section 3.1 of the paper): running mechanisms with budgets ε₁, …, ε_k on
// the same data costs Σεᵢ. The adaptive Sparse Vector experiments (Figure 4)
// report the fraction of budget an analyst has left after the mechanism
// stops, which is exactly the accountant's Remaining value.
package accountant

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrBudgetExceeded is returned by Spend when a charge would push total
// spending above the configured budget.
var ErrBudgetExceeded = errors.New("accountant: privacy budget exceeded")

// ErrInvalidCharge is returned when a non-positive or NaN charge is requested.
var ErrInvalidCharge = errors.New("accountant: charge must be a positive finite value")

// tolerance absorbs floating-point drift when many small charges should sum
// exactly to the budget (e.g. ε₀ + Σεᵢ = ε in Algorithm 2).
const tolerance = 1e-9

// Accountant is a thread-safe sequential-composition budget tracker.
type Accountant struct {
	mu     sync.Mutex
	budget float64
	spent  float64
	log    []Charge
}

// Charge records one budget expenditure for auditability.
type Charge struct {
	Label   string
	Epsilon float64
}

// New creates an accountant with the given total ε budget.
func New(budget float64) (*Accountant, error) {
	if !(budget > 0) {
		return nil, fmt.Errorf("accountant: budget %v must be positive", budget)
	}
	return &Accountant{budget: budget}, nil
}

// MustNew is New for static configurations known to be valid; it panics on
// error.
func MustNew(budget float64) *Accountant {
	a, err := New(budget)
	if err != nil {
		panic(err)
	}
	return a
}

// Budget returns the configured total budget.
func (a *Accountant) Budget() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget
}

// Spent returns the total ε charged so far.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Remaining returns the unspent budget (never negative).
func (a *Accountant) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.budget - a.spent
	if r < 0 {
		return 0
	}
	return r
}

// RemainingFraction returns Remaining()/Budget(), the quantity plotted in
// Figure 4.
func (a *Accountant) RemainingFraction() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.budget - a.spent
	if r < 0 {
		r = 0
	}
	return r / a.budget
}

// CanSpend reports whether a charge of eps would be admissible.
func (a *Accountant) CanSpend(eps float64) bool {
	if !(eps > 0) {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent+eps <= a.budget+tolerance
}

// Spend charges eps against the budget under the given label. It returns
// ErrBudgetExceeded (and charges nothing) if the budget would be exceeded.
// It is the one-charge case of SpendBatch, so single and batched requests
// share one admission rule.
func (a *Accountant) Spend(label string, eps float64) error {
	return a.SpendBatch([]Charge{{Label: label, Epsilon: eps}})
}

// SpendBatch charges every entry of charges against the budget atomically:
// either all of them are admitted, or (when their sum would exceed the
// budget) none are and ErrBudgetExceeded is returned. It is the primitive
// behind batched serving — a batch reserved in one SpendBatch can never
// overspend what the same requests charged serially could, and concurrent
// batches race for the budget as single indivisible units.
func (a *Accountant) SpendBatch(charges []Charge) error {
	if len(charges) == 0 {
		return fmt.Errorf("%w: empty batch", ErrInvalidCharge)
	}
	var sum float64
	for _, c := range charges {
		if !(c.Epsilon > 0) {
			return fmt.Errorf("%w: %v (label %q)", ErrInvalidCharge, c.Epsilon, c.Label)
		}
		sum += c.Epsilon
	}
	if math.IsInf(sum, 0) || math.IsNaN(sum) {
		return fmt.Errorf("%w: batch total %v", ErrInvalidCharge, sum)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spent+sum > a.budget+tolerance {
		kind := "charge"
		if len(charges) > 1 {
			kind = "batch charge"
		}
		return fmt.Errorf("%w: spent %.6g + %s %.6g > budget %.6g",
			ErrBudgetExceeded, a.spent, kind, sum, a.budget)
	}
	a.spent += sum
	a.log = append(a.log, charges...)
	return nil
}

// ChargeCount returns the number of admitted charges without copying the log.
func (a *Accountant) ChargeCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.log)
}

// Charges returns a copy of the expenditure log in order.
func (a *Accountant) Charges() []Charge {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Charge, len(a.log))
	copy(out, a.log)
	return out
}

// SpentByLabel aggregates the expenditure log by charge label — the
// per-mechanism spend breakdown a tenant sees on its budget ledger.
func (a *Accountant) SpentByLabel() map[string]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]float64, 8)
	for _, c := range a.log {
		out[c.Label] += c.Epsilon
	}
	return out
}

// Reset clears all spending, keeping the budget.
func (a *Accountant) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent = 0
	a.log = a.log[:0]
}

// Split divides the remaining budget into n equal shares and returns the
// per-share ε without charging anything. It is how the "half for selection,
// half for measurement" protocols of Sections 5.2 and 6.2 are expressed.
func (a *Accountant) Split(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("accountant: cannot split into %d shares", n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.budget - a.spent
	if r <= 0 {
		return 0, ErrBudgetExceeded
	}
	return r / float64(n), nil
}
