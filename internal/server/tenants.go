package server

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/freegap/freegap/internal/accountant"
	"github.com/freegap/freegap/internal/engine"
)

// ErrTenantLimit is returned by Get/Charge when provisioning a new tenant
// would exceed the registry's tenant cap.
var ErrTenantLimit = errors.New("server: tenant limit reached")

// maxTenantNameLen bounds tenant identifiers so hostile clients cannot grow
// the registry key space without bound per entry; the rule lives in the
// engine so CLI and batch callers validate identically.
const maxTenantNameLen = engine.MaxTenantNameLen

// maxRegistryShards caps the shard count; beyond this the per-shard maps are
// so sparsely contended that more shards only waste memory.
const maxRegistryShards = 256

// registryShardCount picks the shard count for a new registry: GOMAXPROCS
// rounded up to a power of two (so the hash → shard mapping is a mask, not a
// division), capped at maxRegistryShards.
func registryShardCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	if shards > maxRegistryShards {
		shards = maxRegistryShards
	}
	return shards
}

// registryShard is one lock domain of the registry: tenants whose ids hash
// here never contend with tenants hashed elsewhere. The pad keeps adjacent
// shards' mutexes off one cache line.
type registryShard struct {
	mu      sync.RWMutex
	tenants map[string]*accountant.Accountant
	_       [64]byte
}

// Registry is a concurrency-safe map of tenant id → privacy accountant. An
// accountant is created with the configured initial budget the first time a
// tenant issues a request, and every subsequent request is charged against it
// atomically, so concurrent clients of the same tenant draw from one budget.
//
// The map is sharded by tenant-id hash into GOMAXPROCS-ish lock domains, so
// lookups (the per-request fast path) and creations for distinct tenants
// never serialize on one global mutex; the only registry-wide shared state
// is the atomic tenant count backing the provisioning cap.
type Registry struct {
	budget float64
	// maxTenants caps auto-provisioning; zero means unlimited.
	maxTenants int
	// count is the live tenant total across all shards, reserved by CAS
	// before an insert so the cap stays strict however many shards race.
	count  atomic.Int64
	shards []registryShard
	mask   uint64
	// journal, when set, observes every admitted charge batch of every
	// tenant (see SetJournal). It is read lock-free on the (rare) tenant
	// creation path and written by SetJournal before serving.
	journal atomic.Pointer[journalBox]
}

// journalBox wraps the journal interface so it can live in an
// atomic.Pointer (interfaces are two words and cannot be stored atomically).
type journalBox struct{ j ChargeJournal }

// ChargeJournal observes admitted charges for durable persistence. The
// registry installs a per-tenant hook into each accountant so AppendCharge
// runs iff the charge committed, in per-tenant commit order.
type ChargeJournal interface {
	AppendCharge(tenant string, charges []accountant.Charge)
}

// NewRegistry returns a registry that provisions each new tenant with the
// given initial ε budget. maxTenants caps how many tenants may be
// auto-provisioned; zero means unlimited.
func NewRegistry(initialBudget float64, maxTenants int) (*Registry, error) {
	if !(initialBudget > 0) {
		return nil, fmt.Errorf("server: tenant budget %v must be positive", initialBudget)
	}
	if maxTenants < 0 {
		return nil, fmt.Errorf("server: max tenants %d must not be negative", maxTenants)
	}
	n := registryShardCount()
	r := &Registry{
		budget:     initialBudget,
		maxTenants: maxTenants,
		shards:     make([]registryShard, n),
		mask:       uint64(n - 1),
	}
	for i := range r.shards {
		r.shards[i].tenants = make(map[string]*accountant.Accountant)
	}
	return r, nil
}

// InitialBudget returns the ε budget new tenants are provisioned with.
func (r *Registry) InitialBudget() float64 { return r.budget }

// NumShards returns the registry's shard count (exposed for tests and
// startup logging).
func (r *Registry) NumShards() int { return len(r.shards) }

// shardFor hashes the tenant id (FNV-1a) onto its shard.
func (r *Registry) shardFor(tenant string) *registryShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= prime64
	}
	return &r.shards[h&r.mask]
}

// validTenant reports whether the tenant id is acceptable.
func validTenant(tenant string) error {
	if err := engine.ValidTenant(tenant); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return nil
}

// reserveSlot reserves one tenant slot against the cap (strictly: a CAS loop,
// so racing creators in different shards can never jointly overshoot).
func (r *Registry) reserveSlot(enforceCap bool) error {
	for {
		c := r.count.Load()
		if enforceCap && r.maxTenants > 0 && c >= int64(r.maxTenants) {
			return fmt.Errorf("%w: %d tenants provisioned", ErrTenantLimit, c)
		}
		if r.count.CompareAndSwap(c, c+1) {
			return nil
		}
	}
}

// Get returns the tenant's accountant, creating it with the initial budget on
// first use.
func (r *Registry) Get(tenant string) (*accountant.Accountant, error) {
	if err := validTenant(tenant); err != nil {
		return nil, err
	}
	sh := r.shardFor(tenant)
	sh.mu.RLock()
	a, ok := sh.tenants[tenant]
	sh.mu.RUnlock()
	if ok {
		return a, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if a, ok := sh.tenants[tenant]; ok {
		return a, nil
	}
	if err := r.reserveSlot(true); err != nil {
		return nil, err
	}
	a = accountant.MustNew(r.budget)
	r.installJournal(tenant, a)
	sh.tenants[tenant] = a
	return a, nil
}

// installJournal wires the registry journal (if any) into one accountant.
// Caller holds the tenant's shard lock for writing.
func (r *Registry) installJournal(tenant string, a *accountant.Accountant) {
	box := r.journal.Load()
	if box == nil || box.j == nil {
		a.SetJournal(nil)
		return
	}
	j := box.j
	a.SetJournal(func(charges []accountant.Charge) { j.AppendCharge(tenant, charges) })
}

// SetJournal installs j as the registry's charge journal: every tenant
// accountant — existing and future — reports its admitted charges to it.
// Install before serving traffic; passing nil removes the hooks.
func (r *Registry) SetJournal(j ChargeJournal) {
	r.journal.Store(&journalBox{j: j})
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for tenant, a := range sh.tenants {
			r.installJournal(tenant, a)
		}
		sh.mu.Unlock()
	}
}

// RestoreTenant provisions tenant with a previously journalled spending
// state, bypassing the tenant cap (the tenants existed before the restart).
// The restored charges themselves are never re-journalled — they are already
// durable — but future spends of the tenant are. It fails if the tenant was
// already provisioned.
func (r *Registry) RestoreTenant(tenant string, charges []accountant.Charge, chargeCount int) error {
	if err := validTenant(tenant); err != nil {
		return err
	}
	sh := r.shardFor(tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.tenants[tenant]; ok {
		return fmt.Errorf("server: tenant %q restored twice", tenant)
	}
	a := accountant.MustNew(r.budget)
	if err := a.Restore(charges, chargeCount); err != nil {
		return fmt.Errorf("server: restoring tenant %q: %w", tenant, err)
	}
	if err := r.reserveSlot(false); err != nil {
		return err
	}
	r.installJournal(tenant, a)
	sh.tenants[tenant] = a
	return nil
}

// Lookup returns the tenant's accountant without creating one.
func (r *Registry) Lookup(tenant string) (*accountant.Accountant, bool) {
	sh := r.shardFor(tenant)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	a, ok := sh.tenants[tenant]
	return a, ok
}

// Charge atomically charges eps to the tenant under the given label, creating
// the tenant on first use. It returns the remaining budget after the charge;
// accountant.ErrBudgetExceeded means nothing was charged.
func (r *Registry) Charge(tenant, label string, eps float64) (remaining float64, err error) {
	a, err := r.Get(tenant)
	if err != nil {
		return 0, err
	}
	if err := a.Spend(label, eps); err != nil {
		return a.Remaining(), err
	}
	return a.Remaining(), nil
}

// ChargeBatch atomically charges every entry of charges to the tenant,
// creating the tenant on first use. The multi-charge is all-or-nothing: on
// accountant.ErrBudgetExceeded nothing was charged. It returns the remaining
// budget after the attempt.
func (r *Registry) ChargeBatch(tenant string, charges []accountant.Charge) (remaining float64, err error) {
	a, err := r.Get(tenant)
	if err != nil {
		return 0, err
	}
	if err := a.SpendBatch(charges); err != nil {
		return a.Remaining(), err
	}
	return a.Remaining(), nil
}

// Len returns the number of live tenants.
func (r *Registry) Len() int { return int(r.count.Load()) }

// Range calls fn for every live tenant until fn returns false. Each shard's
// read lock is held only while that shard is walked, so a long fn (or many
// tenants) never blocks writes registry-wide; tenants created mid-iteration
// may or may not be visited, as with any concurrent map walk.
func (r *Registry) Range(fn func(tenant string, a *accountant.Accountant) bool) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for tenant, a := range sh.tenants {
			if !fn(tenant, a) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// Tenants returns the live tenant ids, sorted.
func (r *Registry) Tenants() []string {
	out := make([]string, 0, r.Len())
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for t := range sh.tenants {
			out = append(out, t)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}
