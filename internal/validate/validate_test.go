package validate

import (
	"strings"
	"testing"
)

// adjacentCountingAnswers returns a worst-case adjacent pair for counting
// queries: removing one record decrements every count that record touches.
func adjacentCountingAnswers() (d, dPrime []float64) {
	d = []float64{10, 9, 8, 3}
	dPrime = []float64{9, 8, 8, 2} // one record containing items 0, 1 and 3 removed
	return d, dPrime
}

func TestEstimateEpsilonTopKWithinBudget(t *testing.T) {
	d, dPrime := adjacentCountingAnswers()
	const eps = 0.8
	res, err := EstimateEpsilon(TopKIndexMechanism(2, eps, false), d, dPrime, AuditConfig{Trials: 60000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ComparedOutputs == 0 {
		t.Fatal("no outputs were frequent enough to compare")
	}
	// Allow generous Monte-Carlo slack: the true guarantee is eps (indeed
	// eps/2 for this monotonic workload run in non-monotonic mode).
	if res.EpsilonHat > eps+0.25 {
		t.Fatalf("audit found epsilon-hat %v for a %v-DP mechanism: %v", res.EpsilonHat, eps, res)
	}
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}

func TestEstimateEpsilonAdaptiveSVTWithinBudget(t *testing.T) {
	d, dPrime := adjacentCountingAnswers()
	const eps = 0.9
	res, err := EstimateEpsilon(SVTPatternMechanism(2, eps, 8, true), d, dPrime, AuditConfig{Trials: 60000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ComparedOutputs == 0 {
		t.Fatal("no comparable outputs")
	}
	if res.EpsilonHat > eps+0.25 {
		t.Fatalf("audit found epsilon-hat %v for a %v-DP mechanism: %v", res.EpsilonHat, eps, res)
	}
}

func TestEstimateEpsilonSVTWithGapWithinBudget(t *testing.T) {
	d, dPrime := adjacentCountingAnswers()
	const eps = 0.9
	res, err := EstimateEpsilon(SparseVectorWithGapMechanism(2, eps, 8, true), d, dPrime, AuditConfig{Trials: 60000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.EpsilonHat > eps+0.25 {
		t.Fatalf("audit found epsilon-hat %v for a %v-DP mechanism: %v", res.EpsilonHat, eps, res)
	}
}

func TestAuditFlagsLeakyMechanism(t *testing.T) {
	// A mechanism whose effective budget is 6x the claimed eps must produce a
	// visibly larger epsilon-hat than the honest one.
	d, dPrime := adjacentCountingAnswers()
	const eps = 0.4
	cfg := AuditConfig{Trials: 60000, Seed: 4}
	honest, err := EstimateEpsilon(TopKIndexMechanism(1, eps, false), d, dPrime, cfg)
	if err != nil {
		t.Fatal(err)
	}
	leaky, err := EstimateEpsilon(LeakyTopKMechanism(1, eps, 6), d, dPrime, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if leaky.EpsilonHat <= honest.EpsilonHat+0.3 {
		t.Fatalf("audit failed to separate leaky (%v) from honest (%v)", leaky.EpsilonHat, honest.EpsilonHat)
	}
	if leaky.EpsilonHat <= eps {
		t.Fatalf("leaky mechanism reported epsilon-hat %v below claimed %v", leaky.EpsilonHat, eps)
	}
}

func TestEstimateEpsilonValidation(t *testing.T) {
	if _, err := EstimateEpsilon(TopKIndexMechanism(1, 1, false), nil, []float64{1}, AuditConfig{}); err == nil {
		t.Fatal("empty D accepted")
	}
	failing := TopKIndexMechanism(0, 1, false)
	if _, err := EstimateEpsilon(failing, []float64{1, 2}, []float64{1, 2}, AuditConfig{Trials: 10}); err == nil {
		t.Fatal("mechanism error not propagated")
	}
}

func TestAuditConfigDefaults(t *testing.T) {
	c := AuditConfig{}.withDefaults()
	if c.Trials != 50000 || c.MinCount != 20 {
		t.Fatalf("unexpected defaults %+v", c)
	}
	c2 := AuditConfig{Trials: 7, MinCount: 3}.withDefaults()
	if c2.Trials != 7 || c2.MinCount != 3 {
		t.Fatalf("explicit values overridden: %+v", c2)
	}
}

func TestSVTPatternKeysAreBranchStrings(t *testing.T) {
	d, _ := adjacentCountingAnswers()
	mech := SVTPatternMechanism(2, 1, 8, true)
	src := newTestSource()
	key, err := mech(src, d)
	if err != nil {
		t.Fatal(err)
	}
	if key == "" {
		t.Fatal("empty key")
	}
	for _, r := range key {
		if !strings.ContainsRune("TM.", r) {
			t.Fatalf("unexpected rune %q in pattern %q", r, key)
		}
	}
}

type testSource struct{ state uint64 }

func newTestSource() *testSource { return &testSource{state: 0x853c49e6748fea9b} }

func (s *testSource) Uint64() uint64 {
	// xorshift64* — good enough for a smoke test of the adapter plumbing.
	s.state ^= s.state >> 12
	s.state ^= s.state << 25
	s.state ^= s.state >> 27
	return s.state * 0x2545f4914f6cdd1d
}
