// Package validate provides an empirical differential-privacy audit for the
// mechanisms in this repository.
//
// The paper proves privacy through randomness alignments (Sections 4 and 8);
// this package checks the resulting guarantee end to end the way a test suite
// can: run a mechanism many times on a pair of adjacent query vectors, build
// the output histograms, and report the largest observed log-probability
// ratio ε̂ = max_ω |ln P(M(D)=ω) − ln P(M(D′)=ω)| over outputs that occurred
// often enough for the ratio to be meaningful. For a correctly implemented
// ε-DP mechanism, ε̂ stays at or below ε up to sampling error; a broken noise
// scale or a leaked secret (e.g. publishing the noisy threshold) shows up as
// ε̂ well above ε. The audit is a necessary-condition check, not a proof.
package validate

import (
	"fmt"
	"math"
	"sort"

	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/rng"
)

// Mechanism adapts a differentially private algorithm for auditing: it runs
// the algorithm once on the given true query answers and returns a discrete
// key describing the released output. Continuous outputs (gaps) must be
// omitted or coarsely bucketed by the adapter; projecting the output is
// legitimate because any function of an ε-DP output is itself ε-DP.
type Mechanism func(src rng.Source, answers []float64) (string, error)

// AuditConfig controls the Monte-Carlo audit.
type AuditConfig struct {
	// Trials is the number of runs per database (default 50,000).
	Trials int
	// MinCount is the minimum number of occurrences an output needs on both
	// databases before its probability ratio is considered (default 20).
	MinCount int
	// Seed seeds the audit's random source.
	Seed uint64
}

func (c AuditConfig) withDefaults() AuditConfig {
	if c.Trials <= 0 {
		c.Trials = 50000
	}
	if c.MinCount <= 0 {
		c.MinCount = 20
	}
	return c
}

// Result reports the audit outcome.
type Result struct {
	// EpsilonHat is the largest observed |log probability ratio| among
	// sufficiently frequent outputs.
	EpsilonHat float64
	// WorstOutput is the output key achieving EpsilonHat.
	WorstOutput string
	// Outputs is the number of distinct output keys observed across both runs.
	Outputs int
	// ComparedOutputs is the number of keys frequent enough to be compared.
	ComparedOutputs int
	// Trials echoes the per-database trial count used.
	Trials int
}

// String summarises the result.
func (r Result) String() string {
	return fmt.Sprintf("epsilon-hat=%.4f over %d/%d comparable outputs (worst %q, %d trials/db)",
		r.EpsilonHat, r.ComparedOutputs, r.Outputs, r.WorstOutput, r.Trials)
}

// EstimateEpsilon runs the mechanism cfg.Trials times on each of the two
// adjacent answer vectors and returns the audit result.
func EstimateEpsilon(mech Mechanism, answersD, answersDPrime []float64, cfg AuditConfig) (Result, error) {
	cfg = cfg.withDefaults()
	if len(answersD) == 0 || len(answersDPrime) == 0 {
		return Result{}, fmt.Errorf("validate: empty answer vectors")
	}
	src := rng.NewXoshiro(cfg.Seed)
	countsD, err := histogram(mech, src, answersD, cfg.Trials)
	if err != nil {
		return Result{}, fmt.Errorf("validate: running on D: %w", err)
	}
	countsDPrime, err := histogram(mech, src, answersDPrime, cfg.Trials)
	if err != nil {
		return Result{}, fmt.Errorf("validate: running on D': %w", err)
	}

	keys := map[string]bool{}
	for k := range countsD {
		keys[k] = true
	}
	for k := range countsDPrime {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	res := Result{Outputs: len(sorted), Trials: cfg.Trials}
	for _, k := range sorted {
		a, b := countsD[k], countsDPrime[k]
		if a < cfg.MinCount || b < cfg.MinCount {
			continue
		}
		res.ComparedOutputs++
		ratio := math.Abs(math.Log(float64(a)) - math.Log(float64(b)))
		if ratio > res.EpsilonHat {
			res.EpsilonHat = ratio
			res.WorstOutput = k
		}
	}
	return res, nil
}

func histogram(mech Mechanism, src rng.Source, answers []float64, trials int) (map[string]int, error) {
	counts := make(map[string]int)
	for i := 0; i < trials; i++ {
		key, err := mech(src, answers)
		if err != nil {
			return nil, err
		}
		counts[key]++
	}
	return counts, nil
}

// TopKIndexMechanism adapts Noisy-Top-K-with-Gap for auditing by keying on the
// ordered list of selected indices (the gaps, being continuous, are projected
// away; the indices alone must already satisfy ε-DP).
func TopKIndexMechanism(k int, epsilon float64, monotonic bool) Mechanism {
	return func(src rng.Source, answers []float64) (string, error) {
		m, err := core.NewTopKWithGap(k, epsilon, monotonic)
		if err != nil {
			return "", err
		}
		res, err := m.Run(src, answers)
		if err != nil {
			return "", err
		}
		return fmt.Sprint(res.Indices()), nil
	}
}

// SVTPatternMechanism adapts Adaptive-Sparse-Vector-with-Gap for auditing by
// keying on the per-query branch pattern (top/middle/below), the discrete part
// of its output.
func SVTPatternMechanism(k int, epsilon, threshold float64, monotonic bool) Mechanism {
	return func(src rng.Source, answers []float64) (string, error) {
		m, err := core.NewAdaptiveSVTWithGap(k, epsilon, threshold, monotonic)
		if err != nil {
			return "", err
		}
		res, err := m.Run(src, answers)
		if err != nil {
			return "", err
		}
		pattern := make([]byte, len(res.Items))
		for i, it := range res.Items {
			switch it.Branch {
			case core.BranchTop:
				pattern[i] = 'T'
			case core.BranchMiddle:
				pattern[i] = 'M'
			default:
				pattern[i] = '.'
			}
		}
		return string(pattern), nil
	}
}

// SparseVectorWithGapMechanism audits the non-adaptive gap variant by keying
// on the above/below pattern it emits before stopping.
func SparseVectorWithGapMechanism(k int, epsilon, threshold float64, monotonic bool) Mechanism {
	return func(src rng.Source, answers []float64) (string, error) {
		m, err := core.NewSVTWithGap(k, epsilon, threshold, monotonic)
		if err != nil {
			return "", err
		}
		res, err := m.Run(src, answers)
		if err != nil {
			return "", err
		}
		pattern := make([]byte, len(res.Items))
		for i, it := range res.Items {
			if it.Above {
				pattern[i] = '>'
			} else {
				pattern[i] = '.'
			}
		}
		return string(pattern), nil
	}
}

// LeakyTopKMechanism is a deliberately broken variant used by tests and the
// privacy-audit example: it adds Laplace noise that is a factor of `shrink`
// too small, so its true privacy loss is shrink·ε. The audit must flag it.
func LeakyTopKMechanism(k int, epsilon float64, shrink float64) Mechanism {
	return TopKIndexMechanism(k, epsilon*shrink, false)
}
