// Command dptopk runs Noisy-Top-K-with-Gap over the item counts of a
// transaction dataset and, optionally, the full select-then-measure-then-BLUE
// protocol of Section 5.2. Both run through the same mechanism engine the
// dpserver dispatches on: -measure selects the "pipeline/topk" workflow, the
// default the raw "topk" mechanism.
//
// Usage:
//
//	dptopk -data transactions.dat -k 10 -eps 1.0
//	dptopk -synthetic bmspos -scale 100 -k 5 -eps 0.7 -measure
//
// Output: one line per selected item with its (noisy) rank gap and, with
// -measure, the gap-refined estimate of its count.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	freegap "github.com/freegap/freegap"
)

// cliTenant is the tenant label engine requests are issued under; the CLI
// runs the mechanisms locally, so it only shows up in validation and logs.
const cliTenant = "cli"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dptopk:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dptopk", flag.ContinueOnError)
	var (
		dataPath  = fs.String("data", "", "transaction dataset in FIMI format")
		synthetic = fs.String("synthetic", "", "generate a synthetic dataset instead of reading one: bmspos, kosarak, or quest")
		scale     = fs.Int("scale", 100, "scale-down factor for synthetic datasets")
		k         = fs.Int("k", 5, "number of items to select")
		eps       = fs.Float64("eps", 1.0, "total privacy budget")
		seed      = fs.Uint64("seed", 1, "random seed")
		measure   = fs.Bool("measure", false, "spend half the budget on measurements and report BLUE-refined counts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	counts, err := loadCounts(*dataPath, *synthetic, *scale, *seed)
	if err != nil {
		return err
	}
	if *k <= 0 || *k >= len(counts) {
		return fmt.Errorf("k = %d must be in [1, %d)", *k, len(counts))
	}

	registry := freegap.DefaultMechanisms()
	src := freegap.NewSource(*seed)
	common := freegap.RequestCommon{Tenant: cliTenant, Epsilon: *eps, Answers: counts, Monotonic: true}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if *measure {
		mech, err := registry.Get("pipeline/topk")
		if err != nil {
			return err
		}
		req := &freegap.PipelineTopKRequest{Common: common, K: *k}
		if err := mech.Validate(req, freegap.MechanismLimits{}); err != nil {
			return err
		}
		resp, err := mech.Execute(src, req, nil)
		if err != nil {
			return err
		}
		out := resp.(*freegap.PipelineTopKResponse)
		fmt.Fprintln(tw, "rank\titem\tnoisy gap to next\testimated count")
		for i, est := range out.Estimates {
			fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.2f\n", i+1, est.Index, est.Gap, est.Refined)
		}
	} else {
		mech, err := registry.Get("topk")
		if err != nil {
			return err
		}
		req := &freegap.TopKRequest{Common: common, K: *k}
		if err := mech.Validate(req, freegap.MechanismLimits{}); err != nil {
			return err
		}
		resp, err := mech.Execute(src, req, nil)
		if err != nil {
			return err
		}
		out := resp.(*freegap.TopKResponse)
		fmt.Fprintln(tw, "rank\titem\tnoisy gap to next")
		for i, s := range out.Selections {
			fmt.Fprintf(tw, "%d\t%d\t%.2f\n", i+1, s.Index, s.Gap)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("privacy budget spent: %.4g\n", *eps)
	return nil
}

func loadCounts(dataPath, synthetic string, scale int, seed uint64) ([]float64, error) {
	switch {
	case dataPath != "" && synthetic != "":
		return nil, fmt.Errorf("use either -data or -synthetic, not both")
	case dataPath != "":
		db, err := freegap.ReadFIMIFile(dataPath)
		if err != nil {
			return nil, err
		}
		return db.ItemCounts(), nil
	case synthetic != "":
		var db *freegap.Dataset
		switch synthetic {
		case "bmspos":
			db = freegap.NewSyntheticBMSPOS(seed, scale)
		case "kosarak":
			db = freegap.NewSyntheticKosarak(seed, scale)
		case "quest":
			db = freegap.NewSyntheticT40I10D100K(seed, scale)
		default:
			return nil, fmt.Errorf("unknown synthetic dataset %q (valid: bmspos, kosarak, quest)", synthetic)
		}
		return db.ItemCounts(), nil
	default:
		return nil, fmt.Errorf("provide -data FILE or -synthetic NAME")
	}
}
