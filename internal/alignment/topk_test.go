package alignment

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/rng"
)

// adjacentPair builds a random sensitivity-1 adjacent pair of counting-query
// vectors. When monotone is true, D' is obtained by removing one record, so
// every count either stays or drops by exactly 1.
func adjacentPair(src *rng.Xoshiro, n int, monotone bool) (d, dPrime []float64) {
	d = make([]float64, n)
	dPrime = make([]float64, n)
	for i := range d {
		d[i] = float64(rng.Intn(src, 200))
		delta := float64(rng.Intn(src, 2)) // 0 or 1
		if monotone {
			dPrime[i] = d[i] - delta
		} else {
			if rng.Float64(src) < 0.5 {
				dPrime[i] = d[i] - delta
			} else {
				dPrime[i] = d[i] + delta
			}
		}
	}
	return d, dPrime
}

func TestTopKShadowRunMatchesTrueRanking(t *testing.T) {
	answers := []float64{10, 50, 30, 40, 20}
	noise := make([]float64, 5) // zero noise
	out, err := TopKShadowRun(answers, noise, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantIdx := []int{1, 3, 2}
	wantGap := []float64{10, 10, 10}
	for i := range wantIdx {
		if out.Indices[i] != wantIdx[i] || math.Abs(out.Gaps[i]-wantGap[i]) > 1e-12 {
			t.Fatalf("shadow run output %+v", out)
		}
	}
}

func TestTopKShadowRunErrors(t *testing.T) {
	if _, err := TopKShadowRun(nil, nil, 1); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := TopKShadowRun([]float64{1, 2}, []float64{0}, 1); err == nil {
		t.Fatal("mismatched noise accepted")
	}
	if _, err := TopKShadowRun([]float64{1, 2}, []float64{0, 0}, 2); err == nil {
		t.Fatal("k = n accepted")
	}
}

func TestTopKAlignPreservesOutputAndCost(t *testing.T) {
	// The executable version of Theorem 2: on random adjacent pairs, the
	// Equation (2) alignment reproduces the output exactly and its cost stays
	// within epsilon.
	src := rng.NewXoshiro(5)
	for _, monotonic := range []bool{false, true} {
		m, err := core.NewTopKWithGap(3, 0.8, monotonic)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			d, dPrime := adjacentPair(src, 12, monotonic)
			report, err := VerifyTopK(m, d, dPrime, 200, uint64(trial))
			if err != nil {
				t.Fatal(err)
			}
			if !report.OK() {
				t.Fatalf("monotonic=%v trial %d: %v", monotonic, trial, report)
			}
		}
	}
}

func TestTopKAlignRejectsNonAdjacentPairs(t *testing.T) {
	m, _ := core.NewTopKWithGap(2, 1, false)
	d := []float64{10, 20, 30}
	far := []float64{10, 20, 35} // differs by 5
	if _, err := VerifyTopK(m, d, far, 10, 1); err == nil {
		t.Fatal("non-adjacent pair accepted")
	}
	both := []float64{9, 21, 30} // moves both directions
	if _, err := VerifyTopK(&core.TopKWithGap{K: 2, Epsilon: 1, Monotonic: true}, d, both, 10, 1); err == nil {
		t.Fatal("non-monotone pair accepted for a monotonic mechanism")
	}
}

func TestTopKAlignCostCanExceedHalfEpsilonOnlyWithoutMonotonicity(t *testing.T) {
	// With the monotonic noise scale but a genuinely monotone pair, the cost
	// bound epsilon holds (that is exactly the epsilon/2 saving of Theorem 2).
	src := rng.NewXoshiro(9)
	m, _ := core.NewTopKWithGap(4, 0.6, true)
	d, dPrime := adjacentPair(src, 15, true)
	report, err := VerifyTopK(m, d, dPrime, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("monotone alignment violated the budget: %v", report)
	}
	if report.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestTopKAlignBrokenScaleIsDetected(t *testing.T) {
	// If a mechanism adds noise at half the scale Theorem 2 requires (a
	// privacy bug), the alignment cost exceeds epsilon on a worst-case
	// adjacent pair, so the executable check has power to detect it. The pair
	// below maximises the shift |qᵢ−q'ᵢ + Δmax| = 2 for every selected query.
	d := []float64{30, 29, 28, 0, 0, 0}
	dPrime := []float64{29, 28, 27, 1, 1, 1}
	m := &core.TopKWithGap{K: 3, Epsilon: 1.0, Monotonic: false}

	// Correctly scaled noise: never exceeds the bound.
	report, err := VerifyTopK(m, d, dPrime, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("correctly-scaled mechanism flagged: %v", report)
	}

	// Under-scaled noise (half of 2k/epsilon): the same alignment shifts now
	// cost twice as much relative to the scale, exceeding epsilon.
	src := rng.NewXoshiro(11)
	scale := m.NoiseScale() / 2
	violations := 0
	for trial := 0; trial < 300; trial++ {
		noise := rng.LaplaceVec(src, scale, len(d), nil)
		out, err := TopKShadowRun(d, noise, m.K)
		if err != nil {
			t.Fatal(err)
		}
		aligned, err := TopKAlign(d, dPrime, noise, out.Indices)
		if err != nil {
			t.Fatal(err)
		}
		if AlignmentCost(noise, aligned, scale) > m.Epsilon*(1+1e-9) {
			violations++
		}
	}
	if violations < 100 {
		t.Fatalf("under-scaled noise exceeded the cost bound in only %d/300 trials; the check has no power", violations)
	}
}

func TestAlignmentCostPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AlignmentCost([]float64{1}, []float64{2}, 0)
}

func TestMaxStabilityLemma3(t *testing.T) {
	// Lemma 3: coordinate-wise closeness bounds the difference of maxima.
	f := func(seed uint64) bool {
		local := rng.NewXoshiro(seed)
		n := 1 + rng.Intn(local, 20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = 100 * rng.Float64(local)
			ys[i] = xs[i] + (rng.Float64(local)*2 - 1) // differ by at most 1
		}
		coordDiff, maxDiff := MaxStability(xs, ys)
		return maxDiff <= coordDiff+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKAlignErrors(t *testing.T) {
	if _, err := TopKAlign([]float64{1}, []float64{1, 2}, []float64{0}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := TopKAlign([]float64{1, 2}, []float64{1, 2}, []float64{0, 0}, []int{5}); err == nil {
		t.Fatal("out-of-range selection accepted")
	}
	if _, err := TopKAlign([]float64{1, 2}, []float64{1, 2}, []float64{0, 0}, []int{0, 1}); err == nil {
		t.Fatal("alignment with no unselected queries accepted")
	}
}
