package core

import (
	"fmt"
	"math"

	"github.com/freegap/freegap/internal/rng"
)

// Branch identifies which branch of Adaptive-Sparse-Vector-with-Gap
// (Algorithm 2) produced an answer, which also determines the privacy charge
// for that answer.
type Branch int

const (
	// BranchBelow is the "⊥" branch: the query did not clear the noisy
	// threshold. It costs no privacy budget.
	BranchBelow Branch = iota
	// BranchTop is the first "if" branch: the heavily-noised query cleared the
	// noisy threshold by at least σ. It costs ε₂ (the small charge).
	BranchTop
	// BranchMiddle is the second "if" branch: the moderately-noised query
	// cleared the noisy threshold. It costs ε₁ (the baseline charge).
	BranchMiddle
)

// String implements fmt.Stringer.
func (b Branch) String() string {
	switch b {
	case BranchBelow:
		return "below"
	case BranchTop:
		return "top"
	case BranchMiddle:
		return "middle"
	default:
		return fmt.Sprintf("Branch(%d)", int(b))
	}
}

// SVTItem is one per-query output of the Sparse Vector variants.
type SVTItem struct {
	// Index is the query's position in the stream.
	Index int
	// Above reports whether the query was declared above the threshold.
	Above bool
	// Gap is the released noisy gap between the query and the threshold; it is
	// only meaningful (and non-negative... strictly, ≥ 0 for the middle branch
	// and ≥ σ for the top branch) when Above is true.
	Gap float64
	// Branch identifies which branch produced the answer.
	Branch Branch
	// BudgetUsed is the privacy charge for this answer (0, ε₁ or ε₂).
	BudgetUsed float64
}

// SVTGapResult is the output of one run of Sparse-Vector-with-Gap or
// Adaptive-Sparse-Vector-with-Gap.
type SVTGapResult struct {
	// Items holds one entry per processed query, in stream order. Queries
	// after the stopping point are not represented.
	Items []SVTItem
	// AboveCount is the number of above-threshold answers.
	AboveCount int
	// BudgetSpent is the total privacy budget consumed, including the
	// threshold charge ε₀.
	BudgetSpent float64
	// Budget is the total budget ε the mechanism was configured with.
	Budget float64
	// Threshold is the public threshold the gaps are measured against.
	Threshold float64
	// GapVariancesByBranch maps each answering branch to the variance of its
	// released gap (threshold noise plus query noise), consumed by the
	// confidence-interval and combination estimators.
	GapVariancesByBranch map[Branch]float64
}

// Remaining returns the unspent budget ε − BudgetSpent (never negative).
func (r *SVTGapResult) Remaining() float64 {
	rem := r.Budget - r.BudgetSpent
	if rem < 0 {
		return 0
	}
	return rem
}

// RemainingFraction returns Remaining()/Budget, the quantity plotted in
// Figure 4.
func (r *SVTGapResult) RemainingFraction() float64 { return r.Remaining() / r.Budget }

// AboveIndices returns the stream positions declared above-threshold, in
// stream order.
func (r *SVTGapResult) AboveIndices() []int {
	out := make([]int, 0, r.AboveCount)
	for _, it := range r.Items {
		if it.Above {
			out = append(out, it.Index)
		}
	}
	return out
}

// AboveItems returns only the above-threshold items, in stream order.
func (r *SVTGapResult) AboveItems() []SVTItem {
	out := make([]SVTItem, 0, r.AboveCount)
	for _, it := range r.Items {
		if it.Above {
			out = append(out, it)
		}
	}
	return out
}

// CountByBranch returns how many answers came from the given branch.
func (r *SVTGapResult) CountByBranch(b Branch) int {
	n := 0
	for _, it := range r.Items {
		if it.Branch == b {
			n++
		}
	}
	return n
}

// GapEstimates returns, for each above-threshold item, the estimate
// gap + threshold of the query's true value, along with the matching
// variances. This is the "γᵢ + T" estimator of Section 6.2.
func (r *SVTGapResult) GapEstimates() (estimates, variances []float64, indices []int) {
	for _, it := range r.Items {
		if !it.Above {
			continue
		}
		estimates = append(estimates, it.Gap+r.Threshold)
		variances = append(variances, r.GapVariancesByBranch[it.Branch])
		indices = append(indices, it.Index)
	}
	return estimates, variances, indices
}

// AdaptiveSVTWithGap is Adaptive-Sparse-Vector-with-Gap (Algorithm 2).
//
// Budget layout for a target budget ε, hyper-parameter θ ∈ (0,1) and minimum
// answer count k:
//
//	ε₀ = θ·ε          threshold noise Laplace(1/ε₀)
//	ε₁ = (1−θ)·ε/k    middle-branch charge, query noise Laplace(2/ε₁)
//	ε₂ = ε₁/2         top-branch charge, query noise Laplace(2/ε₂)
//	σ  = 2·stddev of the top-branch noise = 4√2/ε₂
//
// For monotonic query lists the query noise scales drop to 1/ε₁ and 1/ε₂ and
// σ to 2√2/ε₂ (footnote 6 of the paper). Each query is first tested with the
// heavy top-branch noise; clearing the noisy threshold by at least σ costs
// only ε₂. Otherwise the moderate-noise test runs, costing ε₁ on success and
// nothing on failure. The mechanism stops when the spent budget exceeds ε
// minus one worst-case charge, so by Theorem 4 the whole interaction satisfies
// ε-differential privacy.
type AdaptiveSVTWithGap struct {
	// K is the minimum number of above-threshold answers the mechanism can
	// always deliver (the budget is provisioned for k middle-branch answers).
	K int
	// Epsilon is the total privacy budget.
	Epsilon float64
	// Threshold is the public threshold T.
	Threshold float64
	// Theta controls the budget split between threshold and queries. If zero,
	// the Lyu et al. recommendation 1/(1+(2k)^{2/3}) (or 1/(1+k^{2/3}) for
	// monotonic lists) is used.
	Theta float64
	// Monotonic declares a monotonic query list (Definition 7).
	Monotonic bool
	// SigmaMultiplier scales the top-branch margin σ in units of the
	// top-branch noise standard deviation. Zero means the paper's choice of 2.
	// math.Inf(1) disables the top branch, recovering Sparse-Vector-with-Gap.
	SigmaMultiplier float64
	// MaxAnswers optionally stops the run after this many above-threshold
	// answers even if budget remains (0 = no cap). Figure 4 stops after K.
	MaxAnswers int
	// Noise selects the noise distribution; the zero value is Laplace.
	Noise NoiseKind
	// DiscreteBase is the granularity for NoiseDiscreteLaplace (0 = machine
	// epsilon).
	DiscreteBase float64
}

// NewAdaptiveSVTWithGap returns an adaptive mechanism with the paper's default
// θ and σ settings.
func NewAdaptiveSVTWithGap(k int, epsilon, threshold float64, monotonic bool) (*AdaptiveSVTWithGap, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k = %d", ErrInvalidK, k)
	}
	if !(epsilon > 0) {
		return nil, fmt.Errorf("%w: %v", ErrInvalidEpsilon, epsilon)
	}
	return &AdaptiveSVTWithGap{K: k, Epsilon: epsilon, Threshold: threshold, Monotonic: monotonic}, nil
}

// theta returns the configured or recommended budget-split parameter.
func (m *AdaptiveSVTWithGap) theta() float64 {
	if m.Theta > 0 && m.Theta < 1 {
		return m.Theta
	}
	c := float64(2 * m.K)
	if m.Monotonic {
		c = float64(m.K)
	}
	return 1 / (1 + math.Pow(c, 2.0/3.0))
}

// budgets returns (ε₀, ε₁, ε₂).
func (m *AdaptiveSVTWithGap) budgets() (eps0, eps1, eps2 float64) {
	eps0 = m.theta() * m.Epsilon
	eps1 = (1 - m.theta()) * m.Epsilon / float64(m.K)
	eps2 = eps1 / 2
	return eps0, eps1, eps2
}

// noiseScales returns the threshold scale and the per-branch query noise
// scales (top, middle).
func (m *AdaptiveSVTWithGap) noiseScales() (threshold, top, middle float64) {
	eps0, eps1, eps2 := m.budgets()
	factor := 2.0
	if m.Monotonic {
		factor = 1.0
	}
	return 1 / eps0, factor / eps2, factor / eps1
}

// sigma returns the top-branch margin: SigmaMultiplier (default 2) times the
// standard deviation of the top-branch query noise.
func (m *AdaptiveSVTWithGap) sigma() float64 {
	mult := m.SigmaMultiplier
	if mult == 0 {
		mult = 2
	}
	if math.IsInf(mult, 1) {
		return math.Inf(1)
	}
	_, topScale, _ := m.noiseScales()
	return mult * math.Sqrt(rng.LaplaceVariance(topScale))
}

// Budgets returns the three budget components (ε₀, ε₁, ε₂) derived from the
// mechanism's configuration: the threshold charge, the middle-branch charge
// and the top-branch charge.
func (m *AdaptiveSVTWithGap) Budgets() (eps0, eps1, eps2 float64) { return m.budgets() }

// NoiseScales returns the Laplace scales actually used: the threshold noise
// scale and the top- and middle-branch query noise scales.
func (m *AdaptiveSVTWithGap) NoiseScales() (threshold, top, middle float64) {
	return m.noiseScales()
}

// Sigma returns the top-branch margin σ (the paper's choice is two standard
// deviations of the top-branch noise).
func (m *AdaptiveSVTWithGap) Sigma() float64 { return m.sigma() }

// BudgetSplit returns the θ actually used (the configured value, or the Lyu et
// al. recommendation when Theta is zero).
func (m *AdaptiveSVTWithGap) BudgetSplit() float64 { return m.theta() }

// SVTScratch holds the request-scoped buffers one Sparse Vector run needs:
// the prefilled top-branch noise chunk and the per-query items backing
// array. Serving layers pool SVTScratch values so the hot path performs no
// per-request allocations; the zero value is ready to use.
type SVTScratch struct {
	topNoise []float64
	items    []SVTItem
}

// svtNoiseChunk is how many top-branch noise draws are prefilled per
// vectorized pass. Chunking (rather than prefilling the whole stream) keeps
// a run that stops after a handful of queries from drawing noise for a
// million-query stream it will never process.
const svtNoiseChunk = 128

// top returns a length-n noise buffer backed by the scratch.
func (s *SVTScratch) top(n int) []float64 {
	if cap(s.topNoise) < n {
		s.topNoise = make([]float64, n)
	}
	s.topNoise = s.topNoise[:n]
	return s.topNoise
}

// Run processes the query stream. It stops when the remaining budget can no
// longer cover a worst-case (middle-branch) answer, when MaxAnswers
// above-threshold answers have been produced, or when the stream ends.
func (m *AdaptiveSVTWithGap) Run(src rng.Source, answers []float64) (*SVTGapResult, error) {
	return m.RunScratch(src, answers, nil)
}

// RunScratch is Run drawing its working memory from scr (nil allocates
// fresh). The top-branch query noise — drawn for every processed query, so
// it dominates the run's sampling cost — is prefilled in vectorized chunks;
// the rarer middle-branch draws stay scalar. Chunked prefill consumes the
// noise stream in a different order than scalar sampling, so fixed-seed
// outputs differ from pre-vectorization releases while every sample keeps
// its exact distribution. The result's Items slice is backed by the scratch:
// the result must be consumed before scr is reused for another run.
func (m *AdaptiveSVTWithGap) RunScratch(src rng.Source, answers []float64, scr *SVTScratch) (*SVTGapResult, error) {
	if len(answers) == 0 {
		return nil, ErrNoQueries
	}
	if m.K <= 0 {
		return nil, fmt.Errorf("%w: k = %d", ErrInvalidK, m.K)
	}
	if !(m.Epsilon > 0) {
		return nil, fmt.Errorf("%w: %v", ErrInvalidEpsilon, m.Epsilon)
	}
	if scr == nil {
		scr = &SVTScratch{}
	}
	eps0, eps1, eps2 := m.budgets()
	thresholdScale, topScale, middleScale := m.noiseScales()
	sigma := m.sigma()
	nz := noiser{kind: m.Noise, base: m.DiscreteBase}

	noisyThreshold := m.Threshold + nz.sample(src, thresholdScale)

	result := &SVTGapResult{
		Budget:    m.Epsilon,
		Threshold: m.Threshold,
		GapVariancesByBranch: map[Branch]float64{
			BranchTop:    rng.LaplaceVariance(thresholdScale) + rng.LaplaceVariance(topScale),
			BranchMiddle: rng.LaplaceVariance(thresholdScale) + rng.LaplaceVariance(middleScale),
		},
	}
	items := scr.items[:0]
	// The threshold charge ε₀ is paid up front; the loop then charges ε₂ or ε₁
	// per positive answer. Stopping while cost ≤ ε − ε₁ guarantees the total
	// never exceeds ε (Theorem 4).
	cost := eps0

	// topAt hands out the prefilled top-branch noise, refilling a chunk at a
	// time; an early stop abandons at most one chunk's tail.
	chunkStart, chunkLen := 0, 0
	topAt := func(i int) float64 {
		if i >= chunkStart+chunkLen {
			chunkStart = i
			chunkLen = len(answers) - i
			if chunkLen > svtNoiseChunk {
				chunkLen = svtNoiseChunk
			}
			nz.fill(src, topScale, scr.top(chunkLen))
		}
		return scr.topNoise[i-chunkStart]
	}

	for i, q := range answers {
		if m.MaxAnswers > 0 && result.AboveCount >= m.MaxAnswers {
			break
		}
		xi := topAt(i)
		topGap := q + xi - noisyThreshold
		if !math.IsInf(sigma, 1) && topGap >= sigma {
			items = append(items, SVTItem{
				Index: i, Above: true, Gap: topGap, Branch: BranchTop, BudgetUsed: eps2,
			})
			result.AboveCount++
			cost += eps2
		} else {
			eta := nz.sample(src, middleScale)
			middleGap := q + eta - noisyThreshold
			if middleGap >= 0 {
				items = append(items, SVTItem{
					Index: i, Above: true, Gap: middleGap, Branch: BranchMiddle, BudgetUsed: eps1,
				})
				result.AboveCount++
				cost += eps1
			} else {
				items = append(items, SVTItem{
					Index: i, Above: false, Branch: BranchBelow, BudgetUsed: 0,
				})
			}
		}
		if cost > m.Epsilon-eps1 {
			break
		}
	}
	scr.items = items // keep the grown capacity for the next run
	result.Items = items
	result.BudgetSpent = cost
	return result, nil
}

// SVTWithGap is Sparse-Vector-with-Gap (Wang et al. [41]): the classic Sparse
// Vector Technique that additionally releases the noisy gap above the noisy
// threshold for every positive answer, at no extra privacy cost. It is exactly
// Algorithm 2 with the top branch disabled (σ = ∞): every positive answer
// costs ε₁ and the mechanism stops after K positives.
type SVTWithGap struct {
	K         int
	Epsilon   float64
	Threshold float64
	// Theta is the threshold/query budget split; zero selects the Lyu et al.
	// recommendation.
	Theta     float64
	Monotonic bool
	Noise     NoiseKind
	// DiscreteBase is the granularity for NoiseDiscreteLaplace (0 = machine
	// epsilon).
	DiscreteBase float64
}

// NewSVTWithGap returns a Sparse-Vector-with-Gap mechanism with the
// recommended budget split.
func NewSVTWithGap(k int, epsilon, threshold float64, monotonic bool) (*SVTWithGap, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k = %d", ErrInvalidK, k)
	}
	if !(epsilon > 0) {
		return nil, fmt.Errorf("%w: %v", ErrInvalidEpsilon, epsilon)
	}
	return &SVTWithGap{K: k, Epsilon: epsilon, Threshold: threshold, Monotonic: monotonic}, nil
}

// GapVariance returns the variance of each released gap: threshold noise
// variance plus query noise variance. With the 1:c^{2/3} split of Lyu et al.
// (c = 2k, or k for monotonic lists) this equals 2(1+c^{2/3})³/ε² in terms of
// this mechanism's own budget ε; when the mechanism is run on half of a total
// budget (ε = ε_total/2, the Section 6.2 protocol) this is the
// 8(1+c^{2/3})³/ε_total² quoted in the paper.
func (m *SVTWithGap) GapVariance() float64 {
	a := m.adaptive()
	_, eps1, _ := a.budgets()
	eps0 := a.theta() * m.Epsilon
	factor := 2.0
	if m.Monotonic {
		factor = 1.0
	}
	return rng.LaplaceVariance(1/eps0) + rng.LaplaceVariance(factor/eps1)
}

// adaptive builds the equivalent Adaptive mechanism with the top branch
// disabled.
func (m *SVTWithGap) adaptive() *AdaptiveSVTWithGap {
	return &AdaptiveSVTWithGap{
		K:               m.K,
		Epsilon:         m.Epsilon,
		Threshold:       m.Threshold,
		Theta:           m.Theta,
		Monotonic:       m.Monotonic,
		SigmaMultiplier: math.Inf(1),
		MaxAnswers:      m.K,
		Noise:           m.Noise,
		DiscreteBase:    m.DiscreteBase,
	}
}

// Run processes the stream until K above-threshold answers have been released
// or the stream/budget is exhausted.
func (m *SVTWithGap) Run(src rng.Source, answers []float64) (*SVTGapResult, error) {
	return m.adaptive().Run(src, answers)
}

// RunScratch is Run drawing its working memory from scr (nil allocates
// fresh); see AdaptiveSVTWithGap.RunScratch for the buffer-reuse contract.
func (m *SVTWithGap) RunScratch(src rng.Source, answers []float64, scr *SVTScratch) (*SVTGapResult, error) {
	return m.adaptive().RunScratch(src, answers, scr)
}
