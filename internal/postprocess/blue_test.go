package postprocess

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/freegap/freegap/internal/rng"
)

func TestBLUEValidation(t *testing.T) {
	if _, err := BLUE(nil, nil, 1); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("empty input: %v", err)
	}
	if _, err := BLUE([]float64{1, 2}, []float64{1, 2}, 1); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("wrong gap count: %v", err)
	}
	if _, err := BLUE([]float64{1, 2}, []float64{1}, 0); err == nil {
		t.Fatal("lambda=0 accepted")
	}
	if _, err := BLUEFromVariances([]float64{1, 2}, []float64{1}, 0, 1); err == nil {
		t.Fatal("zero measurement variance accepted")
	}
	if _, err := BLUEFromVariances([]float64{1, 2}, []float64{1}, 1, -1); err == nil {
		t.Fatal("negative selection variance accepted")
	}
}

func TestBLUESingleQueryIsIdentity(t *testing.T) {
	got, err := BLUE([]float64{42.5}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 42.5 {
		t.Fatalf("got %v", got)
	}
}

func TestBLUEMatchesMatrixFormula(t *testing.T) {
	src := rng.NewXoshiro(1)
	f := func(seed uint64) bool {
		local := rng.NewXoshiro(seed)
		k := 2 + rng.Intn(local, 12)
		lambda := 0.1 + 4*rng.Float64(local)
		alpha := make([]float64, k)
		for i := range alpha {
			alpha[i] = 100*rng.Float64(local) - 50
		}
		gaps := make([]float64, k-1)
		for i := range gaps {
			gaps[i] = 20 * rng.Float64(local)
		}
		fast, err := BLUE(alpha, gaps, lambda)
		if err != nil {
			return false
		}
		slow := BlueMatrixForTest(alpha, gaps, lambda)
		for i := range fast {
			if math.Abs(fast[i]-slow[i]) > 1e-8*(1+math.Abs(slow[i])) {
				return false
			}
		}
		return true
	}
	_ = src
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBLUEExactOnNoiselessInput(t *testing.T) {
	// With exact measurements and exact gaps the estimator must reproduce the
	// true values (it is unbiased and the inputs are consistent).
	truth := []float64{100, 80, 75, 60}
	gaps := []float64{20, 5, 15}
	for _, lambda := range []float64{0.5, 1, 2} {
		got, err := BLUE(truth, gaps, lambda)
		if err != nil {
			t.Fatal(err)
		}
		for i := range truth {
			if math.Abs(got[i]-truth[i]) > 1e-9 {
				t.Fatalf("lambda %v: estimate %v, want %v", lambda, got, truth)
			}
		}
	}
}

func TestBLUEUnbiased(t *testing.T) {
	// Monte-Carlo check that E[βᵢ] = qᵢ when measurements and gaps carry
	// independent zero-mean Laplace noise.
	truth := []float64{500, 420, 400, 350, 300}
	k := len(truth)
	const measScale, selScale = 3.0, 3.0
	lambda := 1.0
	src := rng.NewXoshiro(7)
	const trials = 30000
	sums := make([]float64, k)
	for trial := 0; trial < trials; trial++ {
		alpha := make([]float64, k)
		for i := range alpha {
			alpha[i] = truth[i] + rng.Laplace(src, measScale)
		}
		eta := make([]float64, k)
		for i := range eta {
			eta[i] = rng.Laplace(src, selScale)
		}
		gaps := make([]float64, k-1)
		for i := range gaps {
			gaps[i] = truth[i] + eta[i] - truth[i+1] - eta[i+1]
		}
		beta, err := BLUE(alpha, gaps, lambda)
		if err != nil {
			t.Fatal(err)
		}
		for i := range beta {
			sums[i] += beta[i]
		}
	}
	for i := range truth {
		mean := sums[i] / trials
		if math.Abs(mean-truth[i]) > 0.5 {
			t.Fatalf("E[beta_%d] = %v, want %v", i, mean, truth[i])
		}
	}
}

func TestBLUEAchievesCorollary1Variance(t *testing.T) {
	// The empirical MSE ratio between BLUE and measurement-only estimates must
	// match (1+λk)/(k+λk).
	truth := []float64{900, 850, 800, 780, 700, 650, 640, 600}
	k := len(truth)
	lambda := 1.0
	scale := 4.0
	src := rng.NewXoshiro(11)
	const trials = 20000
	var blueSE, measSE float64
	for trial := 0; trial < trials; trial++ {
		alpha := make([]float64, k)
		eta := make([]float64, k)
		for i := range alpha {
			alpha[i] = truth[i] + rng.Laplace(src, scale)
			eta[i] = rng.Laplace(src, scale)
		}
		gaps := make([]float64, k-1)
		for i := range gaps {
			gaps[i] = truth[i] + eta[i] - truth[i+1] - eta[i+1]
		}
		beta, err := BLUE(alpha, gaps, lambda)
		if err != nil {
			t.Fatal(err)
		}
		for i := range truth {
			blueSE += (beta[i] - truth[i]) * (beta[i] - truth[i])
			measSE += (alpha[i] - truth[i]) * (alpha[i] - truth[i])
		}
	}
	gotRatio := blueSE / measSE
	wantRatio := ErrorReductionRatio(k, lambda)
	if math.Abs(gotRatio-wantRatio) > 0.04 {
		t.Fatalf("empirical error ratio %v, Corollary 1 predicts %v", gotRatio, wantRatio)
	}
}

func TestErrorReductionRatio(t *testing.T) {
	if got := ErrorReductionRatio(1, 1); got != 1 {
		t.Fatalf("k=1 ratio %v, want 1 (no gaps, no improvement)", got)
	}
	if got := ErrorReductionRatio(10, 1); math.Abs(got-11.0/20.0) > 1e-12 {
		t.Fatalf("k=10, lambda=1: %v, want 0.55", got)
	}
	// As lambda → ∞ the gaps carry no information and the ratio → 1.
	if got := ErrorReductionRatio(10, 1e9); got < 0.999 {
		t.Fatalf("lambda→∞ ratio %v, want → 1", got)
	}
	// As k → ∞ with lambda = 1 the ratio → 1/2.
	if got := ErrorReductionRatio(100000, 1); math.Abs(got-0.5) > 1e-4 {
		t.Fatalf("k→∞ ratio %v, want → 0.5", got)
	}
	for _, bad := range []struct {
		k      int
		lambda float64
	}{{0, 1}, {3, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", bad)
				}
			}()
			ErrorReductionRatio(bad.k, bad.lambda)
		}()
	}
}

func TestTopKExpectedImprovementPercent(t *testing.T) {
	// (k−1)/2k for lambda = 1.
	if got := TopKExpectedImprovementPercent(25, 1); math.Abs(got-100*24.0/50.0) > 1e-9 {
		t.Fatalf("k=25 improvement %v", got)
	}
	if got := TopKExpectedImprovementPercent(1, 1); got != 0 {
		t.Fatalf("k=1 improvement %v, want 0", got)
	}
}

func TestBLUEPropertyMeanPreserved(t *testing.T) {
	// Summing the X and Y matrices' rows shows Σβᵢ = Σαᵢ when λ = 1 — the
	// estimator redistributes error among queries without moving their total.
	f := func(seed uint64) bool {
		local := rng.NewXoshiro(seed)
		k := 2 + rng.Intn(local, 10)
		alpha := make([]float64, k)
		for i := range alpha {
			alpha[i] = 200*rng.Float64(local) - 100
		}
		gaps := make([]float64, k-1)
		for i := range gaps {
			gaps[i] = 50 * rng.Float64(local)
		}
		beta, err := BLUE(alpha, gaps, 1)
		if err != nil {
			return false
		}
		var sumA, sumB float64
		for i := range alpha {
			sumA += alpha[i]
			sumB += beta[i]
		}
		return math.Abs(sumA-sumB) < 1e-6*(1+math.Abs(sumA))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
