package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestAlignmentVerificationRows(t *testing.T) {
	c := quickConfig()
	c.Trials = 100
	rows, err := c.AlignmentVerification()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Fatalf("%s: alignment verification failed: %+v", r.Mechanism, r)
		}
		if r.OutputPreserved != r.Trials {
			t.Fatalf("%s: only %d/%d outputs preserved", r.Mechanism, r.OutputPreserved, r.Trials)
		}
		if r.MaxCost > r.Epsilon*(1+1e-9) {
			t.Fatalf("%s: max cost %v exceeds epsilon %v", r.Mechanism, r.MaxCost, r.Epsilon)
		}
	}
	var buf bytes.Buffer
	if err := WriteAlignment(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "max alignment cost") {
		t.Fatalf("rendered table missing header:\n%s", buf.String())
	}
}
