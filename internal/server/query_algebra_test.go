package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"github.com/freegap/freegap/internal/query/plan"
	"github.com/freegap/freegap/internal/telemetry"
)

// compositeBody is a union of a cached leaf and a filter scan over the
// descending five-item dataset — the smallest spec that exercises the
// compiler, a record scan, and the plan cache at once.
func compositeBody(dataset string) map[string]any {
	return map[string]any{
		"tenant": "acme", "k": 2, "epsilon": 0.5, "dataset": dataset,
		"queries": map[string]any{
			"kind": "union",
			"of": []any{
				map[string]any{"kind": "item_count", "items": []int32{0, 1}},
				map[string]any{"kind": "filter", "where": map[string]any{"contains": []int32{3}}},
			},
		},
	}
}

// TestCompositeQuerySpecServing pins the tentpole end-to-end: a composite
// spec resolves through the query compiler on a mechanism endpoint, the
// filter scan is charged to count_scans exactly once, and the repeat of a
// canonically equal spec is a plan-cache hit that rescans nothing.
func TestCompositeQuerySpecServing(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	uploadDescending(t, ts.URL, "sales")

	resp, data := postJSON(t, ts.URL+"/v1/topk", compositeBody("sales"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("composite topk status = %d, body = %s", resp.StatusCode, data)
	}

	// Operand order swapped: canonicalization must hit the same cached plan.
	swapped := compositeBody("sales")
	swapped["queries"] = map[string]any{
		"kind": "union",
		"of": []any{
			map[string]any{"kind": "filter", "where": map[string]any{"contains": []int32{3}}},
			map[string]any{"kind": "item_count", "items": []int32{1, 0, 0}},
		},
	}
	resp, data = postJSON(t, ts.URL+"/v1/topk", swapped)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swapped composite status = %d, body = %s", resp.StatusCode, data)
	}

	resp, data = getJSON(t, ts.URL+"/v1/datasets/sales")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("info status = %d", resp.StatusCode)
	}
	info := decodeInto[DatasetInfo](t, data)
	if info.CountScans != 2 {
		t.Errorf("count_scans = %d, want 2 (registration + one filter scan; the repeat must hit the plan cache)", info.CountScans)
	}
	if info.PlanCacheEntries != 1 {
		t.Errorf("plan_cache_entries = %d, want 1", info.PlanCacheEntries)
	}
	if info.Resolutions != 2 {
		t.Errorf("resolutions = %d, want 2", info.Resolutions)
	}
	if info.SketchBlocks != 1 {
		t.Errorf("sketch_blocks = %d, want 1 for a five-record dataset", info.SketchBlocks)
	}

	if hits := s.Metrics().Counter("freegap_plan_cache_hits_total").Value(); hits != 1 {
		t.Errorf("freegap_plan_cache_hits_total = %d, want 1", hits)
	}
	if misses := s.Metrics().Counter("freegap_plan_cache_misses_total").Value(); misses != 1 {
		t.Errorf("freegap_plan_cache_misses_total = %d, want 1", misses)
	}
	resp, data = getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"freegap_plan_cache_hits_total 1",
		"freegap_plan_cache_misses_total 1",
		"freegap_plan_compile_seconds",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestCompositeSpecsOnEveryEndpoint runs one composite spec through each
// mechanism family and the batch endpoint.
func TestCompositeSpecsOnEveryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	uploadDescending(t, ts.URL, "sales")

	queries := map[string]any{
		"kind": "minus",
		"of": []any{
			map[string]any{"kind": "all_items"},
			map[string]any{"kind": "threshold", "min_count": 5, "of": []any{map[string]any{"kind": "all_items"}}},
		},
	}
	for path, body := range map[string]map[string]any{
		"/v1/topk":          {"tenant": "t", "k": 1, "epsilon": 1.0, "dataset": "sales", "queries": queries},
		"/v1/max":           {"tenant": "t", "epsilon": 1.0, "dataset": "sales", "queries": queries},
		"/v1/svt":           {"tenant": "t", "k": 1, "epsilon": 1.0, "threshold": 2.0, "dataset": "sales", "queries": queries},
		"/v1/pipeline/topk": {"tenant": "t", "k": 1, "epsilon": 1.0, "dataset": "sales", "queries": queries},
	} {
		resp, data := postJSON(t, ts.URL+path, body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status = %d, body = %s", path, resp.StatusCode, data)
		}
	}

	batch := map[string]any{
		"tenant": "t",
		"requests": []any{
			map[string]any{"mechanism": "topk", "request": map[string]any{
				"k": 1, "epsilon": 1.0, "dataset": "sales", "queries": queries,
			}},
		},
	}
	resp, data := postJSON(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, body = %s", resp.StatusCode, data)
	}
	br := decodeInto[BatchResponse](t, data)
	if len(br.Results) != 1 || br.Results[0].Error != nil {
		t.Errorf("batch results = %+v", br.Results)
	}
}

func TestExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	uploadDescending(t, ts.URL, "sales")

	// First explain compiles and caches; the repeat replays the cached plan.
	for i, wantCached := range []bool{false, true} {
		resp, data := postJSON(t, ts.URL+"/v1/topk?explain=1", compositeBody("sales"))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("explain %d: status = %d, body = %s", i, resp.StatusCode, data)
		}
		ex := decodeInto[plan.Explain](t, data)
		if ex.Cached != wantCached {
			t.Errorf("explain %d: cached = %v, want %v", i, ex.Cached, wantCached)
		}
		if i == 0 {
			if ex.Dataset != "sales" || ex.Plan == nil || ex.Plan.Op != "union" {
				t.Errorf("explain = %+v", ex)
			}
			if len(ex.Hash) != 16 || ex.Canonical == "" {
				t.Errorf("explain hash %q canonical %q", ex.Hash, ex.Canonical)
			}
		}
	}

	// Explain never charges budget: the tenant above only ran explains, so
	// no ledger entry was ever opened for it.
	resp, data := getJSON(t, ts.URL+"/v1/tenants/acme/budget")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("tenant has a ledger after explain-only traffic: status = %d, body = %s", resp.StatusCode, data)
	}

	// The legacy leaf kinds explain too, as trivial cached-counts plans.
	legacy := map[string]any{
		"tenant": "t", "k": 1, "epsilon": 1.0, "dataset": "sales",
		"queries": map[string]any{"kind": "all_items"},
	}
	resp, data = postJSON(t, ts.URL+"/v1/topk?explain=1", legacy)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy explain status = %d, body = %s", resp.StatusCode, data)
	}
	if ex := decodeInto[plan.Explain](t, data); !ex.Cached || ex.Plan == nil || ex.Plan.Op != "cached_counts" {
		t.Errorf("legacy explain = %+v", ex)
	}

	// Explain requires a resolvable dataset-backed request.
	for i, body := range []map[string]any{
		{"tenant": "t", "k": 1, "epsilon": 1.0, "answers": []float64{1, 2}},
		{"tenant": "t", "k": 1, "epsilon": 1.0},
		{"tenant": "t", "k": 1, "epsilon": 1.0, "dataset": "nope", "queries": map[string]any{"kind": "all_items"}},
	} {
		resp, _ := postJSON(t, ts.URL+"/v1/topk?explain=1", body)
		if resp.StatusCode == http.StatusOK {
			t.Errorf("bad explain case %d: got 200", i)
		}
	}
}

// TestCompositeSpecCaps drives the structured 400s: depth and size caps,
// malformed composites, superfluous fields.
func TestCompositeSpecCaps(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	uploadDescending(t, ts.URL, "sales")

	// depth 9 > MaxSpecDepth=8.
	deep := map[string]any{"kind": "all_items"}
	for i := 0; i < 8; i++ {
		deep = map[string]any{"kind": "threshold", "min_count": 1, "of": []any{deep}}
	}
	// 65 nodes > MaxSpecNodes=64.
	leaves := make([]any, 64)
	for i := range leaves {
		leaves[i] = map[string]any{"kind": "item_count", "items": []int32{int32(i)}}
	}
	wide := map[string]any{"kind": "union", "of": leaves}

	cases := []map[string]any{
		{"kind": "threshold", "min_count": 1},                                   // missing operand
		{"kind": "threshold", "of": []any{map[string]any{"kind": "all_items"}}}, // no bounds
		{"kind": "filter"}, // missing where
		{"kind": "filter", "where": map[string]any{}},                       // empty predicate
		{"kind": "filter", "where": map[string]any{"min_len": -1}},          // negative bound
		{"kind": "union", "of": []any{map[string]any{"kind": "all_items"}}}, // one operand
		{"kind": "minus", "of": []any{
			map[string]any{"kind": "all_items"},
			map[string]any{"kind": "all_items"},
			map[string]any{"kind": "all_items"}}}, // three operands
		{"kind": "join", "of": []any{map[string]any{"kind": "all_items"}}},      // no dataset
		{"kind": "all_items", "of": []any{map[string]any{"kind": "all_items"}}}, // superfluous field
		{"kind": "item_count", "items": []int32{1}, "min_count": 2.0},           // superfluous field
		deep,
		wide,
	}
	for i, q := range cases {
		body := map[string]any{"tenant": "t", "k": 1, "epsilon": 1.0, "dataset": "sales", "queries": q}
		resp, data := postJSON(t, ts.URL+"/v1/topk", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, body = %s", i, resp.StatusCode, data)
			continue
		}
		if env := decodeInto[ErrorEnvelope](t, data); env.Error.Code != CodeBadQuerySpec {
			t.Errorf("case %d: code = %q, want %q", i, env.Error.Code, CodeBadQuerySpec)
		}
	}
}

// TestRecordsSkippedObservability uploads a clustered dataset wide enough
// for multiple zone blocks and checks the skipping observables move — and
// stay still under Config.DisableQuerySkipping.
func TestRecordsSkippedObservability(t *testing.T) {
	var fimi strings.Builder
	for b := 0; b < 3; b++ {
		for i := 0; i < 2048; i++ {
			fmt.Fprintf(&fimi, "%d %d\n", b*8, b*8+i%8)
		}
	}
	selective := map[string]any{
		"tenant": "t", "k": 1, "epsilon": 1.0, "dataset": "big",
		"queries": map[string]any{
			"kind": "filter", "where": map[string]any{"contains": []int32{20}},
		},
	}

	for _, disable := range []bool{false, true} {
		s, ts := newTestServer(t, Config{Workers: 1, DisableQuerySkipping: disable})
		resp, data := postJSON(t, ts.URL+"/v1/datasets", DatasetUploadRequest{Name: "big", FIMI: fimi.String()})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload status = %d, body = %s", resp.StatusCode, data)
		}
		resp, data = postJSON(t, ts.URL+"/v1/topk", selective)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("disable=%v: topk status = %d, body = %s", disable, resp.StatusCode, data)
		}
		resp, data = getJSON(t, ts.URL+"/v1/datasets/big")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("info status = %d", resp.StatusCode)
		}
		info := decodeInto[DatasetInfo](t, data)
		if info.SketchBlocks != 3 {
			t.Errorf("disable=%v: sketch_blocks = %d, want 3", disable, info.SketchBlocks)
		}
		skipped := s.Metrics().Counter("freegap_records_skipped_total", telemetry.L("dataset", "big")).Value()
		if disable {
			if info.RecordsSkipped != 0 || skipped != 0 {
				t.Errorf("skipping disabled but records_skipped = %d (metric %d)", info.RecordsSkipped, skipped)
			}
		} else {
			if info.RecordsSkipped != 4096 {
				t.Errorf("records_skipped = %d, want 4096 (two full blocks)", info.RecordsSkipped)
			}
			if skipped != 4096 {
				t.Errorf("freegap_records_skipped_total = %d, want 4096", skipped)
			}
		}
	}
}
