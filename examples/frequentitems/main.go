// Frequent items: the Section 5.2 select-then-measure workflow on a synthetic
// retail log. Half the budget selects the top-k items with
// Noisy-Top-K-with-Gap; the other half measures their counts with the Laplace
// mechanism; the free gaps then refine the measurements with the Theorem 3
// BLUE, cutting the error of the published counts by up to 50%.
package main

import (
	"fmt"
	"log"
	"math"

	freegap "github.com/freegap/freegap"
)

func main() {
	const (
		k     = 10
		eps   = 1.0
		scale = 50 // 1/50th of the published BMS-POS size to keep the example quick
	)

	db := freegap.NewSyntheticBMSPOS(7, scale)
	counts := db.ItemCounts()
	fmt.Printf("dataset: %d transactions over %d items\n\n", db.NumRecords(), db.NumItems())

	src := freegap.NewSource(2024)
	acct, err := freegap.NewAccountant(eps)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1: spend eps/2 selecting the top-k items (and their gaps, free).
	selectionBudget, err := acct.Split(2)
	if err != nil {
		log.Fatal(err)
	}
	topk, err := freegap.NewTopKWithGap(k, selectionBudget, true)
	if err != nil {
		log.Fatal(err)
	}
	selection, err := topk.Run(src, counts)
	if err != nil {
		log.Fatal(err)
	}
	if err := acct.Spend("top-k selection", selectionBudget); err != nil {
		log.Fatal(err)
	}

	// Stage 2: spend the remaining eps/2 measuring the selected counts.
	measureBudget := acct.Remaining()
	meas, err := freegap.NewLaplaceMechanism(measureBudget, 1)
	if err != nil {
		log.Fatal(err)
	}
	measurements, err := meas.MeasureSelected(src, counts, selection.Indices())
	if err != nil {
		log.Fatal(err)
	}
	if err := acct.Spend("measurements", measureBudget); err != nil {
		log.Fatal(err)
	}

	// Stage 3 (free): refine the measurements with the gaps via the BLUE.
	refined, err := freegap.BLUEFromVariances(measurements, selection.Gaps()[:k-1],
		meas.MeasurementVariance(k), selection.PerQueryNoiseVariance())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-12s %-12s %-12s %-10s\n", "item", "true count", "measured", "refined", "|err| drop")
	var measSE, refinedSE float64
	for i, idx := range selection.Indices() {
		truth := counts[idx]
		em := math.Abs(measurements[i] - truth)
		er := math.Abs(refined[i] - truth)
		measSE += em * em
		refinedSE += er * er
		fmt.Printf("%-6d %-12.0f %-12.1f %-12.1f %+.1f\n", idx, truth, measurements[i], refined[i], em-er)
	}
	fmt.Printf("\nempirical MSE: measured-only %.1f, gap-refined %.1f (%.0f%% lower)\n",
		measSE/float64(k), refinedSE/float64(k), 100*(1-refinedSE/measSE))
	fmt.Printf("Corollary 1 predicts a %.0f%% reduction at k=%d\n",
		freegap.TopKExpectedImprovementPercent(k, 1), k)
	fmt.Printf("privacy budget: spent %.3g of %.3g\n", acct.Spent(), acct.Budget())
}
