package store

// Per-dataset compiled-plan cache. Canonicalized query specs hash to a
// materialized count vector (plus the plan's explain payload), so a repeated
// composite query costs one lock-free map lookup instead of a record scan.
// Cached vectors describe one dataset generation — an append flushes the
// cache via Reset, so a stale vector is never served; the cache lives on the
// Entry, so removing and re-registering a name can never serve another
// dataset's vectors.
//
// Reads follow the same RCU discipline as the catalog itself: Get loads the
// current immutable generation through an atomic pointer and walks it
// without any lock, writers copy-and-swap under a mutex. The generation map
// is never mutated in place.

import (
	"sync"
	"sync/atomic"
)

// DefaultMaxPlans bounds one dataset's cached plans. When the cache is full
// a new plan triggers a second-chance sweep: plans that served a hit since
// the last sweep survive (up to maxProtectedPlans of them), the rest are
// dropped — so one client cycling syntactic spec variants cannot evict every
// other tenant's hot plans, while memory stays bounded. Flushes counts the
// sweeps, surfaced as plan_cache_flushes_total so thrash is observable.
const DefaultMaxPlans = 256

// maxProtectedPlans caps how many recently-hit plans a second-chance sweep
// carries over: half the capacity, so even a fully hot cache frees room and
// repeated sweeps cannot pin an unbounded working set.
const maxProtectedPlans = DefaultMaxPlans / 2

// PlanEntry is one cached compiled plan: the materialized full-universe
// count vector, its monotonicity, and the planner's explain payload (opaque
// to the store) replayed on cache hits.
type PlanEntry struct {
	// Answers is the materialized count vector (read-only by contract).
	Answers []float64
	// Monotonic reports whether the spec lies in the monotone fragment.
	Monotonic bool
	// Explain is the planner's explain payload for the compiled plan.
	Explain any

	// hot is set by Get on a hit and cleared by the second-chance sweep —
	// the one bit of bookkeeping that lets eviction keep the working set.
	hot atomic.Bool
}

// planGen is one immutable generation of the cache's key → plan mapping.
type planGen = map[string]*PlanEntry

// PlanCache is a concurrency-safe compiled-plan cache keyed by canonical
// spec strings. The zero value is ready to use.
type PlanCache struct {
	// writeMu serializes Put/Reset (the copy-and-swap writers).
	writeMu sync.Mutex
	// gen points at the current immutable generation; nil means empty.
	gen atomic.Pointer[planGen]

	hits    atomic.Uint64
	misses  atomic.Uint64
	flushes atomic.Uint64
}

// Get returns the cached plan for key, counting the lookup as a hit or a
// miss. It takes no lock. A hit marks the entry as recently used, so the
// next capacity sweep keeps it.
func (c *PlanCache) Get(key string) (*PlanEntry, bool) {
	if gen := c.gen.Load(); gen != nil {
		if pe, ok := (*gen)[key]; ok {
			c.hits.Add(1)
			if !pe.hot.Load() {
				pe.hot.Store(true)
			}
			return pe, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put caches pe under key. A full cache runs a second-chance sweep first:
// plans that served a hit since the last sweep survive, capped at
// maxProtectedPlans, and their hot bits reset so survival must be re-earned.
// Concurrent puts of the same key are idempotent — both vectors are correct,
// the later generation wins.
func (c *PlanCache) Put(key string, pe *PlanEntry) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	var cur planGen
	if gen := c.gen.Load(); gen != nil {
		cur = *gen
	}
	if len(cur) >= DefaultMaxPlans {
		next := make(planGen, maxProtectedPlans+1)
		for k, v := range cur {
			if len(next) >= maxProtectedPlans {
				break
			}
			if v.hot.Load() {
				v.hot.Store(false)
				next[k] = v
			}
		}
		next[key] = pe
		c.flushes.Add(1)
		c.gen.Store(&next)
		return
	}
	next := make(planGen, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = pe
	c.gen.Store(&next)
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	if gen := c.gen.Load(); gen != nil {
		return len(*gen)
	}
	return 0
}

// Hits and Misses return the lifetime lookup counters.
func (c *PlanCache) Hits() uint64   { return c.hits.Load() }
func (c *PlanCache) Misses() uint64 { return c.misses.Load() }

// Flushes returns how many capacity sweeps the cache has run — the
// observable behind the plan_cache_flushes_total metric.
func (c *PlanCache) Flushes() uint64 { return c.flushes.Load() }

// Reset drops every cached plan (the counters keep running). Appends call it
// — cached vectors describe the previous dataset generation — and benchmarks
// use it to measure the cache-cold path.
func (c *PlanCache) Reset() {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.gen.Store(nil)
}
