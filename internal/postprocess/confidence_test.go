package postprocess

import (
	"math"
	"testing"

	"github.com/freegap/freegap/internal/rng"
)

func TestGapLowerTailProbabilityBasics(t *testing.T) {
	// At t = 0 the probability is exactly 1/2 in both branches of Lemma 5.
	if got := GapLowerTailProbability(0, 2, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("t=0, distinct rates: %v", got)
	}
	if got := GapLowerTailProbability(0, 1.5, 1.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("t=0, equal rates: %v", got)
	}
	// Monotone increasing in t, approaching 1.
	prev := 0.0
	for _, tt := range []float64{0, 0.5, 1, 2, 5, 10, 50} {
		p := GapLowerTailProbability(tt, 2, 0.7)
		if p < prev-1e-12 {
			t.Fatalf("tail probability decreased at t=%v: %v < %v", tt, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
		prev = p
	}
	if got := GapLowerTailProbability(1000, 1, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("large t probability %v, want → 1", got)
	}
}

func TestGapLowerTailProbabilityPanics(t *testing.T) {
	cases := []struct{ t, e0, es float64 }{{-1, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", c)
				}
			}()
			GapLowerTailProbability(c.t, c.e0, c.es)
		}()
	}
}

func TestGapLowerTailProbabilityMatchesMonteCarlo(t *testing.T) {
	// Empirical P(ηᵢ − η ≥ −t) over Laplace draws must match Lemma 5.
	src := rng.NewXoshiro(3)
	cases := []struct{ eps0, epsStar, t float64 }{
		{2.0, 0.5, 1.0},
		{0.7, 0.7, 2.0},
		{1.3, 0.4, 0.5},
	}
	const trials = 400000
	for _, c := range cases {
		hits := 0
		for i := 0; i < trials; i++ {
			eta := rng.Laplace(src, 1/c.eps0)
			etaI := rng.Laplace(src, 1/c.epsStar)
			if etaI-eta >= -c.t {
				hits++
			}
		}
		emp := float64(hits) / trials
		want := GapLowerTailProbability(c.t, c.eps0, c.epsStar)
		if math.Abs(emp-want) > 0.005 {
			t.Errorf("case %+v: empirical %v, Lemma 5 %v", c, emp, want)
		}
	}
}

func TestGapConfidenceRadius(t *testing.T) {
	for _, conf := range []float64{0.6, 0.9, 0.95, 0.99} {
		for _, pair := range [][2]float64{{2, 0.5}, {1, 1}, {0.3, 0.9}} {
			radius, err := GapConfidenceRadius(conf, pair[0], pair[1])
			if err != nil {
				t.Fatal(err)
			}
			if radius < 0 {
				t.Fatalf("negative radius %v", radius)
			}
			got := GapLowerTailProbability(radius, pair[0], pair[1])
			if math.Abs(got-conf) > 1e-6 {
				t.Fatalf("conf %v rates %v: radius %v gives coverage %v", conf, pair, radius, got)
			}
		}
	}
	if _, err := GapConfidenceRadius(0, 1, 1); err == nil {
		t.Fatal("confidence 0 accepted")
	}
	if _, err := GapConfidenceRadius(1, 1, 1); err == nil {
		t.Fatal("confidence 1 accepted")
	}
	if _, err := GapConfidenceRadius(0.9, 0, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
	// Confidence below 1/2 is already covered at t = 0.
	radius, err := GapConfidenceRadius(0.4, 1, 1)
	if err != nil || radius != 0 {
		t.Fatalf("confidence below 0.5: radius %v err %v", radius, err)
	}
}

func TestGapLowerConfidenceBound(t *testing.T) {
	bound, err := GapLowerConfidenceBound(12, 100, 0.95, 1.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if bound >= 112 {
		t.Fatalf("bound %v must be below the point estimate 112", bound)
	}
	radius, _ := GapConfidenceRadius(0.95, 1.2, 0.8)
	if math.Abs(bound-(112-radius)) > 1e-9 {
		t.Fatalf("bound %v inconsistent with radius %v", bound, radius)
	}
	if _, err := GapLowerConfidenceBound(1, 1, 0, 1, 1); err == nil {
		t.Fatal("invalid confidence accepted")
	}
}

func TestGapConfidenceBoundEmpiricalCoverage(t *testing.T) {
	// End-to-end Lemma 5 check: the 90% lower bound on gap+T must cover the
	// true query value in at least ~90% of runs.
	src := rng.NewXoshiro(17)
	const trueVal, threshold = 500.0, 450.0
	const eps0, epsStar = 1.0, 0.5
	const confidence = 0.9
	radius, err := GapConfidenceRadius(confidence, eps0, epsStar)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 200000
	covered := 0
	for i := 0; i < trials; i++ {
		eta := rng.Laplace(src, 1/eps0)
		etaI := rng.Laplace(src, 1/epsStar)
		gap := trueVal + etaI - (threshold + eta)
		lower := gap + threshold - radius
		if lower <= trueVal {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < confidence-0.01 {
		t.Fatalf("coverage %v below the nominal %v", rate, confidence)
	}
}
