// Package freegap is a Go implementation of the differentially private
// selection mechanisms from "Free Gap Information from the Differentially
// Private Sparse Vector and Noisy Max Mechanisms" (Ding, Wang, Zhang, Kifer —
// VLDB 2019), together with the classical mechanisms they improve on and the
// post-processing estimators that exploit the released gap information.
//
// The headline results reproduced by this library:
//
//   - Noisy-Top-K-with-Gap: select the (approximate) top-k queries and also
//     learn, for free, the noisy gap between each selected query and the next
//     best one. Combining those gaps with fresh measurements cuts the mean
//     squared error of the measurements by up to 50% for counting queries.
//
//   - Adaptive-Sparse-Vector-with-Gap: answer "which queries exceed this
//     threshold?" while paying less privacy budget for queries that clear the
//     threshold by a wide margin, so many more above-threshold queries fit in
//     the same budget — and every positive answer also carries a free noisy
//     gap above the threshold with a Lemma 5 confidence bound.
//
// The top-level package is a facade over the implementation packages under
// internal/: mechanisms (internal/core, internal/baseline), noise and datasets
// (internal/rng, internal/dataset), estimators (internal/postprocess), the
// empirical privacy audit (internal/validate) and the experiment harness that
// regenerates every figure in the paper (internal/experiment, driven by
// cmd/dpbench and the benchmarks in bench_test.go).
//
// # Quick start
//
//	src := freegap.NewSource(42)
//	counts := []float64{812, 641, 633, 601, 425, 124, 77, 8}
//	topk, _ := freegap.NewTopKWithGap(3, 1.0, true) // k=3, ε=1, counting queries
//	res, _ := topk.Run(src, counts)
//	for _, s := range res.Selections {
//	    fmt.Printf("query %d beats the runner-up by ≈%.1f\n", s.Index, s.Gap)
//	}
//
// See the examples/ directory for complete programs.
//
// # Engine
//
// Every servable workload sits behind one interface, Mechanism, with five
// methods: Name, NewRequest, Validate, Cost and Execute. A MechanismRegistry
// maps names to implementations; DefaultMechanisms returns the registry the
// server and CLIs dispatch on, holding the three raw free-gap mechanisms
// ("topk", "max", "svt") and the paper's two end-to-end workflows
// ("pipeline/topk" — Section 5.2 select, measure, BLUE-refine; and
// "pipeline/svt" — Section 6.2 select, measure, combine with Lemma 5
// bounds). The contract keeps budget handling sound everywhere the engine is
// used: Validate rejects anything that cannot run (so a rejected request
// never burns budget), Cost returns the ε to reserve before execution, and
// Execute draws all randomness from a caller-supplied Source. Running a
// mechanism directly:
//
//	mech, _ := freegap.DefaultMechanisms().Get("pipeline/topk")
//	req := &freegap.PipelineTopKRequest{
//	    Common: freegap.RequestCommon{Tenant: "me", Epsilon: 1, Answers: counts, Monotonic: true},
//	    K:      3,
//	}
//	if err := mech.Validate(req, freegap.MechanismLimits{}); err != nil { ... }
//	resp, _ := mech.Execute(freegap.NewSource(42), req, nil)
//
// Implement and register your own Mechanism and the server serves it at
// POST /v1/<name> with the same validation, charging, pooling and metrics as
// the built-ins.
//
// # Serving
//
// The library also ships as a long-lived, multi-tenant query service. The
// cmd/dpserver binary mounts one endpoint per registered mechanism — POST
// /v1/topk, /v1/svt, /v1/max, /v1/pipeline/topk and /v1/pipeline/svt — with
// each tenant drawing from its own privacy budget (tracked by an Accountant
// created on first use) and receiving a structured 402 budget_exhausted
// error once it is spent. POST /v1/batch executes up to MaxBatch requests in
// one round trip under a single atomic multi-charge: either every item's ε
// is reserved or none is, so a batch can never overspend what the same
// requests issued serially could. Embed the same service in a larger program
// via the facade's server constructors:
//
//	srv, _ := freegap.NewServer(freegap.ServerConfig{TenantBudget: 10})
//	http.ListenAndServe(":8080", srv.Handler())
//
// examples/remoteclient drives the full API end-to-end, and
// GET /v1/tenants/{id}/budget (budget ledger with per-mechanism breakdown),
// /healthz and /metrics cover operations.
//
// # Datasets
//
// Mechanism requests carry their query answers in one of two trust models.
// With inline answers the client holds the data, computes the true counts
// itself, and ships them in the request — convenient, but the opposite of
// the paper's setting. With dataset-backed queries the server is the
// curator: it holds the transaction database (the DatasetStore catalog) and
// answers sensitivity-1 counting queries under DP, so raw data never leaves
// it. A request then names a catalogued dataset and a QuerySpec in place of
// answers:
//
//	{"tenant": "acme", "k": 3, "epsilon": 1.0,
//	 "dataset": "shop", "queries": {"kind": "all_items"}}
//
// QueryAllItems asks for every item's count — the paper's Section 7
// workload — and QueryItemCount for an explicit item list; resolved counting
// queries are automatically monotonic and get the halved noise scale.
// Datasets enter the catalog through POST /v1/datasets (a FIMI-format upload
// or a synthetic generator spec), ServerConfig.Preload, or cmd/dpserver's
// -preload/-preload-synthetic flags. Registration precomputes the dataset's
// item-count vector exactly once; every resolved request — including
// dataset-backed batch items and pipeline runs — is served from that cached
// read-only vector, never by rescanning transactions (GET /v1/datasets/{name}
// exposes the resolutions and count_scans counters that prove it). Unknown
// names yield a 404 with code "unknown_dataset", malformed dataset/spec
// combinations a 400 with code "bad_query_spec". Direct engine users get the
// same resolution step via ResolveMechanismRequest with any QueryResolver.
//
// # Queries
//
// QuerySpec is a composable algebra, not just the two leaf kinds: QueryFilter
// counts over records matching a RecordPredicate (contains + length bounds),
// QueryThreshold keeps counts inside a [min_count, max_count] range,
// QueryUnion/QueryIntersect/QueryMinus combine operand count vectors
// elementwise, and QueryJoin masks by another catalogued dataset's item
// support. Specs nest up to 8 levels and 64 nodes; anything deeper, wider or
// malformed fails QuerySpec.Validate with ErrBadQuerySpec (HTTP 400
// "bad_query_spec").
//
// Composite specs are compiled by the statistics-free planner in
// internal/query/plan: the spec is canonicalized (operand order, duplicates
// and provably-empty subtrees all normalize away) and the canonical form
// keys a per-dataset compiled-plan cache, so a repeated spec reuses its
// materialized count vector without touching the transactions. Cache misses
// evaluate vectorized passes in greedy cheapest-first order; filter scans
// skip record blocks via the zone sketches (per-block length range + item
// Bloom filter) built at registration and persisted in the arena. Appending
// ?explain=1 to a mechanism endpoint returns the compiled plan, uncharged.
// Specs in the monotone fragment (all_items, item_count, filter, union,
// intersect) keep the halved noise scale; threshold, minus and join are
// served at the standard scale, and their threshold/mask decisions can flip
// on a one-record change — the release is still budgeted correctly, but
// interpret gaps near a boundary accordingly.
//
// # Persistence
//
// A restart of an in-memory server refunds every tenant's spent ε — a
// privacy-accounting bug, not just an operational gap. Opening a PersistLog
// on a state directory and handing it to ServerConfig.Persist makes the
// privacy-critical state durable:
//
//	lg, _ := freegap.OpenPersist("/var/lib/dpserver", freegap.PersistOptions{})
//	srv, _ := freegap.NewServer(freegap.ServerConfig{TenantBudget: 10, Persist: lg})
//
// Every admitted charge batch is journalled to an append-only JSON-lines WAL
// through a hook on the accountant's commit path — an entry is written iff
// the charge committed, and a batch's atomic multi-charge is one record, so
// the all-or-nothing semantics survive a crash mid-batch. Dataset
// registrations are journalled alongside (uploads as FIMI blobs, synthetic
// datasets as their deterministic generator spec). The WAL is periodically
// compacted into an atomically installed snapshot; generation numbers on
// both make the compaction itself crash-safe. On startup the log replays
// snapshot + WAL, truncating a torn final write to the last complete record,
// and the server resumes with the exact spent-budget state (per-mechanism
// breakdown included) and a rebuilt dataset catalog whose item counts are
// recomputed exactly once.
//
// Durability modes (PersistOptions.Fsync, cmd/dpserver -fsync): FsyncBatch
// (default) appends to an in-memory buffer drained by a background flusher
// with grouped fsync, keeping charges off the disk's critical path — the
// persisted hot path stays within a few percent of the in-memory baseline;
// FsyncAlways syncs inside every charge; FsyncOff leaves durability to the
// OS. Shutdown/Close flush, compact and close the log. cmd/dpserver enables
// all of this with -state-dir.
//
// The accountant fails closed: the state directory is flock'ed (on Unix
// platforms; elsewhere single-instance use is the operator's
// responsibility) against a second concurrent process (which would
// double-spend every budget), and a
// WAL I/O failure marks the log dead — budget-mutating requests are then
// refused with 503 (healthz reports status "degraded" and metrics raise
// freegap_persist_failed) instead of admitting charges a restart would
// refund.
//
// # Concurrency
//
// The serving hot path is built to scale with cores: no per-request global
// locks, no per-request buffer allocations, no scalar noise loops.
//
// Budget admission is lock-free — each accountant keeps its spent total in
// an atomic word and admits a charge with a compare-and-swap loop against
// the budget; only admitted charges take the commit lock that orders the
// audit log, the incrementally-maintained per-mechanism aggregation and the
// durability journal (journalled iff committed, exactly as before). The
// tenant registry is sharded by tenant-id hash into a power-of-two number
// of lock domains (≈GOMAXPROCS), with a strict atomic reservation backing
// the provisioning cap. Telemetry counters and gauges stripe their value
// over cache-line-padded cells summed at scrape time, leaving the
// Prometheus text output byte-identical. The dataset catalog publishes an
// immutable map through an atomic pointer (copy-and-swap on registration),
// so dataset-backed requests resolve without taking any lock; appends swap
// a new per-dataset generation through the same RCU discipline, so a
// resolved view stays internally consistent for as long as it is held.
//
// Mechanism executions draw request-scoped working memory — noise and score
// buffers plus the responses' variable-length arrays — from a pooled
// MechanismScratch threaded through the generic pipeline, and fill their
// noise in vectorized passes (LaplaceVec and friends; Sparse Vector
// prefills its top-branch noise in chunks). Passing a nil scratch to
// Mechanism.Execute remains correct, just unpooled. A response built from a
// scratch aliases its buffers: encode it before reusing the scratch.
//
// The memory path is flattened the same way the lock path was split. Each
// catalogued dataset's derived state — item counts, presence bitset, and
// min/max/nonzero sketches — lives in one flat cache-line-aligned columnar
// arena, materialised exactly once at registration and delta-extended (never
// rebuilt) when records are appended; with
// ServerConfig.MmapDatasets (cmd/dpserver -mmap-datasets) the arena is
// persisted beside the WAL and memory-mapped back on restart, so recovery
// skips the transaction rescan, and a corrupt file fails closed into a
// clean rescan. Request decode and response encode run through hand-rolled
// streaming codecs over pooled buffers whose output is byte-identical to
// encoding/json (golden tests pin every shape, including error envelopes
// and ?trace=1 splices; unrepresentable shapes fall back to the stdlib).
// Batch requests pre-size the noise requirement of every fixed-draw
// mechanism, fill it in one vectorized pass, and hand each mechanism its
// unit-scale window — bit-identical to per-request draws, because the
// Laplace scale multiply factors out exactly in IEEE arithmetic.
//
// Reads scale across cores too: a filter query's record scan shards the
// dataset's zone blocks across a bounded worker pool — capped by
// ServerConfig.ScanWorkers (cmd/dpserver -scan-workers; 0 means GOMAXPROCS,
// 1 forces serial), by the surviving block count, and by a process-wide
// token budget so overlapping queries cannot oversubscribe the machine.
// Datasets below the serial-fallback threshold (4 zone blocks = 8192
// records) never fan out, and a scan that cannot claim a token runs serial
// rather than queue. Shards merge in deterministic order over exact
// whole-number float sums, so the parallel result is byte-identical to the
// serial one; ?explain=1 reports the fan-out as parallel_workers and the
// freegap_scan_workers histogram tracks its distribution. On the write
// side, appends and monitor deliveries serialize per dataset, not globally:
// each dataset name hashes into one of 32 ordering domains owning
// journal → apply → deliver, and the derived-state generation is built
// before the domain lock is taken, so appends to different datasets
// proceed fully in parallel (see Streaming). When an append supersedes a
// memory-mapped arena generation, the server parks the old mapping and
// unmaps it once in-flight requests drain (freegap_retired_arenas counts
// the parked mappings).
//
// The invariants the lock-splitting must preserve — Σ admitted charges ==
// spent, spent never above budget + tolerance, a journal history that
// holds exactly the admitted charges, and per-dataset append/verdict order
// with byte-identical crash recovery — are pinned by -race stress tests
// (internal/server/stress_test.go and
// internal/server/parallel_stress_test.go), and
// BenchmarkServerParallelManyTenants (64 tenants × parallel clients)
// quantifies the multi-core win.
//
// # Streaming
//
// Catalogued datasets are appendable: POST /v1/datasets/{name}/append takes
// a FIMI delta, validates it against the store's limits, and installs a
// delta-maintained generation — the count vector, presence bitset, min/max
// sketches and zone sketches are all extended from the delta alone, so the
// append cost is independent of how many records are already resident and
// the dataset's count_scans counter stays at 1. Admitted appends are
// journalled before they are applied; recovery replays the registration
// image and then each delta in order. Ordering is per dataset: each
// dataset's appends serialize on its write domain and carry a 1-based
// per-dataset sequence number (the append response's seq field, verified
// contiguous on replay), while appends to different datasets run
// concurrently.
//
// Threshold monitors (POST /v1/monitors) run Sparse-Vector-with-Gap
// server-side over that stream: a monitor names a dataset item and a public
// threshold, is charged its ε exactly once at registration, and answers one
// query per subsequent append until the mechanism's stop rule retires it.
// Verdicts — above/below, the free gap on positive answers, the branch and
// the budget used — stream over Server-Sent Events at
// GET /v1/monitors/{id}/stream, with the full history replayed to late
// subscribers. The registration journals the monitor's noise seed, so a
// restarted server reproduces the identical verdict sequence; the WAL's
// event order is the order verdicts were released, making recovery
// byte-identical. See examples/thresholdmonitor for the end-to-end flow.
//
// # Observability
//
// Every request is served inside a trace context: the server adopts or
// generates an X-Request-ID, echoes it on every response (and inside error
// JSON bodies as request_id), and attributes the request's latency to the
// pipeline stages decode → resolve → validate → charge → execute → encode
// with nothing unattributed — append ?trace=1 to any mechanism or batch
// request for the inline breakdown, whose stage durations sum exactly to
// the reported total. /metrics exposes per-mechanism and per-stage latency
// histograms (striped over cache-line-padded cells like the counters, so an
// observation is a few atomic adds with no lock or allocation), durability
// health (fsync and compaction latency, WAL queue depth and generation),
// per-tenant remaining-ε gauges sampled at scrape time, admission CAS-retry
// totals, and build/uptime info. ServerConfig.AccessLog emits one log/slog
// JSON record per request; requests slower than
// ServerConfig.SlowRequestThreshold are logged even without it. See
// cmd/dpserver's -access-log, -slow-ms and -debug flags (the latter gates
// /debug/pprof, off by default).
package freegap
