package telemetry

// Small-integer value histograms. The latency Histogram's buckets start at
// 1µs — useless for distributions like "how many workers did this scan fan
// out to", where the interesting values are 1..64. ValueHistogram keeps the
// same cumulative-bucket exposition but with power-of-two value bounds
// (le 1, 2, 4, … 64, +Inf). It is observed at most once per query
// resolution, far off the per-record hot path, so plain shared atomics are
// enough — no stripe.

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"sync/atomic"
)

// numValueBuckets is the number of finite buckets; bucket i has upper bound
// 2^i, so the bounds run 1, 2, 4, … 64. Larger observations land in the
// implicit +Inf bucket.
const numValueBuckets = 7

var valueBoundLabels = func() [numValueBuckets]string {
	var labels [numValueBuckets]string
	for i := range labels {
		labels[i] = strconv.Itoa(1 << i)
	}
	return labels
}()

// ValueHistogram is a fixed-bucket histogram of small non-negative integer
// values, safe for concurrent use. The zero value is ready to use.
type ValueHistogram struct {
	counts [numValueBuckets + 1]atomic.Uint64 // counts[numValueBuckets] is +Inf
	sum    atomic.Uint64
	count  atomic.Uint64
}

// NewValueHistogram returns an empty value histogram.
func NewValueHistogram() *ValueHistogram { return &ValueHistogram{} }

// valueBucketIndex maps v to the smallest bucket i with v <= 2^i, or
// numValueBuckets past the last bound. Negative values clamp to zero.
func valueBucketIndex(v int) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v) - 1)
	if i > numValueBuckets {
		return numValueBuckets
	}
	return i
}

// Observe records one value. Negative values are clamped to zero.
func (h *ValueHistogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	h.counts[valueBucketIndex(v)].Add(1)
	h.sum.Add(uint64(v))
	h.count.Add(1)
}

// Snapshot returns the cumulative bucket counts (last entry is the +Inf
// bucket, equal to the total count), the sum of observed values, and the
// observation count.
func (h *ValueHistogram) Snapshot() (cumulative [numValueBuckets + 1]uint64, sum, count uint64) {
	var cum uint64
	for b := range h.counts {
		cum += h.counts[b].Load()
		cumulative[b] = cum
	}
	return cumulative, h.sum.Load(), h.count.Load()
}

// Count returns the number of observations.
func (h *ValueHistogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *ValueHistogram) Sum() uint64 { return h.sum.Load() }

// writeValueHistogram renders one value-histogram series block in the
// Prometheus text exposition format, mirroring writeHistogram.
func writeValueHistogram(w io.Writer, key string, h *ValueHistogram) error {
	cum, sum, count := h.Snapshot()
	name, labels := splitSeriesKey(key)
	for b, c := range cum {
		le := "+Inf"
		if b < numValueBuckets {
			le = valueBoundLabels[b]
		}
		if err := writeBucketLine(w, name, labels, le, c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
	return err
}
