// Package engine is the unified mechanism-execution layer between the
// library's differentially private mechanisms and everything that serves
// them. Each servable workload — the raw free-gap mechanisms and the paper's
// end-to-end select–measure–refine pipelines alike — implements the one
// Mechanism interface (Name, NewRequest, Validate, Cost, Execute) and is
// looked up by name in a Registry, so a caller written once against the
// interface (the HTTP server's generic handler, the CLIs, the batch
// executor) serves every mechanism, present and future.
//
// The contract mirrors the serving layer's budget discipline:
//
//   - Validate must reject every malformed request (including constructor
//     failures of the underlying mechanism) so that a request which cannot
//     run never charges budget.
//   - Cost returns the ε the caller must reserve before Execute runs. For
//     reservation-style mechanisms (the adaptive Sparse Vector variants may
//     spend less internally) it is the full reservation, keeping concurrent
//     callers sound.
//   - Execute performs the mechanism on a caller-supplied noise source and
//     returns a Response whose billing fields the caller stamps afterwards
//     via SetBilling.
package engine

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/rng"
)

// MinEpsilon is the smallest per-request ε accepted. Below it the noise
// scale is astronomically useless anyway, and admitting near-zero charges
// would let one tenant grow its accountant's audit log without bound.
const MinEpsilon = 1e-9

// MaxEpsilon is the largest per-request ε accepted. Beyond it the noise
// scale underflows to zero variance, which breaks the pipelines'
// variance-weighted refinement after the budget was already charged (found
// by FuzzDecodeRequest with ε = 1e200) — and such a request offers no
// meaningful privacy in the first place.
const MaxEpsilon = 1e6

// MaxTenantNameLen bounds tenant identifiers so hostile clients cannot grow
// registry key space without bound per entry.
const MaxTenantNameLen = 128

// ErrUnknownMechanism is returned by Registry.Get for unregistered names.
var ErrUnknownMechanism = errors.New("engine: unknown mechanism")

// Limits bounds request sizes at validation time; the serving layer fills it
// from its configuration. A zero MaxAnswers means unlimited.
type Limits struct {
	// MaxAnswers bounds len(answers) per request.
	MaxAnswers int
}

// Common holds the request fields shared by every mechanism: who pays, how
// much, and over which query answers. The answers come in one of two ways —
// inline (the client computed them) or resolved server-side by naming a
// catalogued Dataset plus a QuerySpec, the paper's curator trust model.
type Common struct {
	// Tenant identifies whose privacy budget pays for the query.
	Tenant string `json:"tenant"`
	// Epsilon is the privacy budget this request spends (or reserves).
	Epsilon float64 `json:"epsilon"`
	// Answers are the true query answers (sensitivity 1 each). Leave empty
	// when Dataset and Queries are set; ResolveRequest fills them before
	// validation.
	Answers []float64 `json:"answers,omitempty"`
	// Monotonic declares a monotonic (e.g. counting) query list, halving the
	// required noise scale. Resolved counting queries set it automatically.
	Monotonic bool `json:"monotonic,omitempty"`
	// Dataset names a server-side catalogued dataset to answer Queries
	// against, in place of inline Answers.
	Dataset string `json:"dataset,omitempty"`
	// Queries is the counting-query spec resolved against Dataset.
	Queries *QuerySpec `json:"queries,omitempty"`
}

// Base returns the shared fields; embedding Common gives every concrete
// request type this method, which is all the Request interface asks for.
func (c *Common) Base() *Common { return c }

// validate checks the shared fields against the limits.
func (c *Common) validate(lim Limits) error {
	if err := ValidTenant(c.Tenant); err != nil {
		return err
	}
	if !(c.Epsilon >= MinEpsilon) || !(c.Epsilon <= MaxEpsilon) {
		return fmt.Errorf("epsilon %v must be in [%g, %g]", c.Epsilon, MinEpsilon, MaxEpsilon)
	}
	if len(c.Answers) == 0 {
		return errors.New("answers must be non-empty (inline, or resolved from a dataset and query spec)")
	}
	if lim.MaxAnswers > 0 && len(c.Answers) > lim.MaxAnswers {
		return fmt.Errorf("%d answers exceeds the server limit of %d", len(c.Answers), lim.MaxAnswers)
	}
	for i, a := range c.Answers {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("answers[%d] = %v is not finite", i, a)
		}
	}
	return nil
}

// ValidTenant reports whether the tenant id is acceptable.
func ValidTenant(tenant string) error {
	if tenant == "" {
		return errors.New("tenant must be non-empty")
	}
	if len(tenant) > MaxTenantNameLen {
		return fmt.Errorf("tenant id longer than %d bytes", MaxTenantNameLen)
	}
	return nil
}

// Request is a mechanism request: any concrete request type embedding Common.
type Request interface {
	Base() *Common
}

// Billing holds the fields every response reports about what the request
// cost. Concrete response types embed it and the executing layer stamps it
// after the charge succeeds.
type Billing struct {
	Tenant string `json:"tenant"`
	// EpsilonSpent is the budget charged to the tenant for this request.
	EpsilonSpent float64 `json:"epsilon_spent"`
	// BudgetRemaining is the tenant's unspent budget after this request.
	BudgetRemaining float64 `json:"budget_remaining"`
	// Trace carries the serving layer's stage-timing breakdown when the
	// client opted in with ?trace=1; nil (and omitted) otherwise.
	Trace any `json:"trace,omitempty"`
}

// SetTrace attaches an inline trace payload to the response. The serving
// layer discovers it by interface assertion, so embedding Billing is all a
// response type needs to support ?trace=1.
func (b *Billing) SetTrace(t any) { b.Trace = t }

// SetBilling fills the billing fields; it satisfies the Response interface
// for every response type embedding Billing.
func (b *Billing) SetBilling(tenant string, epsilonSpent, budgetRemaining float64) {
	b.Tenant = tenant
	b.EpsilonSpent = epsilonSpent
	b.BudgetRemaining = budgetRemaining
}

// Response is a mechanism response: any concrete response type embedding
// Billing.
type Response interface {
	SetBilling(tenant string, epsilonSpent, budgetRemaining float64)
}

// Scratch holds the request-scoped working memory one Execute needs — noise
// and score buffers for the core mechanisms plus the backing arrays of the
// response's variable-length fields. Serving layers keep Scratch values in a
// sync.Pool and thread one through each request, so the steady-state hot
// path performs no per-request buffer allocations; every buffer grows
// amortized to the largest request it has served. A Scratch must only ever
// be used by one Execute at a time, and a response built from it must be
// fully consumed (encoded) before the Scratch is reused, because the
// response's slices are backed by it.
type Scratch struct {
	// TopK backs the topk/max mechanisms (noisy scores, rank index,
	// selections).
	TopK core.TopKScratch
	// SVT backs the Sparse Vector mechanisms (prefilled noise chunk, items).
	SVT core.SVTScratch
	// Body backs the serving layer's request-body reads.
	Body []byte
	// Out backs the serving layer's response encoding (see AppendResponse).
	Out []byte
	// selections backs TopKResponse.Selections.
	selections []SelectionJSON
	// svtAnswers backs SVTResponse.Above.
	svtAnswers []SVTAnswerJSON

	// Decoder state (see DecodeRequest): the request values and the backing
	// arrays of their variable-length fields.
	topk    TopKRequest
	max     MaxRequest
	svt     SVTRequest
	ptopk   PipelineTopKRequest
	psvt    PipelineSVTRequest
	query   QuerySpec
	answers []float64
	items   []int32
	key     []byte
	str     []byte
}

// maxPooledBuf bounds the transient byte/answer buffers a pooled Scratch may
// retain, so one oversized request doesn't pin worst-case memory in the pool
// forever.
const (
	maxPooledBuf     = 1 << 20
	maxPooledAnswers = 1 << 16
)

// Trim drops oversized transient buffers; serving layers call it before
// returning a Scratch to the pool.
func (s *Scratch) Trim() {
	if cap(s.Body) > maxPooledBuf {
		s.Body = nil
	}
	if cap(s.Out) > maxPooledBuf {
		s.Out = nil
	}
	if cap(s.answers) > maxPooledAnswers {
		s.answers = nil
	}
	if cap(s.items) > maxPooledAnswers {
		s.items = nil
	}
	if cap(s.query.Items) > maxPooledAnswers ||
		s.query.Where != nil || s.query.Of != nil || s.query.On != nil {
		// Composite spec trees are heap-allocated per request; drop them so
		// the pool retains only the flat leaf-spec state.
		s.query = QuerySpec{}
	}
}

// NewScratch returns an empty Scratch (the zero value also works; the
// constructor exists for pools: sync.Pool{New: func() any { return
// engine.NewScratch() }}).
func NewScratch() *Scratch { return &Scratch{} }

// selectionsBuf returns a length-0, capacity-amortized SelectionJSON buffer.
func (s *Scratch) selectionsBuf(n int) []SelectionJSON {
	if cap(s.selections) < n {
		s.selections = make([]SelectionJSON, 0, n)
	}
	s.selections = s.selections[:0]
	return s.selections
}

// svtAnswersBuf returns a length-0, capacity-amortized SVTAnswerJSON buffer.
func (s *Scratch) svtAnswersBuf(n int) []SVTAnswerJSON {
	if cap(s.svtAnswers) < n {
		s.svtAnswers = make([]SVTAnswerJSON, 0, n)
	}
	s.svtAnswers = s.svtAnswers[:0]
	return s.svtAnswers
}

// Mechanism is one servable DP workload. Implementations are stateless —
// all run state lives in the request and the caller-supplied scratch — so
// one registered instance serves arbitrarily many concurrent executions.
type Mechanism interface {
	// Name is the stable identifier the mechanism is registered and routed
	// under (it becomes the POST /v1/<name> endpoint and the accountant's
	// charge label).
	Name() string
	// NewRequest returns a zero request of the mechanism's concrete request
	// type, for the caller to decode into.
	NewRequest() Request
	// Validate rejects malformed requests. A request that fails Validate
	// must never be charged or executed.
	Validate(req Request, lim Limits) error
	// Cost returns the ε to reserve from the paying tenant before Execute.
	// It is only meaningful for requests that passed Validate.
	Cost(req Request) float64
	// Execute runs the mechanism, drawing noise from src and working memory
	// from scr (nil means allocate fresh — correct, just not pooled). The
	// returned Response has its billing fields unset; the caller stamps
	// them. With a non-nil scr the response may share the scratch's backing
	// arrays: encode it before reusing scr.
	Execute(src rng.Source, req Request, scr *Scratch) (Response, error)
}

// UnitNoiser is implemented by mechanisms whose noise consumption factors
// into a fixed number of unit-scale Laplace draws times a per-request scale.
// Batch callers exploit it to fill one shared noise vector for many
// sub-requests in a single vectorized pass and hand each mechanism its
// window. The contract is bit-exactness: ExecuteUnitNoise fed the unit-scale
// draws that src would have produced must return exactly what Execute(src,
// ...) returns, because the scalar sampler's last operation is the multiply
// by scale.
type UnitNoiser interface {
	// UnitNoiseLen returns how many unit-scale Laplace draws executing req
	// consumes, or -1 when prenoised execution does not apply to this
	// request (the caller then falls back to Execute with a live source).
	// Only meaningful for requests that passed Validate and resolution.
	UnitNoiseLen(req Request) int
	// ExecuteUnitNoise is Execute with the noise pre-drawn: unit holds
	// exactly UnitNoiseLen(req) unit-scale Laplace samples in draw order.
	ExecuteUnitNoise(req Request, unit []float64, scr *Scratch) (Response, error)
}

// Registry maps mechanism names to implementations. It is safe for
// concurrent use; registration normally happens once at startup.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Mechanism
}

// NewRegistry returns an empty mechanism registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Mechanism)}
}

// maxMechanismNameLen bounds registered names; they become URL path
// segments and metric label values.
const maxMechanismNameLen = 64

// validMechanismName enforces that a name is safe to embed verbatim in an
// http.ServeMux pattern ("POST /v1/<name>") and a Prometheus label:
// slash-separated non-empty segments of [a-z0-9._-]. Rejecting everything
// else at registration keeps the serving layer's route mounting panic-free.
func validMechanismName(name string) error {
	if name == "" {
		return errors.New("engine: mechanism has an empty name")
	}
	if len(name) > maxMechanismNameLen {
		return fmt.Errorf("engine: mechanism name %q longer than %d bytes", name, maxMechanismNameLen)
	}
	segStart := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '/' {
			if i == segStart {
				return fmt.Errorf("engine: mechanism name %q has an empty path segment", name)
			}
			segStart = i + 1
			continue
		}
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("engine: mechanism name %q contains %q (allowed: a-z, 0-9, '.', '_', '-', '/')", name, c)
		}
	}
	return nil
}

// Register adds m under its name, rejecting duplicates and names that are
// not route- and label-safe (see validMechanismName).
func (r *Registry) Register(m Mechanism) error {
	name := m.Name()
	if err := validMechanismName(name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return fmt.Errorf("engine: mechanism %q registered twice", name)
	}
	r.byName[name] = m
	return nil
}

// MustRegister is Register for static setups known to be valid; it panics on
// error.
func (r *Registry) MustRegister(m Mechanism) {
	if err := r.Register(m); err != nil {
		panic(err)
	}
}

// Get returns the mechanism registered under name.
func (r *Registry) Get(name string) (Mechanism, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (valid: %v)", ErrUnknownMechanism, name, r.namesLocked())
	}
	return m, nil
}

// Names returns the registered mechanism names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

// Mechanisms returns the registered mechanisms in name order.
func (r *Registry) Mechanisms() []Mechanism {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Mechanism, 0, len(r.byName))
	for _, name := range r.namesLocked() {
		out = append(out, r.byName[name])
	}
	return out
}

func (r *Registry) namesLocked() []string {
	out := make([]string, 0, len(r.byName))
	for name := range r.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultRegistry returns a registry with every mechanism the library
// serves: the three raw free-gap mechanisms (topk, max, svt) and the
// paper's two end-to-end pipelines (pipeline/topk, pipeline/svt).
func DefaultRegistry() *Registry {
	r := NewRegistry()
	r.MustRegister(topkMechanism{})
	r.MustRegister(maxMechanism{})
	r.MustRegister(svtMechanism{})
	r.MustRegister(pipelineTopKMechanism{})
	r.MustRegister(pipelineSVTMechanism{})
	return r
}
