package server

// POST /v1/batch: up to MaxBatch mechanism requests in one round trip,
// paid for with a single atomic multi-charge against the batch tenant's
// accountant. The charge is all-or-nothing — every item's cost is reserved
// in one accountant transaction or the whole batch is refused with a 402 —
// so a batch can never overspend what the same requests issued serially
// could, no matter how many batches race for the budget concurrently.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"github.com/freegap/freegap/internal/accountant"
	"github.com/freegap/freegap/internal/engine"
	"github.com/freegap/freegap/internal/rng"
)

// mechBatch is the metrics label for the batch endpoint.
const mechBatch = "batch"

// batchItem is one decoded, validated batch entry awaiting execution.
type batchItem struct {
	mech engine.Mechanism
	req  engine.Request
	cost float64
	// noiseOff/noiseLen locate the item's window in the batch-wide unit
	// noise vector; noiseLen < 0 means the mechanism does not support
	// prenoised execution and draws from a live source instead.
	noiseOff, noiseLen int
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.hot.inFlight.Inc()
	defer s.hot.inFlight.Dec()
	t := s.beginTrace(w, r)
	outcome := s.serveBatch(t, r)
	s.finishTrace(t, mechBatch, outcome)
	s.finishRequest(mechBatch, outcome)
}

func (s *Server) serveBatch(w *traceWriter, r *http.Request) string {
	var req BatchRequest
	if code, ok := s.decode(w, r, &req); !ok {
		return code
	}
	w.mark(stageDecode)
	w.tenant = req.Tenant
	if err := engine.ValidTenant(req.Tenant); err != nil {
		return badRequest(w, err)
	}
	if len(req.Requests) == 0 {
		return badRequest(w, errors.New("batch holds no requests"))
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		return badRequest(w, fmt.Errorf("batch of %d requests exceeds the server limit of %d", len(req.Requests), s.cfg.MaxBatch))
	}

	// Stage 1: decode and validate every item. Any failure rejects the whole
	// batch before a single ε is reserved, keeping the charge all-or-nothing
	// across validation too.
	items := make([]batchItem, len(req.Requests))
	charges := make([]accountant.Charge, len(req.Requests))
	lim := s.limits()
	for i, entry := range req.Requests {
		// The construction-time snapshot, not the live registry: a batch may
		// name exactly the mechanisms that have endpoints mounted.
		mech, ok := s.mechByName[entry.Mechanism]
		if !ok {
			return badRequest(w, fmt.Errorf("requests[%d]: unknown mechanism %q (valid: %v)", i, entry.Mechanism, s.mechNames))
		}
		if len(entry.Request) == 0 {
			return badRequest(w, fmt.Errorf("requests[%d]: missing request body", i))
		}
		// Items decode with a nil scratch on purpose: one scratch hosts one
		// request value per type, and a batch holds many requests of the
		// same type concurrently.
		mreq, cok, cerr := engine.DecodeRequest(mech, entry.Request, nil)
		if !cok {
			mreq = mech.NewRequest()
			cerr = decodeStrictJSON(entry.Request, mreq)
			if cerr != nil {
				return badRequest(w, fmt.Errorf("requests[%d]: %v", i, cerr))
			}
		} else if cerr != nil {
			if errors.Is(cerr, engine.ErrTrailingData) {
				return badRequest(w, fmt.Errorf("requests[%d]: request holds more than one JSON value", i))
			}
			return badRequest(w, fmt.Errorf("requests[%d]: decoding request: %v", i, cerr))
		}
		// The batch tenant pays for every item; an item naming a different
		// tenant is almost certainly a client bug, so reject it loudly
		// rather than silently re-billing.
		base := mreq.Base()
		switch base.Tenant {
		case "", req.Tenant:
			base.Tenant = req.Tenant
		default:
			return badRequest(w, fmt.Errorf("requests[%d]: tenant %q does not match the batch tenant %q", i, base.Tenant, req.Tenant))
		}
		// Resolve dataset-backed items before validation, like the single
		// path does; a resolution failure rejects the whole batch with the
		// item's structured code, keeping the charge all-or-nothing.
		if err := engine.ResolveRequest(mreq, s.resolver()); err != nil {
			return s.writeResolveError(w, fmt.Errorf("requests[%d]: %w", i, err))
		}
		if err := mech.Validate(mreq, lim); err != nil {
			return badRequest(w, fmt.Errorf("requests[%d]: %v", i, err))
		}
		cost := mech.Cost(mreq)
		items[i] = batchItem{mech: mech, req: mreq, cost: cost}
		charges[i] = accountant.Charge{Label: mech.Name(), Epsilon: cost}
	}
	// Per-item decode/resolve/validate all happened in the loop above; the
	// trace charges the whole loop to the validate stage.
	w.mark(stageValidate)

	// Stage 2: one atomic multi-charge, refused outright while the durable
	// journal is dead (fail-closed). Charging under the mechanism labels
	// (not "batch") keeps the tenant's per-mechanism ledger breakdown exact.
	if code, ok := s.persistReady(w); !ok {
		return code
	}
	remaining, err := s.reg.ChargeBatch(req.Tenant, charges)
	if code, ok := s.classifyChargeError(w, req.Tenant, remaining, err); !ok {
		return code
	}
	// Re-check after the charge (see serveMechanism): an FsyncAlways
	// journal failure during this charge must block the batch's release.
	if code, ok := s.persistReady(w); !ok {
		return code
	}
	w.mark(stageCharge)

	// Stage 3a: pre-size one noise requirement across the whole batch. Every
	// item whose mechanism factors its noise into unit-scale Laplace draws
	// (engine.UnitNoiser) gets a window in one shared vector, filled in a
	// single vectorized pass by one worker; the per-item executions then
	// scale their window in place of sampling — bit-identical outputs, one
	// source acquisition instead of one per item. Items that cannot prenoise
	// (SVT's draw count is data-dependent) keep drawing from a live source.
	totalNoise := 0
	for i := range items {
		it := &items[i]
		it.noiseLen = -1
		if un, ok := it.mech.(engine.UnitNoiser); ok {
			if n := un.UnitNoiseLen(it.req); n >= 0 {
				it.noiseOff, it.noiseLen = totalNoise, n
				totalNoise += n
			}
		}
	}
	var unit []float64
	if totalNoise > 0 {
		buf := make([]float64, totalNoise)
		if err := s.pool.do(r.Context(), func(src rng.Source) {
			unit = rng.LaplaceVec(src, 1, totalNoise, buf)
		}); err != nil {
			// The batch is already charged; fall back to per-item sources
			// rather than failing every item over a cancelled prefill.
			unit = nil
		}
	}

	// Stage 3b: execute the admitted items concurrently across the worker
	// pool. Execution failures are per-item — the batch's reservation stays
	// spent, exactly as a serial request's would. Each item draws its own
	// scratch from the pool (they run concurrently), and every scratch is
	// held until the whole batch response is encoded: item responses alias
	// their scratch's buffers.
	results := make([]BatchItemResult, len(items))
	scratches := make([]*engine.Scratch, len(items))
	var total float64
	var wg sync.WaitGroup
	for i := range items {
		it := &items[i]
		total += it.cost
		results[i].Mechanism = it.mech.Name()
		wg.Add(1)
		go func() {
			defer wg.Done()
			scr := scratchPool.Get().(*engine.Scratch)
			scratches[i] = scr
			var (
				resp   engine.Response
				runErr error
			)
			if err := s.pool.do(r.Context(), func(src rng.Source) {
				if unit != nil && it.noiseLen >= 0 {
					un := it.mech.(engine.UnitNoiser)
					resp, runErr = un.ExecuteUnitNoise(it.req, unit[it.noiseOff:it.noiseOff+it.noiseLen], scr)
				} else {
					resp, runErr = it.mech.Execute(src, it.req, scr)
				}
			}); err != nil {
				results[i].Error = batchExecError(err)
				return
			}
			if runErr != nil {
				results[i].Error = &ErrorBody{Code: CodeInternal, Message: runErr.Error()}
				return
			}
			resp.SetBilling(req.Tenant, it.cost, remaining)
			results[i].Response = resp
		}()
	}
	wg.Wait()
	w.mark(stageExecute)
	w.eps = total

	resp := BatchResponse{
		Tenant:          req.Tenant,
		Results:         results,
		EpsilonSpent:    total,
		BudgetRemaining: remaining,
	}
	s.writeBatchResponse(w, &resp)
	for _, scr := range scratches {
		if scr != nil {
			putScratch(scr)
		}
	}
	return "ok"
}

// writeBatchResponse encodes the batch response through the zero-copy codecs
// into a pooled buffer and writes it once. Trace is the response's last
// field, so a ?trace=1 breakdown — rendered after the real encode it has to
// account for — is appended before the closing brace instead of re-encoding
// the whole batch. Any item without a hand-rolled codec sends the entire
// response through encoding/json instead.
func (s *Server) writeBatchResponse(w *traceWriter, resp *BatchResponse) {
	scr := scratchPool.Get().(*engine.Scratch)
	defer putScratch(scr)
	out, ok := appendBatchResponse(scr.Out[:0], resp)
	scr.Out = out
	if !ok {
		if w.traceOn {
			var buf bytes.Buffer
			_ = json.NewEncoder(&buf).Encode(resp)
			w.mark(stageEncode)
			resp.Trace = w.traceJSON()
			writeJSON(w, http.StatusOK, resp)
		} else {
			writeJSON(w, http.StatusOK, resp)
			w.mark(stageEncode)
		}
		return
	}
	if !w.traceOn {
		out = append(out, '\n')
		scr.Out = out
		writeRawJSON(w, http.StatusOK, out)
		w.mark(stageEncode)
		return
	}
	w.mark(stageEncode)
	out = out[:len(out)-1] // reopen the object: trace is the last field
	out = append(out, `,"trace":`...)
	tb, tok := appendTraceJSON(out, w.traceJSON())
	if !tok {
		// Defensive only (trace floats are finite): re-encode via stdlib.
		resp.Trace = w.traceJSON()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	out = append(tb, '}', '\n')
	scr.Out = out
	writeRawJSON(w, http.StatusOK, out)
}

// batchExecError maps a pool submission failure to a per-item error body.
func batchExecError(err error) *ErrorBody {
	switch {
	case errors.Is(err, errPoolClosed):
		return &ErrorBody{Code: CodeUnavailable, Message: "server is shutting down"}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return &ErrorBody{Code: CodeCancelled, Message: err.Error()}
	default:
		return &ErrorBody{Code: CodeInternal, Message: err.Error()}
	}
}

// decodeStrictJSON parses raw into dst with the same strictness as the HTTP
// body decoder: unknown fields and trailing values are errors.
func decodeStrictJSON(raw json.RawMessage, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request: %v", err)
	}
	if dec.More() {
		return errors.New("request holds more than one JSON value")
	}
	return nil
}
