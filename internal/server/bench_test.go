package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// Server hot-path benchmarks: requests are driven straight through the
// handler (no TCP) so the numbers isolate decode → validate → charge →
// mechanism → encode. Tenants get an effectively unlimited budget so the
// accountant never rejects.

const benchBudget = 1e18

func benchAnswers(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64((i*2654435761)%10000) / 3
	}
	return out
}

func mustServer(b *testing.B, cfg Config) *Server {
	b.Helper()
	s, err := New(cfg)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	b.Cleanup(s.Close)
	return s
}

func BenchmarkServerTopK(b *testing.B) {
	s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1, Workers: 1})
	body, err := json.Marshal(TopKRequest{Common: Common{Tenant: "bench", Epsilon: 0.1, Answers: benchAnswers(1024), Monotonic: true}, K: 10})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/topk", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
		}
	}
}

func BenchmarkServerSVTParallel(b *testing.B) {
	s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1})
	body, err := json.Marshal(SVTRequest{Common: Common{Tenant: "bench", Epsilon: 0.1, Answers: benchAnswers(1024), Monotonic: true}, K: 5, Threshold: 1500, Adaptive: true})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/v1/svt", bytes.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
			}
		}
	})
}

func BenchmarkServerMax(b *testing.B) {
	s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1, Workers: 1})
	body, err := json.Marshal(MaxRequest{Common: Common{Tenant: "bench", Epsilon: 0.1, Answers: benchAnswers(1024), Monotonic: true}})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/max", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkServerBatch compares N requests issued as N serial round trips
// against the same N requests in one POST /v1/batch: the batch pays one
// decode/charge/encode plus a single accountant transaction instead of N.
func BenchmarkServerBatch(b *testing.B) {
	const n = 16
	answers := benchAnswers(1024)

	serialBody, err := json.Marshal(MaxRequest{
		Common: Common{Tenant: "bench", Epsilon: 0.1, Answers: answers, Monotonic: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	batch := BatchRequest{Tenant: "bench"}
	itemBody, err := json.Marshal(MaxRequest{
		Common: Common{Epsilon: 0.1, Answers: answers, Monotonic: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		batch.Requests = append(batch.Requests, BatchItem{Mechanism: "max", Request: itemBody})
	}
	batchBody, err := json.Marshal(batch)
	if err != nil {
		b.Fatal(err)
	}

	post := func(b *testing.B, h http.Handler, path string, body []byte) {
		b.Helper()
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
		}
	}

	b.Run("serial", func(b *testing.B) {
		s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1, Workers: 1})
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				post(b, h, "/v1/max", serialBody)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1, Workers: 1, MaxBatch: n})
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, h, "/v1/batch", batchBody)
		}
	})
}
