// Command dpsvt runs Sparse-Vector-with-Gap or Adaptive-Sparse-Vector-with-Gap
// over the item counts of a transaction dataset: it reports which items are
// (probably) above a threshold, the free noisy gap above the threshold for
// each, a Lemma 5 lower confidence bound on the item's true count, and the
// privacy budget left over. With -measure it runs the full Section 6.2
// protocol instead, spending half the budget on Laplace measurements and
// combining them with the gaps by inverse-variance weighting. Both paths run
// through the same mechanism engine the dpserver dispatches on ("svt" and
// "pipeline/svt" respectively).
//
// Usage:
//
//	dpsvt -synthetic bmspos -scale 100 -k 10 -eps 0.7 -adaptive
//	dpsvt -data transactions.dat -k 5 -eps 1.0 -threshold 1200 -measure
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	freegap "github.com/freegap/freegap"
)

// cliTenant is the tenant label engine requests are issued under; the CLI
// runs the mechanisms locally, so it only shows up in validation and logs.
const cliTenant = "cli"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dpsvt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dpsvt", flag.ContinueOnError)
	var (
		dataPath   = fs.String("data", "", "transaction dataset in FIMI format")
		synthetic  = fs.String("synthetic", "", "generate a synthetic dataset instead of reading one: bmspos, kosarak, or quest")
		scale      = fs.Int("scale", 100, "scale-down factor for synthetic datasets")
		k          = fs.Int("k", 5, "minimum number of above-threshold answers to provision for")
		eps        = fs.Float64("eps", 0.7, "total privacy budget")
		threshold  = fs.Float64("threshold", 0, "public threshold (0 = pick one between the top-2k and top-8k counts)")
		seed       = fs.Uint64("seed", 1, "random seed")
		adaptive   = fs.Bool("adaptive", true, "use Adaptive-Sparse-Vector-with-Gap (false = plain Sparse-Vector-with-Gap)")
		confidence = fs.Float64("confidence", 0.95, "confidence level for the Lemma 5 lower bound on each reported count")
		measure    = fs.Bool("measure", false, "run the full Section 6.2 pipeline: spend half the budget on measurements and combine them with the gaps")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	counts, err := loadCounts(*dataPath, *synthetic, *scale, *seed)
	if err != nil {
		return err
	}
	if *k <= 0 {
		return fmt.Errorf("k = %d must be positive", *k)
	}

	registry := freegap.DefaultMechanisms()
	src := freegap.NewSource(*seed)
	if *threshold == 0 {
		*threshold = freegap.RandomThreshold(src, counts, *k)
	}
	common := freegap.RequestCommon{Tenant: cliTenant, Epsilon: *eps, Answers: counts, Monotonic: true}

	if *measure {
		return runPipeline(registry, src, common, *k, *threshold, *adaptive, *confidence)
	}

	mech, err := registry.Get("svt")
	if err != nil {
		return err
	}
	req := &freegap.SVTRequest{Common: common, K: *k, Threshold: *threshold, Adaptive: *adaptive}
	if err := mech.Validate(req, freegap.MechanismLimits{}); err != nil {
		return err
	}
	resp, err := mech.Execute(src, req, nil)
	if err != nil {
		return err
	}
	out := resp.(*freegap.SVTResponse)

	// Lemma 5 rates: threshold noise Laplace(1/eps0), monotone query noise
	// Laplace(1/eps1) for the middle branch (the dominant one for plain SVT).
	theta := freegap.ThetaLyu(*k, true)
	eps0 := theta * *eps
	eps1 := (1 - theta) * *eps / float64(*k)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "item\tbranch\tgap above threshold\testimated count\tlower bound")
	for _, it := range out.Above {
		lower, err := freegap.GapLowerConfidenceBound(it.Gap, *threshold, *confidence, eps0, eps1)
		if err != nil {
			lower = math.Inf(-1)
		}
		fmt.Fprintf(tw, "%d\t%s\t%.2f\t%.2f\t%.2f\n", it.Index, it.Branch, it.Gap, it.Estimate, lower)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("threshold: %.2f\n", *threshold)
	fmt.Printf("above-threshold answers: %d\n", out.AboveCount)
	fmt.Printf("privacy budget: spent %.4g of %.4g (%.1f%% remaining)\n",
		out.MechanismSpent, *eps, 100*(*eps-out.MechanismSpent)/(*eps))
	return nil
}

// runPipeline runs the pipeline/svt workflow: selection, measurement, and
// inverse-variance combination with Lemma 5 lower bounds.
func runPipeline(registry *freegap.MechanismRegistry, src freegap.Source, common freegap.RequestCommon,
	k int, threshold float64, adaptive bool, confidence float64) error {
	eps := common.Epsilon
	mech, err := registry.Get("pipeline/svt")
	if err != nil {
		return err
	}
	req := &freegap.PipelineSVTRequest{
		Common: common, K: k, Threshold: threshold, Adaptive: adaptive, Confidence: confidence,
	}
	if err := mech.Validate(req, freegap.MechanismLimits{}); err != nil {
		return err
	}
	resp, err := mech.Execute(src, req, nil)
	if err != nil {
		return err
	}
	out := resp.(*freegap.PipelineSVTResponse)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "item\tbranch\tgap above threshold\tmeasured\tcombined count\tlower bound")
	for _, est := range out.Estimates {
		fmt.Fprintf(tw, "%d\t%s\t%.2f\t%.2f\t%.2f\t%.2f\n",
			est.Index, est.Branch, est.GapEstimate-threshold, est.Measured, est.Combined, est.LowerBound)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("threshold: %.2f\n", threshold)
	fmt.Printf("above-threshold answers: %d\n", out.AboveCount)
	fmt.Printf("privacy budget: spent %.4g of %.4g (%.1f%% remaining)\n",
		out.MechanismSpent, eps, 100*(eps-out.MechanismSpent)/eps)
	return nil
}

func loadCounts(dataPath, synthetic string, scale int, seed uint64) ([]float64, error) {
	switch {
	case dataPath != "" && synthetic != "":
		return nil, fmt.Errorf("use either -data or -synthetic, not both")
	case dataPath != "":
		db, err := freegap.ReadFIMIFile(dataPath)
		if err != nil {
			return nil, err
		}
		return db.ItemCounts(), nil
	case synthetic != "":
		var db *freegap.Dataset
		switch synthetic {
		case "bmspos":
			db = freegap.NewSyntheticBMSPOS(seed, scale)
		case "kosarak":
			db = freegap.NewSyntheticKosarak(seed, scale)
		case "quest":
			db = freegap.NewSyntheticT40I10D100K(seed, scale)
		default:
			return nil, fmt.Errorf("unknown synthetic dataset %q (valid: bmspos, kosarak, quest)", synthetic)
		}
		return db.ItemCounts(), nil
	default:
		return nil, fmt.Errorf("provide -data FILE or -synthetic NAME")
	}
}
