package core

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/freegap/freegap/internal/rng"
)

func TestNewTopKWithGapValidation(t *testing.T) {
	if _, err := NewTopKWithGap(0, 1, true); !errors.Is(err, ErrInvalidK) {
		t.Fatalf("k=0: got %v", err)
	}
	if _, err := NewTopKWithGap(3, 0, true); !errors.Is(err, ErrInvalidEpsilon) {
		t.Fatalf("eps=0: got %v", err)
	}
	if _, err := NewTopKWithGap(3, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestTopKNoiseScale(t *testing.T) {
	general, _ := NewTopKWithGap(5, 0.5, false)
	if got := general.NoiseScale(); got != 20 {
		t.Fatalf("general scale %v, want 2k/eps = 20", got)
	}
	mono, _ := NewTopKWithGap(5, 0.5, true)
	if got := mono.NoiseScale(); got != 10 {
		t.Fatalf("monotonic scale %v, want k/eps = 10", got)
	}
	if general.GapVariance() != 2*rng.LaplaceVariance(20) {
		t.Fatal("gap variance must be twice the per-query variance")
	}
	if general.PerQueryNoiseVariance() != rng.LaplaceVariance(20) {
		t.Fatal("per-query variance mismatch")
	}
}

func TestTopKRunErrors(t *testing.T) {
	src := rng.NewXoshiro(1)
	m, _ := NewTopKWithGap(3, 1, true)
	if _, err := m.Run(src, nil); !errors.Is(err, ErrNoQueries) {
		t.Fatalf("empty input: %v", err)
	}
	// Need k+1 queries.
	if _, err := m.Run(src, []float64{1, 2, 3}); !errors.Is(err, ErrInvalidK) {
		t.Fatalf("k = n: %v", err)
	}
	bad := &TopKWithGap{K: 2, Epsilon: -1}
	if _, err := bad.Run(src, []float64{1, 2, 3}); !errors.Is(err, ErrInvalidEpsilon) {
		t.Fatalf("bad epsilon: %v", err)
	}
}

func TestTopKRunBasicShape(t *testing.T) {
	src := rng.NewXoshiro(42)
	answers := []float64{100, 5, 80, 3, 60, 1, 40, 2}
	m, _ := NewTopKWithGap(3, 2, true)
	res, err := m.Run(src, answers)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selections) != 3 {
		t.Fatalf("selections %d, want 3", len(res.Selections))
	}
	if res.Epsilon != 2 || !res.Monotonic {
		t.Fatalf("metadata not propagated: %+v", res)
	}
	seen := map[int]bool{}
	for _, s := range res.Selections {
		if s.Index < 0 || s.Index >= len(answers) {
			t.Fatalf("index %d out of range", s.Index)
		}
		if seen[s.Index] {
			t.Fatalf("index %d selected twice", s.Index)
		}
		seen[s.Index] = true
		if s.Gap <= 0 {
			t.Fatalf("gap %v must be strictly positive", s.Gap)
		}
	}
	if got := len(res.Indices()); got != 3 {
		t.Fatalf("Indices() length %d", got)
	}
	if got := len(res.Gaps()); got != 3 {
		t.Fatalf("Gaps() length %d", got)
	}
}

func TestTopKSelectsTrueTopAtHighEpsilon(t *testing.T) {
	src := rng.NewXoshiro(7)
	answers := []float64{1000, 10, 900, 20, 800, 30, 700, 40}
	m, _ := NewTopKWithGap(3, 100, true) // tiny noise
	res, err := m.Run(src, answers)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 4}
	for i, s := range res.Selections {
		if s.Index != want[i] {
			t.Fatalf("selection %d = %d, want %d (selections %+v)", i, s.Index, want[i], res.Selections)
		}
	}
	// Gaps should be near the true gaps of 100 each.
	for i, s := range res.Selections {
		if math.Abs(s.Gap-100) > 10 {
			t.Fatalf("gap %d = %v, want ≈ 100", i, s.Gap)
		}
	}
}

func TestTopKGapsUnbiased(t *testing.T) {
	// Averaged over many runs, the released gap estimates the true gap between
	// the consistently-ranked queries.
	answers := []float64{500, 400, 320, 10, 5}
	m, _ := NewTopKWithGap(2, 5, true)
	src := rng.NewXoshiro(19)
	const trials = 4000
	var sumG1, sumG2 float64
	used := 0
	for i := 0; i < trials; i++ {
		res, err := m.Run(src, answers)
		if err != nil {
			t.Fatal(err)
		}
		// Only average trials where the ranking matched the truth; at eps=5
		// that is almost all of them.
		if res.Selections[0].Index == 0 && res.Selections[1].Index == 1 {
			sumG1 += res.Selections[0].Gap
			sumG2 += res.Selections[1].Gap
			used++
		}
	}
	if used < trials*9/10 {
		t.Fatalf("ranking flipped too often: %d/%d", used, trials)
	}
	g1, g2 := sumG1/float64(used), sumG2/float64(used)
	if math.Abs(g1-100) > 5 {
		t.Fatalf("mean first gap %v, want ≈ 100", g1)
	}
	if math.Abs(g2-80) > 5 {
		t.Fatalf("mean second gap %v, want ≈ 80", g2)
	}
}

func TestTopKGapVarianceEmpirical(t *testing.T) {
	// The empirical variance of the first gap should match 2·(2k/eps)²·2 =
	// GapVariance() when the selection is stable.
	answers := []float64{10000, 9000, 100}
	m, _ := NewTopKWithGap(1, 1, false)
	src := rng.NewXoshiro(23)
	const trials = 20000
	gaps := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		res, err := m.Run(src, answers)
		if err != nil {
			t.Fatal(err)
		}
		if res.Selections[0].Index == 0 {
			gaps = append(gaps, res.Selections[0].Gap)
		}
	}
	var sum, sumSq float64
	for _, g := range gaps {
		sum += g
		sumSq += g * g
	}
	n := float64(len(gaps))
	mean := sum / n
	variance := sumSq/n - mean*mean
	want := m.GapVariance()
	if math.Abs(variance-want) > 0.15*want {
		t.Fatalf("empirical gap variance %v, want ≈ %v", variance, want)
	}
}

func TestTopKPairwiseGap(t *testing.T) {
	res := &TopKResult{Selections: []Selection{{0, 5}, {1, 3}, {2, 2}}}
	got, err := res.PairwiseGap(0, 3)
	if err != nil || got != 10 {
		t.Fatalf("PairwiseGap(0,3) = %v, %v", got, err)
	}
	got, err = res.PairwiseGap(1, 2)
	if err != nil || got != 3 {
		t.Fatalf("PairwiseGap(1,2) = %v, %v", got, err)
	}
	for _, pair := range [][2]int{{-1, 1}, {2, 2}, {0, 4}} {
		if _, err := res.PairwiseGap(pair[0], pair[1]); err == nil {
			t.Errorf("expected error for pair %v", pair)
		}
	}
}

func TestMaxWithGap(t *testing.T) {
	src := rng.NewXoshiro(3)
	answers := []float64{10, 500, 30}
	res, err := MaxWithGap(src, answers, 50, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != 1 {
		t.Fatalf("index %d, want 1", res.Index)
	}
	if res.Gap <= 0 {
		t.Fatalf("gap %v must be positive", res.Gap)
	}
	if res.Epsilon != 50 {
		t.Fatalf("epsilon %v", res.Epsilon)
	}
	if _, err := MaxWithGap(src, answers, -1, true); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}

func TestTopKPropertyInvariants(t *testing.T) {
	// For random inputs: gaps positive, indices distinct and within range,
	// selections sorted by noisy value (implied by construction via gaps>0).
	src := rng.NewXoshiro(77)
	f := func(seed uint64) bool {
		local := rng.NewXoshiro(seed)
		n := 3 + rng.Intn(local, 30)
		k := 1 + rng.Intn(local, n-2)
		answers := make([]float64, n)
		for i := range answers {
			answers[i] = float64(rng.Intn(local, 1000))
		}
		eps := 0.1 + rng.Float64(local)*3
		m, err := NewTopKWithGap(k, eps, rng.Float64(local) < 0.5)
		if err != nil {
			return false
		}
		res, err := m.Run(src, answers)
		if err != nil {
			return false
		}
		if len(res.Selections) != k {
			return false
		}
		seen := map[int]bool{}
		for _, s := range res.Selections {
			if s.Gap <= 0 || s.Index < 0 || s.Index >= n || seen[s.Index] {
				return false
			}
			seen[s.Index] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKAlternativeNoiseKinds(t *testing.T) {
	answers := []float64{1000, 900, 800, 700, 10}
	for _, kind := range []NoiseKind{NoiseLaplace, NoiseDiscreteLaplace, NoiseStaircase} {
		m := &TopKWithGap{K: 2, Epsilon: 5, Monotonic: true, Noise: kind, DiscreteBase: 1.0 / (1 << 20)}
		src := rng.NewXoshiro(9)
		res, err := m.Run(src, answers)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for _, s := range res.Selections {
			if s.Gap <= 0 {
				t.Fatalf("%v: non-positive gap %v", kind, s.Gap)
			}
		}
		if kind.String() == "" {
			t.Fatal("empty NoiseKind string")
		}
	}
	if NoiseKind(99).String() == "" {
		t.Fatal("unknown kind must still stringify")
	}
}

// TestTopKRunPrenoisedBitIdentity pins the batch-noise contract: feeding
// RunPrenoised the unit-scale draws the scalar path would have made produces
// bit-identical selections, because the sampler's last operation is the
// multiply by scale.
func TestTopKRunPrenoisedBitIdentity(t *testing.T) {
	answers := []float64{812, 641, 633, 10, 998, 402, 77, 5, 300, 299}
	for _, k := range []int{1, 2, 5} {
		for _, mono := range []bool{false, true} {
			m, _ := NewTopKWithGap(k, 0.8, mono)
			var seed uint64 = 7*uint64(k) + 1
			want, err := m.Run(rng.NewXoshiro(seed), answers)
			if err != nil {
				t.Fatal(err)
			}
			unit := rng.LaplaceVec(rng.NewXoshiro(seed), 1, len(answers), nil)
			got, err := m.RunPrenoised(unit, answers, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Selections) != len(want.Selections) {
				t.Fatalf("k=%d mono=%v: %d selections, want %d", k, mono, len(got.Selections), len(want.Selections))
			}
			for i := range want.Selections {
				if got.Selections[i] != want.Selections[i] {
					t.Fatalf("k=%d mono=%v sel %d: got %+v, want %+v (must be bit-identical)", k, mono, i, got.Selections[i], want.Selections[i])
				}
			}
		}
	}
}

// TestTopKRunPrenoisedErrors pins the fences: wrong noise length and
// non-Laplace noise kinds must be rejected.
func TestTopKRunPrenoisedErrors(t *testing.T) {
	answers := []float64{3, 2, 1}
	m, _ := NewTopKWithGap(1, 1, true)
	if _, err := m.RunPrenoised([]float64{0}, answers, nil); err == nil {
		t.Fatal("short unit-noise vector must be rejected")
	}
	disc := &TopKWithGap{K: 1, Epsilon: 1, Noise: NoiseDiscreteLaplace}
	if _, err := disc.RunPrenoised([]float64{0, 0, 0}, answers, nil); err == nil {
		t.Fatal("non-Laplace noise must be rejected")
	}
	if _, err := m.RunPrenoised(nil, nil, nil); !errors.Is(err, ErrNoQueries) {
		t.Fatal("empty answers must be rejected")
	}
}

// TestTopKPartialSelectionAgreesWithSort runs the same draws through both
// ranking paths — the insertion-based partial selection (small k, long
// vector) and the full sort (forced via a scratch-independent reference) —
// and demands identical selections.
func TestTopKPartialSelectionAgreesWithSort(t *testing.T) {
	src := rng.NewXoshiro(31)
	n := 512
	answers := make([]float64, n)
	for i := range answers {
		answers[i] = rng.Float64(src) * 1000
	}
	for _, k := range []int{1, 3, 16, 63} {
		m, _ := NewTopKWithGap(k, 2, true)
		noisy := make([]float64, n)
		rng.LaplaceVec(rng.NewXoshiro(uint64(k)), m.NoiseScale(), n, noisy)
		for i := range noisy {
			noisy[i] += answers[i]
		}
		// Partial path: n >= 4*(k+1) holds for every k here.
		got := m.finish(append([]float64(nil), noisy...), &TopKScratch{}, m.NoiseScale())
		// Reference: full descending sort of (value, index).
		type vi struct {
			v float64
			i int
		}
		ref := make([]vi, n)
		for i, v := range noisy {
			ref[i] = vi{v, i}
		}
		sort.Slice(ref, func(a, b int) bool { return ref[a].v > ref[b].v })
		for i := 0; i < k; i++ {
			if got.Selections[i].Index != ref[i].i {
				t.Fatalf("k=%d rank %d: partial picked %d, sort picked %d", k, i, got.Selections[i].Index, ref[i].i)
			}
			wantGap := ref[i].v - ref[i+1].v
			if got.Selections[i].Gap != wantGap {
				t.Fatalf("k=%d rank %d: gap %v, want %v", k, i, got.Selections[i].Gap, wantGap)
			}
		}
	}
}
