package rng

import (
	"math"
	"testing"
)

func TestDiscreteLaplaceSupport(t *testing.T) {
	src := NewXoshiro(3)
	const base = 0.25
	for i := 0; i < 10000; i++ {
		v := DiscreteLaplace(src, 1.0, base)
		k := v / base
		if math.Abs(k-math.Round(k)) > 1e-9 {
			t.Fatalf("sample %v is not a multiple of base %v", v, base)
		}
	}
}

func TestDiscreteLaplaceSymmetryAndMean(t *testing.T) {
	src := NewXoshiro(9)
	const n = 300000
	var sum float64
	pos, neg := 0, 0
	for i := 0; i < n; i++ {
		v := DiscreteLaplace(src, 0.5, 1)
		sum += v
		if v > 0 {
			pos++
		} else if v < 0 {
			neg++
		}
	}
	if math.Abs(sum/n) > 0.05 {
		t.Fatalf("mean %v not near 0", sum/n)
	}
	if math.Abs(float64(pos-neg))/n > 0.01 {
		t.Fatalf("asymmetric tails: %d positive, %d negative", pos, neg)
	}
}

func TestDiscreteLaplaceMatchesPMF(t *testing.T) {
	src := NewXoshiro(12)
	const n = 400000
	const eps, base = 1.0, 1.0
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		v := DiscreteLaplace(src, eps, base)
		counts[int(math.Round(v))]++
	}
	for _, k := range []int{0, 1, -1, 2, -2, 3} {
		emp := float64(counts[k]) / n
		want := DiscreteLaplacePMF(float64(k), eps, base)
		if math.Abs(emp-want) > 0.01 {
			t.Errorf("PMF at %d: empirical %v analytic %v", k, emp, want)
		}
	}
}

func TestDiscreteLaplacePMFSumsToOne(t *testing.T) {
	const eps, base = 0.7, 0.5
	sum := 0.0
	for k := -200; k <= 200; k++ {
		sum += DiscreteLaplacePMF(float64(k)*base, eps, base)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PMF mass %v does not sum to 1", sum)
	}
}

func TestDiscreteLaplaceVarianceShrinksWithEps(t *testing.T) {
	src := NewXoshiro(8)
	variance := func(eps float64) float64 {
		const n = 100000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := DiscreteLaplace(src, eps, 1)
			sum += v
			sumSq += v * v
		}
		m := sum / n
		return sumSq/n - m*m
	}
	loose := variance(0.2)
	tight := variance(2.0)
	if tight >= loose {
		t.Fatalf("variance should shrink as eps grows: eps=0.2→%v, eps=2→%v", loose, tight)
	}
}

func TestTieProbabilityBound(t *testing.T) {
	if got := TieProbabilityBound(1, 0, 100); got != 0 {
		t.Fatalf("zero base should give zero bound, got %v", got)
	}
	if got := TieProbabilityBound(1, 1, 1000); got != 1 {
		t.Fatalf("bound must clamp to 1, got %v", got)
	}
	got := TieProbabilityBound(0.5, 1e-6, 100)
	want := 0.5 * 1e-6 * 100 * 100
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("bound %v, want %v", got, want)
	}
}

func TestTieProbabilityBoundPanicsOnNegativeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TieProbabilityBound(1, 1e-9, -1)
}

func TestRoundToBase(t *testing.T) {
	cases := []struct{ x, base, want float64 }{
		{1.26, 0.5, 1.5},
		{1.24, 0.5, 1.0},
		{-1.26, 0.5, -1.5},
		{3, 1, 3},
		{0.13, 0.25, 0.25},
	}
	for _, c := range cases {
		if got := RoundToBase(c.x, c.base); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RoundToBase(%v,%v)=%v want %v", c.x, c.base, got, c.want)
		}
	}
}

func TestDiscreteLaplacePanics(t *testing.T) {
	cases := []struct{ eps, base float64 }{{0, 1}, {1, 0}, {-1, 1}, {1, -1}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for eps=%v base=%v", c.eps, c.base)
				}
			}()
			DiscreteLaplace(NewXoshiro(1), c.eps, c.base)
		}()
	}
}
