package engine

// Server-side query resolution. A request may, instead of carrying inline
// answers, name a catalogued dataset and a counting-query spec; the executing
// layer resolves the spec into answers exactly once, between decoding and
// validation (decode → resolve → validate → charge → execute), through a
// Resolver it injects. The engine defines only the contract — the serving
// layer backs the Resolver with its dataset store — so mechanisms, the batch
// executor and the CLIs all gain dataset-backed queries without knowing where
// the data lives.

import (
	"errors"
	"fmt"
	"math"
)

// Query spec kinds accepted in Common.Queries.
const (
	// QueryAllItems asks for the count of every item in the dataset's
	// universe — one sensitivity-1 monotonic counting query per item, the
	// exact workload of the paper's Section 7.
	QueryAllItems = "all_items"
	// QueryItemCount asks for the counts of an explicit item list.
	QueryItemCount = "item_count"
	// QueryFilter counts, per item in the universe, the records matching a
	// record predicate (item-in-set, record-length range) that the item
	// appears in — a group-by-item over the filtered records.
	QueryFilter = "filter"
	// QueryThreshold keeps the counts of its one operand spec that fall in
	// [min_count, max_count] and zeroes the rest.
	QueryThreshold = "threshold"
	// QueryUnion is the elementwise max over two or more operand specs.
	QueryUnion = "union"
	// QueryIntersect is the elementwise min over two or more operand specs.
	QueryIntersect = "intersect"
	// QueryMinus keeps the first operand's counts where the second operand's
	// count is zero — set difference on the item support.
	QueryMinus = "minus"
	// QueryJoin keeps the operand's counts only for items supported (count
	// > 0) by a spec evaluated over another catalogued dataset — a join on
	// the shared item universe.
	QueryJoin = "join"
)

// Caps on the composite spec algebra, enforced by Validate before any plan
// is compiled so untrusted tenants cannot submit unbounded trees. Violations
// surface as the structured 400 "bad_query_spec".
const (
	// MaxSpecDepth bounds the nesting depth of a spec tree (the root is
	// depth 1; a join's "on" spec counts like an "of" operand).
	MaxSpecDepth = 8
	// MaxSpecNodes bounds the total number of spec nodes in one tree.
	MaxSpecNodes = 64
	// MaxSpecItems bounds one filter predicate's contains list.
	MaxSpecItems = 1 << 16
)

// ErrBadQuerySpec reports a malformed dataset/query combination: an unknown
// kind, a missing or superfluous item list, a query spec without a dataset
// (or vice versa), or inline answers alongside a dataset. Callers map it to
// the "bad_query_spec" API error code.
var ErrBadQuerySpec = errors.New("engine: bad query spec")

// RecordPredicate is a per-record filter: a record matches when it contains
// every item in Contains and its length lies in [MinLen, MaxLen]. A zero
// MaxLen means "no upper bound", so the zero bounds are never restrictive.
type RecordPredicate struct {
	// Contains lists item ids the record must all contain (AND semantics).
	Contains []int32 `json:"contains,omitempty"`
	// MinLen is the minimum record length (number of items), inclusive.
	MinLen int `json:"min_len,omitempty"`
	// MaxLen is the maximum record length, inclusive; 0 means unbounded.
	MaxLen int `json:"max_len,omitempty"`
}

// QuerySpec names a counting-query workload over a catalogued dataset, in
// place of inline answers. The two leaf kinds ("all_items", "item_count")
// resolve straight from the dataset's cached count vector; the composite
// kinds form a small algebra — filters, thresholds, set ops, cross-dataset
// joins — that the query planner compiles into vectorized passes over the
// columnar arenas. Composite specs always resolve to the full item-universe
// count vector (group-by item).
type QuerySpec struct {
	// Kind selects the workload (one of the Query* constants).
	Kind string `json:"kind"`
	// Items lists the queried item ids for kind "item_count"; it must be
	// empty for every other kind.
	Items []int32 `json:"items,omitempty"`
	// Where is the record predicate for kind "filter".
	Where *RecordPredicate `json:"where,omitempty"`
	// MinCount and MaxCount bound the kept counts for kind "threshold";
	// MaxCount 0 means unbounded above.
	MinCount float64 `json:"min_count,omitempty"`
	MaxCount float64 `json:"max_count,omitempty"`
	// Of holds the operand specs for the composite kinds: exactly one for
	// "threshold" and "join", exactly two for "minus", two or more for
	// "union" and "intersect".
	Of []*QuerySpec `json:"of,omitempty"`
	// Dataset names the other catalogued dataset for kind "join".
	Dataset string `json:"dataset,omitempty"`
	// On is the spec evaluated over the join's other dataset; nil means
	// "all_items" (join on the other dataset's full support).
	On *QuerySpec `json:"on,omitempty"`
}

// Composite reports whether the spec uses the composable algebra — anything
// beyond the two legacy leaf kinds — and therefore needs the query planner
// rather than a direct count-vector lookup.
func (q *QuerySpec) Composite() bool {
	return q.Kind != QueryAllItems && q.Kind != QueryItemCount
}

// Monotone reports whether the spec lies in the monotone fragment of the
// algebra: leaf counts, filters, unions and intersections are monotone
// 1-Lipschitz counting queries (adding a record never decreases any answer
// and moves each by at most one), so resolved requests get the halved noise
// scale. Threshold, minus and join can decrease answers when a record is
// added, so they are conservatively non-monotone.
func (q *QuerySpec) Monotone() bool {
	switch q.Kind {
	case QueryAllItems, QueryItemCount, QueryFilter:
		return true
	case QueryUnion, QueryIntersect:
		for _, op := range q.Of {
			if op == nil || !op.Monotone() {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Validate rejects malformed specs with ErrBadQuerySpec, walking the whole
// tree with the MaxSpecDepth/MaxSpecNodes caps so a pathological spec is
// rejected before any plan is compiled.
func (q *QuerySpec) Validate() error {
	nodes := 0
	return q.validate(1, &nodes)
}

func (q *QuerySpec) validate(depth int, nodes *int) error {
	if depth > MaxSpecDepth {
		return fmt.Errorf("%w: spec nesting exceeds the depth cap of %d", ErrBadQuerySpec, MaxSpecDepth)
	}
	*nodes++
	if *nodes > MaxSpecNodes {
		return fmt.Errorf("%w: spec tree exceeds the size cap of %d nodes", ErrBadQuerySpec, MaxSpecNodes)
	}
	switch q.Kind {
	case QueryAllItems:
		if len(q.Items) != 0 {
			return fmt.Errorf("%w: items must be empty for kind %q", ErrBadQuerySpec, QueryAllItems)
		}
		return q.onlyFields(fieldItems)
	case QueryItemCount:
		if len(q.Items) == 0 {
			return fmt.Errorf("%w: kind %q needs a non-empty items list", ErrBadQuerySpec, QueryItemCount)
		}
		return q.onlyFields(fieldItems)
	case QueryFilter:
		if err := q.onlyFields(fieldWhere); err != nil {
			return err
		}
		w := q.Where
		if w == nil {
			return fmt.Errorf("%w: kind %q needs a where predicate", ErrBadQuerySpec, QueryFilter)
		}
		if len(w.Contains) > MaxSpecItems {
			return fmt.Errorf("%w: where.contains exceeds the cap of %d items", ErrBadQuerySpec, MaxSpecItems)
		}
		if w.MinLen < 0 || w.MaxLen < 0 {
			return fmt.Errorf("%w: record-length bounds must be non-negative", ErrBadQuerySpec)
		}
		if len(w.Contains) == 0 && w.MinLen == 0 && w.MaxLen == 0 {
			return fmt.Errorf("%w: a where predicate needs contains, min_len or max_len", ErrBadQuerySpec)
		}
		return nil
	case QueryThreshold:
		if err := q.onlyFields(fieldOf | fieldCounts); err != nil {
			return err
		}
		if !(q.MinCount >= 0) || !(q.MaxCount >= 0) ||
			math.IsInf(q.MinCount, 1) || math.IsInf(q.MaxCount, 1) {
			return fmt.Errorf("%w: threshold bounds must be finite and non-negative", ErrBadQuerySpec)
		}
		if q.MinCount == 0 && q.MaxCount == 0 {
			return fmt.Errorf("%w: kind %q needs min_count or max_count", ErrBadQuerySpec, QueryThreshold)
		}
		return q.validateOperands(1, 1, depth, nodes)
	case QueryUnion, QueryIntersect:
		if err := q.onlyFields(fieldOf); err != nil {
			return err
		}
		return q.validateOperands(2, MaxSpecNodes, depth, nodes)
	case QueryMinus:
		if err := q.onlyFields(fieldOf); err != nil {
			return err
		}
		return q.validateOperands(2, 2, depth, nodes)
	case QueryJoin:
		if err := q.onlyFields(fieldOf | fieldJoin); err != nil {
			return err
		}
		if q.Dataset == "" {
			return fmt.Errorf("%w: kind %q needs the other dataset's name", ErrBadQuerySpec, QueryJoin)
		}
		if q.On != nil {
			if err := q.On.validate(depth+1, nodes); err != nil {
				return err
			}
		}
		return q.validateOperands(1, 1, depth, nodes)
	default:
		return fmt.Errorf("%w: unknown kind %q (valid: %q, %q, %q, %q, %q, %q, %q, %q)",
			ErrBadQuerySpec, q.Kind, QueryItemCount, QueryAllItems, QueryFilter,
			QueryThreshold, QueryUnion, QueryIntersect, QueryMinus, QueryJoin)
	}
}

// validateOperands checks the operand count for a composite kind and
// recurses into each operand.
func (q *QuerySpec) validateOperands(min, max, depth int, nodes *int) error {
	if len(q.Of) < min || len(q.Of) > max {
		if min == max {
			return fmt.Errorf("%w: kind %q needs exactly %d operand(s) in of, got %d", ErrBadQuerySpec, q.Kind, min, len(q.Of))
		}
		return fmt.Errorf("%w: kind %q needs at least %d operands in of, got %d", ErrBadQuerySpec, q.Kind, min, len(q.Of))
	}
	for i, op := range q.Of {
		if op == nil {
			return fmt.Errorf("%w: of[%d] must be a query spec object", ErrBadQuerySpec, i)
		}
		if err := op.validate(depth+1, nodes); err != nil {
			return err
		}
	}
	return nil
}

// Field groups for the per-kind "no superfluous fields" check.
const (
	fieldItems = 1 << iota
	fieldWhere
	fieldCounts
	fieldOf
	fieldJoin
)

// onlyFields rejects the spec when any field outside the allowed groups is
// set, so e.g. an "all_items" leaf carrying operands is caught early rather
// than silently ignored.
func (q *QuerySpec) onlyFields(allowed int) error {
	switch {
	case allowed&fieldItems == 0 && len(q.Items) != 0:
		return fmt.Errorf("%w: items is not valid for kind %q", ErrBadQuerySpec, q.Kind)
	case allowed&fieldWhere == 0 && q.Where != nil:
		return fmt.Errorf("%w: where is not valid for kind %q", ErrBadQuerySpec, q.Kind)
	case allowed&fieldCounts == 0 && (q.MinCount != 0 || q.MaxCount != 0):
		return fmt.Errorf("%w: min_count/max_count are not valid for kind %q", ErrBadQuerySpec, q.Kind)
	case allowed&fieldOf == 0 && len(q.Of) != 0:
		return fmt.Errorf("%w: of is not valid for kind %q", ErrBadQuerySpec, q.Kind)
	case allowed&fieldJoin == 0 && (q.Dataset != "" || q.On != nil):
		return fmt.Errorf("%w: dataset/on are not valid for kind %q", ErrBadQuerySpec, q.Kind)
	}
	return nil
}

// Resolver turns (dataset, spec) into query answers. The serving layer
// injects an implementation backed by its dataset catalog; monotonic reports
// whether the resolved queries form a monotonic list (true for counting
// queries), letting the mechanisms use the halved noise scale.
type Resolver interface {
	Resolve(dataset string, spec *QuerySpec) (answers []float64, monotonic bool, err error)
}

// ResolveRequest fills a dataset-backed request's answers in place, through
// r. It is a no-op for requests with inline answers, so the executing layer
// calls it unconditionally between decode and Validate. A request that names
// a dataset must carry a query spec and no inline answers; violations return
// ErrBadQuerySpec, and r's errors (e.g. an unknown dataset) pass through
// unwrapped so callers can classify them.
func ResolveRequest(req Request, r Resolver) error {
	c := req.Base()
	switch {
	case c.Dataset == "" && c.Queries == nil:
		return nil
	case c.Dataset == "":
		return fmt.Errorf("%w: a query spec needs a dataset name", ErrBadQuerySpec)
	case c.Queries == nil:
		return fmt.Errorf("%w: dataset %q given without a query spec", ErrBadQuerySpec, c.Dataset)
	case len(c.Answers) != 0:
		return fmt.Errorf("%w: request carries both inline answers and dataset %q", ErrBadQuerySpec, c.Dataset)
	case r == nil:
		return fmt.Errorf("%w: this caller serves no datasets", ErrBadQuerySpec)
	}
	if err := c.Queries.Validate(); err != nil {
		return err
	}
	answers, monotonic, err := r.Resolve(c.Dataset, c.Queries)
	if err != nil {
		return err
	}
	c.Answers = answers
	// Counting queries are monotonic whether or not the client said so;
	// never downgrade an explicitly monotonic request.
	c.Monotonic = c.Monotonic || monotonic
	return nil
}
