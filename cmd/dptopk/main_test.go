package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	f, err := os.Create(filepath.Join(t.TempDir(), "stdout"))
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	defer func() { os.Stdout = old }()
	runErr := fn()
	f.Close()
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunSyntheticSelectOnly(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-synthetic", "bmspos", "-scale", "500", "-k", "3", "-eps", "50", "-seed", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "noisy gap to next") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "privacy budget spent") {
		t.Fatalf("missing budget line:\n%s", out)
	}
	// 3 selections + header + budget line.
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 5 {
		t.Fatalf("expected 5 output lines, got %d:\n%s", len(lines), out)
	}
}

func TestRunWithMeasure(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-synthetic", "kosarak", "-scale", "2000", "-k", "4", "-eps", "100", "-measure"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "estimated count") {
		t.Fatalf("missing estimate column:\n%s", out)
	}
}

func TestRunFromFIMIFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "toy.dat")
	content := "0 1 2\n0 1\n0\n0 3\n0 1 2 3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"-data", path, "-k", "2", "-eps", "80"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Item 0 appears in all 5 transactions and must be rank 1 at eps=80.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[1], "1") || !strings.Contains(lines[1], "\t0\t") && !strings.Contains(lines[1], " 0 ") {
		// tabwriter output uses spaces; just check the rank-1 row mentions item 0.
		if !strings.Contains(lines[1], "0") {
			t.Fatalf("rank-1 row should be item 0:\n%s", out)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing data source accepted")
	}
	if err := run([]string{"-data", "x", "-synthetic", "bmspos"}); err == nil {
		t.Fatal("both data sources accepted")
	}
	if err := run([]string{"-synthetic", "nope"}); err == nil {
		t.Fatal("unknown synthetic dataset accepted")
	}
	if err := run([]string{"-synthetic", "bmspos", "-scale", "500", "-k", "0"}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := run([]string{"-data", "/does/not/exist"}); err == nil {
		t.Fatal("missing file accepted")
	}
}
