// Command dpserver runs the multi-tenant differentially private query
// service: a long-lived HTTP/JSON server exposing the library's free-gap
// mechanisms to remote clients, each drawing from its own privacy budget.
//
// Usage:
//
//	dpserver -addr :8080 -budget 10 -workers 8
//	dpserver -addr :8080 -seed 42 -workers 1   # fully deterministic (testing)
//
// Endpoints (one per mechanism registered in the engine, plus operations):
//
//	POST /v1/topk                  Noisy-Top-K-with-Gap selection
//	POST /v1/max                   Noisy-Max-with-Gap
//	POST /v1/svt                   (Adaptive-)Sparse-Vector-with-Gap
//	POST /v1/pipeline/topk         Section 5.2 select–measure–refine pipeline
//	POST /v1/pipeline/svt          Section 6.2 threshold pipeline
//	POST /v1/batch                 batched requests, one atomic multi-charge
//	GET  /v1/tenants/{id}/budget   a tenant's budget ledger with breakdown
//	GET  /healthz                  liveness
//	GET  /metrics                  Prometheus text exposition
//
// Example request:
//
//	curl -s localhost:8080/v1/topk -d '{
//	  "tenant": "acme", "k": 3, "epsilon": 1.0, "monotonic": true,
//	  "answers": [812, 641, 633, 601, 425, 124, 77, 8]
//	}'
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	freegap "github.com/freegap/freegap"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dpserver:", err)
		os.Exit(1)
	}
}

func parseConfig(args []string) (freegap.ServerConfig, error) {
	fs := flag.NewFlagSet("dpserver", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		budget     = fs.Float64("budget", 10.0, "initial privacy budget (epsilon) provisioned to each tenant")
		workers    = fs.Int("workers", 0, "mechanism worker pool size (0 = GOMAXPROCS)")
		seed       = fs.Uint64("seed", 0, "noise seed; 0 draws a fresh seed from crypto/rand, a fixed value with -workers 1 is deterministic")
		maxAns     = fs.Int("max-answers", 0, "maximum answers per request (0 = default)")
		maxBody    = fs.Int64("max-body", 0, "maximum request body bytes (0 = default)")
		maxTenants = fs.Int("max-tenants", 0, "maximum auto-provisioned tenants (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return freegap.ServerConfig{}, err
	}
	if fs.NArg() > 0 {
		return freegap.ServerConfig{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return freegap.ServerConfig{
		Addr:         *addr,
		TenantBudget: *budget,
		Workers:      *workers,
		Seed:         *seed,
		MaxAnswers:   *maxAns,
		MaxBodyBytes: *maxBody,
		MaxTenants:   *maxTenants,
	}, nil
}

// run builds the server from args and serves until ctx is cancelled, then
// shuts down gracefully. The actual listen address is announced on out so
// callers binding to ":0" can discover the port.
func run(ctx context.Context, args []string, out *os.File) error {
	cfg, err := parseConfig(args)
	if err != nil {
		return err
	}
	srv, err := freegap.NewServer(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "dpserver listening on %s (per-tenant budget ε=%g, %d workers)\n",
		ln.Addr(), srv.Config().TenantBudget, srv.Config().Workers)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		srv.Close()
		return err
	case <-ctx.Done():
		fmt.Fprintln(out, "dpserver: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
