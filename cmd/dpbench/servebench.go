package main

// The servebench experiment: the server-side parallel benchmark scenarios
// (internal/server's BenchmarkServerParallelManyTenants) runnable from the
// command line. It drives the real HTTP handler in-process — no TCP, so the
// numbers isolate the serving hot path: decode → resolve → validate →
// charge → pool-execute → encode — with -parallel client goroutines spread
// round-robin over -tenants tenant budgets, in both the inline-answers and
// the dataset-resolved trust models.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/freegap/freegap/internal/server"
	"github.com/freegap/freegap/internal/store"
)

// latHist is an HDR-style client-side latency histogram: 24 base-2 octaves
// from 1µs up, each split into 32 linear sub-buckets, so quantile estimates
// carry ~3% relative error across the whole range at a fixed 768-counter
// footprint. Atomic counters let every client goroutine observe lock-free.
type latHist struct {
	counts [latOctaves * latSubBuckets]atomic.Uint64
	over   atomic.Uint64
	n      atomic.Uint64
}

const (
	latOctaves    = 24 // 1µs .. ~8.4s
	latSubBuckets = 32
)

func (h *latHist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	if us < 1 {
		us = 1
	}
	h.n.Add(1)
	e := bits.Len64(us) - 1
	if e >= latOctaves {
		h.over.Add(1)
		return
	}
	sub := (us - 1<<e) * latSubBuckets >> e
	h.counts[e*latSubBuckets+int(sub)].Add(1)
}

// quantile returns the upper bound of the sub-bucket holding the q-quantile.
func (h *latHist) quantile(q float64) time.Duration {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			e, sub := i/latSubBuckets, i%latSubBuckets
			lo := float64(uint64(1) << e)
			us := lo * (1 + float64(sub+1)/latSubBuckets)
			return time.Duration(us * float64(time.Microsecond))
		}
	}
	return time.Duration(1) << latOctaves * time.Microsecond
}

// serveBenchConfig parameterizes one servebench run.
type serveBenchConfig struct {
	// Parallel is the number of concurrent client goroutines.
	Parallel int
	// Tenants is the number of distinct tenant budgets the clients spread
	// over.
	Tenants int
	// Requests is the total request count per scenario.
	Requests int
	// Seed seeds the server's noise sources.
	Seed uint64
	// CSV selects comma-separated output instead of the aligned table.
	CSV bool
}

func (c serveBenchConfig) withDefaults() serveBenchConfig {
	if c.Parallel <= 0 {
		c.Parallel = runtime.GOMAXPROCS(0)
	}
	if c.Tenants <= 0 {
		c.Tenants = 64
	}
	if c.Requests <= 0 {
		c.Requests = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// serveBenchResult is one scenario's outcome.
type serveBenchResult struct {
	Scenario  string
	Requests  int
	Elapsed   time.Duration
	OpsPerSec float64
	// P50/P95/P99 are client-side request latency quantiles.
	P50, P95, P99 time.Duration
	// BPerOp/AllocsPerOp are the process-wide heap bytes and allocations per
	// request, from the runtime.MemStats delta across the scenario. They
	// include the httptest client harness, so treat them as an upper bound
	// on the serving path's allocation cost.
	BPerOp, AllocsPerOp float64
}

// runServeBench runs both scenarios and writes the report to stdout.
func runServeBench(cfg serveBenchConfig) error {
	cfg = cfg.withDefaults()
	const benchBudget = 1e18
	answers := make([]float64, 256)
	for i := range answers {
		answers[i] = float64((i*2654435761)%10000) / 3
	}

	inlineBodies := make([][]byte, cfg.Tenants)
	resolvedBodies := make([][]byte, cfg.Tenants)
	for t := 0; t < cfg.Tenants; t++ {
		tenant := fmt.Sprintf("tenant-%03d", t)
		body, err := json.Marshal(map[string]any{
			"tenant": tenant, "epsilon": 0.01, "answers": answers, "monotonic": true, "k": 5,
		})
		if err != nil {
			return err
		}
		inlineBodies[t] = body
		resolvedBodies[t] = []byte(fmt.Sprintf(
			`{"tenant":%q,"epsilon":0.01,"k":5,"dataset":"pos","queries":{"kind":"all_items"}}`, tenant))
	}

	scenario := func(name string, bodies [][]byte, withDataset bool) (serveBenchResult, error) {
		s, err := server.New(server.Config{TenantBudget: benchBudget, Seed: cfg.Seed})
		if err != nil {
			return serveBenchResult{}, err
		}
		defer s.Close()
		if withDataset {
			db, err := store.GenerateSynthetic("bmspos", 200, 7)
			if err != nil {
				return serveBenchResult{}, err
			}
			if _, err := s.RegisterDataset("pos", "synthetic:bmspos", db); err != nil {
				return serveBenchResult{}, err
			}
		}
		h := s.Handler()
		var next atomic.Int64
		var failed atomic.Int64
		var lat latHist
		// The MemStats delta across the run yields bytes/allocs per request;
		// collect first so the previous scenario's garbage is not billed here.
		runtime.GC()
		var memBefore runtime.MemStats
		runtime.ReadMemStats(&memBefore)
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < cfg.Parallel; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				i := g
				for {
					n := next.Add(1)
					if n > int64(cfg.Requests) {
						return
					}
					body := bodies[i%len(bodies)]
					i++
					req := httptest.NewRequest(http.MethodPost, "/v1/topk", bytes.NewReader(body))
					w := httptest.NewRecorder()
					t0 := time.Now()
					h.ServeHTTP(w, req)
					lat.observe(time.Since(t0))
					if w.Code != http.StatusOK {
						failed.Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		if n := failed.Load(); n > 0 {
			return serveBenchResult{}, fmt.Errorf("servebench %s: %d of %d requests failed", name, n, cfg.Requests)
		}
		return serveBenchResult{
			Scenario:    name,
			Requests:    cfg.Requests,
			Elapsed:     elapsed,
			OpsPerSec:   float64(cfg.Requests) / elapsed.Seconds(),
			P50:         lat.quantile(0.50),
			P95:         lat.quantile(0.95),
			P99:         lat.quantile(0.99),
			BPerOp:      float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(cfg.Requests),
			AllocsPerOp: float64(memAfter.Mallocs-memBefore.Mallocs) / float64(cfg.Requests),
		}, nil
	}

	results := make([]serveBenchResult, 0, 2)
	for _, sc := range []struct {
		name        string
		bodies      [][]byte
		withDataset bool
	}{
		{"inline", inlineBodies, false},
		{"resolved", resolvedBodies, true},
	} {
		res, err := scenario(sc.name, sc.bodies, sc.withDataset)
		if err != nil {
			return err
		}
		results = append(results, res)
	}

	if cfg.CSV {
		fmt.Fprintf(os.Stdout, "scenario,parallel,tenants,requests,elapsed_ms,ops_per_sec,p50_us,p95_us,p99_us,b_per_op,allocs_per_op\n")
		for _, r := range results {
			fmt.Fprintf(os.Stdout, "%s,%d,%d,%d,%.3f,%.1f,%.1f,%.1f,%.1f,%.1f,%.2f\n",
				r.Scenario, cfg.Parallel, cfg.Tenants, r.Requests,
				float64(r.Elapsed.Microseconds())/1000, r.OpsPerSec,
				float64(r.P50.Nanoseconds())/1e3, float64(r.P95.Nanoseconds())/1e3,
				float64(r.P99.Nanoseconds())/1e3, r.BPerOp, r.AllocsPerOp)
		}
		return nil
	}
	fmt.Fprintf(os.Stdout, "servebench: parallel server hot path (GOMAXPROCS=%d, %d clients, %d tenants)\n",
		runtime.GOMAXPROCS(0), cfg.Parallel, cfg.Tenants)
	fmt.Fprintf(os.Stdout, "%-10s %10s %12s %12s %10s %10s %10s %10s %10s\n",
		"scenario", "requests", "elapsed", "ops/sec", "p50", "p95", "p99", "B/op", "allocs/op")
	for _, r := range results {
		fmt.Fprintf(os.Stdout, "%-10s %10d %12s %12.1f %10s %10s %10s %10.0f %10.1f\n",
			r.Scenario, r.Requests, r.Elapsed.Round(time.Millisecond), r.OpsPerSec,
			r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond),
			r.BPerOp, r.AllocsPerOp)
	}
	return nil
}
