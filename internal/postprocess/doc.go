// Package postprocess implements the estimators that consume the free gap
// information released by the mechanisms in internal/core:
//
//   - the best linear unbiased estimator (BLUE) of the top-k query answers
//     from independent noisy measurements plus the adjacent gaps
//     (Theorem 3 and its linear-time form, with the error-reduction ratio of
//     Corollary 1);
//   - inverse-variance combination of a Sparse-Vector gap estimate (gap +
//     threshold) with an independent noisy measurement (Section 6.2), together
//     with the theoretical improvement ratios quoted there;
//   - the lower confidence bound on gap estimates from Lemma 5, including its
//     numeric inversion (find t such that P(ηᵢ − η ≥ −t) reaches a target
//     confidence).
//
// Everything in this package is pure post-processing: by the post-processing
// property of differential privacy it consumes no additional privacy budget.
package postprocess
