package telemetry

// Latency histograms for the serving hot path. Like Counter and Gauge, a
// Histogram is striped over cache-line-padded cells picked by the calling
// goroutine's stack address, so concurrent observers on different cores
// almost never bounce a cache line between them; the /metrics scrape sums
// the cells. Buckets are fixed at construction — exponential base-2 bounds
// from 1µs to ~8.4s — which keeps an observation a handful of atomic adds
// with no allocation, comparison loop, or lock.

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// numHistBuckets is the number of finite buckets; bucket i has upper bound
// 2^i microseconds, so the bounds run 1µs, 2µs, 4µs, … ~8.4s. Observations
// beyond the last bound land in the implicit +Inf bucket.
const numHistBuckets = 24

// histBounds holds the bucket upper bounds in seconds, and histBoundLabels
// their Prometheus le label values, both precomputed once.
var (
	histBounds      [numHistBuckets]float64
	histBoundLabels [numHistBuckets]string
)

func init() {
	for i := 0; i < numHistBuckets; i++ {
		histBounds[i] = float64(uint64(1)<<i) / 1e6
		histBoundLabels[i] = strconv.FormatFloat(histBounds[i], 'g', -1, 64)
	}
}

// histCell is one padded stripe cell: per-bucket counts plus the running
// nanosecond sum and observation count. The trailing pad rounds the cell to
// a cache-line multiple so adjacent cells never share a line.
type histCell struct {
	counts [numHistBuckets + 1]atomic.Uint64 // counts[numHistBuckets] is +Inf
	sum    atomic.Int64                      // total observed nanoseconds
	count  atomic.Uint64
	_      [histCellPad]byte
}

// histCellPad rounds histCell up to the next cache-line multiple.
const histCellPad = (cellBytes - (numHistBuckets+3)*8%cellBytes) % cellBytes

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
// Create instances with NewHistogram or CounterSet.Histogram (the zero value
// is not usable — the stripe is sized at construction).
type Histogram struct {
	cells []histCell
}

// NewHistogram returns a striped latency histogram with the package's fixed
// exponential bucket layout.
func NewHistogram() *Histogram { return &Histogram{cells: make([]histCell, numCells)} }

// bucketIndex maps a duration to its bucket: the smallest i with
// d <= 2^i µs, or numHistBuckets for observations past the last bound.
func bucketIndex(d time.Duration) int {
	ns := int64(d)
	if ns <= 1000 {
		return 0
	}
	// Ceil to whole microseconds, then the bucket is the bit length of
	// (µs − 1): 2µs → 1, 3µs → 2, 4µs → 2, 5µs → 3, …
	us := uint64(ns+999) / 1000
	i := bits.Len64(us - 1)
	if i > numHistBuckets {
		return numHistBuckets
	}
	return i
}

// Observe records one latency observation. Negative durations are clamped
// to zero (a clock anomaly should not corrupt the sum).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c := &h.cells[cellIndex(len(h.cells))]
	c.counts[bucketIndex(d)].Add(1)
	c.sum.Add(int64(d))
	c.count.Add(1)
}

// Snapshot returns the cumulative bucket counts (last entry is the +Inf
// bucket, equal to the total count), the summed observation time, and the
// observation count, summed over the stripe cells.
func (h *Histogram) Snapshot() (cumulative [numHistBuckets + 1]uint64, sum time.Duration, count uint64) {
	var raw [numHistBuckets + 1]uint64
	var sumNs int64
	for i := range h.cells {
		c := &h.cells[i]
		for b := range raw {
			raw[b] += c.counts[b].Load()
		}
		sumNs += c.sum.Load()
		count += c.count.Load()
	}
	var cum uint64
	for b, n := range raw {
		cum += n
		cumulative[b] = cum
	}
	return cumulative, time.Duration(sumNs), count
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.cells {
		total += h.cells[i].count.Load()
	}
	return total
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	var ns int64
	for i := range h.cells {
		ns += h.cells[i].sum.Load()
	}
	return time.Duration(ns)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) of the
// observed distribution: the upper bound of the bucket the quantile falls
// in (+Inf reports the last finite bound). It is a scrape-side convenience
// for tests and CLIs, not a hot-path operation.
func (h *Histogram) Quantile(q float64) float64 {
	cum, _, count := h.Snapshot()
	if count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(count)))
	if rank == 0 {
		rank = 1
	}
	for b, c := range cum {
		if c >= rank {
			if b >= numHistBuckets {
				break
			}
			return histBounds[b]
		}
	}
	return histBounds[numHistBuckets-1]
}

// writeHistogram renders one histogram series block in the Prometheus text
// exposition format: cumulative name_bucket lines with an le label appended
// to the series labels, then name_sum and name_count.
func writeHistogram(w io.Writer, key string, h *Histogram) error {
	cum, sum, count := h.Snapshot()
	name, labels := splitSeriesKey(key)
	for b, c := range cum {
		le := "+Inf"
		if b < numHistBuckets {
			le = histBoundLabels[b]
		}
		if err := writeBucketLine(w, name, labels, le, c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(sum.Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
	return err
}

func writeBucketLine(w io.Writer, name, labels, le string, c uint64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, c)
		return err
	}
	// labels is "{k=\"v\",...}": splice the le pair before the closing brace.
	_, err := fmt.Fprintf(w, "%s_bucket%s,le=%q} %d\n", name, labels[:len(labels)-1], le, c)
	return err
}

// splitSeriesKey splits a series key into its bare name and the literal
// label block (including braces), which is empty for unlabelled series.
func splitSeriesKey(key string) (name, labels string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '{' {
			return key[:i], key[i:]
		}
	}
	return key, ""
}

// formatFloat renders a float metric value in the Prometheus text format.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// FloatGauge is a float-valued gauge for administratively-sampled values
// (e.g. a tenant's remaining ε, sampled at scrape time). It is a single
// atomic word — sampled values are written by one scraper at a time, so the
// contention-relieving stripe of Counter/Gauge would buy nothing here. The
// zero value is ready to use.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
