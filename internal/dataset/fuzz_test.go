package dataset

import (
	"strings"
	"testing"
)

// FuzzReadFIMI drives the untrusted-upload parser with arbitrary bytes. The
// parser must never panic — the upload endpoint feeds it attacker-chosen
// request bodies — and every accepted parse must satisfy the limits it was
// given and the Transactions invariants. The seed corpus covers the
// historical panic (an item id above MaxInt32 silently overflowed the int32
// conversion and panicked the constructor) plus the format's edge shapes.
func FuzzReadFIMI(f *testing.F) {
	for _, seed := range []string{
		"",
		"\n\n",
		"1 2 3\n4 5\n",
		"0\n",
		"  7   8  \n",
		"1 1 1\n",
		"a b\n",
		"-1\n",
		"3000000000\n",          // > MaxInt32: overflowed to a negative int32 and panicked
		"9223372036854775807\n", // MaxInt64
		"99999999999999999999\n",
		"1\x002\n",
		"1,2,3\n",
		strings.Repeat("5 ", 100) + "\n",
		"65535\n0\n65535\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		lim := FIMILimits{MaxRecords: 1024, MaxItemID: 1 << 16}
		db, err := ReadFIMILimited(strings.NewReader(data), "fuzz", lim)
		if err == nil {
			if db.NumRecords() > lim.MaxRecords {
				t.Fatalf("parsed %d records past the %d limit", db.NumRecords(), lim.MaxRecords)
			}
			if db.NumItems() > int(lim.MaxItemID)+1 {
				t.Fatalf("item universe %d past the limit %d", db.NumItems(), lim.MaxItemID+1)
			}
			counts := db.ItemCounts()
			if len(counts) != db.NumItems() {
				t.Fatalf("ItemCounts length %d != NumItems %d", len(counts), db.NumItems())
			}
			for i, c := range counts {
				if c < 0 || c > float64(db.NumRecords()) {
					t.Fatalf("counts[%d] = %v outside [0, %d]", i, c, db.NumRecords())
				}
			}
		}

		// The unlimited parse (trusted-file path) must not panic either —
		// this is the configuration that used to overflow. Item universes
		// here can be huge, so only cheap invariants are checked.
		if db, err := ReadFIMILimited(strings.NewReader(data), "fuzz", FIMILimits{}); err == nil {
			if db.NumItems() < 0 {
				t.Fatalf("negative item universe %d", db.NumItems())
			}
		}
	})
}
