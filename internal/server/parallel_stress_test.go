package server

// Multi-core write-path stress: per-dataset write domains must let appends
// to different datasets proceed concurrently (the PR-9 global stream lock
// serialized them), while each dataset's own journal → install → deliver
// order — and therefore its crash-recovered counts and verdict history —
// stays exactly sequential. Run under -race these tests also check the
// prepare-outside-the-lock append build and the block-parallel query scans
// against the RCU generation swap.

import (
	"fmt"
	"net/http"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/freegap/freegap/internal/engine"
)

// distinctDomainNames returns two dataset names that hash to different write
// domains (the second is searched for, so the test cannot rot if the hash
// changes).
func distinctDomainNames(t *testing.T, s *Server) (string, string) {
	t.Helper()
	a := "alpha"
	for i := 0; i < 10*numStreamDomains; i++ {
		b := fmt.Sprintf("bravo%d", i)
		if s.domain(b) != s.domain(a) {
			return a, b
		}
	}
	t.Fatal("no dataset name found hashing to a different domain")
	return "", ""
}

// TestAppendsToDistinctDatasetsDoNotSerialize pins the tentpole claim
// directly: holding one dataset's write domain (a stalled append, a slow
// journal drain) must not block an append to a dataset in another domain.
// Under the old global streamMu this test would time out.
func TestAppendsToDistinctDatasetsDoNotSerialize(t *testing.T) {
	s, ts := newTestServer(t, Config{TenantBudget: 10})
	a, b := distinctDomainNames(t, s)
	for _, name := range []string{a, b} {
		if _, err := s.RegisterDataset(name, "test", bigTestDataset(64)); err != nil {
			t.Fatalf("RegisterDataset(%s): %v", name, err)
		}
	}

	// Wedge a's domain, as a stalled append to a would.
	d := s.domain(a)
	d.mu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, data := postJSON(t, ts.URL+"/v1/datasets/"+b+"/append",
			DatasetAppendRequest{FIMI: "1 2\n"})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("append to %s: %d %s", b, resp.StatusCode, data)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		d.mu.Unlock()
		t.Fatal("append to a different domain blocked behind a wedged dataset: cross-dataset serialization")
	}
	d.mu.Unlock()

	// And the wedged dataset serves normally once released.
	if resp, data := postJSON(t, ts.URL+"/v1/datasets/"+a+"/append",
		DatasetAppendRequest{FIMI: "1 2\n"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("append to %s after release: %d %s", a, resp.StatusCode, data)
	}
}

// TestParallelStressAcrossDatasetsWithCrashRecovery interleaves concurrent
// appends to *different* datasets with monitor deliveries and filter queries
// (the scans are big enough to take the block-parallel path), then kill-9s
// the server and checks that every dataset recovers byte-identical counts
// and a byte-identical verdict history, and that each dataset's append
// sequence numbers came out exactly 1..N with no gap or duplicate.
func TestParallelStressAcrossDatasetsWithCrashRecovery(t *testing.T) {
	const (
		numDatasets = 4
		appenders   = 2
		iters       = 12
		baseRecords = 9_000 // past DefaultMinParallelRecords: queries fan out
	)
	dir := t.TempDir()
	s, ts := newPersistentServer(t, dir, 1e9)

	names := make([]string, numDatasets)
	monIDs := make([]string, numDatasets)
	for i := range names {
		names[i] = fmt.Sprintf("stress%d", i)
		upload := DatasetUploadRequest{Name: names[i], FIMI: fimiRepeat(fmt.Sprintf("%d 1", i), baseRecords)}
		if resp, data := postJSON(t, ts.URL+"/v1/datasets", upload); resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: %d %s", names[i], resp.StatusCode, data)
		}
		// Threshold far above reach: every verdict stays below, so the
		// monitor never retires and answers once per append.
		create := MonitorCreateRequest{
			Tenant: "acme", Dataset: names[i], Item: 1,
			Threshold: 1e9, Epsilon: 0.5, MaxAnswers: 1, Seed: uint64(i + 1),
		}
		resp, data := postJSON(t, ts.URL+"/v1/monitors", create)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("monitor on %s: %d %s", names[i], resp.StatusCode, data)
		}
		monIDs[i] = decodeInto[MonitorCreateResponse](t, data).ID
	}

	var mu sync.Mutex
	seqs := make(map[string][]uint64)
	var wg sync.WaitGroup
	for ds := 0; ds < numDatasets; ds++ {
		for w := 0; w < appenders; w++ {
			wg.Add(1)
			go func(ds, w int) {
				defer wg.Done()
				name := names[ds]
				for i := 0; i < iters; i++ {
					resp, data := postJSON(t, ts.URL+"/v1/datasets/"+name+"/append",
						DatasetAppendRequest{FIMI: fimiRepeat(fmt.Sprintf("%d", (w*31+i)%97), 3)})
					if resp.StatusCode != http.StatusOK {
						t.Errorf("append %s: %d %s", name, resp.StatusCode, data)
						return
					}
					ar := decodeInto[DatasetAppendResponse](t, data)
					mu.Lock()
					seqs[name] = append(seqs[name], ar.Seq)
					mu.Unlock()
				}
			}(ds, w)
		}
	}
	// Filter queries over the big datasets exercise the parallel scan path
	// while generations swap underneath.
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				body := TopKRequest{Common: Common{Tenant: "query", Epsilon: 0.01, Monotonic: true,
					Dataset: names[(q+i)%numDatasets],
					Queries: &QuerySpec{Kind: "filter", Where: &engine.RecordPredicate{MinLen: 1}}}, K: 3}
				resp, data := postJSON(t, ts.URL+"/v1/topk", body)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query: %d %s", resp.StatusCode, data)
					return
				}
			}
		}(q)
	}
	// Live SSE subscribers ride along while the appends fan verdicts out.
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			readSSEVerdicts(t, ts.URL+"/v1/monitors/"+monIDs[m]+"/stream", 3, 30*time.Second)
		}(m)
	}
	wg.Wait()

	// Each dataset's sequence numbers must be exactly 1..N: per-dataset
	// ordering survived cross-dataset concurrency.
	totalAppends := appenders * iters
	for _, name := range names {
		got := append([]uint64(nil), seqs[name]...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != totalAppends {
			t.Fatalf("%s: %d append responses, want %d", name, len(got), totalAppends)
		}
		for i, sq := range got {
			if sq != uint64(i)+1 {
				t.Fatalf("%s: seqs not contiguous from 1: %v", name, got)
			}
		}
	}

	// Snapshot the pre-crash truth.
	wantCounts := make(map[string][]float64)
	wantRecords := make(map[string]int)
	wantHistory := make(map[string][]string)
	verdictsPerMonitor := 1 + totalAppends // registration + one per append
	for i, name := range names {
		e, err := s.Datasets().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		wantCounts[name] = append([]float64(nil), e.ResolveAll()...)
		wantRecords[name] = e.Info().Records
		wantHistory[name] = readSSEVerdicts(t, ts.URL+"/v1/monitors/"+monIDs[i]+"/stream",
			verdictsPerMonitor, 20*time.Second)
	}

	crash(t, s, ts)

	s2, ts2 := newPersistentServer(t, dir, 1e9)
	for i, name := range names {
		e, err := s2.Datasets().Get(name)
		if err != nil {
			t.Fatalf("%s not restored: %v", name, err)
		}
		if got := e.Info().Records; got != wantRecords[name] {
			t.Errorf("%s: restored records = %d, want %d", name, got, wantRecords[name])
		}
		if got := e.ResolveAll(); !reflect.DeepEqual(got, wantCounts[name]) {
			t.Errorf("%s: restored counts diverged from the pre-crash vector", name)
		}
		gotHistory := readSSEVerdicts(t, ts2.URL+"/v1/monitors/"+monIDs[i]+"/stream",
			verdictsPerMonitor, 20*time.Second)
		if !reflect.DeepEqual(gotHistory, wantHistory[name]) {
			t.Errorf("%s: verdict history not replayed byte-identically", name)
		}
	}
}
