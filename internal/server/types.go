package server

// Request and response bodies of the dpserver HTTP/JSON API. The mechanism
// request/response types live in internal/engine next to the mechanisms that
// define them; they are aliased here so API consumers (tests, clients) can
// keep importing them from the serving layer. Every request names a tenant;
// the server charges that tenant's privacy accountant atomically before the
// mechanism runs, so concurrent clients of the same tenant can never jointly
// overspend the budget.

import (
	"encoding/json"

	"github.com/freegap/freegap/internal/engine"
	"github.com/freegap/freegap/internal/store"
)

// Mechanism request/response bodies, defined by the engine.
type (
	// Common holds the request fields shared by every mechanism request.
	Common = engine.Common
	// TopKRequest is the body of POST /v1/topk.
	TopKRequest = engine.TopKRequest
	// SelectionJSON is one selected query in a TopKResponse.
	SelectionJSON = engine.SelectionJSON
	// TopKResponse is the body of a successful POST /v1/topk.
	TopKResponse = engine.TopKResponse
	// MaxRequest is the body of POST /v1/max (the k = 1 special case).
	MaxRequest = engine.MaxRequest
	// MaxResponse is the body of a successful POST /v1/max.
	MaxResponse = engine.MaxResponse
	// SVTRequest is the body of POST /v1/svt.
	SVTRequest = engine.SVTRequest
	// SVTAnswerJSON is one above-threshold answer in an SVTResponse.
	SVTAnswerJSON = engine.SVTAnswerJSON
	// SVTResponse is the body of a successful POST /v1/svt.
	SVTResponse = engine.SVTResponse
	// PipelineTopKRequest is the body of POST /v1/pipeline/topk.
	PipelineTopKRequest = engine.PipelineTopKRequest
	// PipelineTopKResponse is the body of a successful POST /v1/pipeline/topk.
	PipelineTopKResponse = engine.PipelineTopKResponse
	// PipelineSVTRequest is the body of POST /v1/pipeline/svt.
	PipelineSVTRequest = engine.PipelineSVTRequest
	// PipelineSVTResponse is the body of a successful POST /v1/pipeline/svt.
	PipelineSVTResponse = engine.PipelineSVTResponse
)

// BatchItem is one entry of a BatchRequest: the name of a registered
// mechanism plus its request body. The inner request may leave the tenant
// empty (the batch tenant pays) but must not name a different tenant.
type BatchItem struct {
	// Mechanism is the registered mechanism name, e.g. "topk" or
	// "pipeline/svt".
	Mechanism string `json:"mechanism"`
	// Request is the mechanism's request body.
	Request json.RawMessage `json:"request"`
}

// BatchRequest is the body of POST /v1/batch: up to MaxBatch mechanism
// requests executed in one round trip and paid for with a single atomic
// multi-charge — either every item's ε is reserved, or (when the total would
// exceed the tenant's remaining budget) none is and the whole batch fails
// with a 402. A batch can therefore never overspend what the same requests
// issued serially could.
type BatchRequest struct {
	// Tenant identifies whose privacy budget pays for every item.
	Tenant string `json:"tenant"`
	// Requests are the batched mechanism requests, executed concurrently.
	Requests []BatchItem `json:"requests"`
}

// BatchItemResult is one entry of a BatchResponse: exactly one of Response
// and Error is set.
type BatchItemResult struct {
	// Mechanism echoes the item's mechanism name.
	Mechanism string `json:"mechanism"`
	// Response is the mechanism's response body on success.
	Response any `json:"response,omitempty"`
	// Error reports an execution failure of this item alone. The item's ε
	// stays charged — the reservation was admitted before execution, and
	// refunding would let a client probe for free.
	Error *ErrorBody `json:"error,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/batch.
type BatchResponse struct {
	Tenant string `json:"tenant"`
	// Results lists one result per request, in request order.
	Results []BatchItemResult `json:"results"`
	// EpsilonSpent is the total ε charged for the batch.
	EpsilonSpent float64 `json:"epsilon_spent"`
	// BudgetRemaining is the tenant's unspent budget after the batch.
	BudgetRemaining float64 `json:"budget_remaining"`
	// Trace is the batch's stage-timing breakdown, present only when the
	// request opted in with ?trace=1.
	Trace *TraceJSON `json:"trace,omitempty"`
}

// QuerySpec is the counting-query spec of a dataset-backed mechanism
// request, defined by the engine.
type QuerySpec = engine.QuerySpec

// DatasetInfo summarises one catalogued dataset, as returned by the dataset
// endpoints.
type DatasetInfo = store.Info

// DatasetUploadRequest is the body of POST /v1/datasets: exactly one of FIMI
// (inline transaction data) and Synthetic (a calibrated generator) must be
// set. The registered dataset is immutable; its item counts are precomputed
// once so dataset-backed queries never rescan it.
type DatasetUploadRequest struct {
	// Name is the catalog key the dataset is registered and queried under.
	Name string `json:"name"`
	// FIMI is the transaction data in the FIMI text format: one transaction
	// per line, space-separated non-negative item ids.
	FIMI string `json:"fimi,omitempty"`
	// Synthetic generates one of the paper's calibrated synthetic stand-ins
	// instead of parsing uploaded data.
	Synthetic *SyntheticSpec `json:"synthetic,omitempty"`
}

// SyntheticSpec names a synthetic dataset generator.
type SyntheticSpec struct {
	// Kind is "bmspos", "kosarak" or "t40i10d100k".
	Kind string `json:"kind"`
	// Scale divides the generated transaction count (<= 1 means full size).
	Scale int `json:"scale,omitempty"`
	// Seed seeds the generator (0 picks a fixed default).
	Seed uint64 `json:"seed,omitempty"`
}

// DatasetListResponse is the body of GET /v1/datasets.
type DatasetListResponse struct {
	// Datasets lists every catalogued dataset in name order.
	Datasets []DatasetInfo `json:"datasets"`
}

// BudgetResponse is the body of GET /v1/tenants/{id}/budget.
type BudgetResponse struct {
	Tenant string `json:"tenant"`
	// Budget is the tenant's configured total ε budget.
	Budget float64 `json:"budget"`
	// Spent is the total ε charged so far.
	Spent float64 `json:"spent"`
	// Remaining is Budget − Spent (never negative).
	Remaining float64 `json:"remaining"`
	// RemainingFraction is Remaining/Budget.
	RemainingFraction float64 `json:"remaining_fraction"`
	// Charges is the number of admitted requests.
	Charges int `json:"charges"`
	// SpentByMechanism breaks Spent down by the mechanism charged for. It is
	// served from the accountant's incrementally-maintained aggregation, so a
	// budget poll never materializes the charge log.
	SpentByMechanism map[string]float64 `json:"spent_by_mechanism"`
	// Log is the raw per-charge expenditure log, present only when the
	// request opted in with ?log=1 (copying the full log on every poll is
	// exactly the cost the default response avoids). A restored-from-snapshot
	// tenant's log may be shorter than Charges: compaction aggregates by
	// mechanism but preserves the admitted-charge count.
	Log []ChargeJSON `json:"log,omitempty"`
}

// ChargeJSON is one admitted charge in a BudgetResponse log.
type ChargeJSON struct {
	// Mechanism is the charge label (the mechanism name billed under).
	Mechanism string `json:"mechanism"`
	// Epsilon is the ε charged.
	Epsilon float64 `json:"epsilon"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	// Status is "ok", or "degraded" when the durable state log has hit an
	// I/O error (PersistError carries it): the server still serves, but new
	// charges are no longer journalled and a restart would refund them.
	Status string `json:"status"`
	// PersistError is the durable log's sticky error, when one occurred.
	PersistError string `json:"persist_error,omitempty"`
	// Tenants is the number of tenants with a live accountant.
	Tenants int `json:"tenants"`
	// Workers is the size of the mechanism worker pool.
	Workers int `json:"workers"`
	// Mechanisms lists the servable mechanism names.
	Mechanisms []string `json:"mechanisms"`
	// Datasets is the number of catalogued datasets.
	Datasets int `json:"datasets"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// WALGeneration is the durable log's current segment generation
	// (incremented by every compaction); zero on an in-memory server.
	WALGeneration uint64 `json:"wal_generation,omitempty"`
}

// Error codes used in ErrorBody.Code.
const (
	CodeInvalidRequest   = "invalid_request"
	CodeUnknownMechanism = "unknown_mechanism"
	CodeUnknownTenant    = "unknown_tenant"
	CodeUnknownDataset   = "unknown_dataset"
	CodeBadQuerySpec     = "bad_query_spec"
	CodeDatasetExists    = "dataset_exists"
	CodeBudgetExhausted  = "budget_exhausted"
	CodeTenantLimit      = "tenant_limit"
	CodeCancelled        = "cancelled"
	CodeRequestTooLarge  = "request_too_large"
	CodeUnavailable      = "unavailable"
	CodeInternal         = "internal_error"
)

// ErrorBody is the machine-readable error payload.
type ErrorBody struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// RequestID echoes the request's X-Request-ID (client-supplied or
	// generated), so a client can quote the id of a failed request without
	// having kept the response headers. Empty for per-item batch errors —
	// the batch response carries the id once.
	RequestID string `json:"request_id,omitempty"`
	// Message is a human-readable description.
	Message string `json:"message"`
	// Remaining is the tenant's remaining budget; only set for
	// budget_exhausted errors.
	Remaining *float64 `json:"remaining,omitempty"`
	// Exhausted distinguishes the two budget_exhausted flavours: true means
	// the budget is fully spent (no positive charge would fit), false means
	// this particular — possibly batched — charge exceeded a non-trivial
	// remainder. Only set for budget_exhausted errors.
	Exhausted *bool `json:"exhausted,omitempty"`
}

// ErrorEnvelope wraps every non-2xx response body.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}
