package baseline

import (
	"fmt"

	"github.com/freegap/freegap/internal/rng"
)

// ExponentialMechanism selects one item from a finite set with probability
// proportional to exp(ε·utility/(2Δ)), the selection primitive of McSherry and
// Talwar cited by the paper's related-work section. It is implemented with the
// Gumbel-max trick: adding independent Gumbel(2Δ/ε) noise to each utility and
// returning the arg-max draws from exactly the exponential-mechanism
// distribution, which keeps the implementation structurally parallel to
// Noisy Max.
type ExponentialMechanism struct {
	Epsilon     float64
	Sensitivity float64 // Δ: sensitivity of the utility scores
}

// NewExponentialMechanism validates parameters and returns the mechanism.
func NewExponentialMechanism(epsilon, sensitivity float64) (*ExponentialMechanism, error) {
	if !(epsilon > 0) {
		return nil, fmt.Errorf("baseline: epsilon %v must be positive", epsilon)
	}
	if !(sensitivity > 0) {
		return nil, fmt.Errorf("baseline: sensitivity %v must be positive", sensitivity)
	}
	return &ExponentialMechanism{Epsilon: epsilon, Sensitivity: sensitivity}, nil
}

// Select returns the index of the chosen item given per-item utilities.
func (m *ExponentialMechanism) Select(src rng.Source, utilities []float64) (int, error) {
	if len(utilities) == 0 {
		return 0, fmt.Errorf("baseline: no candidates")
	}
	scale := 2 * m.Sensitivity / m.Epsilon
	best := 0
	bestVal := utilities[0] + rng.Gumbel(src, scale)
	for i := 1; i < len(utilities); i++ {
		v := utilities[i] + rng.Gumbel(src, scale)
		if v > bestVal {
			bestVal = v
			best = i
		}
	}
	return best, nil
}

// SelectTopK applies the mechanism k times without replacement (the "peeling"
// construction), splitting the budget evenly across rounds. It is provided as
// an additional selection baseline for the ablation benches.
func (m *ExponentialMechanism) SelectTopK(src rng.Source, utilities []float64, k int) ([]int, error) {
	if k <= 0 || k > len(utilities) {
		return nil, fmt.Errorf("baseline: k = %d out of range for %d candidates", k, len(utilities))
	}
	perRound := &ExponentialMechanism{Epsilon: m.Epsilon / float64(k), Sensitivity: m.Sensitivity}
	chosen := make([]int, 0, k)
	taken := make([]bool, len(utilities))
	for round := 0; round < k; round++ {
		// Build the view of remaining candidates.
		remIdx := make([]int, 0, len(utilities))
		remUtil := make([]float64, 0, len(utilities))
		for i, u := range utilities {
			if !taken[i] {
				remIdx = append(remIdx, i)
				remUtil = append(remUtil, u)
			}
		}
		pick, err := perRound.Select(src, remUtil)
		if err != nil {
			return nil, err
		}
		chosen = append(chosen, remIdx[pick])
		taken[remIdx[pick]] = true
	}
	return chosen, nil
}
