// Command dpbench regenerates the tables and figures of the paper's
// evaluation (Section 7) and the supporting studies indexed in DESIGN.md.
//
// Usage:
//
//	dpbench [flags]
//
// Examples:
//
//	dpbench -experiments all -trials 500 -scale 100
//	dpbench -experiments fig1a,fig4 -format csv
//	dpbench -experiments all -paper          # full 10,000-trial, full-scale run
//
// With -paper the run matches the paper's parameters (full-size datasets,
// 10,000 trials per point); expect it to take a long time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/freegap/freegap/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dpbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dpbench", flag.ContinueOnError)
	var (
		experimentsFlag = fs.String("experiments", "all", "comma-separated experiment ids: datasets, fig1a, fig1b, fig2a, fig2b, fig3counts, fig3quality, fig4, corollary1, svtratio, ties, lemma5, audit, alignment, servebench, planbench, or 'all'")
		trials          = fs.Int("trials", 0, "Monte-Carlo trials per plotted point (0 = default); for servebench and planbench, the total request count per scenario")
		scale           = fs.Int("scale", 0, "dataset scale-down factor (0 = default, 1 = full paper scale)")
		eps             = fs.Float64("eps", 0, "total privacy budget for the k sweeps (0 = paper's 0.7)")
		seed            = fs.Uint64("seed", 1, "random seed")
		format          = fs.String("format", "table", "output format: table or csv")
		paper           = fs.Bool("paper", false, "use the paper's full-scale configuration (overrides -trials/-scale)")
		compensate      = fs.Bool("compensate-scale", true, "rescale epsilon by the dataset scale factor so scaled-down runs keep the paper's noise-to-count ratio")
		parallel        = fs.Int("parallel", 0, "servebench: concurrent client goroutines (0 = GOMAXPROCS)")
		tenants         = fs.Int("tenants", 0, "servebench: distinct tenant budgets the clients spread over (0 = 64)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiment.DefaultConfig()
	if *paper {
		cfg = experiment.PaperConfig()
	}
	cfg.Seed = *seed
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *eps > 0 {
		cfg.Epsilon = *eps
	}
	cfg.CompensateScale = *compensate && cfg.Scale > 1

	writeFigure := func(f experiment.Figure) error {
		if *format == "csv" {
			return experiment.WriteCSV(os.Stdout, f)
		}
		return experiment.WriteTable(os.Stdout, f)
	}
	writeFigures := func(fs []experiment.Figure, err error) error {
		if err != nil {
			return err
		}
		for _, f := range fs {
			if err := writeFigure(f); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	writeSingle := func(f experiment.Figure, err error) error {
		if err != nil {
			return err
		}
		if err := writeFigure(f); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}

	runners := map[string]func() error{
		"datasets": func() error {
			rows, err := cfg.DatasetStatsTable()
			if err != nil {
				return err
			}
			if err := experiment.WriteDatasetStats(os.Stdout, rows); err != nil {
				return err
			}
			fmt.Println()
			return nil
		},
		"fig1a":       func() error { f, err := cfg.Fig1a(); return writeSingle(f, err) },
		"fig1b":       func() error { f, err := cfg.Fig1b(); return writeSingle(f, err) },
		"fig2a":       func() error { f, err := cfg.Fig2a(); return writeSingle(f, err) },
		"fig2b":       func() error { f, err := cfg.Fig2b(); return writeSingle(f, err) },
		"fig3counts":  func() error { return writeFigures(cfg.Fig3Counts()) },
		"fig3quality": func() error { return writeFigures(cfg.Fig3Quality()) },
		"fig4":        func() error { f, err := cfg.Fig4(); return writeSingle(f, err) },
		"corollary1":  func() error { f, err := cfg.Corollary1(); return writeSingle(f, err) },
		"svtratio":    func() error { f, err := cfg.SVTCombineRatio(); return writeSingle(f, err) },
		"ties":        func() error { f, err := cfg.TieProbability(); return writeSingle(f, err) },
		"lemma5":      func() error { f, err := cfg.Lemma5Coverage(); return writeSingle(f, err) },
		"audit": func() error {
			rows, err := cfg.PrivacyAudit()
			if err != nil {
				return err
			}
			if err := experiment.WritePrivacyAudit(os.Stdout, rows); err != nil {
				return err
			}
			fmt.Println()
			return nil
		},
		"alignment": func() error {
			rows, err := cfg.AlignmentVerification()
			if err != nil {
				return err
			}
			if err := experiment.WriteAlignment(os.Stdout, rows); err != nil {
				return err
			}
			fmt.Println()
			return nil
		},
		"servebench": func() error {
			return runServeBench(serveBenchConfig{
				Parallel: *parallel,
				Tenants:  *tenants,
				Requests: *trials,
				Seed:     *seed,
				CSV:      *format == "csv",
			})
		},
		"planbench": func() error {
			return runPlanBench(planBenchConfig{
				Requests: *trials,
				Seed:     *seed,
				CSV:      *format == "csv",
			})
		},
	}
	// servebench and planbench are deliberately not part of 'all': they are
	// serving-layer benchmarks, not paper experiments, and their numbers are
	// only meaningful on an otherwise idle machine.
	order := []string{"datasets", "fig1a", "fig1b", "fig2a", "fig2b", "fig3counts", "fig3quality", "fig4",
		"corollary1", "svtratio", "ties", "lemma5", "audit", "alignment"}

	requested := strings.Split(*experimentsFlag, ",")
	if *experimentsFlag == "all" {
		requested = order
	}
	for _, name := range requested {
		name = strings.TrimSpace(strings.ToLower(name))
		if name == "" {
			continue
		}
		runner, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q (valid: %s)", name, strings.Join(append(order, "servebench", "planbench"), ", "))
		}
		if err := runner(); err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
	}
	return nil
}
