package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"
)

// stdlibStrictDecode is the serving layer's reference decoder: strict
// unknown-field handling plus the one-value-per-body check.
func stdlibStrictDecode(data []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("body holds more than one JSON value")
	}
	return nil
}

// codecResponses enumerates one edge-heavy value per response type. Floats
// cover both formatting regimes (%f and %e with exponent trimming), zero,
// negative zero, and subnormals; strings cover HTML escaping, control
// characters, U+2028/9, and invalid UTF-8; slices cover nil and empty.
func codecResponses() map[string]Response {
	billing := Billing{Tenant: "tenant-<&>\n\x01ſ\u2028\u2029\xff\xfe", EpsilonSpent: 1e-7, BudgetRemaining: 0.99}
	return map[string]Response{
		"topk": &TopKResponse{
			Billing: billing,
			Selections: []SelectionJSON{
				{Index: 0, Gap: 12.25},
				{Index: -3, Gap: -0.0000001},
				{Index: math.MaxInt32, Gap: 1e21},
				{Index: 7, Gap: math.Copysign(0, -1)},
				{Index: 8, Gap: 5e-324},
			},
		},
		"topk-empty":     &TopKResponse{Billing: billing, Selections: []SelectionJSON{}},
		"topk-nil":       &TopKResponse{Billing: billing},
		"max":            &MaxResponse{Billing: billing, Index: 41, Gap: 0.30000000000000004},
		"max-zero":       &MaxResponse{},
		"svt":            &SVTResponse{Billing: billing, Above: []SVTAnswerJSON{{Index: 2, Gap: 1.5, Estimate: 11.5, Branch: "top"}, {Index: 9, Gap: 1e-6, Estimate: 9.999999e20, Branch: "middle"}}, AboveCount: 2, QueriesProcessed: 10, MechanismSpent: 0.125},
		"svt-nil-above":  &SVTResponse{Billing: billing, AboveCount: 0, QueriesProcessed: 3, MechanismSpent: 1e6},
		"svt-empty":      &SVTResponse{Billing: billing, Above: []SVTAnswerJSON{}},
		"pipeline-topk":  &PipelineTopKResponse{Billing: billing, Estimates: []PipelineTopKEstimateJSON{{Index: 1, Measured: 100.5, Refined: 101.23456789012345, Gap: 0.5}}, MeasurementVariance: 800, TheoreticalErrorRatio: 0.6457},
		"pipeline-topk0": &PipelineTopKResponse{Billing: billing, Estimates: []PipelineTopKEstimateJSON{}},
		"pipeline-svt":   &PipelineSVTResponse{Billing: billing, Estimates: []PipelineSVTEstimateJSON{{Index: 4, Branch: "below", GapEstimate: 10, Measured: 9.5, Combined: 9.75, CombinedVariance: 12.5, LowerBound: 7.25}}, AboveCount: 1, MechanismSpent: 0.5, SelectionRemaining: 0.125},
		"pipeline-svt0":  &PipelineSVTResponse{Billing: billing, Estimates: nil, AboveCount: 0},
	}
}

// TestAppendResponseGolden pins every codec's output byte-identical to
// encoding/json.
func TestAppendResponseGolden(t *testing.T) {
	for name, resp := range codecResponses() {
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatalf("%s: stdlib marshal: %v", name, err)
		}
		got, _, ok, err := AppendResponse(nil, resp)
		if !ok || err != nil {
			t.Fatalf("%s: AppendResponse ok=%v err=%v", name, ok, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: codec output differs from encoding/json\n got: %s\nwant: %s", name, got, want)
		}
	}
}

// TestAppendResponseTraceSplice pins the trace splice: inserting the
// `,"trace":...` member at traceOff must reproduce json.Marshal with
// Billing.Trace set.
func TestAppendResponseTraceSplice(t *testing.T) {
	trace := map[string]any{"request_id": "r-1", "total_us": 12.5}
	traceJSON, err := json.Marshal(trace)
	if err != nil {
		t.Fatal(err)
	}
	for name, resp := range codecResponses() {
		out, off, ok, err := AppendResponse(nil, resp)
		if !ok || err != nil {
			t.Fatalf("%s: AppendResponse ok=%v err=%v", name, ok, err)
		}
		var spliced bytes.Buffer
		spliced.Write(out[:off])
		spliced.WriteString(`,"trace":`)
		spliced.Write(traceJSON)
		spliced.Write(out[off:])

		// The stdlib reference with the trace attached. SetTrace mutates the
		// shared value, so reset it afterwards.
		resp.(interface{ SetTrace(any) }).SetTrace(trace)
		want, err := json.Marshal(resp)
		resp.(interface{ SetTrace(any) }).SetTrace(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(spliced.Bytes(), want) {
			t.Errorf("%s: spliced trace differs from encoding/json\n got: %s\nwant: %s", name, spliced.Bytes(), want)
		}
	}
}

// TestAppendResponseFallbacks pins the fallback contract: inline traces and
// non-finite floats must hand the response back to encoding/json.
func TestAppendResponseFallbacks(t *testing.T) {
	withTrace := &MaxResponse{}
	withTrace.SetTrace("inline")
	if _, _, ok, _ := AppendResponse(nil, withTrace); ok {
		t.Error("response with an inline trace must fall back to encoding/json")
	}
	if _, _, ok, _ := AppendResponse(nil, &struct{ Billing }{}); ok {
		t.Error("unknown response type must fall back to encoding/json")
	}
	if _, _, ok, err := AppendResponse(nil, &MaxResponse{Gap: math.Inf(1)}); !ok || err == nil {
		t.Error("non-finite float must report an error so the caller falls back")
	}
}

// codecBodies is the decoder-agreement corpus: per mechanism, bodies that
// must decode identically (accept/reject and resulting value) under the
// codec and the stdlib strict decoder.
var codecBodies = []string{
	`{"tenant":"acme","epsilon":0.5,"answers":[1,2,3],"k":1}`,
	`{"tenant":"acme","epsilon":1.5,"answers":[812,641,633],"k":2,"threshold":630.5,"adaptive":true}`,
	`{"tenant":"acme","epsilon":1,"answers":[1,2],"select_fraction":0.25,"confidence":0.9}`,
	`{"TENANT":"upper","EPSILON":2,"Answers":[9,8],"K":1,"Threshold":1,"Adaptive":false,"Monotonic":true}`,
	`{"ſ":1}`,              // folds to "s": unknown either way
	`{"\u006b":3}`,         // escaped key "k"
	`{"k":1,"k":2,"k":3}`,  // last wins
	`{"k":null}`,           // null leaves the field unchanged
	`{"answers":[1,null]}`, // null element leaves a zero
	`{"answers":[]}`,       // empty non-nil slice
	`{"answers":[1,2],"answers":[3]}`,
	`{"tenant":"\u0041\uD83D\uDE00\uD800x\u2028"}`, // surrogate pair, lone surrogate, U+2028
	`{"tenant":"` + "\xff\xfe" + `"}`,              // invalid UTF-8 → U+FFFD
	`{"dataset":"pos","queries":{"kind":"all_items"}}`,
	`{"queries":{"kind":"item_count","items":[1,2,3]},"dataset":"pos"}`,
	`{"queries":{"kind":"a"},"queries":{"items":[7]}}`, // duplicate merges into the same pointer
	`{"queries":null}`,
	`{"queries":{"kind":"item_count","items":[2147483647,-2147483648]}}`,
	`{"queries":{"kind":"item_count","items":[2147483648]}}`, // int32 overflow: error
	// Composite spec grammar: filters, thresholds, set algebra, joins.
	`{"queries":{"kind":"filter","where":{"contains":[1,2],"min_len":2,"max_len":8}}}`,
	`{"queries":{"kind":"filter","where":{}}}`,
	`{"queries":{"kind":"threshold","min_count":3,"of":[{"kind":"all_items"}]}}`,
	`{"queries":{"kind":"threshold","max_count":1e309,"of":[{"kind":"all_items"}]}}`, // float overflow: error
	`{"queries":{"kind":"union","of":[{"kind":"item_count","items":[1]},{"kind":"filter","where":{"contains":[2]}}]}}`,
	`{"queries":{"kind":"intersect","of":[{"kind":"all_items"},{"kind":"all_items"},{"kind":"all_items"}]}}`,
	`{"queries":{"kind":"minus","of":[{"kind":"all_items"},{"kind":"item_count","items":[3]}]}}`,
	`{"queries":{"kind":"join","dataset":"other","of":[{"kind":"all_items"}],"on":{"kind":"item_count","items":[1,2]}}}`,
	`{"queries":{"kind":"union","of":[{"kind":"union","of":[{"kind":"union","of":[{"kind":"all_items"},{"kind":"all_items"}]},{"kind":"all_items"}]},{"kind":"all_items"}]}}`,
	`{"queries":{"where":null}}`,                                   // null clears the predicate pointer
	`{"queries":{"of":null}}`,                                      // null clears the operand slice
	`{"queries":{"of":[]}}`,                                        // empty non-nil operand slice
	`{"queries":{"of":[null]}}`,                                    // null element leaves a nil pointer
	`{"queries":{"on":null}}`,                                      // null clears the join key pointer
	`{"queries":{"of":[{"kind":"a"}],"of":[{"items":[7]}]}}`,       // duplicate merges element-wise
	`{"queries":{"where":{"min_len":1},"where":{"contains":[5]}}}`, // duplicate merges into the same predicate
	`{"queries":{"on":{"kind":"a"},"on":{"items":[9]}}}`,           // duplicate merges into the same pointer
	`{"queries":{"of":[{"kind":"a"},{"kind":"b"}],"of":[null,{"items":[1]}]}}`,
	`{"queries":{"kind":"filter","where":{"contains":[2147483648]}}}`, // int32 overflow: error
	`{"queries":{"kind":"filter","where":{"min_len":1.5}}}`,           // fraction into int: error
	`{"queries":{"kind":"union","of":[{"kind":"threshold","min_count":0.5,"of":[{"kind":"join","dataset":"d","of":[{"kind":"filter","where":{"max_len":3}}]}]}]}}`,
	`{"epsilon":1e309}`,           // float overflow: error
	`{"epsilon":1e-999}`,          // float underflow: stdlib errors too
	`{"k":1e2}`,                   // exponent into int: error
	`{"k":1.5}`,                   // fraction into int: error
	`{"k":-0}`,                    // ParseInt accepts -0
	`{"epsilon":0.125e+02}`,       // exponent grammar
	`{"epsilon":01}`,              // leading zero: error
	`{"epsilon":.5}`,              // bare fraction: error
	`{"epsilon":5.}`,              // trailing dot: error
	`{"epsilon":+1}`,              // leading plus: error
	`{"epsilon":"1"}`,             // string into float: error
	`{"monotonic":1}`,             // number into bool: error
	`{"answers":{"0":1}}`,         // object into slice: error
	`{"unknown_field":1}`,         // unknown field: error
	`{"tenant":"a",}`,             // trailing comma: error
	`{"tenant":"a"`,               // truncated: error
	``,                            // empty body: error (EOF)
	`null`,                        // bare null: zero request, accepted
	`nullx`,                       // trailing garbage after null: error
	`{"k":1} {"k":2}`,             // second value: error
	`{"k":1}]`,                    // the json.Decoder.More ']' quirk: accepted
	`{"k":1}}`,                    // More reports false for '}' too: accepted
	`{"k":1}]garbage`,             // More peeks one byte: accepted
	`{"k":1}x`,                    // trailing garbage: error
	`42`,                          // number at top level: error
	`[{"k":1}]`,                   // array at top level: error
	`{"tenant":"\q"}`,             // invalid escape: error
	`{"tenant":"` + "\x01" + `"}`, // control char: error
	`{"tenant":"\uD800\uD800"}`,   // two high surrogates → two U+FFFD
	`{"tenant":"\uZZZZ"}`,         // invalid hex escape: error
	"\t\r\n {\"k\" \t:\n 1 } \r",  // whitespace everywhere
}

// TestDecodeRequestAgreement runs the corpus through every mechanism with
// and without a scratch, comparing against the stdlib strict decoder.
func TestDecodeRequestAgreement(t *testing.T) {
	reg := DefaultRegistry()
	for _, mech := range reg.Mechanisms() {
		scr := NewScratch()
		for _, body := range codecBodies {
			for _, useScratch := range []bool{false, true} {
				var s *Scratch
				if useScratch {
					s = scr
				}
				got, ok, gotErr := DecodeRequest(mech, []byte(body), s)
				if !ok {
					t.Fatalf("%s: no codec for a built-in mechanism", mech.Name())
				}
				want := mech.NewRequest()
				wantErr := stdlibStrictDecode([]byte(body), want)
				if (gotErr == nil) != (wantErr == nil) {
					t.Errorf("%s (scratch=%v) %q: codec err %v, stdlib err %v", mech.Name(), useScratch, body, gotErr, wantErr)
					continue
				}
				if gotErr == nil && !reflect.DeepEqual(got, want) {
					t.Errorf("%s (scratch=%v) %q:\n codec:  %#v\n stdlib: %#v", mech.Name(), useScratch, body, got, want)
				}
			}
		}
	}
}

// TestDecodeRequestScratchStrings pins that retained strings (tenant,
// dataset) do not alias the scratch: decoding a second request must not
// mutate the first request's strings.
func TestDecodeRequestScratchStrings(t *testing.T) {
	reg := DefaultRegistry()
	mech, err := reg.Get("topk")
	if err != nil {
		t.Fatal(err)
	}
	scr := NewScratch()
	first, _, err := DecodeRequest(mech, []byte(`{"tenant":"alpha","dataset":"left"}`), scr)
	if err != nil {
		t.Fatal(err)
	}
	tenant, ds := first.Base().Tenant, first.Base().Dataset
	if _, _, err := DecodeRequest(mech, []byte(`{"tenant":"omega","dataset":"right"}`), scr); err != nil {
		t.Fatal(err)
	}
	if tenant != "alpha" || ds != "left" {
		t.Fatalf("decoded strings alias the scratch: tenant=%q dataset=%q", tenant, ds)
	}
}
