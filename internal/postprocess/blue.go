package postprocess

import (
	"errors"
	"fmt"
)

// ErrDimensionMismatch is returned when the measurement and gap vectors do
// not describe the same k selected queries.
var ErrDimensionMismatch = errors.New("postprocess: need k measurements and k-1 gaps")

// BLUE computes the best linear unbiased estimate of the true values of the
// top-k selected queries from
//
//	measurements αᵢ = qᵢ + ξᵢ   (independent Laplace measurement noise), and
//	gaps         gᵢ = qᵢ + ηᵢ − qᵢ₊₁ − ηᵢ₊₁  (from Noisy-Top-K-with-Gap),
//
// where λ = Var(ηᵢ)/Var(ξᵢ). This is Theorem 3 of the paper, evaluated with
// the O(k) prefix-sum algorithm rather than the explicit matrix product:
//
//	βᵢ = (ᾱ + λk·αᵢ + p − k·pᵢ₋₁) / ((1+λ)·k)
//
// with ᾱ = Σαⱼ, p = Σ(k−j)·gⱼ and pᵢ the prefix sums of the gaps.
//
// The relative error of βᵢ versus using αᵢ alone is (1+λk)/(k+λk)
// (Corollary 1); with λ = 1 (counting queries measured with the same budget)
// the mean squared error approaches a 50% reduction as k grows.
func BLUE(measurements, gaps []float64, lambda float64) ([]float64, error) {
	k := len(measurements)
	if k == 0 || len(gaps) != k-1 {
		return nil, fmt.Errorf("%w: got %d measurements and %d gaps", ErrDimensionMismatch, k, len(gaps))
	}
	if !(lambda > 0) {
		return nil, fmt.Errorf("postprocess: variance ratio lambda %v must be positive", lambda)
	}
	if k == 1 {
		// With a single query there are no gaps and the measurement is already
		// the BLUE.
		return []float64{measurements[0]}, nil
	}

	alphaSum := 0.0
	for _, a := range measurements {
		alphaSum += a
	}
	p := 0.0
	for i, g := range gaps {
		p += float64(k-(i+1)) * g
	}

	kf := float64(k)
	estimates := make([]float64, k)
	prefix := 0.0 // p_{i-1}: sum of the first i-1 gaps
	for i := 0; i < k; i++ {
		estimates[i] = (alphaSum + lambda*kf*measurements[i] + p - kf*prefix) / ((1 + lambda) * kf)
		if i < k-1 {
			prefix += gaps[i]
		}
	}
	return estimates, nil
}

// BLUEFromVariances is a convenience wrapper that derives λ from the two
// noise variances: measurementVariance is Var(ξᵢ) of the per-query Laplace
// measurements, selectionNoiseVariance is Var(ηᵢ) of the per-query noise
// inside Noisy-Top-K-with-Gap.
func BLUEFromVariances(measurements, gaps []float64, measurementVariance, selectionNoiseVariance float64) ([]float64, error) {
	if !(measurementVariance > 0) || !(selectionNoiseVariance > 0) {
		return nil, fmt.Errorf("postprocess: variances must be positive, got %v and %v",
			measurementVariance, selectionNoiseVariance)
	}
	return BLUE(measurements, gaps, selectionNoiseVariance/measurementVariance)
}

// ErrorReductionRatio returns E|βᵢ−qᵢ|² / E|αᵢ−qᵢ|² = (1+λk)/(k+λk), the
// Corollary 1 ratio between the BLUE's error and the measurement-only error.
// Values below 1 mean the gap information helped.
func ErrorReductionRatio(k int, lambda float64) float64 {
	if k <= 0 {
		panic(fmt.Sprintf("postprocess: k = %d must be positive", k))
	}
	if !(lambda > 0) {
		panic(fmt.Sprintf("postprocess: lambda = %v must be positive", lambda))
	}
	kf := float64(k)
	return (1 + lambda*kf) / (kf + lambda*kf)
}

// TopKExpectedImprovementPercent returns the Corollary 1 improvement,
// 100·(1 − (1+λk)/(k+λk)), i.e. the theoretical curve plotted alongside the
// empirical results in Figures 1b and 2b. For counting queries measured with
// an equal budget split, λ = 1 and the improvement is 100·(k−1)/(2k).
func TopKExpectedImprovementPercent(k int, lambda float64) float64 {
	return 100 * (1 - ErrorReductionRatio(k, lambda))
}

// blueMatrix evaluates Theorem 3 via the explicit X and Y matrices. It is
// exported to the tests (via export_test.go) as a differential oracle for the
// linear-time implementation; production callers should use BLUE.
func blueMatrix(measurements, gaps []float64, lambda float64) []float64 {
	k := len(measurements)
	kf := float64(k)
	// X = (I + λk·I + ones)/( (1+λ)k ) — more precisely Xᵢⱼ = 1 + λk·[i=j].
	// Y has entries Yᵢⱼ = (k−j) − k·[j < i] (1-based), all divided by (1+λ)k.
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		acc := 0.0
		for j := 0; j < k; j++ {
			x := 1.0
			if i == j {
				x += lambda * kf
			}
			acc += x * measurements[j]
		}
		for j := 0; j < k-1; j++ {
			y := float64(k - (j + 1))
			if j+1 < i+1 {
				y -= kf
			}
			acc += y * gaps[j]
		}
		out[i] = acc / ((1 + lambda) * kf)
	}
	return out
}
