package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMSEAndMAE(t *testing.T) {
	est := []float64{1, 2, 3}
	truth := []float64{1, 4, 0}
	if got := MSE(est, truth); math.Abs(got-(0+4+9)/3.0) > 1e-12 {
		t.Fatalf("MSE = %v", got)
	}
	if got := MAE(est, truth); math.Abs(got-(0+2+3)/3.0) > 1e-12 {
		t.Fatalf("MAE = %v", got)
	}
}

func TestMSEPanicsOnMismatch(t *testing.T) {
	for _, pair := range [][2][]float64{{{1}, {1, 2}}, {nil, nil}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			MSE(pair[0], pair[1])
		}()
	}
}

func TestPercentImprovement(t *testing.T) {
	if got := PercentImprovement(10, 5); got != 50 {
		t.Fatalf("got %v want 50", got)
	}
	if got := PercentImprovement(10, 12); got != -20 {
		t.Fatalf("got %v want -20", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero baseline")
		}
	}()
	PercentImprovement(0, 1)
}

func TestPrecisionRecallFMeasure(t *testing.T) {
	returned := []int{1, 2, 3, 4}
	relevant := []int{2, 4, 6, 8}
	p := Precision(returned, relevant)
	r := Recall(returned, relevant)
	if p != 0.5 || r != 0.5 {
		t.Fatalf("precision %v recall %v, want 0.5 each", p, r)
	}
	if f := FMeasure(p, r); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("F = %v", f)
	}
	if f := FMeasureOf(returned, relevant); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("FMeasureOf = %v", f)
	}
}

func TestPrecisionRecallEdgeCases(t *testing.T) {
	if Precision(nil, []int{1}) != 1 {
		t.Fatal("empty returned set should have precision 1")
	}
	if Recall([]int{1}, nil) != 1 {
		t.Fatal("empty relevant set should have recall 1")
	}
	if FMeasure(0, 0) != 0 {
		t.Fatal("F(0,0) must be 0")
	}
	// Duplicate returned items must not inflate recall.
	if got := Recall([]int{2, 2, 2}, []int{2, 4}); got != 0.5 {
		t.Fatalf("recall with duplicates = %v, want 0.5", got)
	}
}

func TestFMeasurePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FMeasure(-0.1, 0.5)
}

func TestPrecisionRecallBoundedProperty(t *testing.T) {
	f := func(returned, relevant []int8) bool {
		r := make([]int, len(returned))
		for i, v := range returned {
			r[i] = int(v)
		}
		rel := make([]int, len(relevant))
		for i, v := range relevant {
			rel[i] = int(v)
		}
		p := Precision(r, rel)
		rc := Recall(r, rel)
		fm := FMeasure(p, rc)
		return p >= 0 && p <= 1 && rc >= 0 && rc <= 1 && fm >= 0 && fm <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("variance %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("stddev %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("singleton quantile %v", got)
	}
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for q=%v", q)
				}
			}()
			Quantile(xs, q)
		}()
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.N != 4 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty input")
		}
	}()
	Summarize(nil)
}

func TestEmptyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"mean":     func() { Mean(nil) },
		"variance": func() { Variance(nil) },
		"quantile": func() { Quantile(nil, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
