package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/freegap/freegap/internal/dataset"
)

func TestRunWritesFIMIFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bmspos.dat")
	if err := run([]string{"-dataset", "bmspos", "-scale", "500", "-seed", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	db, err := dataset.ReadFIMIFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want := dataset.BMSPOSConfig().ScaledDown(500)
	if db.NumRecords() != want.Records {
		t.Fatalf("records = %d, want %d", db.NumRecords(), want.Records)
	}
}

func TestRunAllGenerators(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"bmspos", "kosarak", "quest"} {
		out := filepath.Join(dir, name+".dat")
		if err := run([]string{"-dataset", name, "-scale", "1000", "-out", out}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		info, err := os.Stat(out)
		if err != nil || info.Size() == 0 {
			t.Fatalf("%s: empty output (%v)", name, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-dataset", "nope"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run([]string{"-dataset", "bmspos", "-scale", "0"}); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
