package engine

// The paper's two end-to-end workflows (Sections 5.2 and 6.2) as engine
// Mechanisms, making the full select–measure–refine protocols servable. The
// executing layer reserves the whole pipeline budget up front (Cost), and
// the pipeline itself runs with a nil accountant — the reservation already
// happened one layer up, where concurrent tenants are arbitrated.

import (
	"fmt"
	"math"

	"github.com/freegap/freegap/internal/pipeline"
	"github.com/freegap/freegap/internal/rng"
)

// validateFraction rejects select fractions outside [0, 1); zero means "use
// the paper's default split".
func validateFraction(name string, f float64) error {
	if f == 0 {
		return nil
	}
	if math.IsNaN(f) || f <= 0 || f >= 1 {
		return fmt.Errorf("%s = %v must be in (0, 1), or 0 for the default", name, f)
	}
	return nil
}

//
// pipeline/topk — the Section 5.2 select-then-measure-then-refine protocol.
//

// PipelineTopKRequest is the body of POST /v1/pipeline/topk.
type PipelineTopKRequest struct {
	Common
	// K is the number of queries to select and measure.
	K int `json:"k"`
	// SelectFraction is the share of epsilon spent on selection (0 = the
	// paper's 0.5 split).
	SelectFraction float64 `json:"select_fraction,omitempty"`
}

// PipelineTopKEstimateJSON is one refined estimate in a
// PipelineTopKResponse.
type PipelineTopKEstimateJSON struct {
	// Index is the query's position in the request's answers.
	Index int `json:"index"`
	// Measured is the raw Laplace measurement of the query.
	Measured float64 `json:"measured"`
	// Refined is the BLUE estimate that also uses the gap information.
	Refined float64 `json:"refined"`
	// Gap is the released gap between this query and the next-ranked one.
	Gap float64 `json:"gap"`
}

// PipelineTopKResponse is the body of a successful POST /v1/pipeline/topk.
type PipelineTopKResponse struct {
	Billing
	// Estimates lists the k selected queries with raw and gap-refined
	// estimates, in descending noisy order.
	Estimates []PipelineTopKEstimateJSON `json:"estimates"`
	// MeasurementVariance is the per-query variance of the raw measurements.
	MeasurementVariance float64 `json:"measurement_variance"`
	// TheoreticalErrorRatio is the Corollary 1 ratio achieved by the refined
	// estimates relative to the raw measurements.
	TheoreticalErrorRatio float64 `json:"theoretical_error_ratio"`
}

type pipelineTopKMechanism struct{}

func (pipelineTopKMechanism) Name() string        { return "pipeline/topk" }
func (pipelineTopKMechanism) NewRequest() Request { return &PipelineTopKRequest{} }

func (pipelineTopKMechanism) Validate(req Request, lim Limits) error {
	r, ok := req.(*PipelineTopKRequest)
	if !ok {
		return errWrongRequestType("pipeline/topk", req)
	}
	if err := r.Common.validate(lim); err != nil {
		return err
	}
	if r.K <= 0 || r.K >= len(r.Answers) {
		return fmt.Errorf("k = %d must satisfy 1 <= k <= len(answers)-1 = %d", r.K, len(r.Answers)-1)
	}
	return validateFraction("select_fraction", r.SelectFraction)
}

func (pipelineTopKMechanism) Cost(req Request) float64 { return req.Base().Epsilon }

// Execute runs the full pipeline. The scratch is accepted for interface
// symmetry but unused: the pipeline's cost is dominated by its measurement
// and refinement stages, not request-scoped buffers.
func (pipelineTopKMechanism) Execute(src rng.Source, req Request, _ *Scratch) (Response, error) {
	r, ok := req.(*PipelineTopKRequest)
	if !ok {
		return nil, errWrongRequestType("pipeline/topk", req)
	}
	res, err := pipeline.RunTopK(src, r.Answers, pipeline.TopKConfig{
		K:              r.K,
		Epsilon:        r.Epsilon,
		SelectFraction: r.SelectFraction,
		Monotonic:      r.Monotonic,
	}, nil)
	if err != nil {
		return nil, err
	}
	out := &PipelineTopKResponse{
		Estimates:             make([]PipelineTopKEstimateJSON, len(res.Estimates)),
		MeasurementVariance:   res.MeasurementVariance,
		TheoreticalErrorRatio: res.TheoreticalErrorRatio,
	}
	for i, est := range res.Estimates {
		out.Estimates[i] = PipelineTopKEstimateJSON{
			Index:    est.Index,
			Measured: est.Measured,
			Refined:  est.Refined,
			Gap:      est.Gap,
		}
	}
	return out, nil
}

//
// pipeline/svt — the Section 6.2 threshold protocol.
//

// PipelineSVTRequest is the body of POST /v1/pipeline/svt.
type PipelineSVTRequest struct {
	Common
	// K is the number of above-threshold answers to provision for.
	K int `json:"k"`
	// Threshold is the public threshold.
	Threshold float64 `json:"threshold"`
	// SelectFraction is the share of epsilon spent on the Sparse Vector
	// stage (0 = the paper's 0.5 split).
	SelectFraction float64 `json:"select_fraction,omitempty"`
	// Adaptive selects Adaptive-Sparse-Vector-with-Gap instead of plain
	// Sparse-Vector-with-Gap for the selection stage.
	Adaptive bool `json:"adaptive,omitempty"`
	// Confidence is the level of the Lemma 5 lower bound attached to each
	// estimate (0 = the default 0.95).
	Confidence float64 `json:"confidence,omitempty"`
}

// PipelineSVTEstimateJSON is one refined above-threshold estimate in a
// PipelineSVTResponse.
type PipelineSVTEstimateJSON struct {
	// Index is the query's position in the request's answers.
	Index int `json:"index"`
	// Branch names the adaptive branch that answered: below, top or middle.
	Branch string `json:"branch"`
	// GapEstimate is gap + threshold, the selection-stage estimate.
	GapEstimate float64 `json:"gap_estimate"`
	// Measured is the raw Laplace measurement.
	Measured float64 `json:"measured"`
	// Combined is the inverse-variance combination of the two.
	Combined float64 `json:"combined"`
	// CombinedVariance is the variance of the combined estimate.
	CombinedVariance float64 `json:"combined_variance"`
	// LowerBound is the Lemma 5 lower confidence bound on the true answer
	// derived from the selection stage alone.
	LowerBound float64 `json:"lower_bound"`
}

// PipelineSVTResponse is the body of a successful POST /v1/pipeline/svt.
type PipelineSVTResponse struct {
	Billing
	// Estimates lists the refined above-threshold answers in stream order.
	Estimates []PipelineSVTEstimateJSON `json:"estimates"`
	// AboveCount is the number of above-threshold answers the selection
	// stage produced.
	AboveCount int `json:"above_count"`
	// MechanismSpent is the budget the pipeline consumed internally (the
	// adaptive selection stage may spend less than the reservation).
	MechanismSpent float64 `json:"mechanism_spent"`
	// SelectionRemaining is the budget the adaptive selection stage left
	// unspent (zero for the non-adaptive variant).
	SelectionRemaining float64 `json:"selection_remaining"`
}

type pipelineSVTMechanism struct{}

func (pipelineSVTMechanism) Name() string        { return "pipeline/svt" }
func (pipelineSVTMechanism) NewRequest() Request { return &PipelineSVTRequest{} }

func (pipelineSVTMechanism) Validate(req Request, lim Limits) error {
	r, ok := req.(*PipelineSVTRequest)
	if !ok {
		return errWrongRequestType("pipeline/svt", req)
	}
	if err := r.Common.validate(lim); err != nil {
		return err
	}
	if r.K <= 0 {
		return fmt.Errorf("k = %d must be positive", r.K)
	}
	if math.IsNaN(r.Threshold) || math.IsInf(r.Threshold, 0) {
		return fmt.Errorf("threshold %v must be finite", r.Threshold)
	}
	if err := validateFraction("select_fraction", r.SelectFraction); err != nil {
		return err
	}
	if r.Confidence != 0 && (math.IsNaN(r.Confidence) || r.Confidence <= 0 || r.Confidence >= 1) {
		return fmt.Errorf("confidence = %v must be in (0, 1), or 0 for the default", r.Confidence)
	}
	return nil
}

// Cost is the full reservation; the adaptive selection stage may spend less
// internally, but the tenant is charged the reservation so concurrent
// requests stay sound.
func (pipelineSVTMechanism) Cost(req Request) float64 { return req.Base().Epsilon }

// Execute runs the full pipeline; see pipelineTopKMechanism.Execute for why
// the scratch goes unused.
func (pipelineSVTMechanism) Execute(src rng.Source, req Request, _ *Scratch) (Response, error) {
	r, ok := req.(*PipelineSVTRequest)
	if !ok {
		return nil, errWrongRequestType("pipeline/svt", req)
	}
	res, err := pipeline.RunSVT(src, r.Answers, pipeline.SVTConfig{
		K:              r.K,
		Epsilon:        r.Epsilon,
		Threshold:      r.Threshold,
		SelectFraction: r.SelectFraction,
		Adaptive:       r.Adaptive,
		Monotonic:      r.Monotonic,
		Confidence:     r.Confidence,
	}, nil)
	if err != nil {
		return nil, err
	}
	out := &PipelineSVTResponse{
		Estimates:          make([]PipelineSVTEstimateJSON, len(res.Estimates)),
		AboveCount:         res.AboveCount,
		MechanismSpent:     res.EpsilonSpent,
		SelectionRemaining: res.SelectionRemaining,
	}
	for i, est := range res.Estimates {
		out.Estimates[i] = PipelineSVTEstimateJSON{
			Index:            est.Index,
			Branch:           est.Branch.String(),
			GapEstimate:      est.GapEstimate,
			Measured:         est.Measured,
			Combined:         est.Combined,
			CombinedVariance: est.CombinedVariance,
			LowerBound:       est.LowerBound,
		}
	}
	return out, nil
}
