package postprocess

import (
	"fmt"
	"math"
)

// CombineByInverseVariance merges two unbiased estimates of the same quantity
// with known variances into the minimum-variance unbiased linear combination:
//
//	β = (a/Var(a) + b/Var(b)) / (1/Var(a) + 1/Var(b)).
//
// Section 6.2 uses it to merge a Sparse-Vector gap estimate (gap + threshold)
// with an independent Laplace measurement of the same query. The second return
// value is the variance of the combined estimate.
func CombineByInverseVariance(a, varA, b, varB float64) (estimate, variance float64, err error) {
	if !(varA > 0) || !(varB > 0) {
		return 0, 0, fmt.Errorf("postprocess: variances must be positive, got %v and %v", varA, varB)
	}
	wa := 1 / varA
	wb := 1 / varB
	return (a*wa + b*wb) / (wa + wb), 1 / (wa + wb), nil
}

// CombineMany merges any number of unbiased estimates by inverse-variance
// weighting. Estimates and variances must have equal non-zero length.
func CombineMany(estimates, variances []float64) (estimate, variance float64, err error) {
	if len(estimates) == 0 || len(estimates) != len(variances) {
		return 0, 0, fmt.Errorf("postprocess: need equal non-zero estimate/variance counts, got %d and %d",
			len(estimates), len(variances))
	}
	num, den := 0.0, 0.0
	for i := range estimates {
		if !(variances[i] > 0) {
			return 0, 0, fmt.Errorf("postprocess: variance %v at position %d must be positive", variances[i], i)
		}
		w := 1 / variances[i]
		num += estimates[i] * w
		den += w
	}
	return num / den, 1 / den, nil
}

// SVTErrorReductionRatio returns the Section 6.2 ratio
// E|βᵢ−qᵢ|²/E|αᵢ−qᵢ|² = (1+c^{2/3})³ / ((1+c^{2/3})³ + c'²) for the
// combine-with-measurement protocol, where the budget is split half for
// Sparse-Vector-with-Gap (with the Lyu et al. threshold/query split) and half
// for measurements. For general queries c = 4k² under the cube root and the
// limit of the improvement is 20%; for monotonic queries c = k² and the limit
// is 50%.
func SVTErrorReductionRatio(k int, monotonic bool) float64 {
	if k <= 0 {
		panic(fmt.Sprintf("postprocess: k = %d must be positive", k))
	}
	kf := float64(k)
	var cube float64
	if monotonic {
		cube = math.Pow(1+math.Cbrt(kf*kf), 3)
	} else {
		cube = math.Pow(1+math.Cbrt(4*kf*kf), 3)
	}
	return cube / (cube + kf*kf)
}

// SVTExpectedImprovementPercent returns 100·(1 − SVTErrorReductionRatio),
// the theoretical curve plotted in Figures 1a and 2a.
func SVTExpectedImprovementPercent(k int, monotonic bool) float64 {
	return 100 * (1 - SVTErrorReductionRatio(k, monotonic))
}
