package dataset

import (
	"math"
	"sort"
	"testing"

	"github.com/freegap/freegap/internal/rng"
)

func TestZipfSamplerSkew(t *testing.T) {
	src := rng.NewXoshiro(1)
	z := NewZipfSampler(100, 1.1)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(src)]++
	}
	// Item 0 must dominate item 50 by a large margin under Zipf(1.1).
	if counts[0] < 10*counts[50] {
		t.Fatalf("expected heavy skew, got counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// The empirical head probability should be near the analytic one.
	h := 0.0
	for i := 1; i <= 100; i++ {
		h += 1 / math.Pow(float64(i), 1.1)
	}
	want := 1 / h
	got := float64(counts[0]) / n
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("P(item 0) = %v, want ≈ %v", got, want)
	}
}

func TestZipfSamplerPanics(t *testing.T) {
	cases := []struct {
		n int
		s float64
	}{{0, 1}, {10, 0}, {-3, 1.2}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for n=%d s=%v", c.n, c.s)
				}
			}()
			NewZipfSampler(c.n, c.s)
		}()
	}
}

func TestSyntheticConfigGenerate(t *testing.T) {
	cfg := BMSPOSConfig().ScaledDown(100)
	db := cfg.Generate(7)
	if db.NumRecords() != cfg.Records {
		t.Fatalf("records = %d want %d", db.NumRecords(), cfg.Records)
	}
	if db.NumItems() != cfg.Items {
		t.Fatalf("items = %d want %d", db.NumItems(), cfg.Items)
	}
	mean := db.MeanLength()
	if math.Abs(mean-cfg.MeanLength) > 0.5 {
		t.Fatalf("mean length %v far from configured %v", mean, cfg.MeanLength)
	}
	// Transactions must be item sets (no duplicates).
	for i := 0; i < db.NumRecords(); i++ {
		rec := db.Record(i)
		seen := map[int32]bool{}
		for _, it := range rec {
			if seen[it] {
				t.Fatalf("record %d has duplicate item %d", i, it)
			}
			seen[it] = true
		}
	}
}

func TestSyntheticDeterministicInSeed(t *testing.T) {
	cfg := KosarakConfig().ScaledDown(500)
	a := cfg.Generate(11)
	b := cfg.Generate(11)
	ca, cb := a.ItemCounts(), b.ItemCounts()
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatal("same seed produced different datasets")
		}
	}
	c := cfg.Generate(12)
	cc := c.ItemCounts()
	same := true
	for i := range ca {
		if ca[i] != cc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestSyntheticCountHistogramHeavyTailed(t *testing.T) {
	db := BMSPOSConfig().ScaledDown(50).Generate(3)
	counts := db.ItemCounts()
	sorted := append([]float64(nil), counts...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	// The top item should appear in far more transactions than the median
	// item — the property that makes thresholds and top-k selection
	// meaningful in the paper's experiments.
	if sorted[0] < 10*sorted[len(sorted)/2]+1 {
		t.Fatalf("histogram not heavy tailed: max %v median %v", sorted[0], sorted[len(sorted)/2])
	}
}

func TestScaledDown(t *testing.T) {
	cfg := BMSPOSConfig()
	if cfg.ScaledDown(0).Records != cfg.Records {
		t.Fatal("factor <= 1 must be identity")
	}
	small := cfg.ScaledDown(1000000)
	if small.Records != 1000 {
		t.Fatalf("records = %d, want floor of 1000", small.Records)
	}
}

func TestPublishedScaleConfigs(t *testing.T) {
	b := BMSPOSConfig()
	if b.Records != 515597 || b.Items != 1657 {
		t.Fatalf("BMS-POS config drifted from published statistics: %+v", b)
	}
	k := KosarakConfig()
	if k.Records != 990002 || k.Items != 41270 {
		t.Fatalf("Kosarak config drifted from published statistics: %+v", k)
	}
	q := T40I10D100KConfig()
	if q.Transactions != 100000 || q.AvgTransactionLen != 40 || q.AvgPatternLen != 10 {
		t.Fatalf("Quest config drifted from published statistics: %+v", q)
	}
}
