module github.com/freegap/freegap

go 1.24
