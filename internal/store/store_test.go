package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"github.com/freegap/freegap/internal/dataset"
)

func testDB(t *testing.T) *dataset.Transactions {
	t.Helper()
	return dataset.New("test", [][]int32{
		{0, 1, 2},
		{1, 2},
		{2},
		{0, 2, 2}, // duplicate item within a record counts once
	})
}

func TestRegisterPrecomputesCounts(t *testing.T) {
	s := New()
	db := testDB(t)
	e, err := s.Register("sales", "test", db)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	want := db.ItemCounts()
	if got := e.ResolveAll(); !reflect.DeepEqual(got, want) {
		t.Errorf("ResolveAll = %v, want %v", got, want)
	}
	if got := e.CountScans(); got != 1 {
		t.Errorf("CountScans = %d, want 1", got)
	}
}

func TestResolveNeverRescans(t *testing.T) {
	s := New()
	e, err := s.Register("sales", "test", testDB(t))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	for i := 0; i < 10; i++ {
		e.ResolveAll()
		if _, err := e.ResolveItems([]int32{0, 2}); err != nil {
			t.Fatalf("ResolveItems: %v", err)
		}
	}
	if got := e.CountScans(); got != 1 {
		t.Errorf("CountScans after 20 resolutions = %d, want 1 (the registration precompute)", got)
	}
	if got := e.Resolutions(); got != 20 {
		t.Errorf("Resolutions = %d, want 20", got)
	}
}

func TestResolveItems(t *testing.T) {
	s := New()
	e, err := s.Register("sales", "test", testDB(t))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	got, err := e.ResolveItems([]int32{2, 0, 99})
	if err != nil {
		t.Fatalf("ResolveItems: %v", err)
	}
	// item 2 appears in all 4 records, item 0 in 2, item 99 is outside the
	// universe and counts zero.
	if want := []float64{4, 2, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("ResolveItems = %v, want %v", got, want)
	}
	if _, err := e.ResolveItems([]int32{-1}); err == nil {
		t.Error("negative item id accepted")
	}
}

func TestRegisterRejects(t *testing.T) {
	s := New()
	db := testDB(t)
	if _, err := s.Register("sales", "test", db); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := s.Register("sales", "test", db); !errors.Is(err, ErrDatasetExists) {
		t.Errorf("duplicate registration error = %v, want ErrDatasetExists", err)
	}
	for _, name := range []string{"", "UPPER", "has space", "a/b", string(make([]byte, MaxNameLen+1))} {
		if _, err := s.Register(name, "test", db); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
	if _, err := s.Register("nil", "test", nil); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestStoreLimits(t *testing.T) {
	s := NewWithLimits(Limits{MaxDatasets: 1, MaxItems: 2, MaxRecords: 3})
	big := dataset.New("big", [][]int32{{0, 1, 2}}) // universe of 3 > MaxItems 2
	if _, err := s.Register("big", "test", big); err == nil {
		t.Error("oversized item universe accepted")
	}
	long := dataset.New("long", [][]int32{{0}, {0}, {0}, {0}}) // 4 records > MaxRecords 3
	if _, err := s.Register("long", "test", long); err == nil {
		t.Error("oversized record count accepted")
	}
	ok := dataset.New("ok", [][]int32{{0, 1}})
	if _, err := s.Register("first", "test", ok); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := s.Register("second", "test", ok); err == nil {
		t.Error("registration beyond MaxDatasets accepted")
	}
}

func TestGetAndListing(t *testing.T) {
	s := New()
	if _, err := s.Get("nope"); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("Get error = %v, want ErrUnknownDataset", err)
	}
	db := testDB(t)
	mustRegister := func(name string) {
		t.Helper()
		if _, err := s.Register(name, "test", db); err != nil {
			t.Fatalf("Register %q: %v", name, err)
		}
	}
	mustRegister("zeta")
	mustRegister("alpha")
	if got, want := s.Names(), []string{"alpha", "zeta"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Names = %v, want %v", got, want)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	infos := s.List()
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "zeta" {
		t.Fatalf("List = %+v", infos)
	}
	if infos[0].Records != 4 || infos[0].Items != 3 || infos[0].CountScans != 1 {
		t.Errorf("Info = %+v", infos[0])
	}
	e, err := s.Get("alpha")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if e.Name() != "alpha" || e.Dataset() != db {
		t.Errorf("entry = %q / %p, want alpha / %p", e.Name(), e.Dataset(), db)
	}
}

func TestGenerateSynthetic(t *testing.T) {
	for _, kind := range []string{"bmspos", "kosarak", "t40i10d100k", "quest", "BMSPOS"} {
		db, err := GenerateSynthetic(kind, 1000, 7)
		if err != nil {
			t.Errorf("GenerateSynthetic(%q): %v", kind, err)
			continue
		}
		if db.NumRecords() == 0 || db.NumItems() == 0 {
			t.Errorf("GenerateSynthetic(%q) produced an empty dataset", kind)
		}
	}
	if _, err := GenerateSynthetic("nope", 1, 0); err == nil {
		t.Error("unknown synthetic kind accepted")
	}
}

func TestPreload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mini.dat")
	if err := os.WriteFile(path, []byte("0 1 2\n1 2\n2\n"), 0o600); err != nil {
		t.Fatal(err)
	}

	s := New()
	e, err := Preload{Name: "mini", Path: path}.Load(s)
	if err != nil {
		t.Fatalf("file preload: %v", err)
	}
	if got := e.Info(); got.Records != 3 || got.Items != 3 || got.Source != "file:"+path {
		t.Errorf("Info = %+v", got)
	}

	if _, err := (Preload{Name: "synth", Synthetic: "bmspos", Scale: 1000, Seed: 3}).Load(s); err != nil {
		t.Fatalf("synthetic preload: %v", err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}

	bad := []Preload{
		{Name: "both", Path: path, Synthetic: "bmspos"},
		{Name: "neither"},
		{Name: "nofile", Path: filepath.Join(dir, "missing.dat")},
		{Name: "nokind", Synthetic: "nope"},
	}
	for _, p := range bad {
		if _, err := p.Load(s); err == nil {
			t.Errorf("preload %+v accepted", p)
		}
	}
}

// TestConcurrentAccess exercises racing registrations and resolutions under
// the race detector.
func TestConcurrentAccess(t *testing.T) {
	s := New()
	db := testDB(t)
	if _, err := s.Register("shared", "test", db); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := []string{"a", "b", "c", "d", "e", "f", "g", "h"}[i]
			if _, err := s.Register(name, "test", db); err != nil {
				t.Errorf("Register %q: %v", name, err)
			}
			e, err := s.Get("shared")
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			e.ResolveAll()
			s.List()
		}(i)
	}
	wg.Wait()
	if got, err := s.Get("shared"); err != nil || got.Resolutions() != 8 {
		t.Errorf("shared resolutions = %v (err %v), want 8", got.Resolutions(), err)
	}
}
