package store

// Columnar dataset arenas. Each catalogued dataset's item-count vector lives
// in one flat, cache-line-aligned arena indexed densely by item id, together
// with the sketches the resolve path consults without touching the counts:
// a presence bitset (one bit per item id, set iff the item occurs in any
// transaction) plus min/max/nonzero summaries built in the same pass that
// fills the counts. The arena has a stable on-disk image — a 128-byte header
// followed by the counts column and the bitset — so a persistent server can
// write it once at registration and mmap it back on restart, skipping the
// full transaction recount (the only O(records) scan in a dataset's life).
//
// File layout (little-endian, the only byte order the server runs on):
//
//	offset   0: magic "FGARENA1"
//	offset   8: version  uint32
//	offset  12: flags    uint32 (reserved, zero)
//	offset  16: records  uint64 — transaction count fingerprint
//	offset  24: items    uint64 — item-universe size (len(counts))
//	offset  32: nonzero  uint64 — items with a non-zero count
//	offset  40: checksum uint64 — FNV-1a over the raw counts bytes
//	offset  48: min      float64 — smallest non-zero count (0 if none)
//	offset  56: max      float64 — largest count (0 if none)
//	offset  64: zblock   uint32  — records per zone block (0: no zones)
//	offset  68: zcount   uint32  — number of zone blocks
//	offset  72: zsum     uint64  — FNV-1a over the zone payload bytes
//	offset  80: reserved (zero) up to 128
//	offset 128: counts  [items]float64
//	then:       present [(items+63)/64]uint64
//	then:       zbloom  [zcount*8]uint64   — per-block item blooms
//	then:       zminlen [zcount]uint32     — per-block min record length
//	then:       zmaxlen [zcount]uint32     — per-block max record length
//
// The header is exactly two cache lines, so a page-aligned mapping leaves the
// counts column 128-byte aligned, and the zone bloom words land 8-aligned
// because the counts and bitset payloads are multiples of eight bytes.
// Loading validates the fingerprint (records, items, zone geometry), the
// checksums, and that the count sketches match the counts; any mismatch
// reports an error and the caller falls back to a fresh scan — a stale or
// corrupt arena file can never serve wrong counts. Version-1 files (no zone
// sketches) fail the version check and are rebuilt the same way.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"unsafe"
)

const (
	arenaMagic      = "FGARENA1"
	arenaVersion    = 2
	arenaHeaderSize = 128
	// arenaAlign is the alignment of the counts column: two cache lines, the
	// same offset the file header imposes on a page-aligned mapping.
	arenaAlign = 128
)

// ErrArenaInvalid reports an arena file that failed validation (wrong magic,
// fingerprint mismatch against the restored dataset, or corruption); callers
// treat it as "no arena" and rebuild from the transactions.
var ErrArenaInvalid = errors.New("store: invalid arena file")

// Arena is one dataset's columnar count storage plus its sketches. The
// counts slice may be backed by a read-only file mapping; it is read-only by
// contract either way, like the cached vector it replaces.
type Arena struct {
	counts  []float64
	present []uint64
	min     float64 // smallest non-zero count; 0 when every count is zero
	max     float64
	nonzero int
	zones   *Zones // per-block skipping sketches; nil when none were built

	mapping []byte // non-nil iff counts is a live file mapping (munmap on Close)
	path    string // the arena's file image, when one was written or loaded
}

// newArena builds an in-memory arena from a freshly scanned count vector,
// copying it into one aligned allocation and deriving the sketches.
func newArena(counts []float64) *Arena {
	a := &Arena{}
	a.counts, a.present = arenaAlloc(len(counts))
	copy(a.counts, counts)
	a.buildSketch()
	return a
}

// extendArena builds the arena of an appended dataset generation: the old
// counts column plus the delta contributions, with the presence bitset and
// min/max/nonzero sketches rebuilt in one O(items) vector pass. The
// transactions are never rescanned — deltaCounts (sized to the new item
// universe) carries everything the append changed. The caller attaches the
// extended zone sketches.
func extendArena(old *Arena, deltaCounts []float64) *Arena {
	// The persisted-arena path names the dataset, not the generation: it must
	// survive appends so a later Remove still unlinks the right file.
	a := &Arena{path: old.path}
	a.counts, a.present = arenaAlloc(len(deltaCounts))
	copy(a.counts, old.counts)
	for i, d := range deltaCounts {
		if d != 0 {
			a.counts[i] += d
		}
	}
	a.buildSketch()
	return a
}

// arenaAlloc carves the counts column and the presence bitset out of a single
// allocation with the counts cache-line-aligned.
func arenaAlloc(items int) ([]float64, []uint64) {
	words := (items + 63) / 64
	if items == 0 {
		return []float64{}, make([]uint64, words)
	}
	raw := make([]byte, items*8+words*8+arenaAlign-1)
	off := 0
	if rem := int(uintptr(unsafe.Pointer(&raw[0])) & (arenaAlign - 1)); rem != 0 {
		off = arenaAlign - rem
	}
	counts := unsafe.Slice((*float64)(unsafe.Pointer(&raw[off])), items)
	var present []uint64
	if words > 0 {
		present = unsafe.Slice((*uint64)(unsafe.Pointer(&raw[off+items*8])), words)
	}
	return counts, present
}

// buildSketch fills the presence bitset and min/max/nonzero summaries from
// the counts in one pass.
func (a *Arena) buildSketch() {
	for i := range a.present {
		a.present[i] = 0
	}
	a.min, a.max, a.nonzero = 0, 0, 0
	for i, c := range a.counts {
		if c == 0 {
			continue
		}
		a.present[i/64] |= 1 << (i % 64)
		if a.nonzero == 0 || c < a.min {
			a.min = c
		}
		if c > a.max {
			a.max = c
		}
		a.nonzero++
	}
}

// Counts returns the dense item-count column (read-only by contract; it may
// alias a read-only file mapping).
func (a *Arena) Counts() []float64 { return a.counts }

// Has reports whether item occurs in the dataset, answered from the presence
// bitset without touching the counts column.
func (a *Arena) Has(item int32) bool {
	if item < 0 || int(item) >= len(a.counts) {
		return false
	}
	return a.present[int(item)/64]&(1<<(uint(item)%64)) != 0
}

// MinCount returns the smallest non-zero count (0 when all counts are zero).
func (a *Arena) MinCount() float64 { return a.min }

// MaxCount returns the largest count.
func (a *Arena) MaxCount() float64 { return a.max }

// NonzeroItems returns how many items have a non-zero count.
func (a *Arena) NonzeroItems() int { return a.nonzero }

// Zones returns the arena's zone sketches, or nil when none were built (a
// nil receiver-safe value: the skipping paths treat nil as "scan every
// block").
func (a *Arena) Zones() *Zones { return a.zones }

// Mapped reports whether the arena is served from a file mapping (restart
// fast path) rather than an in-memory scan.
func (a *Arena) Mapped() bool { return a.mapping != nil }

// Path returns the arena's on-disk image path, when it was written with
// WriteArena or loaded with LoadArena ("" for purely in-memory arenas).
// Store.Remove unlinks it so a rolled-back registration cannot leak a stale
// arena file on disk.
func (a *Arena) Path() string { return a.path }

// Close releases the file mapping, if any. In-memory arenas are a no-op.
// The arena must not be used after Close.
func (a *Arena) Close() error {
	if a.mapping == nil {
		return nil
	}
	m := a.mapping
	a.mapping = nil
	a.counts, a.present, a.zones = nil, nil, nil
	return arenaUnmap(m)
}

// arenaPayloadSize returns the byte size of the counts + bitset payload.
func arenaPayloadSize(items int) int {
	return items*8 + ((items+63)/64)*8
}

// fnv1a is the 64-bit FNV-1a hash of b.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// countsBytes returns the raw little-endian byte image of the counts column.
// On the little-endian platforms the server targets this is a reinterpret,
// not a copy.
func countsBytes(counts []float64) []byte {
	if len(counts) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&counts[0])), len(counts)*8)
}

// WriteArena atomically writes the arena's on-disk image for a dataset with
// the given transaction count to path (tmp file + rename), creating the
// parent directory as needed.
func WriteArena(path string, records int, a *Arena) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	items := len(a.counts)
	zcount := a.zones.NumBlocks()
	buf := make([]byte, arenaHeaderSize+arenaPayloadSize(items)+zcount*zoneStride)
	copy(buf[0:8], arenaMagic)
	binary.LittleEndian.PutUint32(buf[8:12], arenaVersion)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(records))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(items))
	binary.LittleEndian.PutUint64(buf[32:40], uint64(a.nonzero))
	binary.LittleEndian.PutUint64(buf[40:48], fnv1a(countsBytes(a.counts)))
	binary.LittleEndian.PutUint64(buf[48:56], math.Float64bits(a.min))
	binary.LittleEndian.PutUint64(buf[56:64], math.Float64bits(a.max))
	payload := buf[arenaHeaderSize:]
	for i, c := range a.counts {
		binary.LittleEndian.PutUint64(payload[i*8:], math.Float64bits(c))
	}
	bits := payload[items*8:]
	for i, w := range a.present {
		binary.LittleEndian.PutUint64(bits[i*8:], w)
	}
	zp := payload[arenaPayloadSize(items):]
	if zcount > 0 {
		z := a.zones
		binary.LittleEndian.PutUint32(buf[64:68], uint32(z.block))
		binary.LittleEndian.PutUint32(buf[68:72], uint32(zcount))
		for i, w := range z.bloom {
			binary.LittleEndian.PutUint64(zp[i*8:], w)
		}
		mins := zp[zcount*zoneBloomWords*8:]
		for i, v := range z.minLen {
			binary.LittleEndian.PutUint32(mins[i*4:], v)
		}
		maxs := mins[zcount*4:]
		for i, v := range z.maxLen {
			binary.LittleEndian.PutUint32(maxs[i*4:], v)
		}
	}
	binary.LittleEndian.PutUint64(buf[72:80], fnv1a(zp))

	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	a.path = path
	return nil
}

// LoadArena opens the arena image at path for a dataset with the given
// transaction count and item universe, validates it end to end, and returns
// it — mmapped read-only when useMmap is set and the platform supports it,
// otherwise read into an aligned in-memory arena. Any mismatch (fingerprint,
// checksum, sketch) returns ErrArenaInvalid so the caller rebuilds from the
// transactions instead.
func LoadArena(path string, records, items int, useMmap bool) (*Arena, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var hdr [arenaHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("%w: %s: reading header: %v", ErrArenaInvalid, path, err)
	}
	zblock := int(binary.LittleEndian.Uint32(hdr[64:68]))
	zcount := int(binary.LittleEndian.Uint32(hdr[68:72]))
	wantSize := int64(arenaHeaderSize + arenaPayloadSize(items) + zcount*zoneStride)
	switch {
	case string(hdr[0:8]) != arenaMagic:
		return nil, fmt.Errorf("%w: %s: bad magic", ErrArenaInvalid, path)
	case binary.LittleEndian.Uint32(hdr[8:12]) != arenaVersion:
		return nil, fmt.Errorf("%w: %s: version %d, want %d", ErrArenaInvalid, path, binary.LittleEndian.Uint32(hdr[8:12]), arenaVersion)
	case binary.LittleEndian.Uint64(hdr[16:24]) != uint64(records):
		return nil, fmt.Errorf("%w: %s: records %d, dataset has %d", ErrArenaInvalid, path, binary.LittleEndian.Uint64(hdr[16:24]), records)
	case binary.LittleEndian.Uint64(hdr[24:32]) != uint64(items):
		return nil, fmt.Errorf("%w: %s: items %d, dataset has %d", ErrArenaInvalid, path, binary.LittleEndian.Uint64(hdr[24:32]), items)
	case zcount > 0 && (zblock <= 0 || zcount != (records+zblock-1)/zblock):
		return nil, fmt.Errorf("%w: %s: zone geometry %d×%d disagrees with %d records", ErrArenaInvalid, path, zcount, zblock, records)
	case st.Size() != wantSize:
		return nil, fmt.Errorf("%w: %s: size %d, want %d", ErrArenaInvalid, path, st.Size(), wantSize)
	}

	a := &Arena{path: path}
	zoneOff := arenaHeaderSize + arenaPayloadSize(items)
	if useMmap && items > 0 {
		if m, err := arenaMap(f, int(wantSize)); err == nil {
			a.mapping = m
			a.counts = unsafe.Slice((*float64)(unsafe.Pointer(&m[arenaHeaderSize])), items)
			a.present = unsafe.Slice((*uint64)(unsafe.Pointer(&m[arenaHeaderSize+items*8])), (items+63)/64)
			if zcount > 0 {
				// The zone arrays start 8-aligned: header, counts and bitset
				// are all multiples of eight bytes.
				a.zones = &Zones{
					block:   zblock,
					records: records,
					bloom:   unsafe.Slice((*uint64)(unsafe.Pointer(&m[zoneOff])), zcount*zoneBloomWords),
					minLen:  unsafe.Slice((*uint32)(unsafe.Pointer(&m[zoneOff+zcount*zoneBloomWords*8])), zcount),
					maxLen:  unsafe.Slice((*uint32)(unsafe.Pointer(&m[zoneOff+zcount*zoneBloomWords*8+zcount*4])), zcount),
				}
			}
		}
	}
	if a.mapping == nil {
		// Fallback (mmap unsupported, failed, or an empty universe): read the
		// payload into a fresh aligned arena.
		a.counts, a.present = arenaAlloc(items)
		payload := make([]byte, arenaPayloadSize(items))
		if _, err := f.ReadAt(payload, arenaHeaderSize); err != nil {
			return nil, fmt.Errorf("%w: %s: reading payload: %v", ErrArenaInvalid, path, err)
		}
		for i := range a.counts {
			a.counts[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
		}
		bits := payload[items*8:]
		for i := range a.present {
			a.present[i] = binary.LittleEndian.Uint64(bits[i*8:])
		}
		if zcount > 0 {
			zp := make([]byte, zcount*zoneStride)
			if _, err := f.ReadAt(zp, int64(zoneOff)); err != nil {
				return nil, fmt.Errorf("%w: %s: reading zone payload: %v", ErrArenaInvalid, path, err)
			}
			z := &Zones{
				block:   zblock,
				records: records,
				bloom:   make([]uint64, zcount*zoneBloomWords),
				minLen:  make([]uint32, zcount),
				maxLen:  make([]uint32, zcount),
			}
			for i := range z.bloom {
				z.bloom[i] = binary.LittleEndian.Uint64(zp[i*8:])
			}
			mins := zp[zcount*zoneBloomWords*8:]
			for i := range z.minLen {
				z.minLen[i] = binary.LittleEndian.Uint32(mins[i*4:])
			}
			maxs := mins[zcount*4:]
			for i := range z.maxLen {
				z.maxLen[i] = binary.LittleEndian.Uint32(maxs[i*4:])
			}
			a.zones = z
		}
	}

	if err := a.validate(hdr); err != nil {
		a.Close()
		return nil, fmt.Errorf("%w: %s: %v", ErrArenaInvalid, path, err)
	}
	if zcount > 0 {
		if err := a.validateZones(hdr, f, zoneOff, zcount); err != nil {
			a.Close()
			return nil, fmt.Errorf("%w: %s: %v", ErrArenaInvalid, path, err)
		}
	}
	return a, nil
}

// validateZones checks the zone payload checksum against the header. The
// sketches cannot be recomputed without the transactions, so the checksum
// plus the records fingerprint is the fail-closed gate: corruption is
// caught, and a sketch for the wrong dataset fails the geometry check.
func (a *Arena) validateZones(hdr [arenaHeaderSize]byte, f *os.File, zoneOff, zcount int) error {
	var zp []byte
	if a.mapping != nil {
		zp = a.mapping[zoneOff : zoneOff+zcount*zoneStride]
	} else {
		zp = make([]byte, zcount*zoneStride)
		if _, err := f.ReadAt(zp, int64(zoneOff)); err != nil {
			return fmt.Errorf("reading zone payload: %v", err)
		}
	}
	if got, want := fnv1a(zp), binary.LittleEndian.Uint64(hdr[72:80]); got != want {
		return fmt.Errorf("zone checksum %#x, header says %#x", got, want)
	}
	return nil
}

// validate checks the loaded payload against the header: counts checksum,
// sketch summaries, and bitset consistency. One pass over the column — still
// orders of magnitude cheaper than the transaction rescan it replaces.
func (a *Arena) validate(hdr [arenaHeaderSize]byte) error {
	if got, want := fnv1a(countsBytes(a.counts)), binary.LittleEndian.Uint64(hdr[40:48]); got != want {
		return fmt.Errorf("counts checksum %#x, header says %#x", got, want)
	}
	var (
		min, max float64
		nonzero  int
	)
	for i, c := range a.counts {
		bit := a.present[i/64]&(1<<(i%64)) != 0
		if (c != 0) != bit {
			return fmt.Errorf("presence bit for item %d disagrees with its count", i)
		}
		if c == 0 {
			continue
		}
		if nonzero == 0 || c < min {
			min = c
		}
		if c > max {
			max = c
		}
		nonzero++
	}
	if uint64(nonzero) != binary.LittleEndian.Uint64(hdr[32:40]) {
		return fmt.Errorf("nonzero %d, header says %d", nonzero, binary.LittleEndian.Uint64(hdr[32:40]))
	}
	if math.Float64bits(min) != binary.LittleEndian.Uint64(hdr[48:56]) {
		return errors.New("min sketch disagrees with counts")
	}
	if math.Float64bits(max) != binary.LittleEndian.Uint64(hdr[56:64]) {
		return errors.New("max sketch disagrees with counts")
	}
	a.min, a.max, a.nonzero = min, max, nonzero
	return nil
}
