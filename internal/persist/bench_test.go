package persist

import (
	"fmt"
	"testing"
	"time"

	"github.com/freegap/freegap/internal/accountant"
)

// BenchmarkWALReplay measures Open on a WAL left behind by a crash (no
// snapshot): the cost a restarted server pays before serving. One iteration
// replays the whole log.
func BenchmarkWALReplay(b *testing.B) {
	for _, records := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, Options{Fsync: FsyncOff, FlushInterval: time.Millisecond, CompactEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < records; i++ {
				tenant := fmt.Sprintf("tenant-%03d", i%128)
				l.AppendCharge(tenant, []accountant.Charge{{Label: "topk", Epsilon: 0.001}})
			}
			if err := l.Flush(); err != nil {
				b.Fatal(err)
			}
			if err := l.Abort(); err != nil { // keep the WAL un-compacted
				b.Fatal(err)
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rl, err := Open(dir, Options{Fsync: FsyncOff, CompactEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				st := rl.State()
				if len(st.Tenants) == 0 {
					b.Fatal("no tenants replayed")
				}
				if err := rl.Abort(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAppendCharge measures the journal hot path alone: the cost a
// request handler pays per admitted charge with batched fsync.
func BenchmarkAppendCharge(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncOff, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	charges := []accountant.Charge{{Label: "topk", Epsilon: 0.001}}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.AppendCharge("bench", charges)
	}
}
