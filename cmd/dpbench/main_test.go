package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout for the duration of fn and returns what
// was written.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "stdout"))
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	defer func() { os.Stdout = old }()
	runErr := fn()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunDatasetsTable(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-experiments", "datasets", "-scale", "500", "-trials", "10"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "BMS-POS") || !strings.Contains(out, "Kosarak") {
		t.Fatalf("dataset table missing rows:\n%s", out)
	}
}

func TestRunSingleFigureCSV(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-experiments", "fig4", "-scale", "500", "-trials", "20", "-format", "csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "k,BMS-POS") {
		t.Fatalf("CSV header missing:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
		t.Fatalf("too few CSV rows:\n%s", out)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-experiments", "corollary1,ties", "-scale", "500", "-trials", "20"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Corollary 1") || !strings.Contains(out, "tie probability") {
		t.Fatalf("expected both experiments in output:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiments", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-notaflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunServeBench(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-experiments", "servebench", "-parallel", "2", "-tenants", "4", "-trials", "50"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"servebench", "inline", "resolved", "ops/sec"} {
		if !strings.Contains(out, want) {
			t.Errorf("servebench output missing %q:\n%s", want, out)
		}
	}
}

func TestRunServeBenchCSV(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-experiments", "servebench", "-parallel", "2", "-tenants", "4", "-trials", "50", "-format", "csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "scenario,parallel,tenants,requests,elapsed_ms,ops_per_sec") {
		t.Errorf("servebench csv output missing header:\n%s", out)
	}
}
