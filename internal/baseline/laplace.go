package baseline

import (
	"fmt"

	"github.com/freegap/freegap/internal/rng"
)

// LaplaceMechanism answers a vector-valued query by adding independent
// Laplace(sensitivity/ε) noise to every coordinate (Theorem 1 of the paper).
type LaplaceMechanism struct {
	Epsilon     float64 // total privacy budget for the whole vector
	Sensitivity float64 // L1 sensitivity of the whole vector answer
}

// NewLaplaceMechanism validates the parameters and returns the mechanism.
func NewLaplaceMechanism(epsilon, sensitivity float64) (*LaplaceMechanism, error) {
	if !(epsilon > 0) {
		return nil, fmt.Errorf("baseline: epsilon %v must be positive", epsilon)
	}
	if !(sensitivity > 0) {
		return nil, fmt.Errorf("baseline: sensitivity %v must be positive", sensitivity)
	}
	return &LaplaceMechanism{Epsilon: epsilon, Sensitivity: sensitivity}, nil
}

// Scale returns the Laplace scale parameter sensitivity/ε used per coordinate.
func (m *LaplaceMechanism) Scale() float64 { return m.Sensitivity / m.Epsilon }

// Variance returns the per-coordinate noise variance 2·(sensitivity/ε)².
func (m *LaplaceMechanism) Variance() float64 { return rng.LaplaceVariance(m.Scale()) }

// Answer returns answers + Laplace(Scale()) noise, coordinate-wise.
func (m *LaplaceMechanism) Answer(src rng.Source, answers []float64) []float64 {
	out := make([]float64, len(answers))
	for i, a := range answers {
		out[i] = a + rng.Laplace(src, m.Scale())
	}
	return out
}

// MeasureSelected answers only the queries at the given indices, splitting the
// mechanism's budget evenly across them: each selected query receives
// Laplace(k·sensitivity/ε) noise, which is the measurement stage used in
// Sections 5.2 and 6.2 (add Laplace(2k/ε) noise when ε here is half the total
// budget).
func (m *LaplaceMechanism) MeasureSelected(src rng.Source, answers []float64, indices []int) ([]float64, error) {
	k := len(indices)
	if k == 0 {
		return nil, nil
	}
	scale := float64(k) * m.Sensitivity / m.Epsilon
	out := make([]float64, k)
	for i, idx := range indices {
		if idx < 0 || idx >= len(answers) {
			return nil, fmt.Errorf("baseline: selected index %d out of range [0,%d)", idx, len(answers))
		}
		out[i] = answers[idx] + rng.Laplace(src, scale)
	}
	return out, nil
}

// MeasurementVariance returns the per-query variance of MeasureSelected when k
// queries share the budget: 2·(k·sensitivity/ε)².
func (m *LaplaceMechanism) MeasurementVariance(k int) float64 {
	scale := float64(k) * m.Sensitivity / m.Epsilon
	return rng.LaplaceVariance(scale)
}
