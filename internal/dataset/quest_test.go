package dataset

import (
	"math"
	"testing"
)

func TestQuestGenerate(t *testing.T) {
	cfg := T40I10D100KConfig().ScaledDown(50)
	db := cfg.Generate(5)
	if db.NumRecords() != cfg.Transactions {
		t.Fatalf("records = %d, want %d", db.NumRecords(), cfg.Transactions)
	}
	if db.NumItems() != cfg.Items {
		t.Fatalf("items = %d, want %d", db.NumItems(), cfg.Items)
	}
	mean := db.MeanLength()
	// The corruption step drops items so the realised mean is below T, but it
	// must be in the right ballpark (tens of items, not units).
	if mean < 10 || mean > 60 {
		t.Fatalf("mean transaction length %v implausible for T=40", mean)
	}
	for i := 0; i < db.NumRecords(); i++ {
		rec := db.Record(i)
		if len(rec) == 0 {
			t.Fatalf("record %d empty", i)
		}
		seen := map[int32]bool{}
		for _, it := range rec {
			if it < 0 || int(it) >= cfg.Items {
				t.Fatalf("record %d contains out-of-universe item %d", i, it)
			}
			if seen[it] {
				t.Fatalf("record %d has duplicate item %d", i, it)
			}
			seen[it] = true
		}
	}
}

func TestQuestDeterministic(t *testing.T) {
	cfg := T40I10D100KConfig().ScaledDown(100)
	a := cfg.Generate(9).ItemCounts()
	b := cfg.Generate(9).ItemCounts()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different Quest datasets")
		}
	}
}

func TestQuestPatternsInduceCorrelation(t *testing.T) {
	// With only a handful of patterns, items from the same pattern should
	// co-occur far more often than independent items would.
	cfg := QuestConfig{
		Name:                "tiny-quest",
		Transactions:        5000,
		AvgTransactionLen:   8,
		AvgPatternLen:       4,
		NumPatterns:         10,
		Items:               200,
		CorruptionMean:      0.2,
		CorruptionDeviation: 0.05,
	}
	db := cfg.Generate(21)
	counts := db.ItemCounts()
	sum := 0.0
	maxC := 0.0
	for _, c := range counts {
		sum += c
		if c > maxC {
			maxC = c
		}
	}
	meanC := sum / float64(len(counts))
	if maxC < 3*meanC {
		t.Fatalf("expected pattern items to dominate: max %v mean %v", maxC, meanC)
	}
}

func TestQuestPanicsOnInvalidConfig(t *testing.T) {
	bad := QuestConfig{Transactions: 0, Items: 10, NumPatterns: 5}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad.Generate(1)
}

func TestQuestScaledDown(t *testing.T) {
	cfg := T40I10D100KConfig()
	if got := cfg.ScaledDown(4).Transactions; got != 25000 {
		t.Fatalf("ScaledDown(4) transactions = %d", got)
	}
	if got := cfg.ScaledDown(1).Transactions; got != cfg.Transactions {
		t.Fatal("factor 1 must be identity")
	}
	if got := cfg.ScaledDown(1 << 20).Transactions; got != 1000 {
		t.Fatalf("floor should be 1000, got %d", got)
	}
	if math.Abs(cfg.AvgTransactionLen-40) > 0 {
		t.Fatal("scaling must not alter T")
	}
}
