// Privacy audit: empirically check the ε-differential-privacy guarantee of the
// gap-releasing mechanisms, the way the test suite does. The audit runs a
// mechanism tens of thousands of times on two adjacent databases, histograms
// the discrete part of its output, and reports the largest observed
// log-probability ratio ε̂. An honest implementation stays at or below its
// configured ε (up to sampling error); an implementation that under-scales its
// noise is flagged immediately.
package main

import (
	"fmt"
	"log"

	freegap "github.com/freegap/freegap"
)

func main() {
	// Adjacent counting-query workloads: removing one record that touches the
	// first, second and fourth item decrements those three counts.
	d := []float64{12, 11, 10, 4, 3}
	dPrime := []float64{11, 10, 10, 3, 3}

	const eps = 0.7
	cfg := freegap.AuditConfig{Trials: 80000, Seed: 7}

	audits := []struct {
		name string
		mech freegap.AuditMechanism
	}{
		{"Noisy-Top-K-with-Gap (k=2, honest)", freegap.AuditTopK(2, eps, false)},
		{"Adaptive-SVT-with-Gap (k=2, honest)", freegap.AuditAdaptiveSVT(2, eps, 9, true)},
		// A deliberately broken variant that claims eps but adds 5x less
		// noise; its true privacy loss is 5*eps and the audit should say so.
		{"Noisy-Top-K-with-Gap (k=2, BROKEN: noise 5x too small)", freegap.AuditTopK(2, 5*eps, false)},
	}

	fmt.Printf("auditing at claimed eps = %.2f (%d trials per database)\n\n", eps, cfg.Trials)
	for _, a := range audits {
		res, err := freegap.EstimateEpsilon(a.mech, d, dPrime, cfg)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "OK: within budget"
		if res.EpsilonHat > eps+0.2 {
			verdict = "VIOLATION: observed loss exceeds the claimed budget"
		}
		fmt.Printf("%-55s epsilon-hat = %.3f   %s\n", a.name, res.EpsilonHat, verdict)
	}
}
