package store

// Zone sketches for data skipping. At registration the store cuts a
// dataset's transaction list into fixed-size blocks of consecutive records
// and summarises each block with a zone sketch: the min/max record length in
// the block plus a small bloom filter over the item ids the block's records
// contain. A filter query consults the sketches before touching a block —
// a length range outside [min,max], or a required item whose bloom probe
// misses, proves the block holds no matching record and the whole block is
// skipped. Sketches are built in the registration scan (the same O(records)
// pass that fills the count column) and persisted in the arena image; an
// append extends them with ExtendZones, which scans only the appended
// records — block sketches are monotone under adding records, so the shared
// prefix is copied, never rebuilt.
//
// The bloom geometry is fixed: 512 bits (8 words) per block, two probes per
// item, both derived from one multiplicative hash. With the default 2048
// records per block the sketch overhead is 72 bytes per 2048 records —
// under 0.05% of a typical transaction payload.

import "github.com/freegap/freegap/internal/dataset"

const (
	// DefaultZoneBlock is the number of consecutive records summarised by
	// one zone sketch.
	DefaultZoneBlock = 2048
	// zoneBloomWords is the bloom filter width per block, in 64-bit words.
	zoneBloomWords = 8
	zoneBloomBits  = zoneBloomWords * 64
	// zoneStride is the on-disk size of one block's sketch: the bloom words
	// plus the two length bounds.
	zoneStride = zoneBloomWords*8 + 4 + 4
)

// Zones holds one dataset's per-block sketches. The slices may alias a
// read-only arena mapping; they are read-only by contract.
type Zones struct {
	block   int // records per block
	records int // total records covered
	minLen  []uint32
	maxLen  []uint32
	bloom   []uint64 // NumBlocks * zoneBloomWords words
}

// BuildZones scans db once and returns its zone sketches with block records
// per zone. A nil or empty dataset returns zero blocks.
func BuildZones(db *dataset.Transactions, block int) *Zones {
	if block <= 0 {
		block = DefaultZoneBlock
	}
	records := db.NumRecords()
	blocks := (records + block - 1) / block
	z := &Zones{
		block:   block,
		records: records,
		minLen:  make([]uint32, blocks),
		maxLen:  make([]uint32, blocks),
		bloom:   make([]uint64, blocks*zoneBloomWords),
	}
	for b := 0; b < blocks; b++ {
		lo, hi := z.BlockRange(b)
		minLen, maxLen := ^uint32(0), uint32(0)
		words := z.bloom[b*zoneBloomWords : (b+1)*zoneBloomWords]
		for r := lo; r < hi; r++ {
			rec := db.Record(r)
			if n := uint32(len(rec)); n < minLen {
				minLen = n
			}
			if n := uint32(len(rec)); n > maxLen {
				maxLen = n
			}
			for _, item := range rec {
				w1, m1, w2, m2 := zoneProbes(item)
				words[w1] |= m1
				words[w2] |= m2
			}
		}
		z.minLen[b], z.maxLen[b] = minLen, maxLen
	}
	return z
}

// ExtendZones returns sketches covering db's full record list, given z built
// over the first oldRecords of it. Untouched whole blocks are copied; the
// trailing partial block (if any) and the fresh blocks are updated by
// scanning only records [oldRecords, NumRecords) — min/max length and bloom
// bits are monotone under adding records, so extending in place on a copy is
// exactly equivalent to a full rebuild. A nil z (no sketches to extend)
// falls back to BuildZones.
func ExtendZones(z *Zones, db *dataset.Transactions, oldRecords int) *Zones {
	if z == nil || z.block <= 0 {
		return BuildZones(db, DefaultZoneBlock)
	}
	records := db.NumRecords()
	blocks := (records + z.block - 1) / z.block
	nz := &Zones{
		block:   z.block,
		records: records,
		minLen:  make([]uint32, blocks),
		maxLen:  make([]uint32, blocks),
		bloom:   make([]uint64, blocks*zoneBloomWords),
	}
	copy(nz.minLen, z.minLen)
	copy(nz.maxLen, z.maxLen)
	copy(nz.bloom, z.bloom)
	for b := z.NumBlocks(); b < blocks; b++ {
		nz.minLen[b] = ^uint32(0) // BuildZones' empty-block sentinel
	}
	for r := oldRecords; r < records; r++ {
		b := r / nz.block
		rec := db.Record(r)
		if n := uint32(len(rec)); n < nz.minLen[b] {
			nz.minLen[b] = n
		}
		if n := uint32(len(rec)); n > nz.maxLen[b] {
			nz.maxLen[b] = n
		}
		words := nz.bloom[b*zoneBloomWords : (b+1)*zoneBloomWords]
		for _, item := range rec {
			w1, m1, w2, m2 := zoneProbes(item)
			words[w1] |= m1
			words[w2] |= m2
		}
	}
	return nz
}

// zoneProbes derives the two bloom probe positions for an item id from one
// Fibonacci-multiplicative hash: the top bits index one probe each.
func zoneProbes(item int32) (w1 int, m1 uint64, w2 int, m2 uint64) {
	h := uint64(uint32(item)+1) * 0x9E3779B97F4A7C15
	b1 := (h >> 55) & (zoneBloomBits - 1)
	b2 := (h >> 46) & (zoneBloomBits - 1)
	return int(b1 >> 6), 1 << (b1 & 63), int(b2 >> 6), 1 << (b2 & 63)
}

// NumBlocks returns the number of zone blocks.
func (z *Zones) NumBlocks() int {
	if z == nil {
		return 0
	}
	return len(z.minLen)
}

// Block returns the block size in records.
func (z *Zones) Block() int { return z.block }

// BlockRange returns block b's record range [lo, hi).
func (z *Zones) BlockRange(b int) (lo, hi int) {
	lo = b * z.block
	hi = lo + z.block
	if hi > z.records {
		hi = z.records
	}
	return lo, hi
}

// SkipBlock reports whether block b provably holds no record matching the
// predicate: the block's record lengths all fall outside [minLen, maxLen]
// (maxLen 0 means unbounded), or a required item's bloom probes miss. A
// false return proves nothing — the block must still be scanned.
func (z *Zones) SkipBlock(b int, contains []int32, minLen, maxLen int) bool {
	if int(z.maxLen[b]) < minLen || (maxLen > 0 && int(z.minLen[b]) > maxLen) {
		return true
	}
	words := z.bloom[b*zoneBloomWords : (b+1)*zoneBloomWords]
	for _, item := range contains {
		w1, m1, w2, m2 := zoneProbes(item)
		if words[w1]&m1 == 0 || words[w2]&m2 == 0 {
			return true
		}
	}
	return false
}
