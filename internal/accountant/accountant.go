// Package accountant tracks privacy-loss budget under sequential composition
// (Section 3.1 of the paper): running mechanisms with budgets ε₁, …, ε_k on
// the same data costs Σεᵢ. The adaptive Sparse Vector experiments (Figure 4)
// report the fraction of budget an analyst has left after the mechanism
// stops, which is exactly the accountant's Remaining value.
package accountant

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrBudgetExceeded is returned by Spend when a charge would push total
// spending above the configured budget.
var ErrBudgetExceeded = errors.New("accountant: privacy budget exceeded")

// ErrInvalidCharge is returned when a non-positive or NaN charge is requested.
var ErrInvalidCharge = errors.New("accountant: charge must be a positive finite value")

// BudgetError is the concrete error returned by Spend/SpendBatch when a
// charge is refused. It wraps ErrBudgetExceeded (errors.Is keeps working) and
// carries the admission arithmetic, so callers can distinguish a budget that
// is already exhausted — no positive charge would fit — from a single
// (possibly batched) charge that is merely too large for what remains.
type BudgetError struct {
	// Spent is the budget consumed before the refused charge.
	Spent float64
	// Requested is the refused charge (the batch total for SpendBatch).
	Requested float64
	// Budget is the configured total budget.
	Budget float64
	// Batch records whether the refused admission held more than one charge.
	Batch bool
}

// Error reproduces the historical message format, so clients matching on the
// text keep working.
func (e *BudgetError) Error() string {
	kind := "charge"
	if e.Batch {
		kind = "batch charge"
	}
	return fmt.Sprintf("accountant: privacy budget exceeded: spent %.6g + %s %.6g > budget %.6g",
		e.Spent, kind, e.Requested, e.Budget)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) hold for every BudgetError.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Exhausted reports whether the budget was already fully spent when the
// charge was refused — the smallest admissible charge would also have been
// rejected — as opposed to this particular charge exceeding a non-trivial
// remainder (the "would-exceed in batch" case).
func (e *BudgetError) Exhausted() bool { return e.Spent >= e.Budget-tolerance }

// Remaining returns the unspent budget at refusal time (never negative).
func (e *BudgetError) Remaining() float64 {
	r := e.Budget - e.Spent
	if r < 0 {
		return 0
	}
	return r
}

// tolerance absorbs floating-point drift when many small charges should sum
// exactly to the budget (e.g. ε₀ + Σεᵢ = ε in Algorithm 2).
const tolerance = 1e-9

// Accountant is a thread-safe sequential-composition budget tracker.
type Accountant struct {
	mu     sync.Mutex
	budget float64
	spent  float64
	log    []Charge
	// restored counts charges folded into the accountant by Restore beyond
	// the entries materialised in log (a compacted snapshot aggregates the
	// log by label but preserves the admitted-charge count).
	restored int
	// journal, when set, observes every admitted charge batch. It is called
	// with the accountant's lock held, immediately after the batch commits,
	// so journal order equals commit order and an entry is journalled iff
	// the charge was admitted. The callback must be fast and must not call
	// back into the accountant.
	journal func(charges []Charge)
}

// Charge records one budget expenditure for auditability.
type Charge struct {
	Label   string
	Epsilon float64
}

// New creates an accountant with the given total ε budget.
func New(budget float64) (*Accountant, error) {
	if !(budget > 0) {
		return nil, fmt.Errorf("accountant: budget %v must be positive", budget)
	}
	return &Accountant{budget: budget}, nil
}

// MustNew is New for static configurations known to be valid; it panics on
// error.
func MustNew(budget float64) *Accountant {
	a, err := New(budget)
	if err != nil {
		panic(err)
	}
	return a
}

// Budget returns the configured total budget.
func (a *Accountant) Budget() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget
}

// Spent returns the total ε charged so far.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Remaining returns the unspent budget (never negative).
func (a *Accountant) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.budget - a.spent
	if r < 0 {
		return 0
	}
	return r
}

// RemainingFraction returns Remaining()/Budget(), the quantity plotted in
// Figure 4.
func (a *Accountant) RemainingFraction() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.budget - a.spent
	if r < 0 {
		r = 0
	}
	return r / a.budget
}

// CanSpend reports whether a charge of eps would be admissible.
func (a *Accountant) CanSpend(eps float64) bool {
	if !(eps > 0) {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent+eps <= a.budget+tolerance
}

// Spend charges eps against the budget under the given label. It returns
// ErrBudgetExceeded (and charges nothing) if the budget would be exceeded.
// It is the one-charge case of SpendBatch, so single and batched requests
// share one admission rule.
func (a *Accountant) Spend(label string, eps float64) error {
	return a.SpendBatch([]Charge{{Label: label, Epsilon: eps}})
}

// SpendBatch charges every entry of charges against the budget atomically:
// either all of them are admitted, or (when their sum would exceed the
// budget) none are and ErrBudgetExceeded is returned. It is the primitive
// behind batched serving — a batch reserved in one SpendBatch can never
// overspend what the same requests charged serially could, and concurrent
// batches race for the budget as single indivisible units.
func (a *Accountant) SpendBatch(charges []Charge) error {
	if len(charges) == 0 {
		return fmt.Errorf("%w: empty batch", ErrInvalidCharge)
	}
	var sum float64
	for _, c := range charges {
		if !(c.Epsilon > 0) {
			return fmt.Errorf("%w: %v (label %q)", ErrInvalidCharge, c.Epsilon, c.Label)
		}
		sum += c.Epsilon
	}
	if math.IsInf(sum, 0) || math.IsNaN(sum) {
		return fmt.Errorf("%w: batch total %v", ErrInvalidCharge, sum)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spent+sum > a.budget+tolerance {
		return &BudgetError{Spent: a.spent, Requested: sum, Budget: a.budget, Batch: len(charges) > 1}
	}
	a.spent += sum
	a.log = append(a.log, charges...)
	if a.journal != nil {
		a.journal(charges)
	}
	return nil
}

// SetJournal installs fn as the accountant's charge journal: it is invoked
// with every admitted charge batch, under the accountant's lock, right after
// the batch commits. Persistence layers use it to write a WAL entry iff the
// charge committed. Install the journal before the accountant is shared
// between goroutines; passing nil removes it.
func (a *Accountant) SetJournal(fn func(charges []Charge)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.journal = fn
}

// Restore replaces the accountant's spending state with a previously
// journalled one: charges become the expenditure log (a compacted snapshot
// supplies per-label aggregates) and chargeCount the number of originally
// admitted charges (>= len(charges)). Restoration bypasses the admission
// check on purpose — if the configured budget shrank between runs the
// restored spend may exceed it, in which case every further Spend is
// rejected, which is the safe direction for a privacy accountant. The
// journal is not invoked: restored charges are already durable.
func (a *Accountant) Restore(charges []Charge, chargeCount int) error {
	var sum float64
	for i, c := range charges {
		if !(c.Epsilon > 0) || math.IsInf(c.Epsilon, 0) {
			return fmt.Errorf("%w: restored charge %d: %v (label %q)", ErrInvalidCharge, i, c.Epsilon, c.Label)
		}
		sum += c.Epsilon
	}
	if math.IsInf(sum, 0) || math.IsNaN(sum) {
		return fmt.Errorf("%w: restored total %v", ErrInvalidCharge, sum)
	}
	if chargeCount < len(charges) {
		return fmt.Errorf("accountant: restored charge count %d below %d log entries", chargeCount, len(charges))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent = sum
	a.log = append(a.log[:0], charges...)
	a.restored = chargeCount - len(charges)
	return nil
}

// ChargeCount returns the number of admitted charges (including charges
// folded into a restored snapshot) without copying the log.
func (a *Accountant) ChargeCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.restored + len(a.log)
}

// Charges returns a copy of the expenditure log in order.
func (a *Accountant) Charges() []Charge {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Charge, len(a.log))
	copy(out, a.log)
	return out
}

// SpentByLabel aggregates the expenditure log by charge label — the
// per-mechanism spend breakdown a tenant sees on its budget ledger.
func (a *Accountant) SpentByLabel() map[string]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]float64, 8)
	for _, c := range a.log {
		out[c.Label] += c.Epsilon
	}
	return out
}

// Reset clears all spending (including restored state), keeping the budget.
func (a *Accountant) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent = 0
	a.log = a.log[:0]
	a.restored = 0
}

// Split divides the remaining budget into n equal shares and returns the
// per-share ε without charging anything. It is how the "half for selection,
// half for measurement" protocols of Sections 5.2 and 6.2 are expressed.
func (a *Accountant) Split(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("accountant: cannot split into %d shares", n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.budget - a.spent
	if r <= 0 {
		return 0, ErrBudgetExceeded
	}
	return r / float64(n), nil
}
