package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLaplaceMoments(t *testing.T) {
	src := NewXoshiro(101)
	for _, scale := range []float64{0.5, 1, 2, 10} {
		const n = 300000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := Laplace(src, scale)
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		want := 2 * scale * scale
		if math.Abs(mean) > 0.03*scale {
			t.Errorf("scale %v: mean %v not near 0", scale, mean)
		}
		if math.Abs(variance-want) > 0.06*want {
			t.Errorf("scale %v: variance %v, want ≈ %v", scale, variance, want)
		}
	}
}

func TestLaplaceSymmetry(t *testing.T) {
	src := NewXoshiro(7)
	const n = 200000
	pos := 0
	for i := 0; i < n; i++ {
		if Laplace(src, 1) > 0 {
			pos++
		}
	}
	frac := float64(pos) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("positive fraction %v not near 0.5", frac)
	}
}

func TestLaplacePanicsOnBadScale(t *testing.T) {
	for _, scale := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for scale %v", scale)
				}
			}()
			Laplace(NewXoshiro(1), scale)
		}()
	}
}

func TestLaplaceVec(t *testing.T) {
	src := NewXoshiro(2)
	v := LaplaceVec(src, 1, 10, nil)
	if len(v) != 10 {
		t.Fatalf("len = %d, want 10", len(v))
	}
	buf := make([]float64, 20)
	w := LaplaceVec(src, 1, 5, buf)
	if len(w) != 5 {
		t.Fatalf("len = %d, want 5", len(w))
	}
	if &w[0] != &buf[0] {
		t.Fatal("LaplaceVec did not reuse provided buffer")
	}
}

func TestExponentialMean(t *testing.T) {
	src := NewXoshiro(31)
	for _, mean := range []float64{0.5, 1, 4} {
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := Exponential(src, mean)
			if v < 0 {
				t.Fatalf("exponential sample %v negative", v)
			}
			sum += v
		}
		got := sum / n
		if math.Abs(got-mean) > 0.03*mean {
			t.Errorf("Exponential(%v) mean %v", mean, got)
		}
	}
}

func TestGumbelMean(t *testing.T) {
	src := NewXoshiro(41)
	const n = 300000
	const scale = 2.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Gumbel(src, scale)
	}
	got := sum / n
	want := scale * 0.5772156649 // Euler–Mascheroni constant
	if math.Abs(got-want) > 0.05*want+0.02 {
		t.Fatalf("Gumbel mean %v, want ≈ %v", got, want)
	}
}

func TestLaplaceCDFProperties(t *testing.T) {
	f := func(rawX, rawScale float64) bool {
		x := math.Mod(rawX, 50)
		scale := math.Abs(math.Mod(rawScale, 10)) + 0.1
		c := LaplaceCDF(x, scale)
		if c < 0 || c > 1 {
			return false
		}
		// CDF is monotone.
		return LaplaceCDF(x+1, scale) >= c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if got := LaplaceCDF(0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CDF(0) = %v, want 0.5", got)
	}
}

func TestLaplaceQuantileInvertsCDF(t *testing.T) {
	for _, scale := range []float64{0.3, 1, 5} {
		for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.95, 0.999} {
			x := LaplaceQuantile(p, scale)
			back := LaplaceCDF(x, scale)
			if math.Abs(back-p) > 1e-9 {
				t.Fatalf("quantile/CDF mismatch: p=%v scale=%v got %v", p, scale, back)
			}
		}
	}
}

func TestLaplaceQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.2, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for p=%v", p)
				}
			}()
			LaplaceQuantile(p, 1)
		}()
	}
}

func TestLaplaceEmpiricalCDFMatchesAnalytic(t *testing.T) {
	src := NewXoshiro(55)
	const n = 200000
	const scale = 1.5
	points := []float64{-3, -1, 0, 0.5, 2, 4}
	counts := make([]int, len(points))
	for i := 0; i < n; i++ {
		v := Laplace(src, scale)
		for j, p := range points {
			if v <= p {
				counts[j]++
			}
		}
	}
	for j, p := range points {
		emp := float64(counts[j]) / n
		want := LaplaceCDF(p, scale)
		if math.Abs(emp-want) > 0.01 {
			t.Errorf("CDF at %v: empirical %v analytic %v", p, emp, want)
		}
	}
}

func TestLaplaceVariance(t *testing.T) {
	if got := LaplaceVariance(3); got != 18 {
		t.Fatalf("LaplaceVariance(3) = %v, want 18", got)
	}
}

// TestLaplaceVecMatchesScalar pins the vectorized sampler to the scalar one:
// same seed, same draw order, bit-identical samples — the guarantee the
// serving layer relies on when it swaps scalar loops for vector fills.
func TestLaplaceVecMatchesScalar(t *testing.T) {
	const n = 1000
	scalarSrc, vecSrc := NewXoshiro(99), NewXoshiro(99)
	scalar := make([]float64, n)
	for i := range scalar {
		scalar[i] = Laplace(scalarSrc, 1.5)
	}
	vec := LaplaceVec(vecSrc, 1.5, n, nil)
	for i := range scalar {
		if scalar[i] != vec[i] {
			t.Fatalf("sample %d: scalar %v != vec %v", i, scalar[i], vec[i])
		}
	}
}

func TestExponentialVec(t *testing.T) {
	const n = 200000
	v := ExponentialVec(NewXoshiro(3), 2.0, n, nil)
	if len(v) != n {
		t.Fatalf("len = %d, want %d", len(v), n)
	}
	var sum float64
	for _, x := range v {
		if x < 0 {
			t.Fatalf("negative exponential sample %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-2.0) > 0.03*2.0 {
		t.Errorf("mean %v, want ≈ 2.0", mean)
	}
	// Scalar equivalence, draw for draw.
	scalarSrc, vecSrc := NewXoshiro(4), NewXoshiro(4)
	w := ExponentialVec(vecSrc, 0.7, 100, nil)
	for i := range w {
		if s := Exponential(scalarSrc, 0.7); s != w[i] {
			t.Fatalf("sample %d: scalar %v != vec %v", i, s, w[i])
		}
	}
}

func TestGumbelVec(t *testing.T) {
	const n = 200000
	const scale = 1.5
	v := GumbelVec(NewXoshiro(5), scale, n, nil)
	// Standard Gumbel mean is the Euler–Mascheroni constant γ, scaled.
	const euler = 0.5772156649015329
	var sum float64
	for _, x := range v {
		sum += x
	}
	if mean, want := sum/n, scale*euler; math.Abs(mean-want) > 0.05*math.Abs(want)+0.02 {
		t.Errorf("mean %v, want ≈ %v", mean, want)
	}
	// Scalar equivalence, draw for draw.
	scalarSrc, vecSrc := NewXoshiro(6), NewXoshiro(6)
	w := GumbelVec(vecSrc, scale, 100, nil)
	for i := range w {
		if s := Gumbel(scalarSrc, scale); s != w[i] {
			t.Fatalf("sample %d: scalar %v != vec %v", i, s, w[i])
		}
	}
	for _, bad := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for scale %v", bad)
				}
			}()
			GumbelVec(NewXoshiro(1), bad, 1, nil)
		}()
	}
}
