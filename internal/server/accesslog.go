package server

// Structured access logging. One slog record per API request, carrying the
// request id, tenant, endpoint label, dataset, response status and size, the
// ε charged, and the total plus per-stage latencies in microseconds. With
// Config.AccessLog set every request is logged; without it the server still
// emits records for requests slower than the slow-request threshold, so an
// operator who never configured logging gets tail-latency forensics for
// free.

import (
	"context"
	"log/slog"
	"os"
	"time"
)

// DefaultSlowRequestThreshold is the slow-request logging threshold applied
// when Config.SlowRequestThreshold is zero.
const DefaultSlowRequestThreshold = time.Second

// defaultSlowLogger is the fallback destination for slow-request records on
// servers with no configured access logger: JSON lines on stderr, matching
// what an explicitly configured slog.Logger would typically emit.
var defaultSlowLogger = slog.New(slog.NewJSONHandler(os.Stderr, nil))

// logRequest emits one access-log record for a finished request. Reads only
// fields the pipeline has already settled, so it runs after the response is
// written and never adds latency inside the traced span.
func (s *Server) logRequest(t *traceWriter, label, outcome string, total time.Duration, slow bool) {
	logger := s.accessLog
	level := slog.LevelInfo
	msg := "request"
	if slow {
		level = slog.LevelWarn
		msg = "slow request"
		if logger == nil {
			logger = defaultSlowLogger
		}
	}
	attrs := make([]slog.Attr, 0, 12+numStages)
	attrs = append(attrs,
		slog.String("request_id", t.reqID),
		slog.String("mechanism", label),
		slog.String("tenant", t.tenant),
		slog.Int("status", t.status),
		slog.String("code", outcome),
		slog.Int("bytes", t.bytes),
		slog.Float64("total_us", micros(total)),
	)
	if t.dataset != "" {
		attrs = append(attrs, slog.String("dataset", t.dataset))
	}
	if t.eps != 0 {
		attrs = append(attrs, slog.Float64("epsilon", t.eps))
	}
	for st, d := range t.stages {
		if d > 0 {
			attrs = append(attrs, slog.Float64(stageNames[st]+"_us", micros(d)))
		}
	}
	logger.LogAttrs(context.Background(), level, msg, attrs...)
}
