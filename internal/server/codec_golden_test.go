package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"github.com/freegap/freegap/internal/engine"
)

func fptr(f float64) *float64 { return &f }
func bptr(b bool) *bool       { return &b }

// TestAppendErrorEnvelopeGolden pins the hand-rolled error encoder to
// encoding/json byte for byte, across every optional-field combination the
// handlers emit plus the string-escaping edge cases.
func TestAppendErrorEnvelopeGolden(t *testing.T) {
	cases := []ErrorBody{
		{Code: "bad_request", Message: "decoding JSON body: EOF"},
		{Code: "bad_request", RequestID: "req-01", Message: "k = 0 must satisfy 1 <= k"},
		{Code: "budget_exhausted", RequestID: "abcDEF_123.-", Message: "insufficient budget",
			Remaining: fptr(0.25), Exhausted: bptr(true)},
		{Code: "budget_exhausted", Message: "insufficient budget",
			Remaining: fptr(0), Exhausted: bptr(false)},
		{Code: "x", Message: "html <tags> & \"quotes\" survive escaping"},
		{Code: "x", Message: "control \x01 tab \t newline \n unicode \u2028 snowman ☃"},
		{Code: "x", Message: "invalid utf8 \xff\xfe here"},
		{Code: "x", Message: "", Remaining: fptr(1e-7)},
		{Code: "x", Message: "", Remaining: fptr(1e21)},
		{Code: "x", Message: "", Remaining: fptr(123456.789)},
	}
	for _, body := range cases {
		want, err := json.Marshal(ErrorEnvelope{Error: body})
		if err != nil {
			t.Fatalf("marshal %+v: %v", body, err)
		}
		got, ok := appendErrorEnvelope(nil, &body)
		if !ok {
			t.Fatalf("appendErrorEnvelope(%+v): not ok", body)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("envelope mismatch for %+v:\n got  %s\n want %s", body, got, want)
		}
	}
	// Non-finite remaining: the codec must refuse so the handler falls back
	// to encoding/json's own error, rather than emitting invalid JSON.
	if _, ok := appendErrorEnvelope(nil, &ErrorBody{Code: "x", Remaining: fptr(math.NaN())}); ok {
		t.Error("appendErrorEnvelope accepted a NaN remaining")
	}
}

// TestAppendTraceJSONGolden pins the ?trace=1 payload encoder to
// encoding/json byte for byte.
func TestAppendTraceJSONGolden(t *testing.T) {
	cases := []*TraceJSON{
		{RequestID: "r1", TotalMicros: 0, Stages: nil},
		{RequestID: "r2", TotalMicros: 0.001, Stages: []StageJSON{}},
		{RequestID: "0123456789abcdef", TotalMicros: 1234.567, Stages: []StageJSON{
			{Name: "decode", StartMicros: 0, Micros: 12.345},
			{Name: "resolve", StartMicros: 12.345, Micros: 0},
			{Name: "validate", StartMicros: 12.345, Micros: 0.75},
			{Name: "charge", StartMicros: 13.095, Micros: 1e-3},
			{Name: "execute", StartMicros: 13.096, Micros: 1200},
			{Name: "encode", StartMicros: 1213.096, Micros: 21.471},
		}},
	}
	for _, tr := range cases {
		want, err := json.Marshal(tr)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, ok := appendTraceJSON(nil, tr)
		if !ok {
			t.Fatalf("appendTraceJSON(%+v): not ok", tr)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("trace mismatch:\n got  %s\n want %s", got, want)
		}
	}
}

// TestAppendBatchResponseGolden pins the batch encoder — including the
// trace-splice trick that appends `,"trace":…` before the final brace — to
// encoding/json byte for byte, with real engine response types in the items.
func TestAppendBatchResponseGolden(t *testing.T) {
	resp := BatchResponse{
		Tenant: "acme",
		Results: []BatchItemResult{
			{Mechanism: "topk", Response: &engine.TopKResponse{
				Billing: engine.Billing{Tenant: "acme", EpsilonSpent: 0.5, BudgetRemaining: 9.5},
				Selections: []engine.SelectionJSON{
					{Index: 3, Gap: 1.25}, {Index: 0, Gap: 0.0078125},
				},
			}},
			{Mechanism: "max", Response: &engine.MaxResponse{
				Billing: engine.Billing{Tenant: "acme", EpsilonSpent: 0.25, BudgetRemaining: 9.25},
				Index:   7, Gap: 42,
			}},
			{Mechanism: "svt", Error: &ErrorBody{
				Code: "bad_request", RequestID: "b-2", Message: "threshold required",
			}},
			{Mechanism: "topk"},
		},
		EpsilonSpent:    0.75,
		BudgetRemaining: 9.25,
	}

	want, err := json.Marshal(&resp)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, ok := appendBatchResponse(nil, &resp)
	if !ok {
		t.Fatal("appendBatchResponse: not ok")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("batch mismatch:\n got  %s\n want %s", got, want)
	}

	// Nil and empty results encode as null and [].
	for _, results := range [][]BatchItemResult{nil, {}} {
		r2 := BatchResponse{Tenant: "t", Results: results}
		want, err := json.Marshal(&r2)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, ok := appendBatchResponse(nil, &r2)
		if !ok {
			t.Fatal("appendBatchResponse: not ok")
		}
		if !bytes.Equal(got, want) {
			t.Errorf("batch mismatch:\n got  %s\n want %s", got, want)
		}
	}

	// Trace splice: appending before the closing brace must match marshalling
	// the response with its Trace field populated (Trace is the last field).
	tr := &TraceJSON{RequestID: "r9", TotalMicros: 88.25, Stages: []StageJSON{
		{Name: "decode", StartMicros: 0, Micros: 88.25},
	}}
	traced := resp
	traced.Trace = tr
	want, err = json.Marshal(&traced)
	if err != nil {
		t.Fatalf("marshal traced: %v", err)
	}
	spliced := append(got[:len(got)-1], `,"trace":`...)
	spliced, ok = appendTraceJSON(spliced, tr)
	if !ok {
		t.Fatal("appendTraceJSON: not ok")
	}
	spliced = append(spliced, '}')
	if !bytes.Equal(spliced, want) {
		t.Errorf("spliced batch mismatch:\n got  %s\n want %s", spliced, want)
	}

	// An item response the engine codec cannot encode forces the stdlib
	// fallback for the whole batch.
	bad := BatchResponse{Results: []BatchItemResult{{Mechanism: "x", Response: map[string]int{"a": 1}}}}
	if _, ok := appendBatchResponse(nil, &bad); ok {
		t.Error("appendBatchResponse accepted a non-engine response")
	}
}

// tracedTopK mirrors engine.TopKResponse's JSON with the trace decoded into
// the concrete TraceJSON type, so a decode→re-marshal roundtrip reproduces
// the wire bytes exactly (an `any` trace would decode to a map and re-marshal
// with sorted keys).
type tracedTopK struct {
	Tenant          string                 `json:"tenant"`
	EpsilonSpent    float64                `json:"epsilon_spent"`
	BudgetRemaining float64                `json:"budget_remaining"`
	Trace           *TraceJSON             `json:"trace,omitempty"`
	Selections      []engine.SelectionJSON `json:"selections"`
}

// TestServerResponseBytesMatchStdlib drives the live handler and checks that
// every response body — success, traced success, and error — is exactly what
// encoding/json would produce for the equivalent value: decode into the
// concrete response type, re-marshal with the stdlib, and require identical
// bytes (modulo the trailing newline the server appends).
func TestServerResponseBytesMatchStdlib(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantBudget: 10, Workers: 1, Seed: 7})
	body := `{"tenant":"acme","epsilon":1,"k":2,"monotonic":true,"answers":[10,20,30,40,50]}`

	roundtrip := func(t *testing.T, url, reqBody string, into any) {
		t.Helper()
		resp, err := http.Post(url, "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatalf("read body: %v", err)
		}
		raw := buf.Bytes()
		if len(raw) == 0 || raw[len(raw)-1] != '\n' {
			t.Fatalf("body does not end in newline: %q", raw)
		}
		raw = raw[:len(raw)-1]
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		want, err := json.Marshal(into)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(raw, want) {
			t.Errorf("response is not stdlib-identical:\n got  %s\n want %s", raw, want)
		}
	}

	t.Run("topk", func(t *testing.T) {
		roundtrip(t, ts.URL+"/v1/topk", body, &tracedTopK{})
	})
	t.Run("topk traced", func(t *testing.T) {
		var got tracedTopK
		roundtrip(t, ts.URL+"/v1/topk?trace=1", body, &got)
		if got.Trace == nil || len(got.Trace.Stages) == 0 {
			t.Fatalf("traced response missing trace: %+v", got)
		}
	})
	t.Run("decode error", func(t *testing.T) {
		roundtrip(t, ts.URL+"/v1/topk", `{"k":`, &ErrorEnvelope{})
	})
	t.Run("budget error", func(t *testing.T) {
		exhaust := `{"tenant":"poor","epsilon":100,"k":2,"answers":[1,2,3]}`
		var env ErrorEnvelope
		roundtrip(t, ts.URL+"/v1/topk", exhaust, &env)
		if env.Error.Code != CodeBudgetExhausted || env.Error.Remaining == nil || env.Error.Exhausted == nil {
			t.Fatalf("unexpected budget error: %+v", env.Error)
		}
	})
	t.Run("batch traced", func(t *testing.T) {
		batch := `{"tenant":"acme","requests":[` +
			`{"mechanism":"topk","request":{"epsilon":0.5,"k":1,"answers":[5,6,7]}},` +
			`{"mechanism":"max","request":{"epsilon":0.5,"answers":[5,6,7]}}]}`
		var got struct {
			Tenant  string `json:"tenant"`
			Results []struct {
				Mechanism string          `json:"mechanism"`
				Response  json.RawMessage `json:"response,omitempty"`
				Error     *ErrorBody      `json:"error,omitempty"`
			} `json:"results"`
			EpsilonSpent    float64    `json:"epsilon_spent"`
			BudgetRemaining float64    `json:"budget_remaining"`
			Trace           *TraceJSON `json:"trace,omitempty"`
		}
		roundtrip(t, ts.URL+"/v1/batch?trace=1", batch, &got)
		if got.Trace == nil || len(got.Results) != 2 {
			t.Fatalf("unexpected batch response: %+v", got)
		}
	})
}
