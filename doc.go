// Package freegap is a Go implementation of the differentially private
// selection mechanisms from "Free Gap Information from the Differentially
// Private Sparse Vector and Noisy Max Mechanisms" (Ding, Wang, Zhang, Kifer —
// VLDB 2019), together with the classical mechanisms they improve on and the
// post-processing estimators that exploit the released gap information.
//
// The headline results reproduced by this library:
//
//   - Noisy-Top-K-with-Gap: select the (approximate) top-k queries and also
//     learn, for free, the noisy gap between each selected query and the next
//     best one. Combining those gaps with fresh measurements cuts the mean
//     squared error of the measurements by up to 50% for counting queries.
//
//   - Adaptive-Sparse-Vector-with-Gap: answer "which queries exceed this
//     threshold?" while paying less privacy budget for queries that clear the
//     threshold by a wide margin, so many more above-threshold queries fit in
//     the same budget — and every positive answer also carries a free noisy
//     gap above the threshold with a Lemma 5 confidence bound.
//
// The top-level package is a facade over the implementation packages under
// internal/: mechanisms (internal/core, internal/baseline), noise and datasets
// (internal/rng, internal/dataset), estimators (internal/postprocess), the
// empirical privacy audit (internal/validate) and the experiment harness that
// regenerates every figure in the paper (internal/experiment, driven by
// cmd/dpbench and the benchmarks in bench_test.go).
//
// # Quick start
//
//	src := freegap.NewSource(42)
//	counts := []float64{812, 641, 633, 601, 425, 124, 77, 8}
//	topk, _ := freegap.NewTopKWithGap(3, 1.0, true) // k=3, ε=1, counting queries
//	res, _ := topk.Run(src, counts)
//	for _, s := range res.Selections {
//	    fmt.Printf("query %d beats the runner-up by ≈%.1f\n", s.Index, s.Gap)
//	}
//
// See the examples/ directory for complete programs.
//
// # Serving
//
// The library also ships as a long-lived, multi-tenant query service. The
// cmd/dpserver binary serves the mechanisms over HTTP/JSON — POST /v1/topk,
// /v1/svt and /v1/max — with each tenant drawing from its own privacy budget
// (tracked by an Accountant created on first use) and receiving a structured
// 402 budget_exhausted error once it is spent. Embed the same service in a
// larger program via the facade's server constructors:
//
//	srv, _ := freegap.NewServer(freegap.ServerConfig{TenantBudget: 10})
//	http.ListenAndServe(":8080", srv.Handler())
//
// examples/remoteclient drives the full API end-to-end, and
// GET /v1/tenants/{id}/budget, /healthz and /metrics cover operations.
package freegap
