package store

// Per-dataset compiled-plan cache. Canonicalized query specs hash to a
// materialized count vector (plus the plan's explain payload), so a repeated
// composite query costs one lock-free map lookup instead of a record scan.
// Datasets are immutable, so cached vectors never need invalidation; the
// cache lives on the Entry, so removing and re-registering a name can never
// serve another dataset's vectors.
//
// Reads follow the same RCU discipline as the catalog itself: Get loads the
// current immutable generation through an atomic pointer and walks it
// without any lock, writers copy-and-swap under a mutex. The generation map
// is never mutated in place.

import (
	"sync"
	"sync/atomic"
)

// DefaultMaxPlans bounds one dataset's cached plans. When the cache is full
// a new plan flushes the whole generation and starts fresh — an epoch-style
// eviction that keeps the hot working set cached while bounding memory, with
// no per-hit bookkeeping on the read path.
const DefaultMaxPlans = 256

// PlanEntry is one cached compiled plan: the materialized full-universe
// count vector, its monotonicity, and the planner's explain payload (opaque
// to the store) replayed on cache hits.
type PlanEntry struct {
	// Answers is the materialized count vector (read-only by contract).
	Answers []float64
	// Monotonic reports whether the spec lies in the monotone fragment.
	Monotonic bool
	// Explain is the planner's explain payload for the compiled plan.
	Explain any
}

// planGen is one immutable generation of the cache's key → plan mapping.
type planGen = map[string]*PlanEntry

// PlanCache is a concurrency-safe compiled-plan cache keyed by canonical
// spec strings. The zero value is ready to use.
type PlanCache struct {
	// writeMu serializes Put/Reset (the copy-and-swap writers).
	writeMu sync.Mutex
	// gen points at the current immutable generation; nil means empty.
	gen atomic.Pointer[planGen]

	hits   atomic.Uint64
	misses atomic.Uint64
}

// Get returns the cached plan for key, counting the lookup as a hit or a
// miss. It takes no lock.
func (c *PlanCache) Get(key string) (*PlanEntry, bool) {
	if gen := c.gen.Load(); gen != nil {
		if pe, ok := (*gen)[key]; ok {
			c.hits.Add(1)
			return pe, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put caches pe under key. A full cache is flushed wholesale first (see
// DefaultMaxPlans); concurrent puts of the same key are idempotent — both
// vectors are correct, the later generation wins.
func (c *PlanCache) Put(key string, pe *PlanEntry) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	var cur planGen
	if gen := c.gen.Load(); gen != nil {
		cur = *gen
	}
	next := make(planGen, len(cur)+1)
	if len(cur) < DefaultMaxPlans {
		for k, v := range cur {
			next[k] = v
		}
	}
	next[key] = pe
	c.gen.Store(&next)
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	if gen := c.gen.Load(); gen != nil {
		return len(*gen)
	}
	return 0
}

// Hits and Misses return the lifetime lookup counters.
func (c *PlanCache) Hits() uint64   { return c.hits.Load() }
func (c *PlanCache) Misses() uint64 { return c.misses.Load() }

// Reset drops every cached plan (the counters keep running); benchmarks use
// it to measure the cache-cold path.
func (c *PlanCache) Reset() {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.gen.Store(nil)
}
