package rng

import "math"

// Staircase samples from the staircase distribution of Geng and Viswanath
// ("The optimal mechanism in differential privacy", ISIT 2014) with privacy
// parameter eps, sensitivity delta and shape parameter gamma in (0, 1).
//
// The staircase density is a piecewise-constant approximation of the Laplace
// density: on the interval [k·Δ, (k+1)·Δ) the density equals
// a(γ)·b^k on [kΔ, (k+γ)Δ) and a(γ)·b^(k+1) on [(k+γ)Δ, (k+1)Δ), mirrored for
// negative values, where b = e^(−ε) and
// a(γ) = (1−b) / (2Δ·(γ + b·(1−γ))).
//
// The sampler follows the constructive procedure from the original paper:
// draw a sign S, a geometric "step" G, a uniform U and a Bernoulli B that
// decides whether the sample lands in the low or high part of the step.
func Staircase(src Source, eps, delta, gamma float64) float64 {
	if eps <= 0 || delta <= 0 {
		panic(ErrInvalidScale)
	}
	if gamma <= 0 || gamma >= 1 {
		panic("rng: staircase gamma must be in (0,1)")
	}
	b := math.Exp(-eps)

	// Sign: ±1 with equal probability.
	sign := 1.0
	if Float64(src) < 0.5 {
		sign = -1.0
	}

	// Geometric step index G ≥ 0 with P(G = k) = (1−b)·b^k.
	u := Float64(src)
	g := int(math.Floor(math.Log(1-u) / math.Log(b)))
	if g < 0 {
		g = 0
	}

	// Bernoulli that selects the first (probability γ/(γ+b(1−γ))) or second
	// segment of the step.
	pFirst := gamma / (gamma + b*(1-gamma))
	first := Float64(src) < pFirst

	uu := Float64(src)
	var x float64
	if first {
		x = (float64(g) + uu*gamma) * delta
	} else {
		x = (float64(g) + gamma + uu*(1-gamma)) * delta
	}
	return sign * x
}

// StaircaseOptimalGamma returns the γ that minimises expected |noise| for the
// staircase mechanism, γ* = 1/(1+e^(ε/2)).
func StaircaseOptimalGamma(eps float64) float64 {
	if eps <= 0 {
		panic(ErrInvalidScale)
	}
	return 1 / (1 + math.Exp(eps/2))
}
