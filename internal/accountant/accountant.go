// Package accountant tracks privacy-loss budget under sequential composition
// (Section 3.1 of the paper): running mechanisms with budgets ε₁, …, ε_k on
// the same data costs Σεᵢ. The adaptive Sparse Vector experiments (Figure 4)
// report the fraction of budget an analyst has left after the mechanism
// stops, which is exactly the accountant's Remaining value.
package accountant

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// ErrBudgetExceeded is returned by Spend when a charge would push total
// spending above the configured budget.
var ErrBudgetExceeded = errors.New("accountant: privacy budget exceeded")

// ErrInvalidCharge is returned when a non-positive or NaN charge is requested.
var ErrInvalidCharge = errors.New("accountant: charge must be a positive finite value")

// BudgetError is the concrete error returned by Spend/SpendBatch when a
// charge is refused. It wraps ErrBudgetExceeded (errors.Is keeps working) and
// carries the admission arithmetic, so callers can distinguish a budget that
// is already exhausted — no positive charge would fit — from a single
// (possibly batched) charge that is merely too large for what remains.
type BudgetError struct {
	// Spent is the budget consumed before the refused charge.
	Spent float64
	// Requested is the refused charge (the batch total for SpendBatch).
	Requested float64
	// Budget is the configured total budget.
	Budget float64
	// Batch records whether the refused admission held more than one charge.
	Batch bool
}

// Error reproduces the historical message format, so clients matching on the
// text keep working.
func (e *BudgetError) Error() string {
	kind := "charge"
	if e.Batch {
		kind = "batch charge"
	}
	return fmt.Sprintf("accountant: privacy budget exceeded: spent %.6g + %s %.6g > budget %.6g",
		e.Spent, kind, e.Requested, e.Budget)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) hold for every BudgetError.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Exhausted reports whether the budget was already fully spent when the
// charge was refused — the smallest admissible charge would also have been
// rejected — as opposed to this particular charge exceeding a non-trivial
// remainder (the "would-exceed in batch" case).
func (e *BudgetError) Exhausted() bool { return e.Spent >= e.Budget-tolerance }

// Remaining returns the unspent budget at refusal time (never negative).
func (e *BudgetError) Remaining() float64 {
	r := e.Budget - e.Spent
	if r < 0 {
		return 0
	}
	return r
}

// tolerance absorbs floating-point drift when many small charges should sum
// exactly to the budget (e.g. ε₀ + Σεᵢ = ε in Algorithm 2).
const tolerance = 1e-9

// Accountant is a thread-safe sequential-composition budget tracker.
//
// Admission is lock-free: spent lives in an atomic word (float bits) and a
// charge is admitted by a compare-and-swap loop against the budget, so
// concurrent spenders of one tenant never serialize on a mutex just to learn
// there is room. Only admitted charges take the commit lock, which guards the
// audit log, the per-label aggregation and the journal hook — so the journal
// still fires iff the charge committed, in commit-lock order, and a rejected
// charge costs no lock acquisition at all.
type Accountant struct {
	// budget is immutable after construction and read without synchronization.
	budget float64
	// spentBits holds math.Float64bits of the total ε charged so far. Spends
	// only ever move it up (via CAS); Restore and Reset store it directly and
	// are documented to happen-before any concurrent Spend.
	spentBits atomic.Uint64
	// casRetries counts admission CAS loop iterations that lost the race and
	// had to retry — the direct observable of same-tenant admission
	// contention. It only moves on contended spends, so the uncontended hot
	// path never touches it.
	casRetries atomic.Uint64

	// commitMu guards everything below. It is taken only on admitted charges
	// (and by readers of the log/aggregation), never on the admission path.
	commitMu sync.Mutex
	log      []Charge
	// byLabel is the per-label spend aggregation, maintained incrementally on
	// every commit so budget polls never rescan the log.
	byLabel map[string]float64
	// restored counts charges folded into the accountant by Restore beyond
	// the entries materialised in log (a compacted snapshot aggregates the
	// log by label but preserves the admitted-charge count).
	restored int
	// journal, when set, observes every admitted charge batch. It is called
	// with the commit lock held, immediately after the batch commits, so
	// journal order equals commit order and an entry is journalled iff the
	// charge was admitted. The callback must be fast and must not call back
	// into the accountant.
	journal func(charges []Charge)
}

// Charge records one budget expenditure for auditability.
type Charge struct {
	Label   string
	Epsilon float64
}

// New creates an accountant with the given total ε budget.
func New(budget float64) (*Accountant, error) {
	if !(budget > 0) {
		return nil, fmt.Errorf("accountant: budget %v must be positive", budget)
	}
	return &Accountant{budget: budget, byLabel: make(map[string]float64, 8)}, nil
}

// MustNew is New for static configurations known to be valid; it panics on
// error.
func MustNew(budget float64) *Accountant {
	a, err := New(budget)
	if err != nil {
		panic(err)
	}
	return a
}

// loadSpent returns the current spent total from the atomic word.
func (a *Accountant) loadSpent() float64 {
	return math.Float64frombits(a.spentBits.Load())
}

// Budget returns the configured total budget.
func (a *Accountant) Budget() float64 { return a.budget }

// Spent returns the total ε charged so far.
func (a *Accountant) Spent() float64 { return a.loadSpent() }

// Remaining returns the unspent budget (never negative).
func (a *Accountant) Remaining() float64 {
	r := a.budget - a.loadSpent()
	if r < 0 {
		return 0
	}
	return r
}

// RemainingFraction returns Remaining()/Budget(), the quantity plotted in
// Figure 4.
func (a *Accountant) RemainingFraction() float64 {
	return a.Remaining() / a.budget
}

// CanSpend reports whether a charge of eps would be admissible.
func (a *Accountant) CanSpend(eps float64) bool {
	if !(eps > 0) {
		return false
	}
	return a.loadSpent()+eps <= a.budget+tolerance
}

// Spend charges eps against the budget under the given label. It returns
// ErrBudgetExceeded (and charges nothing) if the budget would be exceeded.
// It is the one-charge case of SpendBatch, so single and batched requests
// share one admission rule.
func (a *Accountant) Spend(label string, eps float64) error {
	return a.SpendBatch([]Charge{{Label: label, Epsilon: eps}})
}

// SpendBatch charges every entry of charges against the budget atomically:
// either all of them are admitted, or (when their sum would exceed the
// budget) none are and ErrBudgetExceeded is returned. It is the primitive
// behind batched serving — a batch reserved in one SpendBatch can never
// overspend what the same requests charged serially could, and concurrent
// batches race for the budget as single indivisible units.
//
// Admission is a CAS on the spent word: concurrent batches race for the
// budget without a lock, and exactly the winners whose sum still fits are
// admitted. The audit log and journal are updated under the commit lock
// afterwards, so a reader polling Spent may observe an admitted charge a
// moment before Charges/SpentByLabel reflect it; the two views always agree
// once in-flight commits drain.
func (a *Accountant) SpendBatch(charges []Charge) error {
	if len(charges) == 0 {
		return fmt.Errorf("%w: empty batch", ErrInvalidCharge)
	}
	var sum float64
	for _, c := range charges {
		if !(c.Epsilon > 0) {
			return fmt.Errorf("%w: %v (label %q)", ErrInvalidCharge, c.Epsilon, c.Label)
		}
		sum += c.Epsilon
	}
	if math.IsInf(sum, 0) || math.IsNaN(sum) {
		return fmt.Errorf("%w: batch total %v", ErrInvalidCharge, sum)
	}
	for {
		curBits := a.spentBits.Load()
		cur := math.Float64frombits(curBits)
		if cur+sum > a.budget+tolerance {
			return &BudgetError{Spent: cur, Requested: sum, Budget: a.budget, Batch: len(charges) > 1}
		}
		if a.spentBits.CompareAndSwap(curBits, math.Float64bits(cur+sum)) {
			break
		}
		a.casRetries.Add(1)
	}
	a.commitMu.Lock()
	a.log = append(a.log, charges...)
	for _, c := range charges {
		a.byLabel[c.Label] += c.Epsilon
	}
	if a.journal != nil {
		a.journal(charges)
	}
	a.commitMu.Unlock()
	return nil
}

// SetJournal installs fn as the accountant's charge journal: it is invoked
// with every admitted charge batch, under the commit lock, right after the
// batch commits. Persistence layers use it to write a WAL entry iff the
// charge committed. Install the journal before the accountant is shared
// between goroutines; passing nil removes it.
func (a *Accountant) SetJournal(fn func(charges []Charge)) {
	a.commitMu.Lock()
	defer a.commitMu.Unlock()
	a.journal = fn
}

// Restore replaces the accountant's spending state with a previously
// journalled one: charges become the expenditure log (a compacted snapshot
// supplies per-label aggregates) and chargeCount the number of originally
// admitted charges (>= len(charges)). Restoration bypasses the admission
// check on purpose — if the configured budget shrank between runs the
// restored spend may exceed it, in which case every further Spend is
// rejected, which is the safe direction for a privacy accountant. The
// journal is not invoked: restored charges are already durable. Restore must
// happen-before any concurrent Spend (it is a startup operation on a not-yet-
// shared accountant); racing it against live spends can lose the race's
// charges from the restored total.
func (a *Accountant) Restore(charges []Charge, chargeCount int) error {
	var sum float64
	for i, c := range charges {
		if !(c.Epsilon > 0) || math.IsInf(c.Epsilon, 0) {
			return fmt.Errorf("%w: restored charge %d: %v (label %q)", ErrInvalidCharge, i, c.Epsilon, c.Label)
		}
		sum += c.Epsilon
	}
	if math.IsInf(sum, 0) || math.IsNaN(sum) {
		return fmt.Errorf("%w: restored total %v", ErrInvalidCharge, sum)
	}
	if chargeCount < len(charges) {
		return fmt.Errorf("accountant: restored charge count %d below %d log entries", chargeCount, len(charges))
	}
	a.commitMu.Lock()
	defer a.commitMu.Unlock()
	a.spentBits.Store(math.Float64bits(sum))
	a.log = append(a.log[:0], charges...)
	a.byLabel = make(map[string]float64, 8)
	for _, c := range charges {
		a.byLabel[c.Label] += c.Epsilon
	}
	a.restored = chargeCount - len(charges)
	return nil
}

// CASRetries returns how many admission compare-and-swap attempts lost a
// race and retried. A value persistently large relative to the admitted
// charge count means many concurrent spenders are hammering this one
// tenant's budget word; the serving layer aggregates it across tenants at
// metrics-scrape time.
func (a *Accountant) CASRetries() uint64 { return a.casRetries.Load() }

// ChargeCount returns the number of admitted charges (including charges
// folded into a restored snapshot) without copying the log.
func (a *Accountant) ChargeCount() int {
	a.commitMu.Lock()
	defer a.commitMu.Unlock()
	return a.restored + len(a.log)
}

// Charges returns a copy of the expenditure log in order.
func (a *Accountant) Charges() []Charge {
	a.commitMu.Lock()
	defer a.commitMu.Unlock()
	out := make([]Charge, len(a.log))
	copy(out, a.log)
	return out
}

// SpentByLabel returns the per-mechanism spend breakdown a tenant sees on its
// budget ledger. The aggregation is maintained incrementally at commit time,
// so a poll costs one small map copy however long the expenditure log is.
func (a *Accountant) SpentByLabel() map[string]float64 {
	a.commitMu.Lock()
	defer a.commitMu.Unlock()
	out := make(map[string]float64, len(a.byLabel))
	for label, eps := range a.byLabel {
		out[label] = eps
	}
	return out
}

// Reset clears all spending (including restored state), keeping the budget.
// Like Restore, it must not race concurrent Spends.
func (a *Accountant) Reset() {
	a.commitMu.Lock()
	defer a.commitMu.Unlock()
	a.spentBits.Store(0)
	a.log = a.log[:0]
	a.byLabel = make(map[string]float64, 8)
	a.restored = 0
}

// Split divides the remaining budget into n equal shares and returns the
// per-share ε without charging anything. It is how the "half for selection,
// half for measurement" protocols of Sections 5.2 and 6.2 are expressed.
func (a *Accountant) Split(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("accountant: cannot split into %d shares", n)
	}
	r := a.budget - a.loadSpent()
	if r <= 0 {
		return 0, ErrBudgetExceeded
	}
	return r / float64(n), nil
}
