package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/freegap/freegap/internal/rng"
)

func smallDB() *Transactions {
	return New("toy", [][]int32{
		{0, 1, 2},
		{1, 2},
		{2},
		{0, 2, 3},
		{3, 3}, // duplicate item inside one transaction counts once
	})
}

func TestNewInfersUniverse(t *testing.T) {
	db := smallDB()
	if db.NumItems() != 4 {
		t.Fatalf("NumItems = %d, want 4", db.NumItems())
	}
	if db.NumRecords() != 5 {
		t.Fatalf("NumRecords = %d, want 5", db.NumRecords())
	}
	if db.Name() != "toy" {
		t.Fatalf("Name = %q", db.Name())
	}
}

func TestNewPanicsOnNegativeItem(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("bad", [][]int32{{-1}})
}

func TestItemCounts(t *testing.T) {
	counts := smallDB().ItemCounts()
	want := []float64{2, 2, 4, 2}
	if len(counts) != len(want) {
		t.Fatalf("len = %d want %d", len(counts), len(want))
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("count[%d] = %v, want %v", i, counts[i], want[i])
		}
	}
}

func TestMeanLength(t *testing.T) {
	got := smallDB().MeanLength()
	want := (3.0 + 2 + 1 + 3 + 2) / 5.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanLength = %v, want %v", got, want)
	}
	empty := New("empty", nil)
	if empty.MeanLength() != 0 {
		t.Fatal("empty dataset must report zero mean length")
	}
}

func TestStatsString(t *testing.T) {
	s := smallDB().Stats()
	if s.Records != 5 || s.Items != 4 {
		t.Fatalf("unexpected stats %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty string summary")
	}
}

func TestRemoveRecordAdjacency(t *testing.T) {
	db := smallDB()
	counts := db.ItemCounts()
	for i := 0; i < db.NumRecords(); i++ {
		neighbor := db.RemoveRecord(i)
		if neighbor.NumRecords() != db.NumRecords()-1 {
			t.Fatalf("record count after removal: %d", neighbor.NumRecords())
		}
		nCounts := neighbor.ItemCounts()
		// Sensitivity-1 counting queries: each count changes by at most 1 and
		// never increases when a record is removed.
		for item := range counts {
			diff := counts[item] - nCounts[item]
			if diff < 0 || diff > 1 {
				t.Fatalf("removing record %d changed item %d count by %v", i, item, diff)
			}
		}
	}
}

func TestRemoveRecordDoesNotMutateOriginal(t *testing.T) {
	db := smallDB()
	before := db.NumRecords()
	_ = db.RemoveRecord(0)
	if db.NumRecords() != before {
		t.Fatal("RemoveRecord mutated the receiver")
	}
}

func TestRemoveRecordPanicsOutOfRange(t *testing.T) {
	for _, i := range []int{-1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for index %d", i)
				}
			}()
			smallDB().RemoveRecord(i)
		}()
	}
}

func TestAddRecordGrowsUniverse(t *testing.T) {
	db := smallDB()
	bigger := db.AddRecord([]int32{9})
	if bigger.NumItems() != 10 {
		t.Fatalf("NumItems = %d, want 10", bigger.NumItems())
	}
	if bigger.NumRecords() != db.NumRecords()+1 {
		t.Fatal("record not added")
	}
	if db.NumItems() != 4 {
		t.Fatal("AddRecord mutated the receiver")
	}
}

func TestTopKItems(t *testing.T) {
	counts := []float64{5, 9, 1, 9, 3}
	top := TopKItems(counts, 3)
	want := []int{1, 3, 0} // ties broken by smaller index
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopKItems = %v, want %v", top, want)
		}
	}
	if got := TopKItems(counts, 100); len(got) != len(counts) {
		t.Fatalf("k beyond length should clamp, got %d", len(got))
	}
}

func TestTopKItemsPanicsOnNegativeK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TopKItems([]float64{1}, -1)
}

func TestKthLargest(t *testing.T) {
	counts := []float64{5, 9, 1, 9, 3}
	cases := []struct {
		k    int
		want float64
	}{{1, 9}, {2, 9}, {3, 5}, {4, 3}, {5, 1}}
	for _, c := range cases {
		if got := KthLargest(counts, c.k); got != c.want {
			t.Errorf("KthLargest(k=%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestKthLargestPanics(t *testing.T) {
	for _, k := range []int{0, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for k=%d", k)
				}
			}()
			KthLargest([]float64{1, 2, 3, 4, 5}, k)
		}()
	}
}

func TestRandomThresholdWithinRange(t *testing.T) {
	src := rng.NewXoshiro(4)
	counts := make([]float64, 200)
	for i := range counts {
		counts[i] = float64(1000 - i)
	}
	k := 10
	lowBound := KthLargest(counts, 8*k)  // smallest admissible threshold
	highBound := KthLargest(counts, 2*k) // largest admissible threshold
	for trial := 0; trial < 200; trial++ {
		th := RandomThreshold(src, counts, k)
		if th < lowBound || th > highBound {
			t.Fatalf("threshold %v outside [%v, %v]", th, lowBound, highBound)
		}
	}
}

func TestRandomThresholdSmallUniverse(t *testing.T) {
	src := rng.NewXoshiro(4)
	counts := []float64{10, 5, 3}
	// 2k..8k exceeds the universe; must clamp instead of panicking.
	th := RandomThreshold(src, counts, 5)
	if th < 3 || th > 10 {
		t.Fatalf("threshold %v out of data range", th)
	}
}

func TestCountAbove(t *testing.T) {
	counts := []float64{5, 9, 1, 9, 3}
	if got := CountAbove(counts, 4); got != 3 {
		t.Fatalf("CountAbove = %d, want 3", got)
	}
	if got := CountAbove(counts, 100); got != 0 {
		t.Fatalf("CountAbove = %d, want 0", got)
	}
}

func TestItemCountsPropertyMatchesNaive(t *testing.T) {
	src := rng.NewXoshiro(99)
	f := func(seed uint64) bool {
		local := rng.NewXoshiro(seed)
		n := 1 + rng.Intn(local, 40)
		items := 1 + rng.Intn(local, 20)
		records := make([][]int32, n)
		for i := range records {
			l := 1 + rng.Intn(local, 6)
			rec := make([]int32, l)
			for j := range rec {
				rec[j] = int32(rng.Intn(local, items))
			}
			records[i] = rec
		}
		db := New("prop", records)
		counts := db.ItemCounts()
		// Naive recount.
		naive := make([]float64, db.NumItems())
		for _, rec := range records {
			seen := map[int32]bool{}
			for _, it := range rec {
				if !seen[it] {
					seen[it] = true
					naive[it]++
				}
			}
		}
		for i := range naive {
			if counts[i] != naive[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Values: nil}
	_ = src
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
