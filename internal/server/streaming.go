package server

// Streaming: appendable datasets and served SVT threshold monitors.
//
// POST /v1/datasets/{name}/append ingests a FIMI-formatted delta and extends
// the dataset's derived state incrementally (store.Append installs a new
// generation; nothing rescans the existing records). POST /v1/monitors
// registers a long-lived threshold query over one item of a dataset: the
// monitor's whole ε is charged once at registration, and every subsequent
// append to the dataset advances the monitor's resumable SVT run by one
// query, streaming the verdict (and, above threshold, the free gap) to SSE
// subscribers on GET /v1/monitors/{id}/stream.
//
// Replay invariant: each dataset's WAL subsequence must equal the order its
// monitors observed the world in. A monitor journalled before an append must
// take its registration-time verdict against the pre-append counts, and each
// append's verdicts against exactly the record count the journal says was
// current. The invariant is per-dataset — a monitor watches one dataset, so
// how appends to *different* datasets interleave in the WAL is immaterial —
// and it is pinned per-dataset: every dataset hashes to one of
// numStreamDomains ordering domains, and the owning domain's mutex
// serializes (journal monitor → register → seq-0 verdict) against (journal
// append → install → fan out verdicts) for its datasets only. Appends carry
// a per-dataset sequence number so replay can check the subsequence is
// contiguous. The derived-state build for an append (count deltas, sketch
// and zone extension — the expensive part) happens in store.PrepareAppend
// *before* the domain lock; only journal + install + delivery run under it,
// so concurrent appends to different datasets overlap their builds and never
// contend. With each monitor's noise stream a pure function of its
// journalled seed, a restart replays the event stream and reproduces every
// verdict bit for bit.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/engine"
	"github.com/freegap/freegap/internal/persist"
	"github.com/freegap/freegap/internal/rng"
	"github.com/freegap/freegap/internal/store"
)

// mechMonitors is the metrics/accounting label for the monitor endpoints; a
// monitor's one-time ε charge appears under it in the tenant's breakdown.
const mechMonitors = "monitors"

// monitorSubBuffer is the per-subscriber verdict channel depth. A subscriber
// that falls this far behind is dropped (its channel closed) rather than
// allowed to stall appends; the client reconnects and replays history.
const monitorSubBuffer = 64

// numStreamDomains is the number of per-dataset write-ordering domains.
// Power of two so the domain pick is a mask; 32 keeps two datasets' odds of
// colliding on one domain low without bloating the Server struct.
const numStreamDomains = 32

// streamDomain is one write-ordering domain: it owns journal → install →
// deliver order for every dataset that hashes to it. mu is the only lock an
// append to those datasets serializes on — appends to datasets in other
// domains proceed concurrently.
type streamDomain struct {
	mu sync.Mutex
	// watchers maps a dataset name to the monitors watching it, in
	// registration order. Only datasets owned by this domain appear.
	watchers map[string][]*monitor
	// seqs maps a dataset name to its last journalled per-dataset append
	// sequence number (see persist.AppendRecord.Seq).
	seqs map[string]uint64
}

// domain returns the write-ordering domain that owns the named dataset
// (FNV-1a over the name, masked to the domain array).
func (s *Server) domain(dataset string) *streamDomain {
	h := uint64(14695981039346656037)
	for i := 0; i < len(dataset); i++ {
		h ^= uint64(dataset[i])
		h *= 1099511628211
	}
	return &s.domains[h&(numStreamDomains-1)]
}

// monitor is one registered threshold monitor: the immutable registration
// parameters plus the resumable SVT run, its verdict history, and the live
// SSE subscribers. mu guards the mutable tail; the registration fields are
// written once, under the owning dataset's domain lock, before the monitor
// is published.
type monitor struct {
	id        string
	tenant    string
	dataset   string
	item      int32
	threshold float64
	epsilon   float64
	maxAns    int
	adaptive  bool
	seed      uint64

	mu       sync.Mutex
	stream   *core.SVTStream
	verdicts []MonitorVerdict
	subs     map[chan MonitorVerdict]struct{}
}

// observe advances the monitor's SVT run by one query (the item's current
// count) and, if the run is still live, records and fans out the verdict.
// records is the dataset record count the query was evaluated at.
func (m *monitor) observe(count float64, records int) *MonitorVerdict {
	m.mu.Lock()
	defer m.mu.Unlock()
	item, ok := m.stream.Arrive(count)
	if !ok {
		return nil
	}
	v := MonitorVerdict{
		Monitor:    m.id,
		Seq:        len(m.verdicts),
		Records:    records,
		Above:      item.Above,
		Branch:     item.Branch.String(),
		BudgetUsed: item.BudgetUsed,
		Retired:    m.stream.Done(),
	}
	if item.Above {
		v.Gap = item.Gap
	}
	m.verdicts = append(m.verdicts, v)
	for ch := range m.subs {
		select {
		case ch <- v:
		default:
			// The subscriber's buffer is full: drop it instead of blocking
			// the append path. Closing the channel tells its handler to
			// hang up; the client reconnects and replays the history.
			delete(m.subs, ch)
			close(ch)
		}
	}
	return &v
}

// info snapshots the monitor for the API.
func (m *monitor) info() MonitorInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MonitorInfo{
		ID:          m.id,
		Tenant:      m.tenant,
		Dataset:     m.dataset,
		Item:        m.item,
		Threshold:   m.threshold,
		Epsilon:     m.epsilon,
		BudgetSpent: m.stream.Spent(),
		MaxAnswers:  m.maxAns,
		Adaptive:    m.adaptive,
		Verdicts:    len(m.verdicts),
		AboveCount:  m.stream.AboveCount(),
		Retired:     m.stream.Done(),
	}
}

// subscribe registers a new SSE subscriber and returns the verdict history
// it must replay first. History snapshot and registration happen under one
// lock acquisition, so the subscriber sees every verdict exactly once.
func (m *monitor) subscribe() ([]MonitorVerdict, chan MonitorVerdict) {
	m.mu.Lock()
	defer m.mu.Unlock()
	history := append([]MonitorVerdict(nil), m.verdicts...)
	ch := make(chan MonitorVerdict, monitorSubBuffer)
	if m.subs == nil {
		m.subs = make(map[chan MonitorVerdict]struct{})
	}
	m.subs[ch] = struct{}{}
	return history, ch
}

// unsubscribe removes a subscriber registered by subscribe. The channel is
// only closed if observe has not already dropped it for falling behind.
func (m *monitor) unsubscribe(ch chan MonitorVerdict) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.subs[ch]; ok {
		delete(m.subs, ch)
		close(ch)
	}
}

// newMonitorStream builds the monitor's resumable SVT run from its
// registration parameters and journalled seed. Monotonic is always set: the
// monitored query is a single item count, sensitivity-1 and monotone.
func newMonitorStream(rec persist.MonitorRecord) (*core.SVTStream, error) {
	mech := &core.AdaptiveSVTWithGap{
		K:          rec.MaxAnswers,
		Epsilon:    rec.Epsilon,
		Threshold:  rec.Threshold,
		Monotonic:  true,
		MaxAnswers: rec.MaxAnswers,
	}
	if !rec.Adaptive {
		mech.SigmaMultiplier = math.Inf(1) // plain Sparse-Vector-with-Gap
	}
	return core.NewSVTStream(mech, rng.NewXoshiro(rec.Seed))
}

// addMonitor constructs, indexes and publishes a monitor from its journalled
// record: into the cross-domain registry under monMu, and onto the owning
// domain's watcher list. Caller holds d's lock (d owns rec.Dataset), which
// is what orders the monitor's first observation against appends.
func (s *Server) addMonitor(rec persist.MonitorRecord, d *streamDomain) (*monitor, error) {
	stream, err := newMonitorStream(rec)
	if err != nil {
		return nil, fmt.Errorf("server: monitor %q: %w", rec.ID, err)
	}
	m := &monitor{
		id:        rec.ID,
		tenant:    rec.Tenant,
		dataset:   rec.Dataset,
		item:      rec.Item,
		threshold: rec.Threshold,
		epsilon:   rec.Epsilon,
		maxAns:    rec.MaxAnswers,
		adaptive:  rec.Adaptive,
		seed:      rec.Seed,
		stream:    stream,
	}
	s.monMu.Lock()
	if s.monitors == nil {
		s.monitors = make(map[string]*monitor)
	}
	s.monitors[rec.ID] = m
	s.monOrder = append(s.monOrder, m)
	registered := len(s.monitors)
	s.monMu.Unlock()
	d.watchers[rec.Dataset] = append(d.watchers[rec.Dataset], m)
	// Keep the id counter at or above every restored id so new registrations
	// never collide with journalled ones (CAS-max: restores from different
	// domains may race).
	if n, err := strconv.ParseUint(strings.TrimPrefix(rec.ID, "m"), 10, 64); err == nil {
		for {
			cur := s.monNextID.Load()
			if n <= cur || s.monNextID.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	s.monitorsGauge.Set(int64(registered))
	return m, nil
}

// nextMonitorID mints a fresh monitor id. monNextID holds the last-minted
// number, so a plain atomic increment is collision-free without any lock.
func (s *Server) nextMonitorID() string {
	return fmt.Sprintf("m%d", s.monNextID.Add(1))
}

// evaluateMonitor feeds one monitor the item's current count from the
// dataset entry's pinned generation view.
func (s *Server) evaluateMonitor(m *monitor, e *store.Entry) *MonitorVerdict {
	v := e.View()
	counts := v.Arena().Counts()
	count := 0.0
	if int(m.item) < len(counts) {
		count = counts[m.item]
	}
	verdict := m.observe(count, v.Dataset().NumRecords())
	if verdict != nil {
		s.monitorVerdicts.Inc()
	}
	return verdict
}

// deliverLocked advances every monitor watching the dataset by one query and
// returns how many verdicts were released. Caller holds d's lock, so the
// verdicts land in the dataset's journal order.
func (d *streamDomain) deliverLocked(s *Server, e *store.Entry) int {
	n := 0
	for _, m := range d.watchers[e.Name()] {
		if s.evaluateMonitor(m, e) != nil {
			n++
		}
	}
	return n
}

// restoreAppend replays one journalled dataset delta at startup, including
// the verdicts it triggered on monitors restored earlier in the event
// stream. Replay is single-threaded, but it still runs under the owning
// domain's lock so the per-dataset sequence check and watcher lists follow
// one discipline everywhere. A sequence gap means the WAL lost or reordered
// an append record — fail the restore rather than serve silently diverged
// counts.
func (s *Server) restoreAppend(rec persist.AppendRecord) error {
	d := s.domain(rec.Name)
	d.mu.Lock()
	defer d.mu.Unlock()
	want := d.seqs[rec.Name] + 1
	if rec.Seq != 0 && rec.Seq != want {
		return fmt.Errorf("server: append to %q out of order: journalled seq %d, expected %d", rec.Name, rec.Seq, want)
	}
	// Seq 0 marks a record journalled before sequence numbers existed; it
	// still advances the counter so mixed-age WALs stay contiguous.
	d.seqs[rec.Name] = want
	e, err := s.datasets.Append(rec.Name, rec.Records)
	if err != nil {
		return fmt.Errorf("server: restoring append to %q: %w", rec.Name, err)
	}
	d.deliverLocked(s, e)
	return nil
}

// restoreMonitor replays one journalled monitor registration at startup: the
// monitor is rebuilt from its seed and takes its seq-0 verdict against the
// dataset state at this point of the event stream, exactly as it did live.
// Its ε charge replays separately through the tenant spending records.
func (s *Server) restoreMonitor(rec persist.MonitorRecord) error {
	d := s.domain(rec.Dataset)
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := s.addMonitor(rec, d)
	if err != nil {
		return err
	}
	e, err := s.datasets.Get(rec.Dataset)
	if err != nil {
		return fmt.Errorf("server: restoring monitor %q: %w", rec.ID, err)
	}
	s.evaluateMonitor(m, e)
	return nil
}

// handleDatasetAppend serves POST /v1/datasets/{name}/append.
func (s *Server) handleDatasetAppend(w http.ResponseWriter, r *http.Request) {
	t := s.beginTrace(w, r)
	outcome := s.serveDatasetAppend(t, r)
	s.finishTrace(t, mechDatasets, outcome)
	s.countRequest(mechDatasets, outcome)
}

func (s *Server) serveDatasetAppend(w *traceWriter, r *http.Request) string {
	name := r.PathValue("name")
	w.dataset = name
	var req DatasetAppendRequest
	if code, ok := s.decode(w, r, &req); !ok {
		return code
	}
	w.mark(stageDecode)
	if code, ok := s.persistReady(w); !ok {
		return code
	}
	if _, err := s.datasets.Get(name); err != nil {
		writeError(w, http.StatusNotFound, ErrorBody{Code: CodeUnknownDataset, Message: err.Error()})
		return CodeUnknownDataset
	}
	if req.FIMI == "" {
		return badRequest(w, errors.New("append body needs fimi transactions"))
	}
	lim := s.datasets.Limits()
	parsed, err := dataset.ReadFIMILimited(strings.NewReader(req.FIMI), name, dataset.FIMILimits{
		MaxRecords: lim.MaxRecords,
		MaxItemID:  int32(lim.MaxItems) - 1,
	})
	if err != nil {
		return badRequest(w, err)
	}
	if parsed.NumRecords() == 0 {
		return badRequest(w, errors.New("append body holds no transactions"))
	}
	delta := make([][]int32, parsed.NumRecords())
	for i := range delta {
		delta[i] = parsed.Record(i)
	}
	w.mark(stageValidate)

	// Build the whole next generation — count deltas, sketch extension, zone
	// extension, the expensive part of an append — before taking any lock, so
	// appends to different datasets overlap their builds. PrepareAppend also
	// validates the grown dataset against the catalog limits.
	p, err := s.datasets.PrepareAppend(name, delta)
	if err != nil {
		if errors.Is(err, store.ErrUnknownDataset) {
			writeError(w, http.StatusNotFound, ErrorBody{Code: CodeUnknownDataset, Message: err.Error()})
			return CodeUnknownDataset
		}
		return badRequest(w, err)
	}

	d := s.domain(name)
	d.mu.Lock()
	if p.Stale() {
		// Lost a prepare race. Appends to this dataset serialize on d.mu, so
		// the racer was a direct library append; rebuild against its
		// generation (re-validating the limits) before journalling.
		if p, err = s.datasets.PrepareAppend(name, delta); err != nil {
			d.mu.Unlock()
			if errors.Is(err, store.ErrUnknownDataset) {
				writeError(w, http.StatusNotFound, ErrorBody{Code: CodeUnknownDataset, Message: err.Error()})
				return CodeUnknownDataset
			}
			return badRequest(w, err)
		}
	}
	// Journal before installing — the WAL is the source of truth the next
	// restart replays — with the dataset's next sequence number, so replay
	// can prove this dataset's WAL subsequence is contiguous however appends
	// to other datasets interleave around it.
	seq := d.seqs[name] + 1
	if s.persist != nil {
		if err := s.persist.AppendDelta(persist.AppendRecord{Name: name, Seq: seq, Records: delta}); err != nil {
			d.mu.Unlock()
			return internalError(w, fmt.Errorf("server: journalling append to %q: %w", name, err))
		}
	}
	e, err := s.datasets.InstallAppend(p)
	for errors.Is(err, store.ErrStaleAppend) {
		// A direct library append raced in after the staleness check. The
		// delta is already journalled, so rebuild and install it — returning
		// an error now would leave a journalled-yet-unapplied delta, a
		// restart-visible fault.
		if p, err = s.datasets.PrepareAppend(name, delta); err != nil {
			break
		}
		e, err = s.datasets.InstallAppend(p)
	}
	if err != nil {
		d.mu.Unlock()
		return internalError(w, err)
	}
	d.seqs[name] = seq
	verdicts := d.deliverLocked(s, e)
	d.mu.Unlock()
	w.mark(stageExecute)

	s.appendsTotal.Inc()
	info := e.Info()
	writeJSON(w, http.StatusOK, DatasetAppendResponse{
		Dataset:         name,
		AppendedRecords: len(delta),
		Seq:             seq,
		Records:         info.Records,
		Items:           info.Items,
		MonitorVerdicts: verdicts,
	})
	return "ok"
}

// handleMonitorCreate serves POST /v1/monitors.
func (s *Server) handleMonitorCreate(w http.ResponseWriter, r *http.Request) {
	t := s.beginTrace(w, r)
	outcome := s.serveMonitorCreate(t, r)
	s.finishTrace(t, mechMonitors, outcome)
	s.finishRequest(mechMonitors, outcome)
}

func (s *Server) serveMonitorCreate(w *traceWriter, r *http.Request) string {
	var req MonitorCreateRequest
	if code, ok := s.decode(w, r, &req); !ok {
		return code
	}
	w.mark(stageDecode)
	w.tenant, w.dataset = req.Tenant, req.Dataset
	if code, ok := s.persistReady(w); !ok {
		return code
	}
	if req.MaxAnswers == 0 {
		req.MaxAnswers = 1
	}
	switch {
	case req.Tenant == "":
		return badRequest(w, errors.New("monitor needs a tenant"))
	case req.Dataset == "":
		return badRequest(w, errors.New("monitor needs a dataset"))
	case req.Item < 0:
		return badRequest(w, fmt.Errorf("monitor item %d must be non-negative", req.Item))
	case math.IsNaN(req.Threshold) || math.IsInf(req.Threshold, 0):
		return badRequest(w, fmt.Errorf("monitor threshold %v must be finite", req.Threshold))
	case !(req.Epsilon >= engine.MinEpsilon) || !(req.Epsilon <= engine.MaxEpsilon):
		return badRequest(w, fmt.Errorf("monitor epsilon %v must be in [%g, %g]", req.Epsilon, engine.MinEpsilon, engine.MaxEpsilon))
	case req.MaxAnswers < 0 || req.MaxAnswers > s.cfg.MaxAnswers:
		return badRequest(w, fmt.Errorf("monitor max_answers %d must be in [1, %d]", req.MaxAnswers, s.cfg.MaxAnswers))
	}
	if _, err := s.datasets.Get(req.Dataset); err != nil {
		writeError(w, http.StatusNotFound, ErrorBody{Code: CodeUnknownDataset, Message: err.Error()})
		return CodeUnknownDataset
	}
	seed := req.Seed
	if seed == 0 {
		drawn, err := randomSeed()
		if err != nil {
			return internalError(w, err)
		}
		seed = drawn
	}
	w.mark(stageValidate)

	// The monitor's whole budget is charged up front, once: every verdict it
	// ever streams is paid from this ε by the SVT run itself.
	w.eps = req.Epsilon
	if _, code, ok := s.charge(w, req.Tenant, mechMonitors, req.Epsilon); !ok {
		return code
	}
	w.mark(stageCharge)

	d := s.domain(req.Dataset)
	d.mu.Lock()
	rec := persist.MonitorRecord{
		ID:         s.nextMonitorID(),
		Tenant:     req.Tenant,
		Dataset:    req.Dataset,
		Item:       req.Item,
		Threshold:  req.Threshold,
		Epsilon:    req.Epsilon,
		MaxAnswers: req.MaxAnswers,
		Adaptive:   req.Adaptive,
		Monotonic:  true,
		Seed:       seed,
	}
	if s.persist != nil {
		if err := s.persist.AppendMonitor(rec); err != nil {
			d.mu.Unlock()
			// Conservative by design: the ε stays spent (the charge is already
			// journalled) but no monitor exists. Refunding here could release
			// budget a crashed journal actually recorded.
			return internalError(w, fmt.Errorf("server: journalling monitor: %w", err))
		}
	}
	m, err := s.addMonitor(rec, d)
	if err != nil {
		d.mu.Unlock()
		return internalError(w, err)
	}
	var verdict *MonitorVerdict
	if e, err := s.datasets.Get(req.Dataset); err == nil {
		verdict = s.evaluateMonitor(m, e) // seq 0: the registration-time answer
	}
	d.mu.Unlock()
	w.mark(stageExecute)

	writeJSON(w, http.StatusCreated, MonitorCreateResponse{MonitorInfo: m.info(), Verdict: verdict})
	return "ok"
}

// handleMonitorList serves GET /v1/monitors.
func (s *Server) handleMonitorList(w http.ResponseWriter, r *http.Request) {
	t := s.beginTrace(w, r)
	s.monMu.RLock()
	order := append([]*monitor(nil), s.monOrder...)
	s.monMu.RUnlock()
	infos := make([]MonitorInfo, len(order))
	for i, m := range order {
		infos[i] = m.info()
	}
	s.countRequest(mechMonitors, "ok")
	writeJSON(t, http.StatusOK, MonitorListResponse{Monitors: infos})
	s.finishTrace(t, mechMonitors, "ok")
}

// handleMonitorGet serves GET /v1/monitors/{id}.
func (s *Server) handleMonitorGet(w http.ResponseWriter, r *http.Request) {
	t := s.beginTrace(w, r)
	m, ok := s.lookupMonitor(r.PathValue("id"))
	if !ok {
		s.countRequest(mechMonitors, CodeUnknownMonitor)
		writeError(t, http.StatusNotFound, ErrorBody{Code: CodeUnknownMonitor,
			Message: fmt.Sprintf("unknown monitor %q", r.PathValue("id"))})
		s.finishTrace(t, mechMonitors, CodeUnknownMonitor)
		return
	}
	s.countRequest(mechMonitors, "ok")
	writeJSON(t, http.StatusOK, m.info())
	s.finishTrace(t, mechMonitors, "ok")
}

func (s *Server) lookupMonitor(id string) (*monitor, bool) {
	s.monMu.RLock()
	m, ok := s.monitors[id]
	s.monMu.RUnlock()
	return m, ok
}

// handleMonitorStream serves GET /v1/monitors/{id}/stream as Server-Sent
// Events: the monitor's full verdict history first, then every new verdict
// as appends arrive, until the client hangs up or the server shuts down.
// The handler writes through the raw ResponseWriter — a long-lived stream
// has no single latency or byte count for the trace pipeline to record.
func (s *Server) handleMonitorStream(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookupMonitor(r.PathValue("id"))
	if !ok {
		s.countRequest(mechMonitors, CodeUnknownMonitor)
		writeError(w, http.StatusNotFound, ErrorBody{Code: CodeUnknownMonitor,
			Message: fmt.Sprintf("unknown monitor %q", r.PathValue("id"))})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.countRequest(mechMonitors, CodeInternal)
		writeError(w, http.StatusInternalServerError, ErrorBody{Code: CodeInternal,
			Message: "response writer does not support streaming"})
		return
	}
	s.countRequest(mechMonitors, "ok")
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	history, ch := m.subscribe()
	defer m.unsubscribe(ch)
	for _, v := range history {
		if writeSSE(w, fl, v) != nil {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.monClosed:
			return
		case v, open := <-ch:
			if !open {
				// Dropped for falling behind; the client reconnects.
				return
			}
			if writeSSE(w, fl, v) != nil {
				return
			}
		}
	}
}

// writeSSE emits one verdict as an SSE "verdict" event and flushes it to the
// client immediately.
func writeSSE(w http.ResponseWriter, fl http.Flusher, v MonitorVerdict) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: verdict\ndata: %s\n\n", data); err != nil {
		return err
	}
	fl.Flush()
	return nil
}
