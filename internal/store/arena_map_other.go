//go:build !unix

package store

import (
	"errors"
	"os"
)

// arenaMap is unsupported off unix; LoadArena falls back to reading the
// payload into an in-memory arena.
func arenaMap(*os.File, int) ([]byte, error) {
	return nil, errors.New("store: mmap unsupported on this platform")
}

func arenaUnmap([]byte) error { return nil }
