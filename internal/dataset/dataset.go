package dataset

import (
	"fmt"
	"sort"

	"github.com/freegap/freegap/internal/rng"
)

// Transactions is a transaction database: each element is one record, the set
// of item identifiers that appear in that record. Item identifiers are small
// non-negative integers; duplicates within a record are ignored by the
// counting logic.
type Transactions struct {
	name    string
	records [][]int32
	items   int // number of distinct item ids, i.e. max id + 1
}

// New builds a Transactions database from raw records. The number of distinct
// items is inferred from the largest item id present. The name is carried
// through to reports and tables.
func New(name string, records [][]int32) *Transactions {
	maxItem := int32(-1)
	for _, r := range records {
		for _, it := range r {
			if it < 0 {
				panic(fmt.Sprintf("dataset: negative item id %d", it))
			}
			if it > maxItem {
				maxItem = it
			}
		}
	}
	return &Transactions{name: name, records: records, items: int(maxItem) + 1}
}

// WithUniverse returns a view of the database whose item universe is padded
// to at least items (ids beyond any observed item simply count zero). The
// records are shared, not copied. Synthetic generators declare universes
// larger than the ids their transactions happen to contain; a serialisation
// round trip through the FIMI text format re-infers the universe from the
// observed ids alone, and this restores the declared size so counting-query
// workloads keep their exact shape.
func (t *Transactions) WithUniverse(items int) *Transactions {
	if items <= t.items {
		return t
	}
	return &Transactions{name: t.name, records: t.records, items: items}
}

// Name returns the dataset's display name.
func (t *Transactions) Name() string { return t.name }

// NumRecords returns the number of transactions.
func (t *Transactions) NumRecords() int { return len(t.records) }

// NumItems returns the number of distinct item identifiers (max id + 1).
func (t *Transactions) NumItems() int { return t.items }

// Record returns the i-th transaction. The returned slice must not be
// modified.
func (t *Transactions) Record(i int) []int32 { return t.records[i] }

// MeanLength returns the average number of (possibly repeated) items per
// transaction.
func (t *Transactions) MeanLength() float64 {
	if len(t.records) == 0 {
		return 0
	}
	return float64(t.TotalLength()) / float64(len(t.records))
}

// TotalLength returns the total number of item slots across every record
// (repeats included). Incremental maintainers track it so MeanLength after an
// append agrees bit-for-bit with a full recompute.
func (t *Transactions) TotalLength() int {
	total := 0
	for _, r := range t.records {
		total += len(r)
	}
	return total
}

// ItemCounts returns, for each item id, the number of transactions that
// contain it at least once. These are exactly the sensitivity-1 monotonic
// counting queries used throughout Section 7: adding or removing one
// transaction changes each count by at most 1.
func (t *Transactions) ItemCounts() []float64 {
	counts := make([]float64, t.items)
	seen := make([]int, t.items) // record index+1 of last sighting, avoids clearing a bool slice per record
	for ri, r := range t.records {
		stamp := ri + 1
		for _, it := range r {
			if seen[it] != stamp {
				seen[it] = stamp
				counts[it]++
			}
		}
	}
	return counts
}

// Stats summarises a dataset the way the table in Section 7.1 does.
type Stats struct {
	Name       string
	Records    int
	Items      int
	MeanLength float64
}

// Stats returns the dataset's summary statistics.
func (t *Transactions) Stats() Stats {
	return Stats{
		Name:       t.name,
		Records:    t.NumRecords(),
		Items:      t.NumItems(),
		MeanLength: t.MeanLength(),
	}
}

// String implements fmt.Stringer with a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d records, %d unique items, mean length %.2f",
		s.Name, s.Records, s.Items, s.MeanLength)
}

// RemoveRecord returns a copy of the database with record i removed. Together
// with the original it forms an adjacent pair D ∼ D' under the add/remove-one
// notion of adjacency used by the paper's privacy proofs and by the empirical
// privacy audit in internal/validate.
func (t *Transactions) RemoveRecord(i int) *Transactions {
	if i < 0 || i >= len(t.records) {
		panic(fmt.Sprintf("dataset: record index %d out of range [0,%d)", i, len(t.records)))
	}
	records := make([][]int32, 0, len(t.records)-1)
	records = append(records, t.records[:i]...)
	records = append(records, t.records[i+1:]...)
	cp := &Transactions{name: t.name, records: records, items: t.items}
	return cp
}

// AddRecord returns a copy of the database with one extra transaction.
// Item ids beyond the current universe grow the universe.
func (t *Transactions) AddRecord(record []int32) *Transactions {
	records := make([][]int32, len(t.records), len(t.records)+1)
	copy(records, t.records)
	records = append(records, record)
	items := t.items
	for _, it := range record {
		if int(it)+1 > items {
			items = int(it) + 1
		}
	}
	return &Transactions{name: t.name, records: records, items: items}
}

// AppendRecords returns a database extended with the delta transactions. The
// existing records are shared as a prefix — only the slice headers are
// copied, never the transactions themselves — so appending costs O(records)
// pointer copies plus the delta, with no rescan of the shared prefix. Item
// ids beyond the current universe grow it; negative ids panic (callers
// validate deltas before applying them).
func (t *Transactions) AppendRecords(delta [][]int32) *Transactions {
	records := make([][]int32, 0, len(t.records)+len(delta))
	records = append(records, t.records...)
	records = append(records, delta...)
	items := t.items
	for _, r := range delta {
		for _, it := range r {
			if it < 0 {
				panic(fmt.Sprintf("dataset: negative item id %d", it))
			}
			if int(it)+1 > items {
				items = int(it) + 1
			}
		}
	}
	return &Transactions{name: t.name, records: records, items: items}
}

// DeltaItemCounts returns, for each item id in a universe of the given size,
// how many of the delta records contain it at least once — exactly the
// increment ItemCounts gains from appending delta, computed by scanning only
// the delta. Every item id must lie in [0, items).
func DeltaItemCounts(delta [][]int32, items int) []float64 {
	counts := make([]float64, items)
	seen := make([]int, items)
	for ri, r := range delta {
		stamp := ri + 1
		for _, it := range r {
			if seen[it] != stamp {
				seen[it] = stamp
				counts[it]++
			}
		}
	}
	return counts
}

// TopKItems returns the indices of the k items with the largest true counts,
// in descending count order. Ties are broken by smaller item id so the result
// is deterministic. It is the ground truth against which precision, recall
// and F-measure are computed.
func TopKItems(counts []float64, k int) []int {
	if k < 0 {
		panic("dataset: negative k")
	}
	if k > len(counts) {
		k = len(counts)
	}
	idx := make([]int, len(counts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if counts[idx[a]] != counts[idx[b]] {
			return counts[idx[a]] > counts[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// KthLargest returns the k-th largest value of counts (1-based: k=1 is the
// maximum). It is used to pick thresholds "from the top 2k to top 8k" the way
// Section 7.2 describes.
func KthLargest(counts []float64, k int) float64 {
	if k < 1 || k > len(counts) {
		panic(fmt.Sprintf("dataset: k=%d out of range for %d counts", k, len(counts)))
	}
	cp := append([]float64(nil), counts...)
	sort.Sort(sort.Reverse(sort.Float64Slice(cp)))
	return cp[k-1]
}

// RandomThreshold draws a threshold uniformly between the top-2k-th and the
// top-8k-th largest counts, replicating the threshold selection protocol of
// Section 7.2 ("randomly picked from the top 2k to top 8k in each dataset").
func RandomThreshold(src rng.Source, counts []float64, k int) float64 {
	lo, hi := 2*k, 8*k
	if hi > len(counts) {
		hi = len(counts)
	}
	if lo < 1 {
		lo = 1
	}
	if lo > hi {
		lo = hi
	}
	rank := lo + rng.Intn(src, hi-lo+1)
	return KthLargest(counts, rank)
}

// CountAbove returns how many entries of counts are strictly greater than or
// equal to the threshold. It is the recall denominator for the SVT quality
// experiments (Figures 3d–3f).
func CountAbove(counts []float64, threshold float64) int {
	n := 0
	for _, c := range counts {
		if c >= threshold {
			n++
		}
	}
	return n
}
