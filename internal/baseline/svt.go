package baseline

import (
	"fmt"
	"math"

	"github.com/freegap/freegap/internal/rng"
)

// SparseVector is the classical Sparse Vector Technique in the corrected
// formulation of Lyu, Su and Li (SVT "Algorithm 1"), the gap-free baseline of
// the paper's Figures 3 and 4. Given a public threshold T and a stream of
// sensitivity-1 queries, it reports, for each query, whether its noisy answer
// exceeds a noisy threshold, stopping after K positive reports.
//
// The total budget ε is split as ε₀ = θ·ε for the threshold and
// ε₁ = (1−θ)·ε/K per positive answer. Lyu et al. recommend
// θ = 1/(1+(2K)^{2/3}) in general and θ = 1/(1+K^{2/3}) for monotonic queries,
// which ThetaLyu computes.
type SparseVector struct {
	K         int
	Epsilon   float64
	Threshold float64
	Theta     float64
	Monotonic bool
}

// ThetaLyu returns the Lyu et al. budget-split parameter θ for k positive
// answers: 1/(1+(2k)^{2/3}), or 1/(1+k^{2/3}) when the query list is
// monotonic.
func ThetaLyu(k int, monotonic bool) float64 {
	if k <= 0 {
		panic(fmt.Sprintf("baseline: k = %d must be positive", k))
	}
	c := float64(2 * k)
	if monotonic {
		c = float64(k)
	}
	return 1 / (1 + math.Pow(c, 2.0/3.0))
}

// NewSparseVector validates parameters and returns the mechanism. theta must
// lie strictly between 0 and 1; use ThetaLyu for the recommended setting.
func NewSparseVector(k int, epsilon, threshold, theta float64, monotonic bool) (*SparseVector, error) {
	if k <= 0 {
		return nil, fmt.Errorf("baseline: k = %d must be positive", k)
	}
	if !(epsilon > 0) {
		return nil, fmt.Errorf("baseline: epsilon %v must be positive", epsilon)
	}
	if !(theta > 0 && theta < 1) {
		return nil, fmt.Errorf("baseline: theta %v must be in (0,1)", theta)
	}
	return &SparseVector{K: k, Epsilon: epsilon, Threshold: threshold, Theta: theta, Monotonic: monotonic}, nil
}

// SVTAnswer is one per-query report of the classic SVT.
type SVTAnswer struct {
	Index int  // position in the query stream
	Above bool // true = ">", false = "⊥"
}

// SVTResult is the full output of one SVT run.
type SVTResult struct {
	Answers     []SVTAnswer // one entry per processed query, in stream order
	AboveCount  int         // number of ">" answers (≤ K)
	BudgetSpent float64     // ε consumed: ε₀ plus ε₁ per positive answer
}

// AboveIndices returns the stream positions reported as above-threshold.
func (r *SVTResult) AboveIndices() []int {
	out := make([]int, 0, r.AboveCount)
	for _, a := range r.Answers {
		if a.Above {
			out = append(out, a.Index)
		}
	}
	return out
}

// Run processes the query stream until K positive answers have been produced
// or the stream is exhausted.
//
// Noise scales follow Lyu et al.: threshold noise Laplace(1/ε₀) and per-query
// noise Laplace(2K/ε₁′) where ε₁′ = (1−θ)·ε is the total query budget — i.e.
// each query gets Laplace(2K/((1−θ)ε)); for monotonic queries the factor 2
// drops.
func (m *SparseVector) Run(src rng.Source, answers []float64) (*SVTResult, error) {
	if len(answers) == 0 {
		return nil, fmt.Errorf("baseline: no queries")
	}
	eps0 := m.Theta * m.Epsilon
	epsQueries := (1 - m.Theta) * m.Epsilon
	perQueryFactor := 2.0
	if m.Monotonic {
		perQueryFactor = 1.0
	}
	queryScale := perQueryFactor * float64(m.K) / epsQueries

	noisyThreshold := m.Threshold + rng.Laplace(src, 1/eps0)
	result := &SVTResult{BudgetSpent: eps0}
	for i, q := range answers {
		if result.AboveCount >= m.K {
			break
		}
		noisy := q + rng.Laplace(src, queryScale)
		above := noisy >= noisyThreshold
		result.Answers = append(result.Answers, SVTAnswer{Index: i, Above: above})
		if above {
			result.AboveCount++
			result.BudgetSpent += epsQueries / float64(m.K)
		}
	}
	return result, nil
}
