// Package store is the server-side dataset catalog: a concurrency-safe
// registry of named, appendable transaction databases that the serving layer
// resolves counting-query workloads against. Registering a dataset — from a
// FIMI-format upload, a synthetic generator, or a preload file — precomputes
// its item-count vector exactly once; every resolved request afterwards is
// served from that cached read-only slice, so the hot path never rescans the
// transactions. Appending a delta builds the next immutable data generation
// from the previous one — count vector, presence bitset, min/max and zone
// sketches are all delta-maintained by scanning only the new records — and
// installs it with one atomic pointer swap, so readers always see a
// consistent dataset and the zero-per-request-rescan property survives
// streaming ingestion. This is the curator trust model of the paper: the
// server holds the data and answers sensitivity-1 counting queries under DP,
// instead of clients shipping precomputed answers with every request.
package store

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/freegap/freegap/internal/dataset"
)

// MaxNameLen bounds dataset names; they become URL path segments
// (GET /v1/datasets/{name}) and telemetry label values.
const MaxNameLen = 64

// Default catalog limits applied by New.
const (
	// DefaultMaxDatasets bounds how many datasets a catalog holds.
	DefaultMaxDatasets = 1024
	// DefaultMaxItems bounds the item universe of one dataset. Each distinct
	// item costs 8 bytes in the cached count vector, so an unbounded upload
	// containing the single line "2000000000" would otherwise materialise a
	// multi-gigabyte slice. It deliberately equals the serving layer's
	// default per-request answer cap (server.DefaultMaxAnswers), so a
	// catalogued dataset's all_items workload is always servable.
	DefaultMaxItems = 1 << 20
	// DefaultMaxRecords bounds the transaction count of one dataset.
	DefaultMaxRecords = 1 << 24
)

// Sentinel errors, exposed so callers can map them to API error codes.
var (
	// ErrUnknownDataset reports a lookup of an uncatalogued name.
	ErrUnknownDataset = errors.New("store: unknown dataset")
	// ErrDatasetExists reports a registration under a taken name.
	ErrDatasetExists = errors.New("store: dataset already registered")
	// ErrStaleAppend reports an InstallAppend whose prepared base generation
	// was superseded by another append; the caller re-prepares and retries.
	ErrStaleAppend = errors.New("store: append prepared against a superseded generation")
)

// Limits bounds what a catalog accepts. Zero fields mean the package
// defaults, negative fields mean unlimited.
type Limits struct {
	// MaxDatasets bounds the number of catalogued datasets.
	MaxDatasets int
	// MaxItems bounds a dataset's item universe (max item id + 1).
	MaxItems int
	// MaxRecords bounds a dataset's transaction count.
	MaxRecords int
}

func (l Limits) withDefaults() Limits {
	if l.MaxDatasets == 0 {
		l.MaxDatasets = DefaultMaxDatasets
	}
	if l.MaxItems == 0 {
		l.MaxItems = DefaultMaxItems
	}
	if l.MaxRecords == 0 {
		l.MaxRecords = DefaultMaxRecords
	}
	return l
}

// catalog is one immutable generation of the store's name → entry mapping.
// Readers load the current generation atomically and walk it without any
// lock; writers build the next generation under the write mutex and swap the
// pointer (RCU-style), so a registration never blocks a resolving request.
type catalog = map[string]*Entry

// Store is the concurrency-safe dataset catalog. Registration normally
// happens at startup (preloads) or through the dataset API; lookups happen
// on every resolved request, which is why they are lock-free: Get is an
// atomic pointer load plus a read of an immutable map.
type Store struct {
	limits Limits
	// writeMu serializes Register/Remove/Append (the copy-and-swap writers).
	writeMu sync.Mutex
	// byName points at the current immutable catalog generation. Never
	// mutated in place; always replaced wholesale under writeMu.
	byName atomic.Pointer[catalog]
	// retired holds superseded mmap-backed arenas. An append replaces an
	// entry's arena generation while lock-free readers may still hold slices
	// into the old mapping, so the mapping cannot be unmapped then; it is
	// parked here (under writeMu) and released in Close — or earlier, once
	// the reader count drains, when reclamation is enabled (see
	// EnableArenaReclaim).
	retired []*Arena
	// retiredN mirrors len(retired) so ReaderExit can skip the write lock
	// when there is nothing to reclaim.
	retiredN atomic.Int32
	// reclaim enables draining-reader reclamation of retired arenas. Opt-in:
	// it is only sound when every reader of mapped arena data brackets its
	// access with ReaderEnter/ReaderExit, which the serving layer does for
	// each request; bare library users keep the park-until-Close behavior.
	reclaim atomic.Bool
	// readers counts the in-flight bracketed readers (see ReaderEnter).
	readers atomic.Int64
}

// New returns an empty catalog with the default limits.
func New() *Store { return NewWithLimits(Limits{}) }

// NewWithLimits returns an empty catalog with the given limits.
func NewWithLimits(lim Limits) *Store {
	s := &Store{limits: lim.withDefaults()}
	empty := make(catalog)
	s.byName.Store(&empty)
	return s
}

// snapshot returns the current immutable catalog generation.
func (s *Store) snapshot() catalog { return *s.byName.Load() }

// Limits returns the catalog's effective limits (after defaulting), so
// ingestion paths (uploads, preloads) can enforce the same caps at parse
// time that Register enforces at registration.
func (s *Store) Limits() Limits { return s.limits }

// Entry is one catalogued dataset: a name bound to a sequence of immutable
// data generations. Each generation pairs the transactions with the columnar
// count arena built from exactly those transactions; Append publishes the
// next generation with one atomic swap, so lock-free readers always see a
// matched (dataset, arena) pair. The counters make the caching observable:
// CountScans stays at its registration value however many requests resolve
// against the entry — and however many deltas are appended, because appends
// delta-maintain the derived state instead of rescanning.
type Entry struct {
	name    string
	source  string
	created time.Time

	// gen points at the current immutable data generation; replaced
	// wholesale under the store's writeMu, loaded lock-free by readers.
	gen atomic.Pointer[entryGen]

	resolutions atomic.Uint64 // query resolutions served from the cache
	scans       atomic.Uint64 // count materialisations (scan or arena load); cached resolutions and appends never add
	skipped     atomic.Uint64 // records proven unmatching by zone sketches and never scanned

	// plans caches compiled composite-query plans and their materialized
	// count vectors, keyed by canonical spec (see the query planner). An
	// append resets it: cached vectors describe the superseded generation.
	plans PlanCache
}

// entryGen is one immutable data generation of an entry: everything an
// append replaces atomically.
type entryGen struct {
	db     *dataset.Transactions
	arena  *Arena
	counts []float64     // the arena's column; treated as read-only ever after
	stats  dataset.Stats // maintained incrementally; Info would otherwise rescan for MeanLength
	lenSum int           // total item slots across records, so MeanLength extends exactly
}

// View is one consistent snapshot of an entry's data generation. Code that
// touches both the transactions and the arena (filter scans, explain, arena
// persistence) must read them through a single View — two separate loads
// could straddle an append and pair a new dataset with an old arena.
type View struct {
	db    *dataset.Transactions
	arena *Arena
}

// Dataset returns the snapshot's transactions (read-only by contract).
func (v View) Dataset() *dataset.Transactions { return v.db }

// Arena returns the snapshot's columnar count arena (read-only by contract).
func (v View) Arena() *Arena { return v.arena }

// Info summarises an entry for the dataset API.
type Info struct {
	// Name is the catalog key.
	Name string `json:"name"`
	// Source records where the dataset came from (e.g. "upload:fimi",
	// "synthetic:bmspos", "file:/data/kosarak.dat").
	Source string `json:"source"`
	// Records is the number of transactions.
	Records int `json:"records"`
	// Items is the size of the item universe (max item id + 1).
	Items int `json:"items"`
	// MeanLength is the average transaction length.
	MeanLength float64 `json:"mean_length"`
	// MinCount is the smallest non-zero item count (0 if every count is 0).
	MinCount float64 `json:"min_count"`
	// MaxCount is the largest item count.
	MaxCount float64 `json:"max_count"`
	// NonzeroItems is how many items occur in at least one transaction.
	NonzeroItems int `json:"nonzero_items"`
	// ArenaMapped reports whether the count arena is served from a file
	// mapping (the restart fast path) rather than an in-memory scan.
	ArenaMapped bool `json:"arena_mapped"`
	// SketchBlocks is the number of zone-sketch blocks built for data
	// skipping (0 when the arena carries no sketches).
	SketchBlocks int `json:"sketch_blocks"`
	// PlanCacheEntries is the number of cached compiled query plans.
	PlanCacheEntries int `json:"plan_cache_entries"`
	// RecordsSkipped counts records that zone sketches proved unmatching,
	// letting filter scans skip their blocks entirely.
	RecordsSkipped uint64 `json:"records_skipped"`
	// Resolutions counts query resolutions served from the cached counts.
	Resolutions uint64 `json:"resolutions"`
	// CountScans counts count-vector materialisations: the registration scan
	// (or validated arena load) plus one per composite filter query that had
	// to scan records on a plan-cache miss. It stays at 1 however many
	// requests resolve from the cached counts or the plan cache.
	CountScans uint64 `json:"count_scans"`
	// CreatedAt is the registration time.
	CreatedAt time.Time `json:"created_at"`
}

// ValidName reports whether name is acceptable as a catalog key: non-empty,
// at most MaxNameLen bytes of [a-z0-9._-], so it can be embedded verbatim in
// a route pattern and a Prometheus label.
func ValidName(name string) error {
	if name == "" {
		return errors.New("store: dataset name must be non-empty")
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("store: dataset name %q longer than %d bytes", name, MaxNameLen)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("store: dataset name %q contains %q (allowed: a-z, 0-9, '.', '_', '-')", name, c)
		}
	}
	return nil
}

// Register catalogues db under name, precomputing its item-count arena. The
// database must not be mutated by the caller afterwards. source is a short
// free-form provenance label carried into Info.
func (s *Store) Register(name, source string, db *dataset.Transactions) (*Entry, error) {
	return s.register(name, source, db, nil)
}

// RegisterArena is Register with a pre-built count arena (typically loaded
// from an arena file on restart), skipping the transaction scan. The arena
// must have been validated against db — len(a.Counts()) must equal
// db.NumItems(). CountScans still reads 1: the arena load is the entry's one
// count materialisation.
func (s *Store) RegisterArena(name, source string, db *dataset.Transactions, a *Arena) (*Entry, error) {
	if a == nil {
		return nil, errors.New("store: nil arena")
	}
	if db != nil && len(a.Counts()) != db.NumItems() {
		return nil, fmt.Errorf("store: arena holds %d items, dataset %q has %d", len(a.Counts()), name, db.NumItems())
	}
	return s.register(name, source, db, a)
}

func (s *Store) register(name, source string, db *dataset.Transactions, arena *Arena) (*Entry, error) {
	if err := ValidName(name); err != nil {
		return nil, err
	}
	if db == nil {
		return nil, errors.New("store: nil dataset")
	}
	if s.limits.MaxRecords > 0 && db.NumRecords() > s.limits.MaxRecords {
		return nil, fmt.Errorf("store: dataset %q has %d records, exceeding the limit of %d", name, db.NumRecords(), s.limits.MaxRecords)
	}
	if s.limits.MaxItems > 0 && db.NumItems() > s.limits.MaxItems {
		return nil, fmt.Errorf("store: dataset %q has an item universe of %d, exceeding the limit of %d", name, db.NumItems(), s.limits.MaxItems)
	}
	// Cheap duplicate pre-check so a taken name fails before the (possibly
	// expensive) count precompute; the authoritative check re-runs under the
	// write lock below.
	cur := s.snapshot()
	if _, taken := cur[name]; taken {
		return nil, fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	if s.limits.MaxDatasets > 0 && len(cur) >= s.limits.MaxDatasets {
		return nil, fmt.Errorf("store: catalog holds %d datasets, the maximum", s.limits.MaxDatasets)
	}

	e := &Entry{name: name, source: source, created: time.Now()}
	e.scans.Add(1) // the one registration count materialisation for this entry
	if arena == nil {
		arena = newArena(db.ItemCounts()) // the registration transaction scan
		// Zone sketches ride the same registration pass budget: one extra
		// O(records) walk; appends extend them incrementally later.
		arena.zones = BuildZones(db, DefaultZoneBlock)
	}
	e.gen.Store(&entryGen{
		db: db, arena: arena, counts: arena.Counts(),
		stats: db.Stats(), lenSum: db.TotalLength(),
	})

	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	cur = s.snapshot()
	if _, ok := cur[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	if s.limits.MaxDatasets > 0 && len(cur) >= s.limits.MaxDatasets {
		return nil, fmt.Errorf("store: catalog holds %d datasets, the maximum", s.limits.MaxDatasets)
	}
	next := make(catalog, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[name] = e
	s.byName.Store(&next)
	return e, nil
}

// Remove drops the entry catalogued under name, reporting whether it
// existed. Catalogued datasets stay registered for their lifetime — Remove
// exists solely so the serving layer can roll back a registration whose
// durable journalling failed, keeping "registered" equivalent to "survives a
// restart" on persistent servers. When the entry's arena knows its on-disk
// image, the file is unlinked too: a rolled-back registration must not leak
// a stale arena that a later re-registration under the same name would have
// to detect and discard.
func (s *Store) Remove(name string) bool {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	cur := s.snapshot()
	e, ok := cur[name]
	if !ok {
		return false
	}
	next := make(catalog, len(cur)-1)
	for k, v := range cur {
		if k != name {
			next[k] = v
		}
	}
	s.byName.Store(&next)
	// The removed arena may still be referenced by in-flight readers; park a
	// mapped one for Close like a superseded append generation, but drop the
	// file image now — the registration it belonged to no longer exists.
	a := e.gen.Load().arena
	if a.Mapped() {
		s.retired = append(s.retired, a)
		s.retiredN.Store(int32(len(s.retired)))
	}
	if p := a.Path(); p != "" {
		_ = os.Remove(p)
	}
	return true
}

// CheckAppend validates that appending delta to the dataset catalogued under
// name would stay within the catalog limits, without applying anything. The
// same checks re-run inside Append; callers that must journal an append
// before applying it use CheckAppend to ensure the journalled record cannot
// be refused afterwards.
func (s *Store) CheckAppend(name string, delta [][]int32) error {
	e, err := s.Get(name)
	if err != nil {
		return err
	}
	_, err = s.validateAppend(e.gen.Load(), name, delta)
	return err
}

// validateAppend checks delta against the limits relative to generation g,
// returning the appended generation's item universe.
func (s *Store) validateAppend(g *entryGen, name string, delta [][]int32) (items int, err error) {
	items = g.db.NumItems()
	for ri, r := range delta {
		for _, it := range r {
			if it < 0 {
				return 0, fmt.Errorf("store: append to %q: record %d holds negative item id %d", name, ri, it)
			}
			if int(it)+1 > items {
				items = int(it) + 1
			}
		}
	}
	if s.limits.MaxRecords > 0 && g.db.NumRecords()+len(delta) > s.limits.MaxRecords {
		return 0, fmt.Errorf("store: appending %d records to %q would exceed the limit of %d",
			len(delta), name, s.limits.MaxRecords)
	}
	if s.limits.MaxItems > 0 && items > s.limits.MaxItems {
		return 0, fmt.Errorf("store: append to %q would grow the item universe to %d, exceeding the limit of %d",
			name, items, s.limits.MaxItems)
	}
	return items, nil
}

// PendingAppend is one fully-built next data generation awaiting install:
// the output of PrepareAppend, consumed by InstallAppend. Preparing does all
// the delta-derived work — count deltas, sketch extension, zone extension —
// without holding any store lock, so concurrent appends to different
// datasets overlap their builds and only serialize on the (cheap) install.
type PendingAppend struct {
	entry *Entry
	base  *entryGen
	next  *entryGen
}

// Entry returns the entry the pending append extends.
func (p *PendingAppend) Entry() *Entry { return p.entry }

// Stale reports whether another append superseded the generation this one
// was prepared against; InstallAppend would fail with ErrStaleAppend.
func (p *PendingAppend) Stale() bool { return p.entry.gen.Load() != p.base }

// PrepareAppend validates delta against the catalog limits and builds the
// next data generation of the dataset catalogued under name — record list,
// count arena, presence bitset, min/max summaries and zone sketches, all
// extended from the delta alone — without taking the store's write lock.
// The caller publishes the result with InstallAppend; until then nothing is
// visible to readers and a dropped PendingAppend costs nothing.
func (s *Store) PrepareAppend(name string, delta [][]int32) (*PendingAppend, error) {
	e, err := s.Get(name)
	if err != nil {
		return nil, err
	}
	g := e.gen.Load()
	items, err := s.validateAppend(g, name, delta)
	if err != nil {
		return nil, err
	}
	db := g.db.AppendRecords(delta)
	arena := extendArena(g.arena, dataset.DeltaItemCounts(delta, items))
	arena.zones = ExtendZones(g.arena.Zones(), db, g.db.NumRecords())
	lenSum := g.lenSum
	for _, r := range delta {
		lenSum += len(r)
	}
	stats := g.stats
	stats.Records, stats.Items = db.NumRecords(), items
	if stats.Records > 0 {
		stats.MeanLength = float64(lenSum) / float64(stats.Records)
	}
	return &PendingAppend{
		entry: e,
		base:  g,
		next:  &entryGen{db: db, arena: arena, counts: arena.Counts(), stats: stats, lenSum: lenSum},
	}, nil
}

// InstallAppend publishes a prepared append as the entry's current data
// generation with one atomic swap, flushing the compiled-plan cache (its
// vectors describe the superseded generation). It fails with ErrStaleAppend
// when another append won the race since PrepareAppend — the caller
// re-prepares against the new generation — and with ErrUnknownDataset when
// the entry was removed in between.
func (s *Store) InstallAppend(p *PendingAppend) (*Entry, error) {
	e := p.entry
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if cur, ok := s.snapshot()[e.name]; !ok || cur != e {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, e.name)
	}
	if e.gen.Load() != p.base {
		return nil, fmt.Errorf("%w: %q", ErrStaleAppend, e.name)
	}
	if p.base.arena.Mapped() {
		// In-flight readers may hold slices into the old mapping; park it
		// until the reader count drains (or the store closes).
		s.retired = append(s.retired, p.base.arena)
		s.retiredN.Store(int32(len(s.retired)))
	}
	e.gen.Store(p.next)
	e.plans.Reset()
	s.sweepRetiredLocked()
	return e, nil
}

// Append extends the dataset catalogued under name with delta transactions,
// delta-maintaining every piece of derived state — count vector, presence
// bitset, min/max summaries and zone sketches — and installing the result as
// the entry's next data generation with one atomic swap. Only the delta is
// ever scanned: the record list shares the previous generation's prefix, the
// count column is the old column plus the delta's contributions, and the
// zone sketches are extended block-monotonically. CountScans therefore does
// not move, which is what pins "append" as incremental rather than a
// re-registration. An empty delta is a valid no-op append. Append is
// PrepareAppend + InstallAppend in a retry loop; callers that must order an
// append against other per-dataset work (journalling, monitor delivery) use
// the two halves directly and keep only the install inside their lock.
func (s *Store) Append(name string, delta [][]int32) (*Entry, error) {
	for {
		p, err := s.PrepareAppend(name, delta)
		if err != nil {
			return nil, err
		}
		e, err := s.InstallAppend(p)
		if errors.Is(err, ErrStaleAppend) {
			continue // another appender won; rebuild from its generation
		}
		return e, err
	}
}

// EnableArenaReclaim turns on draining-reader reclamation: a retired mmap
// arena generation is unmapped as soon as the bracketed reader count is
// observed at zero after its retirement, instead of being parked until
// Close. Callers must bracket every access to arena-backed data (count
// slices, zone sketches, record scans) between ReaderEnter and ReaderExit
// once reclamation is on — the serving layer brackets each HTTP request.
func (s *Store) EnableArenaReclaim() { s.reclaim.Store(true) }

// ReaderEnter marks the start of one bracketed reader (see
// EnableArenaReclaim).
func (s *Store) ReaderEnter() { s.readers.Add(1) }

// ReaderExit marks the end of one bracketed reader. The last reader out
// sweeps the retired arenas: observing the count at zero proves every
// reader that could hold a slice into a previously-retired mapping has
// finished, and any reader entering afterwards loads the current generation,
// which never points into a retired arena.
func (s *Store) ReaderExit() {
	if s.readers.Add(-1) == 0 && s.reclaim.Load() && s.retiredN.Load() > 0 {
		s.writeMu.Lock()
		s.sweepRetiredLocked()
		s.writeMu.Unlock()
	}
}

// RetiredArenas reports how many superseded mmap arena generations are
// parked awaiting reclamation (or Close), for the freegap_retired_arenas
// gauge.
func (s *Store) RetiredArenas() int { return int(s.retiredN.Load()) }

// sweepRetiredLocked unmaps every parked arena when reclamation is enabled
// and no bracketed reader is in flight. Caller holds writeMu, so every
// arena in the list was retired before the reader count was sampled; a
// reader that increments the count after the sample reads the current
// generation and cannot reach a parked mapping.
func (s *Store) sweepRetiredLocked() {
	if !s.reclaim.Load() || len(s.retired) == 0 || s.readers.Load() != 0 {
		return
	}
	for _, a := range s.retired {
		_ = a.Close()
	}
	s.retired = nil
	s.retiredN.Store(0)
}

// Get returns the entry catalogued under name. It takes no lock: the lookup
// reads the current immutable catalog generation through an atomic pointer,
// so dataset-backed requests never contend with registrations.
func (s *Store) Get(name string) (*Entry, error) {
	e, ok := s.snapshot()[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return e, nil
}

// Len returns the number of catalogued datasets.
func (s *Store) Len() int { return len(s.snapshot()) }

// Names returns the catalogued names, sorted.
func (s *Store) Names() []string {
	cur := s.snapshot()
	out := make([]string, 0, len(cur))
	for name := range cur {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// List returns every entry's Info in name order.
func (s *Store) List() []Info {
	cur := s.snapshot()
	entries := make([]*Entry, 0, len(cur))
	for _, e := range cur {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	out := make([]Info, len(entries))
	for i, e := range entries {
		out[i] = e.Info()
	}
	return out
}

// Close releases every entry's arena file mapping, if any — including the
// superseded generations parked by appends and removals. The store must not
// serve requests afterwards.
func (s *Store) Close() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	var first error
	for _, e := range s.snapshot() {
		if err := e.gen.Load().arena.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, a := range s.retired {
		if err := a.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.retired = nil
	s.retiredN.Store(0)
	empty := make(catalog)
	s.byName.Store(&empty)
	return first
}

// Name returns the catalog key.
func (e *Entry) Name() string { return e.name }

// View returns one consistent snapshot of the entry's current data
// generation. Callers that need both the transactions and the arena must take
// a single View and use it throughout — separate Arena/Dataset calls could
// observe different generations across an append.
func (e *Entry) View() View {
	g := e.gen.Load()
	return View{db: g.db, arena: g.arena}
}

// Arena returns the current generation's columnar count arena (read-only by
// contract). Use View when the matching transactions are needed too.
func (e *Entry) Arena() *Arena { return e.gen.Load().arena }

// Dataset returns the current generation's transactions (read-only by
// contract). Use View when the matching arena is needed too.
func (e *Entry) Dataset() *dataset.Transactions { return e.gen.Load().db }

// Info summarises the entry from the stats maintained incrementally at
// registration and on every append.
func (e *Entry) Info() Info {
	g := e.gen.Load()
	return Info{
		Name:         e.name,
		Source:       e.source,
		Records:      g.stats.Records,
		Items:        g.stats.Items,
		MeanLength:   g.stats.MeanLength,
		MinCount:     g.arena.MinCount(),
		MaxCount:     g.arena.MaxCount(),
		NonzeroItems: g.arena.NonzeroItems(),
		ArenaMapped:  g.arena.Mapped(),

		SketchBlocks:     g.arena.Zones().NumBlocks(),
		PlanCacheEntries: e.plans.Len(),
		RecordsSkipped:   e.skipped.Load(),

		Resolutions: e.resolutions.Load(),
		CountScans:  e.scans.Load(),
		CreatedAt:   e.created,
	}
}

// ResolveAll returns the cached item-count vector — one sensitivity-1
// monotonic counting query per item in the universe, the exact Section 7
// workload. The returned slice is shared and must not be modified.
func (e *Entry) ResolveAll() []float64 {
	e.resolutions.Add(1)
	return e.gen.Load().counts
}

// ResolveItems returns the counts of the given items, answered by indexing
// the arena (never by rescanning the transactions). The presence bitset is
// consulted first, so absent items — including ids beyond the universe,
// which legitimately count zero — never touch the counts column. Negative
// ids are rejected.
func (e *Entry) ResolveItems(items []int32) ([]float64, error) {
	g := e.gen.Load()
	out := make([]float64, len(items))
	for i, it := range items {
		if it < 0 {
			return nil, fmt.Errorf("store: items[%d] = %d is negative", i, it)
		}
		if g.arena.Has(it) {
			out[i] = g.counts[int(it)]
		}
	}
	e.resolutions.Add(1)
	return out, nil
}

// Resolutions returns how many query resolutions the entry has served.
func (e *Entry) Resolutions() uint64 { return e.resolutions.Load() }

// NoteResolution counts one query resolution served against the entry; the
// query planner calls it for composite specs, which bypass ResolveAll and
// ResolveItems.
func (e *Entry) NoteResolution() { e.resolutions.Add(1) }

// CountScans returns how many times the entry materialised counts from its
// records: the registration scan (or validated arena load) plus one per
// plan-cache-missing composite filter query. Plan-cache hits never add, so
// the counter pins the cache's effectiveness.
func (e *Entry) CountScans() uint64 { return e.scans.Load() }

// NoteCountScan counts one record-scanning count materialisation (a
// composite filter evaluated on a plan-cache miss).
func (e *Entry) NoteCountScan() { e.scans.Add(1) }

// RecordsSkipped returns how many records the zone sketches let filter
// scans skip.
func (e *Entry) RecordsSkipped() uint64 { return e.skipped.Load() }

// NoteRecordsSkipped adds n sketch-skipped records to the entry's counter.
func (e *Entry) NoteRecordsSkipped(n uint64) { e.skipped.Add(n) }

// Plans returns the entry's compiled-plan cache.
func (e *Entry) Plans() *PlanCache { return &e.plans }

// GenerateSynthetic builds one of the calibrated synthetic stand-ins for the
// paper's Section 7 datasets by kind: "bmspos", "kosarak" or "t40i10d100k"
// (alias "quest"). scale divides the transaction count for fast runs
// (<= 1 means full size).
func GenerateSynthetic(kind string, scale int, seed uint64) (*dataset.Transactions, error) {
	switch strings.ToLower(kind) {
	case "bmspos":
		return dataset.BMSPOSConfig().ScaledDown(scale).Generate(seed), nil
	case "kosarak":
		return dataset.KosarakConfig().ScaledDown(scale).Generate(seed), nil
	case "t40i10d100k", "quest":
		return dataset.T40I10D100KConfig().ScaledDown(scale).Generate(seed), nil
	default:
		return nil, fmt.Errorf("store: unknown synthetic dataset kind %q (valid: bmspos, kosarak, t40i10d100k)", kind)
	}
}

// Preload describes one dataset to catalogue at server construction: either a
// FIMI-format file (Path) or a synthetic generator (Synthetic), never both.
type Preload struct {
	// Name is the catalog key to register under.
	Name string
	// Path is a FIMI-format transaction file to load.
	Path string
	// Synthetic is a synthetic dataset kind accepted by GenerateSynthetic.
	Synthetic string
	// Scale divides the synthetic transaction count (<= 1 means full size).
	Scale int
	// Seed seeds the synthetic generator.
	Seed uint64
}

// Load materialises the preload and registers it into s.
func (p Preload) Load(s *Store) (*Entry, error) {
	switch {
	case p.Path != "" && p.Synthetic != "":
		return nil, fmt.Errorf("store: preload %q names both a file and a synthetic kind", p.Name)
	case p.Path != "":
		db, err := dataset.ReadFIMIFileLimited(p.Path, dataset.FIMILimits{
			MaxRecords: s.limits.MaxRecords,
			MaxItemID:  int32(s.limits.MaxItems) - 1,
		})
		if err != nil {
			return nil, err
		}
		return s.Register(p.Name, "file:"+p.Path, db)
	case p.Synthetic != "":
		db, err := GenerateSynthetic(p.Synthetic, p.Scale, p.Seed)
		if err != nil {
			return nil, err
		}
		return s.Register(p.Name, "synthetic:"+strings.ToLower(p.Synthetic), db)
	default:
		return nil, fmt.Errorf("store: preload %q names neither a file nor a synthetic kind", p.Name)
	}
}
