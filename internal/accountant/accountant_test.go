package accountant

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := New(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := New(math.NaN()); err == nil {
		t.Fatal("NaN budget accepted")
	}
	a, err := New(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Budget() != 1.5 {
		t.Fatalf("budget %v", a.Budget())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(-1)
}

func TestSpendAndRemaining(t *testing.T) {
	a := MustNew(1.0)
	if err := a.Spend("threshold", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("query", 0.5); err != nil {
		t.Fatal(err)
	}
	if got := a.Spent(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("spent %v", got)
	}
	if got := a.Remaining(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("remaining %v", got)
	}
	if got := a.RemainingFraction(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("remaining fraction %v", got)
	}
	if err := a.Spend("too much", 0.5); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("expected ErrBudgetExceeded, got %v", err)
	}
	// Failed spends must not change state.
	if got := a.Spent(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("failed spend altered state: %v", got)
	}
}

func TestSpendInvalidCharge(t *testing.T) {
	a := MustNew(1)
	for _, eps := range []float64{0, -0.1, math.NaN()} {
		if err := a.Spend("bad", eps); !errors.Is(err, ErrInvalidCharge) {
			t.Errorf("charge %v: expected ErrInvalidCharge, got %v", eps, err)
		}
	}
}

func TestSpendExactBudgetWithTolerance(t *testing.T) {
	a := MustNew(0.7)
	// Charge in 7 slices of 0.1 whose float sum is not exactly 0.7.
	for i := 0; i < 7; i++ {
		if err := a.Spend("slice", 0.1); err != nil {
			t.Fatalf("slice %d rejected: %v", i, err)
		}
	}
	if a.CanSpend(0.05) {
		t.Fatal("budget exhausted yet CanSpend accepted a real charge")
	}
}

func TestCanSpend(t *testing.T) {
	a := MustNew(1)
	if !a.CanSpend(1) {
		t.Fatal("full budget should be spendable")
	}
	if a.CanSpend(1.5) {
		t.Fatal("over-budget charge admitted")
	}
	if a.CanSpend(0) || a.CanSpend(-1) {
		t.Fatal("non-positive charge admitted")
	}
}

func TestChargesLogAndReset(t *testing.T) {
	a := MustNew(2)
	_ = a.Spend("a", 0.5)
	_ = a.Spend("b", 0.25)
	log := a.Charges()
	if len(log) != 2 || log[0].Label != "a" || log[1].Epsilon != 0.25 {
		t.Fatalf("unexpected log %+v", log)
	}
	// Mutating the returned slice must not affect the accountant.
	log[0].Epsilon = 99
	if a.Charges()[0].Epsilon != 0.5 {
		t.Fatal("Charges returned internal slice")
	}
	a.Reset()
	if a.Spent() != 0 || len(a.Charges()) != 0 {
		t.Fatal("reset did not clear state")
	}
	if a.Budget() != 2 {
		t.Fatal("reset changed the budget")
	}
}

func TestSplit(t *testing.T) {
	a := MustNew(1)
	share, err := a.Split(4)
	if err != nil || math.Abs(share-0.25) > 1e-12 {
		t.Fatalf("share %v err %v", share, err)
	}
	_ = a.Spend("half", 0.5)
	share, err = a.Split(2)
	if err != nil || math.Abs(share-0.25) > 1e-12 {
		t.Fatalf("share after spend %v err %v", share, err)
	}
	if _, err := a.Split(0); err == nil {
		t.Fatal("split into zero shares accepted")
	}
	_ = a.Spend("rest", 0.5)
	if _, err := a.Split(2); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("expected ErrBudgetExceeded, got %v", err)
	}
}

func TestConcurrentSpendNeverExceedsBudget(t *testing.T) {
	a := MustNew(1)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = a.Spend("w", 0.003)
			}
		}()
	}
	wg.Wait()
	if a.Spent() > a.Budget()+1e-6 {
		t.Fatalf("spent %v exceeds budget %v", a.Spent(), a.Budget())
	}
}

func TestSpendNeverExceedsBudgetProperty(t *testing.T) {
	f := func(charges []float64) bool {
		a := MustNew(1)
		for _, c := range charges {
			c = math.Abs(math.Mod(c, 0.3))
			if c == 0 {
				continue
			}
			_ = a.Spend("p", c)
		}
		return a.Spent() <= a.Budget()+1e-6 && a.Remaining() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSpendBatchAllOrNothing(t *testing.T) {
	a := MustNew(1.0)
	batch := []Charge{
		{Label: "topk", Epsilon: 0.3},
		{Label: "svt", Epsilon: 0.3},
	}
	if err := a.SpendBatch(batch); err != nil {
		t.Fatalf("first batch rejected: %v", err)
	}
	if got := a.Spent(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("spent = %v, want 0.6", got)
	}
	if got := a.ChargeCount(); got != 2 {
		t.Fatalf("charge count = %d, want 2", got)
	}

	// A second identical batch needs 0.6 but only 0.4 remains: nothing at all
	// may be charged.
	err := a.SpendBatch(batch)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget batch returned %v, want ErrBudgetExceeded", err)
	}
	if got := a.Spent(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("rejected batch changed spend: %v", got)
	}
	if got := a.ChargeCount(); got != 2 {
		t.Fatalf("rejected batch appended to the log: %d charges", got)
	}

	// A smaller batch that fits is still admitted afterwards.
	if err := a.SpendBatch([]Charge{{Label: "max", Epsilon: 0.4}}); err != nil {
		t.Fatalf("fitting batch rejected: %v", err)
	}
}

func TestSpendBatchRejectsInvalidCharges(t *testing.T) {
	a := MustNew(1.0)
	for _, batch := range [][]Charge{
		nil,
		{},
		{{Label: "ok", Epsilon: 0.1}, {Label: "bad", Epsilon: 0}},
		{{Label: "bad", Epsilon: -0.5}},
		{{Label: "bad", Epsilon: math.NaN()}},
		{{Label: "bad", Epsilon: math.Inf(1)}},
	} {
		if err := a.SpendBatch(batch); !errors.Is(err, ErrInvalidCharge) {
			t.Errorf("SpendBatch(%v) = %v, want ErrInvalidCharge", batch, err)
		}
	}
	if a.Spent() != 0 || a.ChargeCount() != 0 {
		t.Fatalf("invalid batches charged something: spent %v, %d charges", a.Spent(), a.ChargeCount())
	}
}

func TestConcurrentSpendBatchNeverOverdrafts(t *testing.T) {
	a := MustNew(1.0)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = a.SpendBatch([]Charge{
					{Label: "a", Epsilon: 0.02},
					{Label: "b", Epsilon: 0.03},
				})
			}
		}()
	}
	wg.Wait()
	if a.Spent() > a.Budget()+1e-6 {
		t.Fatalf("spent %v exceeds budget %v", a.Spent(), a.Budget())
	}
	// All-or-nothing: total spend must be a whole number of 0.05 batches.
	batches := a.Spent() / 0.05
	if math.Abs(batches-math.Round(batches)) > 1e-6 {
		t.Fatalf("spent %v is not a whole number of batch charges", a.Spent())
	}
	if a.ChargeCount()%2 != 0 {
		t.Fatalf("charge log holds half a batch: %d entries", a.ChargeCount())
	}
}

func TestSpentByLabel(t *testing.T) {
	a := MustNew(10)
	_ = a.Spend("topk", 1)
	_ = a.Spend("svt", 0.5)
	_ = a.SpendBatch([]Charge{{Label: "topk", Epsilon: 0.25}, {Label: "max", Epsilon: 0.75}})
	got := a.SpentByLabel()
	want := map[string]float64{"topk": 1.25, "svt": 0.5, "max": 0.75}
	if len(got) != len(want) {
		t.Fatalf("SpentByLabel = %v, want %v", got, want)
	}
	for label, eps := range want {
		if math.Abs(got[label]-eps) > 1e-12 {
			t.Errorf("SpentByLabel[%q] = %v, want %v", label, got[label], eps)
		}
	}
	if len(MustNew(1).SpentByLabel()) != 0 {
		t.Error("fresh accountant reports a non-empty breakdown")
	}
}

func TestBudgetErrorTyped(t *testing.T) {
	a := MustNew(1)
	if err := a.Spend("topk", 0.9); err != nil {
		t.Fatal(err)
	}

	// Would-exceed: 0.5 doesn't fit the remaining 0.1, but budget remains.
	err := a.Spend("topk", 0.5)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %T is not a *BudgetError", err)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Error("BudgetError does not unwrap to ErrBudgetExceeded")
	}
	if be.Exhausted() {
		t.Errorf("Exhausted() = true with remaining %v", be.Remaining())
	}
	if be.Batch {
		t.Error("single charge flagged as batch")
	}
	if math.Abs(be.Remaining()-0.1) > 1e-9 || be.Spent != 0.9 || be.Budget != 1 || be.Requested != 0.5 {
		t.Errorf("BudgetError = %+v", be)
	}
	if want := "accountant: privacy budget exceeded: spent 0.9 + charge 0.5 > budget 1"; err.Error() != want {
		t.Errorf("message = %q, want %q", err.Error(), want)
	}

	// Drain the rest, then assert the exhausted flavour.
	if err := a.Spend("topk", 0.1); err != nil {
		t.Fatal(err)
	}
	err = a.SpendBatch([]Charge{{Label: "a", Epsilon: 0.1}, {Label: "b", Epsilon: 0.1}})
	if !errors.As(err, &be) {
		t.Fatalf("error %T is not a *BudgetError", err)
	}
	if !be.Exhausted() {
		t.Error("Exhausted() = false on a fully spent budget")
	}
	if !be.Batch {
		t.Error("batch charge not flagged as batch")
	}
}

func TestJournalCalledIffCommitted(t *testing.T) {
	a := MustNew(2)
	var journalled []Charge
	a.SetJournal(func(charges []Charge) { journalled = append(journalled, charges...) })

	if err := a.Spend("topk", 0.6); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("svt", 1.6); err == nil {
		t.Fatal("over-budget charge admitted")
	}
	if err := a.SpendBatch([]Charge{{Label: "a", Epsilon: 0.2}, {Label: "b", Epsilon: 0.2}}); err != nil {
		t.Fatal(err)
	}
	want := []Charge{{Label: "topk", Epsilon: 0.6}, {Label: "a", Epsilon: 0.2}, {Label: "b", Epsilon: 0.2}}
	if len(journalled) != len(want) {
		t.Fatalf("journalled %v, want %v", journalled, want)
	}
	for i := range want {
		if journalled[i] != want[i] {
			t.Errorf("journalled[%d] = %v, want %v", i, journalled[i], want[i])
		}
	}

	a.SetJournal(nil)
	if err := a.Spend("topk", 0.5); err != nil {
		t.Fatal(err)
	}
	if len(journalled) != 3 {
		t.Error("journal still called after removal")
	}
}

func TestRestore(t *testing.T) {
	a := MustNew(10)
	if err := a.Restore([]Charge{{Label: "topk", Epsilon: 3}, {Label: "svt", Epsilon: 1}}, 7); err != nil {
		t.Fatal(err)
	}
	if a.Spent() != 4 || a.Remaining() != 6 {
		t.Errorf("spent/remaining = %v/%v, want 4/6", a.Spent(), a.Remaining())
	}
	if a.ChargeCount() != 7 {
		t.Errorf("ChargeCount = %d, want 7 (restored count preserved)", a.ChargeCount())
	}
	by := a.SpentByLabel()
	if by["topk"] != 3 || by["svt"] != 1 {
		t.Errorf("SpentByLabel = %v", by)
	}
	// Further spending continues from the restored state.
	if err := a.Spend("max", 6); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("max", 0.1); err == nil {
		t.Error("overdraft admitted after restore")
	}
	if a.ChargeCount() != 8 {
		t.Errorf("ChargeCount = %d, want 8", a.ChargeCount())
	}

	// Restoring beyond the configured budget is allowed (budget may have
	// shrunk between runs); everything is then rejected.
	b := MustNew(1)
	if err := b.Restore([]Charge{{Label: "topk", Epsilon: 5}}, 1); err != nil {
		t.Fatal(err)
	}
	if b.Remaining() != 0 {
		t.Errorf("remaining = %v, want 0", b.Remaining())
	}
	if err := b.Spend("topk", 0.001); err == nil {
		t.Error("spend admitted on an over-restored accountant")
	}

	// Invalid restores are rejected.
	if err := MustNew(1).Restore([]Charge{{Label: "x", Epsilon: -1}}, 1); err == nil {
		t.Error("negative restored charge accepted")
	}
	if err := MustNew(1).Restore([]Charge{{Label: "x", Epsilon: 1}}, 0); err == nil {
		t.Error("charge count below log length accepted")
	}

	// Reset clears restored state too.
	a.Reset()
	if a.Spent() != 0 || a.ChargeCount() != 0 {
		t.Errorf("after Reset: spent %v, count %d", a.Spent(), a.ChargeCount())
	}
}
