package server

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/telemetry"
)

// bigTestDataset builds a 65k-record dataset: item i%97 in every record, item
// 1 additionally in every third. Large enough that an accidental rescan on
// append would be a visible regression, structured enough to predict counts.
func bigTestDataset(records int) *dataset.Transactions {
	rows := make([][]int32, records)
	for i := range rows {
		if i%3 == 0 {
			rows[i] = []int32{int32(i % 97), 1}
		} else {
			rows[i] = []int32{int32(i % 97)}
		}
	}
	return dataset.New("big", rows)
}

func fimiRepeat(line string, n int) string {
	return strings.Repeat(line+"\n", n)
}

// readSSEVerdicts reads SSE "data:" payloads from the monitor stream until n
// verdicts arrived or the deadline passed. It reports failures with Errorf
// (never FailNow) so it is safe to call from spawned goroutines; callers that
// index into the result must check its length first.
func readSSEVerdicts(t *testing.T, url string, n int, within time.Duration) []string {
	t.Helper()
	client := &http.Client{Timeout: within + 5*time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Errorf("GET %s: %v", url, err)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stream status = %d", resp.StatusCode)
		return nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("stream content type = %q", ct)
		return nil
	}
	deadline := time.AfterFunc(within, func() { resp.Body.Close() })
	defer deadline.Stop()
	var out []string
	sc := bufio.NewScanner(resp.Body)
	for len(out) < n && sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			out = append(out, data)
		}
	}
	if len(out) < n {
		t.Errorf("stream delivered %d verdicts within %v, want %d: %v", len(out), within, n, out)
	}
	return out
}

func TestDatasetAppendIsIncrementalOver65kRecords(t *testing.T) {
	const base = 65_536
	s, ts := newTestServer(t, Config{TenantBudget: 100})
	if _, err := s.RegisterDataset("big", "test", bigTestDataset(base)); err != nil {
		t.Fatalf("RegisterDataset: %v", err)
	}
	e, err := s.Datasets().Get("big")
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), e.ResolveAll()...)

	resp, data := postJSON(t, ts.URL+"/v1/datasets/big/append",
		DatasetAppendRequest{FIMI: fimiRepeat("7 1", 100)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status = %d, body = %s", resp.StatusCode, data)
	}
	ar := decodeInto[DatasetAppendResponse](t, data)
	if ar.AppendedRecords != 100 || ar.Records != base+100 {
		t.Errorf("append response = %+v, want 100 appended, %d total", ar, base+100)
	}

	if got, want := e.ResolveAll()[7], before[7]+100; got != want {
		t.Errorf("count[7] = %v, want %v", got, want)
	}
	if got, want := e.ResolveAll()[1], before[1]+100; got != want {
		t.Errorf("count[1] = %v, want %v", got, want)
	}
	// The pin: appending never re-materialises the count vector. One scan —
	// the registration precompute — however many deltas arrive.
	if got := e.CountScans(); got != 1 {
		t.Errorf("count_scans after append = %d, want 1 (append rescanned the dataset)", got)
	}
	_, data = getJSON(t, ts.URL+"/v1/datasets/big")
	if !strings.Contains(string(data), `"count_scans":1`) {
		t.Errorf("dataset info does not pin count_scans to 1: %s", data)
	}

	// Append validation: an unknown dataset 404s, an over-limit universe 400s.
	if resp, _ := postJSON(t, ts.URL+"/v1/datasets/nope/append", DatasetAppendRequest{FIMI: "1\n"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("append to unknown dataset: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/datasets/big/append", DatasetAppendRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty append: status %d, want 400", resp.StatusCode)
	}
}

func TestMonitorLifecycleStreamsVerdictsOverSSE(t *testing.T) {
	s, ts := newTestServer(t, Config{TenantBudget: 10})
	db := bigTestDataset(3_000)
	if _, err := s.RegisterDataset("clicks", "test", db); err != nil {
		t.Fatal(err)
	}
	item7 := db.ItemCounts()[7]

	// Register a monitor with the threshold 200 above item 7's count: the
	// registration verdict is below, the appended burst pushes it far over.
	create := MonitorCreateRequest{
		Tenant: "acme", Dataset: "clicks", Item: 7,
		Threshold: item7 + 200, Epsilon: 0.5, MaxAnswers: 1, Seed: 7,
	}
	resp, data := postJSON(t, ts.URL+"/v1/monitors", create)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("monitor create status = %d, body = %s", resp.StatusCode, data)
	}
	mon := decodeInto[MonitorCreateResponse](t, data)
	if mon.ID == "" || mon.Verdict == nil {
		t.Fatalf("create response missing id or registration verdict: %s", data)
	}
	if mon.Verdict.Above || mon.Verdict.Seq != 0 {
		t.Errorf("registration verdict = %+v, want seq-0 below", mon.Verdict)
	}

	// The whole ε was charged once, under the monitors label.
	budget := decodeInto[BudgetResponse](t, second(getJSON(t, ts.URL+"/v1/tenants/acme/budget")))
	if budget.Remaining != 9.5 {
		t.Errorf("remaining after monitor charge = %v, want 9.5", budget.Remaining)
	}

	// Subscribe first, then append: the triggering verdict must arrive over
	// the live stream (one event past the replayed seq-0 history).
	type streamResult struct{ verdicts []string }
	got := make(chan streamResult, 1)
	go func() {
		got <- streamResult{readSSEVerdicts(t, ts.URL+"/v1/monitors/"+mon.ID+"/stream", 2, 10*time.Second)}
	}()
	time.Sleep(50 * time.Millisecond) // let the subscriber attach before the append

	resp, data = postJSON(t, ts.URL+"/v1/datasets/clicks/append",
		DatasetAppendRequest{FIMI: fimiRepeat("7", 400)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status = %d, body = %s", resp.StatusCode, data)
	}
	if ar := decodeInto[DatasetAppendResponse](t, data); ar.MonitorVerdicts != 1 {
		t.Errorf("append triggered %d verdicts, want 1", ar.MonitorVerdicts)
	}

	res := <-got
	if len(res.verdicts) < 2 {
		t.Fatalf("stream delivered %d verdicts, want 2", len(res.verdicts))
	}
	if !strings.Contains(res.verdicts[1], `"above":true`) || !strings.Contains(res.verdicts[1], `"gap":`) {
		t.Errorf("triggering verdict missing above/gap: %s", res.verdicts[1])
	}

	// MaxAnswers = 1: the monitor retired on that answer; further appends
	// release nothing.
	info := decodeInto[MonitorInfo](t, second(getJSON(t, ts.URL+"/v1/monitors/"+mon.ID)))
	if !info.Retired || info.AboveCount != 1 || info.Verdicts != 2 {
		t.Errorf("monitor info after trigger = %+v, want retired with 2 verdicts, 1 above", info)
	}
	_, data = postJSON(t, ts.URL+"/v1/datasets/clicks/append", DatasetAppendRequest{FIMI: "7\n"})
	if ar := decodeInto[DatasetAppendResponse](t, data); ar.MonitorVerdicts != 0 {
		t.Errorf("retired monitor still released a verdict: %+v", ar)
	}

	// List and error paths.
	list := decodeInto[MonitorListResponse](t, second(getJSON(t, ts.URL+"/v1/monitors")))
	if len(list.Monitors) != 1 || list.Monitors[0].ID != mon.ID {
		t.Errorf("monitor list = %+v", list)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/monitors/m999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown monitor: status %d, want 404", resp.StatusCode)
	}
	bad := create
	bad.Epsilon = -1
	if resp, _ := postJSON(t, ts.URL+"/v1/monitors", bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative epsilon: status %d, want 400", resp.StatusCode)
	}
	bad = create
	bad.Dataset = "nope"
	if resp, _ := postJSON(t, ts.URL+"/v1/monitors", bad); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset: status %d, want 404", resp.StatusCode)
	}
	broke := create
	broke.Tenant, broke.Epsilon = "pauper", 100
	if resp, _ := postJSON(t, ts.URL+"/v1/monitors", broke); resp.StatusCode != http.StatusPaymentRequired {
		t.Errorf("over-budget monitor: status %d, want 402", resp.StatusCode)
	}
}

func second[A, B any](_ A, b B) B { return b }

// TestStreamingCrashRecovery is the kill-9 end-to-end: appends and monitor
// registrations journal into the WAL; after an unclean teardown the restarted
// server must rebuild byte-identical count vectors AND byte-identical monitor
// verdict histories (same seed, same event order, same noise stream).
func TestStreamingCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, ts := newPersistentServer(t, dir, 10)

	upload := DatasetUploadRequest{Name: "clicks", FIMI: fimiRepeat("0 1", 50) + fimiRepeat("2", 10)}
	if resp, data := postJSON(t, ts.URL+"/v1/datasets", upload); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, data)
	}
	create := MonitorCreateRequest{
		Tenant: "acme", Dataset: "clicks", Item: 2,
		Threshold: 30, Epsilon: 0.8, MaxAnswers: 2, Adaptive: true, Seed: 99,
	}
	resp, data := postJSON(t, ts.URL+"/v1/monitors", create)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("monitor create: %d %s", resp.StatusCode, data)
	}
	id := decodeInto[MonitorCreateResponse](t, data).ID

	// Two appends: the first leaves item 2 below, the second pushes it over.
	for _, delta := range []string{fimiRepeat("1", 5), fimiRepeat("2", 60)} {
		if resp, data := postJSON(t, ts.URL+"/v1/datasets/clicks/append", DatasetAppendRequest{FIMI: delta}); resp.StatusCode != http.StatusOK {
			t.Fatalf("append: %d %s", resp.StatusCode, data)
		}
	}

	e, err := s.Datasets().Get("clicks")
	if err != nil {
		t.Fatal(err)
	}
	wantCounts := append([]float64(nil), e.ResolveAll()...)
	wantRecords := e.Info().Records
	wantHistory := readSSEVerdicts(t, ts.URL+"/v1/monitors/"+id+"/stream", 3, 5*time.Second)
	wantBudget := decodeInto[BudgetResponse](t, second(getJSON(t, ts.URL+"/v1/tenants/acme/budget")))

	crash(t, s, ts)

	s2, ts2 := newPersistentServer(t, dir, 10)
	defer s2.Close()
	e2, err := s2.Datasets().Get("clicks")
	if err != nil {
		t.Fatalf("dataset not restored: %v", err)
	}
	if got := e2.Info().Records; got != wantRecords {
		t.Errorf("restored records = %d, want %d", got, wantRecords)
	}
	if got := e2.ResolveAll(); !reflect.DeepEqual(got, wantCounts) {
		t.Errorf("restored counts diverged from the pre-crash vector")
	}
	gotHistory := readSSEVerdicts(t, ts2.URL+"/v1/monitors/"+id+"/stream", 3, 5*time.Second)
	if !reflect.DeepEqual(gotHistory, wantHistory) {
		t.Errorf("verdict history not replayed byte-identically:\n pre-crash %v\n restored  %v", wantHistory, gotHistory)
	}
	// The monitor's ε was not re-charged by the replay.
	gotBudget := decodeInto[BudgetResponse](t, second(getJSON(t, ts2.URL+"/v1/tenants/acme/budget")))
	if gotBudget.Remaining != wantBudget.Remaining {
		t.Errorf("remaining budget after restart = %v, want %v", gotBudget.Remaining, wantBudget.Remaining)
	}

	// And the restarted server keeps serving the stream: a fresh monitor id
	// counter must not collide with the restored one.
	resp, data = postJSON(t, ts2.URL+"/v1/monitors", create)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-restart monitor create: %d %s", resp.StatusCode, data)
	}
	if newID := decodeInto[MonitorCreateResponse](t, data).ID; newID == id {
		t.Errorf("restored and new monitor share id %q", newID)
	}
}

// TestArenaRollbackUnlinksStaleFile: a rolled-back registration must not
// leave an arena image behind — a stale file under a name that was never
// durably registered would linger forever (and shadow a later registration's
// restart path until its checksum mismatch forced a rescan).
func TestArenaRollbackUnlinksStaleFile(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{TenantBudget: 10, Seed: 42, Workers: 1,
		Persist: openLog(t, dir), MmapDatasets: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)

	// Plant a stale arena image under the doomed name (e.g. from an earlier
	// incarnation whose WAL record never became durable), then kill the
	// journal so the upload rolls back.
	arenaFile := filepath.Join(dir, "arenas", "doomed.arena")
	if err := os.MkdirAll(filepath.Dir(arenaFile), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(arenaFile, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Config().Persist.Abort(); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/datasets", DatasetUploadRequest{Name: "doomed", FIMI: "0 1\n1\n"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("upload on dead journal: status %d, want 500", resp.StatusCode)
	}
	if _, err := os.Stat(arenaFile); !os.IsNotExist(err) {
		t.Fatalf("rollback left the arena file behind (stat err %v)", err)
	}

	// Re-register under a healthy journal: the name is clean and the arena
	// image belongs to the new registration, not the stale incarnation.
	ts.Close()
	s.Close()
	s2, err := New(Config{TenantBudget: 10, Seed: 42, Workers: 1,
		Persist: openLog(t, dir), MmapDatasets: true})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(s2.Close)
	if resp, data := postJSON(t, ts2.URL+"/v1/datasets", DatasetUploadRequest{Name: "doomed", FIMI: "0 1\n1\n"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("re-register after rollback: %d %s", resp.StatusCode, data)
	}
	if _, err := os.Stat(arenaFile); err != nil {
		t.Fatalf("arena not persisted for the re-registered dataset: %v", err)
	}
}

// TestTenantGaugeEviction: the per-tenant gauge cap must not be first-come-
// forever. Once a gauge's tenant is gone from the registry, the scrape
// retires its series and hands the slot to a tenant that arrived after
// saturation.
func TestTenantGaugeEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{TenantBudget: 10})
	// Saturate the gauge map with tenants the registry does not know.
	s.scrapeMu.Lock()
	for i := 0; i < maxTenantGaugeSeries; i++ {
		name := fmt.Sprintf("ghost%d", i)
		s.tenantGauges[name] = s.telemetry.FloatGauge("freegap_tenant_remaining_epsilon", telemetry.L("tenant", name))
	}
	s.scrapeMu.Unlock()

	// A real tenant charging after saturation must still earn a gauge line.
	if resp, data := spendTopK(t, ts, "latecomer", 1); resp.StatusCode != http.StatusOK {
		t.Fatalf("spend: %d %s", resp.StatusCode, data)
	}
	_, metrics := getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), `freegap_tenant_remaining_epsilon{tenant="latecomer"}`) {
		t.Error("post-saturation tenant got no gauge series (cap is first-come-forever)")
	}
	if strings.Contains(string(metrics), `tenant="ghost0"`) {
		t.Error("gauge series for an absent tenant survived the scrape")
	}
	s.scrapeMu.Lock()
	n := len(s.tenantGauges)
	s.scrapeMu.Unlock()
	if n != 1 {
		t.Errorf("tenant gauge map holds %d entries after eviction, want 1", n)
	}
}

// TestStreamingStressInterleaved drives appends, dataset-backed queries and
// monitor deliveries concurrently; run under -race it checks the RCU
// generation swap, the plan-cache flush and the verdict fanout against each
// other.
func TestStreamingStressInterleaved(t *testing.T) {
	s, ts := newTestServer(t, Config{TenantBudget: 1e9, Workers: 4})
	if _, err := s.RegisterDataset("hot", "test", bigTestDataset(4_096)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		create := MonitorCreateRequest{
			Tenant: "acme", Dataset: "hot", Item: int32(i),
			Threshold: 1e7, Epsilon: 0.5, MaxAnswers: 4, Seed: uint64(i + 1),
		}
		if resp, data := postJSON(t, ts.URL+"/v1/monitors", create); resp.StatusCode != http.StatusCreated {
			t.Fatalf("monitor %d: %d %s", i, resp.StatusCode, data)
		}
	}

	const iters = 60
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, data := postJSON(t, ts.URL+"/v1/datasets/hot/append",
					DatasetAppendRequest{FIMI: fimiRepeat(fmt.Sprintf("%d", (w*31+i)%97), 3)})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("append: %d %s", resp.StatusCode, data)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				body := TopKRequest{Common: Common{Tenant: "acme", Epsilon: 0.01, Monotonic: true,
					Dataset: "hot", Queries: &QuerySpec{Kind: "all_items"}}, K: 3}
				resp, data := postJSON(t, ts.URL+"/v1/topk", body)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query: %d %s", resp.StatusCode, data)
					return
				}
			}
		}(w)
	}
	for m := 1; m <= 2; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			// Each reader holds a live SSE subscription while appends fan out.
			readSSEVerdicts(t, fmt.Sprintf("%s/v1/monitors/m%d/stream", ts.URL, m), 3, 20*time.Second)
		}(m)
	}
	wg.Wait()

	e, err := s.Datasets().Get("hot")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.Info().Records, 4_096+2*iters*3; got != want {
		t.Errorf("records after stress = %d, want %d", got, want)
	}
	if got := e.CountScans(); got != 1 {
		t.Errorf("count_scans after stress = %d, want 1", got)
	}
}
