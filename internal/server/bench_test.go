package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// Server hot-path benchmarks: requests are driven straight through the
// handler (no TCP) so the numbers isolate decode → validate → charge →
// mechanism → encode. Tenants get an effectively unlimited budget so the
// accountant never rejects.

const benchBudget = 1e18

func benchAnswers(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64((i*2654435761)%10000) / 3
	}
	return out
}

func mustServer(b *testing.B, cfg Config) *Server {
	b.Helper()
	s, err := New(cfg)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	b.Cleanup(s.Close)
	return s
}

func BenchmarkServerTopK(b *testing.B) {
	s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1, Workers: 1})
	body, err := json.Marshal(TopKRequest{
		Tenant: "bench", K: 10, Epsilon: 0.1, Answers: benchAnswers(1024), Monotonic: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/topk", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
		}
	}
}

func BenchmarkServerSVTParallel(b *testing.B) {
	s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1})
	body, err := json.Marshal(SVTRequest{
		Tenant: "bench", K: 5, Epsilon: 0.1, Threshold: 1500,
		Answers: benchAnswers(1024), Monotonic: true, Adaptive: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/v1/svt", bytes.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
			}
		}
	})
}

func BenchmarkServerMax(b *testing.B) {
	s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1, Workers: 1})
	body, err := json.Marshal(MaxRequest{
		Tenant: "bench", Epsilon: 0.1, Answers: benchAnswers(1024), Monotonic: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/max", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
		}
	}
}
