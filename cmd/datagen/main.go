// Command datagen emits synthetic transaction datasets in the FIMI text format
// (one transaction per line, space-separated item identifiers).
//
// The three generators mirror the datasets of the paper's Section 7.1: Zipf
// stand-ins calibrated to the published BMS-POS and Kosarak statistics, and a
// from-scratch IBM Quest generator for T40I10D100K (see DESIGN.md §5).
//
// Usage:
//
//	datagen -dataset bmspos -scale 100 -out bmspos.dat
//	datagen -dataset quest -scale 1 -seed 7 -out t40.dat
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/freegap/freegap/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		name  = fs.String("dataset", "bmspos", "dataset to generate: bmspos, kosarak, or quest")
		scale = fs.Int("scale", 1, "scale-down factor for the record count (1 = published size)")
		seed  = fs.Uint64("seed", 1, "generator seed")
		out   = fs.String("out", "", "output file (default: stdout)")
		stats = fs.Bool("stats", false, "print dataset statistics to stderr after generating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale < 1 {
		return fmt.Errorf("scale must be at least 1, got %d", *scale)
	}

	var db *dataset.Transactions
	switch *name {
	case "bmspos":
		db = dataset.BMSPOSConfig().ScaledDown(*scale).Generate(*seed)
	case "kosarak":
		db = dataset.KosarakConfig().ScaledDown(*scale).Generate(*seed)
	case "quest":
		db = dataset.T40I10D100KConfig().ScaledDown(*scale).Generate(*seed)
	default:
		return fmt.Errorf("unknown dataset %q (valid: bmspos, kosarak, quest)", *name)
	}

	if *stats {
		fmt.Fprintln(os.Stderr, db.Stats())
	}
	if *out == "" {
		return dataset.WriteFIMI(os.Stdout, db)
	}
	return dataset.WriteFIMIFile(*out, db)
}
