package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// FIMILimits bounds what the FIMI parser accepts, protecting callers that
// parse untrusted input: without a MaxItemID cap, the single line
// "2000000000" would give the parsed database a two-billion-item universe
// whose count vector costs gigabytes to materialise. Fields that are zero or
// negative mean unlimited.
type FIMILimits struct {
	// MaxRecords bounds the number of transactions.
	MaxRecords int
	// MaxItemID bounds the largest acceptable item identifier.
	MaxItemID int32
}

// ReadFIMI parses a transaction database in the FIMI workshop text format:
// one transaction per line, item identifiers separated by single spaces.
// Blank lines are skipped. This is the format the original BMS-POS, Kosarak
// and T40I10D100K files are distributed in, so real data can be substituted
// for the synthetic stand-ins without code changes.
func ReadFIMI(r io.Reader, name string) (*Transactions, error) {
	return ReadFIMILimited(r, name, FIMILimits{})
}

// ReadFIMILimited is ReadFIMI with input limits enforced during the parse,
// for callers reading untrusted data (the dpserver upload endpoint).
func ReadFIMILimited(r io.Reader, name string, lim FIMILimits) (*Transactions, error) {
	scanner := bufio.NewScanner(r)
	// Start small and let the scanner grow toward the 16 MiB line cap on
	// demand: this parser also sits on the append hot path, where the typical
	// input is a few-line delta and a fixed megabyte-sized buffer per parse
	// would dominate the allocation profile.
	scanner.Buffer(make([]byte, 16*1024), 16*1024*1024)
	var records [][]int32
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" {
			continue
		}
		if lim.MaxRecords > 0 && len(records) >= lim.MaxRecords {
			return nil, fmt.Errorf("dataset: line %d: more than %d records", line, lim.MaxRecords)
		}
		fields := strings.Fields(text)
		record := make([]int32, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: invalid item %q: %w", line, f, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("dataset: line %d: negative item id %d", line, v)
			}
			// Item ids are int32 throughout; without this check an id above
			// MaxInt32 would silently overflow negative in the conversion
			// below and panic the Transactions constructor (found by
			// FuzzReadFIMI).
			if v > math.MaxInt32 {
				return nil, fmt.Errorf("dataset: line %d: item id %d exceeds the int32 range", line, v)
			}
			if lim.MaxItemID > 0 && v > int(lim.MaxItemID) {
				return nil, fmt.Errorf("dataset: line %d: item id %d exceeds the limit of %d", line, v, lim.MaxItemID)
			}
			record = append(record, int32(v))
		}
		records = append(records, record)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading FIMI input: %w", err)
	}
	return New(name, records), nil
}

// ReadFIMIFile opens path and parses it with ReadFIMI, naming the dataset
// after the file.
func ReadFIMIFile(path string) (*Transactions, error) {
	return ReadFIMIFileLimited(path, FIMILimits{})
}

// ReadFIMIFileLimited is ReadFIMIFile with input limits enforced during the
// parse.
func ReadFIMIFileLimited(path string, lim FIMILimits) (*Transactions, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadFIMILimited(f, path, lim)
}

// WriteFIMI writes the database in the FIMI text format.
func WriteFIMI(w io.Writer, t *Transactions) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < t.NumRecords(); i++ {
		record := t.Record(i)
		for j, item := range record {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return fmt.Errorf("dataset: writing FIMI output: %w", err)
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(item))); err != nil {
				return fmt.Errorf("dataset: writing FIMI output: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("dataset: writing FIMI output: %w", err)
		}
	}
	return bw.Flush()
}

// WriteFIMIFile writes the database to path in the FIMI text format.
func WriteFIMIFile(path string, t *Transactions) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := WriteFIMI(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
