package engine

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/freegap/freegap/internal/rng"
)

// FuzzDecodeRequest drives every registered mechanism's request decoding and
// validation with arbitrary bytes — the exact strict-JSON path the serving
// layer runs on attacker-chosen request bodies — and executes whatever
// survives validation. Nothing in the chain may panic: decode rejects or
// fills the concrete request type, Validate must fence everything Execute
// cannot handle, and a validated inline request must execute cleanly.
func FuzzDecodeRequest(f *testing.F) {
	for _, seed := range []string{
		``,
		`{}`,
		`null`,
		`42`,
		`{"tenant":"acme","epsilon":1,"answers":[9,8,7,6],"k":2}`,
		`{"tenant":"acme","epsilon":1,"answers":[9,8],"monotonic":true}`,
		`{"tenant":"acme","epsilon":0.5,"answers":[9,8,7],"k":1,"threshold":5,"adaptive":true}`,
		`{"tenant":"acme","epsilon":1,"k":2,"dataset":"sales","queries":{"kind":"all_items"}}`,
		`{"tenant":"acme","epsilon":1e309,"answers":[1,2],"k":1}`,
		`{"tenant":"acme","epsilon":-1,"answers":[1,2],"k":1}`,
		`{"tenant":"acme","epsilon":1,"answers":[1,"x"],"k":1}`,
		`{"tenant":"acme","epsilon":1,"answers":[],"k":0}`,
		`{"tenant":"acme","epsilon":1,"answers":[9e999,-9e999],"k":1}`,
		`{"tenant":"a","epsilon":1,"answers":[3,2,1],"k":1,"fractions":[0.5,0.5]}`,
		`{"unknown_field":true}`,
		`{"tenant":"acme","epsilon":1,"answers":[9,8,7,6],"k":2}{"trailing":1}`,
		`{"tenant":"a","epsilon":1,"k":1,"dataset":"d","queries":{"kind":"filter","where":{"contains":[1,2],"min_len":2}}}`,
		`{"tenant":"a","epsilon":1,"k":1,"dataset":"d","queries":{"kind":"threshold","min_count":2,"of":[{"kind":"all_items"}]}}`,
		`{"tenant":"a","epsilon":1,"k":1,"dataset":"d","queries":{"kind":"union","of":[{"kind":"item_count","items":[1]},{"kind":"filter","where":{"contains":[2]}}]}}`,
		`{"tenant":"a","epsilon":1,"k":1,"dataset":"d","queries":{"kind":"minus","of":[{"kind":"all_items"},{"kind":"item_count","items":[3]}]}}`,
		`{"tenant":"a","epsilon":1,"k":1,"dataset":"d","queries":{"kind":"join","dataset":"e","of":[{"kind":"all_items"}],"on":{"kind":"item_count","items":[1]}}}`,
		`{"queries":{"of":[null,{"kind":"a"}],"of":[{"items":[7]}],"where":null,"on":{"kind":"b"}}}`,
		`{"queries":{"kind":"intersect","of":[{"kind":"union","of":[{"kind":"all_items"},{"kind":"filter","where":{"max_len":4}}]},{"kind":"all_items"}]}}`,
	} {
		f.Add([]byte(seed))
	}

	reg := DefaultRegistry()
	mechs := reg.Mechanisms()
	lim := Limits{MaxAnswers: 256}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, m := range mechs {
			req := m.NewRequest()
			dec := json.NewDecoder(bytes.NewReader(data))
			dec.DisallowUnknownFields()
			if err := dec.Decode(req); err != nil || dec.More() {
				if creq, ok, cerr := DecodeRequest(m, data, nil); ok && cerr == nil {
					t.Fatalf("%s: codec accepted %q (%#v), the stdlib strict decoder rejects it", m.Name(), data, creq)
				}
				continue
			}
			// The stdlib decoder accepted: the hand-rolled codec must accept
			// too and produce the identical request value.
			creq, ok, cerr := DecodeRequest(m, data, nil)
			if !ok {
				t.Fatalf("%s: built-in mechanism has no codec", m.Name())
			}
			if cerr != nil {
				t.Fatalf("%s: codec rejected %q the stdlib strict decoder accepts: %v", m.Name(), data, cerr)
			}
			if !reflect.DeepEqual(creq, req) {
				t.Fatalf("%s: codec decoded %q to %#v, stdlib to %#v", m.Name(), data, creq, req)
			}
			if err := m.Validate(req, lim); err != nil {
				continue
			}
			base := req.Base()
			if base.Dataset != "" || base.Queries != nil {
				// Dataset-backed requests need a resolver; the serving layer
				// resolves before validation. Execution is exercised on the
				// inline-answer shape only.
				continue
			}
			cost := m.Cost(req)
			if !(cost > 0) {
				t.Fatalf("%s: validated request has non-positive cost %v", m.Name(), cost)
			}
			if _, err := m.Execute(rng.NewXoshiro(1), req, nil); err != nil {
				t.Fatalf("%s: validated request failed to execute: %v", m.Name(), err)
			}
		}
	})
}
