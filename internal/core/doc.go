// Package core implements the paper's two contributions:
//
//   - Noisy-Max-with-Gap and Noisy-Top-K-with-Gap (Algorithm 1, Section 5):
//     the classical Noisy Max / Top-K selection mechanism extended to also
//     release, at no additional privacy cost, the noisy gap between each
//     selected query and the next-best query.
//
//   - Sparse-Vector-with-Gap (Wang et al., recovered as the σ → ∞ special
//     case) and Adaptive-Sparse-Vector-with-Gap (Algorithm 2, Section 6): the
//     Sparse Vector Technique extended to release the noisy gap above the
//     threshold for every positive answer and, in the adaptive variant, to
//     charge less privacy budget for queries that clear the threshold by a
//     wide margin, so more above-threshold queries fit in the same budget.
//
// The privacy arguments in the paper (Theorems 2 and 4, proved via the
// randomness-alignment framework of Section 4) fix the exact noise scales used
// here; the doc comment of every exported mechanism states them. The
// mechanisms report only what the proofs allow: selected indices, gaps, and
// per-answer budget charges. Raw noisy query values and the noisy threshold
// stay private.
package core
