package plan

import (
	"testing"

	"github.com/freegap/freegap/internal/engine"
	"github.com/freegap/freegap/internal/store"
)

// filterAll matches every record of the uniform dataset (item 0 occurs in
// all of them), so the scan's surviving-record count is the whole dataset.
func filterAll() *engine.QuerySpec {
	return &engine.QuerySpec{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{Contains: items(0)}}
}

func TestParallelScanFansOut(t *testing.T) {
	w := newTestWorld(t)
	e := w.entry(t, "uniform")
	res, err := Resolve(w.store, e, filterAll(), Options{NoCache: true, Workers: 4, MinParallelRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	// The uniform dataset spans 3 zone blocks; with the threshold disabled
	// and no competing scan holding tokens, the fan-out must be at least 2
	// (it may stop short of 4 — the token budget is sized to GOMAXPROCS).
	if res.Stats.ParallelWorkers < 2 {
		t.Errorf("ParallelWorkers = %d, want >= 2", res.Stats.ParallelWorkers)
	}
	if res.Stats.RecordsScanned != w.raw["uniform"].NumRecords() {
		t.Errorf("scanned %d records, want all %d", res.Stats.RecordsScanned, w.raw["uniform"].NumRecords())
	}
	if res.Explain == nil || res.Explain.ParallelWorkers != res.Stats.ParallelWorkers {
		t.Errorf("explain parallel_workers = %+v, want %d", res.Explain, res.Stats.ParallelWorkers)
	}
}

func TestParallelScanThreshold(t *testing.T) {
	w := newTestWorld(t)
	e := w.entry(t, "uniform")

	// The uniform dataset (2 blocks + 100 records) is below the default
	// 4-block threshold: even with workers offered, the scan stays serial.
	if 2*store.DefaultZoneBlock+100 >= DefaultMinParallelRecords {
		t.Fatal("test premise broken: uniform dataset no longer below the default threshold")
	}
	res, err := Resolve(w.store, e, filterAll(), Options{NoCache: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ParallelWorkers != 1 {
		t.Errorf("below-threshold scan: ParallelWorkers = %d, want 1", res.Stats.ParallelWorkers)
	}

	// A positive threshold the dataset clears lets the same scan fan out.
	res, err = Resolve(w.store, e, filterAll(), Options{NoCache: true, Workers: 4, MinParallelRecords: store.DefaultZoneBlock})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ParallelWorkers < 2 {
		t.Errorf("above-threshold scan: ParallelWorkers = %d, want >= 2", res.Stats.ParallelWorkers)
	}

	// Workers: 1 forces serial no matter the size.
	res, err = Resolve(w.store, e, filterAll(), Options{NoCache: true, Workers: 1, MinParallelRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ParallelWorkers != 1 {
		t.Errorf("Workers=1 scan: ParallelWorkers = %d, want 1", res.Stats.ParallelWorkers)
	}
}

func TestParallelScanTokenExhaustionFallsBackSerial(t *testing.T) {
	w := newTestWorld(t)
	e := w.entry(t, "uniform")

	// Fill the process-wide token budget so the scan cannot claim a single
	// extra goroutine: it must fall back to the serial path, not queue.
	claimed := 0
fill:
	for {
		select {
		case scanTokens <- struct{}{}:
			claimed++
		default:
			break fill
		}
	}
	defer func() {
		for ; claimed > 0; claimed-- {
			<-scanTokens
		}
	}()

	res, err := Resolve(w.store, e, filterAll(), Options{NoCache: true, Workers: 4, MinParallelRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ParallelWorkers != 1 {
		t.Errorf("token-starved scan: ParallelWorkers = %d, want 1 (serial fallback)", res.Stats.ParallelWorkers)
	}
	if res.Stats.RecordsScanned != w.raw["uniform"].NumRecords() {
		t.Errorf("scanned %d records, want all %d", res.Stats.RecordsScanned, w.raw["uniform"].NumRecords())
	}
}
