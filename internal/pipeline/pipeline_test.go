package pipeline

import (
	"errors"
	"math"
	"testing"

	"github.com/freegap/freegap/internal/accountant"
	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/rng"
)

func wellSeparatedCounts() []float64 {
	counts := make([]float64, 60)
	for i := range counts {
		counts[i] = float64(3000 - 40*i)
	}
	return counts
}

func TestRunTopKBasic(t *testing.T) {
	src := rng.NewXoshiro(1)
	counts := wellSeparatedCounts()
	acct := accountant.MustNew(2)
	res, err := RunTopK(src, counts, TopKConfig{K: 5, Epsilon: 2, Monotonic: true}, acct)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 5 {
		t.Fatalf("estimates %d, want 5", len(res.Estimates))
	}
	if math.Abs(acct.Spent()-2) > 1e-9 {
		t.Fatalf("accountant charged %v, want 2", acct.Spent())
	}
	if res.TheoreticalErrorRatio <= 0 || res.TheoreticalErrorRatio >= 1 {
		t.Fatalf("theoretical ratio %v out of (0,1)", res.TheoreticalErrorRatio)
	}
	for _, e := range res.Estimates {
		if e.Index < 0 || e.Index >= len(counts) {
			t.Fatalf("index %d out of range", e.Index)
		}
		if e.Gap <= 0 {
			t.Fatalf("gap %v not positive", e.Gap)
		}
		// With eps=2 on well-separated counts both estimates should land near
		// the truth.
		if math.Abs(e.Refined-counts[e.Index]) > 200 {
			t.Fatalf("refined estimate %v far from truth %v", e.Refined, counts[e.Index])
		}
	}
}

func TestRunTopKRefinedBeatsMeasuredOnAverage(t *testing.T) {
	counts := wellSeparatedCounts()
	src := rng.NewXoshiro(3)
	const trials = 400
	var measSE, refinedSE float64
	for trial := 0; trial < trials; trial++ {
		res, err := RunTopK(src, counts, TopKConfig{K: 8, Epsilon: 1.5, Monotonic: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range res.Estimates {
			truth := counts[e.Index]
			measSE += (e.Measured - truth) * (e.Measured - truth)
			refinedSE += (e.Refined - truth) * (e.Refined - truth)
		}
	}
	if refinedSE >= measSE {
		t.Fatalf("refined SE %v not below measured SE %v", refinedSE, measSE)
	}
	ratio := refinedSE / measSE
	want := 0.5625 // Corollary 1 at k=8, lambda=1
	if math.Abs(ratio-want) > 0.08 {
		t.Fatalf("empirical error ratio %v, Corollary 1 predicts %v", ratio, want)
	}
}

func TestRunTopKBudgetErrors(t *testing.T) {
	src := rng.NewXoshiro(1)
	counts := wellSeparatedCounts()
	acct := accountant.MustNew(0.5)
	_, err := RunTopK(src, counts, TopKConfig{K: 3, Epsilon: 1, Monotonic: true}, acct)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	if acct.Spent() != 0 {
		t.Fatal("failed pipeline charged the accountant")
	}
	if _, err := RunTopK(src, counts, TopKConfig{K: 3, Epsilon: 0}, nil); err == nil {
		t.Fatal("zero epsilon accepted")
	}
	if _, err := RunTopK(src, counts, TopKConfig{K: 0, Epsilon: 1}, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestRunTopKSelectFractionDefaultAndOverride(t *testing.T) {
	cfg := TopKConfig{K: 2, Epsilon: 1}.withDefaults()
	if cfg.SelectFraction != 0.5 {
		t.Fatalf("default select fraction %v", cfg.SelectFraction)
	}
	cfg = TopKConfig{K: 2, Epsilon: 1, SelectFraction: 0.25}.withDefaults()
	if cfg.SelectFraction != 0.25 {
		t.Fatal("explicit fraction overridden")
	}
	cfg = TopKConfig{K: 2, Epsilon: 1, SelectFraction: 1.5}.withDefaults()
	if cfg.SelectFraction != 0.5 {
		t.Fatal("out-of-range fraction not reset")
	}
}

func TestRunSVTBasic(t *testing.T) {
	src := rng.NewXoshiro(5)
	counts := wellSeparatedCounts()
	threshold := 2000.0
	acct := accountant.MustNew(3)
	res, err := RunSVT(src, counts, SVTConfig{
		K: 5, Epsilon: 3, Threshold: threshold, Adaptive: true, Monotonic: true,
	}, acct)
	if err != nil {
		t.Fatal(err)
	}
	if res.AboveCount == 0 {
		t.Fatal("no above-threshold answers on a workload with 26 queries above the threshold")
	}
	if len(res.Estimates) != res.AboveCount {
		t.Fatalf("estimates %d != above count %d", len(res.Estimates), res.AboveCount)
	}
	if acct.Spent() > 3+1e-9 {
		t.Fatalf("accountant charged %v > 3", acct.Spent())
	}
	for _, e := range res.Estimates {
		truth := counts[e.Index]
		if truth < threshold-400 {
			t.Fatalf("query %d (count %v) reported above threshold %v", e.Index, truth, threshold)
		}
		if e.CombinedVariance <= 0 {
			t.Fatalf("non-positive combined variance %v", e.CombinedVariance)
		}
		if e.LowerBound >= e.GapEstimate {
			t.Fatalf("lower bound %v not below the gap estimate %v", e.LowerBound, e.GapEstimate)
		}
		if e.Branch == core.BranchBelow {
			t.Fatal("below-branch item surfaced as an estimate")
		}
	}
}

func TestRunSVTCombinedBeatsMeasurement(t *testing.T) {
	counts := wellSeparatedCounts()
	const threshold = 2000.0
	src := rng.NewXoshiro(9)
	const trials = 400
	var measSE, combSE float64
	var n int
	for trial := 0; trial < trials; trial++ {
		res, err := RunSVT(src, counts, SVTConfig{
			K: 6, Epsilon: 1.4, Threshold: threshold, Adaptive: false, Monotonic: true,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range res.Estimates {
			truth := counts[e.Index]
			measSE += (e.Measured - truth) * (e.Measured - truth)
			combSE += (e.Combined - truth) * (e.Combined - truth)
			n++
		}
	}
	if n == 0 {
		t.Fatal("no estimates produced")
	}
	if combSE >= measSE {
		t.Fatalf("combined SE %v not below measurement-only SE %v", combSE, measSE)
	}
}

func TestRunSVTAdaptiveLeavesBudget(t *testing.T) {
	counts := wellSeparatedCounts()
	src := rng.NewXoshiro(11)
	res, err := RunSVT(src, counts, SVTConfig{
		K: 5, Epsilon: 2, Threshold: 400, Adaptive: true, Monotonic: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every count is far above 400, so the adaptive stage answers from the
	// cheap branch and keeps part of its allocation.
	if res.SelectionRemaining <= 0 {
		t.Fatalf("adaptive selection left no budget (remaining %v)", res.SelectionRemaining)
	}
}

func TestRunSVTNoAboveThreshold(t *testing.T) {
	counts := []float64{1, 2, 3, 4, 5}
	src := rng.NewXoshiro(13)
	res, err := RunSVT(src, counts, SVTConfig{K: 2, Epsilon: 5, Threshold: 1e6, Monotonic: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.AboveCount != 0 || len(res.Estimates) != 0 {
		t.Fatalf("expected empty result, got %+v", res)
	}
}

func TestRunSVTValidation(t *testing.T) {
	src := rng.NewXoshiro(1)
	counts := wellSeparatedCounts()
	if _, err := RunSVT(src, counts, SVTConfig{K: 2, Epsilon: 0, Threshold: 1}, nil); err == nil {
		t.Fatal("zero epsilon accepted")
	}
	if _, err := RunSVT(src, counts, SVTConfig{K: 0, Epsilon: 1, Threshold: 1}, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
	acct := accountant.MustNew(0.1)
	if _, err := RunSVT(src, counts, SVTConfig{K: 2, Epsilon: 1, Threshold: 1}, acct); !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	cfg := SVTConfig{K: 1, Epsilon: 1, Confidence: 2}.withDefaults()
	if cfg.Confidence != 0.95 {
		t.Fatal("invalid confidence not reset")
	}
}
