package server

// Concurrency-invariant stress tests for the sharded, lock-split serving
// path. The accountant admits charges through a lock-free CAS and commits
// the audit log and journal behind a secondary lock; the registry spreads
// tenants over hash-picked shards; the WAL observes admitted charges through
// the journal hook. These tests hammer Spend/SpendBatch/Restore from many
// goroutines (run them with -race) and then check the linearization-style
// invariants the refactor must preserve:
//
//   - Σ admitted charges == spent, per tenant (no lost or double-counted ε)
//   - spent ≤ budget + tolerance, per tenant (no overspend, however many
//     spenders race one budget)
//   - the journalled history holds exactly the admitted charges — none lost,
//     none duplicated — the AWDIT-style "the recorded history must be
//     explainable by the admitted operations" check, run over the real WAL.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/freegap/freegap/internal/accountant"
	"github.com/freegap/freegap/internal/persist"
)

// TestRegistryConcurrentSpendInvariants races single spends, batch spends
// and tenant restores across every registry shard and verifies the budget
// invariants tenant by tenant.
func TestRegistryConcurrentSpendInvariants(t *testing.T) {
	const (
		tenants    = 32
		goroutines = 8
		rounds     = 200
		budget     = 1.0
		eps        = 0.004 // small enough that some tenants exhaust mid-run
	)
	reg, err := NewRegistry(budget, 0)
	if err != nil {
		t.Fatal(err)
	}

	// admittedEps[t] accumulates the ε this test observed being admitted
	// for tenant t (the client-side view of the history).
	var admittedEps [tenants]struct {
		mu  sync.Mutex
		sum float64
		n   int
	}
	record := func(ti int, total float64, n int) {
		a := &admittedEps[ti]
		a.mu.Lock()
		a.sum += total
		a.n += n
		a.mu.Unlock()
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ti := (g*rounds + r) % tenants
				tenant := fmt.Sprintf("stress-%02d", ti)
				if r%3 == 0 {
					// Batch of two, all-or-nothing.
					charges := []accountant.Charge{
						{Label: "topk", Epsilon: eps},
						{Label: "svt", Epsilon: eps},
					}
					if _, err := reg.ChargeBatch(tenant, charges); err == nil {
						record(ti, 2*eps, 2)
					}
				} else {
					if _, err := reg.Charge(tenant, "max", eps); err == nil {
						record(ti, eps, 1)
					}
				}
			}
		}(g)
	}
	// Restores race the spends: every restored tenant is a fresh name (the
	// registry forbids restoring an existing one), so restores exercise the
	// shard write paths while the spenders hammer the read paths.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			name := fmt.Sprintf("restored-%02d", i)
			charges := []accountant.Charge{{Label: "restored", Epsilon: 0.25}}
			if err := reg.RestoreTenant(name, charges, 3); err != nil {
				t.Errorf("RestoreTenant(%s): %v", name, err)
			}
		}
	}()
	wg.Wait()

	const tol = 1e-9
	for ti := 0; ti < tenants; ti++ {
		tenant := fmt.Sprintf("stress-%02d", ti)
		acct, ok := reg.Lookup(tenant)
		if !ok {
			t.Fatalf("tenant %s never provisioned", tenant)
		}
		a := &admittedEps[ti]
		if got := acct.Spent(); math.Abs(got-a.sum) > tol {
			t.Errorf("%s: spent = %v, Σ admitted = %v", tenant, got, a.sum)
		}
		if got := acct.Spent(); got > budget+tol {
			t.Errorf("%s: spent %v exceeds budget %v", tenant, got, budget)
		}
		if got := acct.ChargeCount(); got != a.n {
			t.Errorf("%s: ChargeCount = %d, admitted %d charges", tenant, got, a.n)
		}
		// The incremental aggregation agrees with the raw log.
		var bySum float64
		for _, v := range acct.SpentByLabel() {
			bySum += v
		}
		if math.Abs(bySum-a.sum) > tol {
			t.Errorf("%s: Σ SpentByLabel = %v, Σ admitted = %v", tenant, bySum, a.sum)
		}
	}
	for i := 0; i < 50; i++ {
		acct, ok := reg.Lookup(fmt.Sprintf("restored-%02d", i))
		if !ok {
			t.Fatalf("restored-%02d missing", i)
		}
		if got := acct.Spent(); math.Abs(got-0.25) > tol {
			t.Errorf("restored-%02d: spent = %v, want 0.25", i, got)
		}
		if got := acct.ChargeCount(); got != 3 {
			t.Errorf("restored-%02d: ChargeCount = %d, want 3", i, got)
		}
	}
	if got, want := reg.Len(), tenants+50; got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
}

// TestWALHistoryMatchesAdmittedCharges is the AWDIT-style history check: a
// real WAL journals a storm of racing charges, and afterwards the durable
// state must hold exactly the admitted history — same per-tenant totals,
// same per-label breakdown, same charge counts; nothing lost to the split
// between CAS admission and locked commit, nothing journalled twice.
func TestWALHistoryMatchesAdmittedCharges(t *testing.T) {
	const (
		tenants    = 8
		goroutines = 8
		rounds     = 150
		budget     = 1e9 // effectively unlimited: every charge is admitted
	)
	lg, err := persist.Open(t.TempDir(), persist.Options{Fsync: persist.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry(budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg.SetJournal(lg)

	type labelKey struct {
		tenant, label string
	}
	var mu sync.Mutex
	admitted := make(map[labelKey]struct {
		sum float64
		n   int
	})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tenant := fmt.Sprintf("t-%d", (g+r)%tenants)
				label := []string{"topk", "max", "svt"}[r%3]
				eps := 0.001 * float64(1+r%5)
				var charges []accountant.Charge
				if r%4 == 0 {
					charges = []accountant.Charge{
						{Label: label, Epsilon: eps},
						{Label: "batch-extra", Epsilon: eps / 2},
					}
				} else {
					charges = []accountant.Charge{{Label: label, Epsilon: eps}}
				}
				if _, err := reg.ChargeBatch(tenant, charges); err != nil {
					t.Errorf("ChargeBatch: %v", err)
					return
				}
				mu.Lock()
				for _, c := range charges {
					k := labelKey{tenant, c.Label}
					a := admitted[k]
					a.sum += c.Epsilon
					a.n++
					admitted[k] = a
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if err := lg.Close(); err != nil {
		t.Fatalf("closing WAL: %v", err)
	}

	// Reopen the log and compare the recovered history against what was
	// actually admitted.
	lg2, err := persist.Open(lg.Dir(), persist.Options{Fsync: persist.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	state := lg2.State()

	const tol = 1e-9
	wantByTenant := make(map[string]struct {
		sum float64
		n   int
	})
	for k, a := range admitted {
		w := wantByTenant[k.tenant]
		w.sum += a.sum
		w.n += a.n
		wantByTenant[k.tenant] = w
	}
	if got, want := len(state.Tenants), len(wantByTenant); got != want {
		t.Fatalf("WAL holds %d tenants, want %d", got, want)
	}
	for tenant, want := range wantByTenant {
		ts, ok := state.Tenants[tenant]
		if !ok {
			t.Errorf("tenant %s missing from WAL", tenant)
			continue
		}
		var gotSum float64
		gotByLabel := make(map[string]float64)
		for _, c := range ts.Charges {
			gotSum += c.Epsilon
			gotByLabel[c.Label] += c.Epsilon
		}
		if math.Abs(gotSum-want.sum) > tol {
			t.Errorf("%s: WAL total %v, admitted %v", tenant, gotSum, want.sum)
		}
		if ts.ChargeCount != want.n {
			t.Errorf("%s: WAL charge count %d, admitted %d", tenant, ts.ChargeCount, want.n)
		}
		for k, a := range admitted {
			if k.tenant != tenant {
				continue
			}
			if got := gotByLabel[k.label]; math.Abs(got-a.sum) > tol {
				t.Errorf("%s/%s: WAL %v, admitted %v", tenant, k.label, got, a.sum)
			}
		}
	}
	// The live registry agrees with the durable history, closing the loop:
	// admitted == in-memory == journalled.
	for tenant, want := range wantByTenant {
		acct, ok := reg.Lookup(tenant)
		if !ok {
			t.Fatalf("tenant %s missing from registry", tenant)
		}
		if got := acct.Spent(); math.Abs(got-want.sum) > tol {
			t.Errorf("%s: registry spent %v, admitted %v", tenant, got, want.sum)
		}
	}
}

// TestAccountantCASNeverOverspends pins the admission rule at the accountant
// level: many goroutines race one tight budget with charges that do not
// divide it evenly, and the admitted total must land within tolerance of
// (and never above) the budget.
func TestAccountantCASNeverOverspends(t *testing.T) {
	const (
		budget     = 1.0
		eps        = 0.03
		goroutines = 16
		attempts   = 100
	)
	a := accountant.MustNew(budget)
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				if err := a.Spend("stress", eps); err == nil {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	const tol = 1e-9
	wantSpent := float64(admitted.Load()) * eps
	if got := a.Spent(); math.Abs(got-wantSpent) > tol {
		t.Errorf("spent = %v, %d admitted × %v = %v", got, admitted.Load(), eps, wantSpent)
	}
	if got := a.Spent(); got > budget+tol {
		t.Errorf("spent %v exceeds budget %v", got, budget)
	}
	// Every admission that would still have fit must have been granted: the
	// remaining budget is smaller than one more charge.
	if rem := a.Remaining(); rem >= eps {
		t.Errorf("remaining %v still fits a charge of %v — admissions lost", rem, eps)
	}
	if got, want := a.ChargeCount(), int(admitted.Load()); got != want {
		t.Errorf("ChargeCount = %d, want %d", got, want)
	}
}
