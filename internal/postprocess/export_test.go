package postprocess

// BlueMatrixForTest exposes the explicit-matrix evaluation of Theorem 3 to the
// test suite as a differential oracle for the linear-time BLUE implementation.
var BlueMatrixForTest = blueMatrix
