// Threshold monitor: the Section 6 workflow. A stream of item-count queries is
// screened against a public threshold with Adaptive-Sparse-Vector-with-Gap.
// Queries that clear the threshold by a wide margin are answered from the
// cheap top branch, so the mechanism answers more queries than the classical
// Sparse Vector Technique would — and each positive answer carries a free gap
// estimate with a Lemma 5 lower confidence bound.
//
// The second act runs the same workflow served: an in-process dpserver hosts
// the dataset, a registered monitor charges its ε once, and each append to
// the dataset streams the next threshold verdict (with its free gap) over
// Server-Sent Events.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	freegap "github.com/freegap/freegap"
)

func main() {
	const (
		k     = 10  // provision the budget for at least 10 positive answers
		eps   = 0.7 // the paper's budget
		scale = 50
	)

	db := freegap.NewSyntheticKosarak(11, scale)
	counts := db.ItemCounts()
	src := freegap.NewSource(33)
	threshold := freegap.RandomThreshold(src, counts, k)
	fmt.Printf("dataset: %d transactions, %d items; threshold %.0f; eps = %.2g\n\n",
		db.NumRecords(), db.NumItems(), threshold, eps)

	// Classical SVT baseline: stops after exactly k positive answers and
	// spends the whole budget.
	classic, err := freegap.NewSparseVector(k, eps, threshold, freegap.ThetaLyu(k, true), true)
	if err != nil {
		log.Fatal(err)
	}
	classicRes, err := classic.Run(src, counts)
	if err != nil {
		log.Fatal(err)
	}

	// Adaptive-Sparse-Vector-with-Gap: same budget, same threshold.
	adaptive, err := freegap.NewAdaptiveSVTWithGap(k, eps, threshold, true)
	if err != nil {
		log.Fatal(err)
	}
	res, err := adaptive.Run(src, counts)
	if err != nil {
		log.Fatal(err)
	}

	// Lemma 5 rates for the confidence bounds: threshold Laplace(1/eps0),
	// monotone query noise Laplace(1/eps1) in the middle branch and
	// Laplace(1/eps2) in the top branch.
	theta := freegap.ThetaLyu(k, true)
	eps0 := theta * eps
	eps1 := (1 - theta) * eps / float64(k)
	eps2 := eps1 / 2

	fmt.Println("adaptive SVT answers (first 12 shown):")
	fmt.Printf("%-6s %-8s %-10s %-12s %-14s\n", "item", "branch", "gap", "est. count", "95% lower bound")
	shown := 0
	for _, it := range res.AboveItems() {
		if shown >= 12 {
			break
		}
		rate := eps1
		if it.Branch == freegap.BranchTop {
			rate = eps2
		}
		lower, err := freegap.GapLowerConfidenceBound(it.Gap, threshold, 0.95, eps0, rate)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-8s %-10.1f %-12.1f %-14.1f\n", it.Index, it.Branch, it.Gap, it.Gap+threshold, lower)
		shown++
	}

	fmt.Printf("\nclassical SVT:  %d above-threshold answers, budget exhausted\n", classicRes.AboveCount)
	fmt.Printf("adaptive SVT:   %d above-threshold answers (%d cheap top-branch, %d middle-branch)\n",
		res.AboveCount, res.CountByBranch(freegap.BranchTop), res.CountByBranch(freegap.BranchMiddle))
	fmt.Printf("adaptive SVT budget: spent %.3f of %.3f — %.0f%% left for other analyses\n",
		res.BudgetSpent, res.Budget, 100*res.RemainingFraction())

	servedMonitor(db, counts)
}

// servedMonitor replays the workflow through the serving layer: the dataset
// lives in a dpserver, the monitor is a long-lived server-side SVT run, and
// appended transactions drive its verdict stream.
func servedMonitor(db *freegap.Dataset, counts []float64) {
	srv, err := freegap.NewServer(freegap.ServerConfig{Workers: 1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, err := srv.RegisterDataset("clicks", "example", db); err != nil {
		log.Fatal(err)
	}

	// Watch the most frequent item, with the threshold set 200 clicks above
	// its current count: today's answer is below, and the appended traffic
	// will push it decisively over.
	item := 0
	for i, c := range counts {
		if c > counts[item] {
			item = i
		}
	}
	threshold := counts[item] + 200

	fmt.Printf("\n— served: monitoring item %d against threshold %.0f —\n", item, threshold)
	var created struct {
		ID      string          `json:"id"`
		Verdict json.RawMessage `json:"verdict"`
	}
	postJSON(ts.URL+"/v1/monitors", fmt.Sprintf(
		`{"tenant":"acme","dataset":"clicks","item":%d,"threshold":%g,"epsilon":0.5,"max_answers":2,"adaptive":true,"seed":7}`,
		item, threshold), &created)
	fmt.Printf("monitor %s registered (ε=0.5 charged once); registration verdict: %s\n", created.ID, created.Verdict)

	// Append 400 transactions containing the item — the server extends the
	// count vector incrementally and feeds the monitor its next query.
	delta := strings.Repeat(fmt.Sprintf("%d\n", item), 400)
	var appended struct {
		Records  int `json:"records"`
		Verdicts int `json:"monitor_verdicts"`
	}
	postJSON(ts.URL+"/v1/datasets/clicks/append", fmt.Sprintf(`{"fimi":%q}`, delta), &appended)
	fmt.Printf("appended 400 records (dataset now %d); append triggered %d verdict(s)\n",
		appended.Records, appended.Verdicts)

	// The SSE stream replays the verdict history, so subscribing after the
	// append still sees every verdict the monitor ever released.
	resp, err := http.Get(ts.URL + "/v1/monitors/" + created.ID + "/stream")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	seen := 0
	for sc.Scan() && seen < 2 {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			fmt.Printf("stream: %s\n", data)
			seen++
		}
	}
}

// postJSON posts body and decodes the 2xx response into out, failing the
// example on any error.
func postJSON(url, body string, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		log.Fatalf("POST %s: %s: %s", url, resp.Status, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
