package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

func TestParseConfig(t *testing.T) {
	cfg, err := parseConfig([]string{"-addr", ":9090", "-budget", "3.5", "-workers", "2", "-seed", "7"})
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if cfg.Addr != ":9090" || cfg.TenantBudget != 3.5 || cfg.Workers != 2 || cfg.Seed != 7 {
		t.Errorf("config = %+v", cfg)
	}

	if _, err := parseConfig([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, err := parseConfig([]string{"stray"}); err == nil {
		t.Error("stray positional argument accepted")
	}
}

func TestParsePreloadFlags(t *testing.T) {
	cfg, err := parseConfig([]string{
		"-preload", "sales=/data/pos.dat",
		"-preload-synthetic", "demo=kosarak:100:9",
		"-preload-synthetic", "full=bmspos",
	})
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if len(cfg.Preload) != 3 {
		t.Fatalf("preloads = %+v", cfg.Preload)
	}
	if p := cfg.Preload[0]; p.Name != "sales" || p.Path != "/data/pos.dat" || p.Synthetic != "" {
		t.Errorf("file preload = %+v", p)
	}
	if p := cfg.Preload[1]; p.Name != "demo" || p.Synthetic != "kosarak" || p.Scale != 100 || p.Seed != 9 {
		t.Errorf("synthetic preload = %+v", p)
	}
	if p := cfg.Preload[2]; p.Name != "full" || p.Synthetic != "bmspos" || p.Scale != 0 || p.Seed != 0 {
		t.Errorf("synthetic preload = %+v", p)
	}

	bad := [][]string{
		{"-preload", "nopath"},
		{"-preload", "=path"},
		{"-preload", "name="},
		{"-preload-synthetic", "demo"},
		{"-preload-synthetic", "demo=kind:notanumber"},
		{"-preload-synthetic", "demo=kind:0"},
		{"-preload-synthetic", "demo=kind:1:notanumber"},
		{"-preload-synthetic", "demo=kind:1:2:3"},
	}
	for _, args := range bad {
		if _, err := parseConfig(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunServesPreloadedDataset boots the binary entry point with a
// -preload-synthetic flag and drives a dataset-backed query over HTTP.
func TestRunServesPreloadedDataset(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		err := run(ctx, []string{"-addr", "127.0.0.1:0", "-budget", "50", "-workers", "1", "-seed", "1",
			"-preload-synthetic", "pos=bmspos:1000:7"}, w)
		w.Close()
		done <- err
	}()

	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading announce line: %v", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		t.Fatalf("unexpected announce line %q", line)
	}
	base := "http://" + fields[3]
	if line, err = br.ReadString('\n'); err != nil || !strings.Contains(line, "pos") {
		t.Fatalf("dataset announce line = %q (err %v)", line, err)
	}

	body := `{"tenant":"cli","k":3,"epsilon":1,"dataset":"pos","queries":{"kind":"all_items"}}`
	resp, err := http.Post(base+"/v1/topk", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("topk: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk status = %d, body = %s", resp.StatusCode, data)
	}
	var out struct {
		Selections []struct {
			Index int `json:"index"`
		} `json:"selections"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(out.Selections) != 3 {
		t.Fatalf("got %d selections, want 3: %s", len(out.Selections), data)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after context cancellation")
	}

	if err := run(context.Background(), []string{"-preload", "bad=/no/such/file.dat"}, os.Stdout); err == nil {
		t.Error("missing preload file accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(context.Background(), []string{"-budget", "-1"}, os.Stdout); err == nil {
		t.Error("negative budget accepted")
	}
	if err := run(context.Background(), []string{"-addr", "host:notaport"}, os.Stdout); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// TestRunServesAndShutsDown boots the real binary entry point on an ephemeral
// port, drives one DP query over HTTP, and checks the graceful shutdown path.
func TestRunServesAndShutsDown(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		err := run(ctx, []string{"-addr", "127.0.0.1:0", "-budget", "2", "-workers", "1", "-seed", "1"}, w)
		w.Close()
		done <- err
	}()

	// The first announced line carries the assigned address.
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading announce line: %v", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		t.Fatalf("unexpected announce line %q", line)
	}
	base := "http://" + fields[3]

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	body := `{"tenant":"cli","k":2,"epsilon":1,"monotonic":true,"answers":[9,8,7,6,5]}`
	resp, err = http.Post(base+"/v1/topk", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("topk: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk status = %d, body = %s", resp.StatusCode, data)
	}
	var out struct {
		Selections []struct {
			Index int     `json:"index"`
			Gap   float64 `json:"gap"`
		} `json:"selections"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(out.Selections) != 2 {
		t.Fatalf("got %d selections, want 2: %s", len(out.Selections), data)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after context cancellation")
	}
}

func TestParseDurabilityFlags(t *testing.T) {
	opts, err := parseConfig([]string{"-state-dir", "/var/lib/dpserver", "-fsync", "always"})
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if opts.StateDir != "/var/lib/dpserver" || opts.Fsync != "always" {
		t.Errorf("options = %+v", opts)
	}
	if opts, err := parseConfig(nil); err != nil || opts.StateDir != "" || opts.Fsync != "batch" {
		t.Errorf("defaults = %+v (err %v)", opts, err)
	}
	if _, err := parseConfig([]string{"-fsync", "sometimes"}); err == nil {
		t.Error("bad fsync mode accepted")
	}
}

// TestRunPersistsAcrossRestarts boots the real binary entry point twice on
// the same -state-dir and checks the spent budget survives the restart.
func TestRunPersistsAcrossRestarts(t *testing.T) {
	stateDir := t.TempDir()

	boot := func() (cancel context.CancelFunc, base string, done chan error) {
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		ctx, cancelCtx := context.WithCancel(context.Background())
		done = make(chan error, 1)
		go func() {
			err := run(ctx, []string{"-addr", "127.0.0.1:0", "-budget", "5", "-workers", "1", "-seed", "1",
				"-state-dir", stateDir}, w)
			w.Close()
			done <- err
		}()
		br := bufio.NewReader(r)
		// First line announces the restored state, second the listen address.
		stateLine, err := br.ReadString('\n')
		if err != nil || !strings.Contains(stateLine, "state restored") {
			t.Fatalf("state announce line = %q (err %v)", stateLine, err)
		}
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading announce line: %v", err)
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			t.Fatalf("unexpected announce line %q", line)
		}
		return cancelCtx, "http://" + fields[3], done
	}

	stop := func(cancel context.CancelFunc, done chan error) {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v after shutdown", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("run did not exit after context cancellation")
		}
	}

	cancel1, base1, done1 := boot()
	body := `{"tenant":"cli","k":2,"epsilon":1.5,"monotonic":true,"answers":[9,8,7,6,5]}`
	resp, err := http.Post(base1+"/v1/topk", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("topk: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk status = %d", resp.StatusCode)
	}
	stop(cancel1, done1)

	cancel2, base2, done2 := boot()
	defer stop(cancel2, done2)
	resp, err = http.Get(base2 + "/v1/tenants/cli/budget")
	if err != nil {
		t.Fatalf("budget: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budget status = %d, body = %s (restart refunded the tenant)", resp.StatusCode, data)
	}
	var ledger struct {
		Spent            float64            `json:"spent"`
		Remaining        float64            `json:"remaining"`
		SpentByMechanism map[string]float64 `json:"spent_by_mechanism"`
	}
	if err := json.Unmarshal(data, &ledger); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if ledger.Spent != 1.5 || ledger.Remaining != 3.5 || ledger.SpentByMechanism["topk"] != 1.5 {
		t.Errorf("ledger after restart = %+v, want spent 1.5 / remaining 3.5", ledger)
	}
}
