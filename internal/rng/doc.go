// Package rng provides the noise substrate used by every differentially
// private mechanism in this repository.
//
// It contains a deterministic, splittable pseudo-random number generator
// (SplitMix64 seeding a xoshiro256** state) and samplers for the additive
// noise distributions discussed in the paper: the continuous Laplace
// distribution (Theorem 1), the Discrete Laplace distribution over multiples
// of a base γ (the "implementation issues" discussion and Appendix A.1), the
// Staircase distribution of Geng and Viswanath, the exponential distribution,
// and the Gumbel distribution (used by the exponential-mechanism baseline via
// the Gumbel-max trick).
//
// All samplers are pure functions of a Source, so experiments are exactly
// reproducible from a seed. None of the samplers are hardened against
// floating-point side channels; this mirrors the assumption made by the paper
// (see Section 5, "Implementation issues").
package rng
