package engine

import (
	"reflect"
	"testing"

	"github.com/freegap/freegap/internal/rng"
)

// TestExecuteUnitNoiseBitIdentity pins the batch prenoise contract: for every
// UnitNoiser mechanism, pre-filling UnitNoiseLen unit-scale Laplace samples
// and running ExecuteUnitNoise must produce a bit-identical response to
// Execute drawing from the same source — the factorisation
// Laplace(scale) == scale·Laplace(1) is exact in IEEE arithmetic, so batch
// requests may share one vectorized noise fill without changing any output.
func TestExecuteUnitNoiseBitIdentity(t *testing.T) {
	reg := DefaultRegistry()
	answers := []float64{812, 641, 633, 601, 425, 124, 77, 8, -3, 0.5}
	reqs := map[string]Request{
		"topk": &TopKRequest{Common: Common{Epsilon: 0.8, Answers: answers, Monotonic: true}, K: 3},
		"max":  &MaxRequest{Common: Common{Epsilon: 0.4, Answers: answers}},
	}
	for name, req := range reqs {
		t.Run(name, func(t *testing.T) {
			mech, err := reg.Get(name)
			if err != nil {
				t.Fatalf("Get(%q): %v", name, err)
			}
			un, ok := mech.(UnitNoiser)
			if !ok {
				t.Fatalf("%s does not implement UnitNoiser", name)
			}
			n := un.UnitNoiseLen(req)
			if n != len(answers) {
				t.Fatalf("UnitNoiseLen = %d, want %d", n, len(answers))
			}

			const seed = 99
			direct, err := mech.Execute(rng.NewXoshiro(seed), req, nil)
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			unit := rng.LaplaceVec(rng.NewXoshiro(seed), 1, n, nil)
			pre, err := un.ExecuteUnitNoise(req, unit, nil)
			if err != nil {
				t.Fatalf("ExecuteUnitNoise: %v", err)
			}
			if !reflect.DeepEqual(direct, pre) {
				t.Errorf("prenoised response differs:\n direct %+v\n pre    %+v", direct, pre)
			}
		})
	}

	// SVT draws a data-dependent number of samples, so it must opt out.
	svt, err := reg.Get("svt")
	if err != nil {
		t.Fatalf("Get(svt): %v", err)
	}
	if _, ok := svt.(UnitNoiser); ok {
		t.Error("svt implements UnitNoiser; its draw count is data-dependent")
	}
	// Wrong request type opts out per-request rather than failing.
	topk, _ := reg.Get("topk")
	if got := topk.(UnitNoiser).UnitNoiseLen(reqs["max"]); got != -1 {
		t.Errorf("topk.UnitNoiseLen(max request) = %d, want -1", got)
	}
}
