package core

import (
	"math"
	"testing"

	"github.com/freegap/freegap/internal/rng"
)

func streamMech(k int) *AdaptiveSVTWithGap {
	return &AdaptiveSVTWithGap{K: k, Epsilon: 1.0, Threshold: 100, Monotonic: true}
}

func TestSVTStreamDeterministicReplay(t *testing.T) {
	queries := []float64{40, 180, 95, 300, 60, 220, 110, 10, 500}
	run := func() []SVTItem {
		s, err := NewSVTStream(streamMech(3), rng.NewXoshiro(77))
		if err != nil {
			t.Fatalf("NewSVTStream: %v", err)
		}
		var items []SVTItem
		for _, q := range queries {
			it, ok := s.Arrive(q)
			if !ok {
				break
			}
			items = append(items, it)
		}
		return items
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("stream released no items")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSVTStreamStopsOnMaxAnswers(t *testing.T) {
	m := streamMech(2)
	m.MaxAnswers = 2
	s, err := NewSVTStream(m, rng.NewXoshiro(5))
	if err != nil {
		t.Fatalf("NewSVTStream: %v", err)
	}
	above := 0
	for i := 0; i < 1000 && !s.Done(); i++ {
		it, ok := s.Arrive(10_000) // far above threshold: every answer is positive
		if !ok {
			break
		}
		if it.Above {
			above++
		}
	}
	if above != 2 {
		t.Errorf("above answers = %d, want exactly MaxAnswers = 2", above)
	}
	if !s.Done() {
		t.Error("stream still live after MaxAnswers positives")
	}
	if _, ok := s.Arrive(10_000); ok {
		t.Error("Arrive accepted a query after the stream stopped")
	}
	if got := s.AboveCount(); got != 2 {
		t.Errorf("AboveCount = %d, want 2", got)
	}
}

func TestSVTStreamStopsWithinBudget(t *testing.T) {
	// Below-threshold queries are free; positives spend until the Theorem-4
	// stop rule fires. However the stream is driven, Spent never exceeds ε.
	for seed := uint64(1); seed <= 25; seed++ {
		m := streamMech(4)
		s, err := NewSVTStream(m, rng.NewXoshiro(seed))
		if err != nil {
			t.Fatalf("NewSVTStream: %v", err)
		}
		for i := 0; i < 10_000 && !s.Done(); i++ {
			q := 10_000.0
			if i%2 == 0 {
				q = -10_000
			}
			if _, ok := s.Arrive(q); !ok {
				break
			}
		}
		if spent := s.Spent(); spent > m.Epsilon+1e-12 {
			t.Fatalf("seed %d: spent %v exceeds epsilon %v", seed, spent, m.Epsilon)
		}
	}
}

func TestSVTStreamMatchesBatchSemantics(t *testing.T) {
	// The stream and the batch run share the per-query branch logic; with the
	// top branch disabled (plain SVT-with-Gap) and the same noise draws they
	// must release the same decisions. The chunked prefill of Run consumes
	// the source in a different order, so compare structure, not draws:
	// every above decision carries a positive-biased gap and a budget charge,
	// every below decision is free.
	m := streamMech(3)
	m.SigmaMultiplier = math.Inf(1)
	s, err := NewSVTStream(m, rng.NewXoshiro(9))
	if err != nil {
		t.Fatalf("NewSVTStream: %v", err)
	}
	eps0, eps1, _ := m.budgets()
	wantCost := eps0
	for i := 0; i < 200 && !s.Done(); i++ {
		it, ok := s.Arrive(float64(50 * (i % 5)))
		if !ok {
			break
		}
		switch {
		case it.Above:
			if it.Branch != BranchMiddle {
				t.Fatalf("item %d: branch %v with the top branch disabled", i, it.Branch)
			}
			if it.Gap < 0 {
				t.Fatalf("item %d: negative gap %v on an above answer", i, it.Gap)
			}
			if math.Abs(it.BudgetUsed-eps1) > 1e-12 {
				t.Fatalf("item %d: middle charge %v, want %v", i, it.BudgetUsed, eps1)
			}
			wantCost += eps1
		default:
			if it.BudgetUsed != 0 {
				t.Fatalf("item %d: below answer charged %v", i, it.BudgetUsed)
			}
		}
	}
	if got := s.Spent(); math.Abs(got-wantCost) > 1e-12 {
		t.Errorf("Spent = %v, want %v", got, wantCost)
	}
}
