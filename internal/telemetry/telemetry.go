// Package telemetry holds the serving-side observability primitives —
// counters, gauges and the Prometheus-text registry that renders them. It is
// deliberately separate from internal/metrics, which implements the paper's
// Section 7 evaluation metrics (MSE, precision, recall): one package is about
// operating the service, the other about measuring mechanism quality.
//
// Counters and gauges are striped: each holds a small power-of-two array of
// cache-line-padded cells, and an increment lands on a cell picked from the
// calling goroutine's stack address, so concurrent writers on different
// cores overwhelmingly hit different cache lines instead of bouncing one hot
// atomic between them. Reads (the /metrics scrape) sum the cells; the
// rendered Prometheus text is byte-identical to the single-cell layout.
package telemetry

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// cellBytes is the assumed cache-line size the cells are padded to.
const cellBytes = 64

// maxCells caps the stripe width; past this the scrape-time summation cost
// buys no additional contention relief.
const maxCells = 64

// numCells is the stripe width: GOMAXPROCS at package init rounded up to a
// power of two (so cell picking is a mask), capped at maxCells.
var numCells = func() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	cells := 1
	for cells < n {
		cells <<= 1
	}
	if cells > maxCells {
		cells = maxCells
	}
	return cells
}()

// cellIndex picks a stripe cell for the calling goroutine. Goroutines have
// no visible id, but they do have distinct stacks: the address of a local,
// folded through a multiplicative hash, is a cheap stationary per-goroutine
// value. n must be a power of two.
func cellIndex(n int) int {
	var probe byte
	h := uint64(uintptr(unsafe.Pointer(&probe)))
	// Drop the low in-frame bits, then spread the remaining stack-slab bits
	// across the index with the 64-bit golden-ratio multiplier.
	h = (h >> 10) * 0x9e3779b97f4a7c15
	return int((h >> 32) & uint64(n-1))
}

// counterCell is one padded stripe cell.
type counterCell struct {
	v atomic.Uint64
	_ [cellBytes - 8]byte
}

// gaugeCell is one padded stripe cell holding a signed delta.
type gaugeCell struct {
	v atomic.Int64
	_ [cellBytes - 8]byte
}

// Counter is a monotonically increasing counter safe for concurrent use: the
// dpserver increments counters on its hot path and exposes them in the
// Prometheus text exposition format. The zero value works (single-cell); the
// CounterSet registry hands out striped instances.
type Counter struct {
	// base serves zero-value Counters and is always included in Value.
	base  atomic.Uint64
	cells []counterCell
}

// NewCounter returns a striped counter.
func NewCounter() *Counter { return &Counter{cells: make([]counterCell, numCells)} }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if cs := c.cells; cs != nil {
		cs[cellIndex(len(cs))].v.Add(n)
		return
	}
	c.base.Add(n)
}

// Value returns the current count (the sum over the stripe cells).
func (c *Counter) Value() uint64 {
	total := c.base.Load()
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

// Gauge is a value that can go up and down, safe for concurrent use (e.g.
// in-flight requests). Inc/Dec stripe like Counter; Value sums the signed
// cell deltas. The zero value works (single-cell).
type Gauge struct {
	base  atomic.Int64
	cells []gaugeCell
}

// NewGauge returns a striped gauge.
func NewGauge() *Gauge { return &Gauge{cells: make([]gaugeCell, numCells)} }

// Inc adds one to the gauge.
func (g *Gauge) Inc() { g.add(1) }

// Dec subtracts one from the gauge.
func (g *Gauge) Dec() { g.add(-1) }

func (g *Gauge) add(n int64) {
	if cs := g.cells; cs != nil {
		cs[cellIndex(len(cs))].v.Add(n)
		return
	}
	g.base.Add(n)
}

// Set replaces the gauge value. Set is for administratively-published values
// (catalog sizes, health flags); racing it against concurrent Inc/Dec yields
// an approximate result, exactly as summing a moving gauge always does.
func (g *Gauge) Set(n int64) {
	for i := range g.cells {
		g.cells[i].v.Store(0)
	}
	g.base.Store(n)
}

// Value returns the current gauge value (the sum over the stripe cells).
func (g *Gauge) Value() int64 {
	total := g.base.Load()
	for i := range g.cells {
		total += g.cells[i].v.Load()
	}
	return total
}

// Label is one key="value" pair attached to a counter or gauge series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// CounterSet is a registry of named counter and gauge series that renders
// itself in the Prometheus text exposition format. Series are created on
// first use and retrieved by (name, labels) afterwards, so hot paths can
// cache the returned pointer and pay only a striped atomic add per event.
type CounterSet struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	floatGauges map[string]*FloatGauge
	histograms  map[string]*Histogram
	valueHists  map[string]*ValueHistogram
	names       []string // registration order of fully-qualified series keys
	kinds       map[string]string
	help        map[string]string // keyed by bare metric name
}

// NewCounterSet returns an empty registry.
func NewCounterSet() *CounterSet {
	return &CounterSet{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		floatGauges: make(map[string]*FloatGauge),
		histograms:  make(map[string]*Histogram),
		valueHists:  make(map[string]*ValueHistogram),
		kinds:       make(map[string]string),
		help:        make(map[string]string),
	}
}

// Help registers a HELP string for the given bare metric name, emitted once
// above the metric's series in WritePrometheus.
func (s *CounterSet) Help(name, help string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.help[name] = help
}

// Counter returns the counter series with the given name and labels, creating
// it at zero on first use.
func (s *CounterSet) Counter(name string, labels ...Label) *Counter {
	key := seriesKey(name, labels)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.counters[key]; ok {
		return c
	}
	c := NewCounter()
	s.counters[key] = c
	s.names = append(s.names, key)
	s.kinds[key] = "counter"
	return c
}

// Gauge returns the gauge series with the given name and labels, creating it
// at zero on first use.
func (s *CounterSet) Gauge(name string, labels ...Label) *Gauge {
	key := seriesKey(name, labels)
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.gauges[key]; ok {
		return g
	}
	g := NewGauge()
	s.gauges[key] = g
	s.names = append(s.names, key)
	s.kinds[key] = "gauge"
	return g
}

// FloatGauge returns the float-valued gauge series with the given name and
// labels, creating it at zero on first use. It renders as a gauge.
func (s *CounterSet) FloatGauge(name string, labels ...Label) *FloatGauge {
	key := seriesKey(name, labels)
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.floatGauges[key]; ok {
		return g
	}
	g := &FloatGauge{}
	s.floatGauges[key] = g
	s.names = append(s.names, key)
	s.kinds[key] = "gauge"
	return g
}

// Histogram returns the latency histogram series with the given name and
// labels, creating it empty on first use. Hot paths should cache the
// returned pointer; an observation is then a few striped atomic adds.
func (s *CounterSet) Histogram(name string, labels ...Label) *Histogram {
	key := seriesKey(name, labels)
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.histograms[key]; ok {
		return h
	}
	h := NewHistogram()
	s.histograms[key] = h
	s.names = append(s.names, key)
	s.kinds[key] = "histogram"
	return h
}

// ValueHistogram returns the small-integer value histogram series with the
// given name and labels, creating it empty on first use. It renders as a
// histogram with power-of-two value buckets (le 1, 2, 4, …).
func (s *CounterSet) ValueHistogram(name string, labels ...Label) *ValueHistogram {
	key := seriesKey(name, labels)
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.valueHists[key]; ok {
		return h
	}
	h := NewValueHistogram()
	s.valueHists[key] = h
	s.names = append(s.names, key)
	s.kinds[key] = "histogram"
	return h
}

// Remove deletes the series with the given name and labels from the
// registry, whatever its kind; later use of the same (name, labels)
// recreates it at zero. It exists so scrape-time samplers can retire series
// for entities that no longer exist (e.g. per-tenant gauges) instead of
// holding their label cardinality forever. Callers that cached the series
// pointer keep a working but unrendered instance.
func (s *CounterSet) Remove(name string, labels ...Label) {
	key := seriesKey(name, labels)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.kinds[key]; !ok {
		return
	}
	delete(s.counters, key)
	delete(s.gauges, key)
	delete(s.floatGauges, key)
	delete(s.histograms, key)
	delete(s.valueHists, key)
	delete(s.kinds, key)
	for i, k := range s.names {
		if k == key {
			s.names = append(s.names[:i], s.names[i+1:]...)
			break
		}
	}
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format, grouped by metric name with TYPE (and optional HELP)
// headers, in a deterministic order.
func (s *CounterSet) WritePrometheus(w io.Writer) error {
	s.mu.Lock()
	keys := append([]string(nil), s.names...)
	kinds := make(map[string]string, len(keys))
	values := make(map[string]string, len(keys))
	hists := make(map[string]*Histogram)
	valueHists := make(map[string]*ValueHistogram)
	for _, k := range keys {
		kinds[k] = s.kinds[k]
		if c, ok := s.counters[k]; ok {
			values[k] = fmt.Sprintf("%d", c.Value())
		} else if g, ok := s.gauges[k]; ok {
			values[k] = fmt.Sprintf("%d", g.Value())
		} else if g, ok := s.floatGauges[k]; ok {
			values[k] = formatFloat(g.Value())
		} else if h, ok := s.histograms[k]; ok {
			hists[k] = h
		} else if h, ok := s.valueHists[k]; ok {
			valueHists[k] = h
		}
	}
	help := make(map[string]string, len(s.help))
	for k, v := range s.help {
		help[k] = v
	}
	s.mu.Unlock()

	sort.Strings(keys)
	headered := make(map[string]bool)
	for _, k := range keys {
		name := bareName(k)
		if !headered[name] {
			headered[name] = true
			if h, ok := help[name]; ok {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kinds[k]); err != nil {
				return err
			}
		}
		if h, ok := hists[k]; ok {
			if err := writeHistogram(w, k, h); err != nil {
				return err
			}
			continue
		}
		if h, ok := valueHists[k]; ok {
			if err := writeValueHistogram(w, k, h); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", k, values[k]); err != nil {
			return err
		}
	}
	return nil
}

// seriesKey renders name{k1="v1",k2="v2"} with labels sorted by key so the
// same logical series always maps to the same map entry.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func bareName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}
