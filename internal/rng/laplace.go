package rng

import (
	"errors"
	"math"
)

// ErrInvalidScale is returned by sampler constructors when the requested
// scale parameter is not strictly positive.
var ErrInvalidScale = errors.New("rng: scale must be positive")

// Laplace draws one sample from the Laplace distribution with mean zero and
// the given scale b (density f(x) = exp(−|x|/b)/(2b)). This is the noise used
// by the Laplace mechanism (Theorem 1) and by both Algorithm 1 and
// Algorithm 2 in the paper.
//
// The sampler uses the inverse-CDF method on a uniform in (0,1), written so
// that both tails are reachable and the argument of log never reaches zero.
func Laplace(src Source, scale float64) float64 {
	if scale <= 0 {
		panic(ErrInvalidScale)
	}
	u := Float64(src) - 0.5
	if u < 0 {
		return scale * math.Log(1+2*u)
	}
	return -scale * math.Log(1-2*u)
}

// LaplaceVec fills dst with independent Laplace(scale) samples and returns it.
// If dst is nil a new slice of length n is allocated. The scale check and the
// virtual dispatch on src are paid once for the whole vector, which is what
// makes the serving hot path fill its noise buffers through the *Vec
// samplers instead of n scalar calls.
func LaplaceVec(src Source, scale float64, n int, dst []float64) []float64 {
	if scale <= 0 {
		panic(ErrInvalidScale)
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		u := Float64(src) - 0.5
		if u < 0 {
			dst[i] = scale * math.Log(1+2*u)
		} else {
			dst[i] = -scale * math.Log(1-2*u)
		}
	}
	return dst
}

// Exponential draws from the exponential distribution with the given mean
// (scale). It is the building block of the staircase sampler and of the
// one-sided tail bounds used in tests.
func Exponential(src Source, mean float64) float64 {
	if mean <= 0 {
		panic(ErrInvalidScale)
	}
	return -mean * math.Log(Float64(src))
}

// ExponentialVec fills dst with independent Exponential(mean) samples and
// returns it. If dst is nil a new slice of length n is allocated.
func ExponentialVec(src Source, mean float64, n int, dst []float64) []float64 {
	if mean <= 0 {
		panic(ErrInvalidScale)
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = -mean * math.Log(Float64(src))
	}
	return dst
}

// Gumbel draws from the standard Gumbel distribution scaled by the given
// scale. Adding independent Gumbel(2Δ/ε) noise to utilities and taking the
// arg-max is distributionally identical to the exponential mechanism, which
// is the selection baseline implemented in internal/baseline.
func Gumbel(src Source, scale float64) float64 {
	if scale <= 0 {
		panic(ErrInvalidScale)
	}
	return -scale * math.Log(Exponential(src, 1))
}

// GumbelVec fills dst with independent Gumbel(scale) samples and returns it.
// If dst is nil a new slice of length n is allocated. Like Gumbel, each
// sample spends exactly one uniform (−scale·log(−log(u))), so a vector fill
// is draw-for-draw identical to n scalar calls.
func GumbelVec(src Source, scale float64, n int, dst []float64) []float64 {
	if scale <= 0 {
		panic(ErrInvalidScale)
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = -scale * math.Log(-math.Log(Float64(src)))
	}
	return dst
}

// LaplaceCDF evaluates the CDF of the zero-mean Laplace distribution with the
// given scale at x. Exposed for tests and for the analytic confidence-bound
// code in internal/postprocess.
func LaplaceCDF(x, scale float64) float64 {
	if scale <= 0 {
		panic(ErrInvalidScale)
	}
	if x < 0 {
		return 0.5 * math.Exp(x/scale)
	}
	return 1 - 0.5*math.Exp(-x/scale)
}

// LaplaceQuantile returns the p-quantile (0 < p < 1) of the zero-mean Laplace
// distribution with the given scale.
func LaplaceQuantile(p, scale float64) float64 {
	if scale <= 0 {
		panic(ErrInvalidScale)
	}
	if p <= 0 || p >= 1 {
		panic("rng: quantile probability must be in (0,1)")
	}
	if p < 0.5 {
		return scale * math.Log(2*p)
	}
	return -scale * math.Log(2*(1-p))
}

// LaplaceVariance returns the variance 2b² of a Laplace distribution with
// scale b. Centralising the formula avoids scattering magic constants through
// the estimator code.
func LaplaceVariance(scale float64) float64 {
	if scale <= 0 {
		panic(ErrInvalidScale)
	}
	return 2 * scale * scale
}
