package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	f, err := os.Create(filepath.Join(t.TempDir(), "stdout"))
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	defer func() { os.Stdout = old }()
	runErr := fn()
	f.Close()
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunAdaptiveSynthetic(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-synthetic", "bmspos", "-scale", "500", "-k", "5", "-eps", "50", "-adaptive"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gap above threshold", "above-threshold answers:", "privacy budget:", "threshold:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPlainSVTWithExplicitThreshold(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-synthetic", "kosarak", "-scale", "2000", "-k", "3", "-eps", "60",
			"-adaptive=false", "-threshold", "50"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "threshold: 50.00") {
		t.Fatalf("explicit threshold not honoured:\n%s", out)
	}
	// Plain SVT-with-Gap never uses the top branch.
	if strings.Contains(out, "\ttop\t") {
		t.Fatalf("plain SVT reported a top-branch answer:\n%s", out)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing data source accepted")
	}
	if err := run([]string{"-synthetic", "bmspos", "-k", "0"}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := run([]string{"-synthetic", "unknown"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run([]string{"-data", "/does/not/exist"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"-data", "a", "-synthetic", "bmspos"}); err == nil {
		t.Fatal("both sources accepted")
	}
}

func TestRunMeasurePipeline(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-synthetic", "bmspos", "-scale", "500", "-k", "4", "-eps", "60", "-measure"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"combined count", "lower bound", "above-threshold answers:", "privacy budget:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pipeline output missing %q:\n%s", want, out)
		}
	}
}
