package dataset

import (
	"fmt"

	"github.com/freegap/freegap/internal/rng"
)

// QuestConfig parameterises the IBM Almaden Quest synthetic transaction
// generator, re-implemented from the description in Agrawal & Srikant,
// "Fast Algorithms for Mining Association Rules" (VLDB 1994). The paper's
// third dataset, T40I10D100K, is the Quest output with average transaction
// size T=40, average maximal-potential-itemset size I=10 and D=100,000
// transactions over 1,000 items (942 of which end up appearing).
type QuestConfig struct {
	Name                string
	Transactions        int     // D: number of transactions
	AvgTransactionLen   float64 // T: mean items per transaction (Poisson)
	AvgPatternLen       float64 // I: mean size of maximal potential itemsets (Poisson)
	NumPatterns         int     // L: number of maximal potential itemsets
	Items               int     // N: item universe size
	CorruptionMean      float64 // mean of the per-pattern corruption level
	CorruptionDeviation float64 // stddev of the corruption level (normal, clamped)
}

// T40I10D100KConfig returns the configuration that reproduces the paper's
// T40I10D100K dataset (the defaults of the original generator: 1,000 items,
// 2,000 potential patterns, corruption level N(0.5, 0.1)).
func T40I10D100KConfig() QuestConfig {
	return QuestConfig{
		Name:                "T40I10D100K (synthetic)",
		Transactions:        100000,
		AvgTransactionLen:   40,
		AvgPatternLen:       10,
		NumPatterns:         2000,
		Items:               1000,
		CorruptionMean:      0.5,
		CorruptionDeviation: 0.1,
	}
}

// ScaledDown divides the transaction count by factor (minimum 1,000), for
// fast test and benchmark runs.
func (c QuestConfig) ScaledDown(factor int) QuestConfig {
	if factor <= 1 {
		return c
	}
	c.Transactions /= factor
	if c.Transactions < 1000 {
		c.Transactions = 1000
	}
	return c
}

// questPattern is one maximal potential itemset with its weight and
// corruption level.
type questPattern struct {
	items      []int32
	weight     float64
	corruption float64
}

// Generate runs the Quest generative process:
//
//  1. Draw NumPatterns maximal potential itemsets. Each pattern's size is
//     Poisson(AvgPatternLen); a fraction of its items is borrowed from the
//     previous pattern so that patterns share items, the rest are drawn
//     uniformly. Each pattern gets an exponential weight (normalised to a
//     probability) and a corruption level drawn from a clamped normal.
//  2. For each transaction draw a Poisson(AvgTransactionLen) size, then fill
//     the transaction by repeatedly picking a pattern by weight and inserting
//     the non-corrupted subset of its items until the size is reached.
//
// The output is deterministic in the seed.
func (c QuestConfig) Generate(seed uint64) *Transactions {
	if c.Transactions <= 0 || c.Items <= 0 || c.NumPatterns <= 0 {
		panic(fmt.Sprintf("dataset: invalid Quest config %+v", c))
	}
	src := rng.NewXoshiro(seed)

	patterns := make([]questPattern, c.NumPatterns)
	totalWeight := 0.0
	var prev []int32
	for i := range patterns {
		size := rng.Poisson(src, c.AvgPatternLen)
		if size < 1 {
			size = 1
		}
		items := make([]int32, 0, size)
		used := map[int32]bool{}
		// Borrow roughly half the items from the previous pattern, as in the
		// original generator's "correlation" step.
		if len(prev) > 0 {
			borrow := size / 2
			if borrow > len(prev) {
				borrow = len(prev)
			}
			perm := rng.Perm(src, len(prev))
			for _, pi := range perm[:borrow] {
				it := prev[pi]
				if !used[it] {
					used[it] = true
					items = append(items, it)
				}
			}
		}
		for len(items) < size {
			it := int32(rng.Intn(src, c.Items))
			if used[it] {
				continue
			}
			used[it] = true
			items = append(items, it)
		}
		corruption := c.CorruptionMean + c.CorruptionDeviation*rng.Normal(src)
		if corruption < 0 {
			corruption = 0
		}
		if corruption > 1 {
			corruption = 1
		}
		w := rng.Exponential(src, 1)
		patterns[i] = questPattern{items: items, weight: w, corruption: corruption}
		totalWeight += w
		prev = items
	}
	// Build the pattern-selection CDF.
	cdf := make([]float64, len(patterns))
	acc := 0.0
	for i, p := range patterns {
		acc += p.weight / totalWeight
		cdf[i] = acc
	}
	pickPattern := func() *questPattern {
		u := rng.Float64(src)
		lo, hi := 0, len(cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return &patterns[lo]
	}

	records := make([][]int32, c.Transactions)
	for ti := range records {
		size := rng.Poisson(src, c.AvgTransactionLen)
		if size < 1 {
			size = 1
		}
		record := make([]int32, 0, size)
		used := map[int32]bool{}
		// Guard against degenerate configurations where patterns cannot fill
		// the requested size (e.g. tiny item universes).
		for attempts := 0; len(record) < size && attempts < 50; attempts++ {
			p := pickPattern()
			for _, it := range p.items {
				if len(record) >= size {
					break
				}
				// Corrupt (drop) each item of the pattern with the pattern's
				// corruption probability.
				if rng.Float64(src) < p.corruption {
					continue
				}
				if used[it] {
					continue
				}
				used[it] = true
				record = append(record, it)
			}
		}
		if len(record) == 0 {
			record = append(record, int32(rng.Intn(src, c.Items)))
		}
		records[ti] = record
	}
	t := New(c.Name, records)
	if t.items < c.Items {
		t.items = c.Items
	}
	return t
}

// SyntheticT40I10D100K generates the Quest dataset at the paper's scale.
func SyntheticT40I10D100K(seed uint64) *Transactions {
	return T40I10D100KConfig().Generate(seed)
}
