package core

// Statistical acceptance tests for the free-gap mechanisms: the paper's core
// claim is that the gaps released "for free" are unbiased estimates of the
// true gaps (Top-K, Section 5) and that gap + threshold is an unbiased
// estimate of an above-threshold query's true answer (SVT, Section 6.2).
// The shape/golden tests elsewhere pin the output format; these tests pin
// the distribution: with a fixed seed and ~10k trials, the empirical means
// must sit inside a tolerance band derived from the mechanism's own
// published variance (±5 standard errors — runs are deterministic under the
// fixed seed, and a correct implementation sits well inside the band), and
// the empirical gap variance must match GapVariance within a few percent.
//
// The true answers are separated by much more than the noise scale, so the
// probability of a mis-ranked selection (which would make the conditional
// gap distribution non-trivial) is astronomically small (~exp(-40)), and
// E[noisy gap] = true gap to far beyond the tolerance band.

import (
	"math"
	"testing"

	"github.com/freegap/freegap/internal/rng"
)

const statTrials = 10_000

func TestTopKGapsStatisticallyUnbiased(t *testing.T) {
	answers := []float64{500, 430, 370, 320, 280, 240, 100, 50}
	const (
		k   = 3
		eps = 8.0
	)
	trueGaps := []float64{70, 60, 50} // answers[i] − answers[i+1] for the top k
	m, err := NewTopKWithGap(k, eps, false)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewXoshiro(12345)

	sums := make([]float64, k)
	sqSums := make([]float64, k)
	for trial := 0; trial < statTrials; trial++ {
		res, err := m.Run(src, answers)
		if err != nil {
			t.Fatal(err)
		}
		for i, sel := range res.Selections {
			if sel.Index != i {
				t.Fatalf("trial %d: selection %d picked index %d — separations were chosen to make mis-ranking impossible", trial, i, sel.Index)
			}
			sums[i] += sel.Gap
			sqSums[i] += sel.Gap * sel.Gap
		}
	}

	n := float64(statTrials)
	se := math.Sqrt(m.GapVariance() / n)
	for i, want := range trueGaps {
		mean := sums[i] / n
		if math.Abs(mean-want) > 5*se {
			t.Errorf("gap %d mean = %.4f, want %v ± %.4f (5 SE): biased gap estimate", i, mean, want, 5*se)
		}
		variance := sqSums[i]/n - mean*mean
		if rel := math.Abs(variance-m.GapVariance()) / m.GapVariance(); rel > 0.10 {
			t.Errorf("gap %d empirical variance = %.4f, want %.4f within 10%% (off by %.1f%%)",
				i, variance, m.GapVariance(), 100*rel)
		}
	}
}

func TestMaxGapStatisticallyUnbiased(t *testing.T) {
	answers := []float64{300, 220, 100, 40}
	const (
		eps     = 4.0
		trueGap = 80.0
	)
	src := rng.NewXoshiro(99)

	var sum float64
	for trial := 0; trial < statTrials; trial++ {
		res, err := MaxWithGap(src, answers, eps, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Index != 0 {
			t.Fatalf("trial %d: max picked index %d", trial, res.Index)
		}
		sum += res.Gap
	}
	// Monotonic k = 1: noise scale k/ε, gap variance 2·(2·scale²).
	scale := 1.0 / eps
	gapVar := 4 * scale * scale
	se := math.Sqrt(gapVar / statTrials)
	if mean := sum / statTrials; math.Abs(mean-trueGap) > 5*se {
		t.Errorf("max gap mean = %.5f, want %v ± %.5f (5 SE)", mean, trueGap, 5*se)
	}
}

// svtStatCase runs one SVT variant for statTrials runs and asserts every
// above-threshold gap estimate (gap + threshold, the Section 6.2 estimator)
// is an unbiased estimate of the query's true answer within ±5 standard
// errors of the result's own published variance.
func svtStatCase(t *testing.T, run func(src rng.Source) (*SVTGapResult, error), answers []float64, aboveIdx []int, seed uint64) {
	t.Helper()
	src := rng.NewXoshiro(seed)
	sums := make(map[int]float64, len(aboveIdx))
	variances := make(map[int]float64, len(aboveIdx))
	for trial := 0; trial < statTrials; trial++ {
		res, err := run(src)
		if err != nil {
			t.Fatal(err)
		}
		estimates, vars, indices := res.GapEstimates()
		if len(indices) != len(aboveIdx) {
			t.Fatalf("trial %d: %d above-threshold answers, want %d (answers are far above the threshold)", trial, len(indices), len(aboveIdx))
		}
		for j, idx := range indices {
			if idx != aboveIdx[j] {
				t.Fatalf("trial %d: above index %d, want %d", trial, idx, aboveIdx[j])
			}
			sums[idx] += estimates[j]
			variances[idx] = vars[j]
		}
	}
	for _, idx := range aboveIdx {
		want := answers[idx]
		se := math.Sqrt(variances[idx] / statTrials)
		if mean := sums[idx] / statTrials; math.Abs(mean-want) > 5*se {
			t.Errorf("query %d estimate mean = %.4f, want %v ± %.4f (5 SE): biased SVT gap estimate", idx, mean, want, 5*se)
		}
	}
}

func TestSVTGapEstimatesStatisticallyUnbiased(t *testing.T) {
	answers := []float64{400, 10, 350, 20, 300}
	const (
		k         = 3
		eps       = 6.0
		threshold = 100.0
	)
	m, err := NewSVTWithGap(k, eps, threshold, false)
	if err != nil {
		t.Fatal(err)
	}
	svtStatCase(t, func(src rng.Source) (*SVTGapResult, error) {
		return m.Run(src, answers)
	}, answers, []int{0, 2, 4}, 2024)
}

func TestAdaptiveSVTGapEstimatesStatisticallyUnbiased(t *testing.T) {
	answers := []float64{400, 10, 350, 20, 300}
	const (
		k         = 3
		eps       = 6.0
		threshold = 100.0
	)
	m, err := NewAdaptiveSVTWithGap(k, eps, threshold, false)
	if err != nil {
		t.Fatal(err)
	}
	svtStatCase(t, func(src rng.Source) (*SVTGapResult, error) {
		return m.Run(src, answers)
	}, answers, []int{0, 2, 4}, 7)
}
