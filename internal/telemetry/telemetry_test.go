package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterSetBasics(t *testing.T) {
	s := NewCounterSet()
	c := s.Counter("requests_total", L("mechanism", "topk"))
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter value = %d, want 3", got)
	}
	if again := s.Counter("requests_total", L("mechanism", "topk")); again != c {
		t.Fatalf("same (name, labels) returned a different counter")
	}
	other := s.Counter("requests_total", L("mechanism", "svt"))
	if other == c {
		t.Fatalf("different labels returned the same counter")
	}

	g := s.Gauge("in_flight")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge value = %d, want 1", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge value after Set = %d, want 7", got)
	}
}

func TestCounterSetLabelOrderIsCanonical(t *testing.T) {
	s := NewCounterSet()
	a := s.Counter("m", L("b", "2"), L("a", "1"))
	b := s.Counter("m", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatalf("label order changed series identity")
	}
}

func TestWritePrometheus(t *testing.T) {
	s := NewCounterSet()
	s.Help("requests_total", "Total requests by mechanism.")
	s.Counter("requests_total", L("mechanism", "topk")).Add(5)
	s.Counter("requests_total", L("mechanism", "svt")).Add(2)
	s.Gauge("in_flight").Set(3)

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total Total requests by mechanism.",
		"# TYPE requests_total counter",
		`requests_total{mechanism="topk"} 5`,
		`requests_total{mechanism="svt"} 2`,
		"# TYPE in_flight gauge",
		"in_flight 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE requests_total") != 1 {
		t.Errorf("TYPE header repeated:\n%s", out)
	}
}

func TestCounterSetConcurrent(t *testing.T) {
	s := NewCounterSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Counter("hits", L("w", "shared")).Inc()
			}
		}()
	}
	wg.Wait()
	if got := s.Counter("hits", L("w", "shared")).Value(); got != 8000 {
		t.Fatalf("concurrent count = %d, want 8000", got)
	}
}

// TestStripedCountersSumExactly hammers one counter and one gauge from many
// goroutines and verifies the scrape-time sum is exact: striping may spread
// the increments over cells, but it must never lose or double-count one.
func TestStripedCountersSumExactly(t *testing.T) {
	set := NewCounterSet()
	c := set.Counter("stripe_test_total")
	g := set.Gauge("stripe_test_inflight")
	const goroutines = 16
	const perG = 5000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Inc()
				if j%2 == 0 {
					g.Dec()
				}
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), uint64(goroutines*perG); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got, want := g.Value(), int64(goroutines*(perG-perG/2)); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge after Set = %d, want 7", got)
	}
}

// TestZeroValueCounterAndGauge pins the zero-value fallback: un-striped
// instances constructed directly still count correctly.
func TestZeroValueCounterAndGauge(t *testing.T) {
	var c Counter
	var g Gauge
	c.Inc()
	c.Add(4)
	g.Inc()
	g.Inc()
	g.Dec()
	if got := c.Value(); got != 5 {
		t.Errorf("zero-value counter = %d, want 5", got)
	}
	if got := g.Value(); got != 1 {
		t.Errorf("zero-value gauge = %d, want 1", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Errorf("zero-value gauge after Set = %d, want -3", got)
	}
}
