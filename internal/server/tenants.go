package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/freegap/freegap/internal/accountant"
	"github.com/freegap/freegap/internal/engine"
)

// ErrTenantLimit is returned by Get/Charge when provisioning a new tenant
// would exceed the registry's tenant cap.
var ErrTenantLimit = errors.New("server: tenant limit reached")

// maxTenantNameLen bounds tenant identifiers so hostile clients cannot grow
// the registry key space without bound per entry; the rule lives in the
// engine so CLI and batch callers validate identically.
const maxTenantNameLen = engine.MaxTenantNameLen

// Registry is a concurrency-safe map of tenant id → privacy accountant. An
// accountant is created with the configured initial budget the first time a
// tenant issues a request, and every subsequent request is charged against it
// atomically, so concurrent clients of the same tenant draw from one budget.
type Registry struct {
	mu      sync.RWMutex
	budget  float64
	tenants map[string]*accountant.Accountant
	// maxTenants caps auto-provisioning; zero means unlimited.
	maxTenants int
	// journal, when set, observes every admitted charge batch of every
	// tenant (see SetJournal).
	journal ChargeJournal
}

// ChargeJournal observes admitted charges for durable persistence. The
// registry installs a per-tenant hook into each accountant so AppendCharge
// runs iff the charge committed, in per-tenant commit order.
type ChargeJournal interface {
	AppendCharge(tenant string, charges []accountant.Charge)
}

// NewRegistry returns a registry that provisions each new tenant with the
// given initial ε budget. maxTenants caps how many tenants may be
// auto-provisioned; zero means unlimited.
func NewRegistry(initialBudget float64, maxTenants int) (*Registry, error) {
	if !(initialBudget > 0) {
		return nil, fmt.Errorf("server: tenant budget %v must be positive", initialBudget)
	}
	if maxTenants < 0 {
		return nil, fmt.Errorf("server: max tenants %d must not be negative", maxTenants)
	}
	return &Registry{
		budget:     initialBudget,
		tenants:    make(map[string]*accountant.Accountant),
		maxTenants: maxTenants,
	}, nil
}

// InitialBudget returns the ε budget new tenants are provisioned with.
func (r *Registry) InitialBudget() float64 { return r.budget }

// validTenant reports whether the tenant id is acceptable.
func validTenant(tenant string) error {
	if err := engine.ValidTenant(tenant); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return nil
}

// Get returns the tenant's accountant, creating it with the initial budget on
// first use.
func (r *Registry) Get(tenant string) (*accountant.Accountant, error) {
	if err := validTenant(tenant); err != nil {
		return nil, err
	}
	r.mu.RLock()
	a, ok := r.tenants[tenant]
	r.mu.RUnlock()
	if ok {
		return a, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if a, ok := r.tenants[tenant]; ok {
		return a, nil
	}
	if r.maxTenants > 0 && len(r.tenants) >= r.maxTenants {
		return nil, fmt.Errorf("%w: %d tenants provisioned", ErrTenantLimit, len(r.tenants))
	}
	a = accountant.MustNew(r.budget)
	r.installJournalLocked(tenant, a)
	r.tenants[tenant] = a
	return a, nil
}

// installJournalLocked wires the registry journal into one accountant.
// Caller holds r.mu for writing.
func (r *Registry) installJournalLocked(tenant string, a *accountant.Accountant) {
	if r.journal == nil {
		return
	}
	j := r.journal
	a.SetJournal(func(charges []accountant.Charge) { j.AppendCharge(tenant, charges) })
}

// SetJournal installs j as the registry's charge journal: every tenant
// accountant — existing and future — reports its admitted charges to it.
// Install before serving traffic; passing nil removes the hooks.
func (r *Registry) SetJournal(j ChargeJournal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.journal = j
	for tenant, a := range r.tenants {
		if j == nil {
			a.SetJournal(nil)
			continue
		}
		r.installJournalLocked(tenant, a)
	}
}

// RestoreTenant provisions tenant with a previously journalled spending
// state, bypassing the tenant cap (the tenants existed before the restart).
// The restored charges themselves are never re-journalled — they are already
// durable — but future spends of the tenant are. It fails if the tenant was
// already provisioned.
func (r *Registry) RestoreTenant(tenant string, charges []accountant.Charge, chargeCount int) error {
	if err := validTenant(tenant); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[tenant]; ok {
		return fmt.Errorf("server: tenant %q restored twice", tenant)
	}
	a := accountant.MustNew(r.budget)
	if err := a.Restore(charges, chargeCount); err != nil {
		return fmt.Errorf("server: restoring tenant %q: %w", tenant, err)
	}
	r.installJournalLocked(tenant, a)
	r.tenants[tenant] = a
	return nil
}

// Lookup returns the tenant's accountant without creating one.
func (r *Registry) Lookup(tenant string) (*accountant.Accountant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.tenants[tenant]
	return a, ok
}

// Charge atomically charges eps to the tenant under the given label, creating
// the tenant on first use. It returns the remaining budget after the charge;
// accountant.ErrBudgetExceeded means nothing was charged.
func (r *Registry) Charge(tenant, label string, eps float64) (remaining float64, err error) {
	a, err := r.Get(tenant)
	if err != nil {
		return 0, err
	}
	if err := a.Spend(label, eps); err != nil {
		return a.Remaining(), err
	}
	return a.Remaining(), nil
}

// ChargeBatch atomically charges every entry of charges to the tenant,
// creating the tenant on first use. The multi-charge is all-or-nothing: on
// accountant.ErrBudgetExceeded nothing was charged. It returns the remaining
// budget after the attempt.
func (r *Registry) ChargeBatch(tenant string, charges []accountant.Charge) (remaining float64, err error) {
	a, err := r.Get(tenant)
	if err != nil {
		return 0, err
	}
	if err := a.SpendBatch(charges); err != nil {
		return a.Remaining(), err
	}
	return a.Remaining(), nil
}

// Len returns the number of live tenants.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tenants)
}

// Tenants returns the live tenant ids, sorted.
func (r *Registry) Tenants() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.tenants))
	for t := range r.tenants {
		out = append(out, t)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}
