// Benchmark harness: one benchmark per table/figure of the paper (see the
// per-experiment index in DESIGN.md) plus the ablation benches for the design
// choices called out there and micro-benchmarks of the core mechanisms.
//
// Figure benchmarks run the experiment harness at a reduced scale and report
// the headline quantity of the figure through b.ReportMetric, so
// `go test -bench=. -benchmem` both times the harness and prints the
// reproduced numbers. cmd/dpbench regenerates the full tables.
package freegap_test

import (
	"fmt"
	"math"
	"testing"

	freegap "github.com/freegap/freegap"
	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/experiment"
	"github.com/freegap/freegap/internal/postprocess"
	"github.com/freegap/freegap/internal/rng"
)

// benchConfig keeps the figure benchmarks fast while preserving the paper's
// qualitative shapes (see DESIGN.md §5 on scale compensation).
func benchConfig() experiment.Config {
	return experiment.Config{
		Seed:            1,
		Trials:          40,
		Scale:           200,
		Epsilon:         0.7,
		Ks:              []int{2, 10, 25},
		Epsilons:        []float64{0.3, 0.7, 1.1},
		FixedK:          10,
		CompensateScale: true,
	}
}

// reportLastPoints publishes the final point of each series as a custom
// benchmark metric, e.g. "fig1a/SparseVectorwithMeasures_k=25".
func reportLastPoints(b *testing.B, fig experiment.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			continue
		}
		last := s.Points[len(s.Points)-1]
		name := fmt.Sprintf("%s_at_%g", sanitizeMetric(s.Name), last.X)
		b.ReportMetric(last.Y, name)
	}
}

func sanitizeMetric(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		}
	}
	return string(out)
}

// --- E0: dataset statistics table (Section 7.1) ---

func BenchmarkDatasetStatsTable(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.DatasetStatsTable()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Records), sanitizeMetric(r.Name)+"_records")
			}
		}
	}
}

// --- E1–E4: Figures 1a, 1b, 2a, 2b ---

func BenchmarkFig1aSVTGapMSEImprovementByK(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Fig1a()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportLastPoints(b, fig)
		}
	}
}

func BenchmarkFig1bTopKGapMSEImprovementByK(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Fig1b()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportLastPoints(b, fig)
		}
	}
}

func BenchmarkFig2aSVTGapMSEImprovementByEps(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Fig2a()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportLastPoints(b, fig)
		}
	}
}

func BenchmarkFig2bTopKGapMSEImprovementByEps(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Fig2b()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportLastPoints(b, fig)
		}
	}
}

// --- E5–E7: Figures 3a–3f and 4 ---

func BenchmarkFig3AnswerCounts(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		figs, err := cfg.Fig3Counts()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, f := range figs {
				reportLastPoints(b, f)
			}
		}
	}
}

func BenchmarkFig3PrecisionFMeasure(b *testing.B) {
	cfg := benchConfig()
	cfg.Ks = []int{2, 10} // quality sweeps are the slowest; two points suffice for the bench
	for i := 0; i < b.N; i++ {
		figs, err := cfg.Fig3Quality()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, f := range figs {
				reportLastPoints(b, f)
			}
		}
	}
}

func BenchmarkFig4RemainingBudget(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportLastPoints(b, fig)
		}
	}
}

// --- E8–E12: supporting studies ---

func BenchmarkCorollary1BLUEErrorRatio(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Corollary1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportLastPoints(b, fig)
		}
	}
}

func BenchmarkSVTGapCombineErrorRatio(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.SVTCombineRatio()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportLastPoints(b, fig)
		}
	}
}

func BenchmarkTieProbabilityBound(b *testing.B) {
	cfg := benchConfig()
	cfg.Trials = 400
	for i := 0; i < b.N; i++ {
		fig, err := cfg.TieProbability()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportLastPoints(b, fig)
		}
	}
}

func BenchmarkLemma5Coverage(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Lemma5Coverage()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportLastPoints(b, fig)
		}
	}
}

func BenchmarkPrivacyAudit(b *testing.B) {
	cfg := benchConfig()
	cfg.Trials = 300 // the audit enforces its own 40k-trial floor internally
	for i := 0; i < b.N; i++ {
		rows, err := cfg.PrivacyAudit()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.EpsilonHat, sanitizeMetric(r.Mechanism)+"_epsHat")
			}
		}
	}
}

func BenchmarkAlignmentVerification(b *testing.B) {
	cfg := benchConfig()
	cfg.Trials = 200
	for i := 0; i < b.N; i++ {
		rows, err := cfg.AlignmentVerification()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.MaxCost, sanitizeMetric(r.Mechanism)+"_maxCost")
			}
		}
	}
}

// --- Ablation benches (DESIGN.md §6) ---

// BenchmarkAblationAdaptiveSigma sweeps the top-branch margin σ (in standard
// deviations of the top-branch noise). σ = ∞ disables the top branch and
// recovers plain Sparse-Vector-with-Gap; the paper's choice is 2.
func BenchmarkAblationAdaptiveSigma(b *testing.B) {
	counts := dataset.BMSPOSConfig().ScaledDown(200).Generate(1).ItemCounts()
	const k, eps = 10, 140.0 // eps precompensated for the 200x scale reduction
	for _, mult := range []float64{1, 2, 3, math.Inf(1)} {
		name := fmt.Sprintf("sigma=%gx", mult)
		if math.IsInf(mult, 1) {
			name = "sigma=inf(plainSVT)"
		}
		b.Run(name, func(b *testing.B) {
			src := rng.NewXoshiro(7)
			total := 0.0
			for i := 0; i < b.N; i++ {
				threshold := dataset.RandomThreshold(src, counts, k)
				m := &core.AdaptiveSVTWithGap{K: k, Epsilon: eps, Threshold: threshold, Monotonic: true, SigmaMultiplier: mult}
				res, err := m.Run(src, counts)
				if err != nil {
					b.Fatal(err)
				}
				total += float64(res.AboveCount)
			}
			b.ReportMetric(total/float64(b.N), "answers/run")
		})
	}
}

// BenchmarkAblationBudgetSplit sweeps the threshold/query budget split θ of
// Adaptive-Sparse-Vector-with-Gap around the Lyu et al. recommendation.
func BenchmarkAblationBudgetSplit(b *testing.B) {
	counts := dataset.BMSPOSConfig().ScaledDown(200).Generate(1).ItemCounts()
	const k, eps = 10, 140.0
	for _, theta := range []float64{0.05, 0.1777, 0.3, 0.5, 0.8} {
		b.Run(fmt.Sprintf("theta=%.4g", theta), func(b *testing.B) {
			src := rng.NewXoshiro(11)
			total := 0.0
			for i := 0; i < b.N; i++ {
				threshold := dataset.RandomThreshold(src, counts, k)
				m := &core.AdaptiveSVTWithGap{K: k, Epsilon: eps, Threshold: threshold, Monotonic: true, Theta: theta}
				res, err := m.Run(src, counts)
				if err != nil {
					b.Fatal(err)
				}
				total += float64(res.AboveCount)
			}
			b.ReportMetric(total/float64(b.N), "answers/run")
		})
	}
}

// BenchmarkAblationMeasureSplit sweeps the fraction of the total budget spent
// on selection versus measurement in the Section 5.2 Top-K protocol. The paper
// uses an even split.
func BenchmarkAblationMeasureSplit(b *testing.B) {
	counts := dataset.BMSPOSConfig().ScaledDown(200).Generate(1).ItemCounts()
	const k, eps = 10, 140.0
	for _, selectFrac := range []float64{0.25, 0.5, 0.75} {
		b.Run(fmt.Sprintf("select=%.0f%%", 100*selectFrac), func(b *testing.B) {
			src := rng.NewXoshiro(13)
			var se, n float64
			for i := 0; i < b.N; i++ {
				topk, err := core.NewTopKWithGap(k, eps*selectFrac, true)
				if err != nil {
					b.Fatal(err)
				}
				res, err := topk.Run(src, counts)
				if err != nil {
					b.Fatal(err)
				}
				meas, err := freegap.NewLaplaceMechanism(eps*(1-selectFrac), 1)
				if err != nil {
					b.Fatal(err)
				}
				measurements, err := meas.MeasureSelected(src, counts, res.Indices())
				if err != nil {
					b.Fatal(err)
				}
				refined, err := postprocess.BLUEFromVariances(measurements, res.Gaps()[:k-1],
					meas.MeasurementVariance(k), res.PerQueryNoiseVariance())
				if err != nil {
					b.Fatal(err)
				}
				for j, idx := range res.Indices() {
					d := refined[j] - counts[idx]
					se += d * d
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(se/n, "refinedMSE")
			}
		})
	}
}

// BenchmarkAblationNoiseKind swaps the noise distribution inside
// Noisy-Top-K-with-Gap (privacy-equivalent alternatives; utility differs).
func BenchmarkAblationNoiseKind(b *testing.B) {
	counts := dataset.BMSPOSConfig().ScaledDown(200).Generate(1).ItemCounts()
	trueTop := dataset.TopKItems(counts, 10)
	trueSet := map[int]bool{}
	for _, idx := range trueTop {
		trueSet[idx] = true
	}
	const k, eps = 10, 140.0
	for _, kind := range []core.NoiseKind{core.NoiseLaplace, core.NoiseDiscreteLaplace, core.NoiseStaircase} {
		b.Run(kind.String(), func(b *testing.B) {
			src := rng.NewXoshiro(17)
			hits := 0.0
			for i := 0; i < b.N; i++ {
				m := &core.TopKWithGap{K: k, Epsilon: eps, Monotonic: true, Noise: kind, DiscreteBase: 1.0 / (1 << 20)}
				res, err := m.Run(src, counts)
				if err != nil {
					b.Fatal(err)
				}
				for _, idx := range res.Indices() {
					if trueSet[idx] {
						hits++
					}
				}
			}
			b.ReportMetric(hits/float64(b.N*k), "top10precision")
		})
	}
}

// --- Micro-benchmarks of the core mechanisms ---

func BenchmarkMechanismTopKWithGapRun(b *testing.B) {
	counts := dataset.BMSPOSConfig().ScaledDown(200).Generate(1).ItemCounts()
	for _, k := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("k=%d_n=%d", k, len(counts)), func(b *testing.B) {
			src := rng.NewXoshiro(1)
			m, err := core.NewTopKWithGap(k, 1, true)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(src, counts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMechanismAdaptiveSVTRun(b *testing.B) {
	counts := dataset.BMSPOSConfig().ScaledDown(200).Generate(1).ItemCounts()
	src := rng.NewXoshiro(1)
	threshold := dataset.KthLargest(counts, 40)
	m, err := core.NewAdaptiveSVTWithGap(10, 1, threshold, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(src, counts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMechanismBLUE(b *testing.B) {
	for _, k := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			src := rng.NewXoshiro(1)
			alpha := make([]float64, k)
			gaps := make([]float64, k-1)
			for i := range alpha {
				alpha[i] = rng.Laplace(src, 10) + 1000
			}
			for i := range gaps {
				gaps[i] = rng.Laplace(src, 10) + 5
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := postprocess.BLUE(alpha, gaps, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMechanismLaplaceSampler(b *testing.B) {
	src := rng.NewXoshiro(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rng.Laplace(src, 1)
	}
}

func BenchmarkDatasetGeneration(b *testing.B) {
	for _, name := range []string{"bmspos", "kosarak", "quest"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				switch name {
				case "bmspos":
					_ = dataset.BMSPOSConfig().ScaledDown(200).Generate(uint64(i))
				case "kosarak":
					_ = dataset.KosarakConfig().ScaledDown(200).Generate(uint64(i))
				case "quest":
					_ = dataset.T40I10D100KConfig().ScaledDown(200).Generate(uint64(i))
				}
			}
		})
	}
}
