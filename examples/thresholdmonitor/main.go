// Threshold monitor: the Section 6 workflow. A stream of item-count queries is
// screened against a public threshold with Adaptive-Sparse-Vector-with-Gap.
// Queries that clear the threshold by a wide margin are answered from the
// cheap top branch, so the mechanism answers more queries than the classical
// Sparse Vector Technique would — and each positive answer carries a free gap
// estimate with a Lemma 5 lower confidence bound.
package main

import (
	"fmt"
	"log"

	freegap "github.com/freegap/freegap"
)

func main() {
	const (
		k     = 10  // provision the budget for at least 10 positive answers
		eps   = 0.7 // the paper's budget
		scale = 50
	)

	db := freegap.NewSyntheticKosarak(11, scale)
	counts := db.ItemCounts()
	src := freegap.NewSource(33)
	threshold := freegap.RandomThreshold(src, counts, k)
	fmt.Printf("dataset: %d transactions, %d items; threshold %.0f; eps = %.2g\n\n",
		db.NumRecords(), db.NumItems(), threshold, eps)

	// Classical SVT baseline: stops after exactly k positive answers and
	// spends the whole budget.
	classic, err := freegap.NewSparseVector(k, eps, threshold, freegap.ThetaLyu(k, true), true)
	if err != nil {
		log.Fatal(err)
	}
	classicRes, err := classic.Run(src, counts)
	if err != nil {
		log.Fatal(err)
	}

	// Adaptive-Sparse-Vector-with-Gap: same budget, same threshold.
	adaptive, err := freegap.NewAdaptiveSVTWithGap(k, eps, threshold, true)
	if err != nil {
		log.Fatal(err)
	}
	res, err := adaptive.Run(src, counts)
	if err != nil {
		log.Fatal(err)
	}

	// Lemma 5 rates for the confidence bounds: threshold Laplace(1/eps0),
	// monotone query noise Laplace(1/eps1) in the middle branch and
	// Laplace(1/eps2) in the top branch.
	theta := freegap.ThetaLyu(k, true)
	eps0 := theta * eps
	eps1 := (1 - theta) * eps / float64(k)
	eps2 := eps1 / 2

	fmt.Println("adaptive SVT answers (first 12 shown):")
	fmt.Printf("%-6s %-8s %-10s %-12s %-14s\n", "item", "branch", "gap", "est. count", "95% lower bound")
	shown := 0
	for _, it := range res.AboveItems() {
		if shown >= 12 {
			break
		}
		rate := eps1
		if it.Branch == freegap.BranchTop {
			rate = eps2
		}
		lower, err := freegap.GapLowerConfidenceBound(it.Gap, threshold, 0.95, eps0, rate)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-8s %-10.1f %-12.1f %-14.1f\n", it.Index, it.Branch, it.Gap, it.Gap+threshold, lower)
		shown++
	}

	fmt.Printf("\nclassical SVT:  %d above-threshold answers, budget exhausted\n", classicRes.AboveCount)
	fmt.Printf("adaptive SVT:   %d above-threshold answers (%d cheap top-branch, %d middle-branch)\n",
		res.AboveCount, res.CountByBranch(freegap.BranchTop), res.CountByBranch(freegap.BranchMiddle))
	fmt.Printf("adaptive SVT budget: spent %.3f of %.3f — %.0f%% left for other analyses\n",
		res.BudgetSpent, res.Budget, 100*res.RemainingFraction())
}
