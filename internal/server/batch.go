package server

// POST /v1/batch: up to MaxBatch mechanism requests in one round trip,
// paid for with a single atomic multi-charge against the batch tenant's
// accountant. The charge is all-or-nothing — every item's cost is reserved
// in one accountant transaction or the whole batch is refused with a 402 —
// so a batch can never overspend what the same requests issued serially
// could, no matter how many batches race for the budget concurrently.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"github.com/freegap/freegap/internal/accountant"
	"github.com/freegap/freegap/internal/engine"
	"github.com/freegap/freegap/internal/rng"
)

// mechBatch is the metrics label for the batch endpoint.
const mechBatch = "batch"

// batchItem is one decoded, validated batch entry awaiting execution.
type batchItem struct {
	mech engine.Mechanism
	req  engine.Request
	cost float64
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.hot.inFlight.Inc()
	defer s.hot.inFlight.Dec()
	t := s.beginTrace(w, r)
	outcome := s.serveBatch(t, r)
	s.finishTrace(t, mechBatch, outcome)
	s.finishRequest(mechBatch, outcome)
}

func (s *Server) serveBatch(w *traceWriter, r *http.Request) string {
	var req BatchRequest
	if code, ok := s.decode(w, r, &req); !ok {
		return code
	}
	w.mark(stageDecode)
	w.tenant = req.Tenant
	if err := engine.ValidTenant(req.Tenant); err != nil {
		return badRequest(w, err)
	}
	if len(req.Requests) == 0 {
		return badRequest(w, errors.New("batch holds no requests"))
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		return badRequest(w, fmt.Errorf("batch of %d requests exceeds the server limit of %d", len(req.Requests), s.cfg.MaxBatch))
	}

	// Stage 1: decode and validate every item. Any failure rejects the whole
	// batch before a single ε is reserved, keeping the charge all-or-nothing
	// across validation too.
	items := make([]batchItem, len(req.Requests))
	charges := make([]accountant.Charge, len(req.Requests))
	lim := s.limits()
	for i, entry := range req.Requests {
		// The construction-time snapshot, not the live registry: a batch may
		// name exactly the mechanisms that have endpoints mounted.
		mech, ok := s.mechByName[entry.Mechanism]
		if !ok {
			return badRequest(w, fmt.Errorf("requests[%d]: unknown mechanism %q (valid: %v)", i, entry.Mechanism, s.mechNames))
		}
		if len(entry.Request) == 0 {
			return badRequest(w, fmt.Errorf("requests[%d]: missing request body", i))
		}
		mreq := mech.NewRequest()
		if err := decodeStrictJSON(entry.Request, mreq); err != nil {
			return badRequest(w, fmt.Errorf("requests[%d]: %v", i, err))
		}
		// The batch tenant pays for every item; an item naming a different
		// tenant is almost certainly a client bug, so reject it loudly
		// rather than silently re-billing.
		base := mreq.Base()
		switch base.Tenant {
		case "", req.Tenant:
			base.Tenant = req.Tenant
		default:
			return badRequest(w, fmt.Errorf("requests[%d]: tenant %q does not match the batch tenant %q", i, base.Tenant, req.Tenant))
		}
		// Resolve dataset-backed items before validation, like the single
		// path does; a resolution failure rejects the whole batch with the
		// item's structured code, keeping the charge all-or-nothing.
		if err := engine.ResolveRequest(mreq, s.resolver()); err != nil {
			return s.writeResolveError(w, fmt.Errorf("requests[%d]: %w", i, err))
		}
		if err := mech.Validate(mreq, lim); err != nil {
			return badRequest(w, fmt.Errorf("requests[%d]: %v", i, err))
		}
		cost := mech.Cost(mreq)
		items[i] = batchItem{mech: mech, req: mreq, cost: cost}
		charges[i] = accountant.Charge{Label: mech.Name(), Epsilon: cost}
	}
	// Per-item decode/resolve/validate all happened in the loop above; the
	// trace charges the whole loop to the validate stage.
	w.mark(stageValidate)

	// Stage 2: one atomic multi-charge, refused outright while the durable
	// journal is dead (fail-closed). Charging under the mechanism labels
	// (not "batch") keeps the tenant's per-mechanism ledger breakdown exact.
	if code, ok := s.persistReady(w); !ok {
		return code
	}
	remaining, err := s.reg.ChargeBatch(req.Tenant, charges)
	if code, ok := s.classifyChargeError(w, req.Tenant, remaining, err); !ok {
		return code
	}
	// Re-check after the charge (see serveMechanism): an FsyncAlways
	// journal failure during this charge must block the batch's release.
	if code, ok := s.persistReady(w); !ok {
		return code
	}
	w.mark(stageCharge)

	// Stage 3: execute the admitted items concurrently across the worker
	// pool. Execution failures are per-item — the batch's reservation stays
	// spent, exactly as a serial request's would. Each item draws its own
	// scratch from the pool (they run concurrently), and every scratch is
	// held until the whole batch response is encoded: item responses alias
	// their scratch's buffers.
	results := make([]BatchItemResult, len(items))
	scratches := make([]*engine.Scratch, len(items))
	var total float64
	var wg sync.WaitGroup
	for i := range items {
		it := &items[i]
		total += it.cost
		results[i].Mechanism = it.mech.Name()
		wg.Add(1)
		go func() {
			defer wg.Done()
			scr := scratchPool.Get().(*engine.Scratch)
			scratches[i] = scr
			var (
				resp   engine.Response
				runErr error
			)
			if err := s.pool.do(r.Context(), func(src rng.Source) {
				resp, runErr = it.mech.Execute(src, it.req, scr)
			}); err != nil {
				results[i].Error = batchExecError(err)
				return
			}
			if runErr != nil {
				results[i].Error = &ErrorBody{Code: CodeInternal, Message: runErr.Error()}
				return
			}
			resp.SetBilling(req.Tenant, it.cost, remaining)
			results[i].Response = resp
		}()
	}
	wg.Wait()
	w.mark(stageExecute)
	w.eps = total

	resp := BatchResponse{
		Tenant:          req.Tenant,
		Results:         results,
		EpsilonSpent:    total,
		BudgetRemaining: remaining,
	}
	if w.traceOn {
		// Measure a dry-run encode so the encode stage is part of the trace
		// the response carries (see writeTraced).
		var buf bytes.Buffer
		_ = json.NewEncoder(&buf).Encode(resp)
		w.mark(stageEncode)
		resp.Trace = w.traceJSON()
		writeJSON(w, http.StatusOK, resp)
	} else {
		writeJSON(w, http.StatusOK, resp)
		w.mark(stageEncode)
	}
	for _, scr := range scratches {
		if scr != nil {
			scratchPool.Put(scr)
		}
	}
	return "ok"
}

// batchExecError maps a pool submission failure to a per-item error body.
func batchExecError(err error) *ErrorBody {
	switch {
	case errors.Is(err, errPoolClosed):
		return &ErrorBody{Code: CodeUnavailable, Message: "server is shutting down"}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return &ErrorBody{Code: CodeCancelled, Message: err.Error()}
	default:
		return &ErrorBody{Code: CodeInternal, Message: err.Error()}
	}
}

// decodeStrictJSON parses raw into dst with the same strictness as the HTTP
// body decoder: unknown fields and trailing values are errors.
func decodeStrictJSON(raw json.RawMessage, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request: %v", err)
	}
	if dec.More() {
		return errors.New("request holds more than one JSON value")
	}
	return nil
}
