// Package baseline implements the classical differentially private mechanisms
// that the paper's new mechanisms are measured against and built from:
//
//   - the Laplace mechanism (Theorem 1), used for the "measurement" half of the
//     select-then-measure protocols of Sections 5.2 and 6.2;
//   - classic Noisy Max / Noisy Top-K (Dwork & Roth), which report indices only
//     and throw the gaps away;
//   - the classic Sparse Vector Technique in the formulation recommended by
//     Lyu, Su and Li (VLDB 2017), the gap-free baseline of Figures 3 and 4;
//   - the exponential mechanism (McSherry & Talwar), implemented with the
//     Gumbel-max trick, as an additional selection baseline from related work.
//
// Everything here reports exactly what the original algorithms report, so the
// experiment harness can quantify what the free gap information adds.
package baseline
