package experiment

import (
	"fmt"

	"github.com/freegap/freegap/internal/baseline"
	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/metrics"
	"github.com/freegap/freegap/internal/rng"
)

// Fig3Counts regenerates Figures 3a–3c: the average number of above-threshold
// answers produced by the classic Sparse Vector Technique versus
// Adaptive-Sparse-Vector-with-Gap (broken down into top-branch and
// middle-branch answers) on each dataset, as a function of k, at
// ε = Config.Epsilon.
//
// For each dataset the returned figure has three series: "Sparse Vector",
// "Adaptive SVT w/ Gap (Middle)" and "Adaptive SVT w/ Gap (Top)". The adaptive
// total is the sum of the last two.
func (c Config) Fig3Counts() ([]Figure, error) {
	c = c.withDefaults()
	workloads, err := c.Workloads()
	if err != nil {
		return nil, err
	}
	figures := make([]Figure, 0, len(workloads))
	for wi, w := range workloads {
		svtSeries := Series{Name: "Sparse Vector"}
		midSeries := Series{Name: "Adaptive SVT w/ Gap (Middle)"}
		topSeries := Series{Name: "Adaptive SVT w/ Gap (Top)"}
		for ki, k := range c.Ks {
			k := k
			counts := w.Counts
			sums := runTrials(c.Trials, c.Seed+uint64(11000*(wi+1)+13*(ki+1)), c.Parallel, func(src *rng.Xoshiro) map[string]float64 {
				threshold := dataset.RandomThreshold(src, counts, k)
				out := map[string]float64{}

				svt, err := baseline.NewSparseVector(k, c.effectiveEpsilon(c.Epsilon), threshold, baseline.ThetaLyu(k, true), true)
				if err == nil {
					if res, err := svt.Run(src, counts); err == nil {
						out["svt"] = float64(res.AboveCount)
					}
				}
				adaptive, err := core.NewAdaptiveSVTWithGap(k, c.effectiveEpsilon(c.Epsilon), threshold, true)
				if err == nil {
					if res, err := adaptive.Run(src, counts); err == nil {
						out["top"] = float64(res.CountByBranch(core.BranchTop))
						out["middle"] = float64(res.CountByBranch(core.BranchMiddle))
					}
				}
				return out
			})
			n := float64(c.Trials)
			svtSeries.Points = append(svtSeries.Points, Point{X: float64(k), Y: sums["svt"] / n})
			midSeries.Points = append(midSeries.Points, Point{X: float64(k), Y: sums["middle"] / n})
			topSeries.Points = append(topSeries.Points, Point{X: float64(k), Y: sums["top"] / n})
		}
		figures = append(figures, Figure{
			ID:     fmt.Sprintf("fig3-counts-%s", w.Name),
			Title:  fmt.Sprintf("Above-threshold answers, %s, eps=%.2g", w.Name, c.Epsilon),
			XLabel: "k",
			YLabel: "# of above-threshold answers",
			Series: []Series{svtSeries, midSeries, topSeries},
		})
	}
	return figures, nil
}

// Fig3Quality regenerates Figures 3d–3f: precision and F-measure of the
// classic Sparse Vector Technique versus Adaptive-Sparse-Vector-with-Gap on
// each dataset, as a function of k, at ε = Config.Epsilon. Ground truth for a
// trial is the set of queries whose true count is at least the trial's
// threshold.
func (c Config) Fig3Quality() ([]Figure, error) {
	c = c.withDefaults()
	workloads, err := c.Workloads()
	if err != nil {
		return nil, err
	}
	figures := make([]Figure, 0, len(workloads))
	for wi, w := range workloads {
		svtPrec := Series{Name: "Sparse Vector - Precision"}
		adaPrec := Series{Name: "Adaptive SVT w/ Gap - Precision"}
		svtF := Series{Name: "Sparse Vector - F-Measure"}
		adaF := Series{Name: "Adaptive SVT w/ Gap - F-Measure"}
		for ki, k := range c.Ks {
			k := k
			counts := w.Counts
			sums := runTrials(c.Trials, c.Seed+uint64(17000*(wi+1)+29*(ki+1)), c.Parallel, func(src *rng.Xoshiro) map[string]float64 {
				threshold := dataset.RandomThreshold(src, counts, k)
				relevant := make([]int, 0)
				for i, v := range counts {
					if v >= threshold {
						relevant = append(relevant, i)
					}
				}
				out := map[string]float64{"n": 1}

				svt, err := baseline.NewSparseVector(k, c.effectiveEpsilon(c.Epsilon), threshold, baseline.ThetaLyu(k, true), true)
				if err == nil {
					if res, err := svt.Run(src, counts); err == nil {
						returned := res.AboveIndices()
						p := metrics.Precision(returned, relevant)
						out["svtPrecision"] = p
						out["svtF"] = metrics.FMeasure(p, metrics.Recall(returned, relevant))
					}
				}
				adaptive, err := core.NewAdaptiveSVTWithGap(k, c.effectiveEpsilon(c.Epsilon), threshold, true)
				if err == nil {
					if res, err := adaptive.Run(src, counts); err == nil {
						returned := res.AboveIndices()
						p := metrics.Precision(returned, relevant)
						out["adaPrecision"] = p
						out["adaF"] = metrics.FMeasure(p, metrics.Recall(returned, relevant))
					}
				}
				return out
			})
			n := sums["n"]
			if n == 0 {
				n = 1
			}
			x := float64(k)
			svtPrec.Points = append(svtPrec.Points, Point{X: x, Y: sums["svtPrecision"] / n})
			adaPrec.Points = append(adaPrec.Points, Point{X: x, Y: sums["adaPrecision"] / n})
			svtF.Points = append(svtF.Points, Point{X: x, Y: sums["svtF"] / n})
			adaF.Points = append(adaF.Points, Point{X: x, Y: sums["adaF"] / n})
		}
		figures = append(figures, Figure{
			ID:     fmt.Sprintf("fig3-quality-%s", w.Name),
			Title:  fmt.Sprintf("Precision and F-measure, %s, eps=%.2g", w.Name, c.Epsilon),
			XLabel: "k",
			YLabel: "precision / F-measure",
			Series: []Series{svtPrec, adaPrec, svtF, adaF},
		})
	}
	return figures, nil
}

// Fig4 regenerates Figure 4: the percentage of the privacy budget left when
// Adaptive-Sparse-Vector-with-Gap is stopped after k above-threshold answers,
// for each dataset, as a function of k, at ε = Config.Epsilon.
func (c Config) Fig4() (Figure, error) {
	c = c.withDefaults()
	workloads, err := c.Workloads()
	if err != nil {
		return Figure{}, err
	}
	series := make([]Series, 0, len(workloads))
	for wi, w := range workloads {
		s := Series{Name: w.Name}
		for ki, k := range c.Ks {
			k := k
			counts := w.Counts
			sums := runTrials(c.Trials, c.Seed+uint64(23000*(wi+1)+31*(ki+1)), c.Parallel, func(src *rng.Xoshiro) map[string]float64 {
				threshold := dataset.RandomThreshold(src, counts, k)
				adaptive, err := core.NewAdaptiveSVTWithGap(k, c.effectiveEpsilon(c.Epsilon), threshold, true)
				if err != nil {
					return nil
				}
				adaptive.MaxAnswers = k
				res, err := adaptive.Run(src, counts)
				if err != nil {
					return nil
				}
				return map[string]float64{"remaining": res.RemainingFraction(), "n": 1}
			})
			n := sums["n"]
			if n == 0 {
				n = 1
			}
			s.Points = append(s.Points, Point{X: float64(k), Y: 100 * sums["remaining"] / n})
		}
		series = append(series, s)
	}
	return Figure{
		ID:     "fig4",
		Title:  fmt.Sprintf("Remaining privacy budget after k answers, eps=%.2g", c.Epsilon),
		XLabel: "k",
		YLabel: "% remaining privacy budget",
		Series: series,
	}, nil
}
