package engine

// The three raw free-gap mechanisms as engine Mechanisms: thin wrappers that
// map JSON-shaped requests onto internal/core and back. Validation always
// includes the core constructor so a request the mechanism itself would
// reject never reaches the charging step.

import (
	"errors"
	"fmt"
	"math"

	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/rng"
)

// errWrongRequestType reports a Request of the wrong concrete type reaching
// a mechanism — a programming error in the dispatching layer, not a client
// fault.
func errWrongRequestType(mech string, req Request) error {
	return fmt.Errorf("engine: %s mechanism received a %T request", mech, req)
}

//
// topk — Noisy-Top-K-with-Gap (Algorithm 1).
//

// TopKRequest is the body of POST /v1/topk.
type TopKRequest struct {
	Common
	// K is the number of queries to select.
	K int `json:"k"`
}

// SelectionJSON is one selected query in a TopKResponse.
type SelectionJSON struct {
	// Index is the query's position in the request's answers.
	Index int `json:"index"`
	// Gap is the released noisy gap to the next-ranked query.
	Gap float64 `json:"gap"`
}

// TopKResponse is the body of a successful POST /v1/topk.
type TopKResponse struct {
	Billing
	// Selections lists the k selected queries in descending noisy order.
	Selections []SelectionJSON `json:"selections"`
}

type topkMechanism struct{}

func (topkMechanism) Name() string        { return "topk" }
func (topkMechanism) NewRequest() Request { return &TopKRequest{} }

func (topkMechanism) Validate(req Request, lim Limits) error {
	r, ok := req.(*TopKRequest)
	if !ok {
		return errWrongRequestType("topk", req)
	}
	if err := r.Common.validate(lim); err != nil {
		return err
	}
	if r.K <= 0 || r.K >= len(r.Answers) {
		return fmt.Errorf("k = %d must satisfy 1 <= k <= len(answers)-1 = %d", r.K, len(r.Answers)-1)
	}
	_, err := core.NewTopKWithGap(r.K, r.Epsilon, r.Monotonic)
	return err
}

func (topkMechanism) Cost(req Request) float64 { return req.Base().Epsilon }

func (topkMechanism) Execute(src rng.Source, req Request, scr *Scratch) (Response, error) {
	r, ok := req.(*TopKRequest)
	if !ok {
		return nil, errWrongRequestType("topk", req)
	}
	if scr == nil {
		scr = NewScratch()
	}
	// Value construction: RunScratch re-validates k and ε, so the allocating
	// constructor buys nothing on the hot path.
	mech := core.TopKWithGap{K: r.K, Epsilon: r.Epsilon, Monotonic: r.Monotonic}
	res, err := mech.RunScratch(src, r.Answers, &scr.TopK)
	if err != nil {
		return nil, err
	}
	return topkResponse(res, scr), nil
}

// UnitNoiseLen reports one unit-scale draw per answer (Algorithm 1 noises
// every query once).
func (topkMechanism) UnitNoiseLen(req Request) int {
	r, ok := req.(*TopKRequest)
	if !ok {
		return -1
	}
	return len(r.Answers)
}

func (topkMechanism) ExecuteUnitNoise(req Request, unit []float64, scr *Scratch) (Response, error) {
	r, ok := req.(*TopKRequest)
	if !ok {
		return nil, errWrongRequestType("topk", req)
	}
	if scr == nil {
		scr = NewScratch()
	}
	mech := core.TopKWithGap{K: r.K, Epsilon: r.Epsilon, Monotonic: r.Monotonic}
	res, err := mech.RunPrenoised(unit, r.Answers, &scr.TopK)
	if err != nil {
		return nil, err
	}
	return topkResponse(res, scr), nil
}

// topkResponse maps a core result onto the JSON response, backing the
// selections with the scratch.
func topkResponse(res *core.TopKResult, scr *Scratch) *TopKResponse {
	sels := scr.selectionsBuf(len(res.Selections))
	for _, sel := range res.Selections {
		sels = append(sels, SelectionJSON{Index: sel.Index, Gap: sel.Gap})
	}
	scr.selections = sels
	return &TopKResponse{Selections: sels}
}

//
// max — Noisy-Max-with-Gap (the k = 1 special case).
//

// MaxRequest is the body of POST /v1/max.
type MaxRequest struct {
	Common
}

// MaxResponse is the body of a successful POST /v1/max.
type MaxResponse struct {
	Billing
	// Index is the approximately largest query.
	Index int `json:"index"`
	// Gap is the noisy gap to the runner-up.
	Gap float64 `json:"gap"`
}

type maxMechanism struct{}

func (maxMechanism) Name() string        { return "max" }
func (maxMechanism) NewRequest() Request { return &MaxRequest{} }

func (maxMechanism) Validate(req Request, lim Limits) error {
	r, ok := req.(*MaxRequest)
	if !ok {
		return errWrongRequestType("max", req)
	}
	if err := r.Common.validate(lim); err != nil {
		return err
	}
	if len(r.Answers) < 2 {
		return errors.New("max needs at least 2 answers")
	}
	return nil
}

func (maxMechanism) Cost(req Request) float64 { return req.Base().Epsilon }

func (maxMechanism) Execute(src rng.Source, req Request, scr *Scratch) (Response, error) {
	r, ok := req.(*MaxRequest)
	if !ok {
		return nil, errWrongRequestType("max", req)
	}
	if scr == nil {
		scr = NewScratch()
	}
	// The k = 1 special case through the same scratch-backed run as topk;
	// the selection is copied out, so nothing in the response aliases scr.
	mech := core.TopKWithGap{K: 1, Epsilon: r.Epsilon, Monotonic: r.Monotonic}
	res, err := mech.RunScratch(src, r.Answers, &scr.TopK)
	if err != nil {
		return nil, err
	}
	return &MaxResponse{Index: res.Selections[0].Index, Gap: res.Selections[0].Gap}, nil
}

// UnitNoiseLen reports one unit-scale draw per answer.
func (maxMechanism) UnitNoiseLen(req Request) int {
	r, ok := req.(*MaxRequest)
	if !ok {
		return -1
	}
	return len(r.Answers)
}

func (maxMechanism) ExecuteUnitNoise(req Request, unit []float64, scr *Scratch) (Response, error) {
	r, ok := req.(*MaxRequest)
	if !ok {
		return nil, errWrongRequestType("max", req)
	}
	if scr == nil {
		scr = NewScratch()
	}
	mech := core.TopKWithGap{K: 1, Epsilon: r.Epsilon, Monotonic: r.Monotonic}
	res, err := mech.RunPrenoised(unit, r.Answers, &scr.TopK)
	if err != nil {
		return nil, err
	}
	return &MaxResponse{Index: res.Selections[0].Index, Gap: res.Selections[0].Gap}, nil
}

//
// svt — (Adaptive-)Sparse-Vector-with-Gap (Algorithm 2).
//

// SVTRequest is the body of POST /v1/svt.
type SVTRequest struct {
	Common
	// K is the number of above-threshold answers to provision for.
	K int `json:"k"`
	// Threshold is the public threshold.
	Threshold float64 `json:"threshold"`
	// Adaptive selects Adaptive-Sparse-Vector-with-Gap (Algorithm 2) instead
	// of plain Sparse-Vector-with-Gap.
	Adaptive bool `json:"adaptive,omitempty"`
}

// SVTAnswerJSON is one above-threshold answer in an SVTResponse.
type SVTAnswerJSON struct {
	// Index is the query's position in the request's answers.
	Index int `json:"index"`
	// Gap is the released noisy gap above the (noisy) threshold.
	Gap float64 `json:"gap"`
	// Estimate is gap + threshold, the selection-stage estimate of the answer.
	Estimate float64 `json:"estimate"`
	// Branch names the adaptive branch that answered: below, top or middle.
	Branch string `json:"branch"`
}

// SVTResponse is the body of a successful POST /v1/svt.
type SVTResponse struct {
	Billing
	// Above lists the above-threshold answers in stream order.
	Above []SVTAnswerJSON `json:"above"`
	// AboveCount is len(Above).
	AboveCount int `json:"above_count"`
	// QueriesProcessed is how far into the stream the mechanism got before
	// stopping.
	QueriesProcessed int `json:"queries_processed"`
	// MechanismSpent is the budget the mechanism consumed internally (the
	// adaptive variant may spend less than the reservation).
	MechanismSpent float64 `json:"mechanism_spent"`
}

type svtMechanism struct{}

func (svtMechanism) Name() string        { return "svt" }
func (svtMechanism) NewRequest() Request { return &SVTRequest{} }

func (svtMechanism) Validate(req Request, lim Limits) error {
	r, ok := req.(*SVTRequest)
	if !ok {
		return errWrongRequestType("svt", req)
	}
	if err := r.Common.validate(lim); err != nil {
		return err
	}
	if r.K <= 0 {
		return fmt.Errorf("k = %d must be positive", r.K)
	}
	if math.IsNaN(r.Threshold) || math.IsInf(r.Threshold, 0) {
		return fmt.Errorf("threshold %v must be finite", r.Threshold)
	}
	if !r.Adaptive {
		_, err := core.NewSVTWithGap(r.K, r.Epsilon, r.Threshold, r.Monotonic)
		return err
	}
	_, err := core.NewAdaptiveSVTWithGap(r.K, r.Epsilon, r.Threshold, r.Monotonic)
	return err
}

// Cost is the full reservation: the adaptive variant may spend less
// internally, but the tenant is charged the reservation so concurrent
// requests stay sound.
func (svtMechanism) Cost(req Request) float64 { return req.Base().Epsilon }

func (svtMechanism) Execute(src rng.Source, req Request, scr *Scratch) (Response, error) {
	r, ok := req.(*SVTRequest)
	if !ok {
		return nil, errWrongRequestType("svt", req)
	}
	if scr == nil {
		scr = NewScratch()
	}
	var (
		res *core.SVTGapResult
		err error
	)
	if r.Adaptive {
		mech := &core.AdaptiveSVTWithGap{
			K: r.K, Epsilon: r.Epsilon, Threshold: r.Threshold, Monotonic: r.Monotonic,
		}
		res, err = mech.RunScratch(src, r.Answers, &scr.SVT)
	} else {
		var mech *core.SVTWithGap
		mech, err = core.NewSVTWithGap(r.K, r.Epsilon, r.Threshold, r.Monotonic)
		if err == nil {
			res, err = mech.RunScratch(src, r.Answers, &scr.SVT)
		}
	}
	if err != nil {
		return nil, err
	}
	out := &SVTResponse{
		AboveCount:       res.AboveCount,
		QueriesProcessed: len(res.Items),
		MechanismSpent:   res.BudgetSpent,
	}
	above := scr.svtAnswersBuf(res.AboveCount)
	for _, it := range res.Items {
		if !it.Above {
			continue
		}
		above = append(above, SVTAnswerJSON{
			Index:    it.Index,
			Gap:      it.Gap,
			Estimate: it.Gap + r.Threshold,
			Branch:   it.Branch.String(),
		})
	}
	scr.svtAnswers = above
	out.Above = above
	return out, nil
}
