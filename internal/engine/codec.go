package engine

// Hand-rolled streaming codecs for the mechanism request/response types.
// encoding/json walks every struct through reflection and buffers through a
// pooled encodeState on every request; these codecs append straight into a
// Scratch-owned buffer and parse straight out of the request body, so the
// steady-state hot path touches no reflection and allocates no per-request
// codec machinery. Two invariants, pinned by golden and fuzz tests:
//
//   - Encoding is byte-identical to encoding/json (field order, omitempty,
//     float formatting, HTML escaping, invalid-UTF-8 replacement).
//   - Decoding accepts exactly what the serving layer's strict decoder
//     (json.Decoder + DisallowUnknownFields + the trailing-value check)
//     accepts, and produces the same request values: case-folded field
//     matching, last-field-wins duplicates (merging element-wise into
//     existing slices and pointers), null clearing reference fields but
//     leaving primitives unchanged, integer fields rejecting
//     fractions/exponents, and the same number grammar.
//
// Both directions cover only the built-in mechanism types; AppendResponse
// and DecodeRequest report ok = false for anything else and the caller falls
// back to encoding/json, so custom mechanisms keep working unchanged.

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
	"unsafe"
)

// ErrTrailingData reports a request body holding more than one JSON value;
// callers map it to the same error message the stdlib-backed decoder used.
var ErrTrailingData = errors.New("engine: trailing data after JSON value")

// errNonFinite reports a float the JSON encoding cannot represent; the
// caller falls back to encoding/json, which fails the same way it always
// did.
var errNonFinite = errors.New("engine: non-finite float in response")

//
// Encoding primitives — each replicates encoding/json's output exactly.
//

// hexDigits is the encoder's lowercase hex alphabet.
const hexDigits = "0123456789abcdef"

// AppendFloat appends f exactly as encoding/json renders a float64: shortest
// decimal form, %f style within [1e-6, 1e21), %e style with a trimmed
// single-digit exponent outside it. Non-finite floats error like
// json.Marshal does.
func AppendFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, errNonFinite
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Trim "e-05" to "e-5", matching the stdlib encoder.
		n := len(dst)
		if n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

// AppendString appends s as a JSON string exactly as encoding/json renders
// one with HTML escaping on (the http handlers' default): '<', '>', '&' and
// U+2028/U+2029 escaped, control characters as \uXXXX (with the \b \f \n \r
// \t shorthands), and invalid UTF-8 bytes replaced by U+FFFD.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i++
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendFloatField appends `,"<name>":<f>` (the name must need no escaping).
func appendFloatField(dst []byte, name string, f float64) ([]byte, error) {
	dst = append(dst, ',', '"')
	dst = append(dst, name...)
	dst = append(dst, '"', ':')
	return AppendFloat(dst, f)
}

// appendIntField appends `,"<name>":<n>`.
func appendIntField(dst []byte, name string, n int) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, name...)
	dst = append(dst, '"', ':')
	return strconv.AppendInt(dst, int64(n), 10)
}

//
// Response encoding.
//

// AppendResponse appends resp's JSON — byte-identical to json.Marshal — to
// dst. traceOff is the byte offset (into out) where a `,"trace":<...>`
// member may be spliced to produce exactly what json.Marshal would emit with
// Billing.Trace set; it sits right after the budget_remaining value. ok
// reports whether resp's concrete type has a codec — when false (a custom
// mechanism's type, or a response already carrying an inline trace) the
// caller must fall back to encoding/json. A non-nil err means the response
// is unencodable (non-finite float) and the caller should fall back too, for
// stdlib-identical error behaviour.
func AppendResponse(dst []byte, resp Response) (out []byte, traceOff int, ok bool, err error) {
	switch r := resp.(type) {
	case *TopKResponse:
		if r.Trace != nil {
			return dst, 0, false, nil
		}
		out, traceOff, err = appendTopKResponse(dst, r)
	case *MaxResponse:
		if r.Trace != nil {
			return dst, 0, false, nil
		}
		out, traceOff, err = appendMaxResponse(dst, r)
	case *SVTResponse:
		if r.Trace != nil {
			return dst, 0, false, nil
		}
		out, traceOff, err = appendSVTResponse(dst, r)
	case *PipelineTopKResponse:
		if r.Trace != nil {
			return dst, 0, false, nil
		}
		out, traceOff, err = appendPipelineTopKResponse(dst, r)
	case *PipelineSVTResponse:
		if r.Trace != nil {
			return dst, 0, false, nil
		}
		out, traceOff, err = appendPipelineSVTResponse(dst, r)
	default:
		return dst, 0, false, nil
	}
	return out, traceOff, true, err
}

// appendBillingOpen opens the response object with the embedded Billing
// fields (tenant, epsilon_spent, budget_remaining) and returns the offset
// where a trace member would splice in.
func appendBillingOpen(dst []byte, b *Billing) ([]byte, int, error) {
	dst = append(dst, `{"tenant":`...)
	dst = AppendString(dst, b.Tenant)
	var err error
	if dst, err = appendFloatField(dst, "epsilon_spent", b.EpsilonSpent); err != nil {
		return dst, 0, err
	}
	if dst, err = appendFloatField(dst, "budget_remaining", b.BudgetRemaining); err != nil {
		return dst, 0, err
	}
	return dst, len(dst), nil
}

func appendTopKResponse(dst []byte, r *TopKResponse) ([]byte, int, error) {
	dst, off, err := appendBillingOpen(dst, &r.Billing)
	if err != nil {
		return dst, 0, err
	}
	dst = append(dst, `,"selections":`...)
	if r.Selections == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range r.Selections {
			if i > 0 {
				dst = append(dst, ',')
			}
			s := &r.Selections[i]
			dst = append(dst, `{"index":`...)
			dst = strconv.AppendInt(dst, int64(s.Index), 10)
			if dst, err = appendFloatField(dst, "gap", s.Gap); err != nil {
				return dst, 0, err
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return append(dst, '}'), off, nil
}

func appendMaxResponse(dst []byte, r *MaxResponse) ([]byte, int, error) {
	dst, off, err := appendBillingOpen(dst, &r.Billing)
	if err != nil {
		return dst, 0, err
	}
	dst = appendIntField(dst, "index", r.Index)
	if dst, err = appendFloatField(dst, "gap", r.Gap); err != nil {
		return dst, 0, err
	}
	return append(dst, '}'), off, nil
}

func appendSVTResponse(dst []byte, r *SVTResponse) ([]byte, int, error) {
	dst, off, err := appendBillingOpen(dst, &r.Billing)
	if err != nil {
		return dst, 0, err
	}
	dst = append(dst, `,"above":`...)
	if r.Above == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range r.Above {
			if i > 0 {
				dst = append(dst, ',')
			}
			a := &r.Above[i]
			dst = append(dst, `{"index":`...)
			dst = strconv.AppendInt(dst, int64(a.Index), 10)
			if dst, err = appendFloatField(dst, "gap", a.Gap); err != nil {
				return dst, 0, err
			}
			if dst, err = appendFloatField(dst, "estimate", a.Estimate); err != nil {
				return dst, 0, err
			}
			dst = append(dst, `,"branch":`...)
			dst = AppendString(dst, a.Branch)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = appendIntField(dst, "above_count", r.AboveCount)
	dst = appendIntField(dst, "queries_processed", r.QueriesProcessed)
	if dst, err = appendFloatField(dst, "mechanism_spent", r.MechanismSpent); err != nil {
		return dst, 0, err
	}
	return append(dst, '}'), off, nil
}

func appendPipelineTopKResponse(dst []byte, r *PipelineTopKResponse) ([]byte, int, error) {
	dst, off, err := appendBillingOpen(dst, &r.Billing)
	if err != nil {
		return dst, 0, err
	}
	dst = append(dst, `,"estimates":`...)
	if r.Estimates == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range r.Estimates {
			if i > 0 {
				dst = append(dst, ',')
			}
			e := &r.Estimates[i]
			dst = append(dst, `{"index":`...)
			dst = strconv.AppendInt(dst, int64(e.Index), 10)
			if dst, err = appendFloatField(dst, "measured", e.Measured); err != nil {
				return dst, 0, err
			}
			if dst, err = appendFloatField(dst, "refined", e.Refined); err != nil {
				return dst, 0, err
			}
			if dst, err = appendFloatField(dst, "gap", e.Gap); err != nil {
				return dst, 0, err
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if dst, err = appendFloatField(dst, "measurement_variance", r.MeasurementVariance); err != nil {
		return dst, 0, err
	}
	if dst, err = appendFloatField(dst, "theoretical_error_ratio", r.TheoreticalErrorRatio); err != nil {
		return dst, 0, err
	}
	return append(dst, '}'), off, nil
}

func appendPipelineSVTResponse(dst []byte, r *PipelineSVTResponse) ([]byte, int, error) {
	dst, off, err := appendBillingOpen(dst, &r.Billing)
	if err != nil {
		return dst, 0, err
	}
	dst = append(dst, `,"estimates":`...)
	if r.Estimates == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range r.Estimates {
			if i > 0 {
				dst = append(dst, ',')
			}
			e := &r.Estimates[i]
			dst = append(dst, `{"index":`...)
			dst = strconv.AppendInt(dst, int64(e.Index), 10)
			dst = append(dst, `,"branch":`...)
			dst = AppendString(dst, e.Branch)
			if dst, err = appendFloatField(dst, "gap_estimate", e.GapEstimate); err != nil {
				return dst, 0, err
			}
			if dst, err = appendFloatField(dst, "measured", e.Measured); err != nil {
				return dst, 0, err
			}
			if dst, err = appendFloatField(dst, "combined", e.Combined); err != nil {
				return dst, 0, err
			}
			if dst, err = appendFloatField(dst, "combined_variance", e.CombinedVariance); err != nil {
				return dst, 0, err
			}
			if dst, err = appendFloatField(dst, "lower_bound", e.LowerBound); err != nil {
				return dst, 0, err
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = appendIntField(dst, "above_count", r.AboveCount)
	if dst, err = appendFloatField(dst, "mechanism_spent", r.MechanismSpent); err != nil {
		return dst, 0, err
	}
	if dst, err = appendFloatField(dst, "selection_remaining", r.SelectionRemaining); err != nil {
		return dst, 0, err
	}
	return append(dst, '}'), off, nil
}

//
// Request decoding.
//

// DecodeRequest parses data into a request for mech with the serving layer's
// strict semantics — json.Decoder + DisallowUnknownFields + the
// one-value-per-body check — reusing scr's buffers when it is non-nil (the
// returned request then aliases the scratch and must be consumed before the
// scratch is reused). ok reports whether mech has a hand-rolled codec; when
// false the caller must fall back to encoding/json. An empty body returns
// io.EOF and a trailing second value returns ErrTrailingData, so callers can
// keep their existing error mapping.
func DecodeRequest(mech Mechanism, data []byte, scr *Scratch) (req Request, ok bool, err error) {
	switch mech.(type) {
	case topkMechanism:
		r := &TopKRequest{}
		if scr != nil {
			scr.topk = TopKRequest{}
			r = &scr.topk
		}
		p := jsonParser{data: data, scr: scr}
		err = p.topLevel(func() error {
			return p.requestObject(&r.Common, func(key []byte) (bool, error) {
				if keyIs(key, "k") {
					return true, p.intField(&r.K)
				}
				return false, nil
			})
		})
		return r, true, err
	case maxMechanism:
		r := &MaxRequest{}
		if scr != nil {
			scr.max = MaxRequest{}
			r = &scr.max
		}
		p := jsonParser{data: data, scr: scr}
		err = p.topLevel(func() error {
			return p.requestObject(&r.Common, nil)
		})
		return r, true, err
	case svtMechanism:
		r := &SVTRequest{}
		if scr != nil {
			scr.svt = SVTRequest{}
			r = &scr.svt
		}
		p := jsonParser{data: data, scr: scr}
		err = p.topLevel(func() error {
			return p.requestObject(&r.Common, func(key []byte) (bool, error) {
				switch {
				case keyIs(key, "k"):
					return true, p.intField(&r.K)
				case keyIs(key, "threshold"):
					return true, p.floatField(&r.Threshold)
				case keyIs(key, "adaptive"):
					return true, p.boolField(&r.Adaptive)
				}
				return false, nil
			})
		})
		return r, true, err
	case pipelineTopKMechanism:
		r := &PipelineTopKRequest{}
		if scr != nil {
			scr.ptopk = PipelineTopKRequest{}
			r = &scr.ptopk
		}
		p := jsonParser{data: data, scr: scr}
		err = p.topLevel(func() error {
			return p.requestObject(&r.Common, func(key []byte) (bool, error) {
				switch {
				case keyIs(key, "k"):
					return true, p.intField(&r.K)
				case keyIs(key, "select_fraction"):
					return true, p.floatField(&r.SelectFraction)
				}
				return false, nil
			})
		})
		return r, true, err
	case pipelineSVTMechanism:
		r := &PipelineSVTRequest{}
		if scr != nil {
			scr.psvt = PipelineSVTRequest{}
			r = &scr.psvt
		}
		p := jsonParser{data: data, scr: scr}
		err = p.topLevel(func() error {
			return p.requestObject(&r.Common, func(key []byte) (bool, error) {
				switch {
				case keyIs(key, "k"):
					return true, p.intField(&r.K)
				case keyIs(key, "threshold"):
					return true, p.floatField(&r.Threshold)
				case keyIs(key, "select_fraction"):
					return true, p.floatField(&r.SelectFraction)
				case keyIs(key, "adaptive"):
					return true, p.boolField(&r.Adaptive)
				case keyIs(key, "confidence"):
					return true, p.floatField(&r.Confidence)
				}
				return false, nil
			})
		})
		return r, true, err
	default:
		return nil, false, nil
	}
}

// keyIs reports whether an (unescaped) object key matches the lowercase
// field name under encoding/json's case folding: ASCII letters fold
// case-insensitively, and the two special Unicode points the stdlib folds —
// U+017F (ſ → s) and U+212A (K → k) — match their ASCII letters.
func keyIs(key []byte, name string) bool {
	i := 0
	for j := 0; j < len(name); j++ {
		if i >= len(key) {
			return false
		}
		c := key[i]
		switch {
		case c == name[j]:
			i++
		case c >= 'A' && c <= 'Z' && c+'a'-'A' == name[j]:
			i++
		case c == 0xC5 && i+1 < len(key) && key[i+1] == 0xBF && name[j] == 's':
			i += 2 // U+017F LATIN SMALL LETTER LONG S
		case c == 0xE2 && i+2 < len(key) && key[i+1] == 0x84 && key[i+2] == 0xAA && name[j] == 'k':
			i += 3 // U+212A KELVIN SIGN
		default:
			return false
		}
	}
	return i == len(key)
}

// bstr views b as a string without copying; the result must not outlive b.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// jsonParser is a strict single-value JSON parser over a complete body.
type jsonParser struct {
	data []byte
	pos  int
	scr  *Scratch // optional buffer donor

	key []byte // reused key scratch when scr == nil
	str []byte // reused string-value scratch when scr == nil
}

func (p *jsonParser) syntaxErr(msg string) error {
	return fmt.Errorf("invalid request JSON at offset %d: %s", p.pos, msg)
}

func (p *jsonParser) skipWS() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

// consume advances past c if it is the next byte.
func (p *jsonParser) consume(c byte) bool {
	if p.pos < len(p.data) && p.data[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// maybeNull consumes a leading "null" literal, reporting whether it did.
// JSON null leaves primitive targets unchanged but clears slice and pointer
// fields to nil (the caller does the clearing), exactly like encoding/json.
func (p *jsonParser) maybeNull() bool {
	if len(p.data)-p.pos >= 4 && string(p.data[p.pos:p.pos+4]) == "null" {
		p.pos += 4
		return true
	}
	return false
}

// topLevel parses the one-and-only top-level value: an object via parseObj,
// or a bare null (a no-op, as encoding/json treats null into a struct
// pointer). It then enforces the serving layer's trailing-value rule, which
// replicates json.Decoder.More exactly: anything after the value is an
// error, except a stray ']' or '}' — More peeks one byte and reports false
// for both, so the stdlib-backed decoder accepted such bodies and this one
// must too.
func (p *jsonParser) topLevel(parseObj func() error) error {
	p.skipWS()
	if p.pos >= len(p.data) {
		return io.EOF
	}
	if p.maybeNull() {
		// Bare null: the request stays zero; validation rejects it later,
		// exactly like the stdlib path.
	} else if err := parseObj(); err != nil {
		return err
	}
	p.skipWS()
	if p.pos < len(p.data) && p.data[p.pos] != ']' && p.data[p.pos] != '}' {
		return ErrTrailingData
	}
	return nil
}

// object parses a JSON object, dispatching each (unescaped, folded) key to
// field; an unhandled key is an unknown-field error, matching
// DisallowUnknownFields.
func (p *jsonParser) object(field func(key []byte) (bool, error)) error {
	p.skipWS()
	if !p.consume('{') {
		return p.syntaxErr("expected an object")
	}
	p.skipWS()
	if p.consume('}') {
		return nil
	}
	for {
		p.skipWS()
		key, err := p.stringContents(p.keyBuf())
		p.setKeyBuf(key)
		if err != nil {
			return err
		}
		p.skipWS()
		if !p.consume(':') {
			return p.syntaxErr("expected ':' after object key")
		}
		p.skipWS()
		handled, err := field(key)
		if err != nil {
			return err
		}
		if !handled {
			return fmt.Errorf("json: unknown field %q", key)
		}
		p.skipWS()
		if p.consume(',') {
			continue
		}
		if p.consume('}') {
			return nil
		}
		return p.syntaxErr("expected ',' or '}' in object")
	}
}

func (p *jsonParser) keyBuf() []byte {
	if p.scr != nil {
		return p.scr.key
	}
	return p.key
}

func (p *jsonParser) setKeyBuf(b []byte) {
	if p.scr != nil {
		p.scr.key = b
	} else {
		p.key = b
	}
}

func (p *jsonParser) strBuf() []byte {
	if p.scr != nil {
		return p.scr.str
	}
	return p.str
}

func (p *jsonParser) setStrBuf(b []byte) {
	if p.scr != nil {
		p.scr.str = b
	} else {
		p.str = b
	}
}

// stringContents parses a JSON string into buf (reused, returned possibly
// regrown), replicating encoding/json's unquoting: the full escape table,
// surrogate-pair decoding with U+FFFD for unpaired halves, U+FFFD for
// invalid UTF-8 bytes, and errors for control characters and bad escapes.
func (p *jsonParser) stringContents(buf []byte) ([]byte, error) {
	d := p.data
	if p.pos >= len(d) || d[p.pos] != '"' {
		return buf, p.syntaxErr("expected a string")
	}
	p.pos++
	buf = buf[:0]
	for p.pos < len(d) {
		c := d[p.pos]
		switch {
		case c == '"':
			p.pos++
			return buf, nil
		case c == '\\':
			p.pos++
			if p.pos >= len(d) {
				return buf, p.syntaxErr("unexpected end of string escape")
			}
			e := d[p.pos]
			p.pos++
			switch e {
			case '"', '\\', '/':
				buf = append(buf, e)
			case 'b':
				buf = append(buf, '\b')
			case 'f':
				buf = append(buf, '\f')
			case 'n':
				buf = append(buf, '\n')
			case 'r':
				buf = append(buf, '\r')
			case 't':
				buf = append(buf, '\t')
			case 'u':
				r, err := p.hex4()
				if err != nil {
					return buf, err
				}
				if utf16.IsSurrogate(r) {
					// A valid \uXXXX low surrogate immediately after combines
					// into one rune; anything else renders this half as
					// U+FFFD and reprocesses what follows on its own, exactly
					// like the stdlib unquoter.
					if p.pos+6 <= len(d) && d[p.pos] == '\\' && d[p.pos+1] == 'u' {
						save := p.pos
						p.pos += 2
						r2, err := p.hex4()
						if err == nil {
							if dec := utf16.DecodeRune(r, r2); dec != unicode.ReplacementChar {
								buf = utf8.AppendRune(buf, dec)
								continue
							}
						}
						p.pos = save
					}
					buf = utf8.AppendRune(buf, unicode.ReplacementChar)
				} else {
					buf = utf8.AppendRune(buf, r)
				}
			default:
				return buf, p.syntaxErr("invalid escape in string literal")
			}
		case c < 0x20:
			return buf, p.syntaxErr("control character in string literal")
		case c < utf8.RuneSelf:
			buf = append(buf, c)
			p.pos++
		default:
			r, size := utf8.DecodeRune(d[p.pos:])
			if r == utf8.RuneError && size == 1 {
				buf = utf8.AppendRune(buf, unicode.ReplacementChar)
				p.pos++
			} else {
				buf = append(buf, d[p.pos:p.pos+size]...)
				p.pos += size
			}
		}
	}
	return buf, p.syntaxErr("unterminated string literal")
}

// hex4 parses four hex digits into a rune.
func (p *jsonParser) hex4() (rune, error) {
	if p.pos+4 > len(p.data) {
		return 0, p.syntaxErr("truncated \\u escape")
	}
	var r rune
	for i := 0; i < 4; i++ {
		c := p.data[p.pos+i]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 + rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 + rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 + rune(c-'A'+10)
		default:
			return 0, p.syntaxErr("invalid \\u escape")
		}
	}
	p.pos += 4
	return r, nil
}

// numberLit scans one number token under the JSON grammar (no leading
// zeros, no bare '.', mandatory digits after '.', 'e'), returning the
// literal bytes.
func (p *jsonParser) numberLit() ([]byte, error) {
	d := p.data
	start := p.pos
	if p.pos < len(d) && d[p.pos] == '-' {
		p.pos++
	}
	switch {
	case p.pos < len(d) && d[p.pos] == '0':
		p.pos++
	case p.pos < len(d) && d[p.pos] >= '1' && d[p.pos] <= '9':
		for p.pos < len(d) && d[p.pos] >= '0' && d[p.pos] <= '9' {
			p.pos++
		}
	default:
		return nil, p.syntaxErr("expected a number")
	}
	if p.pos < len(d) && d[p.pos] == '.' {
		p.pos++
		if p.pos >= len(d) || d[p.pos] < '0' || d[p.pos] > '9' {
			return nil, p.syntaxErr("expected digits after decimal point")
		}
		for p.pos < len(d) && d[p.pos] >= '0' && d[p.pos] <= '9' {
			p.pos++
		}
	}
	if p.pos < len(d) && (d[p.pos] == 'e' || d[p.pos] == 'E') {
		p.pos++
		if p.pos < len(d) && (d[p.pos] == '+' || d[p.pos] == '-') {
			p.pos++
		}
		if p.pos >= len(d) || d[p.pos] < '0' || d[p.pos] > '9' {
			return nil, p.syntaxErr("expected digits in exponent")
		}
		for p.pos < len(d) && d[p.pos] >= '0' && d[p.pos] <= '9' {
			p.pos++
		}
	}
	return d[start:p.pos], nil
}

// floatField parses a number (or null) into f.
func (p *jsonParser) floatField(f *float64) error {
	if p.maybeNull() {
		return nil
	}
	lit, err := p.numberLit()
	if err != nil {
		return err
	}
	v, err := strconv.ParseFloat(bstr(lit), 64)
	if err != nil {
		return fmt.Errorf("cannot unmarshal number %s into a float64", lit)
	}
	*f = v
	return nil
}

// intField parses an integer number (or null) into n; fractions and
// exponents are rejected exactly as encoding/json rejects them for integer
// Go fields.
func (p *jsonParser) intField(n *int) error {
	if p.maybeNull() {
		return nil
	}
	lit, err := p.numberLit()
	if err != nil {
		return err
	}
	v, err := strconv.ParseInt(bstr(lit), 10, 64)
	if err != nil {
		return fmt.Errorf("cannot unmarshal number %s into an int", lit)
	}
	*n = int(v)
	return nil
}

// boolField parses true/false (or null) into b.
func (p *jsonParser) boolField(b *bool) error {
	switch {
	case p.maybeNull():
		return nil
	case len(p.data)-p.pos >= 4 && string(p.data[p.pos:p.pos+4]) == "true":
		p.pos += 4
		*b = true
		return nil
	case len(p.data)-p.pos >= 5 && string(p.data[p.pos:p.pos+5]) == "false":
		p.pos += 5
		*b = false
		return nil
	default:
		return p.syntaxErr("expected a boolean")
	}
}

// stringField parses a string (or null) into s as a standalone heap string —
// tenant and dataset names are retained by registries past the request's
// lifetime, so they must not alias a pooled buffer.
func (p *jsonParser) stringField(s *string) error {
	if p.maybeNull() {
		return nil
	}
	buf, err := p.stringContents(p.strBuf())
	p.setStrBuf(buf)
	if err != nil {
		return err
	}
	*s = string(buf)
	return nil
}

// floatsValue parses an array of numbers (or null) into the scratch-backed
// answers buffer. An empty array yields an empty non-nil slice and null sets
// the field nil, like encoding/json.
func (p *jsonParser) floatsValue(out *[]float64) error {
	if p.maybeNull() {
		*out = nil
		return nil
	}
	p.skipWS()
	if !p.consume('[') {
		return p.syntaxErr("expected an array of numbers")
	}
	var buf []float64
	if p.scr != nil {
		buf = p.scr.answers
	}
	if buf == nil {
		buf = make([]float64, 0, 16)
	}
	buf = buf[:0]
	defer func() {
		if p.scr != nil {
			p.scr.answers = buf
		}
		*out = buf
	}()
	p.skipWS()
	if p.consume(']') {
		return nil
	}
	for {
		p.skipWS()
		if p.maybeNull() {
			buf = append(buf, 0)
		} else {
			lit, err := p.numberLit()
			if err != nil {
				return err
			}
			v, err := strconv.ParseFloat(bstr(lit), 64)
			if err != nil {
				return fmt.Errorf("cannot unmarshal number %s into a float64", lit)
			}
			buf = append(buf, v)
		}
		p.skipWS()
		if p.consume(',') {
			continue
		}
		if p.consume(']') {
			return nil
		}
		return p.syntaxErr("expected ',' or ']' in array")
	}
}

// itemsValue parses an array of int32 item ids (or null) into the
// scratch-backed items buffer; it backs only the root spec's items list, so
// one pooled buffer per request suffices.
func (p *jsonParser) itemsValue(out *[]int32) error {
	if p.maybeNull() {
		*out = nil
		return nil
	}
	p.skipWS()
	if !p.consume('[') {
		return p.syntaxErr("expected an array of item ids")
	}
	var buf []int32
	if p.scr != nil {
		buf = p.scr.items
	}
	if buf == nil {
		buf = make([]int32, 0, 16)
	}
	buf = buf[:0]
	defer func() {
		if p.scr != nil {
			p.scr.items = buf
		}
		*out = buf
	}()
	p.skipWS()
	if p.consume(']') {
		return nil
	}
	for {
		p.skipWS()
		if p.maybeNull() {
			buf = append(buf, 0)
		} else {
			lit, err := p.numberLit()
			if err != nil {
				return err
			}
			v, err := strconv.ParseInt(bstr(lit), 10, 64)
			if err != nil || v > math.MaxInt32 || v < math.MinInt32 {
				return fmt.Errorf("cannot unmarshal number %s into an int32", lit)
			}
			buf = append(buf, int32(v))
		}
		p.skipWS()
		if p.consume(',') {
			continue
		}
		if p.consume(']') {
			return nil
		}
		return p.syntaxErr("expected ',' or ']' in array")
	}
}

// itemsHeap parses an array of int32 item ids (or null) into a heap slice,
// reusing *out's backing array like encoding/json does — nested spec item
// lists cannot share the one pooled items buffer the root spec uses.
func (p *jsonParser) itemsHeap(out *[]int32) error {
	if p.maybeNull() {
		*out = nil
		return nil
	}
	p.skipWS()
	if !p.consume('[') {
		return p.syntaxErr("expected an array of item ids")
	}
	buf := (*out)[:0]
	if buf == nil {
		buf = make([]int32, 0, 8)
	}
	defer func() { *out = buf }()
	p.skipWS()
	if p.consume(']') {
		return nil
	}
	for {
		p.skipWS()
		if p.maybeNull() {
			buf = append(buf, 0)
		} else {
			lit, err := p.numberLit()
			if err != nil {
				return err
			}
			v, err := strconv.ParseInt(bstr(lit), 10, 64)
			if err != nil || v > math.MaxInt32 || v < math.MinInt32 {
				return fmt.Errorf("cannot unmarshal number %s into an int32", lit)
			}
			buf = append(buf, int32(v))
		}
		p.skipWS()
		if p.consume(',') {
			continue
		}
		if p.consume(']') {
			return nil
		}
		return p.syntaxErr("expected ',' or ']' in array")
	}
}

// queriesValue parses the query-spec object (or null) into c.Queries. The
// first occurrence points the field at a freshly reset spec; a duplicate key
// decodes into the same spec without resetting it, and null clears the
// field, replicating encoding/json's pointer behaviour.
func (p *jsonParser) queriesValue(c *Common) error {
	if p.maybeNull() {
		c.Queries = nil
		return nil
	}
	if c.Queries == nil {
		if p.scr != nil {
			p.scr.query = QuerySpec{}
			c.Queries = &p.scr.query
		} else {
			c.Queries = &QuerySpec{}
		}
	}
	return p.specObject(c.Queries, true)
}

// specObject parses one query-spec object into q, merging into whatever q
// already holds (duplicate keys and re-decoded operands behave like
// encoding/json). root marks the request's top-level spec, whose items list
// may borrow the pooled scratch buffer; nested specs allocate on the heap.
func (p *jsonParser) specObject(q *QuerySpec, root bool) error {
	return p.object(func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "kind"):
			return true, p.stringKind(&q.Kind)
		case keyIs(key, "items"):
			if root {
				return true, p.itemsValue(&q.Items)
			}
			return true, p.itemsHeap(&q.Items)
		case keyIs(key, "where"):
			return true, p.whereValue(q)
		case keyIs(key, "min_count"):
			return true, p.floatField(&q.MinCount)
		case keyIs(key, "max_count"):
			return true, p.floatField(&q.MaxCount)
		case keyIs(key, "of"):
			return true, p.ofValue(&q.Of)
		case keyIs(key, "dataset"):
			return true, p.stringField(&q.Dataset)
		case keyIs(key, "on"):
			return true, p.specPtrValue(&q.On)
		}
		return false, nil
	})
}

// whereValue parses the record predicate (or null) into q.Where, with the
// same merge/clear pointer semantics as queriesValue.
func (p *jsonParser) whereValue(q *QuerySpec) error {
	if p.maybeNull() {
		q.Where = nil
		return nil
	}
	if q.Where == nil {
		q.Where = &RecordPredicate{}
	}
	w := q.Where
	return p.object(func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "contains"):
			return true, p.itemsHeap(&w.Contains)
		case keyIs(key, "min_len"):
			return true, p.intField(&w.MinLen)
		case keyIs(key, "max_len"):
			return true, p.intField(&w.MaxLen)
		}
		return false, nil
	})
}

// specPtrValue parses a nested spec object (or null) into *out, merging into
// an existing spec and clearing on null like encoding/json.
func (p *jsonParser) specPtrValue(out **QuerySpec) error {
	if p.maybeNull() {
		*out = nil
		return nil
	}
	if *out == nil {
		*out = &QuerySpec{}
	}
	return p.specObject(*out, false)
}

// ofValue parses the operand array (or null) into *out with encoding/json's
// array-into-slice semantics: the existing backing array is reused, element
// i merges into the existing *QuerySpec at i (a null element clears it), and
// the slice is truncated to the decoded length.
func (p *jsonParser) ofValue(out *[]*QuerySpec) error {
	if p.maybeNull() {
		*out = nil
		return nil
	}
	p.skipWS()
	if !p.consume('[') {
		return p.syntaxErr("expected an array of query specs")
	}
	old := *out
	buf := old[:0]
	if buf == nil {
		buf = []*QuerySpec{}
	}
	defer func() { *out = buf }()
	p.skipWS()
	if p.consume(']') {
		return nil
	}
	for {
		p.skipWS()
		var el *QuerySpec
		if len(buf) < len(old) {
			el = old[len(buf)]
		}
		if p.maybeNull() {
			el = nil
		} else {
			if el == nil {
				el = &QuerySpec{}
			}
			if err := p.specObject(el, false); err != nil {
				return err
			}
		}
		buf = append(buf, el)
		p.skipWS()
		if p.consume(',') {
			continue
		}
		if p.consume(']') {
			return nil
		}
		return p.syntaxErr("expected ',' or ']' in array")
	}
}

// stringKind is stringField specialised for QuerySpec.Kind: the known kinds
// assign the package constants, so the common case allocates nothing.
func (p *jsonParser) stringKind(s *string) error {
	if p.maybeNull() {
		return nil
	}
	buf, err := p.stringContents(p.strBuf())
	p.setStrBuf(buf)
	if err != nil {
		return err
	}
	switch bstr(buf) {
	case QueryAllItems:
		*s = QueryAllItems
	case QueryItemCount:
		*s = QueryItemCount
	case QueryFilter:
		*s = QueryFilter
	case QueryThreshold:
		*s = QueryThreshold
	case QueryUnion:
		*s = QueryUnion
	case QueryIntersect:
		*s = QueryIntersect
	case QueryMinus:
		*s = QueryMinus
	case QueryJoin:
		*s = QueryJoin
	default:
		*s = string(buf)
	}
	return nil
}

// commonField dispatches one key against the embedded Common fields.
func (p *jsonParser) commonField(key []byte, c *Common) (bool, error) {
	switch {
	case keyIs(key, "tenant"):
		return true, p.stringField(&c.Tenant)
	case keyIs(key, "epsilon"):
		return true, p.floatField(&c.Epsilon)
	case keyIs(key, "answers"):
		return true, p.floatsValue(&c.Answers)
	case keyIs(key, "monotonic"):
		return true, p.boolField(&c.Monotonic)
	case keyIs(key, "dataset"):
		return true, p.stringField(&c.Dataset)
	case keyIs(key, "queries"):
		return true, p.queriesValue(c)
	}
	return false, nil
}

// requestObject parses the request object: Common fields plus the
// mechanism's own via extra.
func (p *jsonParser) requestObject(c *Common, extra func(key []byte) (bool, error)) error {
	return p.object(func(key []byte) (bool, error) {
		if handled, err := p.commonField(key, c); handled || err != nil {
			return handled, err
		}
		if extra == nil {
			return false, nil
		}
		return extra(key)
	})
}
