// Command dpserver runs the multi-tenant differentially private query
// service: a long-lived HTTP/JSON server exposing the library's free-gap
// mechanisms to remote clients, each drawing from its own privacy budget.
//
// Usage:
//
//	dpserver -addr :8080 -budget 10 -workers 8
//	dpserver -addr :8080 -seed 42 -workers 1   # fully deterministic (testing)
//	dpserver -preload sales=/data/bmspos.dat -preload-synthetic demo=kosarak:100
//	dpserver -state-dir /var/lib/dpserver          # durable budgets & datasets
//	dpserver -state-dir /var/lib/dpserver -fsync always
//	dpserver -state-dir /var/lib/dpserver -mmap-datasets  # mmap dataset arenas on restart
//	dpserver -access-log -slow-ms 250 -debug       # JSON access logs + pprof
//
// Endpoints (one per mechanism registered in the engine, plus operations):
//
//	POST /v1/topk                  Noisy-Top-K-with-Gap selection
//	POST /v1/max                   Noisy-Max-with-Gap
//	POST /v1/svt                   (Adaptive-)Sparse-Vector-with-Gap
//	POST /v1/pipeline/topk         Section 5.2 select–measure–refine pipeline
//	POST /v1/pipeline/svt          Section 6.2 threshold pipeline
//	POST /v1/batch                 batched requests, one atomic multi-charge
//	POST /v1/datasets              catalogue a dataset (FIMI upload or synthetic)
//	GET  /v1/datasets              list catalogued datasets
//	GET  /v1/datasets/{name}       one dataset's stats and counters
//	POST /v1/datasets/{name}/append  append FIMI transactions; counts update incrementally
//	POST /v1/monitors              register a served SVT threshold monitor
//	GET  /v1/monitors              list monitors
//	GET  /v1/monitors/{id}         one monitor's state and budget
//	GET  /v1/monitors/{id}/stream  the monitor's verdicts as Server-Sent Events
//	GET  /v1/tenants/{id}/budget   a tenant's budget ledger with breakdown
//	GET  /healthz                  liveness
//	GET  /metrics                  Prometheus text exposition
//
// Example request with inline answers:
//
//	curl -s localhost:8080/v1/topk -d '{
//	  "tenant": "acme", "k": 3, "epsilon": 1.0, "monotonic": true,
//	  "answers": [812, 641, 633, 601, 425, 124, 77, 8]
//	}'
//
// Example dataset-backed request (the server holds the data — the paper's
// curator model — and answers counting queries from item counts cached at
// registration):
//
//	curl -s localhost:8080/v1/topk -d '{
//	  "tenant": "acme", "k": 3, "epsilon": 1.0,
//	  "dataset": "sales", "queries": {"kind": "all_items"}
//	}'
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	freegap "github.com/freegap/freegap"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dpserver:", err)
		os.Exit(1)
	}
}

// options is the parsed command line: the server configuration plus the
// durability settings that construct Config.Persist in run.
type options struct {
	freegap.ServerConfig
	// StateDir is the durable state directory; empty means in-memory only.
	StateDir string
	// Fsync is the WAL durability mode (batch, always or off).
	Fsync freegap.FsyncMode
}

func parseConfig(args []string) (options, error) {
	fs := flag.NewFlagSet("dpserver", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		budget     = fs.Float64("budget", 10.0, "initial privacy budget (epsilon) provisioned to each tenant")
		workers    = fs.Int("workers", 0, "mechanism worker pool size (0 = GOMAXPROCS)")
		seed       = fs.Uint64("seed", 0, "noise seed; 0 draws a fresh seed from crypto/rand, a fixed value with -workers 1 is deterministic")
		maxAns     = fs.Int("max-answers", 0, "maximum answers per request (0 = default)")
		maxBody    = fs.Int64("max-body", 0, "maximum request body bytes (0 = default)")
		maxTenants = fs.Int("max-tenants", 0, "maximum auto-provisioned tenants (0 = default)")
		stateDir   = fs.String("state-dir", "", "directory for durable state (WAL + snapshots); empty = in-memory only, a restart refunds all spent budget")
		mmapData   = fs.Bool("mmap-datasets", false, "persist each dataset's columnar arena into the state dir and mmap it back on restart, skipping the item-count rescan (needs -state-dir)")
		noSkip     = fs.Bool("no-query-skipping", false, "disable zone-sketch data skipping: composite filter queries scan every record block (results are identical either way)")
		scanWork   = fs.Int("scan-workers", 0, "max goroutines per filter-query scan (0 = GOMAXPROCS, 1 = serial; results are identical either way)")
		fsyncMode  = fs.String("fsync", "batch", "WAL durability: batch (group fsync off the hot path), always (fsync per charge), off")
		debug      = fs.Bool("debug", false, "mount /debug/pprof and runtime gauges on /metrics")
		accessLog  = fs.Bool("access-log", false, "log one structured JSON record per request to stderr")
		slowMs     = fs.Int("slow-ms", 0, "log requests slower than this many milliseconds even without -access-log (0 = 1000, negative disables)")
		preloads   []freegap.DatasetPreload
	)
	fs.Func("preload", "name=path: serve the FIMI-format dataset file under the given name (repeatable)", func(v string) error {
		p, err := parsePreloadFile(v)
		if err == nil {
			preloads = append(preloads, p)
		}
		return err
	})
	fs.Func("preload-synthetic", "name=kind[:scale[:seed]]: serve a synthetic dataset (bmspos, kosarak or t40i10d100k) under the given name (repeatable)", func(v string) error {
		p, err := parsePreloadSynthetic(v)
		if err == nil {
			preloads = append(preloads, p)
		}
		return err
	})
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	mode, err := freegap.ParseFsyncMode(*fsyncMode)
	if err != nil {
		return options{}, err
	}
	cfg := freegap.ServerConfig{
		Addr:                 *addr,
		TenantBudget:         *budget,
		Workers:              *workers,
		Seed:                 *seed,
		MaxAnswers:           *maxAns,
		MaxBodyBytes:         *maxBody,
		MaxTenants:           *maxTenants,
		Preload:              preloads,
		Debug:                *debug,
		MmapDatasets:         *mmapData,
		DisableQuerySkipping: *noSkip,
		ScanWorkers:          *scanWork,
	}
	if *accessLog {
		cfg.AccessLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	switch {
	case *slowMs < 0:
		cfg.SlowRequestThreshold = -1
	case *slowMs > 0:
		cfg.SlowRequestThreshold = time.Duration(*slowMs) * time.Millisecond
	}
	return options{
		ServerConfig: cfg,
		StateDir:     *stateDir,
		Fsync:        mode,
	}, nil
}

// parsePreloadFile parses a -preload value of the form name=path.
func parsePreloadFile(v string) (freegap.DatasetPreload, error) {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return freegap.DatasetPreload{}, fmt.Errorf("-preload %q: want name=path", v)
	}
	return freegap.DatasetPreload{Name: name, Path: path}, nil
}

// parsePreloadSynthetic parses a -preload-synthetic value of the form
// name=kind[:scale[:seed]].
func parsePreloadSynthetic(v string) (freegap.DatasetPreload, error) {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" || spec == "" {
		return freegap.DatasetPreload{}, fmt.Errorf("-preload-synthetic %q: want name=kind[:scale[:seed]]", v)
	}
	parts := strings.Split(spec, ":")
	if len(parts) > 3 {
		return freegap.DatasetPreload{}, fmt.Errorf("-preload-synthetic %q: want name=kind[:scale[:seed]]", v)
	}
	p := freegap.DatasetPreload{Name: name, Synthetic: parts[0]}
	if len(parts) >= 2 {
		scale, err := strconv.Atoi(parts[1])
		if err != nil || scale < 1 {
			return freegap.DatasetPreload{}, fmt.Errorf("-preload-synthetic %q: bad scale %q", v, parts[1])
		}
		p.Scale = scale
	}
	if len(parts) == 3 {
		seed, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return freegap.DatasetPreload{}, fmt.Errorf("-preload-synthetic %q: bad seed %q", v, parts[2])
		}
		p.Seed = seed
	}
	return p, nil
}

// run builds the server from args and serves until ctx is cancelled, then
// shuts down gracefully. The actual listen address is announced on out so
// callers binding to ":0" can discover the port.
func run(ctx context.Context, args []string, out *os.File) error {
	opts, err := parseConfig(args)
	if err != nil {
		return err
	}
	cfg := opts.ServerConfig
	if opts.StateDir != "" {
		// The server owns the opened log: Shutdown/Close flush, compact and
		// close it, so a clean exit leaves a snapshot-only state directory.
		lg, err := freegap.OpenPersist(opts.StateDir, freegap.PersistOptions{Fsync: opts.Fsync})
		if err != nil {
			return err
		}
		st := lg.State()
		fmt.Fprintf(out, "dpserver state restored from %s: %d tenants, %d datasets (fsync %s)\n",
			opts.StateDir, len(st.Tenants), len(st.Datasets), opts.Fsync)
		cfg.Persist = lg
	}
	// NewServer owns cfg.Persist from here on: it closes the log itself on
	// a construction error, and Shutdown/Close flush and close it.
	srv, err := freegap.NewServer(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(out, "dpserver listening on %s (per-tenant budget ε=%g, %d workers)\n",
		ln.Addr(), srv.Config().TenantBudget, srv.Config().Workers)
	for _, info := range srv.Datasets().List() {
		fmt.Fprintf(out, "dpserver serving dataset %s (%s): %d records, %d items\n",
			info.Name, info.Source, info.Records, info.Items)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		srv.Close()
		return err
	case <-ctx.Done():
		fmt.Fprintln(out, "dpserver: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
