package core

// Resumable Sparse Vector: the same mechanism as AdaptiveSVTWithGap.Run, but
// fed one query at a time instead of a pre-materialized stream. A served
// threshold monitor lives across many requests — each dataset append produces
// the next query of its stream — so the run's state (the one noisy threshold,
// the spent budget, the answer count) must survive between arrivals. The
// noisy threshold is drawn exactly once, at construction; every structural
// privacy property of the batch run (branch charges, the Theorem-4 stop rule,
// the MaxAnswers cap) carries over unchanged because the per-query logic is
// the same code path evaluated lazily.
//
// Determinism: a stream is a pure function of (mechanism config, noise source
// state, query sequence). Re-running a stream from the same seed over the
// same arrivals reproduces the verdict sequence bit for bit, which is what
// lets the serving layer journal only a monitor's seed and replay its verdict
// history after a restart. The scalar draws here consume the noise source in
// arrival order (one top draw per query, plus one middle draw when the top
// branch misses), unlike RunScratch's chunked prefill — the two are
// distribution-identical but not stream-identical for a shared seed.

import (
	"fmt"
	"math"

	"github.com/freegap/freegap/internal/rng"
)

// SVTStream is one in-progress Sparse-Vector-with-Gap interaction, advanced
// query by query with Arrive. Not safe for concurrent use; callers serialize
// arrivals (the serving layer holds its per-monitor lock).
type SVTStream struct {
	src rng.Source
	nz  noiser

	noisyThreshold   float64
	eps0, eps1, eps2 float64
	topScale         float64
	middleScale      float64
	sigma            float64
	epsilon          float64
	maxAnswers       int

	cost  float64
	above int
	index int
	done  bool
}

// NewSVTStream validates m, draws the stream's single noisy threshold from
// src and returns the resumable run. src is owned by the stream afterwards.
func NewSVTStream(m *AdaptiveSVTWithGap, src rng.Source) (*SVTStream, error) {
	if m.K <= 0 {
		return nil, fmt.Errorf("%w: k = %d", ErrInvalidK, m.K)
	}
	if !(m.Epsilon > 0) {
		return nil, fmt.Errorf("%w: %v", ErrInvalidEpsilon, m.Epsilon)
	}
	eps0, eps1, eps2 := m.budgets()
	thresholdScale, topScale, middleScale := m.noiseScales()
	nz := noiser{kind: m.Noise, base: m.DiscreteBase}
	s := &SVTStream{
		src:            src,
		nz:             nz,
		noisyThreshold: m.Threshold + nz.sample(src, thresholdScale),
		eps0:           eps0, eps1: eps1, eps2: eps2,
		topScale:    topScale,
		middleScale: middleScale,
		sigma:       m.sigma(),
		epsilon:     m.Epsilon,
		maxAnswers:  m.MaxAnswers,
		cost:        eps0, // the threshold charge is paid up front
	}
	return s, nil
}

// Arrive processes the next query of the stream and returns its item. ok is
// false — and the zero item is returned — once the stream has stopped: the
// remaining budget can no longer cover a worst-case middle-branch answer, or
// MaxAnswers above-threshold answers have been released.
func (s *SVTStream) Arrive(q float64) (item SVTItem, ok bool) {
	if s.done {
		return SVTItem{}, false
	}
	i := s.index
	s.index++

	xi := s.nz.sample(s.src, s.topScale)
	topGap := q + xi - s.noisyThreshold
	switch {
	case !math.IsInf(s.sigma, 1) && topGap >= s.sigma:
		item = SVTItem{Index: i, Above: true, Gap: topGap, Branch: BranchTop, BudgetUsed: s.eps2}
		s.above++
		s.cost += s.eps2
	default:
		eta := s.nz.sample(s.src, s.middleScale)
		if middleGap := q + eta - s.noisyThreshold; middleGap >= 0 {
			item = SVTItem{Index: i, Above: true, Gap: middleGap, Branch: BranchMiddle, BudgetUsed: s.eps1}
			s.above++
			s.cost += s.eps1
		} else {
			item = SVTItem{Index: i, Branch: BranchBelow}
		}
	}
	if s.maxAnswers > 0 && s.above >= s.maxAnswers {
		s.done = true
	}
	if s.cost > s.epsilon-s.eps1 {
		s.done = true
	}
	return item, true
}

// Done reports whether the stream has stopped and will accept no further
// queries.
func (s *SVTStream) Done() bool { return s.done }

// Spent returns the privacy budget consumed so far, including the threshold
// charge ε₀.
func (s *SVTStream) Spent() float64 { return s.cost }

// AboveCount returns how many above-threshold answers the stream released.
func (s *SVTStream) AboveCount() int { return s.above }

// Processed returns how many queries the stream has consumed.
func (s *SVTStream) Processed() int { return s.index }
