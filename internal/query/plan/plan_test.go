package plan

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/engine"
	"github.com/freegap/freegap/internal/store"
)

// naiveEval is the reference evaluator: it walks the spec tree directly and
// rescans the transaction list for every filter, with none of the compiler's
// rewrites, memoization, caching or skipping. Every plan the compiler emits
// must produce a count vector byte-identical to this.
func naiveEval(cat map[string]*dataset.Transactions, db *dataset.Transactions, q *engine.QuerySpec) ([]float64, error) {
	universe := db.NumItems()
	switch q.Kind {
	case engine.QueryAllItems:
		return db.ItemCounts(), nil

	case engine.QueryItemCount:
		counts := db.ItemCounts()
		out := make([]float64, universe)
		for _, it := range q.Items {
			if it >= 0 && int(it) < universe {
				out[it] = counts[it]
			}
		}
		return out, nil

	case engine.QueryFilter:
		out := make([]float64, universe)
		seen := make(map[int32]bool)
		for r := 0; r < db.NumRecords(); r++ {
			rec := db.Record(r)
			if len(rec) < q.Where.MinLen || (q.Where.MaxLen > 0 && len(rec) > q.Where.MaxLen) {
				continue
			}
			ok := true
			for _, w := range q.Where.Contains {
				found := false
				for _, it := range rec {
					if it == w {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for k := range seen {
				delete(seen, k)
			}
			for _, it := range rec {
				if !seen[it] {
					seen[it] = true
					out[it]++
				}
			}
		}
		return out, nil

	case engine.QueryThreshold:
		child, err := naiveEval(cat, db, q.Of[0])
		if err != nil {
			return nil, err
		}
		out := make([]float64, universe)
		for i, v := range child {
			if v >= q.MinCount && (q.MaxCount == 0 || v <= q.MaxCount) {
				out[i] = v
			}
		}
		return out, nil

	case engine.QueryUnion, engine.QueryIntersect:
		var out []float64
		for _, op := range q.Of {
			v, err := naiveEval(cat, db, op)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = append([]float64(nil), v...)
				continue
			}
			for i, x := range v {
				if q.Kind == engine.QueryUnion && x > out[i] {
					out[i] = x
				}
				if q.Kind == engine.QueryIntersect && x < out[i] {
					out[i] = x
				}
			}
		}
		return out, nil

	case engine.QueryMinus:
		a, err := naiveEval(cat, db, q.Of[0])
		if err != nil {
			return nil, err
		}
		b, err := naiveEval(cat, db, q.Of[1])
		if err != nil {
			return nil, err
		}
		out := make([]float64, universe)
		for i, x := range a {
			if b[i] == 0 {
				out[i] = x
			}
		}
		return out, nil

	case engine.QueryJoin:
		left, err := naiveEval(cat, db, q.Of[0])
		if err != nil {
			return nil, err
		}
		other, ok := cat[q.Dataset]
		if !ok {
			return nil, fmt.Errorf("naive: unknown dataset %q", q.Dataset)
		}
		on := q.On
		if on == nil {
			on = &engine.QuerySpec{Kind: engine.QueryAllItems}
		}
		onV, err := naiveEval(cat, other, on)
		if err != nil {
			return nil, err
		}
		out := make([]float64, universe)
		for i, x := range left {
			if x != 0 && i < len(onV) && onV[i] != 0 {
				out[i] = x
			}
		}
		return out, nil

	default:
		return nil, fmt.Errorf("naive: unknown kind %q", q.Kind)
	}
}

// testWorld is the shared fixture: a store-backed catalog plus the raw
// transactions the naive evaluator rescans.
type testWorld struct {
	store *store.Store
	raw   map[string]*dataset.Transactions
}

func (w *testWorld) entry(t *testing.T, name string) *store.Entry {
	t.Helper()
	e, err := w.store.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// clusteredRecords builds blocks of records where block b holds only items
// 8b..8b+7 — the shape zone sketches skip well.
func clusteredRecords(blocks int) [][]int32 {
	recs := make([][]int32, 0, blocks*store.DefaultZoneBlock+37)
	for b := 0; b < blocks; b++ {
		base := int32(b * 8)
		for i := 0; i < store.DefaultZoneBlock; i++ {
			rec := []int32{base, base + int32(i%8)} // i%8==0 duplicates the item
			if i%5 == 0 {
				rec = append(rec, base+1)
			}
			recs = append(recs, rec)
		}
	}
	// A partial tail block, so BlockRange clamping is exercised.
	for i := 0; i < 37; i++ {
		recs = append(recs, []int32{int32(blocks * 8), int32(blocks*8 + 1)})
	}
	return recs
}

// uniformRecords is the adversarial shape: item 0 occurs in every record and
// lengths are constant, so no sketch can skip a single block for a
// contains=[0] filter.
func uniformRecords(n int) [][]int32 {
	recs := make([][]int32, n)
	for i := range recs {
		recs[i] = []int32{0, int32(1 + i%15)}
	}
	return recs
}

func newTestWorld(t *testing.T) *testWorld {
	t.Helper()
	w := &testWorld{store: store.New(), raw: map[string]*dataset.Transactions{}}
	add := func(name string, recs [][]int32, universe int) {
		db := dataset.New(name, recs)
		if universe > 0 {
			db = db.WithUniverse(universe)
		}
		if _, err := w.store.Register(name, "test", db); err != nil {
			t.Fatal(err)
		}
		w.raw[name] = db
	}
	add("main", [][]int32{
		{0, 1, 2}, {1, 2}, {2, 3, 4}, {0, 4}, {4, 4, 5},
		{5, 6, 7, 8}, {8}, {0, 8, 9}, {9, 1}, {2, 9},
	}, 16)
	add("other", [][]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, 8)
	add("clustered", clusteredRecords(3), 0)
	add("uniform", uniformRecords(2*store.DefaultZoneBlock+100), 16)
	t.Cleanup(func() { w.store.Close() })
	return w
}

func vecEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// checkDifferential resolves spec five ways — skipping on, skipping off
// (cache bypassed), then both again with the parallel scan path forced even
// on tiny datasets, and naive — and requires byte-identical vectors across
// the whole matrix.
func checkDifferential(t *testing.T, w *testWorld, ds string, spec *engine.QuerySpec) {
	t.Helper()
	if err := spec.Validate(); err != nil {
		t.Fatalf("spec failed validation: %v", err)
	}
	e := w.entry(t, ds)
	want, err := naiveEval(w.raw, w.raw[ds], spec)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		opts Options
	}{
		{"skip", Options{}},
		{"noskip", Options{NoSkip: true, NoCache: true}},
		{"skip/parallel", Options{NoCache: true, Workers: 4, MinParallelRecords: -1}},
		{"noskip/parallel", Options{NoSkip: true, NoCache: true, Workers: 4, MinParallelRecords: -1}},
	}
	for _, v := range variants {
		got, err := Resolve(w.store, e, spec, v.opts)
		if err != nil {
			t.Fatalf("%s on %s (%s): %v", Canonical(spec), ds, v.name, err)
		}
		if !vecEqual(got.Answers, want) {
			t.Errorf("%s on %s: %s plan differs from naive\n got: %v\nwant: %v",
				Canonical(spec), ds, v.name, got.Answers, want)
		}
	}
}

func items(vs ...int32) []int32 { return vs }

func TestDifferentialHandwritten(t *testing.T) {
	w := newTestWorld(t)
	all := &engine.QuerySpec{Kind: engine.QueryAllItems}
	specs := []*engine.QuerySpec{
		all,
		{Kind: engine.QueryItemCount, Items: items(0, 2, 9, 100, -3)},
		{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{Contains: items(2)}},
		{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{Contains: items(0, 4), MinLen: 2}},
		{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{MinLen: 3, MaxLen: 3}},
		{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{MinLen: 9, MaxLen: 2}}, // empty range → zero
		{Kind: engine.QueryThreshold, MinCount: 3, Of: []*engine.QuerySpec{all}},
		{Kind: engine.QueryThreshold, MaxCount: 2, Of: []*engine.QuerySpec{all}},
		{Kind: engine.QueryThreshold, MinCount: 2, MaxCount: 3, Of: []*engine.QuerySpec{
			{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{Contains: items(1)}},
		}},
		{Kind: engine.QueryUnion, Of: []*engine.QuerySpec{
			{Kind: engine.QueryItemCount, Items: items(1, 2)},
			{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{Contains: items(8)}},
		}},
		{Kind: engine.QueryIntersect, Of: []*engine.QuerySpec{
			all,
			{Kind: engine.QueryItemCount, Items: items(0, 1, 2, 3)},
			{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{MinLen: 2}},
		}},
		{Kind: engine.QueryMinus, Of: []*engine.QuerySpec{
			all,
			{Kind: engine.QueryItemCount, Items: items(4, 5)},
		}},
		{Kind: engine.QueryMinus, Of: []*engine.QuerySpec{all, all}}, // x minus x → zero
		{Kind: engine.QueryJoin, Dataset: "other", Of: []*engine.QuerySpec{all}},
		{Kind: engine.QueryJoin, Dataset: "other", Of: []*engine.QuerySpec{all},
			On: &engine.QuerySpec{Kind: engine.QueryItemCount, Items: items(1, 3)}},
		{Kind: engine.QueryUnion, Of: []*engine.QuerySpec{
			{Kind: engine.QueryMinus, Of: []*engine.QuerySpec{
				{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{Contains: items(2)}},
				{Kind: engine.QueryItemCount, Items: items(3)},
			}},
			{Kind: engine.QueryThreshold, MinCount: 1, Of: []*engine.QuerySpec{
				{Kind: engine.QueryJoin, Dataset: "other", Of: []*engine.QuerySpec{all}},
			}},
		}},
	}
	for _, spec := range specs {
		checkDifferential(t, w, "main", spec)
		// Monotone specs must resolve as monotone (halved noise downstream);
		// rewrites may only widen the monotone fragment, never shrink it.
		if spec.Monotone() {
			res, err := Resolve(w.store, w.entry(t, "main"), spec, Options{NoCache: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Monotonic {
				t.Errorf("%s: spec is monotone but the plan is not", Canonical(spec))
			}
		}
	}
}

// genSpec builds a random valid spec over small universes; the generator is
// shared with the canonicalizer fuzz target.
func genSpec(r *rand.Rand, depth int) *engine.QuerySpec {
	kind := r.Intn(8)
	if depth <= 0 {
		kind = r.Intn(3) // leaves and filters only
	}
	switch kind {
	case 0:
		return &engine.QuerySpec{Kind: engine.QueryAllItems}
	case 1:
		n := 1 + r.Intn(4)
		its := make([]int32, n)
		for i := range its {
			its[i] = int32(r.Intn(24) - 2) // sometimes out of universe or negative
		}
		return &engine.QuerySpec{Kind: engine.QueryItemCount, Items: its}
	case 2:
		wh := &engine.RecordPredicate{}
		for len(wh.Contains) == 0 && wh.MinLen == 0 && wh.MaxLen == 0 {
			for i := 0; i < r.Intn(3); i++ {
				wh.Contains = append(wh.Contains, int32(r.Intn(16)))
			}
			wh.MinLen = r.Intn(4)
			wh.MaxLen = r.Intn(5)
		}
		return &engine.QuerySpec{Kind: engine.QueryFilter, Where: wh}
	case 3:
		q := &engine.QuerySpec{Kind: engine.QueryThreshold, Of: []*engine.QuerySpec{genSpec(r, depth-1)}}
		q.MinCount = float64(r.Intn(5))
		if q.MinCount == 0 || r.Intn(2) == 0 {
			q.MaxCount = float64(1 + r.Intn(6))
		}
		return q
	case 4, 5:
		k := engine.QueryUnion
		if kind == 5 {
			k = engine.QueryIntersect
		}
		n := 2 + r.Intn(2)
		of := make([]*engine.QuerySpec, n)
		for i := range of {
			of[i] = genSpec(r, depth-1)
		}
		return &engine.QuerySpec{Kind: k, Of: of}
	case 6:
		return &engine.QuerySpec{Kind: engine.QueryMinus,
			Of: []*engine.QuerySpec{genSpec(r, depth-1), genSpec(r, depth-1)}}
	default:
		q := &engine.QuerySpec{Kind: engine.QueryJoin, Dataset: "other",
			Of: []*engine.QuerySpec{genSpec(r, depth-1)}}
		if r.Intn(2) == 0 {
			q.On = genSpec(r, depth-1)
		}
		return q
	}
}

func TestDifferentialRandom(t *testing.T) {
	w := newTestWorld(t)
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 400; i++ {
		spec := genSpec(r, 3)
		if err := spec.Validate(); err != nil {
			t.Fatalf("generator emitted an invalid spec %v: %v", spec, err)
		}
		checkDifferential(t, w, "main", spec)
	}
}

func TestSkippingClustered(t *testing.T) {
	w := newTestWorld(t)
	e := w.entry(t, "clustered")
	spec := &engine.QuerySpec{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{Contains: items(20)}}

	res, err := Resolve(w.store, e, spec, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BlocksSkipped < 2 {
		t.Errorf("selective filter skipped %d blocks, want >= 2", res.Stats.BlocksSkipped)
	}
	total := w.raw["clustered"].NumRecords()
	if res.Stats.RecordsScanned+res.Stats.RecordsSkipped != total {
		t.Errorf("scanned %d + skipped %d != %d records",
			res.Stats.RecordsScanned, res.Stats.RecordsSkipped, total)
	}
	if res.Stats.RecordsScanned >= total/2 {
		t.Errorf("selective filter scanned %d of %d records, skipping did nothing", res.Stats.RecordsScanned, total)
	}
	if e.RecordsSkipped() != uint64(res.Stats.RecordsSkipped) {
		t.Errorf("entry records_skipped=%d, stats say %d", e.RecordsSkipped(), res.Stats.RecordsSkipped)
	}
	checkDifferential(t, w, "clustered", spec)

	// A length-bounds-only filter skips via the min/max length zone columns.
	lenSpec := &engine.QuerySpec{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{MinLen: 4}}
	lres, err := Resolve(w.store, e, lenSpec, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if lres.Stats.RecordsScanned != 0 {
		t.Errorf("min_len=4 filter scanned %d records of an all-short dataset", lres.Stats.RecordsScanned)
	}
	checkDifferential(t, w, "clustered", lenSpec)
}

func TestAdversarialUnselective(t *testing.T) {
	w := newTestWorld(t)
	e := w.entry(t, "uniform")
	spec := &engine.QuerySpec{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{Contains: items(0)}}
	res, err := Resolve(w.store, e, spec, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BlocksSkipped != 0 || res.Stats.RecordsSkipped != 0 {
		t.Errorf("sketches skipped %d blocks of a dataset where every record matches", res.Stats.BlocksSkipped)
	}
	if res.Stats.RecordsScanned != w.raw["uniform"].NumRecords() {
		t.Errorf("scanned %d records, want all %d", res.Stats.RecordsScanned, w.raw["uniform"].NumRecords())
	}
	checkDifferential(t, w, "uniform", spec)
}

func TestPlanCache(t *testing.T) {
	w := newTestWorld(t)
	e := w.entry(t, "main")
	spec := &engine.QuerySpec{Kind: engine.QueryUnion, Of: []*engine.QuerySpec{
		{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{Contains: items(2)}},
		{Kind: engine.QueryItemCount, Items: items(1)},
	}}

	cold, err := Resolve(w.store, e, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("first resolution reported a cache hit")
	}
	scans, resolutions := e.CountScans(), e.Resolutions()

	// Operand order swapped: canonicalization must land on the same entry.
	swapped := &engine.QuerySpec{Kind: engine.QueryUnion, Of: []*engine.QuerySpec{spec.Of[1], spec.Of[0]}}
	warm, err := Resolve(w.store, e, swapped, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("canonically equal spec missed the plan cache")
	}
	if !vecEqual(warm.Answers, cold.Answers) {
		t.Error("cached vector differs from the miss-time vector")
	}
	if e.CountScans() != scans {
		t.Errorf("cache hit moved count_scans from %d to %d", scans, e.CountScans())
	}
	if e.Resolutions() != resolutions+1 {
		t.Errorf("cache hit did not count as a resolution")
	}
	if warm.Explain == nil || !warm.Explain.Cached {
		t.Error("cache hit explain must be marked cached")
	}
	if warm.Explain.Canonical != Canonical(spec) {
		t.Errorf("replayed explain canonical %q, want %q", warm.Explain.Canonical, Canonical(spec))
	}
	if h, m := e.Plans().Hits(), e.Plans().Misses(); h != 1 || m != 1 {
		t.Errorf("plan cache hits=%d misses=%d, want 1 and 1", h, m)
	}
	if e.Plans().Len() == 0 {
		t.Error("plan cache is empty after a fill")
	}
}

func TestCanonicalEquivalences(t *testing.T) {
	all := func() *engine.QuerySpec { return &engine.QuerySpec{Kind: engine.QueryAllItems} }
	ic := func(vs ...int32) *engine.QuerySpec {
		return &engine.QuerySpec{Kind: engine.QueryItemCount, Items: vs}
	}
	equal := []struct {
		name string
		a, b *engine.QuerySpec
	}{
		{"union order",
			&engine.QuerySpec{Kind: engine.QueryUnion, Of: []*engine.QuerySpec{all(), ic(1)}},
			&engine.QuerySpec{Kind: engine.QueryUnion, Of: []*engine.QuerySpec{ic(1), all()}}},
		{"union dup",
			&engine.QuerySpec{Kind: engine.QueryUnion, Of: []*engine.QuerySpec{ic(1), ic(1), all()}},
			&engine.QuerySpec{Kind: engine.QueryUnion, Of: []*engine.QuerySpec{ic(1), all()}}},
		{"union flatten",
			&engine.QuerySpec{Kind: engine.QueryUnion, Of: []*engine.QuerySpec{
				&engine.QuerySpec{Kind: engine.QueryUnion, Of: []*engine.QuerySpec{ic(1), ic(2)}}, ic(3)}},
			&engine.QuerySpec{Kind: engine.QueryUnion, Of: []*engine.QuerySpec{ic(3), ic(2), ic(1)}}},
		{"items sorted dedup", ic(3, 1, 2, 1), ic(1, 2, 3)},
		{"singleton collapse",
			&engine.QuerySpec{Kind: engine.QueryUnion, Of: []*engine.QuerySpec{ic(1), ic(1)}},
			ic(1)},
		{"minus self is zero",
			&engine.QuerySpec{Kind: engine.QueryMinus, Of: []*engine.QuerySpec{all(), all()}},
			&engine.QuerySpec{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{MinLen: 5, MaxLen: 2}}},
		{"union drops zero",
			&engine.QuerySpec{Kind: engine.QueryUnion, Of: []*engine.QuerySpec{
				all(),
				&engine.QuerySpec{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{MinLen: 5, MaxLen: 2}}}},
			all()},
		{"intersect with zero is zero",
			&engine.QuerySpec{Kind: engine.QueryIntersect, Of: []*engine.QuerySpec{
				all(),
				&engine.QuerySpec{Kind: engine.QueryMinus, Of: []*engine.QuerySpec{ic(1), ic(1)}}}},
			&engine.QuerySpec{Kind: engine.QueryMinus, Of: []*engine.QuerySpec{all(), all()}}},
	}
	for _, tc := range equal {
		if ca, cb := Canonical(tc.a), Canonical(tc.b); ca != cb {
			t.Errorf("%s: canon %q != %q", tc.name, ca, cb)
		}
		if Hash(tc.a) != Hash(tc.b) {
			t.Errorf("%s: hashes differ for canonically equal specs", tc.name)
		}
	}
	distinct := []*engine.QuerySpec{
		all(), ic(1), ic(1, 2),
		{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{Contains: items(1)}},
		{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{Contains: items(1), MinLen: 1}},
		{Kind: engine.QueryThreshold, MinCount: 1, Of: []*engine.QuerySpec{all()}},
		{Kind: engine.QueryThreshold, MinCount: 1.5, Of: []*engine.QuerySpec{all()}},
		{Kind: engine.QueryUnion, Of: []*engine.QuerySpec{ic(1), all()}},
		{Kind: engine.QueryIntersect, Of: []*engine.QuerySpec{ic(1), all()}},
		{Kind: engine.QueryMinus, Of: []*engine.QuerySpec{ic(1), all()}},
		{Kind: engine.QueryMinus, Of: []*engine.QuerySpec{all(), ic(1)}},
		{Kind: engine.QueryJoin, Dataset: "other", Of: []*engine.QuerySpec{all()}},
		{Kind: engine.QueryJoin, Dataset: "third", Of: []*engine.QuerySpec{all()}},
	}
	seen := map[string]int{}
	for i, s := range distinct {
		c := Canonical(s)
		if j, dup := seen[c]; dup {
			t.Errorf("specs %d and %d collide on canon %q", i, j, c)
		}
		seen[c] = i
	}
}

func TestGreedyEvalOrder(t *testing.T) {
	// Canonical child order is by canon string (F… before I…); greedy order
	// must put the cheap cached leaf before the filter scan.
	spec := &engine.QuerySpec{Kind: engine.QueryIntersect, Of: []*engine.QuerySpec{
		{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{Contains: items(3)}},
		{Kind: engine.QueryItemCount, Items: items(7)},
	}}
	n := normalize(spec)
	if len(n.children) != 2 || n.children[0].kind != engine.QueryFilter {
		t.Fatalf("unexpected canonical child order: %q", n.canon)
	}
	if n.order[0] != 1 || n.order[1] != 0 {
		t.Errorf("greedy order %v, want the leaf (index 1) first", n.order)
	}
	ne := explainNode(n)
	if len(ne.EvalOrder) != 2 || ne.EvalOrder[0] != 1 {
		t.Errorf("explain eval_order %v, want [1 0]", ne.EvalOrder)
	}

	// The short-circuit the order enables: an empty cheap support means the
	// filter never scans.
	w := newTestWorld(t)
	e := w.entry(t, "main")
	empty := &engine.QuerySpec{Kind: engine.QueryIntersect, Of: []*engine.QuerySpec{
		{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{Contains: items(3)}},
		{Kind: engine.QueryItemCount, Items: items(14)}, // count 0 in "main"
	}}
	res, err := Resolve(w.store, e, empty, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FilterScans != 0 {
		t.Errorf("intersect with an empty cheap support still ran %d filter scans", res.Stats.FilterScans)
	}
	checkDifferential(t, w, "main", empty)
}

func TestExplainPayload(t *testing.T) {
	w := newTestWorld(t)
	e := w.entry(t, "clustered")
	spec := &engine.QuerySpec{Kind: engine.QueryThreshold, MinCount: 10, Of: []*engine.QuerySpec{
		{Kind: engine.QueryFilter, Where: &engine.RecordPredicate{Contains: items(20)}},
	}}
	res, err := Resolve(w.store, e, spec, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	ex := res.Explain
	if ex == nil {
		t.Fatal("no explain payload")
	}
	if ex.Dataset != "clustered" || ex.Cached {
		t.Errorf("dataset=%q cached=%v, want clustered and false", ex.Dataset, ex.Cached)
	}
	if ex.Canonical != Canonical(spec) {
		t.Errorf("canonical %q != %q", ex.Canonical, Canonical(spec))
	}
	if want := fmt.Sprintf("%016x", Hash(spec)); ex.Hash != want {
		t.Errorf("hash %q, want %q", ex.Hash, want)
	}
	if ex.SketchBlocks == 0 || ex.RecordsTotal != w.raw["clustered"].NumRecords() {
		t.Errorf("sketch_blocks=%d records_total=%d", ex.SketchBlocks, ex.RecordsTotal)
	}
	if ex.RecordsSkipped == 0 || ex.RecordsScanned+ex.RecordsSkipped != ex.RecordsTotal {
		t.Errorf("explain scan accounting: scanned=%d skipped=%d total=%d",
			ex.RecordsScanned, ex.RecordsSkipped, ex.RecordsTotal)
	}
	if ex.Plan == nil || ex.Plan.Op != engine.QueryThreshold {
		t.Fatalf("plan root %+v, want a threshold node", ex.Plan)
	}
	if len(ex.Plan.Children) != 1 || ex.Plan.Children[0].Op != engine.QueryFilter {
		t.Errorf("plan child %+v, want the filter", ex.Plan.Children)
	}
	if ex.Plan.Children[0].CostRank < costFilter {
		t.Errorf("filter cost rank %d, want >= %d", ex.Plan.Children[0].CostRank, costFilter)
	}
}

func TestJoinErrors(t *testing.T) {
	w := newTestWorld(t)
	e := w.entry(t, "main")
	missing := &engine.QuerySpec{Kind: engine.QueryJoin, Dataset: "nope",
		Of: []*engine.QuerySpec{{Kind: engine.QueryAllItems}}}
	if _, err := Resolve(w.store, e, missing, Options{}); err == nil {
		t.Error("join against an unknown dataset resolved")
	}
	if _, err := Resolve(nil, e, missing, Options{}); !errors.Is(err, engine.ErrBadQuerySpec) {
		t.Errorf("nil catalog: got %v, want ErrBadQuerySpec", err)
	}
}

func TestPlanCacheEpochFlush(t *testing.T) {
	var pc store.PlanCache
	for i := 0; i < store.DefaultMaxPlans+10; i++ {
		pc.Put(fmt.Sprint("k", i), &store.PlanEntry{})
	}
	if pc.Len() > store.DefaultMaxPlans {
		t.Errorf("cache holds %d entries, cap is %d", pc.Len(), store.DefaultMaxPlans)
	}
	if pc.Len() == 0 {
		t.Error("cache empty after fills")
	}
}
