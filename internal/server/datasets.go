package server

// The dataset API and the query-resolution step. POST /v1/datasets
// catalogues a dataset (FIMI-format upload or synthetic generator) in the
// server-side store, precomputing its item-count vector once; GET /v1/datasets
// and GET /v1/datasets/{name} expose the inventory. Mechanism requests that
// name a dataset plus a query spec are resolved against the cached counts in
// the generic pipeline (decode → resolve → validate → charge → execute), so
// every mechanism — raw, pipeline, and batched — gains dataset-backed
// queries without per-request transaction scans.

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/engine"
	"github.com/freegap/freegap/internal/persist"
	"github.com/freegap/freegap/internal/query/plan"
	"github.com/freegap/freegap/internal/store"
	"github.com/freegap/freegap/internal/telemetry"
)

// mechDatasets is the metrics label for the dataset management endpoints.
const mechDatasets = "datasets"

// storeResolver adapts the dataset store to the engine's Resolver contract,
// counting each resolution in the per-dataset telemetry series. The two
// legacy leaf kinds resolve straight from the cached count vector (always
// monotonic sensitivity-1 counting queries, so they get the halved noise
// scale); every composite kind routes through the query planner, which
// reports monotonicity from the spec's algebra fragment.
type storeResolver struct{ s *Server }

func (r storeResolver) Resolve(name string, spec *engine.QuerySpec) ([]float64, bool, error) {
	e, err := r.s.datasets.Get(name)
	if err != nil {
		return nil, false, err
	}
	var answers []float64
	monotonic := true
	switch spec.Kind {
	case engine.QueryAllItems:
		// The cached slice itself: zero copies, zero scans. Mechanisms treat
		// answers as read-only, so sharing it across requests is safe.
		answers = e.ResolveAll()
	case engine.QueryItemCount:
		answers, err = e.ResolveItems(spec.Items)
		if err != nil {
			return nil, false, fmt.Errorf("%w: %v", engine.ErrBadQuerySpec, err)
		}
	default:
		res, err := r.s.resolvePlan(e, spec)
		if err != nil {
			return nil, false, err
		}
		answers, monotonic = res.Answers, res.Monotonic
	}
	r.s.datasetCounters(name).resolved.Inc()
	return answers, monotonic, nil
}

// resolvePlan runs a composite spec through the query planner against e,
// feeding the plan-cache and skipping observables. The spec was validated
// by ResolveRequest (or the explain handler) before this point.
func (s *Server) resolvePlan(e *store.Entry, spec *engine.QuerySpec) (*plan.Result, error) {
	res, err := plan.Resolve(s.datasets, e, spec, plan.Options{
		NoSkip:  s.cfg.DisableQuerySkipping,
		Workers: s.cfg.ScanWorkers,
	})
	if err != nil {
		return nil, err
	}
	s.hot.planCompile.Observe(res.Compile)
	if res.CacheHit {
		s.hot.planHits.Inc()
	} else {
		s.hot.planMisses.Inc()
	}
	if res.Stats.RecordsSkipped > 0 {
		s.datasetCounters(e.Name()).skipped.Add(uint64(res.Stats.RecordsSkipped))
	}
	if res.Stats.ParallelWorkers > 0 {
		s.hot.scanWorkers.Observe(res.Stats.ParallelWorkers)
	}
	return res, nil
}

// resolver returns the engine Resolver backed by the server's dataset store.
func (s *Server) resolver() engine.Resolver { return storeResolver{s} }

// resolve fills a dataset-backed request's answers from the catalog. On
// failure it writes the error response and returns (outcome, false).
func (s *Server) resolve(w http.ResponseWriter, req engine.Request) (string, bool) {
	if err := engine.ResolveRequest(req, s.resolver()); err != nil {
		return s.writeResolveError(w, err), false
	}
	return "", true
}

// explainRequested reports whether the request asked for the compiled query
// plan (?explain=1) instead of a mechanism execution. Like the trace flag,
// the query string is only parsed when one is present at all.
func explainRequested(r *http.Request) bool {
	return r.URL.RawQuery != "" && r.URL.Query().Get("explain") == "1"
}

// serveExplain handles ?explain=1 on a mechanism endpoint: it validates and
// resolves the request's dataset query — so the plan cache, count_scans and
// skipping observables move exactly as a real request's would — and returns
// the chosen plan. No budget is charged and no noisy answers are released.
func (s *Server) serveExplain(w *traceWriter, req engine.Request) string {
	c := req.Base()
	w.tenant, w.dataset = c.Tenant, c.Dataset
	switch {
	case c.Dataset == "" || c.Queries == nil:
		return badRequest(w, errors.New("explain needs a dataset-backed request (dataset and queries)"))
	case len(c.Answers) != 0:
		return badRequest(w, errors.New("explain does not apply to inline answers"))
	}
	if err := c.Queries.Validate(); err != nil {
		return s.writeResolveError(w, err)
	}
	e, err := s.datasets.Get(c.Dataset)
	if err != nil {
		return s.writeResolveError(w, err)
	}
	var ex *plan.Explain
	if c.Queries.Composite() {
		res, err := s.resolvePlan(e, c.Queries)
		if err != nil {
			return s.writeResolveError(w, err)
		}
		ex = res.Explain
	} else {
		ex = legacyExplain(e, c.Queries)
	}
	w.mark(stageResolve)
	writeJSON(w, http.StatusOK, ex)
	return "ok"
}

// legacyExplain renders the trivial plan for the two leaf kinds, which the
// resolver serves straight from the registration-time count vector.
func legacyExplain(e *store.Entry, q *engine.QuerySpec) *plan.Explain {
	v := e.View()
	answers, detail := len(v.Arena().Counts()), "full universe"
	if q.Kind == engine.QueryItemCount {
		answers, detail = len(q.Items), fmt.Sprintf("%d items projected", len(q.Items))
	}
	return &plan.Explain{
		Dataset:      e.Name(),
		Canonical:    plan.Canonical(q),
		Hash:         fmt.Sprintf("%016x", plan.Hash(q)),
		Cached:       true,
		Monotonic:    true,
		Answers:      answers,
		SketchBlocks: v.Arena().Zones().NumBlocks(),
		RecordsTotal: v.Dataset().NumRecords(),
		Plan:         &plan.NodeExplain{Op: "cached_counts", Detail: detail},
	}
}

// writeResolveError maps a resolution failure to its structured error
// response: unknown datasets are 404s with code "unknown_dataset", malformed
// dataset/query combinations are 400s with code "bad_query_spec", so clients
// can branch on machine-readable codes the same way they do for
// "budget_exhausted".
func (s *Server) writeResolveError(w http.ResponseWriter, err error) string {
	switch {
	case errors.Is(err, store.ErrUnknownDataset):
		writeError(w, http.StatusNotFound, ErrorBody{Code: CodeUnknownDataset, Message: err.Error()})
		return CodeUnknownDataset
	case errors.Is(err, engine.ErrBadQuerySpec):
		writeError(w, http.StatusBadRequest, ErrorBody{Code: CodeBadQuerySpec, Message: err.Error()})
		return CodeBadQuerySpec
	default:
		return badRequest(w, err)
	}
}

// datasetCounters bundles one dataset's hot telemetry series so the resolve
// path pays one sync.Map lookup for all of them.
type datasetCounters struct {
	resolved *telemetry.Counter
	skipped  *telemetry.Counter
}

// datasetCounters returns the per-dataset telemetry bundle, cached in
// datasetHot so the resolve path pays one atomic add per event.
func (s *Server) datasetCounters(name string) *datasetCounters {
	if c, ok := s.datasetHot.Load(name); ok {
		return c.(*datasetCounters)
	}
	return s.registerDatasetTelemetry(name)
}

// registerDatasetTelemetry provisions (and caches) the telemetry series for
// one catalogued dataset and refreshes the catalog-size gauge.
func (s *Server) registerDatasetTelemetry(name string) *datasetCounters {
	c := &datasetCounters{
		resolved: s.telemetry.Counter("freegap_dataset_resolved_total", telemetry.L("dataset", name)),
		skipped:  s.telemetry.Counter("freegap_records_skipped_total", telemetry.L("dataset", name)),
	}
	s.datasetHot.Store(name, c)
	s.telemetry.Gauge("freegap_datasets").Set(int64(s.datasets.Len()))
	return c
}

// RegisterDataset catalogues db under name with full serving support:
// registration in the store, the per-dataset telemetry series, and — on a
// persistent server — a durable blob + WAL record so the dataset survives a
// restart. It is the programmatic equivalent of POST /v1/datasets for
// callers embedding the server. Callers that register the same name on
// every startup of a persistent server should treat store.ErrDatasetExists
// as success: after a restart the journal has already restored the dataset.
func (s *Server) RegisterDataset(name, source string, db *dataset.Transactions) (*store.Entry, error) {
	return s.registerDataset(name, source, db, nil)
}

// errDatasetPersist marks a registration that was rolled back because its
// durable journalling failed; the handler maps it to a 500, not a 400.
var errDatasetPersist = errors.New("server: dataset registration not persisted")

// registerDataset is RegisterDataset with an optional synthetic-generator
// spec, which persists as a regeneration record instead of a blob. On a
// journalling failure the registration is rolled back, so a name is only
// ever taken by a dataset that will survive a restart — the client can
// retry once the persistence fault clears.
func (s *Server) registerDataset(name, source string, db *dataset.Transactions, syn *persist.SyntheticRecord) (*store.Entry, error) {
	e, err := s.datasets.Register(name, source, db)
	if err != nil {
		return nil, err
	}
	if err := s.journalDataset(e, syn); err != nil {
		s.datasets.Remove(name)
		// Remove unlinks the arena file the entry knows about; a stale image
		// under the rolled-back name from an earlier incarnation goes too, so
		// a later re-registration starts from a clean slate.
		s.removeArenaFile(name)
		s.datasetHot.Delete(name)
		s.telemetry.Gauge("freegap_datasets").Set(int64(s.datasets.Len()))
		return nil, fmt.Errorf("%w: %v", errDatasetPersist, err)
	}
	// Best-effort: persist the registration-time arena so the next restart
	// memory-maps the counts instead of rescanning the transactions.
	s.saveArena(name)
	s.registerDatasetTelemetry(name)
	return e, nil
}

func (s *Server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	t := s.beginTrace(w, r)
	outcome := s.serveDatasetUpload(t, r)
	s.finishTrace(t, mechDatasets, outcome)
	s.countRequest(mechDatasets, outcome)
}

func (s *Server) serveDatasetUpload(w *traceWriter, r *http.Request) string {
	var req DatasetUploadRequest
	if code, ok := s.decode(w, r, &req); !ok {
		return code
	}
	w.mark(stageDecode)
	w.dataset = req.Name
	// Fail closed before parsing: a registration on a dead journal would
	// only be rolled back after the (possibly expensive) parse anyway.
	if code, ok := s.persistReady(w); !ok {
		return code
	}
	if err := store.ValidName(req.Name); err != nil {
		return badRequest(w, err)
	}

	var (
		db     *dataset.Transactions
		source string
		syn    *persist.SyntheticRecord
	)
	switch {
	case req.FIMI != "" && req.Synthetic != nil:
		return badRequest(w, errors.New("exactly one of fimi and synthetic must be set"))
	case req.FIMI != "":
		// The body-size cap already bounds the upload; the parse limits —
		// the same caps the catalog's Register enforces — keep a small body
		// from declaring a huge item universe.
		lim := s.datasets.Limits()
		parsed, err := dataset.ReadFIMILimited(strings.NewReader(req.FIMI), req.Name, dataset.FIMILimits{
			MaxRecords: lim.MaxRecords,
			MaxItemID:  int32(lim.MaxItems) - 1,
		})
		if err != nil {
			return badRequest(w, err)
		}
		db, source = parsed, "upload:fimi"
	case req.Synthetic != nil:
		generated, err := store.GenerateSynthetic(req.Synthetic.Kind, req.Synthetic.Scale, req.Synthetic.Seed)
		if err != nil {
			return badRequest(w, err)
		}
		db, source = generated, "synthetic:"+strings.ToLower(req.Synthetic.Kind)
		syn = &persist.SyntheticRecord{Kind: req.Synthetic.Kind, Scale: req.Synthetic.Scale, Seed: req.Synthetic.Seed}
	default:
		return badRequest(w, errors.New("exactly one of fimi and synthetic must be set"))
	}

	entry, err := s.registerDataset(req.Name, source, db, syn)
	switch {
	case errors.Is(err, store.ErrDatasetExists):
		writeError(w, http.StatusConflict, ErrorBody{Code: CodeDatasetExists, Message: err.Error()})
		return CodeDatasetExists
	case errors.Is(err, errDatasetPersist):
		// Rolled back: an operational fault, not a client one; retryable.
		return internalError(w, err)
	case err != nil:
		return badRequest(w, err)
	}
	writeJSON(w, http.StatusCreated, entry.Info())
	return "ok"
}

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	t := s.beginTrace(w, r)
	s.countRequest(mechDatasets, "ok")
	writeJSON(t, http.StatusOK, DatasetListResponse{Datasets: s.datasets.List()})
	s.finishTrace(t, mechDatasets, "ok")
}

func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	t := s.beginTrace(w, r)
	name := r.PathValue("name")
	t.dataset = name
	entry, err := s.datasets.Get(name)
	if err != nil {
		s.countRequest(mechDatasets, CodeUnknownDataset)
		writeError(t, http.StatusNotFound, ErrorBody{Code: CodeUnknownDataset, Message: err.Error()})
		s.finishTrace(t, mechDatasets, CodeUnknownDataset)
		return
	}
	s.countRequest(mechDatasets, "ok")
	writeJSON(t, http.StatusOK, entry.Info())
	s.finishTrace(t, mechDatasets, "ok")
}
