package server

// Hand-rolled JSON encoders for the serving layer's own response shapes —
// error envelopes, ?trace=1 breakdowns and the batch response — built on the
// engine's append-style codec primitives. Together with engine.AppendResponse
// they keep the steady-state hot path free of reflection-based encoding:
// every response is appended into a pooled buffer and written once. Output is
// byte-identical to encoding/json (pinned by TestServerCodecGolden); any
// shape the codecs cannot represent falls back to encoding/json.

import (
	"strconv"

	"github.com/freegap/freegap/internal/engine"
)

// appendErrorBody appends body as a JSON object, byte-identical to
// json.Marshal(body). The remaining pointer is always finite (it is a budget),
// so no error return is needed; a non-finite value would have been rejected
// upstream, but the float append still falls back defensively.
func appendErrorBody(dst []byte, body *ErrorBody) ([]byte, bool) {
	dst = append(dst, `{"code":`...)
	dst = engine.AppendString(dst, body.Code)
	if body.RequestID != "" {
		dst = append(dst, `,"request_id":`...)
		dst = engine.AppendString(dst, body.RequestID)
	}
	dst = append(dst, `,"message":`...)
	dst = engine.AppendString(dst, body.Message)
	if body.Remaining != nil {
		dst = append(dst, `,"remaining":`...)
		var err error
		if dst, err = engine.AppendFloat(dst, *body.Remaining); err != nil {
			return dst, false
		}
	}
	if body.Exhausted != nil {
		dst = append(dst, `,"exhausted":`...)
		dst = strconv.AppendBool(dst, *body.Exhausted)
	}
	return append(dst, '}'), true
}

// appendErrorEnvelope appends the ErrorEnvelope wrapping body, byte-identical
// to json.Marshal(ErrorEnvelope{Error: body}), without a trailing newline.
func appendErrorEnvelope(dst []byte, body *ErrorBody) ([]byte, bool) {
	dst = append(dst, `{"error":`...)
	dst, ok := appendErrorBody(dst, body)
	if !ok {
		return dst, false
	}
	return append(dst, '}'), true
}

// appendTraceJSON appends tr, byte-identical to json.Marshal(tr). Stage
// durations are finite by construction (time subtractions), so the float
// fallback path is defensive only.
func appendTraceJSON(dst []byte, tr *TraceJSON) ([]byte, bool) {
	var err error
	dst = append(dst, `{"request_id":`...)
	dst = engine.AppendString(dst, tr.RequestID)
	dst = append(dst, `,"total_us":`...)
	if dst, err = engine.AppendFloat(dst, tr.TotalMicros); err != nil {
		return dst, false
	}
	dst = append(dst, `,"stages":`...)
	if tr.Stages == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i := range tr.Stages {
			st := &tr.Stages[i]
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"name":`...)
			dst = engine.AppendString(dst, st.Name)
			dst = append(dst, `,"start_us":`...)
			if dst, err = engine.AppendFloat(dst, st.StartMicros); err != nil {
				return dst, false
			}
			dst = append(dst, `,"us":`...)
			if dst, err = engine.AppendFloat(dst, st.Micros); err != nil {
				return dst, false
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return append(dst, '}'), true
}

// appendBatchResponse appends resp without its Trace field, byte-identical
// to json.Marshal of the trace-less response, without a trailing newline.
// The returned boolean reports whether every item response had a hand-rolled
// codec; on false the caller must fall back to encoding/json for the whole
// batch. Because Trace is the struct's last field, a ?trace=1 caller splices
// it by appending `,"trace":...` before the final '}'.
func appendBatchResponse(dst []byte, resp *BatchResponse) ([]byte, bool) {
	var err error
	dst = append(dst, `{"tenant":`...)
	dst = engine.AppendString(dst, resp.Tenant)
	dst = append(dst, `,"results":`...)
	if resp.Results == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i := range resp.Results {
			res := &resp.Results[i]
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"mechanism":`...)
			dst = engine.AppendString(dst, res.Mechanism)
			if res.Response != nil {
				eresp, ok := res.Response.(engine.Response)
				if !ok {
					return dst, false
				}
				dst = append(dst, `,"response":`...)
				var encOK bool
				if dst, _, encOK, err = engine.AppendResponse(dst, eresp); !encOK || err != nil {
					return dst, false
				}
			}
			if res.Error != nil {
				dst = append(dst, `,"error":`...)
				var ok bool
				if dst, ok = appendErrorBody(dst, res.Error); !ok {
					return dst, false
				}
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"epsilon_spent":`...)
	if dst, err = engine.AppendFloat(dst, resp.EpsilonSpent); err != nil {
		return dst, false
	}
	dst = append(dst, `,"budget_remaining":`...)
	if dst, err = engine.AppendFloat(dst, resp.BudgetRemaining); err != nil {
		return dst, false
	}
	return append(dst, '}'), true
}
