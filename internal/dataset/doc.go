// Package dataset provides the transaction-database substrate used by the
// experiments in Section 7 of the paper.
//
// The paper evaluates on three transaction datasets — BMS-POS, Kosarak and the
// IBM Quest synthetic dataset T40I10D100K — where each record is a set of item
// identifiers and each query is the count of transactions containing a given
// item (a monotonic counting query of sensitivity 1).
//
// The two retail logs are not redistributable, so this package supplies
// synthetic stand-ins calibrated to their published statistics (transaction
// count, item cardinality, mean transaction length, heavy-tailed item
// popularity) plus a from-scratch implementation of the IBM Quest generator.
// The mechanisms under test only ever observe the item-count histogram, so a
// histogram with matching scale and skew preserves every behaviour the paper
// measures. See DESIGN.md §5 for the substitution argument.
//
// The package also implements the FIMI text format (one transaction per line,
// space-separated item ids) so that real datasets can be dropped in when
// available.
package dataset
