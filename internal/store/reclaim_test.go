package store

import (
	"path/filepath"
	"testing"
)

// mappedStore builds a store whose "sales" entry is backed by a memory-mapped
// arena, the precondition for generation retirement.
func mappedStore(t *testing.T) *Store {
	t.Helper()
	db := testDB(t)
	staging := New()
	e, err := staging.Register("sales", "test", db)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	path := filepath.Join(t.TempDir(), "sales.arena")
	if err := WriteArena(path, db.NumRecords(), e.Arena()); err != nil {
		t.Fatalf("WriteArena: %v", err)
	}
	a, err := LoadArena(path, db.NumRecords(), db.NumItems(), true)
	if err != nil {
		t.Fatalf("LoadArena: %v", err)
	}
	if !a.Mapped() {
		t.Skip("mmap unsupported on this platform")
	}
	s := New()
	if _, err := s.RegisterArena("sales", "restored", db, a); err != nil {
		t.Fatalf("RegisterArena: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestArenaReclaimedWhenReadersDrain(t *testing.T) {
	s := mappedStore(t)
	s.EnableArenaReclaim()

	// A reader is mid-request when the append supersedes the mapped
	// generation: the mapping must be parked, not unmapped under the reader.
	s.ReaderEnter()
	e, err := s.Get("sales")
	if err != nil {
		t.Fatal(err)
	}
	counts := e.View().Arena().Counts()
	if _, err := s.Append("sales", [][]int32{{0, 1}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := s.RetiredArenas(); got != 1 {
		t.Fatalf("RetiredArenas with a reader in flight = %d, want 1", got)
	}
	// The pinned slice must still read: the mapping is alive until the
	// bracket closes.
	var sum float64
	for _, c := range counts {
		sum += c
	}
	_ = sum

	// Last reader out reclaims the superseded mapping.
	s.ReaderExit()
	if got := s.RetiredArenas(); got != 0 {
		t.Errorf("RetiredArenas after readers drained = %d, want 0", got)
	}
}

func TestArenaReclaimImmediateWithNoReaders(t *testing.T) {
	s := mappedStore(t)
	s.EnableArenaReclaim()
	if _, err := s.Append("sales", [][]int32{{0, 1}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := s.RetiredArenas(); got != 0 {
		t.Errorf("RetiredArenas right after an unread append = %d, want 0 (swept at install)", got)
	}
}

func TestArenaParkedUntilCloseWithoutOptIn(t *testing.T) {
	s := mappedStore(t)
	if _, err := s.Append("sales", [][]int32{{0, 1}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := s.RetiredArenas(); got != 1 {
		t.Fatalf("RetiredArenas = %d, want 1 (reclamation is opt-in)", got)
	}
	// Reader brackets without the opt-in must not sweep: a bare-library
	// store keeps the park-until-Close contract.
	s.ReaderEnter()
	s.ReaderExit()
	if got := s.RetiredArenas(); got != 1 {
		t.Errorf("RetiredArenas after bracket without opt-in = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := s.RetiredArenas(); got != 0 {
		t.Errorf("RetiredArenas after Close = %d, want 0", got)
	}
}
