package server

// Scrape-time sampled metrics. Most of the server's telemetry is pushed on
// the hot path (counters, latency histograms); the values here are instead
// sampled when /metrics is scraped, because they are snapshots of live state
// — uptime, the WAL queue depth and generation, each tenant's remaining ε,
// the accountant CAS-retry total — and sampling them per scrape costs the
// scraper, not the request path.

import (
	"net/http"
	"runtime"
	"time"

	"github.com/freegap/freegap/internal/accountant"
	"github.com/freegap/freegap/internal/telemetry"
)

// maxTenantGaugeSeries caps how many per-tenant remaining-ε gauge series the
// scrape publishes: tenants are client-chosen names, and an unbounded label
// space would let hostile traffic grow every future scrape. Tenants beyond
// the cap still serve and still meter everything else — they just do not get
// an individual gauge line.
const maxTenantGaugeSeries = 1024

// tenantSample carries a tenant past the gauge cap through one scrape, so a
// slot freed by eviction can be granted in the same pass that observed it.
type tenantSample struct {
	tenant    string
	remaining float64
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.sampleScrapeGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.telemetry.WritePrometheus(w)
}

// sampleScrapeGauges refreshes every sampled series. Serialized by scrapeMu
// so concurrent scrapes do not race on the tenant-gauge map or the CAS-retry
// delta bookkeeping.
func (s *Server) sampleScrapeGauges() {
	s.scrapeMu.Lock()
	defer s.scrapeMu.Unlock()
	s.telemetry.FloatGauge("freegap_uptime_seconds").Set(time.Since(s.started).Seconds())
	s.telemetry.Gauge("freegap_retired_arenas").Set(int64(s.datasets.RetiredArenas()))
	if s.persist != nil {
		var failed int64
		if s.persist.Err() != nil {
			failed = 1
		}
		s.telemetry.Gauge("freegap_persist_failed").Set(failed)
		s.telemetry.Gauge("freegap_wal_queue_depth").Set(int64(s.persist.Pending()))
		s.telemetry.Gauge("freegap_wal_generation").Set(int64(s.persist.Generation()))
	}
	// One pass over the registry covers both per-tenant gauges and the
	// CAS-retry total. The retry counters are monotone per accountant and
	// accountants are never removed, so the summed total is monotone too;
	// publishing the delta through a Counter keeps the exposition a true
	// counter across scrapes.
	var retries uint64
	live := make(map[string]struct{}, len(s.tenantGauges))
	var overflow []tenantSample // past the cap this scrape; retry after eviction
	s.reg.Range(func(tenant string, a *accountant.Accountant) bool {
		retries += a.CASRetries()
		live[tenant] = struct{}{}
		if g, ok := s.tenantGauges[tenant]; ok {
			g.Set(a.Remaining())
		} else if len(s.tenantGauges) < maxTenantGaugeSeries {
			g := s.telemetry.FloatGauge("freegap_tenant_remaining_epsilon", telemetry.L("tenant", tenant))
			g.Set(a.Remaining())
			s.tenantGauges[tenant] = g
		} else {
			overflow = append(overflow, tenantSample{tenant, a.Remaining()})
		}
		return true
	})
	// Retire the series of tenants no longer in the registry, then hand the
	// freed slots to tenants that arrived after the cap filled — without the
	// eviction, the cap would admit the first maxTenantGaugeSeries tenants
	// forever and later ones could never earn a gauge line.
	for tenant := range s.tenantGauges {
		if _, ok := live[tenant]; !ok {
			delete(s.tenantGauges, tenant)
			s.telemetry.Remove("freegap_tenant_remaining_epsilon", telemetry.L("tenant", tenant))
		}
	}
	for _, ts := range overflow {
		if len(s.tenantGauges) >= maxTenantGaugeSeries {
			break
		}
		g := s.telemetry.FloatGauge("freegap_tenant_remaining_epsilon", telemetry.L("tenant", ts.tenant))
		g.Set(ts.remaining)
		s.tenantGauges[ts.tenant] = g
	}
	if retries >= s.lastCASRetries {
		s.casRetriesTotal.Add(retries - s.lastCASRetries)
		s.lastCASRetries = retries
	}
	// The plan caches count their capacity sweeps per dataset; the scrape sums
	// them into one counter the same monotone-delta way. Removing a dataset
	// can shrink the sum — the guard just skips publishing until it catches
	// back up, keeping the exposition a true counter.
	var flushes uint64
	for _, name := range s.datasets.Names() {
		if e, err := s.datasets.Get(name); err == nil {
			flushes += e.Plans().Flushes()
		}
	}
	if flushes >= s.lastPlanFlushes {
		s.planFlushTotal.Add(flushes - s.lastPlanFlushes)
		s.lastPlanFlushes = flushes
	}
	if s.cfg.Debug {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.telemetry.Gauge("freegap_goroutines").Set(int64(runtime.NumGoroutine()))
		s.telemetry.Gauge("freegap_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
		s.telemetry.Gauge("freegap_gc_pause_total_ns").Set(int64(ms.PauseTotalNs))
	}
}
