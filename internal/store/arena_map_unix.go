//go:build unix

package store

import (
	"os"
	"syscall"
)

// arenaMap maps size bytes of f read-only. The mapping outlives f being
// closed; release it with arenaUnmap.
func arenaMap(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// arenaUnmap releases a mapping returned by arenaMap.
func arenaUnmap(m []byte) error { return syscall.Munmap(m) }
