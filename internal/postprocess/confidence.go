package postprocess

import (
	"fmt"
	"math"
)

// GapLowerTailProbability evaluates Lemma 5: for independent zero-mean Laplace
// variables η (threshold noise, scale 1/ε₀) and ηᵢ (query noise, scale 1/ε⋆),
// it returns P(ηᵢ − η ≥ −t) for t ≥ 0:
//
//	1 − (ε₀²e^{−ε⋆t} − ε⋆²e^{−ε₀t}) / (2(ε₀²−ε⋆²))   when ε₀ ≠ ε⋆
//	1 − (2+ε₀t)e^{−ε₀t}/4                              when ε₀ = ε⋆
//
// This is the probability that the true query value is at least
// (gap + threshold) − t, i.e. the coverage of the lower confidence bound.
func GapLowerTailProbability(t, eps0, epsStar float64) float64 {
	if t < 0 {
		panic(fmt.Sprintf("postprocess: t = %v must be non-negative", t))
	}
	if !(eps0 > 0) || !(epsStar > 0) {
		panic(fmt.Sprintf("postprocess: eps0 = %v and epsStar = %v must be positive", eps0, epsStar))
	}
	if sameEps(eps0, epsStar) {
		return 1 - (2+eps0*t)*math.Exp(-eps0*t)/4
	}
	num := eps0*eps0*math.Exp(-epsStar*t) - epsStar*epsStar*math.Exp(-eps0*t)
	den := 2 * (eps0*eps0 - epsStar*epsStar)
	return 1 - num/den
}

// sameEps treats the two rates as equal when they agree to within a relative
// tolerance, where the ε₀ ≠ ε⋆ formula becomes numerically unstable.
func sameEps(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(a, b)
}

// GapConfidenceRadius returns the smallest t such that
// P(ηᵢ − η ≥ −t) ≥ confidence, found by bisection on the monotone tail
// probability. The true answer of a query reported with gap γ then satisfies
//
//	q(D) ≥ γ + T − t   with probability ≥ confidence.
func GapConfidenceRadius(confidence, eps0, epsStar float64) (float64, error) {
	if !(confidence > 0 && confidence < 1) {
		return 0, fmt.Errorf("postprocess: confidence %v must be in (0,1)", confidence)
	}
	if !(eps0 > 0) || !(epsStar > 0) {
		return 0, fmt.Errorf("postprocess: rates must be positive, got %v and %v", eps0, epsStar)
	}
	// P(t=0) = 1/2 < any useful confidence; grow the bracket until it covers.
	lo, hi := 0.0, 1/math.Min(eps0, epsStar)
	for GapLowerTailProbability(hi, eps0, epsStar) < confidence {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("postprocess: failed to bracket confidence %v", confidence)
		}
	}
	if confidence <= GapLowerTailProbability(lo, eps0, epsStar) {
		return 0, nil
	}
	for i := 0; i < 200 && hi-lo > 1e-12*(1+hi); i++ {
		mid := (lo + hi) / 2
		if GapLowerTailProbability(mid, eps0, epsStar) < confidence {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// GapLowerConfidenceBound returns the lower confidence bound on the true
// query answer given the released gap, the public threshold and the two noise
// rates: (gap + threshold) − GapConfidenceRadius(confidence, ε₀, ε⋆).
func GapLowerConfidenceBound(gap, threshold, confidence, eps0, epsStar float64) (float64, error) {
	t, err := GapConfidenceRadius(confidence, eps0, epsStar)
	if err != nil {
		return 0, err
	}
	return gap + threshold - t, nil
}
