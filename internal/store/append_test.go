package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"github.com/freegap/freegap/internal/dataset"
)

func TestAppendExtendsDerivedStateIncrementally(t *testing.T) {
	s := New()
	base := testDB(t)
	e, err := s.Register("sales", "test", base)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	delta := [][]int32{{0, 3}, {3, 3, 4}, {2}}
	if _, err := s.Append("sales", delta); err != nil {
		t.Fatalf("Append: %v", err)
	}

	// The appended state must equal a from-scratch build over the combined
	// records...
	combined := base.AppendRecords(delta)
	want := combined.ItemCounts()
	if got := e.ResolveAll(); !reflect.DeepEqual(got, want) {
		t.Errorf("ResolveAll after append = %v, want %v", got, want)
	}
	// ...without ever rescanning the pre-append records: the only full scan
	// on record is the registration-time materialisation.
	if got := e.CountScans(); got != 1 {
		t.Errorf("CountScans after append = %d, want 1 (append must be delta-maintained)", got)
	}

	info := e.Info()
	if info.Records != combined.NumRecords() {
		t.Errorf("Records = %d, want %d", info.Records, combined.NumRecords())
	}
	if info.Items != combined.NumItems() {
		t.Errorf("Items = %d, want %d (delta grew the universe)", info.Items, combined.NumItems())
	}
	if got, want := info.MeanLength, combined.MeanLength(); got != want {
		t.Errorf("MeanLength = %v, want %v", got, want)
	}

	// The arena sketches must describe the appended counts.
	a := e.Arena()
	if !a.Has(4) {
		t.Error("presence bitset missed the newly appended item 4")
	}
	if got, want := a.MaxCount(), maxOf(want); got != want {
		t.Errorf("MaxCount = %v, want %v", got, want)
	}
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestAppendValidation(t *testing.T) {
	s := NewWithLimits(Limits{MaxRecords: 6, MaxItems: 8})
	if _, err := s.Register("sales", "test", testDB(t)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := s.Append("nope", [][]int32{{0}}); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("append to unknown dataset: err = %v, want ErrUnknownDataset", err)
	}
	if err := s.CheckAppend("sales", [][]int32{{-1}}); err == nil {
		t.Error("negative item id admitted")
	}
	if err := s.CheckAppend("sales", [][]int32{{0}, {1}, {2}}); err == nil {
		t.Error("append past MaxRecords admitted")
	}
	if err := s.CheckAppend("sales", [][]int32{{8}}); err == nil {
		t.Error("append past MaxItems admitted")
	}
	ok := [][]int32{{7}, {0, 1}}
	if err := s.CheckAppend("sales", ok); err != nil {
		t.Errorf("CheckAppend(valid delta): %v", err)
	}
	if _, err := s.Append("sales", ok); err != nil {
		t.Errorf("Append(valid delta): %v", err)
	}
	// A rejected append must leave the dataset untouched.
	if _, err := s.Append("sales", [][]int32{{0}}); err == nil {
		t.Error("append past MaxRecords admitted by Append")
	}
	e, _ := s.Get("sales")
	if got := e.Info().Records; got != 6 {
		t.Errorf("Records after rejected append = %d, want 6", got)
	}
}

func TestAppendFlushesPlanCache(t *testing.T) {
	s := New()
	e, err := s.Register("sales", "test", testDB(t))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	e.Plans().Put("q", &PlanEntry{Answers: []float64{1}})
	if _, ok := e.Plans().Get("q"); !ok {
		t.Fatal("plan not cached")
	}
	if _, err := s.Append("sales", [][]int32{{0}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, ok := e.Plans().Get("q"); ok {
		t.Error("append served a stale compiled plan: the cache must be flushed")
	}
}

func TestRemoveUnlinksArenaFile(t *testing.T) {
	dir := t.TempDir()
	s := New()
	e, err := s.Register("sales", "test", testDB(t))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	path := filepath.Join(dir, "sales.arena")
	if err := WriteArena(path, e.Dataset().NumRecords(), e.Arena()); err != nil {
		t.Fatalf("WriteArena: %v", err)
	}
	if p := e.Arena().Path(); p != path {
		t.Fatalf("arena path = %q, want %q", p, path)
	}
	// The path must survive append generations, or Remove after an append
	// would leak the file.
	if _, err := s.Append("sales", [][]int32{{0, 1}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if p := e.Arena().Path(); p != path {
		t.Fatalf("arena path after append = %q, want %q", p, path)
	}
	if !s.Remove("sales") {
		t.Fatal("Remove reported no dataset")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("arena file still on disk after Remove: stat err = %v", err)
	}
}

func TestExtendZonesMatchesFromScratchBuild(t *testing.T) {
	records := make([][]int32, 300)
	for i := range records {
		records[i] = []int32{int32(i % 7), int32(i % 31), int32(i % 64)}
	}
	base := dataset.New("zones", records[:130])
	z := BuildZones(base, 64)

	delta := records[130:]
	grown := base.AppendRecords(delta)
	got := ExtendZones(z, grown, base.NumRecords())
	want := BuildZones(grown, 64)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExtendZones diverged from a from-scratch build:\n got %+v\nwant %+v", got, want)
	}
	// The shared prefix blocks must not be rescanned state — they are copied
	// — and the original sketches must be untouched.
	if !reflect.DeepEqual(z, BuildZones(base, 64)) {
		t.Error("ExtendZones mutated the old generation's sketches")
	}
}

func TestPlanCacheSecondChanceSweep(t *testing.T) {
	var c PlanCache
	for i := 0; i < DefaultMaxPlans; i++ {
		c.Put(fmt.Sprintf("k%d", i), &PlanEntry{})
	}
	if got := c.Len(); got != DefaultMaxPlans {
		t.Fatalf("Len = %d, want %d", got, DefaultMaxPlans)
	}
	// Touch a working set; the capacity sweep must keep it.
	for i := 0; i < 10; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d missing before sweep", i)
		}
	}
	c.Put("overflow", &PlanEntry{})
	if got := c.Flushes(); got != 1 {
		t.Errorf("Flushes = %d, want 1", got)
	}
	if got := c.Len(); got != 11 {
		t.Errorf("Len after sweep = %d, want 11 (10 hot survivors + the new entry)", got)
	}
	for i := 0; i < 10; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("hot entry k%d evicted by the sweep", i)
		}
	}
	if _, ok := c.Get("k200"); ok {
		t.Error("cold entry survived the sweep")
	}

	// The protected set is capped: a sweep with everything hot must not keep
	// the whole generation (that would just defer the same wholesale flush).
	var full PlanCache
	for i := 0; i < DefaultMaxPlans; i++ {
		key := fmt.Sprintf("k%d", i)
		full.Put(key, &PlanEntry{})
	}
	for i := 0; i < DefaultMaxPlans; i++ {
		full.Get(fmt.Sprintf("k%d", i))
	}
	full.Put("overflow", &PlanEntry{})
	if got := full.Len(); got != maxProtectedPlans+1 {
		t.Errorf("Len after all-hot sweep = %d, want %d", got, maxProtectedPlans+1)
	}
}

func TestAppendConcurrentWithReaders(t *testing.T) {
	s := New()
	e, err := s.Register("sales", "test", testDB(t))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := e.View()
				counts := v.Arena().Counts()
				// A generation view must be internally consistent: the counts
				// slice always matches the view's own dataset universe.
				if len(counts) != v.Dataset().NumItems() {
					t.Error("torn view: counts universe != dataset universe")
					return
				}
				e.ResolveAll()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if _, err := s.Append("sales", [][]int32{{0, 1, 2}, {int32(i % 50)}}); err != nil {
			t.Errorf("Append #%d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if got, want := e.Info().Records, 4+400; got != want {
		t.Errorf("Records = %d, want %d", got, want)
	}
}
