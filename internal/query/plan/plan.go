// Package plan is the query compiler for the composable QuerySpec algebra:
// it normalizes a spec tree into a canonical form, compiles it with a
// greedy, statistics-free planner into a DAG of vectorized passes over the
// columnar arenas, and materializes the resulting full-universe count
// vector.
//
// The planner keeps no table statistics on purpose (the "when greedy beats
// optimal" result: shape-only cost ranks cannot go stale and cost nothing
// to maintain). Each node gets a cost rank from its shape alone — cached
// leaves are free, a filter is a record scan, composites sum their
// operands — and set operations evaluate their operands cheapest-first so
// an intersection can short-circuit to zero before ever paying for a scan.
//
// Two layers make repeated and selective queries cheap:
//
//   - Canonicalization: associative operators are flattened, operands
//     sorted and deduplicated, zero-result subtrees propagated out. Two
//     semantically equal specs (union order, duplicate operands, empty
//     ranges) normalize to one canonical string, which keys the per-dataset
//     compiled-plan cache — a repeated spec costs one lock-free map lookup,
//     with the materialized vector reused verbatim (datasets are immutable,
//     so cached vectors never go stale).
//
//   - Data skipping: filter nodes consult the arena's zone sketches
//     (per-block min/max record length + item bloom) and skip whole record
//     blocks that provably hold no matching record.
package plan

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"github.com/freegap/freegap/internal/engine"
	"github.com/freegap/freegap/internal/store"
)

// Catalog resolves dataset names for cross-dataset joins; the server backs
// it with its dataset store.
type Catalog interface {
	Get(name string) (*store.Entry, error)
}

// Node kinds after normalization: the engine's spec kinds plus the
// zero-result node that rewrites propagate.
const kindZero = "zero"

// Shape-only cost ranks. The planner never consults data statistics; ranks
// order operands so cheap subtrees (cached leaves) evaluate before record
// scans, which is what enables the intersect/minus empty-support
// short-circuit.
const (
	costLeaf   = 1    // cached count-vector lookup
	costFilter = 1000 // record scan (bounded above by skipping, unknown here)
	costJoin   = 5    // the mask pass itself, on top of its operands
)

// node is one normalized spec-tree node. Nodes are immutable once built;
// canon is the canonical encoding of the whole subtree and doubles as the
// plan-cache key and the memoization key for DAG-shared subtrees.
type node struct {
	kind     string
	items    []int32 // item_count: sorted, deduplicated
	contains []int32 // filter: sorted, deduplicated
	minLen   int     // filter record-length bounds (maxLen 0 = unbounded)
	maxLen   int
	minCount float64 // threshold bounds (maxCount 0 = unbounded)
	maxCount float64
	dataset  string  // join: the other dataset's name
	on       *node   // join: the spec over the other dataset
	children []*node // operands, sorted by canon for canonical encoding
	order    []int   // greedy evaluation order over children (cost asc)

	canon string
	cost  int
	mono  bool
}

// normalize rewrites a validated spec into its canonical node form. It
// assumes spec passed engine validation; unknown kinds normalize to a node
// the evaluator rejects.
func normalize(q *engine.QuerySpec) *node {
	switch q.Kind {
	case engine.QueryAllItems:
		return &node{kind: engine.QueryAllItems, canon: "A", cost: costLeaf, mono: true}

	case engine.QueryItemCount:
		items := sortedDedup(q.Items)
		var sb strings.Builder
		sb.WriteString("I(")
		for i, it := range items {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(int(it)))
		}
		sb.WriteByte(')')
		return &node{kind: engine.QueryItemCount, items: items, canon: sb.String(), cost: costLeaf, mono: true}

	case engine.QueryFilter:
		w := q.Where
		if w.MaxLen > 0 && w.MinLen > w.MaxLen {
			return zeroNode() // empty length range: no record can match
		}
		contains := sortedDedup(w.Contains)
		var sb strings.Builder
		sb.WriteString("F(")
		for i, it := range contains {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(int(it)))
		}
		fmt.Fprintf(&sb, ";%d;%d)", w.MinLen, w.MaxLen)
		return &node{
			kind: engine.QueryFilter, contains: contains,
			minLen: w.MinLen, maxLen: w.MaxLen,
			canon: sb.String(), cost: costFilter, mono: true,
		}

	case engine.QueryThreshold:
		child := normalize(q.Of[0])
		if child.kind == kindZero {
			return zeroNode() // thresholding nothing is nothing
		}
		if q.MaxCount > 0 && q.MinCount > q.MaxCount {
			return zeroNode() // empty count range
		}
		n := &node{
			kind: engine.QueryThreshold, minCount: q.MinCount, maxCount: q.MaxCount,
			children: []*node{child}, order: []int{0},
			cost: child.cost + 1,
		}
		n.canon = "T(" + formatCount(q.MinCount) + ";" + formatCount(q.MaxCount) + ";" + child.canon + ")"
		return n

	case engine.QueryUnion, engine.QueryIntersect:
		return normalizeSetOp(q)

	case engine.QueryMinus:
		a, b := normalize(q.Of[0]), normalize(q.Of[1])
		switch {
		case a.kind == kindZero:
			return zeroNode() // nothing minus anything is nothing
		case b.kind == kindZero:
			return a // minus nothing is a no-op
		case a.canon == b.canon:
			return zeroNode() // x minus x is nothing
		}
		return &node{
			kind: engine.QueryMinus, children: []*node{a, b}, order: []int{0, 1},
			canon: "M(" + a.canon + ";" + b.canon + ")",
			cost:  a.cost + b.cost + 1,
		}

	case engine.QueryJoin:
		left := normalize(q.Of[0])
		if left.kind == kindZero {
			return zeroNode()
		}
		var on *node
		if q.On != nil {
			on = normalize(q.On)
		} else {
			on = &node{kind: engine.QueryAllItems, canon: "A", cost: costLeaf, mono: true}
		}
		if on.kind == kindZero {
			return zeroNode() // joining on an empty support masks everything
		}
		return &node{
			kind: engine.QueryJoin, dataset: q.Dataset, on: on,
			children: []*node{left}, order: []int{0},
			canon: "J(" + q.Dataset + ";" + on.canon + ";" + left.canon + ")",
			cost:  left.cost + on.cost + costJoin,
		}

	default:
		// Unreachable for validated specs; evaluated as an error.
		return &node{kind: q.Kind, canon: "?(" + q.Kind + ")"}
	}
}

// normalizeSetOp flattens an associative union/intersect: same-kind
// children are inlined, zero operands rewritten away, duplicates (by canon)
// dropped, and the survivors sorted by canon so operand order never changes
// the canonical form. The greedy evaluation order is separate: operands
// sorted cheapest-first, so intersect can short-circuit on an empty cheap
// support before paying for an expensive scan.
func normalizeSetOp(q *engine.QuerySpec) *node {
	kind := q.Kind
	var flat []*node
	seen := make(map[string]bool, len(q.Of))
	var add func(c *node)
	add = func(c *node) {
		if c.kind == kind {
			for _, cc := range c.children {
				add(cc)
			}
			return
		}
		if seen[c.canon] {
			return
		}
		seen[c.canon] = true
		flat = append(flat, c)
	}
	for _, op := range q.Of {
		add(normalize(op))
	}

	if kind == engine.QueryIntersect {
		for _, c := range flat {
			if c.kind == kindZero {
				return zeroNode() // intersecting with nothing is nothing
			}
		}
	} else {
		kept := flat[:0]
		for _, c := range flat {
			if c.kind != kindZero {
				kept = append(kept, c) // union with nothing is a no-op
			}
		}
		flat = kept
	}
	switch len(flat) {
	case 0:
		return zeroNode()
	case 1:
		return flat[0]
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].canon < flat[j].canon })

	n := &node{kind: kind, children: flat}
	mono, cost := true, 1
	var sb strings.Builder
	if kind == engine.QueryUnion {
		sb.WriteString("U(")
	} else {
		sb.WriteString("N(")
	}
	for i, c := range flat {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(c.canon)
		mono = mono && c.mono
		cost += c.cost
	}
	sb.WriteByte(')')
	n.canon, n.cost, n.mono = sb.String(), cost, mono

	n.order = make([]int, len(flat))
	for i := range n.order {
		n.order[i] = i
	}
	sort.SliceStable(n.order, func(i, j int) bool {
		return flat[n.order[i]].cost < flat[n.order[j]].cost
	})
	return n
}

func zeroNode() *node {
	return &node{kind: kindZero, canon: "0", cost: 0, mono: true}
}

// sortedDedup returns a sorted, duplicate-free copy of items.
func sortedDedup(items []int32) []int32 {
	out := make([]int32, len(items))
	copy(out, items)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

// formatCount renders a threshold bound exactly (shortest round-trip form)
// so distinct bounds never collide in the canonical string.
func formatCount(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Canonical returns the canonical encoding of spec — the plan-cache key.
// Two specs share a canonical form iff the normalizer can prove them
// semantically equal (operand order, duplicates, zero subtrees).
func Canonical(spec *engine.QuerySpec) string {
	return normalize(spec).canon
}

// Hash returns the 64-bit FNV-1a hash of spec's canonical form.
func Hash(spec *engine.QuerySpec) uint64 {
	h := fnv.New64a()
	h.Write([]byte(Canonical(spec)))
	return h.Sum64()
}
