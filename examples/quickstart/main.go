// Quickstart: select the most frequent items of a tiny dataset with
// Noisy-Max-with-Gap and Noisy-Top-K-with-Gap, and show the free gap
// information the classical mechanisms would have thrown away.
package main

import (
	"fmt"
	"log"

	freegap "github.com/freegap/freegap"
)

func main() {
	// A toy workload: how many users bought each of eight products.
	products := []string{"apples", "bananas", "cherries", "dates", "eggs", "figs", "grapes", "honey"}
	counts := []float64{812, 641, 633, 601, 425, 124, 77, 8}

	src := freegap.NewSource(42)

	// 1. Noisy-Max-with-Gap: which product is the best seller, and by how much?
	//    Classic Noisy Max answers only the first question; the gap is free.
	best, err := freegap.MaxWithGap(src, counts, 0.5, true) // counting queries are monotonic
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best seller (eps=0.5): %s, ahead of the runner-up by ≈%.0f purchases\n\n",
		products[best.Index], best.Gap)

	// 2. Noisy-Top-K-with-Gap: the top three products with the noisy margins
	//    separating each from the next.
	topk, err := freegap.NewTopKWithGap(3, 1.0, true)
	if err != nil {
		log.Fatal(err)
	}
	res, err := topk.Run(src, counts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top 3 products (eps=1.0):")
	for rank, sel := range res.Selections {
		fmt.Printf("  #%d %-9s leads the next candidate by ≈%.0f\n", rank+1, products[sel.Index], sel.Gap)
	}

	// The pairwise gap between the 1st and 3rd selection costs nothing extra.
	spread, err := res.PairwiseGap(0, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nestimated spread between #1 and the 4th-best candidate: ≈%.0f purchases\n", spread)
	fmt.Printf("total privacy budget consumed: 1.5 (0.5 + 1.0), tracked per run\n")
}
