package plan

// Plan evaluation: vectorized passes over the columnar arenas. Every node
// evaluates to a full-universe count vector for the entry it runs against
// (group-by item); leaves read the arena's cached column, filters scan
// record blocks under zone-sketch skipping, and composites fold their
// operands elementwise in greedy (cheapest-first) order. Subtrees shared
// between branches evaluate once — the memo keyed by (dataset, canon) turns
// the tree into a DAG. Returned child vectors are never mutated: every
// operator folds into its own freshly allocated output, so a leaf can hand
// out the arena's shared column safely.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/freegap/freegap/internal/engine"
	"github.com/freegap/freegap/internal/store"
)

// DefaultMinParallelRecords is the surviving-record threshold below which a
// filter scan stays serial. Fanning out costs a few goroutine handoffs plus
// one partial count vector and one stamp array per worker, which dominates
// until a scan has at least a few zone blocks of real work; four blocks of
// post-skip records is where the fan-out reliably pays for itself.
const DefaultMinParallelRecords = 4 * store.DefaultZoneBlock

// Options tunes one resolution.
type Options struct {
	// NoSkip disables zone-sketch data skipping; every filter scans every
	// record. Results are identical either way — skipping only elides blocks
	// proven unmatching.
	NoSkip bool
	// NoCache bypasses the compiled-plan cache (both lookup and fill).
	NoCache bool
	// Workers caps the per-scan worker fan-out of block-parallel filter
	// scans: 0 means GOMAXPROCS, 1 forces serial scans. Results are
	// byte-identical at every setting — workers own disjoint runs of zone
	// blocks and their whole-number partial counts merge exactly.
	Workers int
	// MinParallelRecords is the surviving-record threshold below which a
	// filter scan stays serial: 0 means DefaultMinParallelRecords, negative
	// forces the parallel path even on tiny datasets (a differential-test
	// knob, not a serving configuration).
	MinParallelRecords int
}

// Stats aggregates one resolution's scan work across all datasets touched.
type Stats struct {
	// FilterScans is the number of filter nodes that scanned records.
	FilterScans int
	// RecordsScanned counts records actually visited by filter scans.
	RecordsScanned int
	// RecordsSkipped counts records in blocks the zone sketches skipped.
	RecordsSkipped int
	// BlocksSkipped counts whole zone blocks skipped.
	BlocksSkipped int
	// ParallelWorkers is the widest worker fan-out any filter scan of the
	// resolution ran with (1 = every scan was serial, 0 = no scan ran).
	ParallelWorkers int
}

// Result is one resolved composite query.
type Result struct {
	// Answers is the materialized full-universe count vector (read-only; it
	// may be shared with the plan cache or the arena).
	Answers []float64
	// Monotonic reports whether the spec lies in the monotone fragment of
	// the algebra (see engine.QuerySpec.Monotone).
	Monotonic bool
	// CacheHit reports whether the vector came from the compiled-plan cache.
	CacheHit bool
	// Stats is the scan work performed (zero on a cache hit).
	Stats Stats
	// Explain describes the compiled plan.
	Explain *Explain
	// Compile is the time spent normalizing and canonicalizing the spec.
	Compile time.Duration
}

// Explain is the ?explain=1 payload: the compiled plan and what evaluating
// it cost.
type Explain struct {
	Dataset        string `json:"dataset"`
	Canonical      string `json:"canonical"`
	Hash           string `json:"hash"`
	Cached         bool   `json:"cached"`
	Monotonic      bool   `json:"monotonic"`
	Answers        int    `json:"answers"`
	SketchBlocks   int    `json:"sketch_blocks"`
	RecordsTotal   int    `json:"records_total"`
	RecordsScanned int    `json:"records_scanned"`
	RecordsSkipped int    `json:"records_skipped"`
	BlocksSkipped  int    `json:"blocks_skipped"`
	// ParallelWorkers is the widest block-parallel fan-out any filter scan
	// of the plan ran with (1 = serial, 0 = nothing scanned).
	ParallelWorkers int          `json:"parallel_workers"`
	CompileMicros   float64      `json:"compile_us"`
	Plan            *NodeExplain `json:"plan"`
}

// NodeExplain is one plan node in the explain tree.
type NodeExplain struct {
	// Op is the node kind ("filter", "union", "zero", ...).
	Op string `json:"op"`
	// Detail is a compact human-readable summary of the node's parameters.
	Detail string `json:"detail,omitempty"`
	// CostRank is the planner's statistics-free cost rank for the subtree.
	CostRank int `json:"cost_rank"`
	// EvalOrder is the greedy child evaluation order (indices into
	// Children), present when it differs from canonical order.
	EvalOrder []int `json:"eval_order,omitempty"`
	// On is the join's spec over the other dataset.
	On *NodeExplain `json:"on,omitempty"`
	// Children are the operand subplans in canonical order.
	Children []*NodeExplain `json:"children,omitempty"`
}

// Resolve compiles spec against e and materializes its count vector: a
// cache hit returns the stored vector untouched (count_scans unchanged), a
// miss evaluates the plan and fills the cache. cat serves cross-dataset
// joins and may be nil for join-free specs. The spec must already have
// passed engine validation.
func Resolve(cat Catalog, e *store.Entry, spec *engine.QuerySpec, opts Options) (*Result, error) {
	start := time.Now()
	n := normalize(spec)
	compile := time.Since(start)

	if !opts.NoCache {
		if pe, ok := e.Plans().Get(n.canon); ok {
			e.NoteResolution()
			ex := &Explain{Cached: true, CompileMicros: micros(compile)}
			if stored, ok := pe.Explain.(*Explain); ok && stored != nil {
				*ex = *stored // replay the miss-time plan and scan stats
				ex.Cached, ex.CompileMicros = true, micros(compile)
			}
			return &Result{
				Answers: pe.Answers, Monotonic: pe.Monotonic,
				CacheHit: true, Explain: ex, Compile: compile,
			}, nil
		}
	}

	ctx := &evalCtx{cat: cat, opts: opts, memo: make(map[string][]float64)}
	answers, err := ctx.eval(e, n)
	if err != nil {
		return nil, err
	}
	e.NoteResolution()

	v := ctx.view(e)
	ex := &Explain{
		Dataset:         e.Name(),
		Canonical:       n.canon,
		Hash:            fmt.Sprintf("%016x", hashString(n.canon)),
		Monotonic:       n.mono,
		Answers:         len(answers),
		SketchBlocks:    v.Arena().Zones().NumBlocks(),
		RecordsTotal:    v.Dataset().NumRecords(),
		RecordsScanned:  ctx.stats.RecordsScanned,
		RecordsSkipped:  ctx.stats.RecordsSkipped,
		BlocksSkipped:   ctx.stats.BlocksSkipped,
		ParallelWorkers: ctx.stats.ParallelWorkers,
		CompileMicros:   micros(compile),
		Plan:            explainNode(n),
	}
	if !opts.NoCache {
		e.Plans().Put(n.canon, &store.PlanEntry{Answers: answers, Monotonic: n.mono, Explain: ex})
	}
	return &Result{
		Answers: answers, Monotonic: n.mono,
		Stats: ctx.stats, Explain: ex, Compile: compile,
	}, nil
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// evalCtx carries one resolution's shared state.
type evalCtx struct {
	cat   Catalog
	opts  Options
	stats Stats
	// memo shares evaluated subtrees by (dataset, canon): the DAG edge.
	memo map[string][]float64
	// views pins one data generation per entry for the whole resolution, so
	// a concurrent append cannot make two reads of the same dataset disagree
	// (or pair a new dataset with an old arena) mid-plan.
	views map[*store.Entry]store.View
	// stamps backs the per-record distinct-item dedup in filter scans,
	// reused across filter nodes of one resolution; stamp is the running
	// generation counter that keeps scans from seeing each other's marks.
	stamps []int32
	stamp  int32
}

// view returns the resolution's pinned data generation for e, taking the
// snapshot on first use.
func (c *evalCtx) view(e *store.Entry) store.View {
	if c.views == nil {
		c.views = make(map[*store.Entry]store.View)
	}
	v, ok := c.views[e]
	if !ok {
		v = e.View()
		c.views[e] = v
	}
	return v
}

// eval returns n's count vector over e's universe, memoized.
func (c *evalCtx) eval(e *store.Entry, n *node) ([]float64, error) {
	key := e.Name() + "\x00" + n.canon
	if v, ok := c.memo[key]; ok {
		return v, nil
	}
	v, err := c.evalNode(e, n)
	if err != nil {
		return nil, err
	}
	c.memo[key] = v
	return v, nil
}

func (c *evalCtx) evalNode(e *store.Entry, n *node) ([]float64, error) {
	arena := c.view(e).Arena()
	universe := len(arena.Counts())
	switch n.kind {
	case kindZero:
		return make([]float64, universe), nil

	case engine.QueryAllItems:
		return arena.Counts(), nil

	case engine.QueryItemCount:
		// As an algebra operand, item_count is the universe vector masked to
		// the listed items (the legacy root-level projection is served by
		// the resolver's fast path, not here).
		out := make([]float64, universe)
		counts := arena.Counts()
		for _, it := range n.items {
			if arena.Has(it) {
				out[it] = counts[it]
			}
		}
		return out, nil

	case engine.QueryFilter:
		return c.filterScan(e, n), nil

	case engine.QueryThreshold:
		child, err := c.eval(e, n.children[0])
		if err != nil {
			return nil, err
		}
		out := make([]float64, universe)
		for i, v := range child {
			if v >= n.minCount && (n.maxCount == 0 || v <= n.maxCount) {
				out[i] = v
			}
		}
		return out, nil

	case engine.QueryUnion:
		var out []float64
		for _, idx := range n.order {
			v, err := c.eval(e, n.children[idx])
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = append(make([]float64, 0, len(v)), v...)
				continue
			}
			for i, x := range v {
				if x > out[i] {
					out[i] = x
				}
			}
		}
		return out, nil

	case engine.QueryIntersect:
		var out []float64
		for _, idx := range n.order {
			v, err := c.eval(e, n.children[idx])
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = append(make([]float64, 0, len(v)), v...)
			} else {
				for i, x := range v {
					if x < out[i] {
						out[i] = x
					}
				}
			}
			// Greedy short-circuit: an empty support zeroes the whole
			// intersection, so the remaining (costlier) operands never run.
			if emptySupport(out) {
				return out, nil
			}
		}
		return out, nil

	case engine.QueryMinus:
		a, err := c.eval(e, n.children[0])
		if err != nil {
			return nil, err
		}
		if emptySupport(a) {
			return make([]float64, universe), nil
		}
		b, err := c.eval(e, n.children[1])
		if err != nil {
			return nil, err
		}
		out := make([]float64, universe)
		for i, x := range a {
			if b[i] == 0 {
				out[i] = x
			}
		}
		return out, nil

	case engine.QueryJoin:
		left, err := c.eval(e, n.children[0])
		if err != nil {
			return nil, err
		}
		if c.cat == nil {
			return nil, fmt.Errorf("%w: joins need a dataset catalog", engine.ErrBadQuerySpec)
		}
		other, err := c.cat.Get(n.dataset)
		if err != nil {
			return nil, err
		}
		onV, err := c.eval(other, n.on)
		if err != nil {
			return nil, err
		}
		out := make([]float64, universe)
		for i, x := range left {
			if x != 0 && i < len(onV) && onV[i] != 0 {
				out[i] = x
			}
		}
		return out, nil

	default:
		return nil, fmt.Errorf("%w: unknown kind %q", engine.ErrBadQuerySpec, n.kind)
	}
}

func emptySupport(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// scanTokens bounds the extra goroutines block-parallel scans may run
// process-wide, so concurrent resolutions cannot multiply their fan-outs
// into GOMAXPROCS² runnable scanners. A scan that cannot claim tokens
// shrinks its fan-out (down to serial) instead of queueing — correctness
// never depends on the width actually won, only the wall-clock does.
var scanTokens = make(chan struct{}, runtime.GOMAXPROCS(0))

// blockRange is one zone block's record range [lo, hi).
type blockRange struct{ lo, hi int }

// filterScan counts, per item, the records matching the node's predicate —
// the one algebra operation that touches the transactions. Blocks the zone
// sketches prove unmatching are skipped wholesale (unless Options.NoSkip);
// each scan bumps the entry's count_scans and records_skipped observables.
// Surviving blocks are sharded across a bounded worker fan-out when the
// remaining work clears Options.MinParallelRecords; each worker scans a
// disjoint contiguous run of blocks into its own partial vector and the
// partials merge in shard order. Counts are whole numbers, so the merged
// vector is byte-identical to the serial pass at any fan-out.
func (c *evalCtx) filterScan(e *store.Entry, n *node) []float64 {
	v := c.view(e)
	db := v.Dataset()
	out := make([]float64, len(v.Arena().Counts()))
	c.stats.FilterScans++
	e.NoteCountScan()

	// Consult the sketches first: the surviving block list is what both the
	// serial and the parallel path scan. A sketch-less arena (a legacy image)
	// synthesizes default-sized blocks so it can still shard.
	zones := v.Arena().Zones()
	var ranges []blockRange
	surviving, skipped := 0, 0
	if zones.NumBlocks() == 0 {
		total := db.NumRecords()
		for lo := 0; lo < total; lo += store.DefaultZoneBlock {
			hi := lo + store.DefaultZoneBlock
			if hi > total {
				hi = total
			}
			ranges = append(ranges, blockRange{lo, hi})
		}
		surviving = total
	} else {
		for b := 0; b < zones.NumBlocks(); b++ {
			lo, hi := zones.BlockRange(b)
			if !c.opts.NoSkip && zones.SkipBlock(b, n.contains, n.minLen, n.maxLen) {
				c.stats.BlocksSkipped++
				skipped += hi - lo
				continue
			}
			ranges = append(ranges, blockRange{lo, hi})
			surviving += hi - lo
		}
	}
	c.stats.RecordsSkipped += skipped
	e.NoteRecordsSkipped(uint64(skipped))

	if workers := c.scanWorkers(surviving, len(ranges)); workers > 1 {
		if c.parallelScan(db, ranges, surviving, workers, n, out) {
			return out
		}
	}
	c.noteWorkers(1)
	for _, r := range ranges {
		c.scanRange(db, r.lo, r.hi, n, out)
	}
	return out
}

// scanWorkers sizes a scan's worker fan-out: capped by Options.Workers
// (GOMAXPROCS when unset) and the surviving block count, serial below the
// min-work threshold.
func (c *evalCtx) scanWorkers(surviving, blocks int) int {
	w := c.opts.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > blocks {
		w = blocks
	}
	if w < 1 {
		return 1
	}
	min := c.opts.MinParallelRecords
	if min == 0 {
		min = DefaultMinParallelRecords
	}
	if min > 0 && surviving < min {
		return 1
	}
	return w
}

// noteWorkers records the widest fan-out any scan of the resolution used.
func (c *evalCtx) noteWorkers(w int) {
	if w > c.stats.ParallelWorkers {
		c.stats.ParallelWorkers = w
	}
}

// parallelScan shards ranges into up to workers contiguous chunks balanced
// by record count and scans them concurrently, each worker into a private
// partial vector with private dedup stamps, then folds the partials into out
// in shard order. Returns false when no process-wide scan token could be
// claimed — the caller falls back to the serial loop.
func (c *evalCtx) parallelScan(db recordSource, ranges []blockRange, surviving, workers int, n *node, out []float64) bool {
	// Claim tokens for the extra goroutines; the fan-out shrinks rather than
	// waits when other scans hold the budget.
	extra := 0
claim:
	for extra < workers-1 {
		select {
		case scanTokens <- struct{}{}:
			extra++
		default:
			break claim
		}
	}
	if extra == 0 {
		return false
	}
	workers = extra + 1

	// Contiguous shards balanced by surviving records, never more than one
	// shard short of the claimed width.
	target := (surviving + workers - 1) / workers
	shards := make([][]blockRange, 0, workers)
	start, acc := 0, 0
	for i, r := range ranges {
		acc += r.hi - r.lo
		if acc >= target && len(shards) < workers-1 {
			shards = append(shards, ranges[start:i+1])
			start, acc = i+1, 0
		}
	}
	if start < len(ranges) {
		shards = append(shards, ranges[start:])
	}
	for extra > len(shards)-1 { // balancing produced fewer shards than tokens
		<-scanTokens
		extra--
	}

	type partial struct {
		out     []float64
		scanned int
	}
	parts := make([]partial, len(shards))
	var wg sync.WaitGroup
	for i := 1; i < len(shards); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-scanTokens }()
			parts[i].out, parts[i].scanned = scanShard(db, shards[i], n, len(out))
		}(i)
	}
	parts[0].out, parts[0].scanned = scanShard(db, shards[0], n, len(out))
	wg.Wait()

	// Deterministic shard-order merge. The partials hold whole-number counts
	// well below 2^53, so the folded sums are exact and byte-identical to the
	// serial pass no matter how the balancing split the blocks.
	for _, p := range parts {
		c.stats.RecordsScanned += p.scanned
		for it, x := range p.out {
			if x != 0 {
				out[it] += x
			}
		}
	}
	c.noteWorkers(len(shards))
	return true
}

// scanShard scans one worker's run of block ranges into a private vector
// with private dedup state.
func scanShard(db recordSource, shard []blockRange, n *node, universe int) ([]float64, int) {
	out := make([]float64, universe)
	stamps := make([]int32, universe)
	var stamp int32
	scanned := 0
	for _, r := range shard {
		scanned += r.hi - r.lo
		stamp = scanRecords(db, r.lo, r.hi, n, stamps, stamp, out)
	}
	return out, scanned
}

// scanRange scans records [lo, hi) with the resolution-shared dedup stamps
// (the serial path).
func (c *evalCtx) scanRange(db recordSource, lo, hi int, n *node, out []float64) {
	c.stats.RecordsScanned += hi - lo
	if len(c.stamps) < len(out) {
		c.stamps = make([]int32, len(out))
	}
	c.stamp = scanRecords(db, lo, hi, n, c.stamps, c.stamp, out)
}

// scanRecords scans records [lo, hi), adding each matching record once to
// the count of every distinct item it contains (the same per-record dedup
// the registration count uses, via a stamp array). It returns the advanced
// stamp generation for the caller to carry into its next range.
func scanRecords(db recordSource, lo, hi int, n *node, stamps []int32, stamp int32, out []float64) int32 {
	for r := lo; r < hi; r++ {
		rec := db.Record(r)
		if len(rec) < n.minLen || (n.maxLen > 0 && len(rec) > n.maxLen) {
			continue
		}
		if !containsAll(rec, n.contains) {
			continue
		}
		stamp++
		for _, it := range rec {
			if stamps[it] != stamp {
				stamps[it] = stamp
				out[it]++
			}
		}
	}
	return stamp
}

// recordSource is the slice of the Transactions API the scanner needs.
type recordSource interface {
	Record(i int) []int32
	NumRecords() int
}

// containsAll reports whether rec holds every item in want (both may be
// unsorted; want is small — the predicate's contains list).
func containsAll(rec []int32, want []int32) bool {
outer:
	for _, w := range want {
		for _, it := range rec {
			if it == w {
				continue outer
			}
		}
		return false
	}
	return true
}

// explainNode renders the plan tree for the explain payload.
func explainNode(n *node) *NodeExplain {
	ne := &NodeExplain{Op: n.kind, CostRank: n.cost}
	switch n.kind {
	case engine.QueryItemCount:
		ne.Detail = fmt.Sprintf("%d items", len(n.items))
	case engine.QueryFilter:
		ne.Detail = fmt.Sprintf("contains=%d len=%d..%s", len(n.contains), n.minLen, lenBound(n.maxLen))
	case engine.QueryThreshold:
		ne.Detail = "count=" + formatCount(n.minCount) + ".." + countBound(n.maxCount)
	case engine.QueryJoin:
		ne.Detail = "dataset=" + n.dataset
		ne.On = explainNode(n.on)
	}
	if len(n.children) > 0 {
		ne.Children = make([]*NodeExplain, len(n.children))
		for i, ch := range n.children {
			ne.Children[i] = explainNode(ch)
		}
	}
	if len(n.order) > 1 {
		for i, idx := range n.order {
			if i != idx {
				ne.EvalOrder = n.order
				break
			}
		}
	}
	return ne
}

func lenBound(maxLen int) string {
	if maxLen == 0 {
		return "inf"
	}
	return fmt.Sprint(maxLen)
}

func countBound(maxCount float64) string {
	if maxCount == 0 {
		return "inf"
	}
	return formatCount(maxCount)
}
