package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadFIMIBasic(t *testing.T) {
	input := "1 2 3\n\n4 5\n7\n"
	db, err := ReadFIMI(strings.NewReader(input), "test")
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRecords() != 3 {
		t.Fatalf("records = %d, want 3 (blank line skipped)", db.NumRecords())
	}
	if db.NumItems() != 8 {
		t.Fatalf("items = %d, want 8", db.NumItems())
	}
}

func TestReadFIMIErrors(t *testing.T) {
	cases := []string{"1 2 x\n", "1 -2\n"}
	for _, input := range cases {
		if _, err := ReadFIMI(strings.NewReader(input), "bad"); err == nil {
			t.Errorf("expected error for input %q", input)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	db := smallDB()
	var buf bytes.Buffer
	if err := WriteFIMI(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFIMI(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRecords() != db.NumRecords() {
		t.Fatalf("records %d != %d", back.NumRecords(), db.NumRecords())
	}
	for i := 0; i < db.NumRecords(); i++ {
		a, b := db.Record(i), back.Record(i)
		if len(a) != len(b) {
			t.Fatalf("record %d length mismatch", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("record %d item %d: %d != %d", i, j, a[j], b[j])
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "toy.dat")
	db := smallDB()
	if err := WriteFIMIFile(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFIMIFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gotCounts := back.ItemCounts()
	wantCounts := db.ItemCounts()
	for i := range wantCounts {
		if gotCounts[i] != wantCounts[i] {
			t.Fatalf("counts differ after file round trip at item %d", i)
		}
	}
}

func TestReadFIMIFileMissing(t *testing.T) {
	if _, err := ReadFIMIFile("/nonexistent/path/x.dat"); err == nil {
		t.Fatal("expected error for missing file")
	}
}
