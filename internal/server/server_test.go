package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/freegap/freegap/internal/engine"
	"github.com/freegap/freegap/internal/rng"
)

// newTestServer starts an httptest server over a freshly configured Server
// and registers cleanup for both.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, data
}

func decodeInto[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("unmarshal %T from %s: %v", v, data, err)
	}
	return v
}

var testAnswers = []float64{812, 641, 633, 601, 425, 124, 77, 8}

func TestTopKHappyPathTracksBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantBudget: 5})

	resp, data := postJSON(t, ts.URL+"/v1/topk", TopKRequest{Common: Common{Tenant: "acme", Epsilon: 1.0, Answers: testAnswers, Monotonic: true}, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, data)
	}
	out := decodeInto[TopKResponse](t, data)
	if len(out.Selections) != 3 {
		t.Fatalf("got %d selections, want 3", len(out.Selections))
	}
	seen := map[int]bool{}
	for _, sel := range out.Selections {
		if sel.Index < 0 || sel.Index >= len(testAnswers) {
			t.Errorf("selection index %d out of range", sel.Index)
		}
		if seen[sel.Index] {
			t.Errorf("index %d selected twice", sel.Index)
		}
		seen[sel.Index] = true
		if !(sel.Gap > 0) {
			t.Errorf("gap %v for index %d is not strictly positive", sel.Gap, sel.Index)
		}
	}
	if got, want := out.BudgetRemaining, 4.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("remaining after first request = %v, want %v", got, want)
	}

	// A second request draws from the same tenant budget.
	_, data = postJSON(t, ts.URL+"/v1/topk", TopKRequest{Common: Common{Tenant: "acme", Epsilon: 1.5, Answers: testAnswers, Monotonic: true}, K: 2})
	out = decodeInto[TopKResponse](t, data)
	if got, want := out.BudgetRemaining, 2.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("remaining after second request = %v, want %v", got, want)
	}

	// The budget endpoint agrees with the response bookkeeping.
	resp, data = getJSON(t, ts.URL+"/v1/tenants/acme/budget")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budget status = %d, body = %s", resp.StatusCode, data)
	}
	budget := decodeInto[BudgetResponse](t, data)
	if budget.Tenant != "acme" || budget.Charges != 2 {
		t.Errorf("budget = %+v, want tenant acme with 2 charges", budget)
	}
	if math.Abs(budget.Spent-2.5) > 1e-9 || math.Abs(budget.Remaining-2.5) > 1e-9 {
		t.Errorf("budget spent/remaining = %v/%v, want 2.5/2.5", budget.Spent, budget.Remaining)
	}
}

func TestTenantsAreIsolated(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantBudget: 2})
	_, _ = postJSON(t, ts.URL+"/v1/max", MaxRequest{Common: Common{Tenant: "a", Epsilon: 1.5, Answers: testAnswers}})

	// Tenant b still has a full budget.
	resp, data := postJSON(t, ts.URL+"/v1/max", MaxRequest{Common: Common{Tenant: "b", Epsilon: 1.5, Answers: testAnswers}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant b status = %d, body = %s", resp.StatusCode, data)
	}
	out := decodeInto[MaxResponse](t, data)
	if math.Abs(out.BudgetRemaining-0.5) > 1e-9 {
		t.Errorf("tenant b remaining = %v, want 0.5", out.BudgetRemaining)
	}
}

func TestMalformedAndInvalidRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"not json", `{"tenant": `, http.StatusBadRequest, CodeInvalidRequest},
		{"unknown field", `{"tenant":"t","k":1,"epsilon":1,"answers":[1,2,3],"bogus":true}`, http.StatusBadRequest, CodeInvalidRequest},
		{"missing tenant", `{"k":1,"epsilon":1,"answers":[1,2,3]}`, http.StatusBadRequest, CodeInvalidRequest},
		{"zero epsilon", `{"tenant":"t","k":1,"epsilon":0,"answers":[1,2,3]}`, http.StatusBadRequest, CodeInvalidRequest},
		{"negative epsilon", `{"tenant":"t","k":1,"epsilon":-1,"answers":[1,2,3]}`, http.StatusBadRequest, CodeInvalidRequest},
		{"empty answers", `{"tenant":"t","k":1,"epsilon":1,"answers":[]}`, http.StatusBadRequest, CodeInvalidRequest},
		{"k too large", `{"tenant":"t","k":3,"epsilon":1,"answers":[1,2,3]}`, http.StatusBadRequest, CodeInvalidRequest},
		{"k zero", `{"tenant":"t","k":0,"epsilon":1,"answers":[1,2,3]}`, http.StatusBadRequest, CodeInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/topk", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, data)
			}
			env := decodeInto[ErrorEnvelope](t, data)
			if env.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", env.Error.Code, tc.wantCode)
			}
			if env.Error.Message == "" {
				t.Errorf("error message is empty")
			}
		})
	}

	// Validation failures must not charge the budget (the tenant never even
	// gets an accountant for a pure validation error after tenant parsing).
	resp, data := getJSON(t, ts.URL+"/v1/tenants/t/budget")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("budget after failed requests: status = %d, body = %s", resp.StatusCode, data)
	}
}

func TestUnknownMechanismAndTenant(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, data := postJSON(t, ts.URL+"/v1/medians", TopKRequest{Common: Common{Tenant: "t", Epsilon: 1, Answers: testAnswers}, K: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown mechanism status = %d, body = %s", resp.StatusCode, data)
	}
	env := decodeInto[ErrorEnvelope](t, data)
	if env.Error.Code != CodeUnknownMechanism {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeUnknownMechanism)
	}

	resp, data = getJSON(t, ts.URL+"/v1/tenants/nobody/budget")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant status = %d, body = %s", resp.StatusCode, data)
	}
	env = decodeInto[ErrorEnvelope](t, data)
	if env.Error.Code != CodeUnknownTenant {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeUnknownTenant)
	}
}

func TestSVTVariants(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantBudget: 100})
	for _, adaptive := range []bool{false, true} {
		name := "plain"
		if adaptive {
			name = "adaptive"
		}
		t.Run(name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/svt", SVTRequest{Common: Common{Tenant: "svt-" + name, Epsilon: 2.0, Answers: testAnswers, Monotonic: true}, K: 2, Threshold: 500, Adaptive: adaptive})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d, body = %s", resp.StatusCode, data)
			}
			out := decodeInto[SVTResponse](t, data)
			if out.AboveCount != len(out.Above) {
				t.Errorf("above_count %d != len(above) %d", out.AboveCount, len(out.Above))
			}
			if out.QueriesProcessed == 0 || out.QueriesProcessed > len(testAnswers) {
				t.Errorf("queries_processed = %d out of range", out.QueriesProcessed)
			}
			if out.MechanismSpent <= 0 || out.MechanismSpent > 2.0+1e-9 {
				t.Errorf("mechanism_spent = %v out of (0, 2]", out.MechanismSpent)
			}
			for _, a := range out.Above {
				if math.Abs(a.Estimate-(a.Gap+500)) > 1e-9 {
					t.Errorf("estimate %v != gap %v + threshold", a.Estimate, a.Gap)
				}
				if adaptive && a.Branch != "top" && a.Branch != "middle" {
					t.Errorf("adaptive branch %q not top/middle", a.Branch)
				}
			}
			if math.Abs(out.BudgetRemaining-98) > 1e-9 {
				t.Errorf("remaining = %v, want 98 (full reservation charged)", out.BudgetRemaining)
			}
		})
	}
}

// TestBudgetExhaustionUnderConcurrency is the acceptance-criteria test: many
// concurrent requests race for one tenant's budget and exactly
// budget/epsilon of them may win; once spent, requests fail with a
// structured 402 and the accountant never overdrafts.
func TestBudgetExhaustionUnderConcurrency(t *testing.T) {
	s, ts := newTestServer(t, Config{TenantBudget: 1.0, Workers: 4})

	const (
		clients = 24
		reqEps  = 0.3 // 3 requests of 0.3 fit in a budget of 1.0
	)
	var ok, exhausted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			raw, _ := json.Marshal(TopKRequest{Common: Common{Tenant: "shared", Epsilon: reqEps, Answers: testAnswers, Monotonic: true}, K: 2})
			resp, err := http.Post(ts.URL+"/v1/topk", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusPaymentRequired:
				var env ErrorEnvelope
				if err := json.Unmarshal(data, &env); err != nil {
					t.Errorf("402 body not an error envelope: %s", data)
					return
				}
				if env.Error.Code != CodeBudgetExhausted {
					t.Errorf("402 code = %q, want %q", env.Error.Code, CodeBudgetExhausted)
				}
				if env.Error.Remaining == nil {
					t.Errorf("402 envelope missing remaining budget")
				}
				exhausted.Add(1)
			default:
				t.Errorf("unexpected status %d: %s", resp.StatusCode, data)
			}
		}()
	}
	wg.Wait()

	if got := ok.Load(); got != 3 {
		t.Errorf("%d requests admitted, want exactly 3", got)
	}
	if got := exhausted.Load(); got != clients-3 {
		t.Errorf("%d requests rejected, want %d", got, clients-3)
	}
	acct, okT := s.Registry().Lookup("shared")
	if !okT {
		t.Fatal("tenant not registered")
	}
	if spent := acct.Spent(); spent > 1.0+1e-9 {
		t.Errorf("accountant overdrafted: spent %v > budget 1.0", spent)
	}

	// A fresh request with a small epsilon that still fits must succeed.
	resp, data := postJSON(t, ts.URL+"/v1/max", MaxRequest{Common: Common{Tenant: "shared", Epsilon: 0.05, Answers: testAnswers}})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("residual-budget request: status = %d, body = %s", resp.StatusCode, data)
	}
}

func TestDeterministicWithFixedSeedAndOneWorker(t *testing.T) {
	run := func() TopKResponse {
		_, ts := newTestServer(t, Config{Seed: 7, Workers: 1})
		_, data := postJSON(t, ts.URL+"/v1/topk", TopKRequest{Common: Common{Tenant: "det", Epsilon: 1.0, Answers: testAnswers, Monotonic: true}, K: 3})
		return decodeInto[TopKResponse](t, data)
	}
	a, b := run(), run()
	if fmt.Sprintf("%v", a) != fmt.Sprintf("%v", b) {
		t.Errorf("same seed produced different outputs:\n%v\n%v", a, b)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})

	resp, data := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	health := decodeInto[HealthResponse](t, data)
	if health.Status != "ok" || health.Workers != 3 {
		t.Errorf("health = %+v, want status ok with 3 workers", health)
	}

	// Generate one success and one budget rejection, then check the counters.
	_, _ = postJSON(t, ts.URL+"/v1/topk", TopKRequest{Common: Common{Tenant: "m", Epsilon: 1, Answers: testAnswers}, K: 1})
	_, _ = postJSON(t, ts.URL+"/v1/topk", TopKRequest{Common: Common{Tenant: "m", Epsilon: 1e6, Answers: testAnswers}, K: 1})

	resp, data = getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	text := string(data)
	for _, want := range []string{
		"# TYPE freegap_requests_total counter",
		`freegap_requests_total{code="ok",mechanism="topk"} 1`,
		`freegap_budget_exhausted_total{mechanism="topk"} 1`,
		"freegap_in_flight_requests 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{TenantBudget: -1},
		{Workers: -2},
		{MaxAnswers: -1},
		{MaxBodyBytes: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}

	s, err := New(Config{})
	if err != nil {
		t.Fatalf("New with defaults: %v", err)
	}
	defer s.Close()
	cfg := s.Config()
	if cfg.TenantBudget != DefaultTenantBudget || cfg.Workers <= 0 || cfg.Seed == 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestRegistry(t *testing.T) {
	reg, err := NewRegistry(3, 0)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	if _, err := NewRegistry(0, 0); err == nil {
		t.Error("NewRegistry(0, 0) succeeded, want error")
	}
	if _, err := NewRegistry(1, -1); err == nil {
		t.Error("NewRegistry(1, -1) succeeded, want error")
	}
	if _, err := reg.Get(""); err == nil {
		t.Error("Get(\"\") succeeded, want error")
	}
	if _, err := reg.Get(strings.Repeat("x", maxTenantNameLen+1)); err == nil {
		t.Error("oversized tenant id accepted, want error")
	}

	a1, err := reg.Get("t1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	a2, _ := reg.Get("t1")
	if a1 != a2 {
		t.Error("Get returned a different accountant for the same tenant")
	}
	if _, ok := reg.Lookup("t2"); ok {
		t.Error("Lookup invented a tenant")
	}
	if rem, err := reg.Charge("t1", "test", 1); err != nil || math.Abs(rem-2) > 1e-9 {
		t.Errorf("Charge = (%v, %v), want (2, nil)", rem, err)
	}
	reg.Get("t2")
	if got := reg.Tenants(); len(got) != 2 || got[0] != "t1" || got[1] != "t2" {
		t.Errorf("Tenants() = %v, want [t1 t2]", got)
	}
	if reg.Len() != 2 {
		t.Errorf("Len() = %d, want 2", reg.Len())
	}
}

func TestTenantLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTenants: 2})
	for _, tenant := range []string{"a", "b"} {
		resp, data := postJSON(t, ts.URL+"/v1/max", MaxRequest{Common: Common{Tenant: tenant, Epsilon: 0.1, Answers: testAnswers}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant %s: status = %d, body = %s", tenant, resp.StatusCode, data)
		}
	}
	resp, data := postJSON(t, ts.URL+"/v1/max", MaxRequest{Common: Common{Tenant: "c", Epsilon: 0.1, Answers: testAnswers}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third tenant: status = %d, want 429 (body %s)", resp.StatusCode, data)
	}
	env := decodeInto[ErrorEnvelope](t, data)
	if env.Error.Code != CodeTenantLimit {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeTenantLimit)
	}
	// Existing tenants keep working at the cap.
	resp, _ = postJSON(t, ts.URL+"/v1/max", MaxRequest{Common: Common{Tenant: "a", Epsilon: 0.1, Answers: testAnswers}})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("existing tenant rejected at the cap: status = %d", resp.StatusCode)
	}
}

func TestEpsilonBelowMinimumRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/max", MaxRequest{Common: Common{Tenant: "tiny", Epsilon: 1e-12, Answers: testAnswers}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, data)
	}
	env := decodeInto[ErrorEnvelope](t, data)
	if env.Error.Code != CodeInvalidRequest {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeInvalidRequest)
	}
}

// TestShutdownBeforeServe covers the dpserver signal race: a SIGTERM landing
// before Serve starts must not hang — Serve must return ErrServerClosed.
func TestShutdownBeforeServe(t *testing.T) {
	s, err := New(Config{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown before Serve: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := s.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve after Shutdown returned %v, want http.ErrServerClosed", err)
	}
}

func TestOversizedBodyGets413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	big := TopKRequest{Common: Common{Tenant: "t", Epsilon: 1, Answers: make([]float64, 1000)}, K: 1}
	raw, _ := json.Marshal(big)
	resp, err := http.Post(ts.URL+"/v1/topk", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body %s)", resp.StatusCode, data)
	}
	env := decodeInto[ErrorEnvelope](t, data)
	if env.Error.Code != CodeRequestTooLarge {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeRequestTooLarge)
	}
}

// TestPoolCloseWithBlockedSender pins the shutdown contract: a sender queued
// behind a busy pool must get errPoolClosed when the pool closes, never a
// send-on-closed-channel panic.
func TestPoolCloseWithBlockedSender(t *testing.T) {
	p := newWorkerPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.do(context.Background(), func(rng.Source) {
			close(started)
			<-block
		})
	}()
	<-started // worker is now busy

	queued := make(chan error, 1)
	go func() {
		queued <- p.do(context.Background(), func(rng.Source) {})
	}()

	// Let the pool close while the second job is still waiting for a worker,
	// then release the busy one.
	done := make(chan struct{})
	go func() { p.close(); close(done) }()
	close(block)
	wg.Wait()
	<-done

	if err := <-queued; err != nil && !errors.Is(err, errPoolClosed) {
		t.Fatalf("queued do returned %v, want nil or errPoolClosed", err)
	}

	// do after close must fail cleanly too.
	if err := p.do(context.Background(), func(rng.Source) {}); !errors.Is(err, errPoolClosed) {
		t.Fatalf("do after close returned %v, want errPoolClosed", err)
	}
}

func TestPipelineEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantBudget: 10})

	resp, data := postJSON(t, ts.URL+"/v1/pipeline/topk", PipelineTopKRequest{
		Common: Common{Tenant: "p", Epsilon: 2.0, Answers: testAnswers, Monotonic: true}, K: 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pipeline/topk status = %d, body = %s", resp.StatusCode, data)
	}
	topk := decodeInto[PipelineTopKResponse](t, data)
	if len(topk.Estimates) != 3 {
		t.Fatalf("got %d estimates, want 3", len(topk.Estimates))
	}
	for _, est := range topk.Estimates {
		if est.Index < 0 || est.Index >= len(testAnswers) {
			t.Errorf("estimate index %d out of range", est.Index)
		}
	}
	if !(topk.TheoreticalErrorRatio > 0 && topk.TheoreticalErrorRatio < 1) {
		t.Errorf("error ratio %v not in (0, 1)", topk.TheoreticalErrorRatio)
	}
	// The pipeline reserves its full ε, exactly like a serial select+measure.
	if math.Abs(topk.EpsilonSpent-2.0) > 1e-9 || math.Abs(topk.BudgetRemaining-8.0) > 1e-9 {
		t.Errorf("billing = spent %v remaining %v, want 2 and 8", topk.EpsilonSpent, topk.BudgetRemaining)
	}

	resp, data = postJSON(t, ts.URL+"/v1/pipeline/svt", PipelineSVTRequest{
		Common: Common{Tenant: "p", Epsilon: 3.0, Answers: testAnswers, Monotonic: true},
		K:      2, Threshold: 500, Adaptive: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pipeline/svt status = %d, body = %s", resp.StatusCode, data)
	}
	svt := decodeInto[PipelineSVTResponse](t, data)
	if svt.AboveCount != len(svt.Estimates) {
		t.Errorf("above_count %d != %d estimates", svt.AboveCount, len(svt.Estimates))
	}
	for _, est := range svt.Estimates {
		if est.LowerBound >= est.GapEstimate {
			t.Errorf("lower bound %v not below gap estimate %v", est.LowerBound, est.GapEstimate)
		}
	}
	if math.Abs(svt.BudgetRemaining-5.0) > 1e-9 {
		t.Errorf("remaining = %v, want 5 (full reservation charged)", svt.BudgetRemaining)
	}

	// The ledger breaks the spend down by mechanism.
	_, data = getJSON(t, ts.URL+"/v1/tenants/p/budget")
	budget := decodeInto[BudgetResponse](t, data)
	if math.Abs(budget.SpentByMechanism["pipeline/topk"]-2.0) > 1e-9 ||
		math.Abs(budget.SpentByMechanism["pipeline/svt"]-3.0) > 1e-9 {
		t.Errorf("spent_by_mechanism = %v, want pipeline/topk:2 pipeline/svt:3", budget.SpentByMechanism)
	}

	// Unknown pipeline mechanisms get the structured 404 naming the full
	// registry-style name the client must fix.
	resp, data = postJSON(t, ts.URL+"/v1/pipeline/median", PipelineTopKRequest{
		Common: Common{Tenant: "p", Epsilon: 1, Answers: testAnswers}, K: 1,
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown pipeline mechanism status = %d, body = %s", resp.StatusCode, data)
	}
	env := decodeInto[ErrorEnvelope](t, data)
	if env.Error.Code != CodeUnknownMechanism {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeUnknownMechanism)
	}
	if !strings.Contains(env.Error.Message, `"pipeline/median"`) {
		t.Errorf("404 message %q does not name the full mechanism path", env.Error.Message)
	}
}

// renamedMechanism wraps a mechanism under a different registry name.
type renamedMechanism struct {
	engine.Mechanism
	name string
}

func (m renamedMechanism) Name() string { return m.name }

func TestNewRejectsReservedMechanismNames(t *testing.T) {
	base, err := engine.DefaultRegistry().Get("max")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"batch", "tenants", "unknown"} {
		reg := engine.NewRegistry()
		if err := reg.Register(renamedMechanism{base, name}); err != nil {
			t.Fatal(err)
		}
		if _, err := New(Config{Mechanisms: reg}); err == nil {
			t.Errorf("New accepted a registry with the reserved name %q", name)
		}
	}
}

// TestUnknownNamespacedMechanismGets404 pins the structured 404 for
// multi-segment names outside the built-in pipeline/ namespace: custom
// registries may mount namespaced mechanisms, so typos there must get the
// same error envelope as everywhere else.
func TestUnknownNamespacedMechanismGets404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/my-org.v2/topk", MaxRequest{
		Common: Common{Tenant: "t", Epsilon: 1, Answers: testAnswers},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, data)
	}
	env := decodeInto[ErrorEnvelope](t, data)
	if env.Error.Code != CodeUnknownMechanism {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeUnknownMechanism)
	}
	if !strings.Contains(env.Error.Message, `"my-org.v2/topk"`) {
		t.Errorf("404 message %q does not name the full mechanism path", env.Error.Message)
	}
}

// batchBody builds a /v1/batch body from (mechanism, request) pairs.
func batchBody(t *testing.T, tenant string, items ...any) BatchRequest {
	t.Helper()
	if len(items)%2 != 0 {
		t.Fatal("batchBody needs (mechanism, request) pairs")
	}
	req := BatchRequest{Tenant: tenant}
	for i := 0; i < len(items); i += 2 {
		raw, err := json.Marshal(items[i+1])
		if err != nil {
			t.Fatal(err)
		}
		req.Requests = append(req.Requests, BatchItem{Mechanism: items[i].(string), Request: raw})
	}
	return req
}

func TestBatchHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantBudget: 10})

	resp, data := postJSON(t, ts.URL+"/v1/batch", batchBody(t, "acme",
		"max", MaxRequest{Common: Common{Epsilon: 0.5, Answers: testAnswers, Monotonic: true}},
		"topk", TopKRequest{Common: Common{Epsilon: 1.0, Answers: testAnswers, Monotonic: true}, K: 3},
		"svt", SVTRequest{Common: Common{Epsilon: 1.5, Answers: testAnswers, Monotonic: true}, K: 2, Threshold: 500, Adaptive: true},
		"pipeline/topk", PipelineTopKRequest{Common: Common{Epsilon: 2.0, Answers: testAnswers, Monotonic: true}, K: 2},
	))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, body = %s", resp.StatusCode, data)
	}
	out := decodeInto[BatchResponse](t, data)
	if len(out.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(out.Results))
	}
	wantMechs := []string{"max", "topk", "svt", "pipeline/topk"}
	for i, res := range out.Results {
		if res.Mechanism != wantMechs[i] {
			t.Errorf("results[%d].mechanism = %q, want %q (request order must be preserved)", i, res.Mechanism, wantMechs[i])
		}
		if res.Error != nil {
			t.Errorf("results[%d] failed: %+v", i, res.Error)
		}
		if res.Response == nil {
			t.Errorf("results[%d] has no response", i)
		}
	}
	if math.Abs(out.EpsilonSpent-5.0) > 1e-9 || math.Abs(out.BudgetRemaining-5.0) > 1e-9 {
		t.Errorf("batch billing = spent %v remaining %v, want 5 and 5", out.EpsilonSpent, out.BudgetRemaining)
	}

	// One round trip, but the ledger records one charge per item under the
	// item's own mechanism.
	_, data = getJSON(t, ts.URL+"/v1/tenants/acme/budget")
	budget := decodeInto[BudgetResponse](t, data)
	if budget.Charges != 4 {
		t.Errorf("charges = %d, want 4", budget.Charges)
	}
	if math.Abs(budget.SpentByMechanism["svt"]-1.5) > 1e-9 {
		t.Errorf("spent_by_mechanism = %v, want svt:1.5", budget.SpentByMechanism)
	}
}

func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantBudget: 10, MaxBatch: 2})

	okItem := MaxRequest{Common: Common{Epsilon: 0.5, Answers: testAnswers}}
	cases := []struct {
		name string
		body BatchRequest
	}{
		{"no requests", batchBody(t, "t")},
		{"unknown mechanism", batchBody(t, "t", "median", okItem)},
		{"invalid item", batchBody(t, "t", "max", MaxRequest{Common: Common{Epsilon: -1, Answers: testAnswers}})},
		{"tenant mismatch", batchBody(t, "t", "max", MaxRequest{Common: Common{Tenant: "other", Epsilon: 0.5, Answers: testAnswers}})},
		{"over max batch", batchBody(t, "t", "max", okItem, "max", okItem, "max", okItem)},
		{"empty tenant", batchBody(t, "", "max", okItem)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/batch", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, data)
			}
			if env := decodeInto[ErrorEnvelope](t, data); env.Error.Code != CodeInvalidRequest {
				t.Errorf("code = %q, want %q", env.Error.Code, CodeInvalidRequest)
			}
		})
	}

	// A batch with one bad item charges nothing, even for its valid items.
	resp, data := postJSON(t, ts.URL+"/v1/batch", batchBody(t, "t",
		"max", okItem,
		"topk", TopKRequest{Common: Common{Epsilon: 1, Answers: testAnswers}, K: 99},
	))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed batch status = %d, body = %s", resp.StatusCode, data)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/tenants/t/budget"); resp.StatusCode != http.StatusNotFound {
		t.Error("a fully rejected batch provisioned (or charged) the tenant")
	}
}

// TestBatchAtomicityUnderConcurrency is the acceptance-criteria storm: many
// concurrent batches race one tenant's nearly-empty budget. The multi-charge
// is all-or-nothing, so the admitted spend must be a whole number of batch
// totals and can never exceed what the same requests issued serially could.
func TestBatchAtomicityUnderConcurrency(t *testing.T) {
	s, ts := newTestServer(t, Config{TenantBudget: 1.0, Workers: 4})

	const (
		clients   = 20
		itemEps   = 0.2
		batchSize = 3 // 0.6 per batch: exactly one batch fits in ε = 1.0
	)
	var ok, exhausted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := BatchRequest{Tenant: "shared"}
			for j := 0; j < batchSize; j++ {
				raw, _ := json.Marshal(MaxRequest{Common: Common{Epsilon: itemEps, Answers: testAnswers}})
				body.Requests = append(body.Requests, BatchItem{Mechanism: "max", Request: raw})
			}
			raw, _ := json.Marshal(body)
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				out := decodeInto[BatchResponse](t, data)
				for i, res := range out.Results {
					if res.Error != nil || res.Response == nil {
						t.Errorf("admitted batch item %d failed: %+v", i, res.Error)
					}
				}
				ok.Add(1)
			case http.StatusPaymentRequired:
				var env ErrorEnvelope
				if err := json.Unmarshal(data, &env); err != nil || env.Error.Code != CodeBudgetExhausted {
					t.Errorf("402 body not a budget_exhausted envelope: %s", data)
				}
				exhausted.Add(1)
			default:
				t.Errorf("unexpected status %d: %s", resp.StatusCode, data)
			}
		}()
	}
	wg.Wait()

	if got := ok.Load(); got != 1 {
		t.Errorf("%d batches admitted, want exactly 1 (ε = 1.0 fits one 0.6 batch)", got)
	}
	if got := exhausted.Load(); got != clients-1 {
		t.Errorf("%d batches rejected, want %d", got, clients-1)
	}
	acct, okT := s.Registry().Lookup("shared")
	if !okT {
		t.Fatal("tenant not registered")
	}
	spent := acct.Spent()
	if spent > 1.0+1e-9 {
		t.Errorf("accountant overdrafted: spent %v > budget 1.0", spent)
	}
	// Zero partial batches: total spend is a whole number of 0.6 batches and
	// the charge log holds whole batches only.
	if math.Abs(spent-0.6) > 1e-9 {
		t.Errorf("spent %v, want exactly one whole batch (0.6)", spent)
	}
	if n := acct.ChargeCount(); n%batchSize != 0 {
		t.Errorf("charge log holds a partial batch: %d entries", n)
	}

	// 0.4 remains: a 2-item batch of 0.6 must still be refused whole, while
	// a 2-item batch of 0.4 fits.
	tooBig := batchBody(t, "shared",
		"max", MaxRequest{Common: Common{Epsilon: 0.3, Answers: testAnswers}},
		"max", MaxRequest{Common: Common{Epsilon: 0.3, Answers: testAnswers}},
	)
	if resp, data := postJSON(t, ts.URL+"/v1/batch", tooBig); resp.StatusCode != http.StatusPaymentRequired {
		t.Errorf("overcommitted batch status = %d, body = %s", resp.StatusCode, data)
	}
	fits := batchBody(t, "shared",
		"max", MaxRequest{Common: Common{Epsilon: 0.2, Answers: testAnswers}},
		"max", MaxRequest{Common: Common{Epsilon: 0.2, Answers: testAnswers}},
	)
	if resp, data := postJSON(t, ts.URL+"/v1/batch", fits); resp.StatusCode != http.StatusOK {
		t.Errorf("residual-budget batch status = %d, body = %s", resp.StatusCode, data)
	}
}

// TestBatchMatchesSerialSpend pins the overspend bound literally: a batch
// charges its tenant exactly what the same requests issued serially would.
func TestBatchMatchesSerialSpend(t *testing.T) {
	run := func(batch bool) float64 {
		s, ts := newTestServer(t, Config{TenantBudget: 10, Seed: 5, Workers: 1})
		items := []TopKRequest{
			{Common: Common{Tenant: "t", Epsilon: 0.7, Answers: testAnswers, Monotonic: true}, K: 2},
			{Common: Common{Tenant: "t", Epsilon: 0.9, Answers: testAnswers, Monotonic: true}, K: 3},
		}
		if batch {
			body := BatchRequest{Tenant: "t"}
			for _, it := range items {
				it.Tenant = ""
				raw, _ := json.Marshal(it)
				body.Requests = append(body.Requests, BatchItem{Mechanism: "topk", Request: raw})
			}
			if resp, data := postJSON(t, ts.URL+"/v1/batch", body); resp.StatusCode != http.StatusOK {
				t.Fatalf("batch status = %d, body = %s", resp.StatusCode, data)
			}
		} else {
			for _, it := range items {
				if resp, data := postJSON(t, ts.URL+"/v1/topk", it); resp.StatusCode != http.StatusOK {
					t.Fatalf("serial status = %d, body = %s", resp.StatusCode, data)
				}
			}
		}
		acct, _ := s.Registry().Lookup("t")
		return acct.Spent()
	}
	serial, batched := run(false), run(true)
	if math.Abs(serial-batched) > 1e-12 {
		t.Errorf("batch spent %v, serial spent %v — must be identical", batched, serial)
	}
}

func TestHealthzListsMechanisms(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, data := getJSON(t, ts.URL+"/healthz")
	health := decodeInto[HealthResponse](t, data)
	want := []string{"max", "pipeline/svt", "pipeline/topk", "svt", "topk"}
	if fmt.Sprintf("%v", health.Mechanisms) != fmt.Sprintf("%v", want) {
		t.Errorf("mechanisms = %v, want %v", health.Mechanisms, want)
	}
}

// TestBudgetLogOptIn pins the budget endpoint's two shapes: the default
// response serves the aggregated snapshot with no raw log, and ?log=1 opts
// in to the full per-charge history in admission order.
func TestBudgetLogOptIn(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantBudget: 10})

	for i, eps := range []float64{1.5, 0.5} {
		resp, data := postJSON(t, ts.URL+"/v1/topk", TopKRequest{Common: Common{Tenant: "audit", Epsilon: eps, Answers: testAnswers, Monotonic: true}, K: 2})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d, body = %s", i, resp.StatusCode, data)
		}
	}
	resp, data := postJSON(t, ts.URL+"/v1/max", MaxRequest{Common: Common{Tenant: "audit", Epsilon: 0.25, Answers: testAnswers}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("max status = %d, body = %s", resp.StatusCode, data)
	}

	// Default: aggregated snapshot only, no log field.
	_, data = getJSON(t, ts.URL+"/v1/tenants/audit/budget")
	budget := decodeInto[BudgetResponse](t, data)
	if budget.Log != nil {
		t.Errorf("default budget response carries a log: %+v", budget.Log)
	}
	if got := budget.SpentByMechanism["topk"]; math.Abs(got-2.0) > 1e-9 {
		t.Errorf("spent_by_mechanism[topk] = %v, want 2.0", got)
	}
	if budget.Charges != 3 {
		t.Errorf("charges = %d, want 3", budget.Charges)
	}

	// ?log=1: the raw per-charge history in admission order.
	_, data = getJSON(t, ts.URL+"/v1/tenants/audit/budget?log=1")
	budget = decodeInto[BudgetResponse](t, data)
	want := []ChargeJSON{
		{Mechanism: "topk", Epsilon: 1.5},
		{Mechanism: "topk", Epsilon: 0.5},
		{Mechanism: "max", Epsilon: 0.25},
	}
	if len(budget.Log) != len(want) {
		t.Fatalf("log = %+v, want %+v", budget.Log, want)
	}
	for i := range want {
		if budget.Log[i] != want[i] {
			t.Errorf("log[%d] = %+v, want %+v", i, budget.Log[i], want[i])
		}
	}
	var logSum float64
	for _, c := range budget.Log {
		logSum += c.Epsilon
	}
	if math.Abs(logSum-budget.Spent) > 1e-9 {
		t.Errorf("Σ log = %v, spent = %v", logSum, budget.Spent)
	}
}
