package freegap

import (
	"github.com/freegap/freegap/internal/accountant"
	"github.com/freegap/freegap/internal/alignment"
	"github.com/freegap/freegap/internal/baseline"
	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/engine"
	"github.com/freegap/freegap/internal/persist"
	"github.com/freegap/freegap/internal/pipeline"
	"github.com/freegap/freegap/internal/postprocess"
	"github.com/freegap/freegap/internal/rng"
	"github.com/freegap/freegap/internal/server"
	"github.com/freegap/freegap/internal/store"
	"github.com/freegap/freegap/internal/validate"
)

// Source is the random-noise source consumed by every mechanism. Use NewSource
// for a deterministic, splittable generator, or adapt any other uniform
// 64-bit generator by implementing Uint64.
type Source = rng.Source

// Xoshiro is the library's deterministic pseudo-random generator
// (xoshiro256** seeded via SplitMix64).
type Xoshiro = rng.Xoshiro

// NewSource returns a deterministic noise source seeded with the given value.
func NewSource(seed uint64) *Xoshiro { return rng.NewXoshiro(seed) }

// Laplace draws a zero-mean Laplace(scale) sample; exposed for callers that
// need raw noise (e.g. custom measurement stages).
func Laplace(src Source, scale float64) float64 { return rng.Laplace(src, scale) }

// TieProbabilityBound returns the Appendix A.1 bound γεn² on the probability
// of a tie among n sensitivity-1 queries under Discrete Laplace noise of base
// γ, the failure probability of the pure-DP guarantee on finite-precision
// machines.
func TieProbabilityBound(eps, base float64, n int) float64 {
	return rng.TieProbabilityBound(eps, base, n)
}

//
// The paper's mechanisms (internal/core).
//

// NoiseKind selects the additive noise distribution used by the mechanisms.
type NoiseKind = core.NoiseKind

// Noise distributions available to the mechanisms.
const (
	NoiseLaplace         = core.NoiseLaplace
	NoiseDiscreteLaplace = core.NoiseDiscreteLaplace
	NoiseStaircase       = core.NoiseStaircase
)

// TopKWithGap is the Noisy-Top-K-with-Gap mechanism (Algorithm 1 of the
// paper): it selects the approximate top-k queries and releases the noisy
// gaps between consecutive selections at no extra privacy cost.
type TopKWithGap = core.TopKWithGap

// TopKResult is the output of a TopKWithGap run.
type TopKResult = core.TopKResult

// Selection is one selected query index together with its released gap.
type Selection = core.Selection

// MaxWithGapResult is the output of the k = 1 Noisy-Max-with-Gap special case.
type MaxWithGapResult = core.MaxWithGapResult

// NewTopKWithGap returns a Noisy-Top-K-with-Gap mechanism selecting k of the
// supplied queries under budget epsilon. Set monotonic when the query list is
// monotonic (e.g. counting queries); the same budget then buys half the noise.
func NewTopKWithGap(k int, epsilon float64, monotonic bool) (*TopKWithGap, error) {
	return core.NewTopKWithGap(k, epsilon, monotonic)
}

// MaxWithGap runs Noisy-Max-with-Gap: it returns the index of the
// approximately largest query and the noisy gap to the runner-up.
func MaxWithGap(src Source, answers []float64, epsilon float64, monotonic bool) (*MaxWithGapResult, error) {
	return core.MaxWithGap(src, answers, epsilon, monotonic)
}

// SVTWithGap is Sparse-Vector-with-Gap: the Sparse Vector Technique that also
// releases, for each above-threshold answer, the noisy gap above the noisy
// threshold at no extra privacy cost.
type SVTWithGap = core.SVTWithGap

// AdaptiveSVTWithGap is Adaptive-Sparse-Vector-with-Gap (Algorithm 2 of the
// paper): the gap-releasing Sparse Vector variant that charges less budget for
// queries far above the threshold, so it can answer more of them.
type AdaptiveSVTWithGap = core.AdaptiveSVTWithGap

// SVTGapResult is the output of the Sparse Vector variants.
type SVTGapResult = core.SVTGapResult

// SVTItem is one per-query output of the Sparse Vector variants.
type SVTItem = core.SVTItem

// Branch identifies which branch of Adaptive-Sparse-Vector-with-Gap produced
// an answer (and therefore its privacy charge).
type Branch = core.Branch

// Branches of Adaptive-Sparse-Vector-with-Gap.
const (
	BranchBelow  = core.BranchBelow
	BranchTop    = core.BranchTop
	BranchMiddle = core.BranchMiddle
)

// NewSVTWithGap returns a Sparse-Vector-with-Gap mechanism that reports up to
// k queries above threshold under budget epsilon.
func NewSVTWithGap(k int, epsilon, threshold float64, monotonic bool) (*SVTWithGap, error) {
	return core.NewSVTWithGap(k, epsilon, threshold, monotonic)
}

// NewAdaptiveSVTWithGap returns an Adaptive-Sparse-Vector-with-Gap mechanism
// provisioned to answer at least k above-threshold queries under budget
// epsilon (and more when queries clear the threshold by a wide margin).
func NewAdaptiveSVTWithGap(k int, epsilon, threshold float64, monotonic bool) (*AdaptiveSVTWithGap, error) {
	return core.NewAdaptiveSVTWithGap(k, epsilon, threshold, monotonic)
}

//
// Classical baselines (internal/baseline).
//

// LaplaceMechanism answers vector queries with coordinate-wise Laplace noise;
// it is the measurement stage of the select-then-measure protocols.
type LaplaceMechanism = baseline.LaplaceMechanism

// NoisyTopK is the classical Noisy Top-K mechanism (indices only, no gaps).
type NoisyTopK = baseline.NoisyTopK

// SparseVector is the classical Sparse Vector Technique (no gaps, no
// adaptivity) in the Lyu et al. formulation.
type SparseVector = baseline.SparseVector

// ExponentialMechanism is the exponential mechanism selection baseline.
type ExponentialMechanism = baseline.ExponentialMechanism

// NewLaplaceMechanism returns a Laplace mechanism for a query of the given
// total L1 sensitivity under budget epsilon.
func NewLaplaceMechanism(epsilon, sensitivity float64) (*LaplaceMechanism, error) {
	return baseline.NewLaplaceMechanism(epsilon, sensitivity)
}

// NewNoisyTopK returns the classical (gap-free) Noisy Top-K mechanism.
func NewNoisyTopK(k int, epsilon float64, monotonic bool) (*NoisyTopK, error) {
	return baseline.NewNoisyTopK(k, epsilon, monotonic)
}

// NewSparseVector returns the classical Sparse Vector Technique with the given
// threshold/query budget split theta (use ThetaLyu for the recommended value).
func NewSparseVector(k int, epsilon, threshold, theta float64, monotonic bool) (*SparseVector, error) {
	return baseline.NewSparseVector(k, epsilon, threshold, theta, monotonic)
}

// NewExponentialMechanism returns the exponential mechanism with the given
// utility sensitivity.
func NewExponentialMechanism(epsilon, sensitivity float64) (*ExponentialMechanism, error) {
	return baseline.NewExponentialMechanism(epsilon, sensitivity)
}

// ThetaLyu returns the Lyu et al. recommended budget split between the Sparse
// Vector threshold and its queries: 1/(1+(2k)^{2/3}), or 1/(1+k^{2/3}) for
// monotonic query lists.
func ThetaLyu(k int, monotonic bool) float64 { return baseline.ThetaLyu(k, monotonic) }

//
// Post-processing estimators (internal/postprocess).
//

// BLUE computes the best linear unbiased estimate of the top-k query values
// from k independent noisy measurements and the k−1 adjacent gaps released by
// Noisy-Top-K-with-Gap, where lambda is Var(selection noise)/Var(measurement
// noise) (Theorem 3).
func BLUE(measurements, gaps []float64, lambda float64) ([]float64, error) {
	return postprocess.BLUE(measurements, gaps, lambda)
}

// BLUEFromVariances is BLUE with lambda derived from the two noise variances.
func BLUEFromVariances(measurements, gaps []float64, measurementVariance, selectionNoiseVariance float64) ([]float64, error) {
	return postprocess.BLUEFromVariances(measurements, gaps, measurementVariance, selectionNoiseVariance)
}

// ErrorReductionRatio returns the Corollary 1 ratio (1+λk)/(k+λk) between the
// BLUE's squared error and the measurement-only squared error.
func ErrorReductionRatio(k int, lambda float64) float64 {
	return postprocess.ErrorReductionRatio(k, lambda)
}

// TopKExpectedImprovementPercent returns the theoretical percent MSE
// improvement of the BLUE over plain measurements (Figures 1b and 2b).
func TopKExpectedImprovementPercent(k int, lambda float64) float64 {
	return postprocess.TopKExpectedImprovementPercent(k, lambda)
}

// SVTExpectedImprovementPercent returns the theoretical percent MSE
// improvement of combining Sparse-Vector gaps with measurements (Figures 1a
// and 2a).
func SVTExpectedImprovementPercent(k int, monotonic bool) float64 {
	return postprocess.SVTExpectedImprovementPercent(k, monotonic)
}

// CombineByInverseVariance merges two unbiased estimates of the same quantity
// into the minimum-variance linear combination and returns it with its
// variance (Section 6.2).
func CombineByInverseVariance(a, varA, b, varB float64) (estimate, variance float64, err error) {
	return postprocess.CombineByInverseVariance(a, varA, b, varB)
}

// GapConfidenceRadius returns the Lemma 5 radius t such that the true query
// answer is at least (gap + threshold) − t with the given confidence, for
// threshold noise rate eps0 and query noise rate epsStar.
func GapConfidenceRadius(confidence, eps0, epsStar float64) (float64, error) {
	return postprocess.GapConfidenceRadius(confidence, eps0, epsStar)
}

// GapLowerConfidenceBound returns the Lemma 5 lower confidence bound on a
// query's true answer given its released gap and the public threshold.
func GapLowerConfidenceBound(gap, threshold, confidence, eps0, epsStar float64) (float64, error) {
	return postprocess.GapLowerConfidenceBound(gap, threshold, confidence, eps0, epsStar)
}

//
// Privacy budget accounting (internal/accountant).
//

// Accountant tracks privacy-loss budget under sequential composition.
type Accountant = accountant.Accountant

// NewAccountant returns an accountant with the given total ε budget.
func NewAccountant(budget float64) (*Accountant, error) { return accountant.New(budget) }

//
// Transaction datasets (internal/dataset).
//

// Dataset is a transaction database whose item counts form the counting-query
// workload used throughout the paper's experiments.
type Dataset = dataset.Transactions

// ReadFIMIFile loads a transaction database in the FIMI text format (one
// transaction per line, space-separated item ids) — the format the paper's
// datasets are distributed in.
func ReadFIMIFile(path string) (*Dataset, error) { return dataset.ReadFIMIFile(path) }

// NewSyntheticBMSPOS generates the BMS-POS stand-in dataset (see DESIGN.md §5)
// scaled down by the given factor (1 = published size).
func NewSyntheticBMSPOS(seed uint64, scale int) *Dataset {
	return dataset.BMSPOSConfig().ScaledDown(scale).Generate(seed)
}

// NewSyntheticKosarak generates the Kosarak stand-in dataset scaled down by
// the given factor.
func NewSyntheticKosarak(seed uint64, scale int) *Dataset {
	return dataset.KosarakConfig().ScaledDown(scale).Generate(seed)
}

// NewSyntheticT40I10D100K generates the IBM Quest T40I10D100K dataset scaled
// down by the given factor.
func NewSyntheticT40I10D100K(seed uint64, scale int) *Dataset {
	return dataset.T40I10D100KConfig().ScaledDown(scale).Generate(seed)
}

// RandomThreshold draws a Sparse-Vector threshold between the top-2k-th and
// top-8k-th largest counts, the protocol of Section 7.2.
func RandomThreshold(src Source, counts []float64, k int) float64 {
	return dataset.RandomThreshold(src, counts, k)
}

//
// Server-side dataset catalog (internal/store).
//

// DatasetStore is the server-side catalog of named appendable datasets. Each
// registration precomputes the dataset's item-count vector once, and appends
// extend it incrementally (a delta-maintained copy replaces the current
// generation atomically); resolved requests are served from that cached
// slice, never by rescanning the transactions.
type DatasetStore = store.Store

// DatasetEntry is one catalogued dataset with its precomputed counts and
// resolution counters.
type DatasetEntry = store.Entry

// DatasetInfo summarises a catalogued dataset (stats plus the resolution and
// scan counters that make the count caching observable).
type DatasetInfo = store.Info

// DatasetStoreLimits bounds what a DatasetStore accepts: catalog size, item
// universe, and record count.
type DatasetStoreLimits = store.Limits

// DatasetPreload describes one dataset to catalogue at server construction:
// a FIMI-format file or a synthetic generator.
type DatasetPreload = store.Preload

// ErrUnknownDataset reports a lookup of an uncatalogued dataset name; the
// server maps it to a 404 with code "unknown_dataset".
var ErrUnknownDataset = store.ErrUnknownDataset

// NewDatasetStore returns an empty dataset catalog with the default limits.
func NewDatasetStore() *DatasetStore { return store.New() }

// NewDatasetStoreWithLimits returns an empty dataset catalog with the given
// limits.
func NewDatasetStoreWithLimits(lim DatasetStoreLimits) *DatasetStore {
	return store.NewWithLimits(lim)
}

// GenerateSyntheticDataset builds one of the calibrated synthetic stand-ins
// for the paper's datasets by kind: "bmspos", "kosarak" or "t40i10d100k".
func GenerateSyntheticDataset(kind string, scale int, seed uint64) (*Dataset, error) {
	return store.GenerateSynthetic(kind, scale, seed)
}

//
// Empirical privacy auditing (internal/validate).
//

// AuditMechanism adapts a mechanism for the empirical privacy audit: one run
// on the given answers, summarised as a discrete output key.
type AuditMechanism = validate.Mechanism

// AuditConfig controls the Monte-Carlo privacy audit.
type AuditConfig = validate.AuditConfig

// AuditResult is the outcome of an empirical privacy audit.
type AuditResult = validate.Result

// EstimateEpsilon estimates the empirical privacy loss of a mechanism from its
// output histograms on two adjacent query vectors.
func EstimateEpsilon(mech AuditMechanism, answersD, answersDPrime []float64, cfg AuditConfig) (AuditResult, error) {
	return validate.EstimateEpsilon(mech, answersD, answersDPrime, cfg)
}

// AuditTopK adapts Noisy-Top-K-with-Gap for auditing (keyed on the selected
// indices).
func AuditTopK(k int, epsilon float64, monotonic bool) AuditMechanism {
	return validate.TopKIndexMechanism(k, epsilon, monotonic)
}

// AuditAdaptiveSVT adapts Adaptive-Sparse-Vector-with-Gap for auditing (keyed
// on the per-query branch pattern).
func AuditAdaptiveSVT(k int, epsilon, threshold float64, monotonic bool) AuditMechanism {
	return validate.SVTPatternMechanism(k, epsilon, threshold, monotonic)
}

//
// End-to-end pipelines (internal/pipeline).
//

// TopKPipelineConfig configures the Section 5.2 select → measure → refine
// pipeline.
type TopKPipelineConfig = pipeline.TopKConfig

// TopKPipelineResult is the output of RunTopKPipeline.
type TopKPipelineResult = pipeline.TopKPipelineResult

// TopKEstimate is one refined estimate from the Top-K pipeline.
type TopKEstimate = pipeline.TopKEstimate

// SVTPipelineConfig configures the Section 6.2 threshold pipeline.
type SVTPipelineConfig = pipeline.SVTConfig

// SVTPipelineResult is the output of RunSVTPipeline.
type SVTPipelineResult = pipeline.SVTPipelineResult

// SVTEstimate is one refined above-threshold estimate from the SVT pipeline.
type SVTEstimate = pipeline.SVTEstimate

// RunTopKPipeline runs the full Section 5.2 protocol — Noisy-Top-K-with-Gap
// selection, Laplace measurement of the selected queries, and BLUE refinement
// — charging the optional accountant.
func RunTopKPipeline(src Source, answers []float64, cfg TopKPipelineConfig, acct *Accountant) (*TopKPipelineResult, error) {
	return pipeline.RunTopK(src, answers, cfg, acct)
}

// RunSVTPipeline runs the full Section 6.2 protocol — (Adaptive-)Sparse-
// Vector-with-Gap selection, Laplace measurement of the reported queries, and
// inverse-variance combination with Lemma 5 lower bounds — charging the
// optional accountant.
func RunSVTPipeline(src Source, answers []float64, cfg SVTPipelineConfig, acct *Accountant) (*SVTPipelineResult, error) {
	return pipeline.RunSVT(src, answers, cfg, acct)
}

//
// The unified mechanism engine (internal/engine).
//

// Mechanism is one servable DP workload behind the engine's uniform
// interface: Name, NewRequest, Validate, Cost and Execute. The server's
// generic handler, the batch executor and the CLIs all dispatch on it, so
// implementing Mechanism (and registering it) is all it takes to serve a
// new workload.
type Mechanism = engine.Mechanism

// MechanismRegistry maps mechanism names to implementations; the server
// mounts one endpoint per registered name.
type MechanismRegistry = engine.Registry

// MechanismScratch holds the pooled request-scoped working memory a
// Mechanism.Execute draws from: noise and score buffers plus the backing
// arrays of the response's variable-length fields. Passing nil to Execute is
// always correct (buffers are allocated fresh); serving layers keep
// scratches in a sync.Pool and reuse them, releasing each one only after
// the response built from it has been encoded.
type MechanismScratch = engine.Scratch

// NewMechanismScratch returns an empty scratch, ready for pooling.
func NewMechanismScratch() *MechanismScratch { return engine.NewScratch() }

// MechanismRequest is the interface satisfied by every mechanism request
// type (anything embedding RequestCommon).
type MechanismRequest = engine.Request

// MechanismResponse is the interface satisfied by every mechanism response
// type (anything embedding engine.Billing).
type MechanismResponse = engine.Response

// MechanismLimits bounds request sizes at validation time.
type MechanismLimits = engine.Limits

// RequestCommon holds the request fields shared by every mechanism: tenant,
// epsilon, answers (inline, or resolved from a named dataset and query
// spec), monotonicity.
type RequestCommon = engine.Common

// QuerySpec names a counting-query workload over a catalogued dataset, in
// place of inline answers: the two leaf kinds ({"kind": "all_items"},
// {"kind": "item_count", "items": [...]}) plus the composable algebra —
// filters, thresholds, set operations, cross-dataset joins — that the
// server's query planner compiles into cached, sketch-pruned vectorized
// passes. See the README's "Query algebra" section for spec JSON examples.
type QuerySpec = engine.QuerySpec

// RecordPredicate is the per-record filter of a "filter" spec: item-in-set
// plus a record-length range.
type RecordPredicate = engine.RecordPredicate

// QueryResolver turns (dataset, spec) into query answers; the server injects
// a resolver backed by its DatasetStore, and direct engine callers can
// inject their own via ResolveMechanismRequest.
type QueryResolver = engine.Resolver

// Query spec kinds accepted in QuerySpec.Kind.
const (
	// QueryAllItems asks for every item's count — the Section 7 workload.
	QueryAllItems = engine.QueryAllItems
	// QueryItemCount asks for the counts of an explicit item list.
	QueryItemCount = engine.QueryItemCount
	// QueryFilter counts records matching a RecordPredicate, per item.
	QueryFilter = engine.QueryFilter
	// QueryThreshold masks an operand's counts to [min_count, max_count].
	QueryThreshold = engine.QueryThreshold
	// QueryUnion and QueryIntersect are elementwise max/min over operands.
	QueryUnion     = engine.QueryUnion
	QueryIntersect = engine.QueryIntersect
	// QueryMinus keeps the first operand where the second counts zero.
	QueryMinus = engine.QueryMinus
	// QueryJoin masks an operand by another dataset's item support.
	QueryJoin = engine.QueryJoin
)

// ErrBadQuerySpec reports a malformed dataset/query combination; the server
// maps it to a 400 with code "bad_query_spec".
var ErrBadQuerySpec = engine.ErrBadQuerySpec

// ResolveMechanismRequest fills a dataset-backed mechanism request's answers
// in place through the given resolver, as the server does between decoding
// and validation. It is a no-op for requests carrying inline answers.
func ResolveMechanismRequest(req MechanismRequest, r QueryResolver) error {
	return engine.ResolveRequest(req, r)
}

// Engine request/response bodies, shared by the HTTP API and direct engine
// callers.
type (
	// TopKRequest is the topk mechanism's request (POST /v1/topk).
	TopKRequest = engine.TopKRequest
	// TopKResponse is the topk mechanism's response.
	TopKResponse = engine.TopKResponse
	// MaxRequest is the max mechanism's request (POST /v1/max).
	MaxRequest = engine.MaxRequest
	// MaxResponse is the max mechanism's response.
	MaxResponse = engine.MaxResponse
	// SVTRequest is the svt mechanism's request (POST /v1/svt).
	SVTRequest = engine.SVTRequest
	// SVTResponse is the svt mechanism's response.
	SVTResponse = engine.SVTResponse
	// PipelineTopKRequest is the pipeline/topk mechanism's request
	// (POST /v1/pipeline/topk).
	PipelineTopKRequest = engine.PipelineTopKRequest
	// PipelineTopKResponse is the pipeline/topk mechanism's response.
	PipelineTopKResponse = engine.PipelineTopKResponse
	// PipelineSVTRequest is the pipeline/svt mechanism's request
	// (POST /v1/pipeline/svt).
	PipelineSVTRequest = engine.PipelineSVTRequest
	// PipelineSVTResponse is the pipeline/svt mechanism's response.
	PipelineSVTResponse = engine.PipelineSVTResponse
)

// NewMechanismRegistry returns an empty mechanism registry for callers
// assembling a custom set of workloads.
func NewMechanismRegistry() *MechanismRegistry { return engine.NewRegistry() }

// DefaultMechanisms returns a registry with every mechanism the library
// serves: topk, max, svt, and the paper's end-to-end pipeline/topk and
// pipeline/svt workflows.
func DefaultMechanisms() *MechanismRegistry { return engine.DefaultRegistry() }

//
// Multi-tenant DP query serving (internal/server).
//

// Server is the multi-tenant HTTP/JSON query service over the engine's
// mechanisms: POST /v1/topk, /v1/svt, /v1/max, /v1/pipeline/topk and
// /v1/pipeline/svt run the mechanisms against per-tenant privacy budgets,
// POST /v1/batch executes several of them in one round trip under a single
// atomic multi-charge, GET /v1/tenants/{id}/budget reports a tenant's ledger
// with a per-mechanism breakdown, and GET /healthz and /metrics serve
// operations. See cmd/dpserver for the standalone binary.
type Server = server.Server

// BatchRequest is the body of POST /v1/batch: up to MaxBatch mechanism
// requests charged atomically (all-or-nothing) and executed in one round
// trip.
type BatchRequest = server.BatchRequest

// BatchItem is one entry of a BatchRequest.
type BatchItem = server.BatchItem

// BatchResponse is the body of a successful POST /v1/batch.
type BatchResponse = server.BatchResponse

// ServerConfig configures a Server: listen address, initial per-tenant ε
// budget, worker-pool size and noise seed.
type ServerConfig = server.Config

// TenantRegistry is the server's concurrency-safe map of tenant → privacy
// accountant, exposed for embedding the serving layer in larger programs.
type TenantRegistry = server.Registry

// NewServer constructs the multi-tenant DP query service. Mount its Handler
// into an existing http.Server, or use ListenAndServe/Shutdown directly.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewTenantRegistry returns a standalone tenant registry provisioning each
// new tenant with the given initial ε budget. maxTenants caps how many
// tenants may be auto-provisioned (zero means unlimited).
func NewTenantRegistry(initialBudget float64, maxTenants int) (*TenantRegistry, error) {
	return server.NewRegistry(initialBudget, maxTenants)
}

//
// Durable service state (internal/persist).
//

// PersistLog is the durable state log backing a persistent Server: an
// append-only JSON-lines WAL of admitted budget charges and dataset
// registrations, compacted into atomic snapshots. Open one on a state
// directory with OpenPersist and hand it to ServerConfig.Persist; a
// restarted server then resumes with the exact spent-budget state (per
// mechanism) and re-registered datasets of its predecessor.
type PersistLog = persist.Log

// PersistOptions configures durability: fsync mode, flush cadence and
// snapshot compaction threshold.
type PersistOptions = persist.Options

// FsyncMode selects when the WAL is fsynced: FsyncBatch (grouped, off the
// request hot path — the default), FsyncAlways (per charge) or FsyncOff.
type FsyncMode = persist.FsyncMode

// Fsync modes accepted by PersistOptions and the dpserver -fsync flag.
const (
	FsyncBatch  = persist.FsyncBatch
	FsyncAlways = persist.FsyncAlways
	FsyncOff    = persist.FsyncOff
)

// PersistState is the replayed durable state: per-tenant spending and the
// dataset records, as returned by PersistLog.State.
type PersistState = persist.State

// DatasetRecord is one journalled dataset registration.
type DatasetRecord = persist.DatasetRecord

// OpenPersist opens (creating if necessary) a durable state directory,
// replaying the snapshot and WAL — recovering a torn tail to the last
// complete record — and returns the log ready for ServerConfig.Persist.
func OpenPersist(dir string, opts PersistOptions) (*PersistLog, error) {
	return persist.Open(dir, opts)
}

// ParseFsyncMode validates an fsync-mode string ("batch", "always", "off";
// empty selects the default, FsyncBatch).
func ParseFsyncMode(s string) (FsyncMode, error) { return persist.ParseFsyncMode(s) }

//
// Randomness-alignment verification (internal/alignment).
//

// AlignmentReport summarises a white-box randomness-alignment verification.
type AlignmentReport = alignment.Report

// VerifyTopKAlignment checks, by sampling, that the Equation (2) randomness
// alignment of Theorem 2 holds for the given Noisy-Top-K-with-Gap mechanism on
// a sensitivity-1 adjacent pair of answer vectors: the aligned run reproduces
// the output and its cost stays within ε.
func VerifyTopKAlignment(m *TopKWithGap, answersD, answersDPrime []float64, trials int, seed uint64) (AlignmentReport, error) {
	return alignment.VerifyTopK(m, answersD, answersDPrime, trials, seed)
}

// VerifyAdaptiveSVTAlignment checks, by sampling, that the Equation (3)
// randomness alignment of Theorem 4 holds for the given
// Adaptive-Sparse-Vector-with-Gap mechanism on a sensitivity-1 adjacent pair.
func VerifyAdaptiveSVTAlignment(m *AdaptiveSVTWithGap, answersD, answersDPrime []float64, trials int, seed uint64) (AlignmentReport, error) {
	return alignment.VerifyAdaptiveSVT(m, answersD, answersDPrime, trials, seed)
}
