package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/persist"
	"github.com/freegap/freegap/internal/store"
)

// Server hot-path benchmarks: requests are driven straight through the
// handler (no TCP) so the numbers isolate decode → validate → charge →
// mechanism → encode. Tenants get an effectively unlimited budget so the
// accountant never rejects.

const benchBudget = 1e18

func benchAnswers(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64((i*2654435761)%10000) / 3
	}
	return out
}

func mustServer(b *testing.B, cfg Config) *Server {
	b.Helper()
	s, err := New(cfg)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	b.Cleanup(s.Close)
	return s
}

func BenchmarkServerTopK(b *testing.B) {
	s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1, Workers: 1})
	body, err := json.Marshal(TopKRequest{Common: Common{Tenant: "bench", Epsilon: 0.1, Answers: benchAnswers(1024), Monotonic: true}, K: 10})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/topk", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
		}
	}
}

func BenchmarkServerSVTParallel(b *testing.B) {
	s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1})
	body, err := json.Marshal(SVTRequest{Common: Common{Tenant: "bench", Epsilon: 0.1, Answers: benchAnswers(1024), Monotonic: true}, K: 5, Threshold: 1500, Adaptive: true})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/v1/svt", bytes.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
			}
		}
	})
}

func BenchmarkServerMax(b *testing.B) {
	s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1, Workers: 1})
	body, err := json.Marshal(MaxRequest{Common: Common{Tenant: "bench", Epsilon: 0.1, Answers: benchAnswers(1024), Monotonic: true}})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/max", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkServerBatch compares N requests issued as N serial round trips
// against the same N requests in one POST /v1/batch: the batch pays one
// decode/charge/encode plus a single accountant transaction instead of N.
func BenchmarkServerBatch(b *testing.B) {
	const n = 16
	answers := benchAnswers(1024)

	serialBody, err := json.Marshal(MaxRequest{
		Common: Common{Tenant: "bench", Epsilon: 0.1, Answers: answers, Monotonic: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	batch := BatchRequest{Tenant: "bench"}
	itemBody, err := json.Marshal(MaxRequest{
		Common: Common{Epsilon: 0.1, Answers: answers, Monotonic: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		batch.Requests = append(batch.Requests, BatchItem{Mechanism: "max", Request: itemBody})
	}
	batchBody, err := json.Marshal(batch)
	if err != nil {
		b.Fatal(err)
	}

	post := func(b *testing.B, h http.Handler, path string, body []byte) {
		b.Helper()
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
		}
	}

	b.Run("serial", func(b *testing.B) {
		s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1, Workers: 1})
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				post(b, h, "/v1/max", serialBody)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1, Workers: 1, MaxBatch: n})
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, h, "/v1/batch", batchBody)
		}
	})
}

// BenchmarkServerResolvedTopK compares the two ways a top-k selection can be
// driven: "inline" ships the precomputed answer vector with every request
// (the client-side trust model — each request pays to decode the full JSON
// array), "resolved" names a catalogued dataset and an all_items query spec
// (the paper's curator model — a tiny request body answered from the item
// counts the store precomputed once at registration, with no per-request
// transaction rescans). The gap between the two is the cached-counts win.
func BenchmarkServerResolvedTopK(b *testing.B) {
	db, err := store.GenerateSynthetic("bmspos", 100, 7)
	if err != nil {
		b.Fatal(err)
	}
	newServerWithDataset := func(b *testing.B) *Server {
		b.Helper()
		s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1, Workers: 1})
		if _, err := s.RegisterDataset("pos", "synthetic:bmspos", db); err != nil {
			b.Fatal(err)
		}
		return s
	}

	post := func(b *testing.B, h http.Handler, body []byte) {
		b.Helper()
		req := httptest.NewRequest(http.MethodPost, "/v1/topk", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
		}
	}

	b.Run("inline", func(b *testing.B) {
		s := newServerWithDataset(b)
		// What a client in the old trust model would send: the full
		// item-count vector, recomputed here once and decoded per request.
		body, err := json.Marshal(TopKRequest{
			Common: Common{Tenant: "bench", Epsilon: 0.1, Answers: db.ItemCounts(), Monotonic: true},
			K:      10,
		})
		if err != nil {
			b.Fatal(err)
		}
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, h, body)
		}
	})
	b.Run("resolved", func(b *testing.B) {
		s := newServerWithDataset(b)
		body := []byte(`{"tenant":"bench","epsilon":0.1,"k":10,"dataset":"pos","queries":{"kind":"all_items"}}`)
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, h, body)
		}
		b.StopTimer()
		// The benchmark's claim, enforced: b.N resolved requests performed
		// exactly one transaction scan (the registration precompute).
		entry, err := s.Datasets().Get("pos")
		if err != nil {
			b.Fatal(err)
		}
		if got := entry.CountScans(); got != 1 {
			b.Fatalf("CountScans = %d after %d resolved requests, want 1", got, b.N)
		}
	})
}

// BenchmarkServerTopKPersist runs the exact BenchmarkServerTopK workload
// against a server journalling every charge into a WAL, in the three fsync
// modes. The acceptance bar is "memory" vs "persist/batch" (the default
// mode): group fsync keeps the journal append off the request critical path,
// so the persisted hot path must stay within ~10% of the in-memory baseline.
// "persist/always" shows what per-charge fsync costs instead.
func BenchmarkServerTopKPersist(b *testing.B) {
	body, err := json.Marshal(TopKRequest{Common: Common{Tenant: "bench", Epsilon: 0.1, Answers: benchAnswers(1024), Monotonic: true}, K: 10})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, cfg Config) {
		s := mustServer(b, cfg)
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/topk", bytes.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
			}
		}
	}

	b.Run("memory", func(b *testing.B) {
		run(b, Config{TenantBudget: benchBudget, Seed: 1, Workers: 1})
	})
	for _, mode := range []persist.FsyncMode{persist.FsyncBatch, persist.FsyncAlways, persist.FsyncOff} {
		b.Run("persist/"+string(mode), func(b *testing.B) {
			lg, err := persist.Open(b.TempDir(), persist.Options{Fsync: mode})
			if err != nil {
				b.Fatal(err)
			}
			run(b, Config{TenantBudget: benchBudget, Seed: 1, Workers: 1, Persist: lg})
		})
	}
}

// BenchmarkServerFilteredQuery drives a composite filter spec through the
// query compiler on a clustered multi-block dataset. "selective" matches a
// single zone block, so sketch-based skipping elides ~97% of the records;
// "noskip" is the same query with skipping disabled (the denominator of the
// ≥5× skipping claim); "unselective" is the adversarial shape where every
// block matches and skipping can only lose its (tiny) probe cost. "cold"
// resets the plan cache every iteration so each request compiles and scans;
// "warm" serves the cached vector — the compiled-plan cache hit path.
func BenchmarkServerFilteredQuery(b *testing.B) {
	const blocks = 32
	clustered := make([][]int32, 0, blocks*store.DefaultZoneBlock)
	for blk := 0; blk < blocks; blk++ {
		base := int32(blk * 8)
		for i := 0; i < store.DefaultZoneBlock; i++ {
			clustered = append(clustered, []int32{base, base + int32(i%8)})
		}
	}
	uniform := make([][]int32, blocks*store.DefaultZoneBlock)
	for i := range uniform {
		uniform[i] = []int32{0, int32(1 + i%200)}
	}

	selectiveBody := []byte(`{"tenant":"bench","epsilon":0.1,"k":5,"dataset":"blocks","queries":{"kind":"filter","where":{"contains":[200]}}}`)
	unselectiveBody := []byte(`{"tenant":"bench","epsilon":0.1,"k":5,"dataset":"blocks","queries":{"kind":"filter","where":{"contains":[0]}}}`)

	run := func(b *testing.B, cfg Config, recs [][]int32, body []byte, cold bool) {
		s := mustServer(b, cfg)
		if _, err := s.RegisterDataset("blocks", "bench:filtered", dataset.New("blocks", recs)); err != nil {
			b.Fatal(err)
		}
		entry, err := s.Datasets().Get("blocks")
		if err != nil {
			b.Fatal(err)
		}
		h := s.Handler()
		if !cold { // prime the plan cache once
			req := httptest.NewRequest(http.MethodPost, "/v1/topk", bytes.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("prime status = %d, body = %s", w.Code, w.Body.String())
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if cold {
				entry.Plans().Reset()
			}
			req := httptest.NewRequest(http.MethodPost, "/v1/topk", bytes.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(entry.RecordsSkipped())/float64(b.N), "recskipped/op")
		if !cold && entry.CountScans() != 2 {
			// Registration + the priming request: warm iterations must all
			// be plan-cache hits.
			b.Fatalf("CountScans = %d after %d warm requests, want 2", entry.CountScans(), b.N)
		}
	}

	base := Config{TenantBudget: benchBudget, Seed: 1, Workers: 1}
	noskip := Config{TenantBudget: benchBudget, Seed: 1, Workers: 1, DisableQuerySkipping: true}
	b.Run("selective/cold", func(b *testing.B) { run(b, base, clustered, selectiveBody, true) })
	b.Run("selective/noskip", func(b *testing.B) { run(b, noskip, clustered, selectiveBody, true) })
	b.Run("selective/warm", func(b *testing.B) { run(b, base, clustered, selectiveBody, false) })
	b.Run("unselective/cold", func(b *testing.B) { run(b, base, uniform, unselectiveBody, true) })
}

// BenchmarkDatasetAppend measures the streaming-ingest path: one small FIMI
// delta POSTed against a 65k-record catalogued dataset. The append installs a
// delta-maintained generation — count vector, sketches and zone extensions —
// and never rescans the resident records, so the per-append cost must stay
// flat in the dataset size. The catalogue entry is rebuilt off the clock
// every few thousand iterations to keep the dataset from growing unboundedly
// across b.N.
func BenchmarkDatasetAppend(b *testing.B) {
	recs := make([][]int32, 65_536)
	for i := range recs {
		recs[i] = []int32{int32(i % 97)}
	}
	s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1, Workers: 1})
	register := func() {
		s.Datasets().Remove("grow")
		if _, err := s.RegisterDataset("grow", "bench:append", dataset.New("grow", recs)); err != nil {
			b.Fatal(err)
		}
	}
	register()
	h := s.Handler()
	body := []byte(`{"fimi":"7 11\n13\n"}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%4096 == 4095 {
			b.StopTimer()
			register()
			b.StartTimer()
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/datasets/grow/append", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
		}
	}
	b.StopTimer()
	entry, err := s.Datasets().Get("grow")
	if err != nil {
		b.Fatal(err)
	}
	if got := entry.CountScans(); got != 1 {
		b.Fatalf("CountScans = %d after appends, want 1 (append rescanned the dataset)", got)
	}
}

// BenchmarkParallelAppendDistinctDatasets measures write-domain scaling:
// client goroutines append concurrently, each to its own catalogued dataset.
// Under the old global stream lock this was flat in GOMAXPROCS — every
// append serialized on one mutex regardless of target; with per-dataset
// write domains throughput must rise with cores. CI's -cpu=1,2,4 scaling
// matrix runs this row (deliberately named so the 15% single-setting guard
// on BenchmarkDatasetAppend does not also average these numbers in). The
// base datasets are kept small: an append installs a copied generation, so
// a large resident set would make the benchmark measure allocator/GC
// bandwidth (BenchmarkDatasetAppend already covers that cost) instead of
// the write-path coordination this row exists to watch.
func BenchmarkParallelAppendDistinctDatasets(b *testing.B) {
	const numDatasets = 8
	recs := make([][]int32, 256)
	for i := range recs {
		recs[i] = []int32{int32(i % 97)}
	}
	s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1, Workers: 1})
	names := make([]string, numDatasets)
	for i := range names {
		names[i] = fmt.Sprintf("grow%d", i)
		if _, err := s.RegisterDataset(names[i], "bench:parappend", dataset.New(names[i], recs)); err != nil {
			b.Fatal(err)
		}
	}
	h := s.Handler()
	body := []byte(`{"fimi":"7 11\n13\n"}`)
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			// Round-robin the target per op (not per goroutine) so every
			// dataset grows at the same rate whatever the -cpu setting —
			// otherwise the single-goroutine run piles all growth onto one
			// dataset and its larger generation copies skew the comparison.
			name := names[int(next.Add(1)-1)%numDatasets]
			req := httptest.NewRequest(http.MethodPost, "/v1/datasets/"+name+"/append", bytes.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
			}
		}
	})
}
