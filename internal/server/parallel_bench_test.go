package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"github.com/freegap/freegap/internal/store"
)

// BenchmarkServerParallelManyTenants is the multi-core scaling benchmark: 64
// tenants hammered by parallel clients (GOMAXPROCS × b.SetParallelism), each
// request picking its tenant round-robin so every accountant shard, registry
// shard and telemetry cell stays warm. The "inline" variant ships a 256-item
// answer vector per request; the "resolved" variant names a catalogued
// dataset, so the request body is tiny and the serving cost is pure
// dispatch + charge + mechanism. The single-mutex baseline serializes every
// request of every tenant on four global locks (accountant, registry,
// telemetry, store); the sharded hot path should scale with cores instead.
func BenchmarkServerParallelManyTenants(b *testing.B) {
	const tenants = 64
	answers := benchAnswers(256)

	// One pre-marshalled body per tenant, so the benchmark loop does no
	// JSON encoding of its own.
	inlineBodies := make([][]byte, tenants)
	for t := 0; t < tenants; t++ {
		body, err := json.Marshal(TopKRequest{
			Common: Common{Tenant: fmt.Sprintf("tenant-%02d", t), Epsilon: 0.01, Answers: answers, Monotonic: true},
			K:      5,
		})
		if err != nil {
			b.Fatal(err)
		}
		inlineBodies[t] = body
	}
	resolvedBodies := make([][]byte, tenants)
	for t := 0; t < tenants; t++ {
		resolvedBodies[t] = []byte(fmt.Sprintf(
			`{"tenant":"tenant-%02d","epsilon":0.01,"k":5,"dataset":"pos","queries":{"kind":"all_items"}}`, t))
	}

	run := func(b *testing.B, bodies [][]byte, withDataset bool) {
		s := mustServer(b, Config{TenantBudget: benchBudget, Seed: 1})
		if withDataset {
			db, err := store.GenerateSynthetic("bmspos", 200, 7)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.RegisterDataset("pos", "synthetic:bmspos", db); err != nil {
				b.Fatal(err)
			}
		}
		h := s.Handler()
		var next atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			// Each goroutine walks the tenant ring from its own offset so
			// concurrent requests spread across tenants, the many-tenant
			// contention profile a production server sees.
			i := next.Add(1)
			for pb.Next() {
				body := bodies[i%tenants]
				i++
				req := httptest.NewRequest(http.MethodPost, "/v1/topk", bytes.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("status = %d, body = %s", w.Code, w.Body.String())
				}
			}
		})
	}

	b.Run("inline", func(b *testing.B) { run(b, inlineBodies, false) })
	b.Run("resolved", func(b *testing.B) { run(b, resolvedBodies, true) })
}
