package dataset

import (
	"math"

	"github.com/freegap/freegap/internal/rng"
)

// ZipfSampler draws item identifiers from a Zipf(s) distribution over
// {0, …, n−1}: P(item = i) ∝ 1/(i+1)^s. Transaction-log item popularities are
// famously heavy tailed, which is the property that matters for the paper's
// experiments: the top-k / threshold region of the count histogram has large,
// well-separated counts while the tail is dense and small.
//
// The sampler precomputes the CDF once and draws by binary search, so a
// million-transaction synthetic dataset generates in well under a second.
type ZipfSampler struct {
	cdf []float64
}

// NewZipfSampler builds a sampler over n items with exponent s > 0.
func NewZipfSampler(n int, s float64) *ZipfSampler {
	if n <= 0 {
		panic("dataset: Zipf over empty universe")
	}
	if s <= 0 {
		panic("dataset: Zipf exponent must be positive")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &ZipfSampler{cdf: cdf}
}

// Sample draws one item id.
func (z *ZipfSampler) Sample(src rng.Source) int32 {
	u := rng.Float64(src)
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// SyntheticConfig describes a Zipf-popularity transaction generator calibrated
// to a real dataset's published statistics.
type SyntheticConfig struct {
	Name         string  // display name
	Records      int     // number of transactions
	Items        int     // item universe size
	MeanLength   float64 // mean items per transaction (Poisson-distributed lengths)
	ZipfExponent float64 // skew of item popularity
}

// Generate materialises the synthetic dataset described by the configuration,
// deterministically from the seed.
func (c SyntheticConfig) Generate(seed uint64) *Transactions {
	src := rng.NewXoshiro(seed)
	zipf := NewZipfSampler(c.Items, c.ZipfExponent)
	records := make([][]int32, c.Records)
	for i := range records {
		length := rng.Poisson(src, c.MeanLength)
		if length < 1 {
			length = 1
		}
		record := make([]int32, 0, length)
		seen := map[int32]bool{}
		for len(record) < length {
			item := zipf.Sample(src)
			if seen[item] {
				// Transactions are sets; resample duplicates, but cap the
				// retries so pathological configurations cannot spin.
				if len(seen) >= c.Items {
					break
				}
				continue
			}
			seen[item] = true
			record = append(record, item)
		}
		records[i] = record
	}
	// Force the advertised universe size even if the tail items never appear.
	t := New(c.Name, records)
	if t.items < c.Items {
		t.items = c.Items
	}
	return t
}

// BMSPOSConfig mirrors the published statistics of the BMS-POS point-of-sale
// log used in Section 7.1: 515,597 transactions over 1,657 distinct items with
// a mean basket of about 6.5 items.
func BMSPOSConfig() SyntheticConfig {
	return SyntheticConfig{
		Name:         "BMS-POS (synthetic)",
		Records:      515597,
		Items:        1657,
		MeanLength:   6.5,
		ZipfExponent: 1.05,
	}
}

// KosarakConfig mirrors the published statistics of the Kosarak click-stream
// log: 990,002 transactions over 41,270 items, mean length about 8.1.
func KosarakConfig() SyntheticConfig {
	return SyntheticConfig{
		Name:         "Kosarak (synthetic)",
		Records:      990002,
		Items:        41270,
		MeanLength:   8.1,
		ZipfExponent: 1.15,
	}
}

// ScaledDown returns a copy of the configuration with the record count divided
// by factor (but at least 1,000 records). The experiment harness uses scaled
// configurations for unit tests and quick benchmark runs; cmd/dpbench uses the
// full-size configurations.
func (c SyntheticConfig) ScaledDown(factor int) SyntheticConfig {
	if factor <= 1 {
		return c
	}
	c.Records /= factor
	if c.Records < 1000 {
		c.Records = 1000
	}
	return c
}

// SyntheticBMSPOS generates the BMS-POS stand-in at full published scale.
func SyntheticBMSPOS(seed uint64) *Transactions { return BMSPOSConfig().Generate(seed) }

// SyntheticKosarak generates the Kosarak stand-in at full published scale.
func SyntheticKosarak(seed uint64) *Transactions { return KosarakConfig().Generate(seed) }
