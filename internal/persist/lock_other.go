//go:build !unix

package persist

import "os"

// lockDir is a no-op on platforms without flock; single-instance use of a
// state directory is then the operator's responsibility.
func lockDir(dir string) (*os.File, error) { return nil, nil }
