// Package query defines the query abstractions consumed by the selection
// mechanisms: numeric queries with a global L1 sensitivity (Definition 2) and
// an optional monotonicity flag (Definition 7), plus batches of item-count
// queries derived from a transaction database.
package query

import (
	"fmt"

	"github.com/freegap/freegap/internal/dataset"
)

// Query is a single real-valued query over a transaction database.
type Query interface {
	// Evaluate returns the query's true answer on the database.
	Evaluate(db *dataset.Transactions) float64
	// Sensitivity returns the query's global L1 sensitivity under the
	// add/remove-one-record notion of adjacency.
	Sensitivity() float64
	// Describe returns a short human-readable label used in reports.
	Describe() string
}

// ItemCount is the workhorse query of Section 7: the number of transactions
// that contain a given item. It has sensitivity 1 and is monotonic.
type ItemCount struct {
	Item int32
}

// Evaluate implements Query.
func (q ItemCount) Evaluate(db *dataset.Transactions) float64 {
	count := 0.0
	for i := 0; i < db.NumRecords(); i++ {
		for _, it := range db.Record(i) {
			if it == q.Item {
				count++
				break
			}
		}
	}
	return count
}

// Sensitivity implements Query. Adding or removing one transaction changes an
// item count by at most 1.
func (q ItemCount) Sensitivity() float64 { return 1 }

// Describe implements Query.
func (q ItemCount) Describe() string { return fmt.Sprintf("count(item=%d)", q.Item) }

// Batch is an ordered collection of queries that are answered together, along
// with the metadata the mechanisms need: the common sensitivity bound and
// whether the list is monotonic in the sense of Definition 7 (adding a record
// moves every answer in the same direction).
type Batch struct {
	Queries     []Query
	Monotonic   bool
	sensitivity float64
}

// NewBatch assembles a batch and records the maximum sensitivity among its
// queries. monotonic must only be set when the caller knows every query moves
// in the same direction under record addition (true for counting queries).
func NewBatch(queries []Query, monotonic bool) *Batch {
	maxSens := 0.0
	for _, q := range queries {
		if s := q.Sensitivity(); s > maxSens {
			maxSens = s
		}
	}
	return &Batch{Queries: queries, Monotonic: monotonic, sensitivity: maxSens}
}

// Len returns the number of queries in the batch.
func (b *Batch) Len() int { return len(b.Queries) }

// Sensitivity returns the largest sensitivity among the batch's queries.
func (b *Batch) Sensitivity() float64 { return b.sensitivity }

// Evaluate answers every query in the batch against db. Batches made
// entirely of item-count queries — the paper's whole workload — are answered
// from a single Transactions.ItemCounts pass over the data (the same pass
// the experiment harness and the server-side dataset store use), instead of
// one full scan per query: O(records·len + queries) rather than the
// quadratic O(queries·records·len).
func (b *Batch) Evaluate(db *dataset.Transactions) []float64 {
	if answers, ok := b.evaluateItemCounts(db); ok {
		return answers
	}
	answers := make([]float64, len(b.Queries))
	for i, q := range b.Queries {
		answers[i] = q.Evaluate(db)
	}
	return answers
}

// evaluateItemCounts answers an all-item-count batch by indexing one
// precomputed count vector. Items outside the database's universe count
// zero, matching ItemCount.Evaluate.
func (b *Batch) evaluateItemCounts(db *dataset.Transactions) ([]float64, bool) {
	if len(b.Queries) == 0 {
		return nil, false
	}
	for _, q := range b.Queries {
		if _, ok := q.(ItemCount); !ok {
			return nil, false
		}
	}
	counts := db.ItemCounts()
	answers := make([]float64, len(b.Queries))
	for i, q := range b.Queries {
		if item := q.(ItemCount).Item; item >= 0 && int(item) < len(counts) {
			answers[i] = counts[item]
		}
	}
	return answers, true
}

// AllItemCounts builds the batch of item-count queries for every item in the
// database (the exact workload of Section 7) together with its precomputed
// answers. The answers come from a single pass over the data rather than one
// pass per query.
func AllItemCounts(db *dataset.Transactions) (*Batch, []float64) {
	counts := db.ItemCounts()
	queries := make([]Query, len(counts))
	for i := range queries {
		queries[i] = ItemCount{Item: int32(i)}
	}
	return NewBatch(queries, true), counts
}

// Answers is a convenience wrapper for mechanisms that operate directly on a
// vector of precomputed query answers. It carries the same metadata as Batch.
type Answers struct {
	Values      []float64
	Sensitivity float64
	Monotonic   bool
}

// CountingAnswers wraps a vector of counting-query answers (sensitivity 1,
// monotonic).
func CountingAnswers(values []float64) Answers {
	return Answers{Values: values, Sensitivity: 1, Monotonic: true}
}

// GeneralAnswers wraps answers of arbitrary sensitivity-1 queries that are
// not known to be monotonic.
func GeneralAnswers(values []float64) Answers {
	return Answers{Values: values, Sensitivity: 1, Monotonic: false}
}

// Validate checks the invariants mechanisms rely on and returns a descriptive
// error when they are violated.
func (a Answers) Validate() error {
	if len(a.Values) == 0 {
		return fmt.Errorf("query: empty answer vector")
	}
	if a.Sensitivity <= 0 {
		return fmt.Errorf("query: sensitivity %v must be positive", a.Sensitivity)
	}
	return nil
}
