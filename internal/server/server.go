// Package server is the multi-tenant DP query service over the library's
// free-gap mechanisms: a long-lived HTTP/JSON facade that lets many
// concurrent clients run the engine's mechanisms — Noisy-Top-K-with-Gap,
// Noisy-Max-with-Gap, the Sparse-Vector-with-Gap variants and the paper's
// end-to-end select–measure–refine pipelines — against per-tenant privacy
// budgets.
//
// Endpoints:
//
//	POST /v1/topk                  Noisy-Top-K-with-Gap selection
//	POST /v1/max                   Noisy-Max-with-Gap (k = 1 special case)
//	POST /v1/svt                   (Adaptive-)Sparse-Vector-with-Gap
//	POST /v1/pipeline/topk         Section 5.2 select–measure–refine pipeline
//	POST /v1/pipeline/svt          Section 6.2 threshold pipeline
//	POST /v1/batch                 up to MaxBatch requests, atomically charged
//	POST /v1/datasets              catalogue a dataset (FIMI upload or synthetic)
//	GET  /v1/datasets              list the catalogued datasets with stats
//	GET  /v1/datasets/{name}       one dataset's stats and resolution counters
//	POST /v1/datasets/{name}/append  append a FIMI delta; derived state updates incrementally
//	POST /v1/monitors              register a served SVT threshold monitor (ε charged once)
//	GET  /v1/monitors              list the registered monitors
//	GET  /v1/monitors/{id}         one monitor's state and budget
//	GET  /v1/monitors/{id}/stream  the monitor's verdicts over Server-Sent Events
//	GET  /v1/tenants/{id}/budget   a tenant's budget ledger with breakdown
//	GET  /healthz                  liveness
//	GET  /metrics                  Prometheus text exposition
//
// Requests to any mechanism endpoint may, instead of carrying inline
// answers, name a catalogued dataset and a counting-query spec
// ({"dataset": "sales", "queries": {"kind": "all_items"}}); the server
// resolves the spec against the dataset's item-count vector — precomputed
// once at registration, never rescanned per request — before validation and
// charging. This is the paper's trust model: the curator holds the
// transaction database and answers counting queries under DP.
//
// The mechanism endpoints are not hand-written: the server walks the engine
// registry and mounts one generic handler (decode → validate → charge →
// pool-execute → encode) per registered mechanism, so registering a new
// engine.Mechanism is all it takes to serve a new workload.
//
// Each tenant is provisioned a fresh accountant with the configured initial ε
// budget on first use; every request charges it atomically before the
// mechanism runs — batches with a single all-or-nothing multi-charge — and an
// exhausted budget yields a structured 402 response with code
// "budget_exhausted". Mechanism executions run on a bounded worker pool whose
// workers each own a private deterministic noise source, keeping the hot path
// allocation-free and, with Workers = 1 and a fixed Seed, fully reproducible.
package server

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/freegap/freegap/internal/engine"
	"github.com/freegap/freegap/internal/persist"
	"github.com/freegap/freegap/internal/store"
	"github.com/freegap/freegap/internal/telemetry"
)

// Version is the served build's version string, exposed as the version
// label of the freegap_build_info metric.
const Version = "0.7.0"

// Defaults applied by Config.withDefaults.
const (
	// DefaultTenantBudget is the initial per-tenant ε budget.
	DefaultTenantBudget = 10.0
	// DefaultMaxAnswers bounds the number of query answers per request.
	DefaultMaxAnswers = 1 << 20
	// DefaultMaxBodyBytes bounds the request body size.
	DefaultMaxBodyBytes = 32 << 20
	// DefaultMaxTenants bounds the number of auto-provisioned tenants.
	DefaultMaxTenants = 100_000
	// DefaultMaxBatch bounds the number of requests per POST /v1/batch.
	DefaultMaxBatch = 64
	// MinEpsilon is the smallest per-request ε accepted (see
	// engine.MinEpsilon).
	MinEpsilon = engine.MinEpsilon
)

// Config configures a Server.
type Config struct {
	// Addr is the listen address for ListenAndServe (e.g. ":8080"). Ignored
	// when the server is mounted via Handler.
	Addr string
	// TenantBudget is the initial ε budget provisioned to each new tenant
	// (default DefaultTenantBudget).
	TenantBudget float64
	// Workers bounds the mechanism worker pool (default GOMAXPROCS).
	Workers int
	// Seed seeds the worker noise sources. Zero draws a fresh seed from
	// crypto/rand; a fixed value makes a Workers = 1 server deterministic,
	// which the tests and benchmarks rely on.
	Seed uint64
	// MaxAnswers bounds the number of answers accepted per request (default
	// DefaultMaxAnswers).
	MaxAnswers int
	// MaxBodyBytes bounds the request body size (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxTenants bounds how many tenants may be auto-provisioned (default
	// DefaultMaxTenants); beyond it, requests from new tenants are rejected
	// so unauthenticated traffic cannot grow the registry without bound.
	MaxTenants int
	// MaxBatch bounds the number of requests per POST /v1/batch (default
	// DefaultMaxBatch).
	MaxBatch int
	// Mechanisms is the engine registry to serve (default
	// engine.DefaultRegistry()). Callers embedding the server can register
	// their own engine.Mechanism implementations and have them served and
	// metered like the built-ins. Register everything before calling New:
	// routes and hot-path counters are mounted once at construction, so
	// later registrations are not served.
	Mechanisms *engine.Registry
	// Datasets is the server-side dataset catalog that dataset-backed
	// requests resolve against and the /v1/datasets endpoints manage
	// (default an empty store.New()). Supply a store built with
	// store.NewWithLimits to change the catalog limits.
	Datasets *store.Store
	// Preload registers datasets into the catalog at construction — FIMI
	// files or synthetic generators — so the server starts with a served
	// data inventory (cmd/dpserver fills it from its -preload flags). With
	// Persist enabled, a preload whose name was already restored from the
	// durable state is skipped rather than rejected, so a server that
	// preloads and persists the same dataset restarts cleanly.
	Preload []store.Preload
	// Debug mounts the net/http/pprof handlers under /debug/pprof/ and adds
	// Go runtime gauges (goroutines, heap, GC pause) to the /metrics scrape.
	// Off by default: profiling endpoints on a multi-tenant privacy service
	// are an operator opt-in, not a standing surface.
	Debug bool
	// AccessLog, when set, receives one structured record per API request:
	// request id, tenant, mechanism, dataset, status, outcome code, ε
	// charged, response bytes, and the total plus per-stage latencies in
	// microseconds. Nil disables per-request logging (slow requests are
	// still reported, see SlowRequestThreshold).
	AccessLog *slog.Logger
	// SlowRequestThreshold is the latency past which a request is logged
	// even with AccessLog unset (to AccessLog when configured, stderr JSON
	// otherwise). Zero applies DefaultSlowRequestThreshold; negative
	// disables slow-request logging.
	SlowRequestThreshold time.Duration
	// MmapDatasets persists each registered dataset's columnar arena (item
	// counts, presence bitset and min/max sketches) into the Persist state
	// directory and memory-maps it back on restart, so a restarted server
	// skips the item-count rescan entirely — the restored dataset's
	// count_scans stays at the single registration-time materialisation.
	// Requires Persist; ignored without it. A missing, truncated or
	// corrupted arena file falls back to a clean rescan.
	MmapDatasets bool
	// DisableQuerySkipping turns off zone-sketch data skipping in composite
	// filter queries: every filter scans every record. Results are
	// byte-identical either way; the switch exists for benchmarking the
	// skipping win and for diagnosing suspected sketch issues.
	DisableQuerySkipping bool
	// ScanWorkers caps the per-query worker fan-out of block-parallel filter
	// scans: 0 (the default) lets each scan use up to GOMAXPROCS workers, 1
	// forces every scan serial. Results are byte-identical at any setting —
	// the knob trades intra-query latency against cross-query throughput on
	// loaded servers. Scans over fewer than plan.DefaultMinParallelRecords
	// surviving records stay serial regardless.
	ScanWorkers int
	// Persist, when set, makes the privacy-critical state durable: the
	// server restores per-tenant spent budgets and the dataset catalog from
	// the log at construction, journals every admitted charge and dataset
	// registration into it while serving, and flushes + compacts it on
	// Shutdown/Close. Ownership of the log passes to the server
	// unconditionally: if New fails, it closes the log before returning.
	// Open the log with persist.Open on the state directory.
	Persist *persist.Log
}

// reservedMechanismNames are engine names New rejects: "batch", "tenants",
// "datasets" and "monitors" because their /v1/<name> routes are taken by
// fixed endpoints, and "unknown" because it is the pinned metric label for
// unknown-mechanism 404s.
var reservedMechanismNames = map[string]bool{"batch": true, "tenants": true, "datasets": true, "monitors": true, "unknown": true}

func (c Config) withDefaults() (Config, error) {
	if c.TenantBudget == 0 {
		c.TenantBudget = DefaultTenantBudget
	}
	if !(c.TenantBudget > 0) {
		return c, fmt.Errorf("server: tenant budget %v must be positive", c.TenantBudget)
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("server: workers %d must be positive", c.Workers)
	}
	if c.MaxAnswers == 0 {
		c.MaxAnswers = DefaultMaxAnswers
	}
	if c.MaxAnswers < 0 {
		return c, fmt.Errorf("server: max answers %d must be positive", c.MaxAnswers)
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxBodyBytes < 0 {
		return c, fmt.Errorf("server: max body bytes %d must be positive", c.MaxBodyBytes)
	}
	if c.MaxTenants == 0 {
		c.MaxTenants = DefaultMaxTenants
	}
	if c.MaxTenants < 0 {
		return c, fmt.Errorf("server: max tenants %d must be positive", c.MaxTenants)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxBatch < 0 {
		return c, fmt.Errorf("server: max batch %d must be positive", c.MaxBatch)
	}
	if c.ScanWorkers < 0 {
		return c, fmt.Errorf("server: scan workers %d must be non-negative", c.ScanWorkers)
	}
	if c.Mechanisms == nil {
		c.Mechanisms = engine.DefaultRegistry()
	}
	if c.Datasets == nil {
		c.Datasets = store.New()
	}
	if c.SlowRequestThreshold == 0 {
		c.SlowRequestThreshold = DefaultSlowRequestThreshold
	}
	if c.SlowRequestThreshold < 0 {
		c.SlowRequestThreshold = -1 // normalized "disabled"
	}
	if c.Seed == 0 {
		seed, err := randomSeed()
		if err != nil {
			return c, fmt.Errorf("server: seeding noise sources: %w", err)
		}
		c.Seed = seed
	}
	return c, nil
}

// randomSeed draws a nonzero 64-bit seed from the OS entropy source.
func randomSeed() (uint64, error) {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return 0, err
	}
	seed := binary.LittleEndian.Uint64(b[:])
	if seed == 0 {
		seed = 1
	}
	return seed, nil
}

// Server is the multi-tenant DP query service.
type Server struct {
	cfg    Config
	engine *engine.Registry
	// mechNames and mechByName are the construction-time snapshot of the
	// engine registry: the mechanisms that actually have routes mounted.
	// healthz, the unknown-mechanism error and the batch executor all use
	// the snapshot, not the live registry, so every surface serves exactly
	// the same mechanism set and never advertises one that would 404.
	mechNames  []string
	mechByName map[string]engine.Mechanism
	reg        *Registry
	datasets   *store.Store
	// datasetHot caches the per-dataset resolution counter (dataset name →
	// *telemetry.Counter) so the resolve path pays one atomic add instead of
	// a registry lookup; entries are added as datasets are registered.
	datasetHot sync.Map
	pool       *workerPool
	mux        *http.ServeMux
	telemetry  *telemetry.CounterSet
	hot        hotCounters
	httpSrv    *http.Server
	started    time.Time
	// persist is the durable state log (nil = in-memory only). The server
	// owns its lifecycle once construction succeeds: Shutdown/Close flush
	// and close it.
	persist *persist.Log
	// accessLog and slowThreshold configure per-request logging (see
	// Config.AccessLog / Config.SlowRequestThreshold, already defaulted).
	accessLog     *slog.Logger
	slowThreshold time.Duration
	// Scrape-time sampling state (see sampleScrapeGauges), serialized by
	// scrapeMu across concurrent /metrics scrapes.
	scrapeMu        sync.Mutex
	tenantGauges    map[string]*telemetry.FloatGauge
	casRetriesTotal *telemetry.Counter
	lastCASRetries  uint64
	planFlushTotal  *telemetry.Counter
	lastPlanFlushes uint64
	// Streaming state (see streaming.go). Every dataset hashes to one of the
	// domains; the owning domain's mutex serializes journal → apply → deliver
	// for its datasets — monitor registration and dataset appends, each
	// journalled under the domain lock before it is applied — so each
	// dataset's WAL subsequence equals the order its monitors saw the world
	// in and a restart replays their verdict histories bit for bit. Appends
	// to datasets in different domains never contend.
	domains [numStreamDomains]streamDomain
	// monMu guards the cross-domain monitor registry (lookup by id, listing
	// in registration order); the per-dataset watcher lists live in the
	// owning domain.
	monMu    sync.RWMutex
	monitors map[string]*monitor
	monOrder []*monitor
	// monNextID holds the last-minted numeric monitor id (Add(1) mints;
	// restore CAS-maxes it over the journalled ids).
	monNextID atomic.Uint64
	// monClosed is closed at the start of Shutdown/Close so long-lived SSE
	// handlers hang up before the HTTP server waits on them to drain.
	monClosed       chan struct{}
	appendsTotal    *telemetry.Counter
	monitorVerdicts *telemetry.Counter
	monitorsGauge   *telemetry.Gauge
	shutdownOnce    sync.Once
}

// hotCounters holds the metric series touched on every request, resolved
// once at construction so the hot path pays a single atomic add per event
// instead of a mutex-guarded registry lookup (telemetry documents cached
// pointers as the intended hot-path usage).
type hotCounters struct {
	inFlight  *telemetry.Gauge
	requests  map[string]map[string]*telemetry.Counter // mechanism → outcome code
	exhausted map[string]*telemetry.Counter            // mechanism
	latency   map[string]*telemetry.Histogram          // mechanism (endpoint label)
	stages    [numStages]*telemetry.Histogram          // pipeline stage

	// Compiled-plan cache observables, shared across datasets (the
	// per-dataset split lives in the store entries' Info).
	planHits   *telemetry.Counter
	planMisses *telemetry.Counter
	// planCompile tracks spec normalize+canonicalize time per composite
	// resolution (cache hits included — canonicalization is the lookup key).
	planCompile *telemetry.Histogram
	// scanWorkers records the widest worker fan-out per filter-bearing
	// composite resolution (1 = the scan stayed serial).
	scanWorkers *telemetry.ValueHistogram
}

// labelTenants is the metrics label for the tenant budget endpoint.
const labelTenants = "tenants"

func newHotCounters(set *telemetry.CounterSet, mechanisms []string) hotCounters {
	mechanisms = append(append([]string(nil), mechanisms...), mechBatch, mechDatasets, mechMonitors, "unknown")
	outcomes := []string{"ok", CodeInvalidRequest, CodeUnknownMechanism, CodeUnknownDataset,
		CodeUnknownMonitor, CodeBadQuerySpec, CodeBudgetExhausted, CodeTenantLimit,
		CodeCancelled, CodeRequestTooLarge, CodeUnavailable, CodeInternal}
	hot := hotCounters{
		inFlight:  set.Gauge("freegap_in_flight_requests"),
		requests:  make(map[string]map[string]*telemetry.Counter, len(mechanisms)),
		exhausted: make(map[string]*telemetry.Counter, len(mechanisms)),
		latency:   make(map[string]*telemetry.Histogram, len(mechanisms)+1),
	}
	for _, mech := range mechanisms {
		hot.requests[mech] = make(map[string]*telemetry.Counter, len(outcomes))
		for _, code := range outcomes {
			hot.requests[mech][code] = set.Counter("freegap_requests_total",
				telemetry.L("mechanism", mech), telemetry.L("code", code))
		}
		hot.exhausted[mech] = set.Counter("freegap_budget_exhausted_total", telemetry.L("mechanism", mech))
		hot.latency[mech] = set.Histogram("freegap_request_seconds", telemetry.L("mechanism", mech))
	}
	// The budget endpoint gets a latency series but no outcome counters: it
	// reads the ledger, it never charges it.
	hot.latency[labelTenants] = set.Histogram("freegap_request_seconds", telemetry.L("mechanism", labelTenants))
	hot.planHits = set.Counter("freegap_plan_cache_hits_total")
	hot.planMisses = set.Counter("freegap_plan_cache_misses_total")
	hot.planCompile = set.Histogram("freegap_plan_compile_seconds")
	hot.scanWorkers = set.ValueHistogram("freegap_scan_workers")
	for st := range hot.stages {
		hot.stages[st] = set.Histogram("freegap_stage_seconds", telemetry.L("stage", stageNames[st]))
	}
	return hot
}

// New constructs a Server from cfg. The caller owns the server's lifecycle:
// either mount Handler into an existing http.Server, or use
// ListenAndServe/Shutdown; call Close when done to stop the worker pool.
// Ownership of cfg.Persist transfers unconditionally: on a construction
// error New closes the log itself, so callers never leak its flusher and
// file descriptor.
func New(cfg Config) (*Server, error) {
	// fail routes every error exit, keeping the Persist-ownership promise.
	fail := func(err error) (*Server, error) {
		if cfg.Persist != nil {
			_ = cfg.Persist.Close()
		}
		return nil, err
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return fail(err)
	}
	reg, err := NewRegistry(cfg.TenantBudget, cfg.MaxTenants)
	if err != nil {
		return fail(err)
	}
	// Restore the journalled spending state before anything can charge:
	// a restarted server resumes with the exact spent budget (and
	// per-mechanism breakdown) every tenant had, so a restart never
	// refunds spent ε.
	var restored persist.State
	if cfg.Persist != nil {
		restored = cfg.Persist.State()
		for tenant, ts := range restored.Tenants {
			if err := reg.RestoreTenant(tenant, ts.Charges, ts.ChargeCount); err != nil {
				return fail(err)
			}
		}
	}
	mechs := cfg.Mechanisms.Mechanisms()
	names := make([]string, 0, len(mechs))
	byName := make(map[string]engine.Mechanism, len(mechs))
	for _, mech := range mechs {
		if reservedMechanismNames[mech.Name()] {
			return fail(fmt.Errorf("server: mechanism name %q is reserved for a fixed endpoint", mech.Name()))
		}
		names = append(names, mech.Name())
		byName[mech.Name()] = mech
	}
	s := &Server{
		cfg:           cfg,
		engine:        cfg.Mechanisms,
		mechNames:     names,
		mechByName:    byName,
		reg:           reg,
		datasets:      cfg.Datasets,
		pool:          newWorkerPool(cfg.Workers, cfg.Seed),
		mux:           http.NewServeMux(),
		telemetry:     telemetry.NewCounterSet(),
		started:       time.Now(),
		persist:       cfg.Persist,
		accessLog:     cfg.AccessLog,
		slowThreshold: cfg.SlowRequestThreshold,
		tenantGauges:  make(map[string]*telemetry.FloatGauge),
		monClosed:     make(chan struct{}),
	}
	for i := range s.domains {
		s.domains[i].watchers = make(map[string][]*monitor)
		s.domains[i].seqs = make(map[string]uint64)
	}
	if cfg.MmapDatasets {
		// Every HTTP request is bracketed by the root handler's
		// ReaderEnter/ReaderExit, so superseded mmap generations can be
		// unmapped as soon as in-flight readers drain instead of parking
		// until Close.
		s.datasets.EnableArenaReclaim()
	}
	// Built eagerly so Serve (serving goroutine) and Shutdown (signal
	// goroutine) never race on the field.
	s.httpSrv = &http.Server{
		Handler:           s.rootHandler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.telemetry.Help("freegap_requests_total", "DP query requests by mechanism and outcome code.")
	s.telemetry.Help("freegap_budget_exhausted_total", "Requests rejected because the tenant budget was exhausted.")
	s.telemetry.Help("freegap_in_flight_requests", "Mechanism requests currently being served.")
	s.telemetry.Help("freegap_datasets", "Datasets in the server-side catalog.")
	s.telemetry.Help("freegap_dataset_resolved_total", "Query resolutions served from a dataset's cached item counts.")
	s.telemetry.Help("freegap_plan_cache_hits_total", "Composite query resolutions served from a compiled-plan cache.")
	s.telemetry.Help("freegap_plan_cache_misses_total", "Composite query resolutions that compiled and evaluated a plan.")
	s.telemetry.Help("freegap_plan_compile_seconds", "Query-plan normalize+canonicalize time per composite resolution.")
	s.telemetry.Help("freegap_records_skipped_total", "Records proven unmatching by zone sketches and skipped by filter scans.")
	s.telemetry.Help("freegap_scan_workers", "Widest block-parallel worker fan-out per filter-bearing query resolution (1 = serial).")
	s.telemetry.Help("freegap_retired_arenas", "Superseded mmap arena generations parked awaiting reader drain.")
	s.telemetry.Help("freegap_request_seconds", "Request latency by endpoint, full pipeline wall time.")
	s.telemetry.Help("freegap_stage_seconds", "Pipeline stage latency across all endpoints.")
	s.telemetry.Help("freegap_uptime_seconds", "Seconds since the server was constructed.")
	s.telemetry.Help("freegap_build_info", "Constant 1, labelled with the server version and Go runtime version.")
	s.telemetry.Help("freegap_tenant_remaining_epsilon", "Remaining privacy budget per tenant, sampled at scrape.")
	s.telemetry.Help("freegap_admission_cas_retries_total", "Budget-admission CAS loop retries across all tenant accountants.")
	s.telemetry.Help("freegap_appends_total", "Dataset append requests admitted and applied incrementally.")
	s.telemetry.Help("freegap_monitors", "Registered SVT threshold monitors, retired ones included.")
	s.telemetry.Help("freegap_monitor_verdicts_total", "Threshold-monitor verdicts released across all monitors.")
	s.telemetry.Help("freegap_plan_cache_flushes_total", "Compiled-plan cache capacity sweeps across all datasets (full resets excluded).")
	s.telemetry.FloatGauge("freegap_build_info",
		telemetry.L("version", Version), telemetry.L("go_version", runtime.Version())).Set(1)
	s.casRetriesTotal = s.telemetry.Counter("freegap_admission_cas_retries_total")
	s.planFlushTotal = s.telemetry.Counter("freegap_plan_cache_flushes_total")
	// Provisioned before the restore loop: replaying journalled appends and
	// monitor registrations moves the monitor gauge and verdict counter.
	s.appendsTotal = s.telemetry.Counter("freegap_appends_total")
	s.monitorVerdicts = s.telemetry.Counter("freegap_monitor_verdicts_total")
	s.monitorsGauge = s.telemetry.Gauge("freegap_monitors")
	if s.persist != nil {
		s.telemetry.Help("freegap_persist_failed", "1 when the durable state log has hit an I/O error and charges are no longer journalled.")
		s.telemetry.Help("freegap_wal_queue_depth", "WAL records buffered in memory awaiting the background flusher.")
		s.telemetry.Help("freegap_wal_generation", "Current WAL segment generation (incremented by compaction).")
		s.telemetry.Help("freegap_fsync_seconds", "WAL write+fsync latency per flusher drain.")
		s.telemetry.Help("freegap_compaction_seconds", "Snapshot compaction duration.")
		s.telemetry.Gauge("freegap_persist_failed").Set(0)
		fsync := s.telemetry.Histogram("freegap_fsync_seconds")
		compact := s.telemetry.Histogram("freegap_compaction_seconds")
		s.persist.SetMetrics(persist.Metrics{
			ObserveFsync:      fsync.Observe,
			ObserveCompaction: compact.Observe,
		})
	}
	s.hot = newHotCounters(s.telemetry, s.mechNames)
	// Seed the dataset telemetry with whatever the caller already catalogued,
	// then rebuild the journalled datasets and apply the preloads.
	for _, name := range s.datasets.Names() {
		s.registerDatasetTelemetry(name)
	}
	// Replay the catalog event stream in journal order: registrations,
	// appends and monitor registrations interleave exactly as they were
	// admitted, so every restored monitor re-observes the same sequence of
	// dataset states it saw live and its verdict history replays
	// byte-identically from its journalled seed.
	for _, ev := range restored.Events {
		var err error
		switch {
		case ev.Dataset != nil:
			err = s.restoreDataset(*ev.Dataset)
		case ev.Append != nil:
			err = s.restoreAppend(*ev.Append)
		case ev.Monitor != nil:
			err = s.restoreMonitor(*ev.Monitor)
		}
		if err != nil {
			s.pool.close()
			return fail(err)
		}
	}
	// Journal new mutations only from here on: everything restored above is
	// already durable.
	if s.persist != nil {
		reg.SetJournal(s.persist)
	}
	for _, p := range cfg.Preload {
		if s.persist != nil {
			if _, err := s.datasets.Get(p.Name); err == nil {
				// Already restored from the durable state; re-preloading
				// would reject the whole startup with dataset_exists.
				continue
			}
		}
		entry, err := p.Load(s.datasets)
		if err != nil {
			s.pool.close()
			return fail(fmt.Errorf("server: preloading dataset %q: %w", p.Name, err))
		}
		s.registerDatasetTelemetry(p.Name)
		var syn *persist.SyntheticRecord
		if p.Synthetic != "" {
			syn = &persist.SyntheticRecord{Kind: p.Synthetic, Scale: p.Scale, Seed: p.Seed}
		}
		if err := s.journalDataset(entry, syn); err != nil {
			s.pool.close()
			return fail(err)
		}
		s.saveArena(p.Name)
	}
	s.routes()
	return s, nil
}

// routes mounts the fixed endpoints and one generic mechanism handler per
// engine registry entry. Literal patterns take precedence over the trailing
// "POST /v1/" subtree pattern, which only exists to turn every unknown name
// — single-segment or namespaced — into a structured 404.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/tenants/{id}/budget", s.handleBudget)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/datasets", s.handleDatasetUpload)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	s.mux.HandleFunc("GET /v1/datasets/{name}", s.handleDatasetGet)
	s.mux.HandleFunc("POST /v1/datasets/{name}/append", s.handleDatasetAppend)
	s.mux.HandleFunc("POST /v1/monitors", s.handleMonitorCreate)
	s.mux.HandleFunc("GET /v1/monitors", s.handleMonitorList)
	s.mux.HandleFunc("GET /v1/monitors/{id}", s.handleMonitorGet)
	s.mux.HandleFunc("GET /v1/monitors/{id}/stream", s.handleMonitorStream)
	for _, name := range s.mechNames {
		s.mux.Handle("POST /v1/"+name, s.handleMechanism(s.mechByName[name]))
	}
	s.mux.HandleFunc("POST /v1/", s.handleUnknownMechanism)
	if s.cfg.Debug {
		// Operator opt-in only: profiling a multi-tenant privacy service is
		// a debugging posture, not a standing production surface.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// Handler returns the server's HTTP handler, for mounting under httptest or a
// caller-owned http.Server.
func (s *Server) Handler() http.Handler { return s.rootHandler() }

// rootHandler wraps the mux so every request is bracketed as one catalog
// reader: a handler may hold slices into a dataset's current mmap arena for
// its whole lifetime (resolution output, response encoding), so the bracket
// is what lets superseded arena generations be reclaimed the moment
// in-flight requests drain (see store.EnableArenaReclaim). Long-lived SSE
// streams are exempt — they only read per-monitor state, never arena data,
// and holding the reader count up for the life of a stream would park
// retired arenas forever.
func (s *Server) rootHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/stream") {
			s.mux.ServeHTTP(w, r)
			return
		}
		s.datasets.ReaderEnter()
		defer s.datasets.ReaderExit()
		s.mux.ServeHTTP(w, r)
	})
}

// Registry exposes the tenant registry (used by the CLI for startup logging
// and by tests).
func (s *Server) Registry() *Registry { return s.reg }

// Datasets exposes the server-side dataset catalog. Datasets registered
// directly into it are served, but only registrations made through the
// server (the /v1/datasets endpoint, Config.Preload, or RegisterDataset) get
// a per-dataset telemetry series.
func (s *Server) Datasets() *store.Store { return s.datasets }

// Mechanisms exposes the engine registry the server dispatches on. Routes
// are mounted once at construction, so registering into it after New does
// not add endpoints — assemble the registry before calling New.
func (s *Server) Mechanisms() *engine.Registry { return s.engine }

// Config returns the effective configuration after defaulting.
func (s *Server) Config() Config { return s.cfg }

// Metrics exposes the server's telemetry registry.
func (s *Server) Metrics() *telemetry.CounterSet { return s.telemetry }

// ListenAndServe serves on cfg.Addr until Shutdown or a listener error. Like
// http.Server.ListenAndServe it returns http.ErrServerClosed after a clean
// Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on the given listener until Shutdown or a listener error; it
// lets callers bind to ":0" and discover the assigned port themselves.
func (s *Server) Serve(ln net.Listener) error {
	return s.httpSrv.Serve(ln)
}

// Shutdown gracefully stops a ListenAndServe/Serve server: it drains
// in-flight HTTP requests (bounded by ctx), stops the worker pool, and
// flushes + compacts + closes the durable state log, so a clean shutdown
// leaves a snapshot-only state directory behind. Called before Serve, it
// marks the server closed so Serve returns http.ErrServerClosed immediately
// instead of hanging.
func (s *Server) Shutdown(ctx context.Context) error {
	// Hang up the long-lived SSE monitor streams first: Shutdown waits for
	// in-flight handlers, and a subscribed stream never finishes on its own.
	s.shutdownOnce.Do(func() { close(s.monClosed) })
	err := s.httpSrv.Shutdown(ctx)
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	s.pool.close()
	if s.persist != nil {
		if perr := s.persist.Close(); perr != nil && err == nil {
			err = perr
		}
	}
	s.closeArenas()
	return err
}

// Close stops the worker pool and flushes + closes the durable state log
// without touching any HTTP listener. Use it when the server was mounted via
// Handler.
func (s *Server) Close() {
	s.shutdownOnce.Do(func() { close(s.monClosed) })
	s.pool.close()
	if s.persist != nil {
		_ = s.persist.Close()
	}
	s.closeArenas()
}

// closeArenas releases the dataset catalog's memory-mapped arenas. Only a
// server that opted into MmapDatasets tears the catalog down — without the
// flag the catalog may be caller-supplied and must survive the server.
func (s *Server) closeArenas() {
	if s.cfg.MmapDatasets {
		_ = s.datasets.Close()
	}
}
