package main

// The planbench experiment: the query-compiler serving path runnable from
// the command line. It drives composite filter specs through the real HTTP
// handler in-process against a clustered multi-block dataset, one scenario
// per row: compiled-and-scanned with zone-sketch skipping ("skip"), the
// same query with skipping disabled ("noskip" — the denominator of the
// skipping speedup), the compiled-plan cache hit path ("cached"), and the
// adversarial uniform dataset where sketches cannot skip a single block
// ("adversarial").

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"github.com/freegap/freegap/internal/dataset"
	"github.com/freegap/freegap/internal/server"
	"github.com/freegap/freegap/internal/store"
)

// planBenchConfig parameterizes one planbench run.
type planBenchConfig struct {
	// Requests is the request count per scenario.
	Requests int
	// Blocks is the number of zone blocks in the clustered dataset.
	Blocks int
	// Seed seeds the server's noise sources.
	Seed uint64
	// CSV selects comma-separated output instead of the aligned table.
	CSV bool
}

func (c planBenchConfig) withDefaults() planBenchConfig {
	if c.Requests <= 0 {
		c.Requests = 2000
	}
	if c.Blocks <= 0 {
		c.Blocks = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// planBenchResult is one scenario's outcome.
type planBenchResult struct {
	Scenario      string
	Requests      int
	Elapsed       time.Duration
	OpsPerSec     float64
	P50, P95, P99 time.Duration
	// RecSkippedPerOp is the mean number of records the zone sketches let
	// each request skip.
	RecSkippedPerOp float64
}

// runPlanBench runs every scenario and writes the report to stdout.
func runPlanBench(cfg planBenchConfig) error {
	cfg = cfg.withDefaults()
	const benchBudget = 1e18

	clustered := make([][]int32, 0, cfg.Blocks*store.DefaultZoneBlock)
	for blk := 0; blk < cfg.Blocks; blk++ {
		base := int32(blk * 8)
		for i := 0; i < store.DefaultZoneBlock; i++ {
			clustered = append(clustered, []int32{base, base + int32(i%8)})
		}
	}
	uniform := make([][]int32, cfg.Blocks*store.DefaultZoneBlock)
	for i := range uniform {
		uniform[i] = []int32{0, int32(1 + i%200)}
	}
	selective := []byte(fmt.Sprintf(
		`{"tenant":"bench","epsilon":0.01,"k":5,"dataset":"blocks","queries":{"kind":"filter","where":{"contains":[%d]}}}`,
		(cfg.Blocks-1)*8+4))
	unselective := []byte(
		`{"tenant":"bench","epsilon":0.01,"k":5,"dataset":"blocks","queries":{"kind":"filter","where":{"contains":[0]}}}`)

	scenario := func(name string, recs [][]int32, body []byte, noskip, resetCache bool) (planBenchResult, error) {
		s, err := server.New(server.Config{
			TenantBudget: benchBudget, Seed: cfg.Seed, Workers: 1,
			DisableQuerySkipping: noskip,
		})
		if err != nil {
			return planBenchResult{}, err
		}
		defer s.Close()
		if _, err := s.RegisterDataset("blocks", "planbench", dataset.New("blocks", recs)); err != nil {
			return planBenchResult{}, err
		}
		entry, err := s.Datasets().Get("blocks")
		if err != nil {
			return planBenchResult{}, err
		}
		h := s.Handler()
		var lat latHist
		start := time.Now()
		for i := 0; i < cfg.Requests; i++ {
			if resetCache {
				entry.Plans().Reset()
			}
			req := httptest.NewRequest(http.MethodPost, "/v1/topk", bytes.NewReader(body))
			w := httptest.NewRecorder()
			t0 := time.Now()
			h.ServeHTTP(w, req)
			lat.observe(time.Since(t0))
			if w.Code != http.StatusOK {
				return planBenchResult{}, fmt.Errorf("planbench %s: status %d: %s", name, w.Code, w.Body.String())
			}
		}
		elapsed := time.Since(start)
		return planBenchResult{
			Scenario:        name,
			Requests:        cfg.Requests,
			Elapsed:         elapsed,
			OpsPerSec:       float64(cfg.Requests) / elapsed.Seconds(),
			P50:             lat.quantile(0.50),
			P95:             lat.quantile(0.95),
			P99:             lat.quantile(0.99),
			RecSkippedPerOp: float64(entry.RecordsSkipped()) / float64(cfg.Requests),
		}, nil
	}

	results := make([]planBenchResult, 0, 4)
	for _, sc := range []struct {
		name       string
		recs       [][]int32
		body       []byte
		noskip     bool
		resetCache bool
	}{
		{"skip", clustered, selective, false, true},
		{"noskip", clustered, selective, true, true},
		{"cached", clustered, selective, false, false},
		{"adversarial", uniform, unselective, false, true},
	} {
		res, err := scenario(sc.name, sc.recs, sc.body, sc.noskip, sc.resetCache)
		if err != nil {
			return err
		}
		results = append(results, res)
	}

	if cfg.CSV {
		fmt.Fprintf(os.Stdout, "scenario,blocks,requests,elapsed_ms,ops_per_sec,p50_us,p95_us,p99_us,recskipped_per_op\n")
		for _, r := range results {
			fmt.Fprintf(os.Stdout, "%s,%d,%d,%.3f,%.1f,%.1f,%.1f,%.1f,%.1f\n",
				r.Scenario, cfg.Blocks, r.Requests,
				float64(r.Elapsed.Microseconds())/1000, r.OpsPerSec,
				float64(r.P50.Nanoseconds())/1e3, float64(r.P95.Nanoseconds())/1e3,
				float64(r.P99.Nanoseconds())/1e3, r.RecSkippedPerOp)
		}
		return nil
	}
	fmt.Fprintf(os.Stdout, "planbench: filtered-query hot path (GOMAXPROCS=%d, %d zone blocks, %d records)\n",
		runtime.GOMAXPROCS(0), cfg.Blocks, cfg.Blocks*store.DefaultZoneBlock)
	fmt.Fprintf(os.Stdout, "%-12s %10s %12s %12s %10s %10s %10s %14s\n",
		"scenario", "requests", "elapsed", "ops/sec", "p50", "p95", "p99", "recskipped/op")
	for _, r := range results {
		fmt.Fprintf(os.Stdout, "%-12s %10d %12s %12.1f %10s %10s %10s %14.1f\n",
			r.Scenario, r.Requests, r.Elapsed.Round(time.Millisecond), r.OpsPerSec,
			r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond),
			r.RecSkippedPerOp)
	}
	return nil
}
