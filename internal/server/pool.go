package server

import (
	"context"
	"errors"
	"sync"

	"github.com/freegap/freegap/internal/rng"
)

// errPoolClosed is returned by do when the pool has been shut down; the
// handler maps it to a 503.
var errPoolClosed = errors.New("server: worker pool shut down")

// workerPool runs mechanism executions on a bounded set of workers, each
// owning a private deterministic noise source split from the server seed.
// Pinning one source per worker keeps the hot path allocation-free (no
// per-request generator construction) and race-free without locking: a source
// is only ever touched by the goroutine that owns it.
type workerPool struct {
	jobs      chan poolJob
	quit      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

type poolJob struct {
	run  func(src rng.Source)
	done chan struct{}
}

// newWorkerPool starts n workers. Worker i draws noise from an independent
// stream split from a master generator seeded with seed, so a fixed seed
// makes a single-worker server fully deterministic.
func newWorkerPool(n int, seed uint64) *workerPool {
	p := &workerPool{
		jobs: make(chan poolJob),
		quit: make(chan struct{}),
	}
	master := rng.NewXoshiro(seed)
	for i := 0; i < n; i++ {
		src := master.Split()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case job := <-p.jobs:
					job.run(src)
					close(job.done)
				case <-p.quit:
					return
				}
			}
		}()
	}
	return p
}

// do submits fn to the pool and waits for it to finish. If ctx is cancelled
// (or the pool shuts down) before a worker accepts the job, do returns
// without running fn; once accepted, fn always runs to completion so the
// caller's captured state is never written concurrently with the caller
// reading it.
func (p *workerPool) do(ctx context.Context, fn func(src rng.Source)) error {
	job := poolJob{run: fn, done: make(chan struct{})}
	select {
	case p.jobs <- job:
	case <-ctx.Done():
		return ctx.Err()
	case <-p.quit:
		return errPoolClosed
	}
	<-job.done
	return nil
}

// close stops the workers after their current job finishes. The jobs channel
// is never closed — senders blocked in do observe quit instead — so a
// shutdown racing in-flight requests yields 503s, not send-on-closed-channel
// panics.
func (p *workerPool) close() {
	p.closeOnce.Do(func() {
		close(p.quit)
		p.wg.Wait()
	})
}
