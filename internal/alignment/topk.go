package alignment

import (
	"fmt"
	"math"
	"sort"

	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/rng"
)

// TopKOutput is the deterministic output of a Noisy-Top-K-with-Gap shadow
// execution: the selected indices in descending noisy order and the adjacent
// gaps.
type TopKOutput struct {
	Indices []int
	Gaps    []float64
}

// Equal reports whether two outputs coincide, comparing gaps up to tol.
func (o TopKOutput) Equal(other TopKOutput, tol float64) bool {
	if len(o.Indices) != len(other.Indices) || len(o.Gaps) != len(other.Gaps) {
		return false
	}
	for i := range o.Indices {
		if o.Indices[i] != other.Indices[i] {
			return false
		}
	}
	for i := range o.Gaps {
		if math.Abs(o.Gaps[i]-other.Gaps[i]) > tol {
			return false
		}
	}
	return true
}

// TopKShadowRun executes the Noisy-Top-K-with-Gap selection rule on an
// explicit noise vector (one noise value per query). It mirrors Algorithm 1
// exactly but with the randomness supplied by the caller, which is what the
// alignment argument needs.
func TopKShadowRun(answers, noise []float64, k int) (TopKOutput, error) {
	n := len(answers)
	if n == 0 {
		return TopKOutput{}, core.ErrNoQueries
	}
	if len(noise) != n {
		return TopKOutput{}, fmt.Errorf("alignment: need %d noise values, got %d", n, len(noise))
	}
	if k <= 0 || k >= n {
		return TopKOutput{}, fmt.Errorf("%w: k = %d with %d queries", core.ErrInvalidK, k, n)
	}
	noisy := make([]float64, n)
	for i := range answers {
		noisy[i] = answers[i] + noise[i]
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return noisy[idx[a]] > noisy[idx[b]] })
	out := TopKOutput{Indices: make([]int, k), Gaps: make([]float64, k)}
	for i := 0; i < k; i++ {
		out.Indices[i] = idx[i]
		out.Gaps[i] = noisy[idx[i]] - noisy[idx[i+1]]
	}
	return out, nil
}

// TopKAlign computes the Equation (2) local alignment: given the noise H used
// on answersD and the output it produced, it returns the noise H' that makes
// the run on answersDPrime produce the identical output. Noise of unselected
// queries is kept; noise of each selected query is shifted by
// qᵢ − q'ᵢ + max over unselected of (q'_l + η_l) − max over unselected of
// (q_l + η_l).
func TopKAlign(answersD, answersDPrime, noise []float64, selected []int) ([]float64, error) {
	n := len(answersD)
	if len(answersDPrime) != n || len(noise) != n {
		return nil, fmt.Errorf("alignment: mismatched lengths %d, %d, %d", n, len(answersDPrime), len(noise))
	}
	isSelected := make([]bool, n)
	for _, idx := range selected {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("alignment: selected index %d out of range", idx)
		}
		isSelected[idx] = true
	}
	maxD := math.Inf(-1)
	maxDPrime := math.Inf(-1)
	for l := 0; l < n; l++ {
		if isSelected[l] {
			continue
		}
		if v := answersD[l] + noise[l]; v > maxD {
			maxD = v
		}
		if v := answersDPrime[l] + noise[l]; v > maxDPrime {
			maxDPrime = v
		}
	}
	if math.IsInf(maxD, -1) {
		return nil, fmt.Errorf("alignment: no unselected queries to align against")
	}
	aligned := make([]float64, n)
	copy(aligned, noise)
	for i := 0; i < n; i++ {
		if isSelected[i] {
			aligned[i] = noise[i] + answersD[i] - answersDPrime[i] + maxDPrime - maxD
		}
	}
	return aligned, nil
}

// AlignmentCost evaluates Definition 6 for Laplace-style noise of the given
// scale: Σ|ηᵢ − η'ᵢ| / scale.
func AlignmentCost(noise, aligned []float64, scale float64) float64 {
	if scale <= 0 {
		panic("alignment: scale must be positive")
	}
	cost := 0.0
	for i := range noise {
		cost += math.Abs(noise[i]-aligned[i]) / scale
	}
	return cost
}

// MaxStability checks Lemma 3 numerically: if every coordinate of two vectors
// differs by at most bound, their maxima differ by at most bound.
func MaxStability(xs, ys []float64) (maxCoordinateDiff, maxDiff float64) {
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for i := range xs {
		if d := math.Abs(xs[i] - ys[i]); d > maxCoordinateDiff {
			maxCoordinateDiff = d
		}
		if xs[i] > maxX {
			maxX = xs[i]
		}
		if ys[i] > maxY {
			maxY = ys[i]
		}
	}
	return maxCoordinateDiff, math.Abs(maxX - maxY)
}

// Report summarises a Monte-Carlo alignment verification.
type Report struct {
	// Trials is the number of sampled noise vectors.
	Trials int
	// OutputPreserved counts trials where the aligned run reproduced the
	// original output exactly.
	OutputPreserved int
	// MaxCost is the largest alignment cost observed.
	MaxCost float64
	// CostBound is the bound the costs must respect (ε, or ε/2 when the
	// mechanism exploits monotonicity at the general noise scale).
	CostBound float64
}

// OK reports whether every trial preserved the output within cost bound
// (allowing a hair of floating-point slack on the cost).
func (r Report) OK() bool {
	return r.OutputPreserved == r.Trials && r.MaxCost <= r.CostBound*(1+1e-9)+1e-12
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("alignment: %d/%d outputs preserved, max cost %.6f ≤ bound %.6f: %v",
		r.OutputPreserved, r.Trials, r.MaxCost, r.CostBound, r.OK())
}

// VerifyTopK samples `trials` noise vectors for the Noisy-Top-K-with-Gap
// mechanism on answersD, aligns each per Equation (2), and checks that the
// aligned run on answersDPrime reproduces the output with cost at most ε
// (Theorem 2). The two answer vectors must differ by at most 1 per coordinate
// (sensitivity-1 adjacency); when monotonic is set they must also move in the
// same direction, and the noise scale k/ε of the monotonic mechanism is used.
func VerifyTopK(m *core.TopKWithGap, answersD, answersDPrime []float64, trials int, seed uint64) (Report, error) {
	if err := checkAdjacent(answersD, answersDPrime, m.Monotonic); err != nil {
		return Report{}, err
	}
	scale := m.NoiseScale()
	src := rng.NewXoshiro(seed)
	report := Report{Trials: trials, CostBound: m.Epsilon}
	for t := 0; t < trials; t++ {
		noise := rng.LaplaceVec(src, scale, len(answersD), nil)
		outD, err := TopKShadowRun(answersD, noise, m.K)
		if err != nil {
			return Report{}, err
		}
		aligned, err := TopKAlign(answersD, answersDPrime, noise, outD.Indices)
		if err != nil {
			return Report{}, err
		}
		outDPrime, err := TopKShadowRun(answersDPrime, aligned, m.K)
		if err != nil {
			return Report{}, err
		}
		if outD.Equal(outDPrime, 1e-9) {
			report.OutputPreserved++
		}
		if cost := AlignmentCost(noise, aligned, scale); cost > report.MaxCost {
			report.MaxCost = cost
		}
	}
	return report, nil
}

// checkAdjacent validates the sensitivity-1 adjacency assumption (and the
// common direction when monotonicity is claimed).
func checkAdjacent(answersD, answersDPrime []float64, monotonic bool) error {
	if len(answersD) != len(answersDPrime) || len(answersD) == 0 {
		return fmt.Errorf("alignment: answer vectors must have equal non-zero length")
	}
	sawUp, sawDown := false, false
	for i := range answersD {
		d := answersD[i] - answersDPrime[i]
		if math.Abs(d) > 1+1e-12 {
			return fmt.Errorf("alignment: coordinate %d differs by %v > 1 (not sensitivity-1 adjacent)", i, d)
		}
		if d > 0 {
			sawDown = true // D' is smaller at i
		}
		if d < 0 {
			sawUp = true
		}
	}
	if monotonic && sawUp && sawDown {
		return fmt.Errorf("alignment: query list declared monotonic but the pair moves in both directions")
	}
	return nil
}
