package query

import (
	"testing"

	"github.com/freegap/freegap/internal/dataset"
)

func toyDB() *dataset.Transactions {
	return dataset.New("toy", [][]int32{
		{0, 1, 2},
		{1, 2},
		{2},
		{0, 2, 3},
	})
}

func TestItemCountEvaluate(t *testing.T) {
	db := toyDB()
	cases := []struct {
		item int32
		want float64
	}{{0, 2}, {1, 2}, {2, 4}, {3, 1}}
	for _, c := range cases {
		q := ItemCount{Item: c.item}
		if got := q.Evaluate(db); got != c.want {
			t.Errorf("count(item=%d) = %v, want %v", c.item, got, c.want)
		}
		if q.Sensitivity() != 1 {
			t.Error("item count sensitivity must be 1")
		}
		if q.Describe() == "" {
			t.Error("empty description")
		}
	}
}

func TestBatchEvaluateMatchesItemCounts(t *testing.T) {
	db := toyDB()
	batch, fast := AllItemCounts(db)
	slow := batch.Evaluate(db)
	if len(fast) != len(slow) {
		t.Fatalf("length mismatch %d vs %d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("item %d: fast %v slow %v", i, fast[i], slow[i])
		}
	}
	if !batch.Monotonic {
		t.Fatal("item-count batch must be monotonic")
	}
	if batch.Sensitivity() != 1 {
		t.Fatalf("sensitivity %v, want 1", batch.Sensitivity())
	}
	if batch.Len() != db.NumItems() {
		t.Fatalf("batch length %d, want %d", batch.Len(), db.NumItems())
	}
}

// TestBatchEvaluateFastPath pins the single-pass item-count evaluation: an
// all-item-count batch — in any order, with repeats and out-of-universe
// items — must produce exactly what per-query evaluation produces.
func TestBatchEvaluateFastPath(t *testing.T) {
	db := toyDB()
	queries := []Query{
		ItemCount{Item: 3},
		ItemCount{Item: 0},
		ItemCount{Item: 3},  // repeated
		ItemCount{Item: 99}, // outside the universe: counts zero
	}
	batch := NewBatch(queries, true)
	got := batch.Evaluate(db)
	want := make([]float64, len(queries))
	for i, q := range queries {
		want[i] = q.Evaluate(db)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("answers[%d] = %v, want %v (query %s)", i, got[i], want[i], queries[i].Describe())
		}
	}
}

// TestBatchEvaluateMixedFallsBack checks that a batch holding a non-item-
// count query still evaluates per query.
func TestBatchEvaluateMixedFallsBack(t *testing.T) {
	db := toyDB()
	batch := NewBatch([]Query{ItemCount{Item: 2}, fixedSensQuery{s: 1}}, false)
	got := batch.Evaluate(db)
	if got[0] != 4 || got[1] != 0 {
		t.Errorf("answers = %v, want [4 0]", got)
	}
}

func TestNewBatchTakesMaxSensitivity(t *testing.T) {
	b := NewBatch([]Query{ItemCount{0}, fixedSensQuery{3}}, false)
	if b.Sensitivity() != 3 {
		t.Fatalf("sensitivity %v, want 3", b.Sensitivity())
	}
}

type fixedSensQuery struct{ s float64 }

func (f fixedSensQuery) Evaluate(*dataset.Transactions) float64 { return 0 }
func (f fixedSensQuery) Sensitivity() float64                   { return f.s }
func (f fixedSensQuery) Describe() string                       { return "fixed" }

func TestAnswersValidate(t *testing.T) {
	if err := CountingAnswers([]float64{1, 2}).Validate(); err != nil {
		t.Fatalf("valid answers rejected: %v", err)
	}
	if err := CountingAnswers(nil).Validate(); err == nil {
		t.Fatal("empty answers accepted")
	}
	bad := Answers{Values: []float64{1}, Sensitivity: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero sensitivity accepted")
	}
}

func TestAnswerConstructors(t *testing.T) {
	c := CountingAnswers([]float64{1})
	if !c.Monotonic || c.Sensitivity != 1 {
		t.Fatalf("unexpected counting answers %+v", c)
	}
	g := GeneralAnswers([]float64{1})
	if g.Monotonic {
		t.Fatal("general answers must not claim monotonicity")
	}
}
