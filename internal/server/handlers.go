package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"github.com/freegap/freegap/internal/accountant"
	"github.com/freegap/freegap/internal/core"
	"github.com/freegap/freegap/internal/metrics"
	"github.com/freegap/freegap/internal/rng"
)

// mechanism names accepted by POST /v1/{mechanism}.
const (
	mechTopK = "topk"
	mechSVT  = "svt"
	mechMax  = "max"
)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Tenants:       s.reg.Len(),
		Workers:       s.cfg.Workers,
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("id")
	acct, ok := s.reg.Lookup(tenant)
	if !ok {
		writeError(w, http.StatusNotFound, ErrorBody{
			Code:    CodeUnknownTenant,
			Message: fmt.Sprintf("tenant %q has not issued any requests", tenant),
		})
		return
	}
	writeJSON(w, http.StatusOK, BudgetResponse{
		Tenant:            tenant,
		Budget:            acct.Budget(),
		Spent:             acct.Spent(),
		Remaining:         acct.Remaining(),
		RemainingFraction: acct.RemainingFraction(),
		Charges:           acct.ChargeCount(),
	})
}

// handleMechanism dispatches POST /v1/{mechanism} to the mechanism handlers,
// wrapping them with the in-flight gauge and per-outcome request counters.
func (s *Server) handleMechanism(w http.ResponseWriter, r *http.Request) {
	mech := r.PathValue("mechanism")
	switch mech {
	case mechTopK, mechSVT, mechMax:
	default:
		// The label is pinned to "unknown" rather than the request path:
		// attacker-chosen label values would grow the metric registry (and
		// every /metrics scrape) without bound.
		s.countRequest("unknown", CodeUnknownMechanism)
		writeError(w, http.StatusNotFound, ErrorBody{
			Code:    CodeUnknownMechanism,
			Message: fmt.Sprintf("unknown mechanism %q (valid: topk, svt, max)", mech),
		})
		return
	}

	s.hot.inFlight.Inc()
	defer s.hot.inFlight.Dec()

	var outcome string
	switch mech {
	case mechTopK:
		outcome = s.serveTopK(w, r)
	case mechSVT:
		outcome = s.serveSVT(w, r)
	case mechMax:
		outcome = s.serveMax(w, r)
	}
	s.countRequest(mech, outcome)
	if outcome == CodeBudgetExhausted {
		if c, ok := s.hot.exhausted[mech]; ok {
			c.Inc()
		}
	}
}

// countRequest increments the pre-resolved request counter for the
// (mechanism, outcome) pair, falling back to a registry lookup for any pair
// not provisioned in newHotCounters.
func (s *Server) countRequest(mech, code string) {
	if byCode, ok := s.hot.requests[mech]; ok {
		if c, ok := byCode[code]; ok {
			c.Inc()
			return
		}
	}
	s.metrics.Counter("freegap_requests_total",
		metrics.L("mechanism", mech), metrics.L("code", code)).Inc()
}

// serveTopK handles POST /v1/topk and returns the outcome code for metrics.
func (s *Server) serveTopK(w http.ResponseWriter, r *http.Request) string {
	var req TopKRequest
	if code, ok := s.decode(w, r, &req); !ok {
		return code
	}
	if err := s.validateCommon(req.Tenant, req.Epsilon, req.Answers); err != nil {
		return badRequest(w, err)
	}
	if req.K <= 0 || req.K >= len(req.Answers) {
		return badRequest(w, fmt.Errorf("k = %d must satisfy 1 <= k <= len(answers)-1 = %d", req.K, len(req.Answers)-1))
	}
	mech, err := core.NewTopKWithGap(req.K, req.Epsilon, req.Monotonic)
	if err != nil {
		return badRequest(w, err)
	}

	remaining, code, ok := s.charge(w, req.Tenant, mechTopK, req.Epsilon)
	if !ok {
		return code
	}

	var (
		res    *core.TopKResult
		runErr error
	)
	if err := s.pool.do(r.Context(), func(src rng.Source) {
		res, runErr = mech.Run(src, req.Answers)
	}); err != nil {
		return poolError(w, err)
	}
	if runErr != nil {
		return internalError(w, runErr)
	}

	out := TopKResponse{
		Tenant:          req.Tenant,
		Selections:      make([]SelectionJSON, len(res.Selections)),
		EpsilonSpent:    req.Epsilon,
		BudgetRemaining: remaining,
	}
	for i, sel := range res.Selections {
		out.Selections[i] = SelectionJSON{Index: sel.Index, Gap: sel.Gap}
	}
	writeJSON(w, http.StatusOK, out)
	return "ok"
}

// serveMax handles POST /v1/max.
func (s *Server) serveMax(w http.ResponseWriter, r *http.Request) string {
	var req MaxRequest
	if code, ok := s.decode(w, r, &req); !ok {
		return code
	}
	if err := s.validateCommon(req.Tenant, req.Epsilon, req.Answers); err != nil {
		return badRequest(w, err)
	}
	if len(req.Answers) < 2 {
		return badRequest(w, errors.New("max needs at least 2 answers"))
	}

	remaining, code, ok := s.charge(w, req.Tenant, mechMax, req.Epsilon)
	if !ok {
		return code
	}

	var (
		res    *core.MaxWithGapResult
		runErr error
	)
	if err := s.pool.do(r.Context(), func(src rng.Source) {
		res, runErr = core.MaxWithGap(src, req.Answers, req.Epsilon, req.Monotonic)
	}); err != nil {
		return poolError(w, err)
	}
	if runErr != nil {
		return internalError(w, runErr)
	}

	writeJSON(w, http.StatusOK, MaxResponse{
		Tenant:          req.Tenant,
		Index:           res.Index,
		Gap:             res.Gap,
		EpsilonSpent:    req.Epsilon,
		BudgetRemaining: remaining,
	})
	return "ok"
}

// serveSVT handles POST /v1/svt.
func (s *Server) serveSVT(w http.ResponseWriter, r *http.Request) string {
	var req SVTRequest
	if code, ok := s.decode(w, r, &req); !ok {
		return code
	}
	if err := s.validateCommon(req.Tenant, req.Epsilon, req.Answers); err != nil {
		return badRequest(w, err)
	}
	if req.K <= 0 {
		return badRequest(w, fmt.Errorf("k = %d must be positive", req.K))
	}
	if math.IsNaN(req.Threshold) || math.IsInf(req.Threshold, 0) {
		return badRequest(w, fmt.Errorf("threshold %v must be finite", req.Threshold))
	}
	// Both mechanisms are constructed before the charge (mirroring serveTopK)
	// so a constructor rejection can never burn budget.
	run := func(src rng.Source) (*core.SVTGapResult, error) {
		mech := &core.AdaptiveSVTWithGap{
			K: req.K, Epsilon: req.Epsilon, Threshold: req.Threshold, Monotonic: req.Monotonic,
		}
		return mech.Run(src, req.Answers)
	}
	if !req.Adaptive {
		mech, err := core.NewSVTWithGap(req.K, req.Epsilon, req.Threshold, req.Monotonic)
		if err != nil {
			return badRequest(w, err)
		}
		run = func(src rng.Source) (*core.SVTGapResult, error) { return mech.Run(src, req.Answers) }
	}

	remaining, code, ok := s.charge(w, req.Tenant, mechSVT, req.Epsilon)
	if !ok {
		return code
	}

	var (
		res    *core.SVTGapResult
		runErr error
	)
	if err := s.pool.do(r.Context(), func(src rng.Source) {
		res, runErr = run(src)
	}); err != nil {
		return poolError(w, err)
	}
	if runErr != nil {
		return internalError(w, runErr)
	}

	out := SVTResponse{
		Tenant:           req.Tenant,
		Above:            make([]SVTAnswerJSON, 0, res.AboveCount),
		AboveCount:       res.AboveCount,
		QueriesProcessed: len(res.Items),
		MechanismSpent:   res.BudgetSpent,
		EpsilonSpent:     req.Epsilon,
		BudgetRemaining:  remaining,
	}
	for _, it := range res.AboveItems() {
		out.Above = append(out.Above, SVTAnswerJSON{
			Index:    it.Index,
			Gap:      it.Gap,
			Estimate: it.Gap + req.Threshold,
			Branch:   it.Branch.String(),
		})
	}
	writeJSON(w, http.StatusOK, out)
	return "ok"
}

// decode reads and strictly parses the JSON request body into dst. On failure
// it writes the error response and returns (outcome, false).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) (string, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, ErrorBody{
				Code:    CodeRequestTooLarge,
				Message: fmt.Sprintf("request body exceeds the server limit of %d bytes", tooLarge.Limit),
			})
			return CodeRequestTooLarge, false
		}
		return badRequest(w, fmt.Errorf("decoding JSON body: %v", err)), false
	}
	if dec.More() {
		return badRequest(w, errors.New("request body holds more than one JSON value")), false
	}
	return "", true
}

// validateCommon checks the fields shared by every mechanism request.
func (s *Server) validateCommon(tenant string, epsilon float64, answers []float64) error {
	if err := validTenant(tenant); err != nil {
		return err
	}
	if !(epsilon >= MinEpsilon) || math.IsInf(epsilon, 0) {
		return fmt.Errorf("epsilon %v must be finite and at least %g", epsilon, MinEpsilon)
	}
	if len(answers) == 0 {
		return errors.New("answers must be non-empty")
	}
	if len(answers) > s.cfg.MaxAnswers {
		return fmt.Errorf("%d answers exceeds the server limit of %d", len(answers), s.cfg.MaxAnswers)
	}
	for i, a := range answers {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("answers[%d] = %v is not finite", i, a)
		}
	}
	return nil
}

// charge reserves eps from the tenant's budget before the mechanism runs.
// Reserving up front (rather than settling afterwards) is what keeps
// concurrent requests from jointly overspending: the accountant admits or
// rejects each reservation atomically. On failure it writes the error
// response and returns ok = false with the outcome code.
func (s *Server) charge(w http.ResponseWriter, tenant, mech string, eps float64) (remaining float64, outcome string, ok bool) {
	remaining, err := s.reg.Charge(tenant, mech, eps)
	switch {
	case err == nil:
		return remaining, "", true
	case errors.Is(err, accountant.ErrBudgetExceeded):
		writeError(w, http.StatusPaymentRequired, ErrorBody{
			Code:      CodeBudgetExhausted,
			Message:   fmt.Sprintf("tenant %q: %v", tenant, err),
			Remaining: &remaining,
		})
		return remaining, CodeBudgetExhausted, false
	case errors.Is(err, ErrTenantLimit):
		writeError(w, http.StatusTooManyRequests, ErrorBody{Code: CodeTenantLimit, Message: err.Error()})
		return 0, CodeTenantLimit, false
	default:
		return 0, badRequest(w, err), false
	}
}

func badRequest(w http.ResponseWriter, err error) string {
	writeError(w, http.StatusBadRequest, ErrorBody{Code: CodeInvalidRequest, Message: err.Error()})
	return CodeInvalidRequest
}

// statusClientClosedRequest is nginx's non-standard code for "the client went
// away before we could answer"; it keeps routine disconnects out of the
// internal_error metrics. The reserved budget stays spent — the charge was
// admitted before the mechanism ran, and refunding on disconnect would let a
// client probe for free.
const statusClientClosedRequest = 499

// poolError classifies a pool submission failure: context cancellation means
// the client gave up while queued, pool shutdown means the server is
// draining; anything else is an internal fault.
func poolError(w http.ResponseWriter, err error) string {
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeError(w, statusClientClosedRequest, ErrorBody{
			Code:    CodeCancelled,
			Message: fmt.Sprintf("request cancelled before a worker was available: %v", err),
		})
		return CodeCancelled
	case errors.Is(err, errPoolClosed):
		writeError(w, http.StatusServiceUnavailable, ErrorBody{
			Code:    CodeUnavailable,
			Message: "server is shutting down",
		})
		return CodeUnavailable
	default:
		return internalError(w, err)
	}
}

func internalError(w http.ResponseWriter, err error) string {
	writeError(w, http.StatusInternalServerError, ErrorBody{Code: CodeInternal, Message: err.Error()})
	return CodeInternal
}

func writeError(w http.ResponseWriter, status int, body ErrorBody) {
	writeJSON(w, status, ErrorEnvelope{Error: body})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
