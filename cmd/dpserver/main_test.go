package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

func TestParseConfig(t *testing.T) {
	cfg, err := parseConfig([]string{"-addr", ":9090", "-budget", "3.5", "-workers", "2", "-seed", "7"})
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if cfg.Addr != ":9090" || cfg.TenantBudget != 3.5 || cfg.Workers != 2 || cfg.Seed != 7 {
		t.Errorf("config = %+v", cfg)
	}

	if _, err := parseConfig([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, err := parseConfig([]string{"stray"}); err == nil {
		t.Error("stray positional argument accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(context.Background(), []string{"-budget", "-1"}, os.Stdout); err == nil {
		t.Error("negative budget accepted")
	}
	if err := run(context.Background(), []string{"-addr", "host:notaport"}, os.Stdout); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// TestRunServesAndShutsDown boots the real binary entry point on an ephemeral
// port, drives one DP query over HTTP, and checks the graceful shutdown path.
func TestRunServesAndShutsDown(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		err := run(ctx, []string{"-addr", "127.0.0.1:0", "-budget", "2", "-workers", "1", "-seed", "1"}, w)
		w.Close()
		done <- err
	}()

	// The first announced line carries the assigned address.
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading announce line: %v", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		t.Fatalf("unexpected announce line %q", line)
	}
	base := "http://" + fields[3]

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	body := `{"tenant":"cli","k":2,"epsilon":1,"monotonic":true,"answers":[9,8,7,6,5]}`
	resp, err = http.Post(base+"/v1/topk", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("topk: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk status = %d, body = %s", resp.StatusCode, data)
	}
	var out struct {
		Selections []struct {
			Index int     `json:"index"`
			Gap   float64 `json:"gap"`
		} `json:"selections"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(out.Selections) != 2 {
		t.Fatalf("got %d selections, want 2: %s", len(out.Selections), data)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after context cancellation")
	}
}
